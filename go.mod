module meshcast

go 1.22
