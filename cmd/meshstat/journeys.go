package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"meshcast/internal/packet"
	"meshcast/internal/trace"
)

// runJourneys loads a span stream (a spans.jsonl file, or a directory
// containing one), reconstructs per-packet journeys, and renders the
// report: totals, a per-packet-kind comparison, and the top-N slowest and
// lossiest journeys with per-hop breakdowns.
func runJourneys(w io.Writer, path string, topN int) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "spans.jsonl")
	}
	spans, err := trace.LoadSpans(path)
	if err != nil {
		return fmt.Errorf("meshstat -journeys: %w", err)
	}
	journeys := trace.Reconstruct(spans)
	if len(journeys) == 0 {
		fmt.Fprintf(w, "no traced journeys in %s (%d spans)\n", path, len(spans))
		return nil
	}
	renderJourneys(w, path, spans, journeys, topN)
	return nil
}

// kindAgg aggregates journeys of one packet kind for the comparison table.
type kindAgg struct {
	kind       packet.Type
	count      int
	complete   int
	deliveries int
	losses     int
	hopSum     int
	latSum     time.Duration
	latMax     time.Duration
	latN       int
}

func renderJourneys(w io.Writer, path string, spans []trace.Span, journeys []*trace.Journey, topN int) {
	complete := 0
	for _, j := range journeys {
		if j.Complete() {
			complete++
		}
	}
	fmt.Fprintf(w, "journeys: %d reconstructed from %d spans (%s)\n", len(journeys), len(spans), path)
	fmt.Fprintf(w, "  complete forwarding trees: %d/%d\n", complete, len(journeys))

	// Per-packet-kind comparison: data vs the control planes' floods.
	byKind := make(map[packet.Type]*kindAgg)
	var kinds []packet.Type
	for _, j := range journeys {
		a := byKind[j.PktKind]
		if a == nil {
			a = &kindAgg{kind: j.PktKind}
			byKind[j.PktKind] = a
			kinds = append(kinds, j.PktKind)
		}
		a.count++
		if j.Complete() {
			a.complete++
		}
		a.deliveries += len(j.Deliveries)
		a.losses += j.Losses()
		a.hopSum += int(j.MaxHopCount)
		if lat := j.MaxLatency(); lat > 0 {
			a.latSum += lat
			a.latN++
			if lat > a.latMax {
				a.latMax = lat
			}
		}
	}
	sort.Slice(kinds, func(i, k int) bool { return kinds[i] < kinds[k] })
	fmt.Fprintf(w, "\n%-14s %8s %9s %10s %7s %9s %10s %10s\n",
		"kind", "count", "complete", "delivered", "losses", "mean hops", "mean lat", "max lat")
	for _, k := range kinds {
		a := byKind[k]
		meanLat := time.Duration(0)
		if a.latN > 0 {
			meanLat = a.latSum / time.Duration(a.latN)
		}
		fmt.Fprintf(w, "%-14v %8d %9d %10d %7d %9.1f %10s %10s\n",
			a.kind, a.count, a.complete, a.deliveries, a.losses,
			float64(a.hopSum)/float64(a.count), fmtLat(meanLat), fmtLat(a.latMax))
	}

	if topN <= 0 {
		return
	}

	// Slowest journeys by worst end-to-end delivery latency.
	slow := make([]*trace.Journey, 0, len(journeys))
	for _, j := range journeys {
		if len(j.Deliveries) > 0 {
			slow = append(slow, j)
		}
	}
	sort.Slice(slow, func(i, k int) bool { return slow[i].MaxLatency() > slow[k].MaxLatency() })
	if len(slow) > topN {
		slow = slow[:topN]
	}
	if len(slow) > 0 {
		fmt.Fprintf(w, "\nslowest %d journeys:\n", len(slow))
		for _, j := range slow {
			renderJourney(w, j)
		}
	}

	// Lossiest journeys by attributable loss events.
	lossy := make([]*trace.Journey, 0, len(journeys))
	for _, j := range journeys {
		if j.Losses() > 0 {
			lossy = append(lossy, j)
		}
	}
	sort.Slice(lossy, func(i, k int) bool { return lossy[i].Losses() > lossy[k].Losses() })
	if len(lossy) > topN {
		lossy = lossy[:topN]
	}
	if len(lossy) > 0 {
		fmt.Fprintf(w, "\nlossiest %d journeys:\n", len(lossy))
		for _, j := range lossy {
			fmt.Fprintf(w, "  %v grp %d seq %d from node %d: %d lost tx, %d mac drops, %d/%d tx heard\n",
				j.PktKind, j.Group, j.Seq, j.Origin, j.LostTx, j.MACDrops, j.TxCount-j.LostTx, j.TxCount)
		}
	}
}

// renderJourney writes one journey's identity line plus its per-hop
// latency breakdown in arrival order.
func renderJourney(w io.Writer, j *trace.Journey) {
	status := "complete"
	if !j.Complete() {
		status = "incomplete"
	}
	fmt.Fprintf(w, "  %v grp %d seq %d from node %d @ %s: %d deliveries, max lat %s, %d hops, %s\n",
		j.PktKind, j.Group, j.Seq, j.Origin, fmtLat(j.OriginAt), len(j.Deliveries),
		fmtLat(j.MaxLatency()), len(j.Hops), status)
	for _, h := range j.Hops {
		fmt.Fprintf(w, "    %3d -> %-3d  hop %d  tx %-10s  lat %s\n",
			h.From, h.To, h.HopCount, fmtLat(h.TxAt), fmtLat(h.Latency))
	}
}

// fmtLat renders a latency with stable sub-millisecond precision.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}
