// Command meshstat analyzes the telemetry artifacts a run writes under
// -telemetry: the manifest's per-layer instrument summaries, the top-N
// counters, virtual-time sparklines from the series stream, and A/B diffs
// between two runs.
//
// Usage:
//
//	go run ./cmd/meshstat out/                 # per-layer summary + sparklines
//	go run ./cmd/meshstat -top 10 out/         # widen the top-counter table
//	go run ./cmd/meshstat -diff outA/ outB/    # per-counter deltas, A vs B
//	go run ./cmd/meshstat -watch 127.0.0.1:8420   # live control-plane stream
//	go run ./cmd/meshstat -journeys out/spans.jsonl  # packet-journey report
//
// -watch subscribes to a running control plane's /stats/stream SSE
// endpoint (etherd -listen / -soak) and renders one line per server
// window: node liveness, medium state, and the windowed packet delivery
// ratio with a trailing sparkline — the live view of a fleet dipping
// under injected faults and recovering. Anomaly events from the stream
// interleave as their own lines, and a dropped connection reconnects
// with Last-Event-ID so no window is shown twice.
//
// -journeys reconstructs per-packet forwarding trees from a span stream
// (meshsim -spans) and reports the slowest and lossiest journeys with
// per-hop latency breakdowns, plus a per-packet-kind comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/telemetry"
	"meshcast/internal/viz"
)

func main() {
	topN := flag.Int("top", 5, "how many counters the top-counters table lists")
	diff := flag.Bool("diff", false, "diff two runs: meshstat -diff A B")
	watch := flag.String("watch", "", "control-plane base URL to stream live (host:port or http://...)")
	interval := flag.Duration("interval", time.Second, "unused with the stream; kept for compatibility")
	journeys := flag.Bool("journeys", false, "packet-journey report from a span stream: meshstat -journeys SPANS")
	journeyN := flag.Int("n", 5, "how many slowest/lossiest journeys -journeys details")
	flag.Parse()
	_ = interval
	var err error
	switch {
	case *watch != "":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = runWatch(ctx, os.Stdout, *watch)
		stop()
	case *journeys:
		if flag.NArg() != 1 {
			err = fmt.Errorf("meshstat -journeys needs a spans.jsonl file or its directory")
			break
		}
		err = runJourneys(os.Stdout, flag.Arg(0), *journeyN)
	case *diff:
		if flag.NArg() != 2 {
			err = fmt.Errorf("meshstat -diff needs exactly two runs, got %d", flag.NArg())
			break
		}
		err = runDiff(os.Stdout, flag.Arg(0), flag.Arg(1))
	case flag.NArg() == 1:
		err = runSummary(os.Stdout, flag.Arg(0), *topN)
	default:
		err = fmt.Errorf("usage: meshstat [-top N] DIR | meshstat -diff A B | meshstat -watch URL | meshstat -journeys SPANS")
	}
	if err != nil {
		log.Fatal(err)
	}
}

// normalizeBase turns a bare host:port into a full http base URL.
func normalizeBase(base string) string {
	if !strings.Contains(base, "://") {
		return "http://" + base
	}
	return base
}

// watchLine renders one -watch sample: liveness, medium state, windowed
// PDR with a trailing sparkline of recent windows.
func watchLine(s ctlplane.WatchSample, history []float64) string {
	if s.Err != nil {
		return fmt.Sprintf("%s  poll failed: %v", s.T.Format("15:04:05"), s.Err)
	}
	ether := "up"
	if !s.Stats.EtherUp {
		ether = "DOWN"
	}
	pdr := "pdr   -  "
	if s.HasPDR {
		pdr = fmt.Sprintf("pdr %.3f", s.PDR)
	}
	line := fmt.Sprintf("%s  nodes %3d/%-3d  ether %-4s  %s  Δ %d/%d",
		s.T.Format("15:04:05"), s.Stats.NodesAlive, s.Stats.NodesTotal, ether,
		pdr, s.DeltaDelivered, s.DeltaExpected)
	if len(history) > 1 {
		line += "  " + viz.Sparkline(history)
	}
	return line
}

// runWatch consumes the control plane's /stats/stream until ctx ends. The
// server paces the windows and computes the deltas; reconnects resume via
// Last-Event-ID, so restarts show as error lines, never duplicate data.
func runWatch(ctx context.Context, w io.Writer, base string) error {
	c := ctlplane.NewClient(normalizeBase(base))
	// One probe up front so a wrong URL fails fast instead of printing
	// connection errors forever.
	probeCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	h, err := c.Health(probeCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("meshstat -watch: %w", err)
	}
	proto := h.Protocol
	if proto == "" {
		proto = "unknown"
	}
	fmt.Fprintf(w, "watching %s/stats/stream (health %s, protocol %s)\n", c.Base, h.Status, proto)
	const sparkWindow = 30
	var history []float64
	for s := range ctlplane.WatchStream(ctx, c) {
		if s.Anomaly != "" {
			fmt.Fprintf(w, "%s  ANOMALY  %s\n", s.T.Format("15:04:05"), s.Anomaly)
			continue
		}
		if s.HasPDR {
			history = append(history, s.PDR)
			if len(history) > sparkWindow {
				history = history[len(history)-sparkWindow:]
			}
		}
		fmt.Fprintln(w, watchLine(s, history))
	}
	return nil
}

// runSummary loads one run's artifacts and renders the full report.
func runSummary(w io.Writer, path string, topN int) error {
	m, err := telemetry.LoadManifest(path)
	if err != nil {
		return err
	}
	series, err := telemetry.LoadAllSeries(path)
	if err != nil {
		return err
	}
	render(w, m, series, topN)
	return nil
}

// runDiff loads two manifests and renders the per-counter comparison.
func runDiff(w io.Writer, pathA, pathB string) error {
	a, err := telemetry.LoadManifest(pathA)
	if err != nil {
		return err
	}
	b, err := telemetry.LoadManifest(pathB)
	if err != nil {
		return err
	}
	renderDiff(w, pathA, a, pathB, b)
	return nil
}

// layer returns the dotted name's layer prefix ("mac.retries" -> "mac").
func layer(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// layersOf groups instrument names by layer prefix, both sorted.
func layersOf(names []string) (layers []string, byLayer map[string][]string) {
	byLayer = make(map[string][]string)
	for _, n := range names {
		l := layer(n)
		byLayer[l] = append(byLayer[l], n)
	}
	for l, ns := range byLayer {
		sort.Strings(ns)
		byLayer[l] = ns
		layers = append(layers, l)
	}
	sort.Strings(layers)
	return layers, byLayer
}

// counterDeltas converts a counter's cumulative samples into per-interval
// increments, the shape worth sparklining ("how busy was each window").
func counterDeltas(series []telemetry.SeriesSample, name string) []float64 {
	out := make([]float64, 0, len(series))
	var prev uint64
	for _, s := range series {
		v := s.Counters[name]
		out = append(out, float64(v-prev))
		prev = v
	}
	return out
}

// gaugeValues extracts a gauge's sampled values as-is.
func gaugeValues(series []telemetry.SeriesSample, name string) []float64 {
	out := make([]float64, 0, len(series))
	for _, s := range series {
		out = append(out, s.Gauges[name])
	}
	return out
}

// render writes the full single-run report: identity, derived values,
// per-layer instrument tables with sparklines, and the top-N counters.
func render(w io.Writer, m *telemetry.Manifest, series []telemetry.SeriesSample, topN int) {
	fmt.Fprintf(w, "run: %s\n", m.Label)
	proto := ""
	if m.Protocol != "" {
		proto = fmt.Sprintf(", protocol %s", m.Protocol)
	}
	fmt.Fprintf(w, "  metric %s%s, seed %d, %.0fs simulated, %d samples @ %gs\n",
		m.Metric, proto, m.Seed, m.DurationSeconds, m.Samples, m.IntervalSeconds)
	if m.ConfigHash != "" {
		fmt.Fprintf(w, "  config %s\n", m.ConfigHash)
	}
	if m.Build.GoVersion != "" {
		b := m.Build.GoVersion
		if m.Build.Revision != "" {
			rev := m.Build.Revision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			b += " " + rev
			if m.Build.Dirty {
				b += "-dirty"
			}
		}
		fmt.Fprintf(w, "  build %s\n", b)
	}

	if len(m.Derived) > 0 {
		fmt.Fprintf(w, "\nderived:\n")
		for _, k := range sortedKeys(m.Derived) {
			fmt.Fprintf(w, "  %-24s %.4g\n", k, m.Derived[k])
		}
	}

	names := make([]string, 0, len(m.Counters)+len(m.Gauges)+len(m.Histograms))
	for n := range m.Counters {
		names = append(names, n)
	}
	for n := range m.Gauges {
		names = append(names, n)
	}
	for n := range m.Histograms {
		names = append(names, n)
	}
	layers, byLayer := layersOf(names)
	for _, l := range layers {
		fmt.Fprintf(w, "\n[%s]\n", l)
		for _, n := range byLayer[l] {
			short := strings.TrimPrefix(n, l+".")
			switch {
			case hasCounter(m, n):
				spark := ""
				if len(series) > 1 {
					spark = "  " + viz.Sparkline(counterDeltas(series, n))
				}
				fmt.Fprintf(w, "  %-28s %12d%s\n", short, m.Counters[n], spark)
			case hasGauge(m, n):
				spark := ""
				if len(series) > 1 {
					spark = "  " + viz.Sparkline(gaugeValues(series, n))
				}
				fmt.Fprintf(w, "  %-28s %12g%s\n", short, m.Gauges[n], spark)
			default:
				h := m.Histograms[n]
				fmt.Fprintf(w, "  %-28s %12d  mean %.4g%s\n", short, h.Count, h.Mean(),
					histSpark(h))
			}
		}
	}

	if topN > 0 && len(m.Counters) > 0 {
		fmt.Fprintf(w, "\ntop %d counters:\n", topN)
		type kv struct {
			name  string
			value uint64
		}
		top := make([]kv, 0, len(m.Counters))
		for n, v := range m.Counters {
			top = append(top, kv{n, v})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].value != top[j].value {
				return top[i].value > top[j].value
			}
			return top[i].name < top[j].name
		})
		if len(top) > topN {
			top = top[:topN]
		}
		for _, e := range top {
			fmt.Fprintf(w, "  %-32s %12d\n", e.name, e.value)
		}
	}
}

// histSpark renders a histogram's bucket distribution as a sparkline.
func histSpark(h telemetry.HistogramSnapshot) string {
	if h.Count == 0 {
		return ""
	}
	vals := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		vals[i] = float64(c)
	}
	return "  " + viz.Sparkline(vals)
}

func hasCounter(m *telemetry.Manifest, name string) bool {
	_, ok := m.Counters[name]
	return ok
}

func hasGauge(m *telemetry.Manifest, name string) bool {
	_, ok := m.Gauges[name]
	return ok
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// renderDiff writes the per-counter A/B comparison: value in each run,
// absolute delta, and relative change. Counters present in only one run
// show with the other side at 0.
func renderDiff(w io.Writer, labelA string, a *telemetry.Manifest, labelB string, b *telemetry.Manifest) {
	fmt.Fprintf(w, "A: %s (%s)\nB: %s (%s)\n\n", labelA, a.Label, labelB, b.Label)
	union := make(map[string]bool, len(a.Counters)+len(b.Counters))
	for n := range a.Counters {
		union[n] = true
	}
	for n := range b.Counters {
		union[n] = true
	}
	fmt.Fprintf(w, "%-32s %14s %14s %14s %9s\n", "counter", "A", "B", "delta", "pct")
	for _, n := range sortedKeys(union) {
		va, vb := a.Counters[n], b.Counters[n]
		delta := int64(vb) - int64(va)
		pct := "-"
		if va != 0 {
			pct = fmt.Sprintf("%+.1f%%", 100*float64(delta)/float64(va))
		}
		fmt.Fprintf(w, "%-32s %14d %14d %+14d %9s\n", n, va, vb, delta, pct)
	}

	keys := make(map[string]bool, len(a.Derived)+len(b.Derived))
	for k := range a.Derived {
		keys[k] = true
	}
	for k := range b.Derived {
		keys[k] = true
	}
	if len(keys) > 0 {
		fmt.Fprintf(w, "\n%-32s %14s %14s\n", "derived", "A", "B")
		for _, k := range sortedKeys(keys) {
			fmt.Fprintf(w, "%-32s %14.4g %14.4g\n", k, a.Derived[k], b.Derived[k])
		}
	}
}
