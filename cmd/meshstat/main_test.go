package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/telemetry"
)

// writeRun materializes a synthetic telemetry directory with known values.
func writeRun(t *testing.T, label string, frames uint64) string {
	t.Helper()
	dir := t.TempDir()
	manifest := `{
  "schema": "meshcast/telemetry/v1",
  "seed": 7,
  "label": "` + label + `",
  "metric": "spp",
  "build": {"goVersion": "go1.24.0"},
  "durationSeconds": 20,
  "intervalSeconds": 10,
  "samples": 2,
  "counters": {"phy.frames_sent": ` + uitoa(frames) + `, "mac.retries": 3},
  "gauges": {"odmrp.fg_size": 4},
  "histograms": {"mac.queue_depth": {"bounds": [1, 2], "counts": [5, 1, 0], "sum": 7, "count": 6}},
  "derived": {"pdr": 0.9}
}`
	if err := os.WriteFile(filepath.Join(dir, telemetry.ManifestFile), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	series := `{"t":10,"counters":{"phy.frames_sent":` + uitoa(frames/2) + `},"gauges":{"odmrp.fg_size":2}}
{"t":20,"counters":{"phy.frames_sent":` + uitoa(frames) + `},"gauges":{"odmrp.fg_size":4}}
`
	if err := os.WriteFile(filepath.Join(dir, telemetry.SeriesFile), []byte(series), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{'0' + byte(v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSummaryRendersLayersAndTop(t *testing.T) {
	dir := writeRun(t, "run a", 100)
	var sb strings.Builder
	if err := runSummary(&sb, dir, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"run: run a",
		"metric spp, seed 7",
		"[phy]", "[mac]", "[odmrp]",
		"frames_sent", "100",
		"fg_size",
		"queue_depth", "mean 1.167",
		"pdr", "0.9",
		"top 2 counters:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Top-2 must exclude the third-ranked counter section ordering: only two
	// rows under the header.
	topIdx := strings.Index(out, "top 2 counters:")
	rows := strings.Count(strings.TrimRight(out[topIdx:], "\n"), "\n")
	if rows != 2 {
		t.Errorf("top table has %d rows, want 2:\n%s", rows, out[topIdx:])
	}
	// The sparkline for an increasing counter must be present (non-ASCII
	// blocks in the phy section).
	if !strings.Contains(out, "▁") && !strings.Contains(out, "█") {
		t.Errorf("no sparkline rendered:\n%s", out)
	}
}

func TestSummaryWorksWithoutSeries(t *testing.T) {
	dir := writeRun(t, "no series", 10)
	if err := os.Remove(filepath.Join(dir, telemetry.SeriesFile)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runSummary(&sb, dir, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "frames_sent") {
		t.Fatalf("manifest-only summary broken:\n%s", sb.String())
	}
}

func TestSummaryMissingDir(t *testing.T) {
	var sb strings.Builder
	if err := runSummary(&sb, filepath.Join(t.TempDir(), "nope"), 5); err == nil {
		t.Fatal("missing run accepted")
	}
}

func TestDiffShowsDeltas(t *testing.T) {
	a := writeRun(t, "run a", 100)
	b := writeRun(t, "run b", 150)
	var sb strings.Builder
	if err := runDiff(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"(run a)", "(run b)",
		"phy.frames_sent",
		"+50", "+50.0%",
		"mac.retries",
		"pdr",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
}

func TestLayerGrouping(t *testing.T) {
	layers, byLayer := layersOf([]string{"mac.b", "mac.a", "phy.x", "plain"})
	if len(layers) != 3 || layers[0] != "mac" || layers[1] != "phy" || layers[2] != "plain" {
		t.Fatalf("layers = %v", layers)
	}
	if got := byLayer["mac"]; len(got) != 2 || got[0] != "mac.a" {
		t.Fatalf("mac group = %v", got)
	}
}

func TestCounterDeltas(t *testing.T) {
	series := []telemetry.SeriesSample{
		{T: 10, Counters: map[string]uint64{"c": 5}},
		{T: 20, Counters: map[string]uint64{"c": 12}},
		{T: 30, Counters: map[string]uint64{"c": 12}},
	}
	got := counterDeltas(series, "c")
	want := []float64{5, 7, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", got, want)
		}
	}
}

func TestNormalizeBase(t *testing.T) {
	if got := normalizeBase("127.0.0.1:8420"); got != "http://127.0.0.1:8420" {
		t.Fatalf("normalizeBase bare = %q", got)
	}
	if got := normalizeBase("https://mesh.local:8420"); got != "https://mesh.local:8420" {
		t.Fatalf("normalizeBase schemed = %q", got)
	}
}

func TestWatchLine(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 30, 15, 0, time.UTC)
	s := ctlplane.WatchSample{
		T: at,
		Stats: ctlplane.Stats{
			NodesAlive: 23,
			NodesTotal: 25,
			EtherUp:    true,
		},
		DeltaExpected:  100,
		DeltaDelivered: 80,
		PDR:            0.8,
		HasPDR:         true,
	}
	line := watchLine(s, []float64{0.9, 0.8})
	for _, want := range []string{"12:30:15", "23/25", "ether up", "pdr 0.800", "80/100"} {
		if !strings.Contains(line, want) {
			t.Errorf("watch line missing %q: %s", want, line)
		}
	}

	s.Stats.EtherUp = false
	s.HasPDR = false
	line = watchLine(s, nil)
	if !strings.Contains(line, "DOWN") {
		t.Errorf("watch line missing DOWN: %s", line)
	}
	if strings.Contains(line, "0.800") {
		t.Errorf("watch line kept stale pdr: %s", line)
	}

	s.Err = errors.New("connection refused")
	line = watchLine(s, nil)
	if !strings.Contains(line, "poll failed") || !strings.Contains(line, "connection refused") {
		t.Errorf("error sample rendered wrong: %s", line)
	}
}
