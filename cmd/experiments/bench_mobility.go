package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/geom"
	"meshcast/internal/mobility"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
)

// mobilityBenchReport is the BENCH_mobility.json schema: what radio motion
// costs the simulation core, and what the incremental link-cache
// invalidation buys over dropping every cached candidate list per move.
type mobilityBenchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Cores       int    `json:"cores"`
	Nodes       int    `json:"nodes"`

	// End-to-end: the 1k-node metro scenario with a 10 m/s waypoint mover.
	ScenarioSeconds float64 `json:"scenarioSeconds"`
	Moves           uint64  `json:"moves"`
	MovesPerSec     float64 `json:"movesPerSec"`
	LinkBreaks      uint64  `json:"linkBreaks"`
	LinkForms       uint64  `json:"linkForms"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"eventsPerSec"`

	// Microbenchmark: one MoveRadio plus one steady-state broadcast fan-out,
	// with the incremental 3×3-neighborhood invalidation vs discarding every
	// cached candidate list after each move.
	IncrementalNsPerMove float64 `json:"incrementalNsPerMove"`
	FullNsPerMove        float64 `json:"fullNsPerMove"`
	InvalidationSpeedup  float64 `json:"invalidationSpeedup"`
	// MoveNsPerOp is the bare MoveRadio cost (rebucket + invalidate, no
	// traffic) — the ceiling on sustainable position-update rate.
	MoveNsPerOp float64 `json:"moveNsPerOp"`

	// ByteIdentical reports whether the mobility scenario's full result is
	// bit-for-bit identical with the link cache disabled entirely (the
	// recompute-everything reference the incremental path must match).
	ByteIdentical bool   `json:"byteIdentical"`
	Config        string `json:"config"`
}

const benchMobilityNodes = 1000

// benchMobility measures radio motion on the 1k-node metro topology and
// writes the trend to out.
func benchMobility(out string) error {
	rep := mobilityBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		Nodes:       benchMobilityNodes,
		Config: fmt.Sprintf("clustered metro (%d nodes/km²), waypoint mover at 10 m/s from traffic start, "+
			"2 groups×10 members, 512 B CBR @ 20 pkt/s, 2 s traffic (+1 s warmup), seed 1",
			topology.PaperDensityPerKm2),
	}

	fmt.Fprintf(os.Stderr, "bench-mobility: %d nodes: scenario run...\n", benchMobilityNodes)
	res, seconds, err := timeMobilityRun(false)
	if err != nil {
		return err
	}
	rep.ScenarioSeconds = seconds
	rep.Events = res.Events
	rep.EventsPerSec = float64(res.Events) / seconds
	if res.Mobility != nil {
		rep.Moves = res.Mobility.Moves
		rep.MovesPerSec = float64(res.Mobility.Moves) / seconds
		rep.LinkBreaks = res.Mobility.LinkBreaks
		rep.LinkForms = res.Mobility.LinkForms
	}

	fmt.Fprintf(os.Stderr, "bench-mobility: %d nodes: uncached reference run...\n", benchMobilityNodes)
	uncached, _, err := timeMobilityRun(true)
	if err != nil {
		return err
	}
	cachedJSON, err := mobilityFingerprint(res)
	if err != nil {
		return err
	}
	uncachedJSON, err := mobilityFingerprint(uncached)
	if err != nil {
		return err
	}
	rep.ByteIdentical = bytes.Equal(cachedJSON, uncachedJSON)

	fmt.Fprintf(os.Stderr, "bench-mobility: %d nodes: move+transmit microbenchmark (incremental)...\n", benchMobilityNodes)
	rep.IncrementalNsPerMove = benchMoveTransmit(false)
	fmt.Fprintf(os.Stderr, "bench-mobility: %d nodes: move+transmit microbenchmark (full invalidation)...\n", benchMobilityNodes)
	rep.FullNsPerMove = benchMoveTransmit(true)
	if rep.IncrementalNsPerMove > 0 {
		rep.InvalidationSpeedup = rep.FullNsPerMove / rep.IncrementalNsPerMove
	}
	fmt.Fprintf(os.Stderr, "bench-mobility: %d nodes: bare MoveRadio microbenchmark...\n", benchMobilityNodes)
	rep.MoveNsPerOp = benchBareMove()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-mobility: scenario %.1fs (%.0f moves/s, %.0f events/s), "+
		"move+transmit %.0f ns incremental vs %.0f ns full (%.2fx), bare move %.0f ns, byte-identical=%v -> %s\n",
		rep.ScenarioSeconds, rep.MovesPerSec, rep.EventsPerSec,
		rep.IncrementalNsPerMove, rep.FullNsPerMove, rep.InvalidationSpeedup,
		rep.MoveNsPerOp, rep.ByteIdentical, out)
	return nil
}

// mobilityBenchScenario is the metro scenario with a waypoint mover.
func mobilityBenchScenario() (experiments.ScenarioConfig, error) {
	cfg, err := experiments.MetroScenario(benchMobilityNodes, 1)
	if err != nil {
		return cfg, err
	}
	cfg.Mobility = &mobility.Config{
		Model:       mobility.ModelWaypoint,
		MaxSpeedMps: 10,
		Start:       cfg.TrafficStart,
	}
	return cfg, nil
}

// timeMobilityRun executes the mobility metro scenario end to end. uncached
// disables the link cache via the environment toggle — the
// recompute-everything reference for the byte-identity check.
func timeMobilityRun(uncached bool) (*experiments.RunResult, float64, error) {
	if uncached {
		os.Setenv("MESHCAST_NO_LINK_CACHE", "1")
		defer os.Unsetenv("MESHCAST_NO_LINK_CACHE")
	}
	cfg, err := mobilityBenchScenario()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start).Seconds(), nil
}

// mobilityFingerprint serializes every deterministic outcome of a run —
// summary, delay distribution, traffic counters, event count, and the full
// mobility result — for the cached-vs-uncached identity check. (The raw
// RunResult holds a map keyed by struct and cannot marshal directly.)
func mobilityFingerprint(res *experiments.RunResult) ([]byte, error) {
	return json.Marshal(struct {
		Summary       any
		PerMember     any
		Delay         any
		ControlBytes  uint64
		ProbeBytes    uint64
		MACCollisions uint64
		DataForwards  uint64
		Events        uint64
		Mobility      any
	}{
		res.Summary, res.PerMember, res.Delay,
		res.ControlBytes, res.ProbeBytes, res.MACCollisions, res.DataForwards,
		res.Events, res.Mobility,
	})
}

// benchWorld attaches the metro fleet to a fresh medium and warms a 64-radio
// transmitter rotation, mirroring bench_scale's steady-state setup.
func benchWorld() (*sim.Engine, *phy.Medium, []*phy.Radio, int) {
	topoRNG := sim.NewRNG(1 ^ 0x9e3779b97f4a7c15)
	topo, _ := topology.Metro(topoRNG, topology.MetroConfig{
		Nodes:           benchMobilityNodes,
		GatewaySpacingM: 2000,
	})
	engine := sim.NewEngine(7)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, phy.DefaultParams())
	radios := make([]*phy.Radio, topo.NodeCount())
	for i, pos := range topo.Positions {
		radios[i] = medium.AttachRadio(packet.NodeID(i), pos)
	}
	rotate := len(radios)
	if rotate > 64 {
		rotate = 64
	}
	frame := scaleFrame(0)
	for i := 0; i < rotate; i++ {
		frame.Src = radios[i].ID
		radios[i].Transmit(frame)
		engine.RunAll()
	}
	return engine, medium, radios, rotate
}

// benchMoveTransmit measures one MoveRadio plus one broadcast fan-out from a
// rotating warm transmitter. With incremental invalidation only candidate
// lists near the moved radio go cold, so most fan-outs stay warm; full
// invalidation (discarding the whole cache per move, the pre-incremental
// behavior) makes every fan-out rebuild its list.
func benchMoveTransmit(full bool) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		engine, medium, radios, rotate := benchWorld()
		frame := scaleFrame(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mover := radios[i%len(radios)]
			medium.MoveRadio(mover, benchMovePos(mover.Pos, i))
			if full {
				medium.SetLinkCache(true) // drops every cached list
			}
			src := radios[i%rotate]
			frame.Src = src.ID
			src.Transmit(frame)
			engine.RunAll()
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// benchBareMove measures MoveRadio alone: cell rebucketing plus incremental
// invalidation, no traffic.
func benchBareMove() float64 {
	r := testing.Benchmark(func(b *testing.B) {
		_, medium, radios, _ := benchWorld()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mover := radios[i%len(radios)]
			medium.MoveRadio(mover, benchMovePos(mover.Pos, i))
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// benchMovePos displaces a position by a deterministic sub-cell step that
// alternates direction, keeping the fleet near its original placement.
func benchMovePos(p geom.Point, i int) geom.Point {
	dx := float64(7+i%13) * 1.5
	dy := float64(5+i%11) * 1.5
	if i%2 == 0 {
		dx, dy = -dx, -dy
	}
	return geom.Point{X: p.X + dx, Y: p.Y + dy}
}
