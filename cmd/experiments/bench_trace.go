package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/packet"
	"meshcast/internal/trace"
)

// traceBenchReport is the BENCH_trace.json schema: the measured cost of
// packet-journey tracing, at the span-call level (ns per Span call,
// disabled vs enabled), the run level (the same scenario bare vs with a
// span sink attached), and the analysis level (journeys reconstructed per
// second from the captured spans). The disabled number is the acceptance
// bar: with no span sink wired in, every Span call is a nil check and
// packets carry a zero trace ID, so production sweeps pay nothing.
type traceBenchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Cores       int    `json:"cores"`
	// Span-call microbenchmarks (testing.Benchmark).
	DisabledSpanNsPerOp float64 `json:"disabledSpanNsPerOp"`
	EnabledSpanNsPerOp  float64 `json:"enabledSpanNsPerOp"`
	// Whole-run comparison: bare (tracing disabled — the default) vs with
	// an in-memory span sink attached. Best of Runs attempts each.
	BareRunSeconds   float64 `json:"bareRunSeconds"`
	TracedRunSeconds float64 `json:"tracedRunSeconds"`
	// EnabledOverheadPct is the traced run's slowdown over the bare run.
	EnabledOverheadPct float64 `json:"enabledOverheadPct"`
	// Journey reconstruction throughput over the traced run's spans.
	SpansCaptured      int     `json:"spansCaptured"`
	JourneysPerRun     int     `json:"journeysPerRun"`
	JourneysPerSecond  float64 `json:"journeysPerSecond"`
	ReconstructNsPerOp float64 `json:"reconstructNsPerOp"`
	Runs               int     `json:"runs"`
	Config             string  `json:"config"`
}

// benchTraceOverhead measures packet-journey tracing's cost and writes the
// report to out.
func benchTraceOverhead(out string) error {
	nsPerOp := func(f func(b *testing.B)) float64 {
		r := testing.Benchmark(f)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}

	// Span-call microbenchmarks. The disabled case is the hot path every
	// un-traced run takes: a nil tracer (or a zero trace ID) must cost a
	// branch, not an allocation.
	var nilTracer *trace.Tracer
	enabled := trace.New(nil, func() time.Duration { return 0 })
	enabled.SetSpanSink(discardSpans{})
	p := &packet.Packet{Kind: packet.TypeData, Group: 1, Seq: 7, TraceID: 1}

	rep := traceBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		Runs:        3,
		Config:      "20 nodes, 1 group, 30 s traffic (+10 s warmup), SPP",
		DisabledSpanNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilTracer.Span(trace.SpanForward, 1, 2, p)
			}
		}),
		EnabledSpanNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enabled.Span(trace.SpanForward, 1, 2, p)
			}
		}),
	}

	timeRun := func(sink trace.SpanSink) (float64, error) {
		cfg, err := benchScenario(nil)
		if err != nil {
			return 0, err
		}
		cfg.SpanSink = sink
		start := time.Now()
		if _, err := experiments.RunScenario(cfg); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	best := func(traced bool) (float64, *trace.SpanBuffer, error) {
		min := 0.0
		var buf *trace.SpanBuffer
		for i := 0; i < rep.Runs; i++ {
			var sink trace.SpanSink
			var b *trace.SpanBuffer
			if traced {
				b = &trace.SpanBuffer{}
				sink = b
			}
			s, err := timeRun(sink)
			if err != nil {
				return 0, nil, err
			}
			if min == 0 || s < min {
				min = s
			}
			buf = b
		}
		return min, buf, nil
	}

	fmt.Fprintf(os.Stderr, "bench: %d bare runs...\n", rep.Runs)
	var err error
	if rep.BareRunSeconds, _, err = best(false); err != nil {
		return fmt.Errorf("bench bare: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d span-traced runs...\n", rep.Runs)
	var buf *trace.SpanBuffer
	if rep.TracedRunSeconds, buf, err = best(true); err != nil {
		return fmt.Errorf("bench traced: %w", err)
	}
	rep.EnabledOverheadPct = 100 * (rep.TracedRunSeconds - rep.BareRunSeconds) / rep.BareRunSeconds

	// Journey reconstruction throughput over the real captured span set.
	spans := buf.Spans()
	rep.SpansCaptured = len(spans)
	rep.JourneysPerRun = len(trace.Reconstruct(spans))
	rep.ReconstructNsPerOp = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trace.Reconstruct(spans)
		}
	})
	if rep.ReconstructNsPerOp > 0 {
		rep.JourneysPerSecond = float64(rep.JourneysPerRun) / (rep.ReconstructNsPerOp / 1e9)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: disabled span %.2f ns/op (enabled %.2f), bare %.3fs vs traced %.3fs (%+.1f%%), %d spans -> %d journeys (%.0f journeys/s) -> %s\n",
		rep.DisabledSpanNsPerOp, rep.EnabledSpanNsPerOp,
		rep.BareRunSeconds, rep.TracedRunSeconds, rep.EnabledOverheadPct,
		rep.SpansCaptured, rep.JourneysPerRun, rep.JourneysPerSecond, out)
	return nil
}

// discardSpans is the cheapest possible sink, isolating the tracer's own
// cost in the enabled-span microbenchmark.
type discardSpans struct{}

func (discardSpans) EmitSpan(trace.Span) {}
