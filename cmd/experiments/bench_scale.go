package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
)

// scaleTier is one node-count row of BENCH_scale.json.
type scaleTier struct {
	Nodes int     `json:"nodes"`
	SideM float64 `json:"sideM"`
	// SetupSeconds is medium construction + radio attach + priming every
	// transmitter's candidate list — the part incremental invalidation and
	// the indexed builder turn from quadratic into near-linear.
	SetupSeconds float64 `json:"setupSeconds"`
	// Whole-run numbers for the metro scenario at this tier.
	RunSeconds   float64 `json:"runSeconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"eventsPerSec"`
	// UncachedRunSeconds/EventsPerSec compare the recompute-everything
	// fan-out at this tier; only measured where feasible (small tiers), zero
	// otherwise.
	UncachedRunSeconds   float64 `json:"uncachedRunSeconds,omitempty"`
	UncachedEventsPerSec float64 `json:"uncachedEventsPerSec,omitempty"`
	// TransmitNsPerOp is the steady-state cost of one broadcast fan-out
	// (fully drained) on this tier's topology. With the cell index this
	// tracks local density, not total N — the flatness ratio below is the
	// acceptance check.
	TransmitNsPerOp float64 `json:"transmitNsPerOp"`
}

// scaleBenchReport is the BENCH_scale.json schema: the metro-scale growth
// trend of the simulation core with the spatial cell index.
type scaleBenchReport struct {
	GeneratedAt string      `json:"generatedAt"`
	Cores       int         `json:"cores"`
	Tiers       []scaleTier `json:"tiers"`
	// TransmitFlatness is largest-tier transmit ns/op over smallest-tier
	// ns/op. Density is constant across tiers, so a value near 1 means
	// per-transmit cost no longer scales with total N (pre-index it tracked
	// the O(N) candidate scan).
	TransmitFlatness float64 `json:"transmitFlatness"`
	Config           string  `json:"config"`
}

// benchScale measures the metro scenario at each node count and writes the
// trend to out. nodeCsv is a comma-separated node-count list.
func benchScale(out, nodeCsv string) error {
	var tiers []int
	for _, f := range strings.Split(nodeCsv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 30 {
			return fmt.Errorf("-scale-nodes: bad node count %q", f)
		}
		tiers = append(tiers, n)
	}
	rep := scaleBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		Config: fmt.Sprintf("clustered metro at paper density (%d nodes/km²), 2 km gateway lattice, "+
			"MinHop, 2 groups×10 members, 512 B CBR @ 20 pkt/s, 2 s traffic (+1 s warmup), seed 1; "+
			"uncached comparison at ≤1k nodes", topology.PaperDensityPerKm2),
	}

	for _, n := range tiers {
		fmt.Fprintf(os.Stderr, "bench-scale: %d nodes: setup...\n", n)
		tier := scaleTier{Nodes: n}

		// Setup: attach every radio and prime every candidate list.
		cfg, err := experiments.MetroScenario(n, 1)
		if err != nil {
			return err
		}
		tier.SideM = cfg.Topology.Area.Width()
		start := time.Now()
		engine := sim.NewEngine(1)
		medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, phy.DefaultParams())
		radios := make([]*phy.Radio, cfg.Topology.NodeCount())
		for i, pos := range cfg.Topology.Positions {
			radios[i] = medium.AttachRadio(packet.NodeID(i), pos)
		}
		for _, r := range radios {
			r.Transmit(scaleFrame(r.ID))
			engine.RunAll()
		}
		tier.SetupSeconds = time.Since(start).Seconds()

		fmt.Fprintf(os.Stderr, "bench-scale: %d nodes: full run...\n", n)
		seconds, events, err := timeScaleRun(n, false)
		if err != nil {
			return err
		}
		tier.RunSeconds = seconds
		tier.Events = events
		tier.EventsPerSec = float64(events) / seconds

		if n <= 1000 {
			fmt.Fprintf(os.Stderr, "bench-scale: %d nodes: uncached run...\n", n)
			seconds, events, err := timeScaleRun(n, true)
			if err != nil {
				return err
			}
			tier.UncachedRunSeconds = seconds
			tier.UncachedEventsPerSec = float64(events) / seconds
		}

		fmt.Fprintf(os.Stderr, "bench-scale: %d nodes: transmit microbenchmark...\n", n)
		tier.TransmitNsPerOp = benchMetroTransmit(cfg.Topology)
		rep.Tiers = append(rep.Tiers, tier)
	}

	first, last := rep.Tiers[0], rep.Tiers[len(rep.Tiers)-1]
	if first.TransmitNsPerOp > 0 {
		rep.TransmitFlatness = last.TransmitNsPerOp / first.TransmitNsPerOp
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, tr := range rep.Tiers {
		fmt.Fprintf(os.Stderr, "bench-scale: %6d nodes: setup %.2fs, run %.1fs, %.0f events/s, transmit %.0f ns/op\n",
			tr.Nodes, tr.SetupSeconds, tr.RunSeconds, tr.EventsPerSec, tr.TransmitNsPerOp)
	}
	fmt.Fprintf(os.Stderr, "bench-scale: transmit flatness %dx nodes -> %.2fx cost -> %s\n",
		last.Nodes/first.Nodes, rep.TransmitFlatness, out)
	return nil
}

// timeScaleRun executes the metro scenario end to end and returns wall time
// and event count. uncached disables the static link cache via the
// environment toggle (RunScenario owns its Medium).
func timeScaleRun(n int, uncached bool) (float64, uint64, error) {
	if uncached {
		os.Setenv("MESHCAST_NO_LINK_CACHE", "1")
		defer os.Unsetenv("MESHCAST_NO_LINK_CACHE")
	}
	cfg, err := experiments.MetroScenario(n, 1)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start).Seconds(), res.Events, nil
}

// benchMetroTransmit measures one steady-state broadcast fan-out (fully
// drained) on the given topology. Transmitters rotate over a fixed 64-radio
// prefix so candidate lists go warm after the first rotation and the measured
// cost is the per-frame fan-out, not list (re)builds.
func benchMetroTransmit(topo *topology.Topology) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		engine := sim.NewEngine(7)
		medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, phy.DefaultParams())
		radios := make([]*phy.Radio, topo.NodeCount())
		for i, pos := range topo.Positions {
			radios[i] = medium.AttachRadio(packet.NodeID(i), pos)
		}
		rotate := len(radios)
		if rotate > 64 {
			rotate = 64
		}
		frame := scaleFrame(0)
		for i := 0; i < rotate; i++ { // warm the rotated lists
			frame.Src = radios[i].ID
			radios[i].Transmit(frame)
			engine.RunAll()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := radios[i%rotate]
			frame.Src = src.ID
			src.Transmit(frame)
			engine.RunAll()
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func scaleFrame(src packet.NodeID) *packet.Frame {
	return &packet.Frame{
		Kind:    packet.FrameData,
		Src:     src,
		Dst:     packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeData, Src: src, PayloadBytes: 512},
	}
}
