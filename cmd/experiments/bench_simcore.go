package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
)

// simcoreBenchReport is the BENCH_simcore.json schema: the simulation core's
// measured throughput on the paper's 50-node scenario with the static link
// cache on vs off, plus a transmit fan-out microbenchmark (allocations and
// time per Medium.transmit fan-out). ByteIdentical is the cache's
// determinism contract, re-checked on this machine: the cached and uncached
// runs must produce the same statistics.
type simcoreBenchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Cores       int    `json:"cores"`
	// Whole-run comparison on the fixed-seed 50-node paper scenario.
	CachedEventsPerSec   float64 `json:"cachedEventsPerSec"`
	UncachedEventsPerSec float64 `json:"uncachedEventsPerSec"`
	EventRateSpeedup     float64 `json:"eventRateSpeedup"`
	CachedRunSeconds     float64 `json:"cachedRunSeconds"`
	UncachedRunSeconds   float64 `json:"uncachedRunSeconds"`
	ByteIdentical        bool    `json:"byteIdentical"`
	// Transmit fan-out microbenchmark: one broadcast frame fanned out to a
	// 50-node topology and fully drained (testing.Benchmark).
	CachedTransmitNsPerOp       float64 `json:"cachedTransmitNsPerOp"`
	UncachedTransmitNsPerOp     float64 `json:"uncachedTransmitNsPerOp"`
	CachedTransmitAllocsPerOp   float64 `json:"cachedTransmitAllocsPerOp"`
	UncachedTransmitAllocsPerOp float64 `json:"uncachedTransmitAllocsPerOp"`
	AllocReductionPct           float64 `json:"allocReductionPct"`
	Runs                        int     `json:"runs"`
	Config                      string  `json:"config"`
}

// simcoreScenario is the fixed comparison run: the paper's 50-node §4.1
// scenario (SPP, seed 1) with a reduced traffic window.
func simcoreScenario() (experiments.ScenarioConfig, error) {
	cfg, err := experiments.DefaultScenario(metric.SPP, 1)
	if err != nil {
		return experiments.ScenarioConfig{}, err
	}
	cfg.TrafficStart = 10 * time.Second
	cfg.Duration = 40 * time.Second
	return cfg, nil
}

// benchSimcore measures the simulation core and writes BENCH_simcore.json.
func benchSimcore(out string) error {
	rep := simcoreBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		Runs:        3,
		Config:      "50 nodes, 2 groups, 30 s traffic (+10 s warmup), SPP, seed 1",
	}

	// Whole-run events/sec, best of Runs attempts per mode. The cache
	// toggle rides the environment variable because RunScenario owns its
	// Medium.
	type runOutcome struct {
		seconds float64
		events  uint64
		stats   string
	}
	timeRun := func(cached bool) (runOutcome, error) {
		if cached {
			os.Unsetenv("MESHCAST_NO_LINK_CACHE")
		} else {
			os.Setenv("MESHCAST_NO_LINK_CACHE", "1")
		}
		defer os.Unsetenv("MESHCAST_NO_LINK_CACHE")
		cfg, err := simcoreScenario()
		if err != nil {
			return runOutcome{}, err
		}
		start := time.Now()
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			return runOutcome{}, err
		}
		return runOutcome{
			seconds: time.Since(start).Seconds(),
			events:  res.Events,
			stats:   fmt.Sprintf("%+v|%+v|%d", res.Summary, res.Delay, res.MACCollisions),
		}, nil
	}
	best := func(cached bool) (runOutcome, error) {
		var bestRun runOutcome
		for i := 0; i < rep.Runs; i++ {
			r, err := timeRun(cached)
			if err != nil {
				return runOutcome{}, err
			}
			if bestRun.seconds == 0 || r.seconds < bestRun.seconds {
				bestRun = r
			}
		}
		return bestRun, nil
	}

	fmt.Fprintf(os.Stderr, "bench: %d cached scenario runs...\n", rep.Runs)
	cached, err := best(true)
	if err != nil {
		return fmt.Errorf("bench cached: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d uncached scenario runs...\n", rep.Runs)
	uncached, err := best(false)
	if err != nil {
		return fmt.Errorf("bench uncached: %w", err)
	}
	rep.CachedRunSeconds = cached.seconds
	rep.UncachedRunSeconds = uncached.seconds
	rep.CachedEventsPerSec = float64(cached.events) / cached.seconds
	rep.UncachedEventsPerSec = float64(uncached.events) / uncached.seconds
	rep.EventRateSpeedup = rep.CachedEventsPerSec / rep.UncachedEventsPerSec
	rep.ByteIdentical = cached.events == uncached.events && cached.stats == uncached.stats

	fmt.Fprintln(os.Stderr, "bench: transmit fan-out microbenchmark...")
	cachedTx := benchTransmitFanout(true)
	uncachedTx := benchTransmitFanout(false)
	rep.CachedTransmitNsPerOp = float64(cachedTx.T.Nanoseconds()) / float64(cachedTx.N)
	rep.UncachedTransmitNsPerOp = float64(uncachedTx.T.Nanoseconds()) / float64(uncachedTx.N)
	rep.CachedTransmitAllocsPerOp = float64(cachedTx.AllocsPerOp())
	rep.UncachedTransmitAllocsPerOp = float64(uncachedTx.AllocsPerOp())
	if rep.UncachedTransmitAllocsPerOp > 0 {
		rep.AllocReductionPct = 100 * (rep.UncachedTransmitAllocsPerOp - rep.CachedTransmitAllocsPerOp) / rep.UncachedTransmitAllocsPerOp
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: %.0f events/s cached vs %.0f uncached (%.2fx), transmit %.0f -> %.0f allocs/op (-%.0f%%), byte-identical=%v -> %s\n",
		rep.CachedEventsPerSec, rep.UncachedEventsPerSec, rep.EventRateSpeedup,
		rep.UncachedTransmitAllocsPerOp, rep.CachedTransmitAllocsPerOp, rep.AllocReductionPct,
		rep.ByteIdentical, out)
	return nil
}

// benchTransmitFanout measures one broadcast fan-out across a 50-node
// topology, fully drained: the two arrival events per in-range receiver plus
// their begin/end processing. This is the per-frame cost every simulated
// transmission pays.
func benchTransmitFanout(cachedLinks bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		rng := sim.NewRNG(7)
		topo, err := topology.RandomConnected(rng, 50, geom.Square(1000), 250, 500)
		if err != nil {
			b.Fatal(err)
		}
		engine := sim.NewEngine(7)
		medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, phy.DefaultParams())
		medium.SetLinkCache(cachedLinks)
		radios := make([]*phy.Radio, topo.NodeCount())
		for i, pos := range topo.Positions {
			radios[i] = medium.AttachRadio(packet.NodeID(i), pos)
		}
		frame := &packet.Frame{
			Kind:    packet.FrameData,
			Src:     0,
			Dst:     packet.Broadcast,
			Payload: &packet.Packet{Kind: packet.TypeData, Src: 0, PayloadBytes: 512},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := radios[i%len(radios)]
			frame.Src = src.ID
			src.Transmit(frame)
			engine.RunAll()
		}
	})
}
