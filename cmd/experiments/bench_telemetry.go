package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/sim"
	"meshcast/internal/telemetry"
	"meshcast/internal/topology"
)

// telemetryBenchReport is the BENCH_telemetry.json schema: the measured cost
// of the telemetry instrumentation, at both the instrument level (ns per
// operation, disabled vs enabled) and the run level (wall-clock of the same
// scenario bare vs with a recorder attached). The disabled numbers are the
// acceptance bar: with no registry wired in, every instrument call is a nil
// check, so a bare run pays nothing for the instrumentation hooks.
type telemetryBenchReport struct {
	GeneratedAt string `json:"generatedAt"`
	Cores       int    `json:"cores"`
	// Instrument microbenchmarks (testing.Benchmark).
	DisabledCounterNsPerOp   float64 `json:"disabledCounterNsPerOp"`
	EnabledCounterNsPerOp    float64 `json:"enabledCounterNsPerOp"`
	DisabledHistogramNsPerOp float64 `json:"disabledHistogramNsPerOp"`
	EnabledHistogramNsPerOp  float64 `json:"enabledHistogramNsPerOp"`
	// Whole-run comparison: the same scenario, bare (telemetry disabled —
	// the default for every sweep) vs with a recorder attached. Best of
	// Runs attempts each, which suppresses scheduler noise.
	BareRunSeconds         float64 `json:"bareRunSeconds"`
	InstrumentedRunSeconds float64 `json:"instrumentedRunSeconds"`
	EnabledOverheadPct     float64 `json:"enabledOverheadPct"`
	Runs                   int     `json:"runs"`
	Config                 string  `json:"config"`
}

// benchScenario builds the fixed comparison scenario: 20 nodes, one group,
// 30 s of traffic after a 10 s warmup.
func benchScenario(rec *telemetry.Recorder) (experiments.ScenarioConfig, error) {
	const seed = 42
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	topo, err := topology.RandomConnected(rng, 20, geom.Square(700), 250, 500)
	if err != nil {
		return experiments.ScenarioConfig{}, err
	}
	return experiments.ScenarioConfig{
		Seed:            seed,
		Metric:          metric.SPP,
		Topology:        topo,
		Duration:        40 * time.Second,
		Groups:          experiments.DefaultGroups(rng.Split(), 20, 1, 1, 5),
		PayloadBytes:    512,
		SendInterval:    50 * time.Millisecond,
		ProbeRateFactor: 1,
		TrafficStart:    10 * time.Second,
		Telemetry:       rec,
	}, nil
}

// benchTelemetryOverhead measures the instrumentation's cost and writes the
// report to out.
func benchTelemetryOverhead(out string) error {
	nsPerOp := func(f func(b *testing.B)) float64 {
		r := testing.Benchmark(f)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}

	var nilCounter *telemetry.Counter
	var nilHist *telemetry.Histogram
	reg := telemetry.NewRegistry()
	counter := reg.Counter("bench.counter")
	hist := reg.Histogram("bench.hist", telemetry.SecondsBuckets)

	rep := telemetryBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		Runs:        3,
		Config:      "20 nodes, 1 group, 30 s traffic (+10 s warmup), SPP",
		DisabledCounterNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilCounter.Inc()
			}
		}),
		EnabledCounterNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counter.Inc()
			}
		}),
		DisabledHistogramNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilHist.Observe(1)
			}
		}),
		EnabledHistogramNsPerOp: nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hist.Observe(float64(i % 7))
			}
		}),
	}

	tmp, err := os.MkdirTemp("", "meshcast-bench-telemetry-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	timeRun := func(i int, instrumented bool) (float64, error) {
		var rec *telemetry.Recorder
		if instrumented {
			var err error
			rec, err = telemetry.NewRecorder(filepath.Join(tmp, fmt.Sprintf("run%d", i)), 0)
			if err != nil {
				return 0, err
			}
		}
		cfg, err := benchScenario(rec)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := experiments.RunScenario(cfg); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	best := func(instrumented bool) (float64, error) {
		min := 0.0
		for i := 0; i < rep.Runs; i++ {
			s, err := timeRun(i, instrumented)
			if err != nil {
				return 0, err
			}
			if min == 0 || s < min {
				min = s
			}
		}
		return min, nil
	}

	fmt.Fprintf(os.Stderr, "bench: %d bare runs...\n", rep.Runs)
	if rep.BareRunSeconds, err = best(false); err != nil {
		return fmt.Errorf("bench bare: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d instrumented runs...\n", rep.Runs)
	if rep.InstrumentedRunSeconds, err = best(true); err != nil {
		return fmt.Errorf("bench instrumented: %w", err)
	}
	rep.EnabledOverheadPct = 100 * (rep.InstrumentedRunSeconds - rep.BareRunSeconds) / rep.BareRunSeconds

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: disabled counter %.2f ns/op (enabled %.2f), bare %.3fs vs instrumented %.3fs (%+.1f%%) -> %s\n",
		rep.DisabledCounterNsPerOp, rep.EnabledCounterNsPerOp,
		rep.BareRunSeconds, rep.InstrumentedRunSeconds, rep.EnabledOverheadPct, out)
	return nil
}
