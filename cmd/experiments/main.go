// Command experiments regenerates every table and figure of the paper's
// evaluation and emits a markdown report comparing paper values with
// measured values (the contents of EXPERIMENTS.md).
//
// Usage:
//
//	go run ./cmd/experiments            # quick: 3 seeds, 150 s traffic
//	go run ./cmd/experiments -full      # paper scale: 10 seeds, 400 s
//	go run ./cmd/experiments -o EXPERIMENTS.md
//	go run ./cmd/experiments -skip-ablations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/metric"
)

func main() {
	full := flag.Bool("full", false, "paper-scale configuration (10 seeds, 400 s traffic; slower)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	skipAblations := flag.Bool("skip-ablations", false, "skip the (slow) ablation sweeps")
	testbedRuns := flag.Int("testbed-runs", 5, "testbed runs per metric")
	flag.Parse()
	if err := run(*full, *out, *skipAblations, *testbedRuns); err != nil {
		log.Fatal(err)
	}
}

func run(full bool, out string, skipAblations bool, testbedRuns int) error {
	start := time.Now()
	opts := experiments.QuickOptions()
	// secondary scales down the probing-rate variants and ablations, which
	// sweep many configurations; the headline Figure 2 column keeps the
	// full seed count.
	secondary := opts
	testbedSeconds := 150
	if full {
		opts = experiments.FullOptions()
		secondary = opts
		secondary.Seeds = opts.Seeds[:5]
		secondary.TrafficSeconds = 250
		testbedSeconds = 400
	}
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[%7s] ", time.Since(start).Round(time.Second))
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	report := experiments.NewReport(opts, testbedRuns, testbedSeconds)

	progress("figure 2: throughput-simulations (+ delay + table 1)")
	sims, err := experiments.RunPaperSims(opts)
	if err != nil {
		return fmt.Errorf("fig2 simulations: %w", err)
	}
	report.Fig2SimTable(`Figure 2 — column "Throughput-simulations"`, sims, experiments.PaperFig2Simulation,
		"Shape reproduced: every link-quality metric beats the original ODMRP;\n"+
			"SPP leads, ETT trails ETX. Our fading regime is harsher than\n"+
			"GloMoSim's, so absolute gains are larger than the paper's 13.5-18%.")
	report.DelayTable(sims)
	report.Table1(sims)

	progress("figure 2: throughput with 5x probing rate")
	high := secondary
	high.ProbeRateFactor = 5
	highSims, err := experiments.RunPaperSims(high)
	if err != nil {
		return fmt.Errorf("fig2 high overhead: %w", err)
	}
	report.Fig2SimTable(`Figure 2 — column "Throughput-high overhead" (5x probing)`, highSims, nil,
		"Paper: all metrics drop by ~2% relative to the default probing rate\n"+
			"because probes interfere with data traffic.")

	progress("§4.2.2: throughput with 10x lower probing rate")
	low := secondary
	low.ProbeRateFactor = 0.1
	lowSims, err := experiments.RunPaperSims(low)
	if err != nil {
		return fmt.Errorf("fig2 low overhead: %w", err)
	}
	report.Fig2SimTable("§4.2.2 — 10x lower probing rate", lowSims, nil,
		"Paper: gains improve by ~3% — less probe interference, at the price\n"+
			"of staler link information.")

	progress("figure 2: throughput-testbed (+ figure 4/5 artifacts)")
	col, err := experiments.RunTestbedColumn(testbedRuns, testbedSeconds)
	if err != nil {
		return fmt.Errorf("testbed column: %w", err)
	}
	report.TestbedTable(col)

	progress("§4.3: multiple sources per group")
	multiOpts := secondary
	multiOpts.Metrics = []metric.Kind{metric.SPP, metric.PP, metric.ETX}
	multi, err := experiments.RunMultiSource(multiOpts, 3)
	if err != nil {
		return fmt.Errorf("multi-source: %w", err)
	}
	report.MultiSourceSection(multi)

	if !skipAblations {
		progress("ablation: fading on/off")
		fad, err := experiments.RunFadingAblation(secondary)
		if err != nil {
			return fmt.Errorf("fading ablation: %w", err)
		}
		report.FadingSection(fad)

		progress("ablation: delta/alpha sweep")
		da, err := experiments.RunDeltaAlphaAblation(secondary, metric.SPP, []struct{ Delta, Alpha time.Duration }{
			{0, 0},
			{30 * time.Millisecond, 20 * time.Millisecond},
			{120 * time.Millisecond, 80 * time.Millisecond},
		})
		if err != nil {
			return fmt.Errorf("delta/alpha ablation: %w", err)
		}
		report.DeltaAlphaSection(da)

		progress("ablation: estimator history")
		hist, err := experiments.RunHistoryAblation(secondary)
		if err != nil {
			return fmt.Errorf("history ablation: %w", err)
		}
		report.HistorySection(hist)
	}

	report.Deviations()
	report.Elapsed(time.Since(start))
	progress("done")

	if out == "" {
		fmt.Print(report.String())
		return nil
	}
	return os.WriteFile(out, []byte(report.String()), 0o644)
}
