// Command experiments regenerates every table and figure of the paper's
// evaluation and emits a markdown report comparing paper values with
// measured values (the contents of EXPERIMENTS.md).
//
// Every (metric, seed) cell of the evaluation is an independent simulation,
// so the matrix executes through the internal/runner job harness: -j sets
// the worker count (the report is byte-identical for any value), and
// -cache-dir enables the content-addressed result cache so repeated or
// resumed sweeps skip completed runs.
//
// Usage:
//
//	go run ./cmd/experiments            # quick: 3 seeds, 150 s traffic
//	go run ./cmd/experiments -full      # paper scale: 10 seeds, 400 s
//	go run ./cmd/experiments -j 8 -cache-dir .expcache -o EXPERIMENTS.md
//	go run ./cmd/experiments -skip-ablations
//	go run ./cmd/experiments -protocol mcst   # ODMRP-vs-MCST comparison
//	go run ./cmd/experiments -bench-runner BENCH_runner.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	_ "meshcast/internal/multicast/protocols" // populate the protocol registry
	"meshcast/internal/prof"
	"meshcast/internal/runner"
	"meshcast/internal/telemetry"
)

func main() {
	full := flag.Bool("full", false, "paper-scale configuration (10 seeds, 400 s traffic; slower)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	skipAblations := flag.Bool("skip-ablations", false, "skip the (slow) ablation sweeps")
	protocol := flag.String("protocol", "", "compare ODMRP against this multicast protocol across every paper metric and exit (registered: "+strings.Join(multicast.Names(), ", ")+")")
	testbedRuns := flag.Int("testbed-runs", 5, "testbed runs per metric")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation jobs (output is byte-identical for any value)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (empty disables caching)")
	benchOut := flag.String("bench-runner", "", "benchmark the job harness (serial vs -j parallel reduced sweep), write JSON here, and exit")
	benchTelemetry := flag.String("bench-telemetry", "", "benchmark disabled-instrument overhead, write JSON here, and exit")
	benchSim := flag.String("bench-simcore", "", "benchmark the simulation core (link cache on/off, transmit fan-out allocations), write JSON here, and exit")
	benchTrace := flag.String("bench-trace", "", "benchmark packet-journey tracing overhead and reconstruction throughput, write JSON here, and exit")
	benchScaleOut := flag.String("bench-scale", "", "benchmark metro-scale growth (events/sec, setup time, per-transmit cost per -scale-nodes tier), write JSON here, and exit")
	scaleNodes := flag.String("scale-nodes", "1000,5000,10000", "comma-separated node counts for -bench-scale")
	mobilitySweep := flag.Bool("mobility", false, "run the ODMRP-vs-MCST mobility speed sweep and exit")
	mobilitySpeeds := flag.String("mobility-speeds", "0,1,5,10,20", "comma-separated max speeds (m/s) for -mobility; 0 is the static control")
	benchMobilityOut := flag.String("bench-mobility", "", "benchmark radio motion (moves/sec, incremental vs full link-cache invalidation), write JSON here, and exit")
	telemetryDir := flag.String("telemetry", "", "record sweep-harness telemetry (cache hits/misses, job latency) to this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *protocol != "":
		err = runProtocolComparison(*protocol, *out, *full, *jobs, *cacheDir)
	case *benchSim != "":
		err = benchSimcore(*benchSim)
	case *benchTelemetry != "":
		err = benchTelemetryOverhead(*benchTelemetry)
	case *benchTrace != "":
		err = benchTraceOverhead(*benchTrace)
	case *benchMobilityOut != "":
		err = benchMobility(*benchMobilityOut)
	case *mobilitySweep:
		err = runMobilitySweep(*mobilitySpeeds, *out, *full, *jobs, *cacheDir)
	case *benchScaleOut != "":
		err = benchScale(*benchScaleOut, *scaleNodes)
	case *benchOut != "":
		err = benchRunner(*benchOut, *jobs, *cacheDir)
	default:
		err = run(*full, *out, *skipAblations, *testbedRuns, *jobs, *cacheDir, *telemetryDir)
	}
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runProtocolComparison sweeps ODMRP and the named protocol over every
// paper metric and seed, and renders the comparison table. Unknown protocol
// names fail before any simulation runs, listing the registered ones.
func runProtocolComparison(protocol, out string, full bool, jobs int, cacheDir string) error {
	name, err := multicast.Resolve(protocol)
	if err != nil {
		return fmt.Errorf("-protocol: %w", err)
	}
	start := time.Now()
	opts := experiments.QuickOptions()
	if full {
		opts = experiments.FullOptions()
	}
	// The comparison runs the §4.3 multi-source regime: with one source per
	// group ODMRP's reply mesh degenerates to exactly the shared tree MCST
	// builds from that source as core (the golden tests pin the byte
	// identity), so protocol structure only shows with several senders.
	opts.SourcesPerGroup = 3
	opts.Workers = jobs
	opts.CacheDir = cacheDir
	opts.Progress = func(p runner.Progress) {
		suffix := ""
		if p.Cached {
			suffix = " (cached)"
		}
		if p.Err != nil {
			suffix = " FAILED: " + p.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "[%7s] [%d/%d] %s done%s\n",
			time.Since(start).Round(time.Second), p.Done, p.Total, p.Label, suffix)
	}
	protocols := []string{multicast.Default}
	if name != multicast.Default {
		protocols = append(protocols, name)
	}
	cmp, err := experiments.RunProtocolComparison(opts, protocols)
	if err != nil {
		return err
	}
	report := experiments.NewReport(opts, 0, 0)
	report.ProtocolSection(cmp)
	report.Elapsed(time.Since(start))
	if out == "" {
		fmt.Print(report.String())
		return nil
	}
	return os.WriteFile(out, []byte(report.String()), 0o644)
}

// runMobilitySweep executes the ODMRP-vs-MCST waypoint speed sweep and
// renders the mobility section. speedCsv is a comma-separated m/s list.
func runMobilitySweep(speedCsv, out string, full bool, jobs int, cacheDir string) error {
	var speeds []float64
	for _, f := range strings.Split(speedCsv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 {
			return fmt.Errorf("-mobility-speeds: bad speed %q", f)
		}
		speeds = append(speeds, v)
	}
	start := time.Now()
	opts := experiments.QuickOptions()
	if full {
		opts = experiments.FullOptions()
	}
	opts.Workers = jobs
	opts.CacheDir = cacheDir
	opts.Progress = func(p runner.Progress) {
		suffix := ""
		if p.Cached {
			suffix = " (cached)"
		}
		if p.Err != nil {
			suffix = " FAILED: " + p.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "[%7s] [%d/%d] %s done%s\n",
			time.Since(start).Round(time.Second), p.Done, p.Total, p.Label, suffix)
	}
	sweep, err := experiments.RunMobilitySweep(opts, []string{"odmrp", "mcst"}, speeds)
	if err != nil {
		return err
	}
	report := experiments.NewReport(opts, 0, 0)
	report.MobilitySection(sweep)
	report.Elapsed(time.Since(start))
	if out == "" {
		fmt.Print(report.String())
		return nil
	}
	return os.WriteFile(out, []byte(report.String()), 0o644)
}

func run(full bool, out string, skipAblations bool, testbedRuns, jobs int, cacheDir, telemetryDir string) error {
	start := time.Now()
	opts := experiments.QuickOptions()
	testbedSeconds := 150
	if full {
		opts = experiments.FullOptions()
		testbedSeconds = 400
	}
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[%7s] ", time.Since(start).Round(time.Second))
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	opts.Workers = jobs
	opts.CacheDir = cacheDir
	// -telemetry records the sweep harness itself (cache hit/miss counters,
	// job wall-clock latency histogram); there is no virtual clock to sample,
	// so the manifest carries the final instrument state and the series stays
	// empty.
	var rec *telemetry.Recorder
	if telemetryDir != "" {
		var err error
		rec, err = telemetry.NewRecorder(telemetryDir, 0)
		if err != nil {
			return err
		}
		opts.PoolMetrics = runner.NewMetrics(rec.Registry())
	}
	// Per-job completion lines under each phase banner: "[12/50] etx seed 3
	// done (cached)". Callbacks are serialized by the pool.
	opts.Progress = func(p runner.Progress) {
		suffix := ""
		if p.Cached {
			suffix = " (cached)"
		}
		if p.Err != nil {
			suffix = " FAILED: " + p.Err.Error()
		}
		progress("[%d/%d] %s done%s", p.Done, p.Total, p.Label, suffix)
	}
	// secondary scales down the probing-rate variants and ablations, which
	// sweep many configurations; the headline Figure 2 column keeps the
	// full seed count.
	secondary := opts
	if full {
		secondary.Seeds = opts.Seeds[:5]
		secondary.TrafficSeconds = 250
	}

	report := experiments.NewReport(opts, testbedRuns, testbedSeconds)

	progress("figure 2: throughput-simulations (+ delay + table 1) [%d workers]", jobs)
	sims, err := experiments.RunPaperSims(opts)
	if err != nil {
		return fmt.Errorf("fig2 simulations: %w", err)
	}
	report.Fig2SimTable(`Figure 2 — column "Throughput-simulations"`, sims, experiments.PaperFig2Simulation,
		"Shape reproduced: every link-quality metric beats the original ODMRP;\n"+
			"SPP leads, ETT trails ETX. Our fading regime is harsher than\n"+
			"GloMoSim's, so absolute gains are larger than the paper's 13.5-18%.")
	report.DelayTable(sims)
	report.Table1(sims)

	progress("figure 2: throughput with 5x probing rate")
	high := secondary
	high.ProbeRateFactor = 5
	highSims, err := experiments.RunPaperSims(high)
	if err != nil {
		return fmt.Errorf("fig2 high overhead: %w", err)
	}
	report.Fig2SimTable(`Figure 2 — column "Throughput-high overhead" (5x probing)`, highSims, nil,
		"Paper: all metrics drop by ~2% relative to the default probing rate\n"+
			"because probes interfere with data traffic.")

	progress("§4.2.2: throughput with 10x lower probing rate")
	low := secondary
	low.ProbeRateFactor = 0.1
	lowSims, err := experiments.RunPaperSims(low)
	if err != nil {
		return fmt.Errorf("fig2 low overhead: %w", err)
	}
	report.Fig2SimTable("§4.2.2 — 10x lower probing rate", lowSims, nil,
		"Paper: gains improve by ~3% — less probe interference, at the price\n"+
			"of staler link information.")

	progress("figure 2: throughput-testbed (+ figure 4/5 artifacts)")
	col, err := experiments.RunTestbedColumn(opts, testbedRuns, testbedSeconds)
	if err != nil {
		return fmt.Errorf("testbed column: %w", err)
	}
	report.TestbedTable(col)

	progress("§4.3: multiple sources per group")
	multiOpts := secondary
	multiOpts.Metrics = []metric.Kind{metric.SPP, metric.PP, metric.ETX}
	multi, err := experiments.RunMultiSource(multiOpts, 3)
	if err != nil {
		return fmt.Errorf("multi-source: %w", err)
	}
	report.MultiSourceSection(multi)

	if !skipAblations {
		progress("ablation: fading on/off")
		fad, err := experiments.RunFadingAblation(secondary)
		if err != nil {
			return fmt.Errorf("fading ablation: %w", err)
		}
		report.FadingSection(fad)

		progress("ablation: delta/alpha sweep")
		da, err := experiments.RunDeltaAlphaAblation(secondary, metric.SPP, []struct{ Delta, Alpha time.Duration }{
			{0, 0},
			{30 * time.Millisecond, 20 * time.Millisecond},
			{120 * time.Millisecond, 80 * time.Millisecond},
		})
		if err != nil {
			return fmt.Errorf("delta/alpha ablation: %w", err)
		}
		report.DeltaAlphaSection(da)

		progress("ablation: estimator history")
		hist, err := experiments.RunHistoryAblation(secondary)
		if err != nil {
			return fmt.Errorf("history ablation: %w", err)
		}
		report.HistorySection(hist)
	}

	report.Deviations()
	report.Elapsed(time.Since(start))
	progress("done")

	if rec != nil {
		if err := rec.Finalize(telemetry.Manifest{Label: "experiments sweep"}); err != nil {
			return err
		}
		progress("telemetry: wrote %s", rec.Dir())
	}

	if out == "" {
		fmt.Print(report.String())
		return nil
	}
	return os.WriteFile(out, []byte(report.String()), 0o644)
}

// benchReport is the BENCH_runner.json schema: the job harness's measured
// wall-clock on a reduced sweep, serial vs parallel, on this machine.
type benchReport struct {
	GeneratedAt     string  `json:"generatedAt"`
	Cores           int     `json:"cores"`
	Workers         int     `json:"workers"`
	Jobs            int     `json:"jobs"`
	SerialSeconds   float64 `json:"serialSeconds"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	Speedup         float64 `json:"speedup"`
	ByteIdentical   bool    `json:"byteIdentical"`
	Config          string  `json:"config"`
}

// benchRunner measures the harness: one reduced SPP-vs-baseline sweep run
// serially (-j 1) and once with the requested worker count, reporting
// wall-clock, speedup, and whether the two reports were byte-identical.
func benchRunner(out string, workers int, cacheDir string) error {
	o := experiments.QuickOptions()
	o.Seeds = []uint64{1, 2, 3, 4}
	o.TrafficSeconds = 40
	o.WarmupSeconds = 20
	o.Metrics = []metric.Kind{metric.SPP}
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	render := func(sims *experiments.PaperSims) string {
		r := experiments.NewReport(o, 0, 0)
		r.Fig2SimTable("bench", sims, nil, "")
		r.DelayTable(sims)
		r.Table1(sims)
		return r.String()
	}
	timeRun := func(j int, dir string) (string, float64, error) {
		opts := o
		opts.Workers = j
		opts.CacheDir = dir
		start := time.Now()
		sims, err := experiments.RunPaperSims(opts)
		if err != nil {
			return "", 0, err
		}
		return render(sims), time.Since(start).Seconds(), nil
	}

	fmt.Fprintf(os.Stderr, "bench: %d jobs serial...\n", 2*len(o.Seeds))
	serialReport, serialSec, err := timeRun(1, "")
	if err != nil {
		return fmt.Errorf("bench serial: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: %d jobs with %d workers...\n", 2*len(o.Seeds), workers)
	parallelReport, parallelSec, err := timeRun(workers, cacheDir)
	if err != nil {
		return fmt.Errorf("bench parallel: %w", err)
	}

	rep := benchReport{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Cores:           runtime.NumCPU(),
		Workers:         workers,
		Jobs:            2 * len(o.Seeds),
		SerialSeconds:   serialSec,
		ParallelSeconds: parallelSec,
		Speedup:         serialSec / parallelSec,
		ByteIdentical:   serialReport == parallelReport,
		Config:          fmt.Sprintf("%d seeds x %d s traffic (+%d s warmup), baseline+SPP", len(o.Seeds), o.TrafficSeconds, o.WarmupSeconds),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: serial %.2fs, parallel %.2fs (%.2fx on %d cores), byte-identical=%v -> %s\n",
		serialSec, parallelSec, rep.Speedup, rep.Cores, rep.ByteIdentical, out)
	return nil
}
