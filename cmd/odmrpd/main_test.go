package main

import (
	"testing"
	"time"

	"meshcast/internal/packet"
)

func TestParseGroups(t *testing.T) {
	tests := []struct {
		in      string
		want    []packet.GroupID
		wantErr bool
	}{
		{"", nil, false},
		{"1", []packet.GroupID{1}, false},
		{"1,2,3", []packet.GroupID{1, 2, 3}, false},
		{" 4 , 5 ", []packet.GroupID{4, 5}, false},
		{"x", nil, true},
		{"1,,2", nil, true},
		{"70000", nil, true}, // exceeds uint16
	}
	for _, tt := range tests {
		got, err := parseGroups(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("parseGroups(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseGroups(%q): %v", tt.in, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseGroups(%q) = %v, want %v", tt.in, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseGroups(%q) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(1, "127.0.0.1:1", "bogus", "", "", "", 20, 512, 1, 0, 0); err == nil {
		t.Fatal("bad metric accepted")
	}
	if err := run(1, "127.0.0.1:1", "spp", "bogus", "", "", 20, 512, 1, 0, 0); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if err := run(1, "127.0.0.1:1", "spp", "", "zz", "", 20, 512, 1, 0, 0); err == nil {
		t.Fatal("bad join groups accepted")
	}
	if err := run(1, "127.0.0.1:1", "spp", "", "", "", 0, 512, 1, 0, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// TestRunWatchdogFiresWithoutEther points the daemon at a dead ether: it can
// never register, so the watchdog must take the process down with an error
// before the -seconds deadline would.
func TestRunWatchdogFiresWithoutEther(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (~1s)")
	}
	err := run(1, "127.0.0.1:1", "spp", "", "", "", 20, 512, 10, 0, 400*time.Millisecond)
	if err == nil {
		t.Fatal("watchdog did not fire against a dead ether")
	}
}
