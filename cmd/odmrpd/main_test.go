package main

import (
	"testing"

	"meshcast/internal/packet"
)

func TestParseGroups(t *testing.T) {
	tests := []struct {
		in      string
		want    []packet.GroupID
		wantErr bool
	}{
		{"", nil, false},
		{"1", []packet.GroupID{1}, false},
		{"1,2,3", []packet.GroupID{1, 2, 3}, false},
		{" 4 , 5 ", []packet.GroupID{4, 5}, false},
		{"x", nil, true},
		{"1,,2", nil, true},
		{"70000", nil, true}, // exceeds uint16
	}
	for _, tt := range tests {
		got, err := parseGroups(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("parseGroups(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseGroups(%q): %v", tt.in, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseGroups(%q) = %v, want %v", tt.in, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseGroups(%q) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(1, "127.0.0.1:1", "bogus", "", "", 20, 512, 1, 0); err == nil {
		t.Fatal("bad metric accepted")
	}
	if err := run(1, "127.0.0.1:1", "spp", "zz", "", 20, 512, 1, 0); err == nil {
		t.Fatal("bad join groups accepted")
	}
	if err := run(1, "127.0.0.1:1", "spp", "", "", 0, 512, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}
