// Command odmrpd is a user-level ODMRP daemon, mirroring the paper's
// testbed software (§5.2): the full multicast protocol — probing, JOIN
// QUERY / JOIN REPLY exchange, forwarding-group maintenance, and data
// forwarding — running in real time over UDP sockets, attached to an
// emulated broadcast medium served by cmd/etherd.
//
// A three-node multicast session on one machine:
//
//	go run ./cmd/etherd -addr 127.0.0.1:7777 &
//	go run ./cmd/odmrpd -id 1 -ether 127.0.0.1:7777 -source 1 -seconds 30 &
//	go run ./cmd/odmrpd -id 2 -ether 127.0.0.1:7777 -seconds 30 &
//	go run ./cmd/odmrpd -id 3 -ether 127.0.0.1:7777 -join 1 -seconds 30
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	_ "meshcast/internal/multicast/protocols" // populate the protocol registry
	"meshcast/internal/packet"
)

func main() {
	var (
		id         = flag.Uint("id", 1, "node ID (unique per ether)")
		ether      = flag.String("ether", "127.0.0.1:7777", "etherd UDP address")
		metricName = flag.String("metric", "spp", "routing metric: minhop, etx, ett, pp, metx, spp")
		protocol   = flag.String("protocol", "", "multicast protocol: "+strings.Join(multicast.Names(), ", ")+" (default "+multicast.Default+")")
		join       = flag.String("join", "", "comma-separated group IDs to join as receiver")
		source     = flag.String("source", "", "comma-separated group IDs to source CBR traffic into")
		rate       = flag.Int("rate", 20, "CBR packets per second when sourcing")
		payload    = flag.Int("payload", 512, "CBR payload bytes")
		seconds    = flag.Int("seconds", 0, "exit after this many seconds (0 = run until interrupted)")
		seed       = flag.Uint64("seed", 0, "protocol randomness seed (0 = derive from id)")
		watchdog   = flag.Duration("watchdog", 0, "exit nonzero if the daemon is unregistered or inactive for this long (0 = disabled); lets a process supervisor restart wedged daemons")
	)
	flag.Parse()
	if err := run(*id, *ether, *metricName, *protocol, *join, *source, *rate, *payload, *seconds, *seed, *watchdog); err != nil {
		log.Fatal(err)
	}
}

func run(id uint, ether, metricName, protocol, join, source string, rate, payload, seconds int, seed uint64, watchdog time.Duration) error {
	kind, err := metric.ParseKind(metricName)
	if err != nil {
		return err
	}
	proto, err := multicast.Resolve(protocol)
	if err != nil {
		return fmt.Errorf("-protocol: %w", err)
	}
	joinGroups, err := parseGroups(join)
	if err != nil {
		return fmt.Errorf("-join: %w", err)
	}
	sourceGroups, err := parseGroups(source)
	if err != nil {
		return fmt.Errorf("-source: %w", err)
	}
	if seed == 0 {
		seed = uint64(id)*0x9e3779b97f4a7c15 + 1
	}
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %d", rate)
	}

	daemon, err := emu.NewDaemon(emu.DaemonConfig{
		ID:           packet.NodeID(id),
		EtherAddr:    ether,
		Metric:       kind,
		Protocol:     proto,
		JoinGroups:   joinGroups,
		SourceGroups: sourceGroups,
		PayloadBytes: payload,
		SendInterval: time.Second / time.Duration(rate),
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	defer daemon.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if seconds > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(seconds)*time.Second)
		defer cancel()
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Liveness watchdog: the daemon must register with the ether and show
	// protocol activity within every watchdog period, or the process exits
	// nonzero so an external supervisor (systemd, the chaos harness) can
	// restart it.
	watchFail := make(chan error, 1)
	if watchdog > 0 {
		go func() {
			ticker := time.NewTicker(watchdog / 4)
			defer ticker.Stop()
			var deadSince time.Time
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if daemon.Alive(watchdog) {
						deadSince = time.Time{}
						continue
					}
					if deadSince.IsZero() {
						deadSince = time.Now()
						continue
					}
					if time.Since(deadSince) >= watchdog {
						watchFail <- fmt.Errorf("odmrpd id=%d: watchdog: unregistered or inactive for %v", id, watchdog)
						cancel()
						return
					}
				}
			}
		}()
	}

	fmt.Printf("odmrpd id=%d metric=%s ether=%s join=%v source=%v\n",
		id, kind, ether, joinGroups, sourceGroups)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(5 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				fmt.Println(daemon.Summary())
			}
		}
	}()
	daemon.Run(ctx)
	<-done
	select {
	case err := <-watchFail:
		fmt.Println("final:", daemon.Summary())
		return err
	default:
	}

	fmt.Println("final:", daemon.Summary())
	if len(joinGroups) > 0 {
		perSource := map[packet.NodeID]int{}
		for _, p := range daemon.Delivered() {
			perSource[p.Src]++
		}
		for src, n := range perSource {
			fmt.Printf("  received %d packets from source %v\n", n, src)
		}
	}
	return nil
}

// parseGroups parses "1,2,3" into group IDs.
func parseGroups(s string) ([]packet.GroupID, error) {
	if s == "" {
		return nil, nil
	}
	var out []packet.GroupID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad group %q: %w", part, err)
		}
		out = append(out, packet.GroupID(v))
	}
	return out, nil
}
