package main

import (
	"os"
	"testing"
	"time"

	"meshcast/internal/telemetry"
	"meshcast/internal/trace"
)

func TestParseTraceCats(t *testing.T) {
	got, err := parseTraceCats("query,data")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != trace.CatQuery || got[1] != trace.CatData {
		t.Fatalf("parseTraceCats = %v", got)
	}
	if got, err := parseTraceCats(""); err != nil || got != nil {
		t.Fatalf("empty input = %v, %v", got, err)
	}
	if _, err := parseTraceCats("query,bogus"); err == nil {
		t.Fatal("unknown category accepted")
	}
	all := "query,reply,data,probe,mac"
	got, err = parseTraceCats(all)
	if err != nil || len(got) != 5 {
		t.Fatalf("all categories = %v, %v", got, err)
	}
	// Whitespace tolerated.
	if got, err := parseTraceCats(" mac , probe "); err != nil || len(got) != 2 {
		t.Fatalf("whitespace input = %v, %v", got, err)
	}
}

// tinyOptions is a seconds-scale run for tests.
func tinyOptions() options {
	opt := defaultOptions()
	opt.Nodes = 6
	opt.Side = 350
	opt.Groups = 1
	opt.Members = 2
	opt.Seconds = 2
	opt.Warmup = 2
	return opt
}

func TestRunRejectsBadInput(t *testing.T) {
	opt := tinyOptions()
	opt.Metric = "bogus"
	if err := run(opt); err == nil {
		t.Fatal("bad metric accepted")
	}
	opt = tinyOptions()
	opt.Protocol = "bogus"
	if err := run(opt); err == nil {
		t.Fatal("bad protocol accepted")
	}
	opt = tinyOptions()
	opt.TraceCats = "nope"
	if err := run(opt); err == nil {
		t.Fatal("bad trace category accepted")
	}
	opt = tinyOptions()
	opt.FaultScript = "/does/not/exist.json"
	if err := run(opt); err == nil {
		t.Fatal("missing fault script accepted")
	}
	opt = tinyOptions()
	opt.Churn = 2
	if err := run(opt); err == nil {
		t.Fatal("churn fraction > 1 accepted")
	}
}

func TestFaultPlanMergesFlagsAndScript(t *testing.T) {
	opt := defaultOptions()
	if plan, err := faultPlan(opt); err != nil || plan != nil {
		t.Fatalf("no-fault options produced %v, %v", plan, err)
	}

	opt.Churn = 0.1
	plan, err := faultPlan(opt)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Churn == nil || plan.Churn.Fraction != 0.1 {
		t.Fatalf("churn plan = %+v", plan)
	}
	if plan.Churn.MTBF != opt.ChurnMTBF || plan.Churn.MTTR != opt.ChurnMTTR {
		t.Fatalf("churn timing = %+v", plan.Churn)
	}

	// A script with its own churn section conflicts with -churn.
	path := t.TempDir() + "/faults.json"
	if err := os.WriteFile(path, []byte(`{"churn": {"fraction": 0.2, "mtbf_s": 60, "mttr_s": 10}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	opt.FaultScript = path
	if _, err := faultPlan(opt); err == nil {
		t.Fatal("conflicting churn configuration accepted")
	}
	opt.Churn = 0
	plan, err = faultPlan(opt)
	if err != nil || plan == nil || plan.Churn == nil || plan.Churn.Fraction != 0.2 {
		t.Fatalf("script-only plan = %+v, %v", plan, err)
	}
}

func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	opt := tinyOptions()
	opt.Verbose = true
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	// With fading disabled and a capture file.
	path := t.TempDir() + "/run.mcap"
	opt = tinyOptions()
	opt.Metric = "minhop"
	opt.NoFading = true
	opt.Capture = path
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("capture not written: %v", err)
	}
}

func TestRunWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	dir := t.TempDir()
	opt := tinyOptions()
	opt.Telemetry = dir
	opt.TelemetryInterval = time.Second
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["phy.frames_sent"] == 0 {
		t.Fatal("no frames counted")
	}
	if m.Metric != "spp" || m.Samples == 0 {
		t.Fatalf("manifest = metric %q, %d samples", m.Metric, m.Samples)
	}
	series, err := telemetry.LoadSeries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != m.Samples {
		t.Fatalf("series has %d samples, manifest says %d", len(series), m.Samples)
	}
}

func TestRunWithChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	opt := tinyOptions()
	opt.Seconds = 20
	opt.Churn = 0.5
	opt.ChurnMTBF = 10_000_000_000 // 10s
	opt.ChurnMTTR = 3_000_000_000  // 3s
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
}
