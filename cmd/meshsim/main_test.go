package main

import (
	"os"
	"testing"

	"meshcast/internal/trace"
)

func TestParseTraceCats(t *testing.T) {
	got, err := parseTraceCats("query,data")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != trace.CatQuery || got[1] != trace.CatData {
		t.Fatalf("parseTraceCats = %v", got)
	}
	if got, err := parseTraceCats(""); err != nil || got != nil {
		t.Fatalf("empty input = %v, %v", got, err)
	}
	if _, err := parseTraceCats("query,bogus"); err == nil {
		t.Fatal("unknown category accepted")
	}
	all := "query,reply,data,probe,mac"
	got, err = parseTraceCats(all)
	if err != nil || len(got) != 5 {
		t.Fatalf("all categories = %v, %v", got, err)
	}
	// Whitespace tolerated.
	if got, err := parseTraceCats(" mac , probe "); err != nil || len(got) != 2 {
		t.Fatalf("whitespace input = %v, %v", got, err)
	}
}

func TestRunRejectsBadMetric(t *testing.T) {
	if err := run("bogus", 1, 5, 300, 1, 1, 2, 1, 1, 1, false, false, "", ""); err == nil {
		t.Fatal("bad metric accepted")
	}
	if err := run("spp", 1, 5, 300, 1, 1, 2, 1, 1, 1, false, false, "nope", ""); err == nil {
		t.Fatal("bad trace category accepted")
	}
}

func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	if err := run("spp", 1, 6, 350, 1, 1, 2, 2, 2, 1, false, true, "", ""); err != nil {
		t.Fatal(err)
	}
	// With fading disabled and a capture file.
	path := t.TempDir() + "/run.mcap"
	if err := run("minhop", 1, 6, 350, 1, 1, 2, 2, 2, 1, true, false, "", path); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("capture not written: %v", err)
	}
}
