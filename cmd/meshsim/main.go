// Command meshsim runs one mesh-network multicast simulation and prints the
// resulting statistics. It exposes the paper's §4.1 scenario knobs on the
// command line.
//
// Usage:
//
//	go run ./cmd/meshsim -metric spp -seed 1 -seconds 100
//	go run ./cmd/meshsim -metric minhop -nodes 30 -side 800 -groups 1
//	go run ./cmd/meshsim -metric pp -probe-rate 5 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
	"meshcast/internal/trace"
)

func main() {
	var (
		metricName = flag.String("metric", "spp", "routing metric: minhop, etx, ett, pp, metx, spp")
		seed       = flag.Uint64("seed", 1, "random seed (topology + all protocol randomness)")
		nodes      = flag.Int("nodes", 50, "number of mesh nodes")
		side       = flag.Float64("side", 1000, "deployment square side in metres")
		groups     = flag.Int("groups", 2, "number of multicast groups")
		sources    = flag.Int("sources", 1, "sources per group")
		members    = flag.Int("members", 10, "receiver members per group")
		seconds    = flag.Int("seconds", 100, "traffic seconds")
		warmup     = flag.Int("warmup", 100, "probe warmup seconds before traffic")
		probeRate  = flag.Float64("probe-rate", 1, "probing rate factor (5 = high-overhead column)")
		noFading   = flag.Bool("no-fading", false, "disable Rayleigh fading")
		verbose    = flag.Bool("v", false, "print per-member delivery ratios")
		traceCats  = flag.String("trace", "", "comma-separated trace categories to print (query,reply,data,probe,mac)")
		captureTo  = flag.String("capture", "", "record every transmitted frame to this file (see cmd/meshdump)")
		scenario   = flag.String("scenario", "", "run a JSON scenario spec instead of the flag-built one")
	)
	flag.Parse()
	if *scenario != "" {
		if err := runSpec(*scenario, *verbose, *captureTo); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*metricName, *seed, *nodes, *side, *groups, *sources, *members,
		*seconds, *warmup, *probeRate, *noFading, *verbose, *traceCats, *captureTo); err != nil {
		log.Fatal(err)
	}
}

// runSpec executes a declarative JSON scenario.
func runSpec(path string, verbose bool, capturePath string) error {
	spec, err := experiments.LoadSpec(path)
	if err != nil {
		return err
	}
	cfg, err := spec.Scenario()
	if err != nil {
		return err
	}
	cfg.CapturePath = capturePath
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}
	printResult(res, verbose)
	return nil
}

// parseTraceCats maps flag names to trace categories.
func parseTraceCats(s string) ([]trace.Category, error) {
	if s == "" {
		return nil, nil
	}
	names := map[string]trace.Category{
		"query": trace.CatQuery,
		"reply": trace.CatReply,
		"data":  trace.CatData,
		"probe": trace.CatProbe,
		"mac":   trace.CatMAC,
	}
	var out []trace.Category
	for _, part := range strings.Split(s, ",") {
		c, ok := names[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown trace category %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

func run(metricName string, seed uint64, nodes int, side float64, groups, sources, members,
	seconds, warmup int, probeRate float64, noFading, verbose bool, traceCats, capturePath string) error {
	kind, err := metric.ParseKind(metricName)
	if err != nil {
		return err
	}
	cats, err := parseTraceCats(traceCats)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	topo, err := topology.RandomConnected(rng, nodes, geom.Square(side), 250, 500)
	if err != nil {
		return err
	}
	cfg := experiments.ScenarioConfig{
		Seed:            seed,
		Metric:          kind,
		Topology:        topo,
		Duration:        time.Duration(warmup+seconds) * time.Second,
		Groups:          experiments.DefaultGroups(rng.Split(), nodes, groups, sources, members),
		PayloadBytes:    512,
		SendInterval:    50 * time.Millisecond,
		ProbeRateFactor: probeRate,
		TrafficStart:    time.Duration(warmup) * time.Second,
	}
	if noFading {
		cfg.Fading = propagation.NoFading{}
	}
	if traceCats != "" {
		cfg.TraceSink = trace.Writer{W: os.Stderr}
		cfg.TraceCats = cats
	}
	cfg.CapturePath = capturePath

	start := time.Now()
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("metric=%s nodes=%d area=%.0fx%.0fm groups=%d sources/group=%d members/group=%d\n",
		kind, nodes, side, side, groups, sources, members)
	fmt.Printf("simulated %ds traffic (+%ds warmup) in %s (%d events)\n",
		seconds, warmup, time.Since(start).Round(time.Millisecond), res.Events)
	printResult(res, verbose)
	return nil
}

// printResult renders a run's summary.
func printResult(res *experiments.RunResult, verbose bool) {
	s := res.Summary
	fmt.Printf("packets: sent %d, delivered %d (x receivers)\n", s.PacketsSent, s.PacketsDelivered)
	fmt.Printf("mean delivery ratio: %.1f%% (fairness %.2f)\n", 100*s.PDR, s.Fairness)
	fmt.Printf("mean end-to-end delay: %.2f ms (p50 %.2f / p99 %.2f / max %.2f)\n",
		1000*s.MeanDelaySeconds,
		res.Delay.P50.Seconds()*1000, res.Delay.P99.Seconds()*1000, res.Delay.Max.Seconds()*1000)
	fmt.Printf("probe overhead: %.2f%% of data bytes received (%d probe bytes)\n",
		s.ProbeOverheadPct, res.ProbeBytes)
	fmt.Printf("control bytes (queries+replies): %d; data rebroadcasts: %d; PHY collisions: %d\n",
		res.ControlBytes, res.DataForwards, res.MACCollisions)
	if verbose {
		fmt.Println("per-member delivery:")
		for _, m := range res.PerMember {
			fmt.Printf("  %v\n", m)
		}
	}
}
