// Command meshsim runs one mesh-network multicast simulation and prints the
// resulting statistics. It exposes the paper's §4.1 scenario knobs on the
// command line.
//
// Usage:
//
//	go run ./cmd/meshsim -metric spp -seed 1 -seconds 100
//	go run ./cmd/meshsim -metric minhop -nodes 30 -side 800 -groups 1
//	go run ./cmd/meshsim -metric pp -probe-rate 5 -v
//	go run ./cmd/meshsim -metric spp -churn 0.25 -seconds 200
//	go run ./cmd/meshsim -metric ett -fault-script faults.json
//	go run ./cmd/meshsim -metric spp -telemetry out/ -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/faults"
	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/mobility"
	"meshcast/internal/multicast"
	_ "meshcast/internal/multicast/protocols" // populate the protocol registry
	"meshcast/internal/prof"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/telemetry"
	"meshcast/internal/topology"
	"meshcast/internal/trace"
)

// options collects the flag-built run configuration.
type options struct {
	Metric    string
	Protocol  string
	Seed      uint64
	Nodes     int
	Side      float64
	Groups    int
	Sources   int
	Members   int
	Seconds   int
	Warmup    int
	ProbeRate float64
	NoFading  bool
	Verbose   bool
	TraceCats string
	Spans     string
	Capture   string

	// Churn enables MTBF/MTTR node churn over this fraction of nodes
	// (0 = off); ChurnMTBF and ChurnMTTR shape the renewal process.
	Churn     float64
	ChurnMTBF time.Duration
	ChurnMTTR time.Duration
	// FaultScript loads a JSON fault plan (outages, link faults,
	// partitions, churn) from a file; combinable with Churn.
	FaultScript string

	// Mobility selects a mobility model (waypoint, rpgm, corridor; empty
	// disables motion). Speed is the maximum node speed in m/s and Pause
	// the waypoint dwell time. Motion starts when traffic starts (after
	// warmup) so metrics converge on the static topology first.
	Mobility string
	Speed    float64
	Pause    time.Duration

	// Telemetry, when non-empty, writes the run's series.jsonl and
	// manifest.json to this directory (see cmd/meshstat);
	// TelemetryInterval is the virtual-time sampling interval.
	Telemetry         string
	TelemetryInterval time.Duration
	// CPUProfile / MemProfile write runtime/pprof profiles.
	CPUProfile string
	MemProfile string
}

// defaultOptions mirrors the flag defaults, for tests that call run directly.
func defaultOptions() options {
	return options{
		Metric:    "spp",
		Protocol:  multicast.Default,
		Seed:      1,
		Nodes:     50,
		Side:      1000,
		Groups:    2,
		Sources:   1,
		Members:   10,
		Seconds:   100,
		Warmup:    100,
		ProbeRate: 1,
		ChurnMTBF: 60 * time.Second,
		ChurnMTTR: 15 * time.Second,
		Speed:     5,

		TelemetryInterval: telemetry.DefaultSampleInterval,
	}
}

func main() {
	def := defaultOptions()
	var opt options
	flag.StringVar(&opt.Metric, "metric", def.Metric, "routing metric: minhop, etx, ett, pp, metx, spp")
	flag.StringVar(&opt.Protocol, "protocol", def.Protocol, "multicast protocol: "+strings.Join(multicast.Names(), ", "))
	flag.Uint64Var(&opt.Seed, "seed", def.Seed, "random seed (topology + all protocol randomness)")
	flag.IntVar(&opt.Nodes, "nodes", def.Nodes, "number of mesh nodes")
	flag.Float64Var(&opt.Side, "side", def.Side, "deployment square side in metres")
	flag.IntVar(&opt.Groups, "groups", def.Groups, "number of multicast groups")
	flag.IntVar(&opt.Sources, "sources", def.Sources, "sources per group")
	flag.IntVar(&opt.Members, "members", def.Members, "receiver members per group")
	flag.IntVar(&opt.Seconds, "seconds", def.Seconds, "traffic seconds")
	flag.IntVar(&opt.Warmup, "warmup", def.Warmup, "probe warmup seconds before traffic")
	flag.Float64Var(&opt.ProbeRate, "probe-rate", def.ProbeRate, "probing rate factor (5 = high-overhead column)")
	flag.BoolVar(&opt.NoFading, "no-fading", def.NoFading, "disable Rayleigh fading")
	flag.BoolVar(&opt.Verbose, "v", def.Verbose, "print per-member delivery ratios")
	flag.StringVar(&opt.TraceCats, "trace", def.TraceCats, "comma-separated trace categories to print (query,reply,data,probe,mac,core,join)")
	flag.StringVar(&opt.Spans, "spans", def.Spans, "record packet-journey spans to this JSONL file (see meshstat -journeys)")
	flag.StringVar(&opt.Capture, "capture", def.Capture, "record every transmitted frame to this file (see cmd/meshdump)")
	flag.Float64Var(&opt.Churn, "churn", def.Churn, "fraction of nodes subject to crash/restart churn (0 disables)")
	flag.DurationVar(&opt.ChurnMTBF, "churn-mtbf", def.ChurnMTBF, "mean time between failures per churned node")
	flag.DurationVar(&opt.ChurnMTTR, "churn-mttr", def.ChurnMTTR, "mean time to repair per churned node")
	flag.StringVar(&opt.FaultScript, "fault-script", def.FaultScript, "JSON fault plan (outages, link faults, partitions, churn)")
	flag.StringVar(&opt.Mobility, "mobility", def.Mobility, "mobility model: waypoint, rpgm, corridor (empty disables motion)")
	flag.Float64Var(&opt.Speed, "speed", def.Speed, "maximum node speed in m/s for -mobility")
	flag.DurationVar(&opt.Pause, "pause", def.Pause, "waypoint pause time for -mobility")
	flag.StringVar(&opt.Telemetry, "telemetry", def.Telemetry, "write telemetry artifacts (series.jsonl, manifest.json) to this directory (see cmd/meshstat)")
	flag.DurationVar(&opt.TelemetryInterval, "telemetry-interval", def.TelemetryInterval, "virtual-time sampling interval for -telemetry")
	flag.StringVar(&opt.CPUProfile, "cpuprofile", def.CPUProfile, "write a CPU profile to this file")
	flag.StringVar(&opt.MemProfile, "memprofile", def.MemProfile, "write a heap profile to this file on exit")
	scenario := flag.String("scenario", "", "run a JSON scenario spec instead of the flag-built one")
	flag.Parse()
	stop, err := prof.Start(opt.CPUProfile, opt.MemProfile)
	if err != nil {
		log.Fatal(err)
	}
	if *scenario != "" {
		err = runSpec(*scenario, opt)
	} else {
		err = run(opt)
	}
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// newRecorder builds the run's telemetry recorder when -telemetry is set.
func newRecorder(opt options) (*telemetry.Recorder, error) {
	if opt.Telemetry == "" {
		return nil, nil
	}
	return telemetry.NewRecorder(opt.Telemetry, opt.TelemetryInterval)
}

// runSpec executes a declarative JSON scenario.
func runSpec(path string, opt options) error {
	spec, err := experiments.LoadSpec(path)
	if err != nil {
		return err
	}
	cfg, err := spec.Scenario()
	if err != nil {
		return err
	}
	cfg.CapturePath = opt.Capture
	if cfg.Telemetry, err = newRecorder(opt); err != nil {
		return err
	}
	closeSpans, err := attachSpans(&cfg, opt)
	if err != nil {
		return err
	}
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		closeSpans()
		return err
	}
	if err := closeSpans(); err != nil {
		return err
	}
	printResult(res, opt.Verbose)
	noteTelemetry(cfg.Telemetry)
	return nil
}

// attachSpans wires -spans to the scenario: every packet-journey span goes
// to a JSONL stream for meshstat -journeys. The returned close function
// flushes and closes the file.
func attachSpans(cfg *experiments.ScenarioConfig, opt options) (func() error, error) {
	if opt.Spans == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(opt.Spans)
	if err != nil {
		return nil, fmt.Errorf("-spans: %w", err)
	}
	w := trace.NewSpanJSONLWriter(f)
	cfg.SpanSink = w
	return func() error {
		flushErr := w.Flush()
		closeErr := f.Close()
		if flushErr != nil {
			return fmt.Errorf("-spans: %w", flushErr)
		}
		if closeErr != nil {
			return fmt.Errorf("-spans: %w", closeErr)
		}
		fmt.Fprintf(os.Stderr, "spans: wrote %s (try: go run ./cmd/meshstat -journeys %s)\n", opt.Spans, opt.Spans)
		return nil
	}, nil
}

// noteTelemetry points the user at the artifacts on stderr (stdout stays
// byte-identical with and without -telemetry).
func noteTelemetry(rec *telemetry.Recorder) {
	if rec != nil {
		fmt.Fprintf(os.Stderr, "telemetry: wrote %s and %s under %s (try: go run ./cmd/meshstat %s)\n",
			telemetry.SeriesFile, telemetry.ManifestFile, rec.Dir(), rec.Dir())
	}
}

// parseTraceCats maps flag names to trace categories.
func parseTraceCats(s string) ([]trace.Category, error) {
	if s == "" {
		return nil, nil
	}
	names := map[string]trace.Category{
		"query": trace.CatQuery,
		"reply": trace.CatReply,
		"data":  trace.CatData,
		"probe": trace.CatProbe,
		"mac":   trace.CatMAC,
		"core":  trace.CatCore,
		"join":  trace.CatJoin,
	}
	var out []trace.Category
	for _, part := range strings.Split(s, ",") {
		c, ok := names[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown trace category %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// faultPlan assembles the fault plan from -fault-script and -churn.
func faultPlan(opt options) (*faults.Plan, error) {
	var plan faults.Plan
	if opt.FaultScript != "" {
		p, err := faults.LoadPlan(opt.FaultScript)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	if opt.Churn > 0 {
		if plan.Churn != nil {
			return nil, fmt.Errorf("churn configured both by -churn and by the fault script")
		}
		plan.Churn = &faults.ChurnModel{
			Fraction: opt.Churn,
			MTBF:     opt.ChurnMTBF,
			MTTR:     opt.ChurnMTTR,
			// Churn only the measurement window: the warmup exists to give
			// every metric converged estimates to start from.
			Start: time.Duration(opt.Warmup) * time.Second,
		}
	}
	if plan.Empty() {
		return nil, nil
	}
	return &plan, nil
}

func run(opt options) error {
	kind, err := metric.ParseKind(opt.Metric)
	if err != nil {
		return err
	}
	proto, err := multicast.Resolve(opt.Protocol)
	if err != nil {
		return fmt.Errorf("-protocol: %w", err)
	}
	cats, err := parseTraceCats(opt.TraceCats)
	if err != nil {
		return err
	}
	plan, err := faultPlan(opt)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(opt.Seed ^ 0x9e3779b97f4a7c15)
	topo, err := topology.RandomConnected(rng, opt.Nodes, geom.Square(opt.Side), 250, 500)
	if err != nil {
		return err
	}
	cfg := experiments.ScenarioConfig{
		Seed:            opt.Seed,
		Metric:          kind,
		Protocol:        proto,
		Topology:        topo,
		Duration:        time.Duration(opt.Warmup+opt.Seconds) * time.Second,
		Groups:          experiments.DefaultGroups(rng.Split(), opt.Nodes, opt.Groups, opt.Sources, opt.Members),
		PayloadBytes:    512,
		SendInterval:    50 * time.Millisecond,
		ProbeRateFactor: opt.ProbeRate,
		TrafficStart:    time.Duration(opt.Warmup) * time.Second,
		Faults:          plan,
	}
	if opt.Mobility != "" {
		cfg.Mobility = &mobility.Config{
			Model:       opt.Mobility,
			MaxSpeedMps: opt.Speed,
			Pause:       opt.Pause,
			Start:       cfg.TrafficStart,
		}
	}
	if opt.NoFading {
		cfg.Fading = propagation.NoFading{}
	}
	if opt.TraceCats != "" {
		cfg.TraceSink = trace.Writer{W: os.Stderr}
		cfg.TraceCats = cats
	}
	cfg.CapturePath = opt.Capture
	if cfg.Telemetry, err = newRecorder(opt); err != nil {
		return err
	}
	closeSpans, err := attachSpans(&cfg, opt)
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		closeSpans()
		return err
	}
	if err := closeSpans(); err != nil {
		return err
	}

	fmt.Printf("protocol=%s metric=%s nodes=%d area=%.0fx%.0fm groups=%d sources/group=%d members/group=%d\n",
		proto, kind, opt.Nodes, opt.Side, opt.Side, opt.Groups, opt.Sources, opt.Members)
	// Wall-clock timing goes to stderr: stdout must be byte-identical across
	// same-seed runs so churn results can be diffed.
	fmt.Fprintf(os.Stderr, "simulated %ds traffic (+%ds warmup) in %s (%d events)\n",
		opt.Seconds, opt.Warmup, time.Since(start).Round(time.Millisecond), res.Events)
	printResult(res, opt.Verbose)
	noteTelemetry(cfg.Telemetry)
	return nil
}

// printResult renders a run's summary.
func printResult(res *experiments.RunResult, verbose bool) {
	s := res.Summary
	fmt.Printf("packets: sent %d, delivered %d (x receivers)\n", s.PacketsSent, s.PacketsDelivered)
	fmt.Printf("mean delivery ratio: %.1f%% (fairness %.2f)\n", 100*s.PDR, s.Fairness)
	fmt.Printf("mean end-to-end delay: %.2f ms (p50 %.2f / p99 %.2f / max %.2f)\n",
		1000*s.MeanDelaySeconds,
		res.Delay.P50.Seconds()*1000, res.Delay.P99.Seconds()*1000, res.Delay.Max.Seconds()*1000)
	fmt.Printf("probe overhead: %.2f%% of data bytes received (%d probe bytes)\n",
		s.ProbeOverheadPct, res.ProbeBytes)
	fmt.Printf("control bytes (queries+replies): %d; data rebroadcasts: %d; PHY collisions: %d\n",
		res.ControlBytes, res.DataForwards, res.MACCollisions)
	if res.Health != nil {
		fmt.Printf("faults: %d outage episodes\n", res.Faulted)
		for _, g := range res.Health {
			fmt.Printf("  %v\n", g)
		}
	}
	if res.Mobility != nil {
		m := res.Mobility
		fmt.Printf("mobility: model=%s max-speed=%.1fm/s moves=%d link breaks=%d (%.2f/s) forms=%d\n",
			m.Model, m.MaxSpeedMps, m.Moves, m.LinkBreaks, m.BreakRatePerSec, m.LinkForms)
		for _, g := range m.Groups {
			fmt.Printf("  %v\n", g)
		}
	}
	if verbose {
		fmt.Println("per-member delivery:")
		for _, m := range res.PerMember {
			fmt.Printf("  %v\n", m)
		}
	}
}
