// Command topogen generates random mesh topologies and reports their
// connectivity properties — handy for picking simulation seeds and sanity
// checking deployment densities.
//
// Usage:
//
//	go run ./cmd/topogen -nodes 50 -side 1000 -seed 1
//	go run ./cmd/topogen -nodes 50 -csv > topo.csv
package main

import (
	"flag"
	"fmt"
	"log"

	"meshcast/internal/geom"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
	"meshcast/internal/viz"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 50, "number of nodes")
		side      = flag.Float64("side", 1000, "square side in metres")
		rangeM    = flag.Float64("range", 250, "radio range in metres")
		seed      = flag.Uint64("seed", 1, "random seed")
		connected = flag.Bool("connected", true, "redraw until connected")
		csv       = flag.Bool("csv", false, "emit node positions as CSV")
		asMap     = flag.Bool("map", false, "render an ASCII map with range-graph edges")
		width     = flag.Int("width", 100, "map width in characters")
	)
	flag.Parse()
	if err := run(*nodes, *side, *rangeM, *seed, *connected, *csv, *asMap, *width); err != nil {
		log.Fatal(err)
	}
}

func run(nodes int, side, rangeM float64, seed uint64, connected, csv, asMap bool, width int) error {
	rng := sim.NewRNG(seed)
	var topo *topology.Topology
	if connected {
		t, err := topology.RandomConnected(rng, nodes, geom.Square(side), rangeM, 1000)
		if err != nil {
			return err
		}
		topo = t
	} else {
		topo = topology.Random(rng, nodes, geom.Square(side))
	}

	if csv {
		fmt.Println("node,x,y")
		for i, p := range topo.Positions {
			fmt.Printf("%d,%.2f,%.2f\n", i, p.X, p.Y)
		}
		return nil
	}
	if asMap {
		nodesViz := make([]viz.Node, topo.NodeCount())
		for i, p := range topo.Positions {
			nodesViz[i] = viz.Node{Label: fmt.Sprintf("%d", i), Pos: p}
		}
		var edges []viz.Edge
		for i, ns := range topo.Neighbors(rangeM) {
			for _, j := range ns {
				if j > i {
					edges = append(edges, viz.Edge{
						From: fmt.Sprintf("%d", i), To: fmt.Sprintf("%d", j), Style: viz.Solid,
					})
				}
			}
		}
		fmt.Print(viz.Map(nodesViz, edges, width))
		return nil
	}

	fmt.Printf("topology: %d nodes in %.0fx%.0f m, range %.0f m, seed %d\n",
		nodes, side, side, rangeM, seed)
	fmt.Printf("connected: %v\n", topo.IsConnected(rangeM))
	fmt.Printf("mean degree: %.2f\n", topo.MeanDegree(rangeM))
	maxHops := 0
	for j := 1; j < topo.NodeCount(); j++ {
		if h := topo.HopDistance(0, j, rangeM); h > maxHops {
			maxHops = h
		}
	}
	fmt.Printf("eccentricity of node 0: %d hops\n", maxHops)
	for i, p := range topo.Positions {
		fmt.Printf("  n%-3d %v\n", i, p)
	}
	return nil
}
