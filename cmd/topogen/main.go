// Command topogen generates random mesh topologies and reports their
// connectivity properties — handy for picking simulation seeds and sanity
// checking deployment densities.
//
// Usage:
//
//	go run ./cmd/topogen -nodes 50 -side 1000 -seed 1
//	go run ./cmd/topogen -nodes 50 -csv > topo.csv
//	go run ./cmd/topogen -metro -nodes 5000 -gateway-spacing 2000
//	go run ./cmd/topogen -metro -nodes 2000 -hotspots 8 -sigma 300 -map
package main

import (
	"flag"
	"fmt"
	"log"

	"meshcast/internal/geom"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
	"meshcast/internal/viz"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 50, "number of nodes")
		side      = flag.Float64("side", 1000, "square side in metres (uniform mode; metro derives it from -density)")
		rangeM    = flag.Float64("range", 250, "radio range in metres")
		seed      = flag.Uint64("seed", 1, "random seed")
		connected = flag.Bool("connected", true, "redraw until connected (uniform mode only)")
		csv       = flag.Bool("csv", false, "emit node positions as CSV")
		asMap     = flag.Bool("map", false, "render an ASCII map with range-graph edges")
		width     = flag.Int("width", 100, "map width in characters")

		metro      = flag.Bool("metro", false, "clustered metro placement (hotspots + gateways) instead of uniform")
		density    = flag.Float64("density", topology.PaperDensityPerKm2, "metro: nodes per km² (sets the area side)")
		hotspots   = flag.Int("hotspots", 0, "metro: hotspot centers (0 = one per 250 nodes, min 4)")
		sigma      = flag.Float64("sigma", 0, "metro: hotspot Gaussian spread in metres (0 = auto from hotspot pitch)")
		background = flag.Float64("background", 0, "metro: uniform background fraction (0 = default 0.25, negative = none)")
		gwSpacing  = flag.Float64("gateway-spacing", 0, "metro: gateway lattice pitch in metres (0 = no gateways)")
	)
	flag.Parse()
	cfg := topology.MetroConfig{
		Nodes:           *nodes,
		DensityPerKm2:   *density,
		Hotspots:        *hotspots,
		SigmaM:          *sigma,
		BackgroundFrac:  *background,
		GatewaySpacingM: *gwSpacing,
	}
	if err := run(*nodes, *side, *rangeM, *seed, *connected, *csv, *asMap, *width, *metro, cfg); err != nil {
		log.Fatal(err)
	}
}

func run(nodes int, side, rangeM float64, seed uint64, connected, csv, asMap bool, width int, metro bool, metroCfg topology.MetroConfig) error {
	rng := sim.NewRNG(seed)
	var topo *topology.Topology
	var gateways []int
	switch {
	case metro:
		topo, gateways = topology.Metro(rng, metroCfg)
		side = topo.Area.Width()
	case connected:
		t, err := topology.RandomConnected(rng, nodes, geom.Square(side), rangeM, 1000)
		if err != nil {
			return err
		}
		topo = t
	default:
		topo = topology.Random(rng, nodes, geom.Square(side))
	}
	isGateway := make(map[int]bool, len(gateways))
	for _, g := range gateways {
		isGateway[g] = true
	}

	if csv {
		fmt.Println("node,x,y,gateway")
		for i, p := range topo.Positions {
			fmt.Printf("%d,%.2f,%.2f,%v\n", i, p.X, p.Y, isGateway[i])
		}
		return nil
	}
	if asMap {
		nodesViz := make([]viz.Node, topo.NodeCount())
		for i, p := range topo.Positions {
			label := fmt.Sprintf("%d", i)
			if isGateway[i] {
				label = "G" + label
			}
			nodesViz[i] = viz.Node{Label: label, Pos: p}
		}
		var edges []viz.Edge
		for i, ns := range topo.Neighbors(rangeM) {
			for _, j := range ns {
				if j > i {
					edges = append(edges, viz.Edge{
						From: nodesViz[i].Label, To: nodesViz[j].Label, Style: viz.Solid,
					})
				}
			}
		}
		fmt.Print(viz.Map(nodesViz, edges, width))
		return nil
	}

	kind := "uniform"
	if metro {
		kind = "metro"
	}
	fmt.Printf("topology: %d nodes (%s) in %.0fx%.0f m, range %.0f m, seed %d\n",
		nodes, kind, side, side, rangeM, seed)
	if metro {
		fmt.Printf("gateways: %d\n", len(gateways))
	}
	fmt.Printf("connected: %v\n", topo.IsConnected(rangeM))
	fmt.Printf("mean degree: %.2f\n", topo.MeanDegree(rangeM))
	maxHops := 0
	for j := 1; j < topo.NodeCount(); j++ {
		if h := topo.HopDistance(0, j, rangeM); h > maxHops {
			maxHops = h
		}
	}
	fmt.Printf("eccentricity of node 0: %d hops\n", maxHops)
	if topo.NodeCount() <= 200 {
		for i, p := range topo.Positions {
			marker := ""
			if isGateway[i] {
				marker = " (gateway)"
			}
			fmt.Printf("  n%-3d %v%s\n", i, p, marker)
		}
	}
	return nil
}
