package main

import (
	"os"
	"path/filepath"
	"testing"

	"meshcast/internal/emu"
	"meshcast/internal/testbed"
)

func writeLinks(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "links")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadLinks(t *testing.T) {
	path := writeLinks(t, `
# testbed lossy links
2 5 0.5
5 2 0.5

1 3 0.45
`)
	table := emu.NewLinkTable(1.0)
	if err := loadLinks(table, path); err != nil {
		t.Fatal(err)
	}
	if got := table.DF(2, 5); got != 0.5 {
		t.Fatalf("DF(2,5) = %v", got)
	}
	if got := table.DF(1, 3); got != 0.45 {
		t.Fatalf("DF(1,3) = %v", got)
	}
	if got := table.DF(3, 1); got != 1.0 {
		t.Fatalf("DF(3,1) should default, got %v", got)
	}
}

func TestLoadLinksErrors(t *testing.T) {
	table := emu.NewLinkTable(1)
	for name, content := range map[string]string{
		"wrong fields": "1 2",
		"bad from":     "x 2 0.5",
		"bad to":       "1 y 0.5",
		"bad df":       "1 2 nope",
		"df range":     "1 2 1.5",
	} {
		path := writeLinks(t, content)
		if err := loadLinks(table, path); err == nil {
			t.Fatalf("%s: expected error for %q", name, content)
		}
	}
	if err := loadLinks(table, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPaperTestbedPreload(t *testing.T) {
	// Mirror the -paper-testbed table construction and verify classes.
	links := emu.NewLinkTable(0)
	for _, l := range testbed.Links {
		df := 0.95
		if l.Class == testbed.Lossy {
			df = 0.5
		}
		links.SetSymmetric(l.A, l.B, df)
	}
	if got := links.DF(2, 5); got != 0.5 {
		t.Fatalf("lossy link 2-5 df = %v", got)
	}
	if got := links.DF(2, 10); got != 0.95 {
		t.Fatalf("clean link 2-10 df = %v", got)
	}
	if got := links.DF(5, 7); got != 0 {
		t.Fatalf("non-adjacent pair df = %v, want 0", got)
	}
}
