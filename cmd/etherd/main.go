// Command etherd runs the emulated wireless broadcast medium that odmrpd
// daemons attach to: every frame a daemon sends is fanned out to all other
// registered daemons subject to per-link delivery probabilities.
//
// Usage:
//
//	go run ./cmd/etherd -addr 127.0.0.1:7777
//	go run ./cmd/etherd -addr 127.0.0.1:7777 -links testbed.links
//
// The links file holds one directed link per line: "from to df", e.g.
// "2 5 0.5". Pairs without an entry use -default-df.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "UDP address to listen on")
	defaultDF := flag.Float64("default-df", 1.0, "delivery probability for links without an entry")
	linksFile := flag.String("links", "", "per-link delivery probability file (from to df)")
	paperTestbed := flag.Bool("paper-testbed", false, "preload the paper's Figure 4 topology (8 nodes, lossy links at df 0.5, others 0.95; unknown pairs disconnected)")
	seed := flag.Int64("seed", 1, "loss randomness seed")
	flag.Parse()
	if err := run(*addr, *defaultDF, *linksFile, *paperTestbed, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, defaultDF float64, linksFile string, paperTestbed bool, seed int64) error {
	if paperTestbed {
		// Non-adjacent pairs in the testbed cannot communicate at all.
		defaultDF = 0
	}
	links := emu.NewLinkTable(defaultDF)
	if paperTestbed {
		for _, l := range testbed.Links {
			df := 0.95
			if l.Class == testbed.Lossy {
				df = 0.5
			}
			links.SetSymmetric(l.A, l.B, df)
		}
	}
	if linksFile != "" {
		if err := loadLinks(links, linksFile); err != nil {
			return err
		}
	}
	ether, err := emu.NewEther(addr, links, seed)
	if err != nil {
		return err
	}
	defer ether.Close()
	fmt.Printf("etherd listening on %s (default df %.2f)\n", ether.Addr(), defaultDF)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			s := ether.Stats()
			fmt.Printf("etherd shutting down: %d frames in, %d out, %d dropped\n",
				s.FramesIn, s.FramesOut, s.FramesDropped)
			return nil
		case <-ticker.C:
			s := ether.Stats()
			fmt.Printf("clients=%d frames in=%d out=%d dropped=%d\n",
				len(ether.Clients()), s.FramesIn, s.FramesOut, s.FramesDropped)
		}
	}
}

// loadLinks parses "from to df" lines; "#" starts a comment.
func loadLinks(t *emu.LinkTable, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: want 'from to df', got %q", path, lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad from: %w", path, lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad to: %w", path, lineNo, err)
		}
		df, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || df < 0 || df > 1 {
			return fmt.Errorf("%s:%d: bad df %q", path, lineNo, fields[2])
		}
		t.Set(packet.NodeID(from), packet.NodeID(to), df)
	}
	return sc.Err()
}
