// Command etherd runs the emulated wireless broadcast medium that odmrpd
// daemons attach to: every frame a daemon sends is fanned out to all other
// registered daemons subject to per-link delivery probabilities, optional
// delay/jitter/duplication shaping, and an optional scripted fault
// schedule.
//
// Usage:
//
//	go run ./cmd/etherd -addr 127.0.0.1:7777
//	go run ./cmd/etherd -addr 127.0.0.1:7777 -links testbed.links
//	go run ./cmd/etherd -paper-testbed -delay 2ms -jitter 5ms -dup 0.01
//	go run ./cmd/etherd -paper-testbed -fault-script chaos.json -time-scale 0.1
//
// The links file holds one directed link per line: "from to df", e.g.
// "2 5 0.5". Pairs without an entry use -default-df.
//
// -fault-script replays the same JSON fault scripts the simulator and the
// live fleet consume (internal/faults): link faults and partitions become
// extra frame drops, scripted node outages take that node's radio off the
// air (etherd cannot kill an external daemon, so its frames stop being
// carried instead), and ether_restarts bounce the medium itself. Script
// node indices address the -nodes list (defaulted by -paper-testbed).
//
// -listen serves the HTTP/JSON control plane (internal/ctlplane): live
// state reads plus link impairment and partition mutations against the
// running medium.
//
// -soak switches etherd into soak mode: instead of serving an external
// medium it runs a whole self-contained supervised fleet (-soak-nodes
// daemons on a generated floor, staggered starts, rolling telemetry under
// -telemetry) and exposes it on -listen, where fault scripts can be
// injected into the *running* fleet:
//
//	go run ./cmd/etherd -soak -soak-nodes 150 -listen 127.0.0.1:8420 -telemetry out/soak
//	curl -X POST -d @chaos.json http://127.0.0.1:8420/faults/script
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/emu"
	"meshcast/internal/faults"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/soak"
	"meshcast/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "UDP address to listen on")
	defaultDF := flag.Float64("default-df", 1.0, "delivery probability for links without an entry")
	linksFile := flag.String("links", "", "per-link delivery probability file (from to df)")
	paperTestbed := flag.Bool("paper-testbed", false, "preload the paper's Figure 4 topology (8 nodes, lossy links at df 0.5, others 0.95; unknown pairs disconnected)")
	seed := flag.Int64("seed", 1, "loss randomness seed")
	delay := flag.Duration("delay", 0, "fixed one-way latency added to every delivered frame")
	jitter := flag.Duration("jitter", 0, "uniform extra latency in [0, jitter) per frame (reorders frames)")
	dup := flag.Float64("dup", 0, "probability a delivered frame arrives twice")
	faultScript := flag.String("fault-script", "", "JSON fault script to replay against the medium (internal/faults format)")
	timeScale := flag.Float64("time-scale", 1, "wall-clock seconds per fault-script virtual second")
	nodesFlag := flag.String("nodes", "", "comma-separated node IDs the fault script's indices address (default: paper testbed nodes with -paper-testbed)")
	listen := flag.String("listen", "", "HTTP control-plane listen address (e.g. 127.0.0.1:8420; empty disables)")
	soakMode := flag.Bool("soak", false, "run a self-contained supervised soak fleet instead of a bare medium")
	soakNodes := flag.Int("soak-nodes", 150, "daemon count in soak mode")
	soakDuration := flag.Duration("soak-duration", 0, "stop the soak after this long (0 = until SIGINT/SIGTERM)")
	metricName := flag.String("metric", "spp", "routing metric in soak mode")
	protocolName := flag.String("protocol", "", "multicast protocol in soak mode: "+strings.Join(multicast.Names(), ", ")+" (default "+multicast.Default+")")
	telemetryDir := flag.String("telemetry", "", "telemetry artifact directory in soak mode (empty disables)")
	rotateEvery := flag.Duration("rotate-every", 5*time.Minute, "series.jsonl rotation period in soak mode")
	sendInterval := flag.Duration("send-interval", 100*time.Millisecond, "per-source CBR gap in soak mode")
	stagger := flag.Duration("stagger", 20*time.Millisecond, "daemon start spacing in soak mode")
	flag.Parse()
	var err error
	if *soakMode {
		err = runSoak(*soakNodes, *soakDuration, *listen, *metricName, *protocolName, *telemetryDir,
			*rotateEvery, *sendInterval, *stagger, uint64(*seed))
	} else {
		err = run(*addr, *defaultDF, *linksFile, *paperTestbed, *seed,
			*delay, *jitter, *dup, *faultScript, *timeScale, *nodesFlag, *listen)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runSoak runs a self-contained supervised fleet until the duration
// elapses or a signal arrives; internal/soak owns the graceful-shutdown
// order (control plane, fleet, ether drain, final telemetry flush).
func runSoak(nodes int, duration time.Duration, listen, metricName, protocolName, telemetryDir string,
	rotateEvery, sendInterval, stagger time.Duration, seed uint64) error {
	kind, err := metric.ParseKind(metricName)
	if err != nil {
		return err
	}
	proto, err := multicast.Resolve(protocolName)
	if err != nil {
		return err
	}
	r, err := soak.New(soak.Config{
		Nodes:        nodes,
		Metric:       kind,
		Protocol:     proto,
		Seed:         seed,
		SendInterval: sendInterval,
		StartStagger: stagger,
		Listen:       listen,
		TelemetryDir: telemetryDir,
		RotateEvery:  rotateEvery,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}
	fmt.Printf("etherd soak: %d daemons, protocol %s, metric %v, stagger %v\n", nodes, proto, kind, stagger)
	if a := r.Addr(); a != "" {
		fmt.Printf("etherd soak control plane on http://%s\n", a)
	}
	if telemetryDir != "" {
		fmt.Printf("etherd soak telemetry under %s (rotate every %v)\n", telemetryDir, rotateEvery)
	}
	err = r.Run(ctx)
	res := r.Fleet().Result()
	fmt.Printf("etherd soak done: pdr %.3f, %d nodes killed, %d restarted\n",
		res.PDR, len(res.Kills), len(res.Restarts))
	return err
}

// medium owns the ether across scripted restarts.
type medium struct {
	mu     sync.Mutex
	ether  *emu.Ether
	addr   string
	links  *emu.LinkTable
	seed   int64
	gen    int64
	impair emu.ImpairFunc
}

func (m *medium) get() *emu.Ether {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ether
}

func (m *medium) stop() {
	m.mu.Lock()
	ether := m.ether
	m.ether = nil
	m.mu.Unlock()
	if ether != nil {
		ether.Close()
	}
}

func (m *medium) start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ether != nil {
		return nil
	}
	m.gen++
	ether, err := emu.NewEther(m.addr, m.links, m.seed+m.gen)
	if err != nil {
		return err
	}
	if m.impair != nil {
		ether.SetImpairment(m.impair)
	}
	m.ether = ether
	return nil
}

func run(addr string, defaultDF float64, linksFile string, paperTestbed bool, seed int64,
	delay, jitter time.Duration, dup float64, faultScript string, timeScale float64,
	nodesFlag, listen string) error {
	if paperTestbed {
		// Non-adjacent pairs in the testbed cannot communicate at all.
		defaultDF = 0
	}
	links := emu.NewLinkTable(defaultDF)
	if paperTestbed {
		for _, l := range testbed.Links {
			df := 0.95
			if l.Class == testbed.Lossy {
				df = 0.5
			}
			links.SetSymmetric(l.A, l.B, df)
		}
	}
	if linksFile != "" {
		if err := loadLinks(links, linksFile); err != nil {
			return err
		}
	}
	if delay > 0 || jitter > 0 || dup > 0 {
		links.ShapeAll(delay, jitter, dup)
		fmt.Printf("etherd shaping: delay=%v jitter=%v dup=%.3f\n", delay, jitter, dup)
	}

	var chaos *emu.Chaos
	if faultScript != "" {
		nodes, err := scriptNodes(nodesFlag, paperTestbed)
		if err != nil {
			return err
		}
		plan, err := faults.LoadPlan(faultScript)
		if err != nil {
			return err
		}
		chaos, err = emu.NewChaos(emu.ChaosConfig{
			Plan: plan, Seed: uint64(seed), TimeScale: timeScale,
		}, nodes)
		if err != nil {
			return err
		}
	}

	m := &medium{addr: addr, links: links, seed: seed}
	if chaos != nil {
		// Down nodes go dark (drop everything to and from them); link
		// faults and partitions add their scripted drop probability.
		m.impair = func(from, to packet.NodeID) float64 {
			if chaos.NodeDown(from) || chaos.NodeDown(to) {
				return 1
			}
			return chaos.DropProb(from, to)
		}
	}
	if err := m.start(); err != nil {
		return err
	}
	defer m.stop()
	fmt.Printf("etherd listening on %s (default df %.2f)\n", m.get().Addr(), defaultDF)

	// Optional HTTP control plane over the bare medium: state reads plus
	// link/partition mutations (node lifecycle is 501 — etherd owns no
	// daemons).
	var ctlSrv *http.Server
	if listen != "" {
		ctl := &ctlplane.MediumController{LinksTable: links, Ether: m.get, StartedAt: time.Now()}
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("control listener: %w", err)
		}
		ctlSrv = &http.Server{Handler: ctlplane.NewServer(ctl, ctlplane.ServerConfig{}).Handler()}
		go ctlSrv.Serve(ln)
		fmt.Printf("etherd control plane on http://%s\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var schedule []emu.ChaosEvent
	if chaos != nil {
		chaos.Begin(time.Now())
		schedule = chaos.Events()
		fmt.Printf("etherd fault schedule: %d events over %v (time scale %.3g)\n",
			len(schedule), scheduleSpan(schedule), timeScale)
	}
	start := time.Now()
	next := 0

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	lastStatus := time.Now()
	for {
		select {
		case <-stop:
			// Graceful shutdown order: control plane first (no mutation
			// races the teardown), then drain so in-flight delayed frames
			// land and the final stats line balances.
			if ctlSrv != nil {
				shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				ctlSrv.Shutdown(shutCtx)
				cancel()
			}
			var s emu.EtherStats
			if e := m.get(); e != nil {
				e.Drain()
				s = e.Stats()
			}
			fmt.Printf("etherd shutting down: %d frames in, %d out, %d dropped, %d dup\n",
				s.FramesIn, s.FramesOut, s.FramesDropped, s.FramesDup)
			return nil
		case <-ticker.C:
			now := time.Since(start)
			for next < len(schedule) && schedule[next].At <= now {
				ev := schedule[next]
				next++
				switch ev.Kind {
				case faults.EventEtherDown:
					fmt.Printf("[%v] ether down (scripted)\n", now.Round(time.Millisecond))
					m.stop()
				case faults.EventEtherUp:
					if err := m.start(); err != nil {
						fmt.Printf("[%v] ether restart failed: %v (will retry)\n", now.Round(time.Millisecond), err)
						next-- // retry on the next tick
						break
					}
					fmt.Printf("[%v] ether up (scripted)\n", now.Round(time.Millisecond))
				default:
					fmt.Printf("[%v] %s node=%d\n", now.Round(time.Millisecond), ev.Kind, ev.Node)
				}
			}
			if time.Since(lastStatus) >= 10*time.Second {
				lastStatus = time.Now()
				if e := m.get(); e != nil {
					s := e.Stats()
					fmt.Printf("clients=%d frames in=%d out=%d dropped=%d dup=%d\n",
						len(e.Clients()), s.FramesIn, s.FramesOut, s.FramesDropped, s.FramesDup)
				} else {
					fmt.Println("ether down")
				}
			}
		}
	}
}

// scriptNodes resolves the node-ID list fault-script indices address.
func scriptNodes(nodesFlag string, paperTestbed bool) ([]packet.NodeID, error) {
	if nodesFlag == "" {
		if paperTestbed {
			ids := append([]packet.NodeID(nil), testbed.NodeIDs...)
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids, nil
		}
		return nil, fmt.Errorf("-fault-script needs -nodes (or -paper-testbed) to map script node indices to IDs")
	}
	var ids []packet.NodeID
	for _, part := range strings.Split(nodesFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-nodes: bad ID %q: %w", part, err)
		}
		ids = append(ids, packet.NodeID(v))
	}
	return ids, nil
}

func scheduleSpan(events []emu.ChaosEvent) time.Duration {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].At
}

// loadLinks parses "from to df" lines; "#" starts a comment.
func loadLinks(t *emu.LinkTable, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: want 'from to df', got %q", path, lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad from: %w", path, lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad to: %w", path, lineNo, err)
		}
		df, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || df < 0 || df > 1 {
			return fmt.Errorf("%s:%d: bad df %q", path, lineNo, fields[2])
		}
		t.Set(packet.NodeID(from), packet.NodeID(to), df)
	}
	return sc.Err()
}
