// Command etherd runs the emulated wireless broadcast medium that odmrpd
// daemons attach to: every frame a daemon sends is fanned out to all other
// registered daemons subject to per-link delivery probabilities, optional
// delay/jitter/duplication shaping, and an optional scripted fault
// schedule.
//
// Usage:
//
//	go run ./cmd/etherd -addr 127.0.0.1:7777
//	go run ./cmd/etherd -addr 127.0.0.1:7777 -links testbed.links
//	go run ./cmd/etherd -paper-testbed -delay 2ms -jitter 5ms -dup 0.01
//	go run ./cmd/etherd -paper-testbed -fault-script chaos.json -time-scale 0.1
//
// The links file holds one directed link per line: "from to df", e.g.
// "2 5 0.5". Pairs without an entry use -default-df.
//
// -fault-script replays the same JSON fault scripts the simulator and the
// live fleet consume (internal/faults): link faults and partitions become
// extra frame drops, scripted node outages take that node's radio off the
// air (etherd cannot kill an external daemon, so its frames stop being
// carried instead), and ether_restarts bounce the medium itself. Script
// node indices address the -nodes list (defaulted by -paper-testbed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/faults"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "UDP address to listen on")
	defaultDF := flag.Float64("default-df", 1.0, "delivery probability for links without an entry")
	linksFile := flag.String("links", "", "per-link delivery probability file (from to df)")
	paperTestbed := flag.Bool("paper-testbed", false, "preload the paper's Figure 4 topology (8 nodes, lossy links at df 0.5, others 0.95; unknown pairs disconnected)")
	seed := flag.Int64("seed", 1, "loss randomness seed")
	delay := flag.Duration("delay", 0, "fixed one-way latency added to every delivered frame")
	jitter := flag.Duration("jitter", 0, "uniform extra latency in [0, jitter) per frame (reorders frames)")
	dup := flag.Float64("dup", 0, "probability a delivered frame arrives twice")
	faultScript := flag.String("fault-script", "", "JSON fault script to replay against the medium (internal/faults format)")
	timeScale := flag.Float64("time-scale", 1, "wall-clock seconds per fault-script virtual second")
	nodesFlag := flag.String("nodes", "", "comma-separated node IDs the fault script's indices address (default: paper testbed nodes with -paper-testbed)")
	flag.Parse()
	if err := run(*addr, *defaultDF, *linksFile, *paperTestbed, *seed,
		*delay, *jitter, *dup, *faultScript, *timeScale, *nodesFlag); err != nil {
		log.Fatal(err)
	}
}

// medium owns the ether across scripted restarts.
type medium struct {
	mu     sync.Mutex
	ether  *emu.Ether
	addr   string
	links  *emu.LinkTable
	seed   int64
	gen    int64
	impair emu.ImpairFunc
}

func (m *medium) get() *emu.Ether {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ether
}

func (m *medium) stop() {
	m.mu.Lock()
	ether := m.ether
	m.ether = nil
	m.mu.Unlock()
	if ether != nil {
		ether.Close()
	}
}

func (m *medium) start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ether != nil {
		return nil
	}
	m.gen++
	ether, err := emu.NewEther(m.addr, m.links, m.seed+m.gen)
	if err != nil {
		return err
	}
	if m.impair != nil {
		ether.SetImpairment(m.impair)
	}
	m.ether = ether
	return nil
}

func run(addr string, defaultDF float64, linksFile string, paperTestbed bool, seed int64,
	delay, jitter time.Duration, dup float64, faultScript string, timeScale float64, nodesFlag string) error {
	if paperTestbed {
		// Non-adjacent pairs in the testbed cannot communicate at all.
		defaultDF = 0
	}
	links := emu.NewLinkTable(defaultDF)
	if paperTestbed {
		for _, l := range testbed.Links {
			df := 0.95
			if l.Class == testbed.Lossy {
				df = 0.5
			}
			links.SetSymmetric(l.A, l.B, df)
		}
	}
	if linksFile != "" {
		if err := loadLinks(links, linksFile); err != nil {
			return err
		}
	}
	if delay > 0 || jitter > 0 || dup > 0 {
		links.ShapeAll(delay, jitter, dup)
		fmt.Printf("etherd shaping: delay=%v jitter=%v dup=%.3f\n", delay, jitter, dup)
	}

	var chaos *emu.Chaos
	if faultScript != "" {
		nodes, err := scriptNodes(nodesFlag, paperTestbed)
		if err != nil {
			return err
		}
		plan, err := faults.LoadPlan(faultScript)
		if err != nil {
			return err
		}
		chaos, err = emu.NewChaos(emu.ChaosConfig{
			Plan: plan, Seed: uint64(seed), TimeScale: timeScale,
		}, nodes)
		if err != nil {
			return err
		}
	}

	m := &medium{addr: addr, links: links, seed: seed}
	if chaos != nil {
		// Down nodes go dark (drop everything to and from them); link
		// faults and partitions add their scripted drop probability.
		m.impair = func(from, to packet.NodeID) float64 {
			if chaos.NodeDown(from) || chaos.NodeDown(to) {
				return 1
			}
			return chaos.DropProb(from, to)
		}
	}
	if err := m.start(); err != nil {
		return err
	}
	defer m.stop()
	fmt.Printf("etherd listening on %s (default df %.2f)\n", m.get().Addr(), defaultDF)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var schedule []emu.ChaosEvent
	if chaos != nil {
		chaos.Begin(time.Now())
		schedule = chaos.Events()
		fmt.Printf("etherd fault schedule: %d events over %v (time scale %.3g)\n",
			len(schedule), scheduleSpan(schedule), timeScale)
	}
	start := time.Now()
	next := 0

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	lastStatus := time.Now()
	for {
		select {
		case <-stop:
			var s emu.EtherStats
			if e := m.get(); e != nil {
				s = e.Stats()
			}
			fmt.Printf("etherd shutting down: %d frames in, %d out, %d dropped, %d dup\n",
				s.FramesIn, s.FramesOut, s.FramesDropped, s.FramesDup)
			return nil
		case <-ticker.C:
			now := time.Since(start)
			for next < len(schedule) && schedule[next].At <= now {
				ev := schedule[next]
				next++
				switch ev.Kind {
				case faults.EventEtherDown:
					fmt.Printf("[%v] ether down (scripted)\n", now.Round(time.Millisecond))
					m.stop()
				case faults.EventEtherUp:
					if err := m.start(); err != nil {
						fmt.Printf("[%v] ether restart failed: %v (will retry)\n", now.Round(time.Millisecond), err)
						next-- // retry on the next tick
						break
					}
					fmt.Printf("[%v] ether up (scripted)\n", now.Round(time.Millisecond))
				default:
					fmt.Printf("[%v] %s node=%d\n", now.Round(time.Millisecond), ev.Kind, ev.Node)
				}
			}
			if time.Since(lastStatus) >= 10*time.Second {
				lastStatus = time.Now()
				if e := m.get(); e != nil {
					s := e.Stats()
					fmt.Printf("clients=%d frames in=%d out=%d dropped=%d dup=%d\n",
						len(e.Clients()), s.FramesIn, s.FramesOut, s.FramesDropped, s.FramesDup)
				} else {
					fmt.Println("ether down")
				}
			}
		}
	}
}

// scriptNodes resolves the node-ID list fault-script indices address.
func scriptNodes(nodesFlag string, paperTestbed bool) ([]packet.NodeID, error) {
	if nodesFlag == "" {
		if paperTestbed {
			ids := append([]packet.NodeID(nil), testbed.NodeIDs...)
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids, nil
		}
		return nil, fmt.Errorf("-fault-script needs -nodes (or -paper-testbed) to map script node indices to IDs")
	}
	var ids []packet.NodeID
	for _, part := range strings.Split(nodesFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-nodes: bad ID %q: %w", part, err)
		}
		ids = append(ids, packet.NodeID(v))
	}
	return ids, nil
}

func scheduleSpan(events []emu.ChaosEvent) time.Duration {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].At
}

// loadLinks parses "from to df" lines; "#" starts a comment.
func loadLinks(t *emu.LinkTable, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: want 'from to df', got %q", path, lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad from: %w", path, lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 16)
		if err != nil {
			return fmt.Errorf("%s:%d: bad to: %w", path, lineNo, err)
		}
		df, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || df < 0 || df > 1 {
			return fmt.Errorf("%s:%d: bad df %q", path, lineNo, fields[2])
		}
		t.Set(packet.NodeID(from), packet.NodeID(to), df)
	}
	return sc.Err()
}
