// Command meshdump renders a simulation packet capture (produced with
// `meshsim -capture file`) as human-readable lines — the simulator's
// tcpdump.
//
// Usage:
//
//	go run ./cmd/meshsim -metric spp -seconds 10 -capture run.mcap
//	go run ./cmd/meshdump run.mcap
//	go run ./cmd/meshdump -node 3 -kind JOIN_QUERY run.mcap
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"meshcast/internal/capture"
	"meshcast/internal/packet"
)

func main() {
	node := flag.Int("node", -1, "only show frames transmitted by this node")
	kind := flag.String("kind", "", "only show this payload kind (DATA, JOIN_QUERY, JOIN_REPLY, PROBE, PAIR_SMALL, PAIR_LARGE)")
	stats := flag.Bool("stats", false, "print per-kind counts instead of individual frames")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: meshdump [-node N] [-kind K] [-stats] capture-file")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *node, *kind, *stats); err != nil {
		log.Fatal(err)
	}
}

func run(path string, node int, kind string, stats bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := capture.NewReader(f)
	if err != nil {
		return err
	}

	counts := map[string]int{}
	total := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if node >= 0 && rec.Src != packet.NodeID(node) {
			continue
		}
		payloadKind := "(control)"
		if rec.Payload != nil {
			payloadKind = rec.Payload.Kind.String()
		}
		if kind != "" && !strings.EqualFold(payloadKind, kind) {
			continue
		}
		total++
		if stats {
			counts[payloadKind]++
			continue
		}
		fmt.Println(rec)
	}
	if stats {
		fmt.Printf("%d frames\n", total)
		for k, n := range counts {
			fmt.Printf("  %-12s %d\n", k, n)
		}
	}
	return nil
}
