// Command meshdump renders a simulation packet capture (produced with
// `meshsim -capture file`) as human-readable lines — the simulator's
// tcpdump.
//
// Usage:
//
//	go run ./cmd/meshsim -metric spp -seconds 10 -capture run.mcap
//	go run ./cmd/meshdump run.mcap
//	go run ./cmd/meshdump -node 3 -kind JOIN_QUERY run.mcap
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"meshcast/internal/capture"
	"meshcast/internal/packet"
)

// validKinds lists every payload-kind filter value, as rendered by
// packet.Type.String, plus the pseudo-kind for payload-less control frames.
var validKinds = []string{
	"DATA", "JOIN_QUERY", "JOIN_REPLY", "CORE_ANNOUNCE", "TREE_JOIN",
	"PROBE", "PAIR_SMALL", "PAIR_LARGE",
	"(control)",
}

func main() {
	node := flag.Int("node", -1, "only show frames transmitted by this node")
	kind := flag.String("kind", "", "only show this payload kind ("+strings.Join(validKinds, ", ")+")")
	stats := flag.Bool("stats", false, "print per-kind counts instead of individual frames")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: meshdump [-node N] [-kind K] [-stats] capture-file")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *node, *kind, *stats); err != nil {
		log.Fatal(err)
	}
}

// checkKind validates a -kind filter value before any capture is read, so a
// typo fails fast with the valid list instead of silently matching nothing.
func checkKind(kind string) error {
	if kind == "" {
		return nil
	}
	for _, k := range validKinds {
		if strings.EqualFold(kind, k) {
			return nil
		}
	}
	return fmt.Errorf("unknown -kind %q (valid: %s)", kind, strings.Join(validKinds, ", "))
}

func run(w io.Writer, path string, node int, kind string, stats bool) error {
	if err := checkKind(kind); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := capture.NewReader(f)
	if err != nil {
		return err
	}

	counts := map[string]int{}
	total := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if node >= 0 && rec.Src != packet.NodeID(node) {
			continue
		}
		payloadKind := "(control)"
		if rec.Payload != nil {
			payloadKind = rec.Payload.Kind.String()
		}
		if kind != "" && !strings.EqualFold(payloadKind, kind) {
			continue
		}
		total++
		if stats {
			counts[payloadKind]++
			continue
		}
		fmt.Fprintln(w, rec)
	}
	if stats {
		fmt.Fprintf(w, "%d frames\n", total)
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "  %-12s %d\n", k, counts[k])
		}
	}
	return nil
}
