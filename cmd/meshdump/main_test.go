package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshcast/internal/capture"
	"meshcast/internal/packet"
)

func writeCapture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.mcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := capture.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w.Capture(time.Second, &packet.Frame{
		Kind: packet.FrameData, Src: 1, Dst: packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeData, Src: 1, Seq: 1, PayloadBytes: 64},
	})
	w.Capture(2*time.Second, &packet.Frame{
		Kind: packet.FrameData, Src: 2, Dst: packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeJoinQuery, Src: 2, Group: 1, Seq: 1},
	})
	w.Capture(3*time.Second, &packet.Frame{
		Kind: packet.FrameData, Src: 1, Dst: packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeData, Src: 1, Seq: 2, PayloadBytes: 64},
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func capDump(t *testing.T, path string, node int, kind string, stats bool) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, path, node, kind, stats); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunPrintsAllFrames(t *testing.T) {
	out := capDump(t, writeCapture(t), -1, "", false)
	if n := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); n != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", n, out)
	}
}

func TestRunNodeFilter(t *testing.T) {
	path := writeCapture(t)
	out := capDump(t, path, 1, "", false)
	if n := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); n != 2 {
		t.Fatalf("node 1 filter printed %d lines, want 2:\n%s", n, out)
	}
	if out := capDump(t, path, 9, "", false); out != "" {
		t.Fatalf("node 9 filter printed %q, want nothing", out)
	}
}

func TestRunKindFilter(t *testing.T) {
	path := writeCapture(t)
	out := capDump(t, path, -1, "JOIN_QUERY", false)
	if lines := strings.Split(strings.TrimRight(out, "\n"), "\n"); len(lines) != 1 || !strings.Contains(lines[0], "JOIN_QUERY") {
		t.Fatalf("kind filter output:\n%s", out)
	}
	// Case-insensitive.
	if got := capDump(t, path, -1, "join_query", false); got != out {
		t.Fatalf("case-insensitive filter differs:\n%s\n%s", got, out)
	}
	// Combined with -node: node 2 sent the only query.
	if out := capDump(t, path, 1, "JOIN_QUERY", false); out != "" {
		t.Fatalf("node 1 + JOIN_QUERY printed %q, want nothing", out)
	}
}

func TestRunStats(t *testing.T) {
	out := capDump(t, writeCapture(t), -1, "", true)
	for _, want := range []string{"3 frames", "DATA", "2", "JOIN_QUERY", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	// Kinds are sorted, so the output is deterministic.
	if strings.Index(out, "DATA") > strings.Index(out, "JOIN_QUERY") {
		t.Fatalf("stats kinds not sorted:\n%s", out)
	}
}

func TestRunUnknownKindFailsFast(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, filepath.Join(t.TempDir(), "never-opened"), -1, "BOGUS", false)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Fails before touching the capture file, and names the valid kinds.
	for _, want := range []string{"BOGUS", "DATA", "JOIN_QUERY", "JOIN_REPLY", "PROBE", "PAIR_SMALL", "PAIR_LARGE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, filepath.Join(t.TempDir(), "missing"), -1, "", false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunRejectsNonCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, path, -1, "", false); err == nil {
		t.Fatal("junk file accepted")
	}
}
