package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"meshcast/internal/capture"
	"meshcast/internal/packet"
)

func writeCapture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.mcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := capture.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w.Capture(time.Second, &packet.Frame{
		Kind: packet.FrameData, Src: 1, Dst: packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeData, Src: 1, Seq: 1, PayloadBytes: 64},
	})
	w.Capture(2*time.Second, &packet.Frame{
		Kind: packet.FrameData, Src: 2, Dst: packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeJoinQuery, Src: 2, Group: 1, Seq: 1},
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFiltersAndStats(t *testing.T) {
	path := writeCapture(t)
	// All modes must succeed; output formatting is covered by the capture
	// package's Record.String tests.
	if err := run(path, -1, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 1, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, -1, "JOIN_QUERY", false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, -1, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing"), -1, "", false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunRejectsNonCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, -1, "", false); err == nil {
		t.Fatal("junk file accepted")
	}
}
