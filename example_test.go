package meshcast_test

import (
	"fmt"

	"meshcast"
)

// ExamplePathCost evaluates the paper's Figure 1 example: SPP picks the path
// with the higher end-to-end success probability, while METX minimizes total
// expected transmissions and picks the other one.
func ExamplePathCost() {
	acd := []meshcast.LinkEstimate{{DeliveryProb: 1}, {DeliveryProb: 1.0 / 3.0}}
	abd := []meshcast.LinkEstimate{{DeliveryProb: 0.25}, {DeliveryProb: 1}}

	sppACD, _ := meshcast.PathCost(meshcast.SPP, acd)
	sppABD, _ := meshcast.PathCost(meshcast.SPP, abd)
	metxACD, _ := meshcast.PathCost(meshcast.METX, acd)
	metxABD, _ := meshcast.PathCost(meshcast.METX, abd)

	fmt.Printf("SPP:  A-C-D %.3f  A-B-D %.3f\n", sppACD, sppABD)
	fmt.Printf("METX: A-C-D %.0f      A-B-D %.0f\n", metxACD, metxABD)
	// Output:
	// SPP:  A-C-D 0.333  A-B-D 0.250
	// METX: A-C-D 6      A-B-D 5
}

// ExampleBetterPath compares two path costs under a metric: SPP is
// maximized, every other metric is minimized.
func ExampleBetterPath() {
	better, _ := meshcast.BetterPath(meshcast.SPP, 0.5, 0.3)
	fmt.Println("SPP 0.5 beats 0.3:", better)
	better, _ = meshcast.BetterPath(meshcast.ETX, 2.0, 3.0)
	fmt.Println("ETX 2.0 beats 3.0:", better)
	// Output:
	// SPP 0.5 beats 0.3: true
	// ETX 2.0 beats 3.0: true
}

// ExampleParseMetric converts metric names from flags or config files.
func ExampleParseMetric() {
	m, _ := meshcast.ParseMetric("spp")
	fmt.Println(m == meshcast.SPP)
	// Output: true
}

// ExampleMetrics lists every implemented metric in presentation order.
func ExampleMetrics() {
	for _, m := range meshcast.Metrics() {
		fmt.Println(m)
	}
	// Output:
	// minhop
	// ett
	// etx
	// metx
	// pp
	// spp
}
