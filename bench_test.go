// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each benchmark runs a reduced-scale version of the corresponding
// experiment (2 seeds, 60 s of traffic instead of 10 seeds × 400 s) and
// reports the headline quantities as custom benchmark metrics — e.g.
// "spp_rel" is ODMRP_SPP's throughput normalized against original ODMRP.
// The full-scale reproduction is `go run ./cmd/experiments -full`, which
// writes EXPERIMENTS.md.
package meshcast

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"meshcast/internal/experiments"
	"meshcast/internal/metric"
	"meshcast/internal/sim"
	"meshcast/internal/testbed"
)

// benchOptions is the reduced configuration used by the paper benches. The
// (metric, seed) matrix runs through the internal/runner worker pool at
// GOMAXPROCS; results (and thus reported bench metrics) are byte-identical
// to a serial run.
func benchOptions() experiments.Options {
	o := experiments.FullOptions()
	o.Seeds = []uint64{1, 2}
	o.TrafficSeconds = 60
	o.WarmupSeconds = 60
	o.Workers = runtime.GOMAXPROCS(0)
	return o
}

func reportRows(b *testing.B, sims *experiments.PaperSims, suffix string) {
	b.Helper()
	for _, row := range sims.Rows {
		b.ReportMetric(row.RelThroughput, row.Metric.String()+suffix)
	}
}

// BenchmarkFig2ThroughputSimulations regenerates Figure 2's
// "Throughput-simulations" column: normalized throughput of the five
// link-quality metrics against original ODMRP on 50-node Rayleigh-faded
// topologies. Paper: SPP ≈ PP 1.18 > METX 1.16 > ETX 1.145 > ETT 1.135.
func BenchmarkFig2ThroughputSimulations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sims, err := experiments.RunPaperSims(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, sims, "_rel")
		b.ReportMetric(sims.BaselinePDR, "odmrp_abs_pdr")
	}
}

// BenchmarkFig2HighOverhead regenerates Figure 2's "Throughput-high
// overhead" column: the same comparison with 5x the probing rate. Paper:
// every metric loses ~2% to probe interference.
func BenchmarkFig2HighOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.ProbeRateFactor = 5
		sims, err := experiments.RunPaperSims(o)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, sims, "_rel_5x")
	}
}

// BenchmarkFig2LowOverhead regenerates the §4.2.2 variant with a 10x lower
// probing rate. Paper: gains improve by ~3%.
func BenchmarkFig2LowOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.ProbeRateFactor = 0.1
		sims, err := experiments.RunPaperSims(o)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, sims, "_rel_0.1x")
	}
}

// BenchmarkFig2Delay regenerates Figure 2's "Delay" column: end-to-end
// delay normalized against original ODMRP. Paper: SPP and ETX lowest among
// the five metrics (their probes contend least for the channel).
func BenchmarkFig2Delay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sims, err := experiments.RunPaperSims(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range sims.Rows {
			b.ReportMetric(row.RelDelay, row.Metric.String()+"_rel_delay")
		}
	}
}

// BenchmarkTable1Overhead regenerates Table 1: probe bytes as a percentage
// of data bytes received. Paper: ETT 3.03, PP 2.54, ETX 0.66, METX 0.61,
// SPP 0.53.
func BenchmarkTable1Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sims, err := experiments.RunPaperSims(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range sims.Rows {
			b.ReportMetric(row.OverheadPct, row.Metric.String()+"_ovh_pct")
		}
	}
}

// BenchmarkFig2ThroughputTestbed regenerates Figure 2's
// "Throughput-testbed" column on the 8-node Figure 4 emulation. Paper:
// PP 1.175 > SPP 1.14 > ETX 1.08 ≈ METX 1.075 ≈ ETT 1.07 — note PP
// overtaking SPP, the testbed's key inversion (§5.3).
func BenchmarkFig2ThroughputTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		col, err := experiments.RunTestbedColumn(benchOptions(), 3, 120)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range col.Rows {
			b.ReportMetric(row.RelThroughput, row.Metric.String()+"_rel_tb")
		}
	}
}

// BenchmarkSec43MultiSource regenerates §4.3: relative gains shrink when
// groups have multiple sources because the redundant forwarding mesh helps
// the baseline more than the metrics.
func BenchmarkSec43MultiSource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Metrics = []metric.Kind{metric.SPP, metric.PP}
		cmp, err := experiments.RunMultiSource(o, 3)
		if err != nil {
			b.Fatal(err)
		}
		for j, row := range cmp.SingleSource.Rows {
			b.ReportMetric(row.RelThroughput, row.Metric.String()+"_1src")
			b.ReportMetric(cmp.MultiSource.Rows[j].RelThroughput, row.Metric.String()+"_3src")
		}
	}
}

// BenchmarkAblationFading checks DESIGN.md decision 2: without Rayleigh
// fading the baseline's min-hop paths are clean and SPP's gain collapses.
func BenchmarkAblationFading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab, err := experiments.RunFadingAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ab.WithFading.Rows[0].RelThroughput, "spp_rel_fading")
		b.ReportMetric(ab.WithoutFading.Rows[0].RelThroughput, "spp_rel_nofading")
	}
}

// BenchmarkAblationDeltaAlpha sweeps the δ/α path-diversity windows
// (DESIGN.md decision 3) for SPP.
func BenchmarkAblationDeltaAlpha(b *testing.B) {
	points := []struct{ Delta, Alpha time.Duration }{
		{0, 0},
		{30 * time.Millisecond, 20 * time.Millisecond},
		{120 * time.Millisecond, 80 * time.Millisecond},
	}
	for i := 0; i < b.N; i++ {
		got, err := experiments.RunDeltaAlphaAblation(benchOptions(), metric.SPP, points)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range got {
			b.ReportMetric(p.RelThroughput, "spp_rel_d"+p.Delta.String())
		}
	}
}

// BenchmarkAblationHistory sweeps the estimator history length (DESIGN.md
// decision 4): loss-window size for SPP, EWMA weight for PP.
func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		got, err := experiments.RunHistoryAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range got {
			switch {
			case p.WindowSize > 0:
				b.ReportMetric(p.RelThroughput, "spp_win"+itoa(p.WindowSize))
			default:
				b.ReportMetric(p.RelThroughput, "pp_hw"+ftoa(p.HistoryWeight))
			}
		}
	}
}

// BenchmarkMetricAlgebra measures the raw path-cost algebra (Figures 1 and
// 3 run millions of times) — the per-query cost of the metric layer.
func BenchmarkMetricAlgebra(b *testing.B) {
	links := []metric.LinkEstimate{
		{DeliveryProb: 0.9, PairDelaySeconds: 0.004, BandwidthBps: 2e6, PacketBytes: 512},
		{DeliveryProb: 0.8, PairDelaySeconds: 0.005, BandwidthBps: 1.8e6, PacketBytes: 512},
		{DeliveryProb: 0.95, PairDelaySeconds: 0.004, BandwidthBps: 2e6, PacketBytes: 512},
	}
	for _, k := range metric.All() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			pm := metric.MustNew(k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := pm.Initial()
				for _, e := range links {
					c = pm.Accumulate(c, pm.LinkCost(e))
				}
				if !pm.Better(c, pm.Worst()) {
					b.Fatal("degenerate cost")
				}
			}
		})
	}
}

// BenchmarkSimulatorEventRate measures the discrete-event engine's raw
// throughput — the capacity budget every experiment draws on.
func BenchmarkSimulatorEventRate(b *testing.B) {
	engine := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.Schedule(time.Microsecond, func() {})
		engine.Run(engine.Now() + time.Microsecond)
	}
}

// BenchmarkScenarioSimSpeed measures end-to-end simulation speed: virtual
// seconds simulated per wall-clock second on the paper's 50-node scenario.
func BenchmarkScenarioSimSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, err := experiments.DefaultScenario(metric.SPP, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg.TrafficStart = 10 * time.Second
		cfg.Duration = 40 * time.Second
		start := time.Now()
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start).Seconds()
		b.ReportMetric(40/wall, "vsec/sec")
		b.ReportMetric(float64(res.Events)/wall, "events/sec")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// BenchmarkExtensionProbeRateSweep investigates the paper's "optimal
// probing rate" future work (§6): throughput vs probing-rate factor for
// SPP. The optimum sits between stale estimates (low rates) and probe
// interference (high rates).
func BenchmarkExtensionProbeRateSweep(b *testing.B) {
	factors := []float64{0.1, 0.5, 1, 2, 5}
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seeds = o.Seeds[:1]
		got, err := experiments.RunProbeRateSweep(o, metric.SPP, factors)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range got {
			b.ReportMetric(p.RelThroughput, "spp_rate"+ftoa(p.Factor))
		}
	}
}

// BenchmarkExtensionReliableReplies measures the passive-acknowledgment
// JOIN REPLY retransmission extension against the paper's fire-and-forget
// replies.
func BenchmarkExtensionReliableReplies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seeds = o.Seeds[:1]
		cmp, err := experiments.RunReliableReplyComparison(o, metric.SPP, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Baseline.Rows[0].RelThroughput, "spp_rel_base")
		b.ReportMetric(cmp.Reliable.Rows[0].RelThroughput, "spp_rel_retx")
	}
}

// BenchmarkExtensionLargerTestbed runs the metric comparison on a generated
// 16-node office floor — the paper's "significantly expand our testbed"
// future work.
func BenchmarkExtensionLargerTestbed(b *testing.B) {
	sc, err := testbed.GenerateFloor(testbed.FloorConfig{Nodes: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run := func(k metric.Kind) float64 {
			var sum float64
			for _, seed := range []uint64{1, 2} {
				cfg := testbed.DefaultConfig(k, seed)
				cfg.WarmupSeconds = 60
				cfg.TrafficSeconds = 90
				res, err := testbed.RunScenario(cfg, sc)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Summary.PDR
			}
			return sum / 2
		}
		base := run(metric.MinHop)
		for _, k := range []metric.Kind{metric.PP, metric.SPP} {
			b.ReportMetric(run(k)/base, k.String()+"_rel_floor16")
		}
	}
}
