// Package meshcast is a wireless mesh network simulator and a complete
// implementation of the ODMRP multicast protocol equipped with the
// high-throughput routing metrics of Roy, Koutsonikolas, Das and Hu,
// "High-Throughput Multicast Routing Metrics in Wireless Mesh Networks"
// (ICDCS 2006): ETX, ETT, PP, METX and SPP, adapted for link-layer
// broadcast.
//
// The package offers three levels of use:
//
//   - Metric algebra: NewMetric / PathCost evaluate and compare multicast
//     path costs for any of the six metrics on static link data.
//   - Simulation: Simulation builds an 802.11 mesh (two-ray propagation,
//     Rayleigh fading, DCF MAC) running ODMRP with a chosen metric, CBR
//     multicast traffic, and full measurement collection.
//   - Paper experiments: RunTestbed reproduces the paper's 8-node indoor
//     testbed; the cmd/experiments tool regenerates every table and figure.
//
// All randomness derives from a single seed: runs are exactly reproducible.
package meshcast

import (
	"context"
	"fmt"
	"time"

	"meshcast/internal/analysis"
	"meshcast/internal/emu"
	"meshcast/internal/experiments"
	"meshcast/internal/faults"
	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/node"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/runner"
	"meshcast/internal/sim"
	"meshcast/internal/stats"
	"meshcast/internal/telemetry"
	"meshcast/internal/testbed"
	"meshcast/internal/topology"
	"meshcast/internal/traffic"
	"meshcast/internal/viz"
)

// Metric identifies a multicast routing metric.
type Metric = metric.Kind

// The available metrics. MinHop reproduces the original ODMRP; the other
// five are the paper's high-throughput adaptations.
const (
	MinHop = metric.MinHop
	ETX    = metric.ETX
	ETT    = metric.ETT
	PP     = metric.PP
	METX   = metric.METX
	SPP    = metric.SPP
)

// Metrics returns all metrics in presentation order.
func Metrics() []Metric { return metric.All() }

// LinkQualityMetrics returns the five probing metrics (everything except
// MinHop).
func LinkQualityMetrics() []Metric { return metric.LinkQuality() }

// ParseMetric converts a name ("spp", "etx", ...) to a Metric.
func ParseMetric(s string) (Metric, error) { return metric.ParseKind(s) }

// LinkEstimate carries per-link measurements for static path evaluation.
type LinkEstimate = metric.LinkEstimate

// PathCost folds per-link estimates through a metric's cost algebra,
// source first, and returns the resulting path cost. Use BetterPath to
// compare two costs under the same metric (SPP is maximized, the others
// minimized).
func PathCost(m Metric, links []LinkEstimate) (float64, error) {
	pm, err := metric.New(m)
	if err != nil {
		return 0, err
	}
	return metric.PathCostFromEstimates(pm, links), nil
}

// BetterPath reports whether path cost a beats b under metric m.
func BetterPath(m Metric, a, b float64) (bool, error) {
	pm, err := metric.New(m)
	if err != nil {
		return false, err
	}
	return pm.Better(a, b), nil
}

// NodeID identifies a node in a simulation.
type NodeID = packet.NodeID

// GroupID identifies a multicast group.
type GroupID = packet.GroupID

// Summary aggregates a run's delivery statistics.
type Summary = stats.Summary

// MemberPDR is one receiver's per-flow delivery ratio.
type MemberPDR = stats.MemberPDR

// Percentiles summarizes an end-to-end delay distribution.
type Percentiles = stats.Percentiles

// Edge is a directed data-plane link (for tree analysis).
type Edge = multicast.Edge

// TelemetrySnapshot is an instantaneous view of every telemetry
// instrument: cumulative counters, current gauges and histogram state,
// keyed by dotted layer-first names such as "mac.retries".
type TelemetrySnapshot = telemetry.Snapshot

// SimulationConfig configures a Simulation.
type SimulationConfig struct {
	// Seed drives all randomness; identical seeds give identical runs.
	Seed uint64
	// Metric selects the routing metric (default SPP).
	Metric Metric
	// Protocol selects the multicast routing protocol by registered name
	// ("odmrp", "mcst"); empty means ODMRP.
	Protocol string
	// DisableFading switches off Rayleigh fading (links become on/off by
	// distance). The paper's simulations keep fading on.
	DisableFading bool
	// PayloadBytes is the CBR payload size (default 512).
	PayloadBytes int
	// SendInterval is the CBR inter-packet gap (default 50 ms).
	SendInterval time.Duration
}

// Simulation is a programmable mesh-network simulation: place nodes, join
// groups, attach sources, run, inspect.
type Simulation struct {
	engine    *sim.Engine
	medium    *phy.Medium
	nodes     []*node.Node
	collector *stats.Collector
	delays    stats.DelayTracker
	flows     []*traffic.CBR
	flowKeys  []flowKey
	cfg       SimulationConfig
	started   bool
	telem     *telemetry.Registry
	groups    map[GroupID]struct{}
}

type flowKey struct {
	group GroupID
	src   NodeID
}

// NewSimulation creates an empty simulation.
func NewSimulation(cfg SimulationConfig) *Simulation {
	if cfg.Metric == 0 {
		cfg.Metric = SPP
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 512
	}
	if cfg.SendInterval == 0 {
		cfg.SendInterval = 50 * time.Millisecond
	}
	engine := sim.NewEngine(cfg.Seed)
	var fading propagation.Fading = propagation.Rayleigh{}
	if cfg.DisableFading {
		fading = propagation.NoFading{}
	}
	return &Simulation{
		engine:    engine,
		medium:    phy.NewMedium(engine, propagation.NewTwoRay(), fading, phy.DefaultParams()),
		collector: stats.NewCollector(),
		cfg:       cfg,
	}
}

// AddNode places a mesh router at (x, y) metres and returns its ID.
func (s *Simulation) AddNode(x, y float64) (NodeID, error) {
	id := NodeID(len(s.nodes))
	n, err := node.New(s.engine, s.medium, id, geom.Point{X: x, Y: y}, s.nodeConfig())
	if err != nil {
		return 0, err
	}
	s.nodes = append(s.nodes, n)
	return id, nil
}

func (s *Simulation) nodeConfig() node.Config {
	cfg := node.DefaultConfig(s.cfg.Metric)
	cfg.Protocol = s.cfg.Protocol
	cfg.DataPacketBytes = s.cfg.PayloadBytes
	cfg.Telemetry = s.telem
	return cfg
}

// protocolName returns the resolved protocol name for instrument prefixes.
func (s *Simulation) protocolName() string {
	if s.cfg.Protocol != "" {
		return s.cfg.Protocol
	}
	return multicast.Default
}

// EnableTelemetry attaches a cross-layer metrics registry to the
// simulation. Call it before adding nodes: each node wires its PHY, MAC,
// link-quality and routing instruments at creation, so nodes added earlier
// stay uninstrumented. Safe to call more than once.
func (s *Simulation) EnableTelemetry() {
	if s.telem != nil {
		return
	}
	s.telem = telemetry.NewRegistry()
	s.groups = make(map[GroupID]struct{})
	// Forwarder-set size (forwarding group / shared tree) across every
	// group with members or sources, evaluated lazily at snapshot time.
	s.telem.GaugeFunc(s.protocolName()+".fg_size", func() float64 {
		n := 0
		for _, nd := range s.nodes {
			for g := range s.groups {
				if nd.Router.IsForwarder(g) {
					n++
				}
			}
		}
		return float64(n)
	})
}

// Telemetry returns a snapshot of every registered instrument. ok is false
// when EnableTelemetry was never called.
func (s *Simulation) Telemetry() (snap TelemetrySnapshot, ok bool) {
	if s.telem == nil {
		return TelemetrySnapshot{}, false
	}
	return s.telem.Snapshot(), true
}

// AddRandomNodes places n nodes uniformly in a side × side square, redrawing
// until the 250 m disc graph is connected. It returns the IDs.
func (s *Simulation) AddRandomNodes(n int, side float64) ([]NodeID, error) {
	topo, err := topology.RandomConnected(s.engine.RNG().Split(), n, geom.Square(side), 250, 500)
	if err != nil {
		return nil, err
	}
	ids := make([]NodeID, 0, n)
	for _, p := range topo.Positions {
		id, err := s.AddNode(p.X, p.Y)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// NodeCount returns the number of placed nodes.
func (s *Simulation) NodeCount() int { return len(s.nodes) }

// Join subscribes a node to a multicast group as a receiver.
func (s *Simulation) Join(id NodeID, group GroupID) error {
	n, err := s.node(id)
	if err != nil {
		return err
	}
	n.Router.JoinGroup(group)
	if s.groups != nil {
		s.groups[group] = struct{}{}
	}
	r := n.Router
	r.SetOnDeliver(func(p *packet.Packet, _ packet.NodeID) {
		delay := s.engine.Now() - p.SentAt
		s.collector.RecordDelivered(r.ID(), p.Group, p.Src, p.PayloadBytes, delay)
		s.delays.Observe(delay)
	})
	// Subscribe this member to every known source of the group.
	for _, fk := range s.flowKeys {
		if fk.group == group {
			s.collector.Subscribe(id, group, fk.src)
		}
	}
	return nil
}

// AddSource attaches a CBR multicast flow from node id to group, starting at
// the given offset into the run. Declare sources before Run.
func (s *Simulation) AddSource(id NodeID, group GroupID, start time.Duration) error {
	n, err := s.node(id)
	if err != nil {
		return err
	}
	cbr := traffic.NewCBR(s.engine, n.Router, traffic.CBRConfig{
		Group:        group,
		PayloadBytes: s.cfg.PayloadBytes,
		Interval:     s.cfg.SendInterval,
		Jitter:       s.cfg.SendInterval / 10,
		Start:        start,
	})
	s.flows = append(s.flows, cbr)
	s.flowKeys = append(s.flowKeys, flowKey{group, id})
	if s.groups != nil {
		s.groups[group] = struct{}{}
	}
	// Existing members of the group subscribe to the new source.
	for _, m := range s.nodes {
		if m.Router.IsMember(group) && m.ID != id {
			s.collector.Subscribe(m.ID, group, id)
		}
	}
	return nil
}

func (s *Simulation) node(id NodeID) (*node.Node, error) {
	if int(id) >= len(s.nodes) {
		return nil, fmt.Errorf("meshcast: unknown node %v", id)
	}
	return s.nodes[int(id)], nil
}

// Run advances the simulation to the given absolute virtual time. It may be
// called repeatedly with increasing times.
func (s *Simulation) Run(until time.Duration) {
	if !s.started {
		s.started = true
		for _, n := range s.nodes {
			n.Start()
		}
		for _, f := range s.flows {
			f.Start()
		}
	}
	s.engine.Run(until)
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.engine.Now() }

// Summary returns aggregated delivery statistics for the run so far.
func (s *Simulation) Summary() Summary {
	s.syncSent()
	return s.collector.Summarize()
}

// PerMember returns each member's per-flow delivery ratio.
func (s *Simulation) PerMember() []MemberPDR {
	s.syncSent()
	return s.collector.PerMemberPDR()
}

// GroupSummary returns delivery statistics restricted to one group.
func (s *Simulation) GroupSummary(group GroupID) Summary {
	s.syncSent()
	return s.collector.GroupSummary(group)
}

func (s *Simulation) syncSent() {
	var probeBytes uint64
	for _, n := range s.nodes {
		probeBytes += n.Prober.Stats.BytesSent
	}
	s.collector.ProbeBytes = probeBytes
	for i, f := range s.flows {
		s.collector.SetSent(s.flowKeys[i].group, s.flowKeys[i].src, f.Sent)
	}
}

// DelayPercentiles summarizes the end-to-end delay distribution of every
// delivery so far.
func (s *Simulation) DelayPercentiles() Percentiles {
	return s.delays.Percentiles()
}

// IsForwarder reports whether a node currently relays data for a group
// (forwarding-group flag for ODMRP, on-tree flag for MCST).
func (s *Simulation) IsForwarder(id NodeID, group GroupID) bool {
	n, err := s.node(id)
	if err != nil {
		return false
	}
	return n.Router.IsForwarder(group)
}

// EdgeUse merges the per-node counters of data packets carried per directed
// link — the multicast tree, weighted by use.
func (s *Simulation) EdgeUse() map[Edge]uint64 {
	out := make(map[Edge]uint64)
	for _, n := range s.nodes {
		for e, c := range n.Router.EdgeUse() {
			out[e] += c
		}
	}
	return out
}

// OptimalSPP returns, for every node, the best achievable end-to-end
// delivery probability from source over the simulation's analytic link
// graph (closed-form Rayleigh reception probabilities, no interference) —
// the ceiling routing can reach per transmission chain. Compare against
// PerMember PDRs to grade routing efficiency.
func (s *Simulation) OptimalSPP(source NodeID) ([]float64, error) {
	if int(source) >= len(s.nodes) {
		return nil, fmt.Errorf("meshcast: unknown node %v", source)
	}
	positions := make([]geom.Point, len(s.nodes))
	for i, n := range s.nodes {
		positions[i] = n.Radio.Pos
	}
	g := analysis.FromPositions(positions, s.medium, s.cfg.PayloadBytes, 0.001)
	return analysis.OptimalSPP(g, int(source))
}

// TestbedConfig configures a run of the paper's 8-node testbed emulation.
type TestbedConfig = testbed.Config

// TestbedResult is the outcome of a testbed run.
type TestbedResult = testbed.Result

// TestbedLink describes one link of the testbed topology.
type TestbedLink = testbed.Link

// DefaultTestbedConfig mirrors the paper's §5 experiments (400 s runs).
func DefaultTestbedConfig(m Metric, seed uint64) TestbedConfig {
	return testbed.DefaultConfig(m, seed)
}

// RunTestbed executes the paper's testbed scenario: source 2 → members
// {3, 5} and source 4 → members {1, 7} over the Figure 4 topology with
// time-varying lossy links.
func RunTestbed(cfg TestbedConfig) (*TestbedResult, error) {
	return testbed.Run(cfg)
}

// TestbedLinks returns the Figure 4 topology with loss classifications.
func TestbedLinks() []TestbedLink {
	links := make([]TestbedLink, len(testbed.Links))
	copy(links, testbed.Links)
	return links
}

// TestbedHeavyEdges extracts the data-plane tree of a testbed run: directed
// edges carrying at least minShare of a source's packets (Figure 5).
func TestbedHeavyEdges(res *TestbedResult, minShare float64) []testbed.TreeEdge {
	return testbed.HeavyEdges(res, minShare)
}

// TestbedMap renders the paper's Figure 4 floor plan as an ASCII map of the
// given character width, with lossy links dashed.
func TestbedMap(width int) string {
	sc := testbed.PaperScenario()
	nodes := make([]viz.Node, 0, len(sc.Nodes))
	for _, id := range sc.Nodes {
		nodes = append(nodes, viz.Node{Label: id.String(), Pos: sc.Positions[id]})
	}
	edges := make([]viz.Edge, 0, len(sc.Links))
	for _, l := range sc.Links {
		style := viz.Solid
		if l.Class == testbed.Lossy {
			style = viz.Dashed
		}
		edges = append(edges, viz.Edge{From: l.A.String(), To: l.B.String(), Style: style})
	}
	return viz.Map(nodes, edges, width)
}

// TestbedTreeMap renders a testbed run's heavily used data edges over the
// Figure 4 floor plan (the paper's Figure 5), lossy edges dashed.
func TestbedTreeMap(res *TestbedResult, minShare float64, width int) string {
	sc := testbed.PaperScenario()
	nodes := make([]viz.Node, 0, len(sc.Nodes))
	for _, id := range sc.Nodes {
		nodes = append(nodes, viz.Node{Label: id.String(), Pos: sc.Positions[id]})
	}
	heavy := testbed.HeavyEdges(res, minShare)
	edges := make([]viz.Edge, 0, len(heavy))
	for _, e := range heavy {
		style := viz.Solid
		if e.Class == testbed.Lossy {
			style = viz.Dashed
		}
		edges = append(edges, viz.Edge{From: e.Edge.From.String(), To: e.Edge.To.String(), Style: style})
	}
	return viz.Map(nodes, edges, width)
}

// LiveTestbedResult summarizes a real-time testbed fleet run.
type LiveTestbedResult = emu.FleetResult

// RunLiveTestbed executes the paper's Figure 4 testbed as *live* ODMRP
// daemons exchanging real UDP datagrams over an in-process lossy ether, for
// the given wall-clock duration — the same protocol code as the simulator,
// driven by real sockets and real time (paper §5.2's architecture).
func RunLiveTestbed(m Metric, wallClock time.Duration, seed uint64) (LiveTestbedResult, error) {
	fleet, err := emu.NewFleet(emu.FleetConfig{
		Scenario: testbed.PaperScenario(),
		Metric:   m,
		Seed:     seed,
	})
	if err != nil {
		return LiveTestbedResult{}, err
	}
	defer fleet.Close()
	ctx, cancel := context.WithTimeout(context.Background(), wallClock)
	defer cancel()
	fleet.Run(ctx)
	return fleet.Result(), nil
}

// PaperScenario returns the paper's §4.1 simulation setup (50 nodes,
// 1000×1000 m, two groups) for direct use with RunPaperScenario; seed
// selects the random topology.
func PaperScenario(m Metric, seed uint64) (experiments.ScenarioConfig, error) {
	return experiments.DefaultScenario(m, seed)
}

// RunPaperScenario executes a paper-scale scenario configuration.
func RunPaperScenario(cfg experiments.ScenarioConfig) (*experiments.RunResult, error) {
	return experiments.RunScenario(cfg)
}

// GroupSpec declares one multicast group of a scenario configuration: its
// sources and receiver members, by node index.
type GroupSpec = experiments.GroupSpec

// RandomScenario returns a scenario over a connected random mesh: n nodes
// placed uniformly in a side × side metre square (250 m radio range,
// redrawn until connected), with the paper's traffic defaults (CBR 512 B @
// 20 pkt/s, Rayleigh fading, 100 s probe warmup, 400 s of traffic). Declare
// groups via cfg.Groups before running; the topology drawn for a seed does
// not depend on the group shape.
func RandomScenario(m Metric, seed uint64, n int, side float64) (experiments.ScenarioConfig, error) {
	topoRNG := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	topo, err := topology.RandomConnected(topoRNG, n, geom.Square(side), 250, 500)
	if err != nil {
		return experiments.ScenarioConfig{}, fmt.Errorf("random scenario: %w", err)
	}
	return experiments.ScenarioConfig{
		Seed:            seed,
		Metric:          m,
		Topology:        topo,
		Duration:        500 * time.Second,
		PayloadBytes:    512,
		SendInterval:    50 * time.Millisecond,
		ProbeRateFactor: 1,
		TrafficStart:    100 * time.Second,
	}, nil
}

// OptimalSPPCeiling computes, for every node of a scenario configuration,
// the best achievable end-to-end delivery probability from source on the
// scenario's analytic link graph (closed-form reception probabilities, no
// interference) — the ceiling routing can reach per transmission chain.
// Compare against a run's PerMember PDRs to grade routing efficiency.
func OptimalSPPCeiling(cfg experiments.ScenarioConfig, source NodeID) ([]float64, error) {
	if cfg.Topology == nil || int(source) >= len(cfg.Topology.Positions) {
		return nil, fmt.Errorf("meshcast: unknown node %v", source)
	}
	payload := cfg.PayloadBytes
	if payload == 0 {
		payload = 512
	}
	fading := cfg.Fading
	if fading == nil {
		fading = propagation.Rayleigh{}
	}
	engine := sim.NewEngine(cfg.Seed)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), fading, phy.DefaultParams())
	g := analysis.FromPositions(cfg.Topology.Positions, medium, payload, 0.001)
	return analysis.OptimalSPP(g, int(source))
}

// ScenarioJob is one labeled scenario run for RunScenarioBatch.
type ScenarioJob = experiments.ScenarioJob

// ScenarioResult is one batch job's outcome, in submission order: the
// job's label, its RunResult (or error), and whether it was served from
// the result cache.
type ScenarioResult = experiments.ScenarioResult

// BatchOptions configures batch execution: worker-pool size (0 =
// GOMAXPROCS), an optional content-addressed result cache directory, and an
// optional per-job progress callback.
type BatchOptions = experiments.BatchOptions

// BatchProgress is one progress notification from a running batch.
type BatchProgress = runner.Progress

// RunScenarioBatch executes a metric × seed matrix of scenario runs on a
// worker pool. Results return in submission order regardless of completion
// order, so any aggregation over them is deterministic; with
// BatchOptions.CacheDir set, repeated runs are served from the cache.
func RunScenarioBatch(jobs []ScenarioJob, opts BatchOptions) ([]ScenarioResult, error) {
	return experiments.RunScenarioBatch(jobs, opts)
}

// TestbedJob is one labeled testbed emulation for RunTestbedBatch.
type TestbedJob = experiments.TestbedJob

// TestbedBatchResult is one testbed batch job's outcome.
type TestbedBatchResult = experiments.TestbedResult

// RunTestbedBatch executes testbed runs on a worker pool with the same
// ordering and caching guarantees as RunScenarioBatch.
func RunTestbedBatch(jobs []TestbedJob, opts BatchOptions) ([]TestbedBatchResult, error) {
	return experiments.RunTestbedBatch(jobs, opts)
}

// FaultPlan describes fault injection for a scenario: MTBF/MTTR node churn,
// scripted node outages, link impairment episodes, and network partitions.
// Assign one to ScenarioConfig.Faults (see PaperScenario) to evaluate a
// metric's self-healing behavior. The schedule is drawn deterministically
// from the scenario seed, so every metric run on the same seed faces the
// same failures.
type FaultPlan = faults.Plan

// ChurnModel is the MTBF/MTTR crash-restart renewal process of a FaultPlan.
type ChurnModel = faults.ChurnModel

// NodeOutage is one scripted crash window of a FaultPlan.
type NodeOutage = faults.Outage

// LinkFault is one scripted link impairment episode of a FaultPlan.
type LinkFault = faults.LinkFault

// NetPartition is one scripted network partition of a FaultPlan.
type NetPartition = faults.Partition

// GroupHealth is a multicast group's self-healing summary: repair latency
// after faults, delivery ratio during outages vs steady state, and
// availability. Fault-injected runs report one per group in
// RunResult.Health.
type GroupHealth = stats.GroupHealth

// LoadFaultPlan reads a JSON fault script (the cmd/meshsim -fault-script
// format).
func LoadFaultPlan(path string) (FaultPlan, error) { return faults.LoadPlan(path) }
