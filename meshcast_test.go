package meshcast

import (
	"math"
	"testing"
	"time"
)

func TestPublicPathCostFigure1(t *testing.T) {
	// Figure 1 through the public API: SPP prefers A-C-D, METX prefers
	// A-B-D.
	acd := []LinkEstimate{{DeliveryProb: 1}, {DeliveryProb: 1.0 / 3.0}}
	abd := []LinkEstimate{{DeliveryProb: 0.25}, {DeliveryProb: 1}}

	sppACD, err := PathCost(SPP, acd)
	if err != nil {
		t.Fatal(err)
	}
	sppABD, _ := PathCost(SPP, abd)
	better, _ := BetterPath(SPP, sppACD, sppABD)
	if !better {
		t.Fatal("SPP should prefer A-C-D")
	}

	metxACD, _ := PathCost(METX, acd)
	metxABD, _ := PathCost(METX, abd)
	if math.Abs(metxACD-6) > 1e-9 || math.Abs(metxABD-5) > 1e-9 {
		t.Fatalf("METX = (%v, %v), want (6, 5)", metxACD, metxABD)
	}
	better, _ = BetterPath(METX, metxABD, metxACD)
	if !better {
		t.Fatal("METX should prefer A-B-D")
	}
}

func TestPublicPathCostUnknownMetric(t *testing.T) {
	if _, err := PathCost(Metric(99), nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BetterPath(Metric(99), 1, 2); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseMetricRoundTrip(t *testing.T) {
	for _, m := range Metrics() {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if len(LinkQualityMetrics()) != 5 {
		t.Fatal("expected 5 link-quality metrics")
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 42, Metric: SPP, DisableFading: true})
	// A 4-node chain, 200 m spacing.
	var ids []NodeID
	for i := 0; i < 4; i++ {
		id, err := s.AddNode(float64(i)*200, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if s.NodeCount() != 4 {
		t.Fatalf("NodeCount = %d", s.NodeCount())
	}
	if err := s.Join(ids[3], 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSource(ids[0], 1, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Run(60 * time.Second)
	sum := s.Summary()
	if sum.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
	if sum.PDR < 0.8 {
		t.Fatalf("PDR = %v on a clean chain", sum.PDR)
	}
	if got := s.PerMember(); len(got) != 1 || got[0].Member != ids[3] {
		t.Fatalf("PerMember = %v", got)
	}
	if !s.IsForwarder(ids[1], 1) || !s.IsForwarder(ids[2], 1) {
		t.Fatal("chain intermediates should be forwarders")
	}
	if len(s.EdgeUse()) == 0 {
		t.Fatal("no edge usage recorded")
	}
	if s.Now() != 60*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimulationJoinBeforeSourceStillSubscribed(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 1, DisableFading: true})
	a, _ := s.AddNode(0, 0)
	b, _ := s.AddNode(150, 0)
	if err := s.Join(b, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSource(a, 7, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	if got := s.PerMember(); len(got) != 1 {
		t.Fatalf("member joined before source was not subscribed: %v", got)
	}
}

func TestSimulationAddRandomNodes(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 3, DisableFading: true})
	ids, err := s.AddRandomNodes(15, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 15 || s.NodeCount() != 15 {
		t.Fatalf("ids = %d, count = %d", len(ids), s.NodeCount())
	}
}

func TestSimulationUnknownNode(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 1})
	if err := s.Join(99, 1); err == nil {
		t.Fatal("Join of unknown node should fail")
	}
	if err := s.AddSource(99, 1, 0); err == nil {
		t.Fatal("AddSource of unknown node should fail")
	}
	if s.IsForwarder(99, 1) {
		t.Fatal("unknown node is not a forwarder")
	}
}

func TestPublicTestbedRun(t *testing.T) {
	cfg := DefaultTestbedConfig(PP, 1)
	cfg.WarmupSeconds = 30
	cfg.TrafficSeconds = 60
	res, err := RunTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PDR <= 0 {
		t.Fatal("testbed delivered nothing")
	}
	if len(TestbedLinks()) == 0 {
		t.Fatal("no testbed links exposed")
	}
	if edges := TestbedHeavyEdges(res, 0.3); len(edges) == 0 {
		t.Fatal("no heavy edges")
	}
}

func TestPaperScenarioExposed(t *testing.T) {
	cfg, err := PaperScenario(SPP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.NodeCount() != 50 {
		t.Fatalf("paper scenario nodes = %d", cfg.Topology.NodeCount())
	}
	// Shrink for test runtime.
	cfg.TrafficStart = 5 * time.Second
	cfg.Duration = 20 * time.Second
	res, err := RunPaperScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestSimulationDelayPercentiles(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 4, DisableFading: true})
	a, _ := s.AddNode(0, 0)
	b, _ := s.AddNode(150, 0)
	if err := s.Join(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSource(a, 1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Run(20 * time.Second)
	p := s.DelayPercentiles()
	if p.Count == 0 {
		t.Fatal("no delays observed")
	}
	if p.P50 <= 0 || p.P50 > p.Max {
		t.Fatalf("percentiles = %+v", p)
	}
	// One hop at 2 Mbps: a 586-byte frame takes ~2.5 ms; the median delay
	// should be in the low milliseconds.
	if p.P50 > 20*time.Millisecond {
		t.Fatalf("1-hop median delay = %v, implausibly high", p.P50)
	}
}

func TestTestbedMapsRender(t *testing.T) {
	if out := TestbedMap(80); len(out) < 100 {
		t.Fatalf("TestbedMap too small: %q", out)
	}
	cfg := DefaultTestbedConfig(PP, 1)
	cfg.WarmupSeconds = 20
	cfg.TrafficSeconds = 30
	res, err := RunTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := TestbedTreeMap(res, 0.3, 80); len(out) < 100 {
		t.Fatalf("TestbedTreeMap too small: %q", out)
	}
}

func TestSimulationGroupSummary(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 9, DisableFading: true})
	a, _ := s.AddNode(0, 0)
	b, _ := s.AddNode(150, 0)
	if err := s.Join(b, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSource(a, 4, time.Second); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	g := s.GroupSummary(4)
	if g.PacketsSent == 0 || g.PDR < 0.9 {
		t.Fatalf("group summary = %+v", g)
	}
	if other := s.GroupSummary(5); other.PacketsSent != 0 {
		t.Fatalf("unknown group = %+v", other)
	}
}

func TestSimulationTelemetry(t *testing.T) {
	s := NewSimulation(SimulationConfig{Seed: 42, Metric: SPP, DisableFading: true})
	if _, ok := s.Telemetry(); ok {
		t.Fatal("Telemetry reported a snapshot before EnableTelemetry")
	}
	s.EnableTelemetry()
	s.EnableTelemetry() // idempotent
	var ids []NodeID
	for i := 0; i < 4; i++ {
		id, err := s.AddNode(float64(i)*200, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Join(ids[3], 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSource(ids[0], 1, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Run(60 * time.Second)

	snap, ok := s.Telemetry()
	if !ok {
		t.Fatal("Telemetry disabled after EnableTelemetry")
	}
	for _, name := range []string{
		"phy.frames_sent", "mac.enqueued", "odmrp.data_delivered",
		"linkquality.probes_sent",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0", name)
		}
	}
	// The fg_size gauge must agree with the public IsForwarder view.
	want := 0
	for _, id := range ids {
		if s.IsForwarder(id, 1) {
			want++
		}
	}
	if got := int(snap.Gauges["odmrp.fg_size"]); got != want || want == 0 {
		t.Fatalf("odmrp.fg_size = %d, want %d (nonzero)", got, want)
	}
}

func TestSimulationTelemetryDoesNotPerturb(t *testing.T) {
	runOnce := func(enable bool) Summary {
		s := NewSimulation(SimulationConfig{Seed: 7, Metric: ETX, DisableFading: true})
		if enable {
			s.EnableTelemetry()
		}
		for i := 0; i < 4; i++ {
			if _, err := s.AddNode(float64(i)*200, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Join(3, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.AddSource(0, 1, 20*time.Second); err != nil {
			t.Fatal(err)
		}
		s.Run(60 * time.Second)
		return s.Summary()
	}
	if bare, instrumented := runOnce(false), runOnce(true); bare != instrumented {
		t.Fatalf("telemetry perturbed the run:\nbare = %+v\ninst = %+v", bare, instrumented)
	}
}
