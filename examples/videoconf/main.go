// Videoconf models the paper's motivating workload (§1): collaborative
// applications — here, three simultaneous video conferences — multicast over
// a campus mesh network. It runs the same workload under the original ODMRP
// and under ODMRP_SPP and reports how much of each conference's traffic the
// participants actually receive.
//
// Run with:
//
//	go run ./examples/videoconf [-nodes 35] [-seconds 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"meshcast"
)

// conference describes one multicast session: a speaker and listeners.
type conference struct {
	name      string
	group     meshcast.GroupID
	speaker   int // node index
	listeners []int
}

func main() {
	nodes := flag.Int("nodes", 35, "mesh size")
	seconds := flag.Int("seconds", 120, "traffic seconds")
	flag.Parse()
	if err := run(*nodes, *seconds); err != nil {
		log.Fatal(err)
	}
}

func run(nodeCount, seconds int) error {
	conferences := []conference{
		{"standup", 1, 0, []int{5, 11, 17}},
		{"lecture", 2, 8, []int{3, 14, 20, 26, 30}},
		{"design-review", 3, 22, []int{2, 9, 28}},
	}

	fmt.Printf("campus mesh: %d nodes, 3 conferences, %d s of traffic\n\n", nodeCount, seconds)
	for _, m := range []meshcast.Metric{meshcast.MinHop, meshcast.SPP} {
		label := "original ODMRP"
		if m != meshcast.MinHop {
			label = "ODMRP_" + m.String()
		}
		summary, perGroup, perMember, err := runOnce(m, nodeCount, seconds, conferences)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  overall delivery %.1f%%, mean delay %.1f ms, fairness %.2f\n",
			100*summary.PDR, 1000*summary.MeanDelaySeconds, summary.Fairness)
		for i, c := range conferences {
			g := perGroup[i]
			fmt.Printf("  %-14s %.1f%% delivered to %d listeners\n", c.name+":", 100*g.PDR, len(c.listeners))
		}
		worst := meshcast.MemberPDR{PDR: 2}
		for _, pm := range perMember {
			if pm.PDR < worst.PDR {
				worst = pm
			}
		}
		fmt.Printf("  worst participant: node %v at %.1f%%\n\n", worst.Member, 100*worst.PDR)
	}
	fmt.Println("The link-quality metric lifts every conference's delivery by routing")
	fmt.Println("around fading-degraded long links, at the cost of extra hops.")
	return nil
}

func runOnce(m meshcast.Metric, nodeCount, seconds int, conferences []conference) (meshcast.Summary, []meshcast.Summary, []meshcast.MemberPDR, error) {
	s := meshcast.NewSimulation(meshcast.SimulationConfig{Seed: 7, Metric: m})
	ids, err := s.AddRandomNodes(nodeCount, 900)
	if err != nil {
		return meshcast.Summary{}, nil, nil, err
	}
	warmup := 60 * time.Second
	for _, c := range conferences {
		for _, l := range c.listeners {
			if err := s.Join(ids[l], c.group); err != nil {
				return meshcast.Summary{}, nil, nil, err
			}
		}
		if err := s.AddSource(ids[c.speaker], c.group, warmup); err != nil {
			return meshcast.Summary{}, nil, nil, err
		}
	}
	s.Run(warmup + time.Duration(seconds)*time.Second)
	perGroup := make([]meshcast.Summary, len(conferences))
	for i, c := range conferences {
		perGroup[i] = s.GroupSummary(c.group)
	}
	return s.Summary(), perGroup, s.PerMember(), nil
}
