// Soaksmoke is the CI gate for the soak stack: it brings up a supervised
// fleet of live daemons (internal/soak — the same runner `etherd -soak`
// uses), then mutates it mid-run exclusively through the ctlplane HTTP
// API the way an operator would: killing nodes, partitioning the medium,
// and injecting a fault script into the running fleet. It subscribes to
// the /stats/stream SSE feed the whole time (the same live stream
// `meshstat -watch` renders) and verifies the robustness contract:
//
//   - killed daemons come back on their own (the supervisor watchdog),
//   - delivery dips under the faults and resumes once they clear,
//   - the anomaly flight recorder dumps the black box around the faults,
//   - the run tears down without leaking goroutines.
//
// The harness exits nonzero when any criterion fails — CI runs it
// race-enabled and uploads the telemetry directory as an artifact:
//
//	go run -race ./examples/soaksmoke -nodes 25 -seconds 30 -telemetry SOAK -json SOAKSMOKE.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/soak"
)

func main() {
	nodes := flag.Int("nodes", 25, "daemon count (min 25 for the CI gate)")
	seconds := flag.Int("seconds", 30, "total wall-clock budget")
	seed := flag.Uint64("seed", 1, "floor / medium / protocol seed")
	telemetryDir := flag.String("telemetry", "", "record rolling telemetry under this directory")
	jsonOut := flag.String("json", "", "write the run summary as JSON here")
	flag.Parse()
	if err := run(*nodes, *seconds, *seed, *telemetryDir, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

// summary is the JSON artifact: what was mutated and what was observed.
type summary struct {
	Nodes        int     `json:"nodes"`
	Seed         uint64  `json:"seed"`
	Killed       []int   `json:"killed"`
	SteadyPDR    float64 `json:"steadyPdr"`
	DipPDR       float64 `json:"dipPdr"`
	RecoveredPDR float64 `json:"recoveredPdr"`
	MinAlive     int     `json:"minAlive"`
	FinalPDR     float64 `json:"finalPdr"`
	Samples      int     `json:"samples"`
	Anomalies    int     `json:"anomalies"`
	FlightDumps  int     `json:"flightDumps"`
	DurationS    float64 `json:"durationS"`
}

func run(nodes, seconds int, seed uint64, telemetryDir, jsonOut string) error {
	if nodes < 8 {
		return fmt.Errorf("-nodes must be at least 8 (the smoke partitions a quarter of them)")
	}
	if seconds < 15 {
		return fmt.Errorf("-seconds must be at least 15 (warmup + faults + recovery)")
	}
	baseline := runtime.NumGoroutine()
	start := time.Now()

	r, err := soak.New(soak.Config{
		Nodes:          nodes,
		Seed:           seed,
		SendInterval:   50 * time.Millisecond,
		StartStagger:   5 * time.Millisecond,
		Listen:         "127.0.0.1:0",
		TelemetryDir:   telemetryDir,
		SampleInterval: 500 * time.Millisecond,
		Label:          fmt.Sprintf("soaksmoke %d nodes", nodes),
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(seconds)*time.Second)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- r.Run(ctx) }()

	c := ctlplane.NewClient("http://" + r.Addr())
	fmt.Printf("soaksmoke: %d daemons, control plane on %s\n", nodes, c.Base)

	sum := summary{Nodes: nodes, Seed: seed, MinAlive: nodes}
	err = drive(ctx, c, nodes, &sum)

	cancel()
	if rerr := <-runDone; rerr != nil && err == nil {
		err = rerr
	}
	sum.DurationS = time.Since(start).Seconds()
	sum.FlightDumps = r.FlightDumps()
	// The faults must have tripped the anomaly flight recorder: the
	// watchdog restarts of the killed daemons guarantee at least one dump
	// whenever telemetry is on.
	if telemetryDir != "" && sum.FlightDumps == 0 && err == nil {
		err = fmt.Errorf("flight recorder never dumped despite kills and partition")
	}
	if err == nil {
		err = checkGoroutines(baseline)
	}

	if jsonOut != "" {
		data, jerr := json.MarshalIndent(sum, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if jerr != nil && err == nil {
			err = jerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("soaksmoke OK: steady PDR %.2f, dip %.2f, recovered %.2f, min alive %d/%d\n",
		sum.SteadyPDR, sum.DipPDR, sum.RecoveredPDR, sum.MinAlive, nodes)
	return nil
}

// watcher accumulates the live /stats/stream feed in the background — the
// same SSE stream meshstat -watch renders. The server paces the windows
// and computes the deltas; this side only aggregates.
type watcher struct {
	mu        sync.Mutex
	samples   []ctlplane.WatchSample
	minPDR    float64
	lastPDR   float64
	minAliv   int
	anomalies int
	hasPDR    bool
}

func (w *watcher) run(ctx context.Context, c *ctlplane.Client) {
	for s := range ctlplane.WatchStream(ctx, c) {
		if s.Err != nil {
			continue
		}
		w.mu.Lock()
		if s.Anomaly != "" {
			w.anomalies++
			w.mu.Unlock()
			continue
		}
		w.samples = append(w.samples, s)
		if s.Stats.NodesAlive < w.minAliv {
			w.minAliv = s.Stats.NodesAlive
		}
		if s.HasPDR {
			w.lastPDR = s.PDR
			if !w.hasPDR || s.PDR < w.minPDR {
				w.minPDR = s.PDR
			}
			w.hasPDR = true
		}
		w.mu.Unlock()
	}
}

func (w *watcher) snapshot() (minPDR, lastPDR float64, minAlive, n, anomalies int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.minPDR, w.lastPDR, w.minAliv, len(w.samples), w.anomalies
}

// drive executes the smoke's fault sequence over the HTTP API and applies
// the recovery criteria.
func drive(ctx context.Context, c *ctlplane.Client, nodes int, sum *summary) error {
	// Warm up: every daemon alive and traffic flowing.
	steady, err := waitSteady(ctx, c, nodes)
	if err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	sum.SteadyPDR = steady
	fmt.Printf("  steady: all %d alive, windowed PDR %.2f\n", nodes, steady)

	w := &watcher{minAliv: nodes}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	watchDone := make(chan struct{})
	go func() { defer close(watchDone); w.run(watchCtx, c) }()

	// Mutation 1: kill two daemons over the API. They are *unscheduled*
	// deaths, so recovery must come from the supervisor watchdog.
	roster, err := c.Nodes(ctx)
	if err != nil {
		return err
	}
	victims := []int{roster[len(roster)/3].ID, roster[2*len(roster)/3].ID}
	for _, id := range victims {
		if err := c.KillNode(ctx, id); err != nil {
			return fmt.Errorf("kill node %d: %w", id, err)
		}
	}
	sum.Killed = victims
	fmt.Printf("  killed nodes %v over the API\n", victims)

	// Mutation 2: partition a quarter of the fleet off the medium.
	sideA := make([]int, 0, len(roster)/4)
	for _, n := range roster[:len(roster)/4] {
		sideA = append(sideA, n.ID)
	}
	if _, err := c.Partition(ctx, ctlplane.PartitionRequest{SideA: sideA}); err != nil {
		return fmt.Errorf("partition: %w", err)
	}

	// Mutation 3: inject a fault script into the *running* fleet — a short
	// extra outage scheduled relative to now.
	script := []byte(`{"outages":[{"node":1,"start_s":0.5,"duration_s":1}]}`)
	res, err := c.InjectScript(ctx, ctlplane.ScriptRequest{Script: script})
	if err != nil {
		return fmt.Errorf("inject script: %w", err)
	}
	fmt.Printf("  partitioned %d nodes, injected script (%d events over %.1fs)\n",
		len(sideA), res.Events, res.SpanSeconds)

	// Let the faults bite, then heal the partition.
	if err := sleepCtx(ctx, 4*time.Second); err != nil {
		return err
	}
	if _, err := c.Partition(ctx, ctlplane.PartitionRequest{Clear: true}); err != nil {
		return fmt.Errorf("clear partition: %w", err)
	}
	fmt.Printf("  partition cleared, waiting for recovery\n")

	// Recovery: every daemon (including the killed ones) alive again and
	// delivery flowing in the post-fault windows.
	recovered, err := waitSteady(ctx, c, nodes)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	sum.RecoveredPDR = recovered

	stopWatch()
	<-watchDone
	minPDR, lastPDR, minAlive, n, anomalies := w.snapshot()
	sum.DipPDR = minPDR
	sum.FinalPDR = lastPDR
	sum.MinAlive = minAlive
	sum.Samples = n
	sum.Anomalies = anomalies

	// The live stream must have seen the dip and the recovery.
	if n < 3 {
		return fmt.Errorf("stats stream produced only %d samples", n)
	}
	if minAlive >= nodes {
		return fmt.Errorf("watch never observed a dead daemon (min alive %d of %d)", minAlive, nodes)
	}
	if minPDR >= recovered {
		return fmt.Errorf("watch never observed a delivery dip (min %.3f, recovered %.3f)", minPDR, recovered)
	}
	if recovered <= 0 {
		return fmt.Errorf("no post-fault delivery (windowed PDR %.3f)", recovered)
	}
	fmt.Printf("  recovered: all %d alive, windowed PDR %.2f (dip was %.2f)\n",
		nodes, recovered, minPDR)
	return nil
}

// waitSteady polls /stats and /nodes until every daemon is alive and the
// current window delivered traffic; it returns that window's PDR.
func waitSteady(ctx context.Context, c *ctlplane.Client, nodes int) (float64, error) {
	var prev ctlplane.Stats
	havePrev := false
	for {
		if err := sleepCtx(ctx, 500*time.Millisecond); err != nil {
			return 0, fmt.Errorf("fleet never reached steady state: %w", err)
		}
		s, err := c.Stats(ctx)
		if err != nil {
			continue
		}
		if havePrev && s.NodesAlive == nodes {
			de := s.Expected - prev.Expected
			dd := s.Delivered - prev.Delivered
			if de > 0 && dd > 0 {
				return float64(dd) / float64(de), nil
			}
		}
		prev, havePrev = s, true
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// checkGoroutines waits for the run's goroutines to drain after teardown.
func checkGoroutines(baseline int) error {
	deadline := time.Now().Add(3 * time.Second)
	for {
		// Slack of 4 covers runtime background goroutines that come and go.
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d before run, %d after teardown", baseline, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
