// Testbed reproduces the paper's 8-node indoor experiments (§5): it runs
// every ODMRP variant over the Figure 4 topology, prints throughput
// normalized against the original ODMRP (Figure 2, "Throughput-testbed"
// column), and dumps the multicast trees built by ODMRP and ODMRP_PP
// (Figure 5) to show PP routing around the lossy shortcuts.
//
// Run with:
//
//	go run ./examples/testbed [-seconds 120] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"meshcast"
)

func main() {
	seconds := flag.Int("seconds", 120, "traffic seconds per run")
	runs := flag.Int("runs", 3, "runs per metric (the paper uses 5)")
	flag.Parse()
	if err := run(*seconds, *runs); err != nil {
		log.Fatal(err)
	}
}

func run(seconds, runs int) error {
	fmt.Println("Topology (paper Figure 4; ~ marks lossy links):")
	fmt.Print(meshcast.TestbedMap(90))
	fmt.Println()

	mean := func(m meshcast.Metric) (float64, *meshcast.TestbedResult, error) {
		var sum float64
		var last *meshcast.TestbedResult
		for r := 0; r < runs; r++ {
			cfg := meshcast.DefaultTestbedConfig(m, uint64(r+1))
			cfg.TrafficSeconds = seconds
			res, err := meshcast.RunTestbed(cfg)
			if err != nil {
				return 0, nil, err
			}
			sum += res.Summary.PDR
			last = res
		}
		return sum / float64(runs), last, nil
	}

	basePDR, baseRes, err := mean(meshcast.MinHop)
	if err != nil {
		return err
	}
	fmt.Printf("original ODMRP: absolute delivery ratio %.1f%%\n\n", 100*basePDR)
	fmt.Println("Normalized throughput (Figure 2, Throughput-testbed column):")
	var ppRes *meshcast.TestbedResult
	for _, m := range meshcast.LinkQualityMetrics() {
		pdr, res, err := mean(m)
		if err != nil {
			return err
		}
		if m == meshcast.PP {
			ppRes = res
		}
		fmt.Printf("  ODMRP_%-5s %.3f\n", m, pdr/basePDR)
	}

	fmt.Println("\nHeavily used tree edges (Figure 5):")
	fmt.Println("  ODMRP (min hop):")
	printTree(baseRes)
	fmt.Println("  ODMRP_PP:")
	printTree(ppRes)

	fmt.Println("\nODMRP data plane (~ = traffic over a lossy link):")
	fmt.Print(meshcast.TestbedTreeMap(baseRes, 0.3, 90))
	fmt.Println("\nODMRP_PP data plane:")
	fmt.Print(meshcast.TestbedTreeMap(ppRes, 0.3, 90))
	fmt.Println("\nODMRP keeps using the lossy one-hop shortcuts (2->5, 4->7);")
	fmt.Println("ODMRP_PP detours through 10 and 9 over low-loss links.")
	return nil
}

func printTree(res *meshcast.TestbedResult) {
	for _, e := range meshcast.TestbedHeavyEdges(res, 0.3) {
		fmt.Printf("    %v -> %v  (%d packets, %v link)\n", e.Edge.From, e.Edge.To, e.Count, e.Class)
	}
}
