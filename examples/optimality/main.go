// Optimality grades the protocol against the analytic optimum: it runs
// ODMRP_SPP on random meshes, computes each receiver's best achievable
// end-to-end delivery probability (metric-optimal routing on the closed-form
// Rayleigh link graph, no interference), and reports how much of that
// ceiling the distributed protocol actually achieves.
//
// The per-seed runs execute concurrently on the job harness (-j workers,
// -cache-dir result reuse); the tables are assembled in submission order,
// so the output is identical for any worker count.
//
// Run with:
//
//	go run ./examples/optimality [-nodes 25] [-seconds 120] [-seeds 3] [-j 4] [-cache-dir .meshcache]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"meshcast"
)

func main() {
	nodes := flag.Int("nodes", 25, "mesh size")
	seconds := flag.Int("seconds", 120, "traffic seconds")
	seeds := flag.Int("seeds", 3, "independent topologies to grade")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
	cacheDir := flag.String("cache-dir", "", "cache completed runs here (reused across invocations)")
	flag.Parse()
	if err := run(*nodes, *seconds, *seeds, *workers, *cacheDir); err != nil {
		log.Fatal(err)
	}
}

func run(nodeCount, seconds, seedCount, workers int, cacheDir string) error {
	const group meshcast.GroupID = 1
	const source = 0
	members := []int{nodeCount / 3, nodeCount / 2, nodeCount - 1}
	warmup := 60 * time.Second

	// One job per seed: same group shape on independent random topologies.
	jobs := make([]meshcast.ScenarioJob, 0, seedCount)
	for s := 0; s < seedCount; s++ {
		seed := uint64(11 + s)
		cfg, err := meshcast.RandomScenario(meshcast.SPP, seed, nodeCount, 800)
		if err != nil {
			return err
		}
		cfg.Groups = []meshcast.GroupSpec{{Group: group, Sources: []int{source}, Members: members}}
		cfg.TrafficStart = warmup
		cfg.Duration = warmup + time.Duration(seconds)*time.Second
		jobs = append(jobs, meshcast.ScenarioJob{
			Label:  fmt.Sprintf("spp seed %d", seed),
			Config: cfg,
		})
	}

	results, err := meshcast.RunScenarioBatch(jobs, meshcast.BatchOptions{
		Workers:  workers,
		CacheDir: cacheDir,
	})
	if err != nil {
		return err
	}

	fmt.Printf("source %v -> %d members, ODMRP_SPP, %ds of traffic, %d topologies\n",
		meshcast.NodeID(source), len(members), seconds, seedCount)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Label, r.Err)
		}
		ceiling, err := meshcast.OptimalSPPCeiling(jobs[i].Config, source)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", r.Label)
		fmt.Printf("%-8s %-12s %-12s %s\n", "member", "achieved", "ceiling", "efficiency")
		for _, pm := range r.Value.PerMember {
			best := ceiling[int(pm.Member)]
			eff := 0.0
			if best > 0 {
				eff = pm.PDR / best
			}
			fmt.Printf("%-8v %8.1f%%    %8.1f%%    %5.1f%%\n", pm.Member, 100*pm.PDR, 100*best, 100*eff)
		}
	}
	fmt.Println("\nThe ceiling is the best single-path delivery probability with no")
	fmt.Println("interference; the protocol pays for collisions, control loss and")
	fmt.Println("forwarding-group churn, and occasionally beats single-path routing")
	fmt.Println("when the forwarding mesh delivers over multiple branches.")
	return nil
}
