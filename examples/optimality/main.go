// Optimality grades the protocol against the analytic optimum: it runs
// ODMRP_SPP on a random mesh, computes each receiver's best achievable
// end-to-end delivery probability (metric-optimal routing on the closed-form
// Rayleigh link graph, no interference), and reports how much of that
// ceiling the distributed protocol actually achieves.
//
// Run with:
//
//	go run ./examples/optimality [-nodes 25] [-seconds 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"meshcast"
)

func main() {
	nodes := flag.Int("nodes", 25, "mesh size")
	seconds := flag.Int("seconds", 120, "traffic seconds")
	flag.Parse()
	if err := run(*nodes, *seconds); err != nil {
		log.Fatal(err)
	}
}

func run(nodeCount, seconds int) error {
	s := meshcast.NewSimulation(meshcast.SimulationConfig{Seed: 11, Metric: meshcast.SPP})
	ids, err := s.AddRandomNodes(nodeCount, 800)
	if err != nil {
		return err
	}
	source := ids[0]
	members := []meshcast.NodeID{ids[nodeCount/3], ids[nodeCount/2], ids[nodeCount-1]}
	const group meshcast.GroupID = 1
	for _, m := range members {
		if err := s.Join(m, group); err != nil {
			return err
		}
	}
	warmup := 60 * time.Second
	if err := s.AddSource(source, group, warmup); err != nil {
		return err
	}
	s.Run(warmup + time.Duration(seconds)*time.Second)

	ceiling, err := s.OptimalSPP(source)
	if err != nil {
		return err
	}

	fmt.Printf("source %v -> %d members, ODMRP_SPP, %ds of traffic\n\n", source, len(members), seconds)
	fmt.Printf("%-8s %-12s %-12s %s\n", "member", "achieved", "ceiling", "efficiency")
	for _, pm := range s.PerMember() {
		best := ceiling[int(pm.Member)]
		eff := 0.0
		if best > 0 {
			eff = pm.PDR / best
		}
		fmt.Printf("%-8v %8.1f%%    %8.1f%%    %5.1f%%\n", pm.Member, 100*pm.PDR, 100*best, 100*eff)
	}
	fmt.Println("\nThe ceiling is the best single-path delivery probability with no")
	fmt.Println("interference; the protocol pays for collisions, control loss and")
	fmt.Println("forwarding-group churn, and occasionally beats single-path routing")
	fmt.Println("when the forwarding mesh delivers over multiple branches.")
	return nil
}
