// Metricmath reproduces the paper's two worked examples on static graphs:
//
//   - Figure 1: SPP chooses a higher-throughput path than METX by
//     minimizing the expected number of transmissions at the source.
//   - Figure 3: SPP chooses a longer but higher-throughput path than ETX by
//     avoiding a path containing even a single lossy link.
//
// Run with:
//
//	go run ./examples/metricmath
package main

import (
	"fmt"
	"log"

	"meshcast"
)

// path is a named sequence of per-link forward delivery probabilities.
type path struct {
	name  string
	links []float64
}

func estimates(dfs []float64) []meshcast.LinkEstimate {
	out := make([]meshcast.LinkEstimate, len(dfs))
	for i, df := range dfs {
		out[i] = meshcast.LinkEstimate{DeliveryProb: df}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Figure 1 - METX vs SPP on the 4-node example")
	fmt.Println("  links: A-C = 1.0, C-D = 1/3, A-B = 0.25, B-D = 1.0")
	fig1 := []path{
		{"A-C-D", []float64{1, 1.0 / 3.0}},
		{"A-B-D", []float64{0.25, 1}},
	}
	if err := compare(fig1, meshcast.METX, meshcast.SPP); err != nil {
		return err
	}
	fmt.Println("  METX minimizes total transmissions and picks A-B-D (cost 5 < 6);")
	fmt.Println("  SPP maximizes end-to-end success and picks A-C-D (1/3 > 1/4).")
	fmt.Println()

	fmt.Println("Figure 3 - ETX vs SPP on the 5-node example")
	fmt.Println("  links: A-B = B-C = C-D = 0.8; A-E = 0.9, E-D = 0.4")
	fig3 := []path{
		{"A-B-C-D", []float64{0.8, 0.8, 0.8}},
		{"A-E-D", []float64{0.9, 0.4}},
	}
	if err := compare(fig3, meshcast.ETX, meshcast.SPP); err != nil {
		return err
	}
	fmt.Println("  ETX sums per-link expected transmissions and narrowly prefers the")
	fmt.Println("  short path through the terrible 0.4 link (3.61 < 3.75); SPP's")
	fmt.Println("  product collapses on that link (0.36 < 0.512) and avoids it.")
	return nil
}

// compare prints both metrics' costs for each path and the winner per
// metric.
func compare(paths []path, metrics ...meshcast.Metric) error {
	for _, m := range metrics {
		var bestName string
		var bestCost float64
		for i, p := range paths {
			cost, err := meshcast.PathCost(m, estimates(p.links))
			if err != nil {
				return err
			}
			display := cost
			label := m.String()
			if m == meshcast.SPP {
				// The paper tabulates 1/SPP next to METX.
				fmt.Printf("    %-8s %-6s cost = %.3f (1/SPP = %.2f)\n", p.name, label, display, 1/cost)
			} else {
				fmt.Printf("    %-8s %-6s cost = %.3f\n", p.name, label, display)
			}
			if i == 0 {
				bestName, bestCost = p.name, cost
				continue
			}
			better, err := meshcast.BetterPath(m, cost, bestCost)
			if err != nil {
				return err
			}
			if better {
				bestName, bestCost = p.name, cost
			}
		}
		fmt.Printf("    -> %s picks %s\n", m, bestName)
	}
	return nil
}
