// Convergence visualizes the §5.3 dynamics the run-long averages hide: on
// the paper's testbed, how each metric's delivery ratio evolves over time
// as estimators warm up, lossy links excurse to temporarily good states,
// and short-window metrics (SPP/ETX) flap back onto them while PP's long
// EWMA memory keeps avoiding them.
//
// The three testbed runs execute concurrently on the job harness; results
// come back in submission order, so the output is identical for any -j.
//
// Run with:
//
//	go run ./examples/convergence [-seconds 300] [-j 3] [-cache-dir .meshcache]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"

	"meshcast"
)

func main() {
	seconds := flag.Int("seconds", 300, "traffic seconds")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel testbed workers")
	cacheDir := flag.String("cache-dir", "", "cache completed runs here (reused across invocations)")
	flag.Parse()
	if err := run(*seconds, *workers, *cacheDir); err != nil {
		log.Fatal(err)
	}
}

func run(seconds, workers int, cacheDir string) error {
	metrics := []meshcast.Metric{meshcast.MinHop, meshcast.SPP, meshcast.PP}

	jobs := make([]meshcast.TestbedJob, 0, len(metrics))
	for _, m := range metrics {
		cfg := meshcast.DefaultTestbedConfig(m, 3)
		cfg.TrafficSeconds = seconds
		jobs = append(jobs, meshcast.TestbedJob{Label: label(m), Config: cfg})
	}
	results, err := meshcast.RunTestbedBatch(jobs, meshcast.BatchOptions{
		Workers:  workers,
		CacheDir: cacheDir,
	})
	if err != nil {
		return err
	}

	series := make(map[meshcast.Metric][]float64)
	for i, m := range metrics {
		r := results[i]
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Label, r.Err)
		}
		res := r.Value
		var ratios []float64
		for _, p := range res.Series {
			if p.Sent == 0 {
				continue
			}
			// Two members per flow: normalize the raw delivered/sent ratio.
			ratios = append(ratios, p.Ratio/2)
		}
		series[m] = ratios
		fmt.Printf("%-10s delay p50=%6.1fms p99=%6.1fms  overall PDR %.1f%%\n",
			label(m), res.Delay.P50.Seconds()*1000, res.Delay.P99.Seconds()*1000, 100*res.Summary.PDR)
	}

	fmt.Printf("\ndelivery ratio per 20s bucket (one char per 2%%):\n")
	for _, m := range metrics {
		fmt.Printf("%-10s ", label(m))
		for _, r := range series[m] {
			fmt.Print(spark(r))
		}
		fmt.Println()
	}
	fmt.Println("\nbars: " + legend())
	fmt.Println("\nPP ramps slowly (pair probes every 10s feed a long EWMA) but holds a")
	fmt.Println("steady high plateau; SPP reacts faster but dips when a lossy link's")
	fmt.Println("temporarily good episode fools its short loss window; min-hop ODMRP")
	fmt.Println("stays pinned to the lossy shortcuts throughout.")
	return nil
}

func label(m meshcast.Metric) string {
	if m == meshcast.MinHop {
		return "ODMRP"
	}
	return "ODMRP_" + strings.ToUpper(m.String())
}

// spark maps a ratio to a coarse block character.
func spark(r float64) string {
	marks := []string{"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}
	idx := int(r * float64(len(marks)))
	if idx >= len(marks) {
		idx = len(marks) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return marks[idx]
}

func legend() string {
	return "▁ <12%  ▄ ~50%  █ >87% of packets delivered in the bucket"
}
