// Chaoslive is the live-testbed counterpart of examples/churn: it runs the
// paper's §4.1 scenario as a fleet of real UDP daemons (internal/emu) under
// a supervised chaos schedule — scripted daemon crashes, an ether restart,
// and link impairments — and verifies that the mesh self-heals: every
// killed daemon is restarted, delivery resumes, and availability stays
// above zero for all nodes. Wall-clock health is summarized the same way
// the simulator's churn experiments are (repair latency, outage-vs-steady
// PDR, availability), so the two layers can be compared directly.
//
// The fault schedule is derived from the seed alone (or from -script, the
// same JSON format the simulator consumes), so every metric faces exactly
// the same crashes at the same wall-clock times.
//
// The harness is self-verifying and exits nonzero when a run fails to
// recover — CI uses it as the live-chaos smoke test:
//
//	go run ./examples/chaoslive -seconds 20 -metrics spp,etx
//	go run ./examples/chaoslive -seconds 6 -metrics spp -json CHAOSLIVE.json
//	go run ./examples/chaoslive -script chaos.json -time-scale 0.1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/faults"
	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/telemetry"
	"meshcast/internal/testbed"
)

func main() {
	seconds := flag.Int("seconds", 20, "wall-clock traffic seconds per metric")
	seed := flag.Uint64("seed", 1, "seed for the fault schedule and medium loss draws")
	metricsFlag := flag.String("metrics", "spp", "comma-separated metrics to run (or 'all')")
	script := flag.String("script", "", "JSON fault script (internal/faults format; default: built-in relay-crash + ether-restart schedule)")
	timeScale := flag.Float64("time-scale", 1, "wall-clock seconds per script virtual second")
	jsonOut := flag.String("json", "", "write the run summary as JSON here")
	telemetryDir := flag.String("telemetry", "", "record per-metric telemetry series/manifests under this directory")
	flag.Parse()
	if err := run(*seconds, *seed, *metricsFlag, *script, *timeScale, *jsonOut, *telemetryDir); err != nil {
		log.Fatal(err)
	}
}

// nodeOutcome is one node's supervision summary in the JSON artifact.
type nodeOutcome struct {
	Node         packet.NodeID `json:"node"`
	Kills        int           `json:"kills"`
	Restarts     int           `json:"restarts"`
	DowntimeS    float64       `json:"downtimeS"`
	Availability float64       `json:"availability"`
}

// groupOutcome is one multicast group's wall-clock health summary.
type groupOutcome struct {
	Group       packet.GroupID `json:"group"`
	OutagePDR   float64        `json:"outagePdr"`
	SteadyPDR   float64        `json:"steadyPdr"`
	MeanRepairS float64        `json:"meanRepairS"`
	MaxRepairS  float64        `json:"maxRepairS"`
	Repairs     int            `json:"repairs"`
}

// metricOutcome is one metric's full chaos-run summary.
type metricOutcome struct {
	Metric        string         `json:"metric"`
	PDR           float64        `json:"pdr"`
	EtherRestarts int            `json:"etherRestarts"`
	Nodes         []nodeOutcome  `json:"nodes"`
	Groups        []groupOutcome `json:"groups"`
	FramesIn      uint64         `json:"framesIn"`
	FramesDropped uint64         `json:"framesDropped"`
	Events        int            `json:"events"`
}

type summary struct {
	Seed     uint64          `json:"seed"`
	Seconds  int             `json:"seconds"`
	Script   string          `json:"script,omitempty"`
	Outcomes []metricOutcome `json:"outcomes"`
}

func run(seconds int, seed uint64, metricsFlag, script string, timeScale float64, jsonOut, telemetryDir string) error {
	if seconds < 4 {
		return fmt.Errorf("-seconds must be at least 4 (the schedule needs room to crash and recover)")
	}
	metrics, err := parseMetrics(metricsFlag)
	if err != nil {
		return err
	}
	plan, planDesc, err := loadOrBuildPlan(script, seconds)
	if err != nil {
		return err
	}
	wall := time.Duration(seconds) * time.Second

	fmt.Printf("chaoslive: paper testbed, %ds wall per metric, seed %d, schedule: %s\n\n",
		seconds, seed, planDesc)

	sum := summary{Seed: seed, Seconds: seconds, Script: script}
	failed := false
	for _, m := range metrics {
		out, err := runMetric(m, plan, seed, timeScale, wall, telemetryDir)
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		sum.Outcomes = append(sum.Outcomes, *out)
		if verr := verify(out); verr != nil {
			failed = true
			fmt.Printf("  FAIL %v: %v\n", m, verr)
		}
		fmt.Println()
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("summary written to %s\n", jsonOut)
	}
	if failed {
		return fmt.Errorf("one or more metrics failed chaos verification")
	}
	fmt.Println("all metrics recovered from every scripted fault")
	return nil
}

// runMetric executes one supervised chaos run and checks for goroutine
// leaks after teardown.
func runMetric(m metric.Kind, plan faults.Plan, seed uint64, timeScale float64, wall time.Duration, telemetryDir string) (*metricOutcome, error) {
	baseline := runtime.NumGoroutine()

	fleet, err := emu.NewFleet(emu.FleetConfig{
		Scenario: testbed.PaperScenario(),
		Metric:   m,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	chaos, err := emu.NewChaos(emu.ChaosConfig{
		Plan:      plan,
		Seed:      seed,
		TimeScale: timeScale,
		Horizon:   time.Duration(float64(wall) / scaleOf(timeScale)),
	}, fleet.NodeIDs())
	if err != nil {
		fleet.Close()
		return nil, err
	}
	fleet.UseChaos(chaos)
	sup := emu.NewFleetSupervisor(fleet, chaos, emu.SupervisorConfig{})

	var rec *telemetry.Recorder
	if telemetryDir != "" {
		rec, err = telemetry.NewRecorder(filepath.Join(telemetryDir, m.String()), time.Second)
		if err != nil {
			fleet.Close()
			return nil, err
		}
		emu.InstrumentFleet(rec.Registry(), fleet, chaos, sup)
	}

	ctx, cancel := context.WithTimeout(context.Background(), wall)
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	var samplerDone chan struct{}
	if rec != nil {
		samplerDone = make(chan struct{})
		go func() {
			defer close(samplerDone)
			<-fleet.Started()
			telemetry.RunWall(ctx, rec.Sampler(), fleet.StartTime())
		}()
	}

	start := time.Now()
	fleet.Run(ctx)
	elapsed := time.Since(start)
	cancel()
	<-supDone
	if samplerDone != nil {
		<-samplerDone
	}

	res := fleet.Result()
	rep := sup.Report(elapsed)
	etherStats := fleet.EtherStats()
	fleet.Close()

	if rec != nil {
		snap := rec.Registry().Snapshot()
		err := rec.Finalize(telemetry.Manifest{
			Seed: seed, Label: fmt.Sprintf("chaoslive %v", m), Metric: m.String(),
			DurationSeconds: elapsed.Seconds(),
			IntervalSeconds: rec.Sampler().Interval().Seconds(),
			Samples:         rec.Sampler().Samples(),
			Counters:        snap.Counters, Gauges: snap.Gauges, Histograms: snap.Histograms,
			Derived: map[string]float64{"pdr": res.PDR},
		})
		if err != nil {
			return nil, err
		}
	}

	if err := checkGoroutines(baseline); err != nil {
		return nil, err
	}

	out := &metricOutcome{
		Metric:        m.String(),
		PDR:           res.PDR,
		EtherRestarts: rep.EtherRestarts,
		FramesIn:      etherStats.FramesIn,
		FramesDropped: etherStats.FramesDropped,
		Events:        len(rep.Events),
	}
	for _, n := range rep.Nodes {
		out.Nodes = append(out.Nodes, nodeOutcome{
			Node: n.ID, Kills: n.Kills, Restarts: n.Restarts,
			DowntimeS: n.Downtime.Seconds(), Availability: n.Availability,
		})
	}
	for _, g := range res.Health {
		out.Groups = append(out.Groups, groupOutcome{
			Group: g.Group, OutagePDR: g.OutagePDR, SteadyPDR: g.SteadyPDR,
			MeanRepairS: g.MeanRepair.Seconds(), MaxRepairS: g.MaxRepair.Seconds(),
			Repairs: len(g.RepairLatencies),
		})
	}
	printOutcome(out, rep)
	return out, nil
}

func printOutcome(out *metricOutcome, rep emu.SupervisorReport) {
	fmt.Printf("%-8s PDR %5.1f%%  ether restarts %d  supervisor events %d\n",
		out.Metric, 100*out.PDR, out.EtherRestarts, out.Events)
	for _, n := range out.Nodes {
		if n.Kills == 0 && n.Restarts == 0 {
			continue
		}
		fmt.Printf("  node %-3v kills %d  restarts %d  downtime %5.2fs  availability %5.1f%%\n",
			n.Node, n.Kills, n.Restarts, n.DowntimeS, 100*n.Availability)
	}
	for _, g := range out.Groups {
		fmt.Printf("  group %-3v steady PDR %5.1f%%  outage PDR %5.1f%%  repairs %d (mean %.2fs, max %.2fs)\n",
			g.Group, 100*g.SteadyPDR, 100*g.OutagePDR, g.Repairs, g.MeanRepairS, g.MaxRepairS)
	}
	for _, ev := range rep.Events {
		switch ev.Kind {
		case "ether-down", "ether-up":
			fmt.Printf("  [%6.2fs] %-16s\n", ev.At.Seconds(), ev.Kind)
		default:
			fmt.Printf("  [%6.2fs] %-16s node=%v\n", ev.At.Seconds(), ev.Kind, ev.Node)
		}
	}
}

// verify applies the harness's recovery criteria to one metric's outcome.
func verify(out *metricOutcome) error {
	if out.PDR <= 0 {
		return fmt.Errorf("no multicast delivery at all (PDR 0)")
	}
	kills := 0
	for _, n := range out.Nodes {
		kills += n.Kills
		if n.Kills > n.Restarts {
			return fmt.Errorf("node %v: %d kills but only %d restarts — daemon left dead", n.Node, n.Kills, n.Restarts)
		}
		if n.Availability <= 0 {
			return fmt.Errorf("node %v: availability %.3f", n.Node, n.Availability)
		}
	}
	if kills == 0 {
		return fmt.Errorf("schedule killed nothing — not a chaos run")
	}
	return nil
}

// checkGoroutines waits for the run's goroutines to drain after Close.
func checkGoroutines(baseline int) error {
	deadline := time.Now().Add(3 * time.Second)
	for {
		// Slack of 4 covers runtime background goroutines that come and go.
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d before run, %d after teardown", baseline, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// loadOrBuildPlan returns the fault plan to execute. Without -script it
// builds the default schedule, scaled to the run length: crash relay node
// 10 (index 7) in the first third, crash member node 3 (index 2) in the
// second, and bounce the ether at the two-thirds mark.
func loadOrBuildPlan(script string, seconds int) (faults.Plan, string, error) {
	if script != "" {
		plan, err := faults.LoadPlan(script)
		if err != nil {
			return faults.Plan{}, "", err
		}
		return plan, script, nil
	}
	third := time.Duration(seconds) * time.Second / 3
	plan := faults.Plan{
		Outages: []faults.Outage{
			{Node: 7, Start: third / 2, Duration: third / 2},       // node 10: relay for both groups
			{Node: 2, Start: third + third/2, Duration: third / 2}, // node 3: group 1 member
		},
		EtherRestarts: []faults.EtherRestart{
			{Start: 2 * third, Duration: third / 4},
		},
	}
	return plan, fmt.Sprintf("built-in (2 node crashes + 1 ether restart over %ds)", seconds), nil
}

func scaleOf(timeScale float64) float64 {
	if timeScale <= 0 {
		return 1
	}
	return timeScale
}

func parseMetrics(s string) ([]metric.Kind, error) {
	if s == "all" {
		return metric.All(), nil
	}
	var out []metric.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := metric.ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
