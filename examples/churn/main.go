// Churn evaluates mesh self-healing: it reruns the paper's §4.1 scenario
// for every metric while a fraction of the nodes crash and restart under an
// MTBF/MTTR renewal process, and tabulates how much delivery each metric
// loses — plus how quickly each group's delivery tree repairs itself after a
// failure (a Figure-3-style comparison under churn instead of clean
// conditions).
//
// The fault schedule is derived from the seed alone, so all metrics face
// exactly the same crashes.
//
// Run with:
//
//	go run ./examples/churn [-seconds 100] [-seed 1] [-mtbf 60s] [-mttr 15s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"meshcast"
)

func main() {
	seconds := flag.Int("seconds", 100, "traffic seconds per run")
	seed := flag.Uint64("seed", 1, "random seed (topology + faults)")
	mtbf := flag.Duration("mtbf", 60*time.Second, "mean time between failures per churned node")
	mttr := flag.Duration("mttr", 15*time.Second, "mean time to repair per churned node")
	flag.Parse()
	if err := run(*seconds, *seed, *mtbf, *mttr); err != nil {
		log.Fatal(err)
	}
}

func run(seconds int, seed uint64, mtbf, mttr time.Duration) error {
	churnLevels := []float64{0, 0.10, 0.25}

	fmt.Printf("PDR under churn (seed %d, %ds traffic, MTBF %v, MTTR %v)\n\n", seed, seconds, mtbf, mttr)
	fmt.Printf("%-8s", "metric")
	for _, c := range churnLevels {
		fmt.Printf("  %6.0f%%", 100*c)
	}
	fmt.Printf("   %s\n", "mean repair @25% churn")

	for _, m := range meshcast.Metrics() {
		fmt.Printf("%-8v", m)
		var lastHealth []meshcast.GroupHealth
		for _, churn := range churnLevels {
			cfg, err := meshcast.PaperScenario(m, seed)
			if err != nil {
				return err
			}
			cfg.Duration = cfg.TrafficStart + time.Duration(seconds)*time.Second
			if churn > 0 {
				cfg.Faults = &meshcast.FaultPlan{Churn: &meshcast.ChurnModel{
					Fraction: churn,
					MTBF:     mtbf,
					MTTR:     mttr,
					// Only churn the measurement window; the warmup exists
					// to give every metric converged estimates.
					Start: cfg.TrafficStart,
				}}
			}
			res, err := meshcast.RunPaperScenario(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %6.1f%%", 100*res.Summary.PDR)
			lastHealth = res.Health
		}
		fmt.Printf("   %s\n", repairSummary(lastHealth))
	}

	fmt.Println("\nColumns are the fraction of nodes under crash/restart churn.")
	fmt.Println("Repair latency is the mean time from a fault onset to the group's next delivery.")
	return nil
}

// repairSummary condenses the per-group health of the highest-churn run.
func repairSummary(health []meshcast.GroupHealth) string {
	if len(health) == 0 {
		return "-"
	}
	var sum time.Duration
	var n int
	for _, g := range health {
		if len(g.RepairLatencies) > 0 {
			sum += g.MeanRepair
			n++
		}
	}
	if n == 0 {
		return "no repairs needed"
	}
	return fmt.Sprintf("%.2fs", (sum / time.Duration(n)).Seconds())
}
