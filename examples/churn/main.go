// Churn evaluates mesh self-healing: it reruns the paper's §4.1 scenario
// for every metric while a fraction of the nodes crash and restart under an
// MTBF/MTTR renewal process, and tabulates how much delivery each metric
// loses — plus how quickly each group's delivery tree repairs itself after a
// failure (a Figure-3-style comparison under churn instead of clean
// conditions).
//
// The fault schedule is derived from the seed alone, so all metrics face
// exactly the same crashes. The full metric × churn-level matrix executes
// on the job harness: runs proceed in parallel (-j) and completed runs are
// reusable across invocations (-cache-dir), while the table is assembled in
// submission order and therefore identical for any worker count.
//
// Run with:
//
//	go run ./examples/churn [-seconds 100] [-seed 1] [-mtbf 60s] [-mttr 15s] [-j 4] [-cache-dir .meshcache]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"meshcast"
)

func main() {
	seconds := flag.Int("seconds", 100, "traffic seconds per run")
	seed := flag.Uint64("seed", 1, "random seed (topology + faults)")
	mtbf := flag.Duration("mtbf", 60*time.Second, "mean time between failures per churned node")
	mttr := flag.Duration("mttr", 15*time.Second, "mean time to repair per churned node")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
	cacheDir := flag.String("cache-dir", "", "cache completed runs here (reused across invocations)")
	flag.Parse()
	if err := run(*seconds, *seed, *mtbf, *mttr, *workers, *cacheDir); err != nil {
		log.Fatal(err)
	}
}

func run(seconds int, seed uint64, mtbf, mttr time.Duration, workers int, cacheDir string) error {
	churnLevels := []float64{0, 0.10, 0.25}
	metrics := meshcast.Metrics()

	// Build the metric × churn matrix as one job batch.
	var jobs []meshcast.ScenarioJob
	for _, m := range metrics {
		for _, churn := range churnLevels {
			cfg, err := meshcast.PaperScenario(m, seed)
			if err != nil {
				return err
			}
			cfg.Duration = cfg.TrafficStart + time.Duration(seconds)*time.Second
			if churn > 0 {
				cfg.Faults = &meshcast.FaultPlan{Churn: &meshcast.ChurnModel{
					Fraction: churn,
					MTBF:     mtbf,
					MTTR:     mttr,
					// Only churn the measurement window; the warmup exists
					// to give every metric converged estimates.
					Start: cfg.TrafficStart,
				}}
			}
			jobs = append(jobs, meshcast.ScenarioJob{
				Label:  fmt.Sprintf("%v churn %.0f%%", m, 100*churn),
				Config: cfg,
			})
		}
	}

	results, err := meshcast.RunScenarioBatch(jobs, meshcast.BatchOptions{
		Workers:  workers,
		CacheDir: cacheDir,
		Progress: func(p meshcast.BatchProgress) {
			suffix := ""
			if p.Cached {
				suffix = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s done%s\n", p.Done, p.Total, p.Label, suffix)
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("PDR under churn (seed %d, %ds traffic, MTBF %v, MTTR %v)\n\n", seed, seconds, mtbf, mttr)
	fmt.Printf("%-8s", "metric")
	for _, c := range churnLevels {
		fmt.Printf("  %6.0f%%", 100*c)
	}
	fmt.Printf("   %s\n", "mean repair @25% churn")

	for i, m := range metrics {
		fmt.Printf("%-8v", m)
		var lastHealth []meshcast.GroupHealth
		for j := range churnLevels {
			r := results[i*len(churnLevels)+j]
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.Label, r.Err)
			}
			fmt.Printf("  %6.1f%%", 100*r.Value.Summary.PDR)
			lastHealth = r.Value.Health
		}
		fmt.Printf("   %s\n", repairSummary(lastHealth))
	}

	fmt.Println("\nColumns are the fraction of nodes under crash/restart churn.")
	fmt.Println("Repair latency is the mean time from a fault onset to the group's next delivery.")
	return nil
}

// repairSummary condenses the per-group health of the highest-churn run.
func repairSummary(health []meshcast.GroupHealth) string {
	if len(health) == 0 {
		return "-"
	}
	var sum time.Duration
	var n int
	for _, g := range health {
		if len(g.RepairLatencies) > 0 {
			sum += g.MeanRepair
			n++
		}
	}
	if n == 0 {
		return "no repairs needed"
	}
	return fmt.Sprintf("%.2fs", (sum / time.Duration(n)).Seconds())
}
