// Quickstart: build a small random mesh, run ODMRP with the SPP metric, and
// print the delivery statistics plus a three-line telemetry summary.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"meshcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 20-node mesh in a 700x700 m field, Rayleigh fading, SPP metric.
	simulation := meshcast.NewSimulation(meshcast.SimulationConfig{
		Seed:   2026,
		Metric: meshcast.SPP,
	})
	// Instrument every layer before nodes are created; the counters cost a
	// few nanoseconds each and nothing when telemetry stays disabled.
	simulation.EnableTelemetry()
	ids, err := simulation.AddRandomNodes(20, 700)
	if err != nil {
		return err
	}

	// Node 0 multicasts to three receivers spread across the field.
	const group meshcast.GroupID = 1
	receivers := []meshcast.NodeID{ids[7], ids[13], ids[19]}
	for _, r := range receivers {
		if err := simulation.Join(r, group); err != nil {
			return err
		}
	}
	// Probes warm up for 60 s, then 120 s of CBR traffic (512 B, 20 pkt/s).
	if err := simulation.AddSource(ids[0], group, 60*time.Second); err != nil {
		return err
	}
	simulation.Run(180 * time.Second)

	summary := simulation.Summary()
	fmt.Printf("sent %d packets; mean delivery ratio %.1f%%, mean delay %.1f ms\n",
		summary.PacketsSent, 100*summary.PDR, 1000*summary.MeanDelaySeconds)
	for _, m := range simulation.PerMember() {
		fmt.Printf("  receiver %v: %.1f%% of source %v's packets\n", m.Member, 100*m.PDR, m.Source)
	}

	forwarders := 0
	for _, id := range ids {
		if simulation.IsForwarder(id, group) {
			forwarders++
		}
	}
	fmt.Printf("forwarding group size: %d of %d nodes\n", forwarders, simulation.NodeCount())

	// Three-line telemetry summary straight from the cross-layer registry.
	if snap, ok := simulation.Telemetry(); ok {
		probePct := 0.0
		if summary.DataBytesReceived > 0 {
			probePct = 100 * float64(snap.Counters["linkquality.probe_bytes_sent"]) /
				float64(summary.DataBytesReceived)
		}
		enqueued := snap.Counters["mac.enqueued"]
		drops := snap.Counters["mac.queue_drops"] + snap.Counters["mac.retry_drops"]
		dropPct := 0.0
		if enqueued > 0 {
			dropPct = 100 * float64(drops) / float64(enqueued)
		}
		fmt.Printf("telemetry: probe overhead %.2f%% of delivered data bytes\n", probePct)
		fmt.Printf("telemetry: forwarding group size %d\n", int(snap.Gauges["odmrp.fg_size"]))
		fmt.Printf("telemetry: MAC drop rate %.2f%% (%d of %d enqueued frames)\n",
			dropPct, drops, enqueued)
	}
	return nil
}
