package propagation

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"meshcast/internal/sim"
)

func TestTwoRayRangeIs250m(t *testing.T) {
	m := NewTwoRay()
	// At exactly 250 m the mean received power should sit at the receive
	// threshold — this is the calibration the default constants encode.
	p := m.ReceivedPower(DefaultTxPowerW, 250)
	if math.Abs(p-DefaultRxThresholdW)/DefaultRxThresholdW > 0.01 {
		t.Fatalf("power at 250m = %.3e, want ~%.3e", p, DefaultRxThresholdW)
	}
	if m.ReceivedPower(DefaultTxPowerW, 251) >= DefaultRxThresholdW {
		t.Fatal("power at 251m should be below the receive threshold")
	}
	if m.ReceivedPower(DefaultTxPowerW, 249) <= DefaultRxThresholdW {
		t.Fatal("power at 249m should be above the receive threshold")
	}
}

func TestTwoRayCarrierSenseRange(t *testing.T) {
	m := NewTwoRay()
	if m.ReceivedPower(DefaultTxPowerW, 540) < DefaultCSThresholdW {
		t.Fatal("power at 540m should be above the carrier-sense threshold")
	}
	if m.ReceivedPower(DefaultTxPowerW, 560) > DefaultCSThresholdW {
		t.Fatal("power at 560m should be below the carrier-sense threshold")
	}
}

func TestTwoRayContinuousAtCrossover(t *testing.T) {
	m := NewTwoRay()
	dc := m.CrossoverDistanceM()
	below := m.ReceivedPower(DefaultTxPowerW, dc*0.999)
	above := m.ReceivedPower(DefaultTxPowerW, dc*1.001)
	if math.Abs(below-above)/below > 0.02 {
		t.Fatalf("discontinuity at crossover: below=%.3e above=%.3e", below, above)
	}
}

func TestTwoRayFourthPowerDecay(t *testing.T) {
	m := NewTwoRay()
	p200 := m.ReceivedPower(DefaultTxPowerW, 200)
	p400 := m.ReceivedPower(DefaultTxPowerW, 400)
	ratio := p200 / p400
	if math.Abs(ratio-16) > 0.01 {
		t.Fatalf("doubling distance changed power by %vx, want 16x (d^-4)", ratio)
	}
}

func TestFriisSquareDecay(t *testing.T) {
	f := NewFriis(DefaultFrequencyHz)
	p10 := f.ReceivedPower(DefaultTxPowerW, 10)
	p20 := f.ReceivedPower(DefaultTxPowerW, 20)
	ratio := p10 / p20
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("doubling distance changed power by %vx, want 4x (d^-2)", ratio)
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := NewTwoRay()
	if err := quick.Check(func(a, b uint16) bool {
		d1 := 1 + float64(a%2000)
		d2 := d1 + 1 + float64(b%500)
		return m.ReceivedPower(DefaultTxPowerW, d1) >= m.ReceivedPower(DefaultTxPowerW, d2)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoFadingIdentity(t *testing.T) {
	rng := sim.NewRNG(1)
	if got := (NoFading{}).Apply(42, rng); got != 42 {
		t.Fatalf("NoFading.Apply = %v, want 42", got)
	}
}

func TestRayleighMeanPreserved(t *testing.T) {
	rng := sim.NewRNG(1)
	var f Rayleigh
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := f.Apply(2.0, rng)
		if v < 0 {
			t.Fatalf("faded power %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("Rayleigh mean power = %v, want ~2.0", mean)
	}
}

func TestRayleighReceptionProbabilityMatchesEmpirical(t *testing.T) {
	m := NewTwoRay()
	rng := sim.NewRNG(7)
	var f Rayleigh
	for _, d := range []float64{100, 150, 200, 250} {
		mean := m.ReceivedPower(DefaultTxPowerW, d)
		want := ReceptionProbability(mean, DefaultRxThresholdW)
		received := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if f.Apply(mean, rng) >= DefaultRxThresholdW {
				received++
			}
		}
		got := float64(received) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("d=%vm: empirical reception %v, analytical %v", d, got, want)
		}
	}
}

func TestReceptionProbabilityDecreasesWithDistance(t *testing.T) {
	// The core mechanism behind the paper's result: under Rayleigh fading
	// longer links are lossier. 125 m links should be near-perfect, 250 m
	// links should lose well over half their packets... actually exp(-1)≈0.37
	// delivery at exactly nominal range.
	m := NewTwoRay()
	prev := 1.1
	for _, d := range []float64{50, 100, 150, 200, 250, 300} {
		p := ReceptionProbability(m.ReceivedPower(DefaultTxPowerW, d), DefaultRxThresholdW)
		if p >= prev {
			t.Fatalf("reception probability not decreasing at d=%v: %v >= %v", d, p, prev)
		}
		prev = p
	}
	short := ReceptionProbability(m.ReceivedPower(DefaultTxPowerW, 125), DefaultRxThresholdW)
	long := ReceptionProbability(m.ReceivedPower(DefaultTxPowerW, 245), DefaultRxThresholdW)
	if short < 0.9 {
		t.Fatalf("125m link delivery = %v, want > 0.9", short)
	}
	if long > 0.5 {
		t.Fatalf("245m link delivery = %v, want < 0.5", long)
	}
}

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		watts float64
		dbm   float64
	}{
		{1, 30},
		{0.001, 0},
		{0.2818, 24.5},
	}
	for _, tt := range tests {
		if got := WattsToDBm(tt.watts); math.Abs(got-tt.dbm) > 0.05 {
			t.Fatalf("WattsToDBm(%v) = %v, want %v", tt.watts, got, tt.dbm)
		}
		if got := DBmToWatts(tt.dbm); math.Abs(got-tt.watts)/tt.watts > 0.02 {
			t.Fatalf("DBmToWatts(%v) = %v, want %v", tt.dbm, got, tt.watts)
		}
	}
}

func TestDBmRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw uint16) bool {
		w := 1e-12 + float64(raw)/100
		back := DBmToWatts(WattsToDBm(w))
		return math.Abs(back-w)/w < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReceptionProbabilityEdgeCases(t *testing.T) {
	if p := ReceptionProbability(0, 1e-10); p != 0 {
		t.Fatalf("zero mean power should give 0 probability, got %v", p)
	}
	if p := ReceptionProbability(-1, 1e-10); p != 0 {
		t.Fatalf("negative mean power should give 0 probability, got %v", p)
	}
	if p := ReceptionProbability(1, 1e-10); p < 0.999 {
		t.Fatalf("overwhelming power should give ~1 probability, got %v", p)
	}
}

func TestLogNormalMedianIsMean(t *testing.T) {
	rng := sim.NewRNG(9)
	f := LogNormal{SigmaDB: 8}
	const n = 100001
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		samples = append(samples, f.Apply(2.0, rng))
	}
	sort.Float64s(samples)
	median := samples[n/2]
	if math.Abs(median-2.0)/2.0 > 0.05 {
		t.Fatalf("log-normal median = %v, want ~2.0", median)
	}
	// Spread check: the 90th percentile should sit roughly sigma*1.28 dB up.
	p90 := samples[n*9/10]
	wantP90 := 2.0 * math.Pow(10, 8*1.2816/10)
	if math.Abs(p90-wantP90)/wantP90 > 0.1 {
		t.Fatalf("p90 = %v, want ~%v", p90, wantP90)
	}
}

func TestCompositeAppliesAll(t *testing.T) {
	rng := sim.NewRNG(3)
	c := Composite{NoFading{}, Rayleigh{}}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += c.Apply(3.0, rng)
	}
	if mean := sum / n; math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("composite mean = %v, want ~3.0 (Rayleigh preserves the mean)", mean)
	}
	if got := (Composite{}).Apply(7, rng); got != 7 {
		t.Fatalf("empty composite = %v", got)
	}
}

func TestDelay(t *testing.T) {
	if got := Delay(SpeedOfLight); got != time.Second {
		t.Fatalf("Delay(c) = %v, want 1s", got)
	}
	// The PHY schedules arrivals with this helper; it must match the
	// direct expression bit-for-bit (the link cache's determinism contract
	// includes event timestamps).
	for _, d := range []float64{0, 1, 37.5, 250, 550, 1414.21} {
		want := time.Duration(d / SpeedOfLight * float64(time.Second))
		if got := Delay(d); got != want {
			t.Fatalf("Delay(%v) = %v, want %v", d, got, want)
		}
	}
}
