// Package propagation implements the radio propagation models used by the
// simulator: free-space (Friis) and two-ray ground reflection path loss, and
// Rayleigh small-scale fading.
//
// The paper's simulations (§4.1) use the TwoRay propagation model with
// Rayleigh fading, a 250 m nominal radio range and a 2 Mbps channel. The
// default radio constants below are the classic GloMoSim/ns-2 914 MHz WaveLAN
// parameters, which yield exactly that 250 m range at the receive threshold.
package propagation

import (
	"math"
	"time"

	"meshcast/internal/sim"
)

// Speed of light in m/s, used for the Friis crossover distance and
// propagation delay.
const SpeedOfLight = 299792458.0

// Delay returns the free-space propagation delay across distanceM metres.
func Delay(distanceM float64) time.Duration {
	return time.Duration(distanceM / SpeedOfLight * float64(time.Second))
}

// Default radio constants (GloMoSim / ns-2 WaveLAN at 914 MHz). With the
// two-ray model these give a 250 m receive range and a 550 m carrier-sense
// range, the geometry the paper assumes.
const (
	// DefaultTxPowerW is the transmit power (281.8 mW ≈ 24.5 dBm).
	DefaultTxPowerW = 0.2818
	// DefaultFrequencyHz is the carrier frequency (914 MHz).
	DefaultFrequencyHz = 914e6
	// DefaultAntennaHeightM is the antenna height above ground for both
	// transmitter and receiver.
	DefaultAntennaHeightM = 1.5
	// DefaultAntennaGain is the (linear) antenna gain at both ends.
	DefaultAntennaGain = 1.0
	// DefaultSystemLoss is the (linear) system loss factor L >= 1.
	DefaultSystemLoss = 1.0
	// DefaultRxThresholdW is the receive threshold: mean received power at
	// 250 m under the two-ray model.
	DefaultRxThresholdW = 3.652e-10
	// DefaultCSThresholdW is the carrier-sense threshold: mean received
	// power at roughly 550 m under the two-ray model.
	DefaultCSThresholdW = 1.559e-11
)

// PathLoss computes mean received power for a transmit power and distance.
type PathLoss interface {
	// ReceivedPower returns the mean received power in watts at distance d
	// metres when transmitting with txPower watts.
	ReceivedPower(txPower, d float64) float64
}

// Friis is the free-space path-loss model:
//
//	Pr = Pt·Gt·Gr·λ² / ((4π·d)²·L)
type Friis struct {
	// WavelengthM is the carrier wavelength λ in metres.
	WavelengthM float64
	// GainTx and GainRx are linear antenna gains.
	GainTx, GainRx float64
	// SystemLoss is the linear loss factor L (>= 1).
	SystemLoss float64
}

var _ PathLoss = Friis{}

// NewFriis returns a Friis model at the given carrier frequency with default
// gains and losses.
func NewFriis(frequencyHz float64) Friis {
	return Friis{
		WavelengthM: SpeedOfLight / frequencyHz,
		GainTx:      DefaultAntennaGain,
		GainRx:      DefaultAntennaGain,
		SystemLoss:  DefaultSystemLoss,
	}
}

// ReceivedPower implements PathLoss. At d == 0 it returns the transmit power
// (the model is not meaningful below one wavelength anyway).
func (f Friis) ReceivedPower(txPower, d float64) float64 {
	if d <= 0 {
		return txPower
	}
	den := (4 * math.Pi * d / f.WavelengthM)
	return txPower * f.GainTx * f.GainRx / (den * den * f.SystemLoss)
}

// TwoRay is the two-ray ground reflection model. Below the crossover
// distance dc = 4π·ht·hr/λ it falls back to Friis (the two-ray approximation
// is invalid there); beyond it:
//
//	Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L)
type TwoRay struct {
	// HeightTxM and HeightRxM are antenna heights in metres.
	HeightTxM, HeightRxM float64
	// Friis handles short distances and supplies gains/losses.
	Friis Friis
	// crossover is computed once at construction.
	crossover float64
}

var _ PathLoss = TwoRay{}

// NewTwoRay returns a two-ray model with the default WaveLAN constants.
func NewTwoRay() TwoRay {
	return NewTwoRayAt(DefaultFrequencyHz, DefaultAntennaHeightM, DefaultAntennaHeightM)
}

// NewTwoRayAt returns a two-ray model at the given frequency and antenna
// heights.
func NewTwoRayAt(frequencyHz, heightTxM, heightRxM float64) TwoRay {
	f := NewFriis(frequencyHz)
	return TwoRay{
		HeightTxM: heightTxM,
		HeightRxM: heightRxM,
		Friis:     f,
		crossover: 4 * math.Pi * heightTxM * heightRxM / f.WavelengthM,
	}
}

// CrossoverDistanceM returns the Friis/two-ray crossover distance in metres.
func (t TwoRay) CrossoverDistanceM() float64 { return t.crossover }

// ReceivedPower implements PathLoss.
func (t TwoRay) ReceivedPower(txPower, d float64) float64 {
	if d < t.crossover {
		return t.Friis.ReceivedPower(txPower, d)
	}
	h := t.HeightTxM * t.HeightRxM
	return txPower * t.Friis.GainTx * t.Friis.GainRx * h * h / (d * d * d * d * t.Friis.SystemLoss)
}

// Fading perturbs a mean received power into a per-packet instantaneous
// power.
type Fading interface {
	// Apply returns the instantaneous received power for a packet whose
	// mean received power is meanPower, drawing randomness from rng.
	Apply(meanPower float64, rng *sim.RNG) float64
}

// NoFading passes the mean power through unchanged. Used by the fading
// ablation experiment.
type NoFading struct{}

var _ Fading = NoFading{}

// Apply implements Fading.
func (NoFading) Apply(meanPower float64, _ *sim.RNG) float64 { return meanPower }

// Rayleigh models small-scale Rayleigh fading: with a Rayleigh-distributed
// envelope, instantaneous received *power* is exponentially distributed with
// the path-loss value as its mean. This is the standard model for rich
// multipath without line of sight — the environment the paper argues is
// typical for mesh deployments (§4.1).
type Rayleigh struct{}

var _ Fading = Rayleigh{}

// Apply implements Fading.
func (Rayleigh) Apply(meanPower float64, rng *sim.RNG) float64 {
	return meanPower * rng.ExpFloat64()
}

// ReceptionProbability returns the closed-form probability that a packet is
// received above threshold under Rayleigh fading given its mean received
// power: P(power > threshold) = exp(-threshold/mean). Exposed for tests and
// for analytical link-quality tables.
func ReceptionProbability(meanPower, threshold float64) float64 {
	if meanPower <= 0 {
		return 0
	}
	return math.Exp(-threshold / meanPower)
}

// WattsToDBm converts a power in watts to dBm.
func WattsToDBm(w float64) float64 {
	return 10 * math.Log10(w*1000)
}

// DBmToWatts converts a power in dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, dbm/10) / 1000
}

// LogNormal models shadow fading: the received power is scaled by a
// log-normally distributed factor with the given standard deviation in dB
// (typical indoor/outdoor values are 4-10 dB). The factor's *median* is 1,
// matching how shadowing is usually composed with a distance-based mean.
type LogNormal struct {
	// SigmaDB is the shadowing standard deviation in dB.
	SigmaDB float64
}

var _ Fading = LogNormal{}

// Apply implements Fading.
func (l LogNormal) Apply(meanPower float64, rng *sim.RNG) float64 {
	db := rng.NormFloat64() * l.SigmaDB
	return meanPower * math.Pow(10, db/10)
}

// Composite applies several fading processes in sequence — e.g. log-normal
// shadowing on top of Rayleigh multipath, the standard composite channel
// model for non-line-of-sight links.
type Composite []Fading

var _ Fading = Composite{}

// Apply implements Fading.
func (c Composite) Apply(meanPower float64, rng *sim.RNG) float64 {
	p := meanPower
	for _, f := range c {
		p = f.Apply(p, rng)
	}
	return p
}
