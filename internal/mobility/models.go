package mobility

import (
	"math"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/sim"
)

// model computes node i's position at virtual time now. Implementations may
// lazily draw trajectory legs from per-node RNG sub-streams at query time;
// queries are monotone in now per node (the mover samples on a ticker), and
// the position between samples is defined by interpolation, so the sampled
// trajectory is independent of the tick rate.
type model interface {
	position(i int, now time.Duration) geom.Point
}

// —— Random waypoint ————————————————————————————————————————————————————————
//
// Each node repeats: draw a target uniform in the area and a speed uniform
// in [MinSpeed, MaxSpeed], travel there in a straight line, pause, repeat.
// The first leg begins at the motion-window start. Targets are drawn inside
// the area, so waypoint nodes never leave it.

type waypointModel struct {
	area  geom.Rect
	min   float64
	max   float64
	pause time.Duration
	nodes []wpNode
}

type wpNode struct {
	rng       *sim.RNG
	pos       geom.Point // endpoint of the last completed leg
	target    geom.Point
	legStart  time.Duration
	legEnd    time.Duration
	moving    bool
	idleUntil time.Duration
}

func newWaypoint(area geom.Rect, cfg Config, initial []geom.Point, rng *sim.RNG) *waypointModel {
	m := &waypointModel{area: area, min: cfg.MinSpeedMps, max: cfg.MaxSpeedMps, pause: cfg.Pause,
		nodes: make([]wpNode, len(initial))}
	for i, p := range initial {
		m.nodes[i] = wpNode{rng: rng.Split(), pos: p, idleUntil: cfg.Start}
	}
	return m
}

func (m *waypointModel) position(i int, now time.Duration) geom.Point {
	n := &m.nodes[i]
	for {
		if n.moving {
			if now < n.legEnd {
				f := float64(now-n.legStart) / float64(n.legEnd-n.legStart)
				return geom.Point{
					X: n.pos.X + (n.target.X-n.pos.X)*f,
					Y: n.pos.Y + (n.target.Y-n.pos.Y)*f,
				}
			}
			n.pos, n.moving = n.target, false
			n.idleUntil = n.legEnd + m.pause
			continue
		}
		if now < n.idleUntil {
			return n.pos
		}
		n.target = geom.Point{
			X: m.area.Min.X + n.rng.Float64()*m.area.Width(),
			Y: m.area.Min.Y + n.rng.Float64()*m.area.Height(),
		}
		speed := m.min + n.rng.Float64()*(m.max-m.min)
		travel := time.Duration(n.pos.Distance(n.target) / speed * float64(time.Second))
		if travel < time.Millisecond {
			travel = time.Millisecond // degenerate target draw; keep time advancing
		}
		n.legStart, n.legEnd, n.moving = n.idleUntil, n.idleUntil+travel, true
	}
}

// —— Reference-point group mobility ————————————————————————————————————————
//
// Groups move coherently: each group's reference point does a random
// waypoint walk over the whole area, and each member does its own slow
// waypoint walk *relative* to the reference point, confined to a
// GroupRadius box. The member position is reference + offset, clamped to
// the area (a reference near the boundary would otherwise push members
// outside the deployment contract). Node i belongs to group i mod Groups.

type rpgmModel struct {
	area    geom.Rect
	refs    *waypointModel
	rel     *waypointModel
	groupOf []int
}

func newRPGM(area geom.Rect, cfg Config, initial []geom.Point, rng *sim.RNG) *rpgmModel {
	groups := cfg.Groups
	if groups > len(initial) {
		groups = len(initial)
	}
	groupOf := make([]int, len(initial))
	refInit := make([]geom.Point, groups)
	counts := make([]int, groups)
	// Reference points start at the centroid of their members' initial
	// positions, so motion begins from the generator's placement rather
	// than teleporting groups together.
	for i := range initial {
		g := i % groups
		groupOf[i] = g
		refInit[g] = refInit[g].Add(initial[i].X, initial[i].Y)
		counts[g]++
	}
	for g := range refInit {
		refInit[g] = geom.Point{X: refInit[g].X / float64(counts[g]), Y: refInit[g].Y / float64(counts[g])}
	}
	refCfg := cfg
	refs := newWaypoint(area, refCfg, refInit, rng)
	// Members wander the relative box at a quarter of the group speed: the
	// group carries them; the relative walk only loosens the formation.
	r := cfg.GroupRadiusM
	relCfg := cfg
	relCfg.MinSpeedMps, relCfg.MaxSpeedMps = cfg.MinSpeedMps/4, cfg.MaxSpeedMps/4
	relInit := make([]geom.Point, len(initial))
	for i := range relInit {
		g := groupOf[i]
		relInit[i] = geom.Point{X: initial[i].X - refInit[g].X, Y: initial[i].Y - refInit[g].Y}
	}
	relBox := geom.Rect{Min: geom.Point{X: -r, Y: -r}, Max: geom.Point{X: r, Y: r}}
	for i := range relInit {
		relInit[i] = relBox.Clamp(relInit[i]) // stragglers join the formation
	}
	rel := newWaypoint(relBox, relCfg, relInit, rng)
	return &rpgmModel{area: area, refs: refs, rel: rel, groupOf: groupOf}
}

func (m *rpgmModel) position(i int, now time.Duration) geom.Point {
	ref := m.refs.position(m.groupOf[i], now)
	rel := m.rel.position(i, now)
	return m.area.Clamp(geom.Point{X: ref.X + rel.X, Y: ref.Y + rel.Y})
}

// —— Corridor sweeps ———————————————————————————————————————————————————————
//
// Vehicle-like motion: the area is divided into Corridors horizontal lanes;
// each node keeps its initial y, sweeps along x at a per-node constant speed
// in the direction fixed by its lane's parity (adjacent lanes flow opposite
// ways), and wraps around the area's x extent deterministically — a ring
// road. Speeds are drawn once at construction, in node order.

type corridorModel struct {
	area  geom.Rect
	start time.Duration
	nodes []corridorNode
}

type corridorNode struct {
	x0, y    float64
	velocity float64 // signed m/s along x
}

func newCorridor(area geom.Rect, cfg Config, initial []geom.Point, rng *sim.RNG) *corridorModel {
	m := &corridorModel{area: area, start: cfg.Start, nodes: make([]corridorNode, len(initial))}
	pitch := area.Height() / float64(cfg.Corridors)
	for i, p := range initial {
		lane := int(math.Floor((p.Y - area.Min.Y) / pitch))
		if lane < 0 {
			lane = 0
		}
		if lane >= cfg.Corridors {
			lane = cfg.Corridors - 1
		}
		v := cfg.MinSpeedMps + rng.Float64()*(cfg.MaxSpeedMps-cfg.MinSpeedMps)
		if lane%2 == 1 {
			v = -v
		}
		m.nodes[i] = corridorNode{x0: p.X, y: p.Y, velocity: v}
	}
	return m
}

func (m *corridorModel) position(i int, now time.Duration) geom.Point {
	n := &m.nodes[i]
	if now <= m.start {
		return geom.Point{X: n.x0, Y: n.y}
	}
	dx := n.velocity * (now - m.start).Seconds()
	w := m.area.Width()
	x := math.Mod(n.x0-m.area.Min.X+dx, w)
	if x < 0 {
		x += w
	}
	return geom.Point{X: m.area.Min.X + x, Y: n.y}
}
