// Package mobility drives radio positions through virtual-time mobility
// models: random waypoint, reference-point group mobility (RPGM), and
// vehicle-like corridor sweeps. A Mover samples each node's trajectory on a
// fixed tick and applies changed positions through phy.Medium.MoveRadio, so
// the medium's cell index and link cache stay consistent while the topology
// moves under the protocols.
//
// Determinism contract: every node's trajectory is a pure function of the
// mover's seed, the node index, and the model parameters — each node draws
// its legs from a private RNG sub-stream split off at construction, so
// trajectories do not depend on how other nodes move or on event interleaving
// elsewhere in the simulation. The tick only changes how often trajectories
// are sampled (and therefore how often MoveRadio fires); the mover itself
// never touches the engine's root RNG. Link-break detection consumes no
// randomness at all. Fixed-seed runs are byte-identical across repeats.
//
// Interaction with topology generators (topology.Metro, SideForDensity,
// Clustered, Random): the generator's output is the *initial placement*;
// from then on the declared Topology.Area is the contract. NewMover rejects
// any initial position outside the area, and every model keeps nodes inside
// it for the whole run — waypoint and RPGM draw (or clamp) targets within
// the area; corridor sweeps wrap deterministically at the area's x extent.
package mobility

import (
	"fmt"
	"math"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/phy"
	"meshcast/internal/sim"
	"meshcast/internal/telemetry"
)

// Model names accepted by Config.Model.
const (
	ModelWaypoint = "waypoint"
	ModelRPGM     = "rpgm"
	ModelCorridor = "corridor"
)

// Config parameterizes a Mover. The zero value is not valid: MaxSpeedMps
// must be positive. Remaining zero fields take the documented defaults.
type Config struct {
	// Model selects the mobility model: "waypoint" (default), "rpgm", or
	// "corridor".
	Model string
	// MinSpeedMps and MaxSpeedMps bound the uniform speed draw per waypoint
	// leg (per node for corridor). MinSpeedMps defaults to MaxSpeedMps/10 —
	// strictly positive, because the classic random-waypoint pitfall of a
	// zero minimum speed is nodes stuck forever on near-zero-speed legs.
	MinSpeedMps float64
	MaxSpeedMps float64
	// Pause is the waypoint/RPGM dwell time at each target before the next
	// leg begins.
	Pause time.Duration
	// Tick is the position-sampling interval (default 500 ms). Smaller ticks
	// give smoother motion and more MoveRadio calls.
	Tick time.Duration
	// Start and End bound the motion window: positions are static before
	// Start and after End (End zero means motion never stops). Scenarios set
	// Start to the traffic warmup so routes form on the initial placement.
	Start time.Duration
	End   time.Duration
	// LinkRangeM is the nominal radio range used for link-break detection
	// (default 250 m, the paper's WaveLAN range). Each tick the mover diffs
	// the geometric neighbor graph at this range and reports edges broken
	// and formed. Negative disables tracking.
	LinkRangeM float64
	// Groups is the number of RPGM groups (default n/10, minimum 2).
	Groups int
	// GroupRadiusM is the RPGM member spread around the group reference
	// point (default 100 m).
	GroupRadiusM float64
	// Corridors is the number of horizontal lanes for the corridor model
	// (default 8); lane parity fixes the sweep direction.
	Corridors int
}

// withDefaults resolves zero fields against n nodes.
func (c Config) withDefaults(n int) Config {
	if c.Model == "" {
		c.Model = ModelWaypoint
	}
	if c.MinSpeedMps <= 0 {
		c.MinSpeedMps = c.MaxSpeedMps / 10
	}
	if c.Tick <= 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.LinkRangeM == 0 {
		c.LinkRangeM = 250
	}
	if c.Groups <= 0 {
		c.Groups = n / 10
		if c.Groups < 2 {
			c.Groups = 2
		}
	}
	if c.GroupRadiusM <= 0 {
		c.GroupRadiusM = 100
	}
	if c.Corridors <= 0 {
		c.Corridors = 8
	}
	return c
}

// Telemetry holds the mover's instruments; the zero value is disabled.
type Telemetry struct {
	// Moves counts MoveRadio calls issued; Breaks and Forms count edges of
	// the link-range neighbor graph lost and gained across ticks.
	Moves, Breaks, Forms *telemetry.Counter
}

// NewTelemetry returns mobility instruments under the "mobility." prefix.
// A nil registry yields the disabled zero value.
func NewTelemetry(reg *telemetry.Registry) Telemetry {
	return Telemetry{
		Moves:  reg.Counter("mobility.moves"),
		Breaks: reg.Counter("mobility.link_breaks"),
		Forms:  reg.Counter("mobility.link_forms"),
	}
}

// Mover samples a mobility model on a virtual-time ticker and applies the
// positions to the medium. Create with NewMover, then Start.
type Mover struct {
	engine *sim.Engine
	medium *phy.Medium
	radios []*phy.Radio
	area   geom.Rect
	cfg    Config
	model  model
	ticker *sim.Ticker

	// Link-break detection state: the neighbor graph at LinkRangeM, as a set
	// of (i<<32|j) pairs with i < j, plus a reusable spatial bucket map at
	// link-range cell size (the phy cell index is interference-radius sized —
	// ~2 km by default — far too coarse to bound a 250 m neighbor probe).
	pairs, prevPairs map[uint64]struct{}
	buckets          map[linkCell][]int32
	scanned          bool

	// Moves counts MoveRadio calls issued; Breaks and Forms accumulate the
	// neighbor-graph diff. All three are also mirrored to Telem when enabled.
	Moves, Breaks, Forms uint64

	// OnLinkEvent, when set, observes each tick's neighbor-graph diff
	// (breaks first). Stats trackers subscribe here.
	OnLinkEvent func(breaks, forms int, now time.Duration)

	// Telem holds the mover's telemetry instruments (zero value disabled).
	Telem Telemetry
}

type linkCell struct{ x, y int32 }

// NewMover validates cfg and the initial placement and builds a mover for
// the given radios (index i is node i). The area is the deployment contract:
// every radio must start inside it and the model keeps every node inside it
// (corridor wraps at its x extent). rng must be a private sub-stream seeded
// from the scenario seed only, so motion is identical across protocols and
// metrics under one seed; NewMover splits it further into per-node streams.
func NewMover(engine *sim.Engine, medium *phy.Medium, radios []*phy.Radio, area geom.Rect, rng *sim.RNG, cfg Config) (*Mover, error) {
	n := len(radios)
	if n == 0 {
		return nil, fmt.Errorf("mobility: no radios to move")
	}
	if cfg.MaxSpeedMps <= 0 {
		return nil, fmt.Errorf("mobility: MaxSpeedMps must be positive (got %g)", cfg.MaxSpeedMps)
	}
	cfg = cfg.withDefaults(n)
	if cfg.MinSpeedMps > cfg.MaxSpeedMps {
		return nil, fmt.Errorf("mobility: MinSpeedMps %g exceeds MaxSpeedMps %g", cfg.MinSpeedMps, cfg.MaxSpeedMps)
	}
	if cfg.End != 0 && cfg.End < cfg.Start {
		return nil, fmt.Errorf("mobility: End %v before Start %v", cfg.End, cfg.Start)
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("mobility: degenerate deployment area %+v (topology generators must declare the area mobility moves within)", area)
	}
	for i, r := range radios {
		if !area.Contains(r.Pos) {
			return nil, fmt.Errorf("mobility: initial position of node %d (%v) outside deployment area %+v", i, r.Pos, area)
		}
	}
	mv := &Mover{
		engine: engine,
		medium: medium,
		radios: radios,
		area:   area,
		cfg:    cfg,
	}
	switch cfg.Model {
	case ModelWaypoint:
		mv.model = newWaypoint(area, cfg, initialPositions(radios), rng)
	case ModelRPGM:
		mv.model = newRPGM(area, cfg, initialPositions(radios), rng)
	case ModelCorridor:
		mv.model = newCorridor(area, cfg, initialPositions(radios), rng)
	default:
		return nil, fmt.Errorf("mobility: unknown model %q (want %s, %s, or %s)", cfg.Model, ModelWaypoint, ModelRPGM, ModelCorridor)
	}
	if cfg.LinkRangeM > 0 {
		mv.pairs = make(map[uint64]struct{})
		mv.prevPairs = make(map[uint64]struct{})
		mv.buckets = make(map[linkCell][]int32)
	}
	return mv, nil
}

func initialPositions(radios []*phy.Radio) []geom.Point {
	ps := make([]geom.Point, len(radios))
	for i, r := range radios {
		ps[i] = r.Pos
	}
	return ps
}

// Config returns the mover's configuration with defaults resolved.
func (mv *Mover) Config() Config { return mv.cfg }

// Start begins ticking. The first tick fires one Tick after the current
// virtual time; ticks before Config.Start establish the link-graph baseline
// without moving anything.
func (mv *Mover) Start() {
	if mv.ticker != nil {
		return
	}
	mv.ticker = sim.NewTicker(mv.engine, mv.cfg.Tick, 0, nil, mv.tick)
}

// Stop halts the mover permanently.
func (mv *Mover) Stop() {
	if mv.ticker != nil {
		mv.ticker.Stop()
	}
}

func (mv *Mover) tick() {
	now := mv.engine.Now()
	if now >= mv.cfg.Start && (mv.cfg.End == 0 || now <= mv.cfg.End) {
		for i, r := range mv.radios {
			if p := mv.model.position(i, now); p != r.Pos {
				mv.medium.MoveRadio(r, p)
				mv.Moves++
				mv.Telem.Moves.Inc()
			}
		}
	}
	if mv.pairs != nil {
		mv.scanLinks(now)
	}
	if mv.cfg.End != 0 && now > mv.cfg.End {
		mv.ticker.Stop()
	}
}

// scanLinks rebuilds the geometric neighbor graph at LinkRangeM and diffs it
// against the previous tick's: edges present then and gone now are breaks,
// new edges are forms. Pure geometry — no RNG — so tracking never perturbs
// the simulation's draw sequence. The first scan only sets the baseline.
func (mv *Mover) scanLinks(now time.Duration) {
	size := mv.cfg.LinkRangeM
	for k := range mv.buckets {
		delete(mv.buckets, k)
	}
	for i, r := range mv.radios {
		k := linkCell{x: int32(math.Floor(r.Pos.X / size)), y: int32(math.Floor(r.Pos.Y / size))}
		mv.buckets[k] = append(mv.buckets[k], int32(i))
	}
	cur := mv.pairs
	for k := range cur {
		delete(cur, k)
	}
	for i, r := range mv.radios {
		k := linkCell{x: int32(math.Floor(r.Pos.X / size)), y: int32(math.Floor(r.Pos.Y / size))}
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range mv.buckets[linkCell{x: k.x + dx, y: k.y + dy}] {
					if int(j) <= i {
						continue
					}
					if r.Pos.Distance(mv.radios[j].Pos) <= size {
						cur[uint64(i)<<32|uint64(j)] = struct{}{}
					}
				}
			}
		}
	}
	breaks, forms := 0, 0
	if mv.scanned {
		for p := range mv.prevPairs {
			if _, ok := cur[p]; !ok {
				breaks++
			}
		}
		for p := range cur {
			if _, ok := mv.prevPairs[p]; !ok {
				forms++
			}
		}
	}
	mv.scanned = true
	mv.pairs, mv.prevPairs = mv.prevPairs, cur
	if breaks > 0 {
		mv.Breaks += uint64(breaks)
		mv.Telem.Breaks.Add(uint64(breaks))
	}
	if forms > 0 {
		mv.Forms += uint64(forms)
		mv.Telem.Forms.Add(uint64(forms))
	}
	if mv.OnLinkEvent != nil && (breaks > 0 || forms > 0) {
		mv.OnLinkEvent(breaks, forms, now)
	}
}
