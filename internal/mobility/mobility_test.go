package mobility

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
)

func buildWorld(t *testing.T, seed uint64, topo *topology.Topology) (*sim.Engine, *phy.Medium, []*phy.Radio) {
	t.Helper()
	engine := sim.NewEngine(seed)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, phy.DefaultParams())
	radios := make([]*phy.Radio, len(topo.Positions))
	for i, p := range topo.Positions {
		radios[i] = medium.AttachRadio(packet.NodeID(i), p)
	}
	return engine, medium, radios
}

func metroTopo(t *testing.T, n int, seed uint64) *topology.Topology {
	t.Helper()
	topo, err := topology.Metro(sim.NewRNG(seed), topology.MetroConfig{Nodes: n})
	if err != nil {
		t.Fatalf("Metro: %v", err)
	}
	return topo
}

// trajectoryTrace runs a model for virtual `dur` and returns a position dump
// at every tick — the determinism fingerprint.
func trajectoryTrace(t *testing.T, model string, seed uint64, dur time.Duration) string {
	t.Helper()
	topo := metroTopo(t, 40, seed)
	engine, medium, radios := buildWorld(t, seed, topo)
	mv, err := NewMover(engine, medium, radios, topo.Area, sim.NewRNG(seed^0xabcd), Config{
		Model: model, MaxSpeedMps: 20, Pause: 200 * time.Millisecond, Tick: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewMover(%s): %v", model, err)
	}
	var log strings.Builder
	sim.NewTicker(engine, 250*time.Millisecond, 0, nil, func() {
		for i, r := range radios {
			fmt.Fprintf(&log, "%v n%d %.4f %.4f\n", engine.Now(), i, r.Pos.X, r.Pos.Y)
		}
	})
	mv.Start()
	engine.Run(dur)
	fmt.Fprintf(&log, "moves=%d breaks=%d forms=%d\n", mv.Moves, mv.Breaks, mv.Forms)
	return log.String()
}

// TestModelsDeterministic: same seed, same trajectories, byte for byte —
// for every model.
func TestModelsDeterministic(t *testing.T) {
	for _, model := range []string{ModelWaypoint, ModelRPGM, ModelCorridor} {
		a := trajectoryTrace(t, model, 7, 10*time.Second)
		b := trajectoryTrace(t, model, 7, 10*time.Second)
		if a != b {
			t.Fatalf("%s: repeat run diverged", model)
		}
		if c := trajectoryTrace(t, model, 8, 10*time.Second); c == a {
			t.Fatalf("%s: different seed produced identical trajectories", model)
		}
		if !strings.Contains(a, "moves=") || strings.Contains(a, "moves=0\n") {
			t.Fatalf("%s: nothing moved:\n%s", model, a[:200])
		}
	}
}

// TestModelsStayInsideArea is the satellite-6 contract: a metro topology's
// declared area bounds every position for the whole run, under every model.
func TestModelsStayInsideArea(t *testing.T) {
	for _, model := range []string{ModelWaypoint, ModelRPGM, ModelCorridor} {
		topo := metroTopo(t, 60, 11)
		engine, medium, radios := buildWorld(t, 11, topo)
		mv, err := NewMover(engine, medium, radios, topo.Area, sim.NewRNG(99), Config{
			Model: model, MaxSpeedMps: 40, Tick: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewMover(%s): %v", model, err)
		}
		violations := 0
		sim.NewTicker(engine, 100*time.Millisecond, 0, nil, func() {
			for i, r := range radios {
				if !topo.Area.Contains(r.Pos) {
					violations++
					if violations == 1 {
						t.Errorf("%s: node %d at %v outside area %+v (t=%v)", model, i, r.Pos, topo.Area, engine.Now())
					}
				}
			}
		})
		mv.Start()
		engine.Run(30 * time.Second)
		if violations > 0 {
			t.Fatalf("%s: %d out-of-area samples", model, violations)
		}
		if mv.Moves == 0 {
			t.Fatalf("%s: nothing moved", model)
		}
	}
}

// TestNewMoverValidation: bad configs and placements are rejected up front.
func TestNewMoverValidation(t *testing.T) {
	topo := metroTopo(t, 10, 3)
	engine, medium, radios := buildWorld(t, 3, topo)
	rng := sim.NewRNG(1)
	if _, err := NewMover(engine, medium, radios, topo.Area, rng, Config{}); err == nil {
		t.Fatal("zero MaxSpeedMps accepted")
	}
	if _, err := NewMover(engine, medium, radios, topo.Area, rng, Config{MaxSpeedMps: 5, Model: "teleport"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewMover(engine, medium, radios, geom.Rect{}, rng, Config{MaxSpeedMps: 5}); err == nil {
		t.Fatal("degenerate area accepted")
	}
	// A node outside the declared area breaks the deployment contract.
	small := geom.Rect{Max: geom.Point{X: 1, Y: 1}}
	if _, err := NewMover(engine, medium, radios, small, rng, Config{MaxSpeedMps: 5}); err == nil {
		t.Fatal("out-of-area initial placement accepted")
	}
	if _, err := NewMover(engine, medium, radios, topo.Area, rng, Config{MaxSpeedMps: 5, MinSpeedMps: 9}); err == nil {
		t.Fatal("MinSpeed > MaxSpeed accepted")
	}
	if _, err := NewMover(engine, medium, radios, topo.Area, rng, Config{MaxSpeedMps: 5, Start: time.Second, End: time.Millisecond}); err == nil {
		t.Fatal("End before Start accepted")
	}
}

// TestLinkBreakDetection: two nodes separated beyond LinkRangeM register one
// break, and one form when they meet again. The baseline scan must not count
// the initial edges as forms.
func TestLinkBreakDetection(t *testing.T) {
	topo := &topology.Topology{
		Positions: []geom.Point{{X: 100, Y: 100}, {X: 200, Y: 100}},
		Area:      geom.Square(2000),
	}
	engine, medium, radios := buildWorld(t, 5, topo)
	// Corridor with one lane: both nodes sweep +x at different speeds, so
	// they separate, and the faster one wraps around to meet the slower.
	mv, err := NewMover(engine, medium, radios, topo.Area, sim.NewRNG(2), Config{
		Model: ModelCorridor, Corridors: 1, MinSpeedMps: 1, MaxSpeedMps: 60,
		Tick: 100 * time.Millisecond, LinkRangeM: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	mv.OnLinkEvent = func(breaks, forms int, now time.Duration) {
		events = append(events, fmt.Sprintf("%d/%d", breaks, forms))
	}
	mv.Start()
	engine.Run(120 * time.Second)
	if mv.Breaks == 0 || mv.Forms == 0 {
		t.Fatalf("breaks=%d forms=%d, want both > 0 (events: %v)", mv.Breaks, mv.Forms, events)
	}
	if mv.Forms > mv.Breaks {
		t.Fatalf("forms=%d > breaks=%d: the baseline scan leaked initial edges as forms", mv.Forms, mv.Breaks)
	}
}

// TestMotionWindow: nothing moves before Start or after End.
func TestMotionWindow(t *testing.T) {
	topo := metroTopo(t, 20, 9)
	engine, medium, radios := buildWorld(t, 9, topo)
	initial := make([]geom.Point, len(radios))
	for i, r := range radios {
		initial[i] = r.Pos
	}
	mv, err := NewMover(engine, medium, radios, topo.Area, sim.NewRNG(4), Config{
		Model: ModelWaypoint, MaxSpeedMps: 30, Tick: 100 * time.Millisecond,
		Start: 2 * time.Second, End: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mv.Start()
	engine.Run(1900 * time.Millisecond)
	for i, r := range radios {
		if r.Pos != initial[i] {
			t.Fatalf("node %d moved before Start", i)
		}
	}
	engine.Run(4 * time.Second)
	if mv.Moves == 0 {
		t.Fatal("nothing moved inside the motion window")
	}
	frozen := make([]geom.Point, len(radios))
	for i, r := range radios {
		frozen[i] = r.Pos
	}
	moves := mv.Moves
	engine.Run(10 * time.Second)
	for i, r := range radios {
		if r.Pos != frozen[i] {
			t.Fatalf("node %d moved after End", i)
		}
	}
	if mv.Moves != moves {
		t.Fatal("moves counted after End")
	}
}

// TestMoverMatchesBruteForceLinks: while the mover runs, the medium's cached
// candidate lists must stay equal to a brute-force rebuild (the MoveRadio
// integration seen from above).
func TestMoverMatchesBruteForceLinks(t *testing.T) {
	topo := metroTopo(t, 50, 17)
	engine, medium, radios := buildWorld(t, 17, topo)
	mv, err := NewMover(engine, medium, radios, topo.Area, sim.NewRNG(17), Config{
		Model: ModelWaypoint, MaxSpeedMps: 25, Tick: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mismatch := 0
	sim.NewTicker(engine, time.Second, 0, nil, func() {
		for _, r := range radios {
			if !medium.LinksConsistent(r) {
				mismatch++
			}
		}
	})
	mv.Start()
	engine.Run(8 * time.Second)
	if mismatch > 0 {
		t.Fatalf("%d cached candidate lists diverged from brute force during motion", mismatch)
	}
	if mv.Moves == 0 {
		t.Fatal("nothing moved")
	}
}
