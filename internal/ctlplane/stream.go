package ctlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"meshcast/internal/telemetry"
)

// The SSE stream contract for GET /stats/stream:
//
//   - Every event carries a monotone id, an event type ("stats" or
//     "anomaly"), and a JSON StreamEvent body.
//   - "stats" events are emitted once per StreamInterval with the raw
//     cumulative Stats plus per-window deltas and windowed PDR — the
//     server computes deltas, so a resumed client never double-counts.
//   - "anomaly" events interleave when the window looks wrong (PDR dip
//     against the armed baseline, node-death).
//   - Idle connections receive ": hb" comment lines every StreamHeartbeat.
//   - A reconnecting client sends Last-Event-ID and receives only events
//     it has not seen, replayed from a bounded server-side ring.
//   - When the subscriber limit is reached the request is shed with
//     503 + Retry-After, which the streaming client honors.

// StreamStats is the payload of a "stats" stream event.
type StreamStats struct {
	// Stats is the raw cumulative snapshot.
	Stats Stats `json:"stats"`
	// DeltaExpected / DeltaDelivered are increments over this window.
	DeltaExpected  uint64 `json:"deltaExpected"`
	DeltaDelivered uint64 `json:"deltaDelivered"`
	// PDR is the windowed delivery ratio; HasPDR is false on the first
	// window and in windows with no expected deliveries.
	PDR    float64 `json:"pdr"`
	HasPDR bool    `json:"hasPdr"`
}

// StreamEvent is one /stats/stream event body.
type StreamEvent struct {
	// ID is the monotone event id (also the SSE id field).
	ID uint64 `json:"id"`
	// Kind is "stats" or "anomaly" (also the SSE event field).
	Kind string `json:"kind"`
	// Stats is set on "stats" events.
	Stats *StreamStats `json:"stats,omitempty"`
	// Anomaly describes "anomaly" events ("pdr-dip ...", "node-death ...").
	Anomaly string `json:"anomaly,omitempty"`
}

// streamHub samples the controller on a fixed interval while at least one
// subscriber is connected, assigns monotone event ids, retains a bounded
// replay ring for Last-Event-ID resume, and fans events out. Deltas are
// computed here exactly once per window, so reconnecting clients cannot
// observe duplicates.
type streamHub struct {
	ctl        Controller
	interval   time.Duration
	replayCap  int
	maxClients int
	done       chan struct{}

	mu      sync.Mutex
	subs    map[chan StreamEvent]struct{}
	ring    []StreamEvent
	lastID  uint64
	prev    *Stats
	dip     telemetry.PDRDipDetector
	stopTck chan struct{} // closed to stop the current producer
}

func newStreamHub(ctl Controller, cfg ServerConfig, done chan struct{}) *streamHub {
	return &streamHub{
		ctl:        ctl,
		interval:   cfg.StreamInterval,
		replayCap:  cfg.StreamReplay,
		maxClients: cfg.MaxStreamClients,
		done:       done,
		subs:       make(map[chan StreamEvent]struct{}),
	}
}

// errStreamBusy sheds subscribers past the configured limit.
var errStreamBusy = fmt.Errorf("ctlplane: stream subscriber limit reached")

// subscribe registers a new stream consumer and returns its channel plus
// the replayed backlog of events after lastID. Backlog and subsequent
// fan-out are contiguous (both run under the hub lock), so the consumer
// sees every event exactly once.
func (h *streamHub) subscribe(lastID uint64) (chan StreamEvent, []StreamEvent, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) >= h.maxClients {
		return nil, nil, errStreamBusy
	}
	var backlog []StreamEvent
	for _, ev := range h.ring {
		if ev.ID > lastID {
			backlog = append(backlog, ev)
		}
	}
	ch := make(chan StreamEvent, 32)
	h.subs[ch] = struct{}{}
	if len(h.subs) == 1 {
		h.stopTck = make(chan struct{})
		go h.produce(h.stopTck)
	}
	return ch, backlog, nil
}

func (h *streamHub) unsubscribe(ch chan StreamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; !ok {
		return
	}
	delete(h.subs, ch)
	if len(h.subs) == 0 && h.stopTck != nil {
		close(h.stopTck)
		h.stopTck = nil
	}
}

// produce ticks until the last subscriber leaves or the server closes.
// While nobody listens no events are produced; the retained prev baseline
// folds the whole idle gap into the first delta after resume.
func (h *streamHub) produce(stop chan struct{}) {
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-h.done:
			return
		case <-ticker.C:
			h.tick()
		}
	}
}

func (h *streamHub) tick() {
	st := h.ctl.Stats()
	h.mu.Lock()
	defer h.mu.Unlock()
	ss := &StreamStats{Stats: st}
	var anomalies []string
	if h.prev != nil {
		if st.Expected >= h.prev.Expected && st.Delivered >= h.prev.Delivered {
			ss.DeltaExpected = st.Expected - h.prev.Expected
			ss.DeltaDelivered = st.Delivered - h.prev.Delivered
			if ss.DeltaExpected > 0 {
				ss.PDR = float64(ss.DeltaDelivered) / float64(ss.DeltaExpected)
				ss.HasPDR = true
			}
		}
		if st.NodesAlive < h.prev.NodesAlive {
			anomalies = append(anomalies,
				fmt.Sprintf("node-death alive %d -> %d", h.prev.NodesAlive, st.NodesAlive))
		}
	}
	if ss.HasPDR && h.dip.Observe(ss.PDR) {
		anomalies = append(anomalies, fmt.Sprintf("pdr-dip window pdr=%.3f", ss.PDR))
	}
	cp := st
	h.prev = &cp
	h.emit(StreamEvent{Kind: "stats", Stats: ss})
	for _, a := range anomalies {
		h.emit(StreamEvent{Kind: "anomaly", Anomaly: a})
	}
}

// emit assigns the next id, records the event in the replay ring, and
// fans it out. Callers hold h.mu. A subscriber that cannot keep up (full
// channel) is dropped: it reconnects and resumes from its last id.
func (h *streamHub) emit(ev StreamEvent) {
	h.lastID++
	ev.ID = h.lastID
	h.ring = append(h.ring, ev)
	if len(h.ring) > h.replayCap {
		h.ring = h.ring[len(h.ring)-h.replayCap:]
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			delete(h.subs, ch)
			close(ch)
			if len(h.subs) == 0 && h.stopTck != nil {
				close(h.stopTck)
				h.stopTck = nil
			}
		}
	}
}

// handleStream serves GET /stats/stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID = id
		}
	}
	ch, backlog, err := s.stream.subscribe(lastID)
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	}
	defer s.stream.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Reconnect-delay hint for generic SSE consumers; our client treats
	// it like a Retry-After floor.
	fmt.Fprintf(w, "retry: %d\n\n", s.cfg.StreamInterval.Milliseconds())
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	fl.Flush()

	hb := time.NewTicker(s.cfg.StreamHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case ev, ok := <-ch:
			if !ok {
				return // dropped as a slow consumer; client resumes
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-hb.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev StreamEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Kind, data)
}

// WatchStream consumes GET /stats/stream with automatic reconnection:
// dropped connections retry with capped backoff, Retry-After from a
// shedding server (and the SSE retry field) stretch the wait, and every
// reconnect resumes via Last-Event-ID so no delta window is ever seen
// twice. Events surface as WatchSamples (anomaly events set Anomaly);
// connection failures surface as samples with Err set and the stream
// keeps going, like the polling Watch. The channel closes when ctx is
// done.
func WatchStream(ctx context.Context, c *Client) <-chan WatchSample {
	ch := make(chan WatchSample)
	go func() {
		defer close(ch)
		var lastID uint64
		var haveLast bool
		backoff := c.Backoff
		if backoff <= 0 {
			backoff = 100 * time.Millisecond
		}
		maxBackoff := c.BackoffMax
		if maxBackoff <= 0 {
			maxBackoff = 2 * time.Second
		}
		wait := backoff
		for ctx.Err() == nil {
			hint, err := c.streamOnce(ctx, lastID, haveLast, func(ev StreamEvent) {
				if ev.ID > 0 {
					lastID, haveLast = ev.ID, true
				}
				wait = backoff // healthy connection resets the backoff
				s := WatchSample{T: time.Now(), Anomaly: ev.Anomaly}
				if ev.Stats != nil {
					s.Stats = ev.Stats.Stats
					s.DeltaExpected = ev.Stats.DeltaExpected
					s.DeltaDelivered = ev.Stats.DeltaDelivered
					s.PDR = ev.Stats.PDR
					s.HasPDR = ev.Stats.HasPDR
				}
				select {
				case ch <- s:
				case <-ctx.Done():
				}
			})
			if ctx.Err() != nil {
				return
			}
			if err != nil {
				select {
				case ch <- WatchSample{T: time.Now(), Err: err}:
				case <-ctx.Done():
					return
				}
			}
			if hint > wait {
				wait = hint
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
			if wait *= 2; wait > maxBackoff {
				wait = maxBackoff
			}
		}
	}()
	return ch
}

// streamClient returns an HTTP client suitable for a long-lived SSE
// response: the configured transport, but no overall request timeout
// (c.HTTPClient's 5s deadline would sever the stream mid-flight).
func (c *Client) streamClient() *http.Client {
	cl := &http.Client{}
	if c.HTTPClient != nil {
		cl.Transport = c.HTTPClient.Transport
	}
	return cl
}

// streamOnce runs one /stats/stream connection until it fails or ctx is
// done, invoking onEvent per decoded event. It returns a server-suggested
// minimum reconnect delay (0 when none) and the terminal error.
func (c *Client) streamOnce(ctx context.Context, lastID uint64, haveLast bool, onEvent func(StreamEvent)) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/stats/stream", nil)
	if err != nil {
		return 0, fmt.Errorf("ctlplane: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if haveLast {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var hint time.Duration
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			hint = time.Duration(ra) * time.Second
		}
		msg := fmt.Sprintf("status %d", resp.StatusCode)
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return hint, &APIError{Status: resp.StatusCode, Message: msg}
	}

	var retryHint time.Duration
	var data strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				var ev StreamEvent
				if json.Unmarshal([]byte(data.String()), &ev) == nil {
					onEvent(ev)
				}
				data.Reset()
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "retry:"):
			if ms, err := strconv.Atoi(strings.TrimSpace(line[len("retry:"):])); err == nil && ms > 0 {
				retryHint = time.Duration(ms) * time.Millisecond
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(line[len("data:"):]))
		default:
			// id:/event: fields duplicate the JSON body; ignore.
		}
	}
	err = sc.Err()
	if err == nil {
		err = fmt.Errorf("ctlplane: stream closed by server")
	}
	return retryHint, err
}
