package ctlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingController serves stats that advance on every snapshot, so each
// stream window has a distinct cumulative Expected value — duplicated
// windows after a resume would show up as repeated values.
type countingController struct {
	fakeController
	expected *atomic.Uint64
}

func (c *countingController) Stats() Stats {
	e := c.expected.Add(5)
	return Stats{Expected: e, Delivered: e * 4 / 5, NodesAlive: 25, NodesTotal: 25, EtherUp: true}
}

// sseEvent is one decoded frame of a raw SSE connection.
type sseEvent struct {
	id    uint64
	event string
	body  StreamEvent
}

// readSSE decodes n events from an open SSE response body.
func readSSE(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	var data string
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read after %d events: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if data != "" {
				if err := json.Unmarshal([]byte(data), &cur.body); err != nil {
					t.Fatalf("bad event body %q: %v", data, err)
				}
				out = append(out, cur)
				cur, data = sseEvent{}, ""
			}
		case strings.HasPrefix(line, "id:"):
			id, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event:"):
			cur.event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[5:])
		}
	}
	return out
}

func openStream(t *testing.T, base string, lastID uint64) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/stats/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return resp, bufio.NewReader(resp.Body)
}

func TestStreamEventsMonotoneWithServerComputedDeltas(t *testing.T) {
	ctl := &countingController{expected: new(atomic.Uint64)}
	srv := newTestServer(t, ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})

	_, r := openStream(t, srv.URL, 0)
	events := readSSE(t, r, 3)
	for i, ev := range events {
		if want := uint64(i + 1); ev.id != want {
			t.Fatalf("event %d has id %d, want %d", i, ev.id, want)
		}
		if ev.event != "stats" || ev.body.Kind != "stats" || ev.body.Stats == nil {
			t.Fatalf("event %d = %+v, want a stats event", i, ev.body)
		}
	}
	// The server computes deltas: the counting controller advances
	// Expected by 5 per window, and the first window has no baseline.
	if d := events[0].body.Stats.DeltaExpected; d != 0 {
		t.Fatalf("first window delta %d, want 0 (no baseline)", d)
	}
	for _, ev := range events[1:] {
		s := ev.body.Stats
		if s.DeltaExpected != 5 || s.DeltaDelivered != 4 {
			t.Fatalf("window delta %d/%d, want 5/4", s.DeltaDelivered, s.DeltaExpected)
		}
		if !s.HasPDR || s.PDR != 0.8 {
			t.Fatalf("window PDR %v/%v, want 0.8/true", s.PDR, s.HasPDR)
		}
	}
}

func TestStreamLastEventIDResumeSkipsSeenEvents(t *testing.T) {
	ctl := &countingController{expected: new(atomic.Uint64)}
	srv := newTestServer(t, ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})

	resp, r := openStream(t, srv.URL, 0)
	if events := readSSE(t, r, 4); events[3].id != 4 {
		t.Fatalf("4th event id %d, want 4", events[3].id)
	}
	resp.Body.Close()

	// Resume claiming events 1-2 were seen: the replay ring must serve 3
	// and 4 immediately, and nothing before them again.
	_, r2 := openStream(t, srv.URL, 2)
	resumed := readSSE(t, r2, 2)
	if resumed[0].id != 3 || resumed[1].id != 4 {
		t.Fatalf("resumed ids %d, %d; want 3, 4", resumed[0].id, resumed[1].id)
	}
}

func TestStreamShedsOverLimitWithRetryAfter(t *testing.T) {
	ctl := &countingController{expected: new(atomic.Uint64)}
	srv := newTestServer(t, ctl, ServerConfig{
		StreamInterval:    10 * time.Millisecond,
		MaxStreamClients:  1,
		RetryAfterSeconds: 7,
	})

	// First subscriber occupies the only slot.
	openStream(t, srv.URL, 0)

	// The second is shed with 503 + Retry-After, and the streaming client
	// surfaces that hint as its minimum reconnect delay.
	c := NewClient(srv.URL)
	hint, err := c.streamOnce(context.Background(), 0, false, func(StreamEvent) {})
	if err == nil {
		t.Fatal("over-limit stream connect succeeded, want 503")
	}
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("over-limit error = %v, want 503 APIError", err)
	}
	if hint != 7*time.Second {
		t.Fatalf("Retry-After hint = %v, want 7s", hint)
	}
}

func TestStreamAnomalyOnNodeDeath(t *testing.T) {
	ctl := &fakeController{stats: Stats{Expected: 10, Delivered: 8, NodesAlive: 25, NodesTotal: 25, EtherUp: true}}
	srv := newTestServer(t, ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})

	_, r := openStream(t, srv.URL, 0)
	readSSE(t, r, 1) // baseline window recorded
	ctl.mu.Lock()
	ctl.stats.NodesAlive = 23
	ctl.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := readSSE(t, r, 1)
		if evs[0].body.Kind == "anomaly" {
			if !strings.Contains(evs[0].body.Anomaly, "node-death") {
				t.Fatalf("anomaly = %q, want node-death", evs[0].body.Anomaly)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no anomaly event after node death")
		}
	}
}

func TestServerCloseTerminatesStreams(t *testing.T) {
	ctl := &countingController{expected: new(atomic.Uint64)}
	s := NewServer(ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	_, r := openStream(t, srv.URL, 0)
	readSSE(t, r, 1)
	s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream stayed open after Server.Close")
	}
}

// TestWatchStreamReconnectsAcrossServerRestart restarts the server under a
// live WatchStream client and verifies the client reconnects on its own
// and never replays a delta window: every cumulative Expected value seen
// is strictly increasing, across the restart.
func TestWatchStreamReconnectsAcrossServerRestart(t *testing.T) {
	counter := new(atomic.Uint64)
	serve := func() (*Server, *http.Server, string, chan struct{}) {
		ctl := &countingController{expected: counter}
		s := NewServer(ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		done := make(chan struct{})
		go func() { defer close(done); hs.Serve(ln) }()
		return s, hs, ln.Addr().String(), done
	}

	s1, hs1, addr, done1 := serve()
	c := NewClient("http://" + addr)
	c.Backoff = 10 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	samples := WatchStream(ctx, c)

	collect := func(n int) []WatchSample {
		var out []WatchSample
		for s := range samples {
			if s.Err != nil || s.Anomaly != "" {
				continue
			}
			out = append(out, s)
			if len(out) == n {
				return out
			}
		}
		t.Fatalf("stream closed after %d samples, want %d", len(out), n)
		return nil
	}

	first := collect(3)

	// Kill the server mid-stream.
	s1.Close()
	hs1.Close()
	<-done1

	// Bring a fresh server up on the same address; the cumulative counter
	// carries over, like a daemon whose backing fleet kept running.
	var s2 *Server
	var hs2 *http.Server
	for i := 0; ; i++ {
		ctl := &countingController{expected: counter}
		s2 = NewServer(ctl, ServerConfig{StreamInterval: 10 * time.Millisecond})
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			if i > 50 {
				t.Fatalf("relisten on %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		hs2 = &http.Server{Handler: s2.Handler()}
		go hs2.Serve(ln)
		break
	}
	defer func() {
		s2.Close()
		hs2.Close()
	}()

	second := collect(3)
	cancel()

	all := append(first, second...)
	prev := uint64(0)
	for i, s := range all {
		if s.Stats.Expected <= prev {
			t.Fatalf("sample %d cumulative Expected %d not above previous %d — duplicate window after resume",
				i, s.Stats.Expected, prev)
		}
		prev = s.Stats.Expected
	}
	// The restarted server has no baseline for its first window, so its
	// first delta must be zero rather than double-counting the gap.
	if second[0].DeltaExpected != 0 {
		t.Fatalf("first post-restart delta %d, want 0 (fresh baseline)", second[0].DeltaExpected)
	}
}
