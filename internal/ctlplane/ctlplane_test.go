package ctlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meshcast/internal/emu"
)

// fakeController records mutations and serves canned state, with a
// settable health verdict to exercise admission control.
type fakeController struct {
	mu       sync.Mutex
	degraded bool
	kills    []int
	restarts []int
	impairs  []ImpairRequest
	parts    []PartitionRequest
	scripts  []ScriptRequest

	stats Stats
}

func (f *fakeController) setDegraded(d bool) {
	f.mu.Lock()
	f.degraded = d
	f.mu.Unlock()
}

func (f *fakeController) Nodes() []NodeState {
	return []NodeState{{ID: 1, Alive: true}, {ID: 2, Alive: false, Kills: 1}}
}

func (f *fakeController) Links() LinksState {
	return LinksState{Default: LinkProfileState{DF: 1}}
}

func (f *fakeController) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeController) Health() Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.degraded {
		return Health{Status: HealthDegraded, Reason: "test degradation"}
	}
	return Health{Status: HealthOK, EtherUp: true, AliveFraction: 1}
}

func (f *fakeController) Impair(req ImpairRequest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.impairs = append(f.impairs, req)
	return nil
}

func (f *fakeController) Partition(req PartitionRequest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts = append(f.parts, req)
	return nil
}

func (f *fakeController) KillNode(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node == 99 {
		return RequestError{Msg: "unknown node 99"}
	}
	f.kills = append(f.kills, node)
	return nil
}

func (f *fakeController) RestartNode(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restarts = append(f.restarts, node)
	return nil
}

func (f *fakeController) InjectScript(req ScriptRequest) (ScriptResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scripts = append(f.scripts, req)
	return ScriptResult{Events: 2, SpanSeconds: 1.5}, nil
}

func newTestServer(t *testing.T, ctl Controller, cfg ServerConfig) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(ctl, cfg).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, url, path, body string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerReadEndpoints(t *testing.T) {
	ctl := &fakeController{stats: Stats{Expected: 10, Delivered: 8, EtherUp: true}}
	srv := newTestServer(t, ctl, ServerConfig{})

	var nodes []NodeState
	resp, err := http.Get(srv.URL + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /nodes = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].ID != 1 || !nodes[0].Alive {
		t.Fatalf("nodes = %+v", nodes)
	}

	var st Stats
	resp2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Expected != 10 || st.Delivered != 8 {
		t.Fatalf("stats = %+v", st)
	}

	var h Health
	resp3, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET /health = %d", resp3.StatusCode)
	}
	if err := json.NewDecoder(resp3.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != HealthOK {
		t.Fatalf("health = %+v", h)
	}
}

func TestServerValidation(t *testing.T) {
	ctl := &fakeController{}
	srv := newTestServer(t, ctl, ServerConfig{})

	cases := []struct {
		path, body, wantErr string
	}{
		{"/links/impair", `{"from":1,"to":2}`, "df is required"},
		{"/links/impair", `{"from":1,"to":2,"df":1.5}`, "out of range"},
		{"/links/impair", `{"from":1,"to":2,"df":0.5,"bogus":1}`, "bad request body"},
		{"/links/impair", `{"from":1,"to":2,"df":0.5,"delayMs":-1}`, "non-negative"},
		{"/links/partition", `{}`, "sideA must be non-empty"},
		{"/links/partition", `{"clear":true,"sideA":[1]}`, "mutually exclusive"},
		{"/faults/script", `{}`, "script is required"},
		{"/nodes/kill", `{"node":99}`, "unknown node 99"},
		{"/nodes/kill", `not json`, "bad request body"},
	}
	for _, tc := range cases {
		resp := post(t, srv.URL, tc.path, tc.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q = %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ae.Error, tc.wantErr) {
			t.Fatalf("POST %s %q error = %q, want substring %q", tc.path, tc.body, ae.Error, tc.wantErr)
		}
	}
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if len(ctl.impairs)+len(ctl.parts)+len(ctl.kills)+len(ctl.scripts) != 0 {
		t.Fatal("rejected requests reached the controller")
	}
}

func TestServerBoundedBody(t *testing.T) {
	srv := newTestServer(t, &fakeController{}, ServerConfig{MaxBody: 128})
	big := `{"from":1,"to":2,"df":0.5,"delayMs":` + strings.Repeat("1", 200) + `}`
	resp := post(t, srv.URL, "/links/impair", big, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ae.Error, "over 128 bytes") {
		t.Fatalf("error = %q", ae.Error)
	}
}

func TestServerIdempotentReplay(t *testing.T) {
	ctl := &fakeController{}
	srv := newTestServer(t, ctl, ServerConfig{})
	hdr := map[string]string{IdempotencyHeader: "tok-1"}

	first := post(t, srv.URL, "/nodes/kill", `{"node":1}`, hdr)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first kill = %d", first.StatusCode)
	}
	if first.Header.Get(ReplayHeader) != "" {
		t.Fatal("first request marked as replay")
	}
	second := post(t, srv.URL, "/nodes/kill", `{"node":1}`, hdr)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("replayed kill = %d", second.StatusCode)
	}
	if second.Header.Get(ReplayHeader) != "true" {
		t.Fatal("second request not served from the replay cache")
	}
	ctl.mu.Lock()
	kills := len(ctl.kills)
	ctl.mu.Unlock()
	if kills != 1 {
		t.Fatalf("controller saw %d kills, want 1 (idempotent)", kills)
	}

	// A different token is a different request.
	third := post(t, srv.URL, "/nodes/kill", `{"node":1}`,
		map[string]string{IdempotencyHeader: "tok-2"})
	if third.Header.Get(ReplayHeader) != "" {
		t.Fatal("fresh token served from cache")
	}
	ctl.mu.Lock()
	kills = len(ctl.kills)
	ctl.mu.Unlock()
	if kills != 2 {
		t.Fatalf("controller saw %d kills, want 2", kills)
	}
}

func TestServerIdempotencyCacheBounded(t *testing.T) {
	ctl := &fakeController{}
	s := NewServer(ctl, ServerConfig{IdempotencyCapacity: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for i := 0; i < 10; i++ {
		post(t, srv.URL, "/nodes/kill", `{"node":1}`,
			map[string]string{IdempotencyHeader: string(rune('a' + i))})
	}
	s.mu.Lock()
	n := len(s.idem)
	s.mu.Unlock()
	if n > 4 {
		t.Fatalf("idempotency cache holds %d entries, cap 4", n)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	ctl := &fakeController{}
	srv := newTestServer(t, ctl, ServerConfig{RetryAfterSeconds: 7})
	hdr := map[string]string{IdempotencyHeader: "tok-adm"}

	// A mutation completed while healthy replays even once degraded — the
	// work already happened.
	if resp := post(t, srv.URL, "/nodes/kill", `{"node":2}`, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy kill = %d", resp.StatusCode)
	}
	ctl.setDegraded(true)

	shed := post(t, srv.URL, "/nodes/kill", `{"node":3}`, nil)
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded mutation = %d, want 503", shed.StatusCode)
	}
	if got := shed.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}

	replay := post(t, srv.URL, "/nodes/kill", `{"node":2}`, hdr)
	if replay.StatusCode != http.StatusOK || replay.Header.Get(ReplayHeader) != "true" {
		t.Fatalf("degraded replay = %d replay=%q", replay.StatusCode, replay.Header.Get(ReplayHeader))
	}

	// Reads keep working so operators can watch the recovery.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET /stats = %d, want 200", resp.StatusCode)
	}

	ctl.setDegraded(false)
	if resp := post(t, srv.URL, "/nodes/kill", `{"node":3}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered mutation = %d", resp.StatusCode)
	}
}

func TestServerUnsupported(t *testing.T) {
	links := emu.NewLinkTable(1)
	ether, err := emu.NewEther("127.0.0.1:0", links, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()
	med := &MediumController{LinksTable: links, Ether: func() *emu.Ether { return ether }}
	srv := newTestServer(t, med, ServerConfig{})
	resp := post(t, srv.URL, "/nodes/kill", `{"node":1}`, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("medium kill = %d, want 501", resp.StatusCode)
	}
	resp = post(t, srv.URL, "/faults/script", `{"script":{}}`, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("medium script = %d, want 501", resp.StatusCode)
	}
}

func TestClientRetriesWithStableToken(t *testing.T) {
	var calls atomic.Int32
	tokens := make(map[string]bool)
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		tokens[r.Header.Get(IdempotencyHeader)] = true
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"killed":1}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff, c.BackoffMax = time.Millisecond, 4*time.Millisecond
	if err := c.KillNode(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(tokens) != 1 {
		t.Fatalf("attempts used %d distinct idempotency tokens, want 1", len(tokens))
	}
	for tok := range tokens {
		if tok == "" {
			t.Fatal("mutation sent without idempotency token")
		}
	}
}

func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"df 1.5 out of range [0, 1]"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff = time.Millisecond
	df := 1.5
	_, err := c.Impair(context.Background(), ImpairRequest{From: 1, To: 2, DF: &df})
	var ae *APIError
	if err == nil || !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if !strings.Contains(ae.Message, "out of range") {
		t.Fatalf("message = %q", ae.Message)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 400 (%d calls)", calls.Load())
	}
}

func asAPIError(err error, out **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*out = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"degraded: test"}`))
			return
		}
		w.Write([]byte(`{"killed":1}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff, c.BackoffMax = time.Millisecond, 5*time.Second
	start := time.Now()
	if err := c.KillNode(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
	// The 1 s Retry-After must stretch the 1 ms base backoff.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("client retried after %v, ignoring Retry-After: 1", elapsed)
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Fatalf("inter-attempt gap %v < Retry-After", got)
	}
}

func TestWatchComputesWindowedPDR(t *testing.T) {
	var tick atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := tick.Add(1)
		st := Stats{Expected: uint64(100 * n), Delivered: uint64(80 * n), EtherUp: true}
		json.NewEncoder(w).Encode(st)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewClient(srv.URL)
	ch := Watch(ctx, c, 10*time.Millisecond)

	var got []WatchSample
	for s := range ch {
		if s.Err != nil {
			t.Fatal(s.Err)
		}
		got = append(got, s)
		if len(got) == 3 {
			cancel()
			break
		}
	}
	if got[0].HasPDR {
		t.Fatal("first sample has PDR (no baseline yet)")
	}
	for _, s := range got[1:] {
		if !s.HasPDR {
			t.Fatalf("sample missing PDR: %+v", s)
		}
		if s.DeltaExpected != 100 || s.DeltaDelivered != 80 {
			t.Fatalf("deltas = %d/%d, want 100/80", s.DeltaDelivered, s.DeltaExpected)
		}
		if s.PDR < 0.79 || s.PDR > 0.81 {
			t.Fatalf("PDR = %v, want 0.8", s.PDR)
		}
	}
}

func TestScriptRequestRoundTrip(t *testing.T) {
	ctl := &fakeController{}
	srv := newTestServer(t, ctl, ServerConfig{})
	body := `{"script":{"outages":[{"node":0,"start_s":1,"duration_s":2}]},"timeScale":0.5,"seed":7}`
	resp := post(t, srv.URL, "/faults/script", body, nil)
	if resp.StatusCode != http.StatusOK {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		t.Fatalf("script = %d: %s", resp.StatusCode, b)
	}
	var res ScriptResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Events != 2 {
		t.Fatalf("result = %+v", res)
	}
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if len(ctl.scripts) != 1 || ctl.scripts[0].TimeScale != 0.5 || ctl.scripts[0].Seed != 7 {
		t.Fatalf("controller saw %+v", ctl.scripts)
	}
}
