// Package ctlplane is the live testbed's HTTP/JSON control plane: a small
// API that exposes a running fleet's state (nodes, links, delivery stats,
// health) and accepts mutations — link impairment, partitions, node
// kill/restart, and whole fault-script injection — against it while it
// serves traffic.
//
// The package splits three ways: Controller is the behavior a backend
// exposes (FleetController for a supervised fleet, MediumController for a
// bare etherd medium), Server maps it onto HTTP with validation, bounded
// request bodies, idempotent mutations, and load shedding, and Client is
// the retrying consumer the watch tooling and soak harness build on.
package ctlplane

import (
	"encoding/json"
	"errors"
)

// ErrUnsupported marks an operation the backing controller cannot perform
// (e.g. killing a daemon etherd does not manage). The server maps it to
// 501 Not Implemented.
var ErrUnsupported = errors.New("ctlplane: operation not supported by this controller")

// RequestError is a caller mistake — a reference to an unknown node, an
// invalid fault script — mapped to 400 Bad Request rather than 500.
type RequestError struct{ Msg string }

func (e RequestError) Error() string { return e.Msg }

// Controller is the behavior the HTTP server exposes. Implementations must
// be safe for concurrent use; every method may be called from any request.
type Controller interface {
	// Nodes returns per-node liveness and lifecycle accounting.
	Nodes() []NodeState
	// Links returns the configured link profiles and active partition.
	Links() LinksState
	// Stats returns cumulative medium and delivery counters.
	Stats() Stats
	// Health classifies the backend as "ok" or "degraded" — the admission
	// control input.
	Health() Health

	// Impair replaces one directed (or symmetric) link profile.
	Impair(ImpairRequest) error
	// Partition installs or clears the medium partition mask.
	Partition(PartitionRequest) error
	// KillNode stops a managed daemon; recovery is the supervisor's job.
	KillNode(node int) error
	// RestartNode revives a killed daemon immediately.
	RestartNode(node int) error
	// InjectScript compiles a fault script and arms it against the running
	// backend, offset from the moment of injection.
	InjectScript(ScriptRequest) (ScriptResult, error)
}

// NodeState is one node as the control plane reports it.
type NodeState struct {
	ID    int  `json:"id"`
	Alive bool `json:"alive"`
	// Protocol is the multicast protocol the node's daemon runs (empty for
	// backends that do not manage daemons).
	Protocol string `json:"protocol,omitempty"`
	// Kills/Restarts/DowntimeSeconds carry the cross-generation lifecycle
	// ledger (always zero for backends that do not manage daemons).
	Kills           int     `json:"kills,omitempty"`
	Restarts        int     `json:"restarts,omitempty"`
	DowntimeSeconds float64 `json:"downtimeSeconds,omitempty"`
}

// LinkProfileState is a link profile in wire form (times in milliseconds).
type LinkProfileState struct {
	DF       float64 `json:"df"`
	DelayMS  float64 `json:"delayMs,omitempty"`
	JitterMS float64 `json:"jitterMs,omitempty"`
	DupProb  float64 `json:"dupProb,omitempty"`
}

// LinkState is one explicitly configured directed link.
type LinkState struct {
	From int `json:"from"`
	To   int `json:"to"`
	LinkProfileState
}

// LinksState is the full link-table view: default profile, explicit
// entries, and the active partition's side-A node IDs (empty when whole).
type LinksState struct {
	Default   LinkProfileState `json:"default"`
	Links     []LinkState      `json:"links"`
	Partition []int            `json:"partition,omitempty"`
}

// EtherCounters mirrors the medium's frame accounting.
type EtherCounters struct {
	FramesIn      uint64 `json:"framesIn"`
	FramesOut     uint64 `json:"framesOut"`
	FramesDropped uint64 `json:"framesDropped"`
	FramesDup     uint64 `json:"framesDup"`
	Registrations uint64 `json:"registrations"`
}

// Stats is the cumulative state a poller diffs to see the fleet move:
// Expected/Delivered are monotone delivery counters whose windowed deltas
// give a live PDR estimate.
type Stats struct {
	UptimeSeconds float64       `json:"uptimeSeconds"`
	EtherUp       bool          `json:"etherUp"`
	NodesAlive    int           `json:"nodesAlive"`
	NodesTotal    int           `json:"nodesTotal"`
	Expected      uint64        `json:"expected"`
	Delivered     uint64        `json:"delivered"`
	Ether         EtherCounters `json:"ether"`
}

// Health states.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// Health is the admission-control verdict: degraded backends shed
// mutations (503 + Retry-After) until they recover.
type Health struct {
	Status        string  `json:"status"`
	EtherUp       bool    `json:"etherUp"`
	AliveFraction float64 `json:"aliveFraction"`
	Reason        string  `json:"reason,omitempty"`
	// Protocol is the multicast protocol the backend's daemons run (empty
	// for backends that do not manage daemons).
	Protocol string `json:"protocol,omitempty"`
}

// ImpairRequest replaces the profile of one directed link (both directions
// with Symmetric). DF is a pointer so "df": 0 — a dead link — is
// distinguishable from an omitted field, which is a validation error.
type ImpairRequest struct {
	From      int      `json:"from"`
	To        int      `json:"to"`
	DF        *float64 `json:"df"`
	DelayMS   float64  `json:"delayMs,omitempty"`
	JitterMS  float64  `json:"jitterMs,omitempty"`
	DupProb   float64  `json:"dupProb,omitempty"`
	Symmetric bool     `json:"symmetric,omitempty"`
}

// PartitionRequest installs a partition (SideA vs everyone else) or, with
// Clear, heals the active one.
type PartitionRequest struct {
	SideA []int `json:"sideA,omitempty"`
	Clear bool  `json:"clear,omitempty"`
}

// NodeRequest names the target of a kill or restart.
type NodeRequest struct {
	Node int `json:"node"`
}

// ScriptRequest injects a fault script (internal/faults JSON form) into the
// running backend. Script times are relative to the moment of injection;
// TimeScale maps virtual seconds to wall seconds (default 1).
type ScriptRequest struct {
	Script    json.RawMessage `json:"script"`
	TimeScale float64         `json:"timeScale,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
}

// ScriptResult reports what an accepted script compiled to.
type ScriptResult struct {
	// Events is the number of scheduled fault events.
	Events int `json:"events"`
	// SpanSeconds is the wall-clock span until the last event fires.
	SpanSeconds float64 `json:"spanSeconds"`
}
