package ctlplane

import (
	"context"
	"time"
)

// WatchSample is one tick of a Watch poll: the raw cumulative stats plus
// the deltas against the previous successful sample, from which PDR over
// the window is derived.
type WatchSample struct {
	// T is when the poll completed.
	T time.Time
	// Err is set when this tick's poll failed; the other fields are then
	// zero and the previous baseline is kept for the next tick.
	Err error
	// Stats is the raw cumulative snapshot.
	Stats Stats
	// DeltaExpected / DeltaDelivered are the counter increments since the
	// previous successful sample (zero on the first).
	DeltaExpected  uint64
	DeltaDelivered uint64
	// PDR is DeltaDelivered/DeltaExpected for this window; HasPDR is false
	// on the first sample and in windows with no expected deliveries.
	PDR    float64
	HasPDR bool
	// Anomaly is set on stream-sourced anomaly samples (WatchStream); the
	// polling Watch never sets it.
	Anomaly string
}

// Watch polls /stats at interval and streams delta samples until ctx is
// done, then closes the channel. Poll failures surface as samples with Err
// set — the stream keeps going, so a watcher rides out a restarting
// server. Both meshstat -watch and the soak smoke consume this.
func Watch(ctx context.Context, c *Client, interval time.Duration) <-chan WatchSample {
	if interval <= 0 {
		interval = time.Second
	}
	ch := make(chan WatchSample)
	go func() {
		defer close(ch)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var prev *Stats
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			st, err := c.Stats(ctx)
			s := WatchSample{T: time.Now(), Err: err}
			if err == nil {
				s.Stats = st
				if prev != nil && st.Expected >= prev.Expected && st.Delivered >= prev.Delivered {
					s.DeltaExpected = st.Expected - prev.Expected
					s.DeltaDelivered = st.Delivered - prev.Delivered
					if s.DeltaExpected > 0 {
						s.PDR = float64(s.DeltaDelivered) / float64(s.DeltaExpected)
						s.HasPDR = true
					}
				}
				cp := st
				prev = &cp
			}
			select {
			case ch <- s:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}
