package ctlplane

import (
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/packet"
)

// MediumController exposes a bare etherd medium — no managed daemons — to
// the control plane. Reads report the registered clients and frame
// counters; link and partition mutations apply to the shared table; node
// lifecycle and script injection are ErrUnsupported (etherd cannot kill
// daemons it does not own).
type MediumController struct {
	// LinksTable is the medium's shared link table.
	LinksTable *emu.LinkTable
	// Ether returns the current medium generation (nil while down).
	Ether func() *emu.Ether
	// StartedAt anchors UptimeSeconds.
	StartedAt time.Time
}

// ether resolves the current medium generation, tolerating a nil hook.
func (c *MediumController) ether() *emu.Ether {
	if c.Ether == nil {
		return nil
	}
	return c.Ether()
}

// Nodes implements Controller: every registered client, alive by virtue of
// being registered.
func (c *MediumController) Nodes() []NodeState {
	e := c.ether()
	if e == nil {
		return nil
	}
	clients := e.Clients()
	out := make([]NodeState, 0, len(clients))
	for _, id := range clients {
		out = append(out, NodeState{ID: int(id), Alive: true})
	}
	return out
}

// Links implements Controller.
func (c *MediumController) Links() LinksState {
	entries, def := c.LinksTable.Entries()
	out := LinksState{Default: profileState(def), Links: make([]LinkState, 0, len(entries))}
	for _, e := range entries {
		out.Links = append(out.Links, LinkState{
			From: int(e.From), To: int(e.To), LinkProfileState: profileState(e.Profile),
		})
	}
	for _, id := range c.LinksTable.Partition() {
		out.Partition = append(out.Partition, int(id))
	}
	return out
}

// Stats implements Controller. Expected/Delivered stay zero — the medium
// does not see end-to-end deliveries, only frames.
func (c *MediumController) Stats() Stats {
	s := Stats{}
	if !c.StartedAt.IsZero() {
		s.UptimeSeconds = time.Since(c.StartedAt).Seconds()
	}
	if e := c.ether(); e != nil {
		es := e.Stats()
		s.EtherUp = true
		s.NodesAlive = len(e.Clients())
		s.NodesTotal = s.NodesAlive
		s.Ether = EtherCounters{
			FramesIn:      es.FramesIn,
			FramesOut:     es.FramesOut,
			FramesDropped: es.FramesDropped,
			FramesDup:     es.FramesDup,
			Registrations: es.Registrations,
		}
	}
	return s
}

// Health implements Controller: degraded only while the medium is down.
func (c *MediumController) Health() Health {
	h := Health{Status: HealthOK, EtherUp: c.ether() != nil, AliveFraction: 1}
	if !h.EtherUp {
		h.Status = HealthDegraded
		h.Reason = "ether down"
	}
	return h
}

// Impair implements Controller. The medium has no node roster, so any pair
// is legal.
func (c *MediumController) Impair(req ImpairRequest) error {
	p := emu.LinkProfile{
		DF:      *req.DF,
		Delay:   time.Duration(req.DelayMS * float64(time.Millisecond)),
		Jitter:  time.Duration(req.JitterMS * float64(time.Millisecond)),
		DupProb: req.DupProb,
	}
	from, to := packet.NodeID(req.From), packet.NodeID(req.To)
	c.LinksTable.SetProfile(from, to, p)
	if req.Symmetric {
		c.LinksTable.SetProfile(to, from, p)
	}
	return nil
}

// Partition implements Controller.
func (c *MediumController) Partition(req PartitionRequest) error {
	if req.Clear {
		c.LinksTable.ClearPartition()
		return nil
	}
	side := make([]packet.NodeID, 0, len(req.SideA))
	for _, id := range req.SideA {
		side = append(side, packet.NodeID(id))
	}
	c.LinksTable.SetPartition(side)
	return nil
}

// KillNode implements Controller: unsupported, etherd owns no daemons.
func (c *MediumController) KillNode(int) error { return ErrUnsupported }

// RestartNode implements Controller: unsupported.
func (c *MediumController) RestartNode(int) error { return ErrUnsupported }

// InjectScript implements Controller: unsupported (scripts need the node
// roster and a supervisor; use -fault-script at etherd startup instead).
func (c *MediumController) InjectScript(ScriptRequest) (ScriptResult, error) {
	return ScriptResult{}, ErrUnsupported
}
