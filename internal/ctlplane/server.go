package ctlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Server defaults.
const (
	// DefaultMaxBody bounds mutation request bodies; fault scripts are the
	// largest legitimate payload and stay far under this.
	DefaultMaxBody = 256 << 10
	// DefaultIdempotencyCapacity bounds the replay cache.
	DefaultIdempotencyCapacity = 1024
)

// IdempotencyHeader carries the client token that makes a mutation
// replay-safe: a retried request with the same token returns the recorded
// response instead of mutating again.
const IdempotencyHeader = "Idempotency-Key"

// ReplayHeader marks a response served from the idempotency cache.
const ReplayHeader = "X-Idempotent-Replay"

// ServerConfig tunes the control-plane HTTP server.
type ServerConfig struct {
	// MaxBody caps mutation request bodies in bytes (default 256 KiB).
	MaxBody int64
	// RetryAfterSeconds is the Retry-After hint sent with shed requests
	// (default 2).
	RetryAfterSeconds int
	// IdempotencyCapacity bounds the replay cache; the oldest entry is
	// evicted past it (default 1024).
	IdempotencyCapacity int
	// StreamInterval is the /stats/stream sampling period (default 1s).
	StreamInterval time.Duration
	// StreamReplay bounds the server-side event ring used for
	// Last-Event-ID resume (default 256 events).
	StreamReplay int
	// StreamHeartbeat is the idle keep-alive comment period on
	// /stats/stream (default 15s).
	StreamHeartbeat time.Duration
	// MaxStreamClients bounds concurrent /stats/stream subscribers;
	// excess connections are shed with 503 + Retry-After (default 32).
	MaxStreamClients int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 2
	}
	if c.IdempotencyCapacity <= 0 {
		c.IdempotencyCapacity = DefaultIdempotencyCapacity
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = time.Second
	}
	if c.StreamReplay <= 0 {
		c.StreamReplay = 256
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.MaxStreamClients <= 0 {
		c.MaxStreamClients = 32
	}
	return c
}

// Server maps a Controller onto HTTP/JSON:
//
//	GET  /nodes           node liveness + lifecycle accounting
//	GET  /links           link profiles + active partition
//	GET  /stats           cumulative medium/delivery counters
//	GET  /health          ok | degraded (always 200; the body carries it)
//	POST /links/impair    replace one link profile
//	POST /links/partition       install or clear the partition mask
//	POST /nodes/kill      stop a managed daemon
//	POST /nodes/restart   revive a killed daemon
//	POST /faults/script   inject a fault script into the running backend
//
// Mutations are validated per request, bodies are bounded, and a client
// Idempotency-Key token makes them replay-safe. While the backend reports
// degraded health, mutations are shed with 503 + Retry-After — reads keep
// working so operators can watch the recovery.
type Server struct {
	ctl Controller
	cfg ServerConfig
	mux *http.ServeMux

	// stream is the /stats/stream fan-out hub; done tears every open
	// stream down on Close so an embedding http.Server can Shutdown.
	stream    *streamHub
	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	idem  map[string]idemEntry
	order []string // insertion order, for bounded eviction
}

type idemEntry struct {
	status int
	body   []byte
}

// NewServer builds the control-plane server over ctl.
func NewServer(ctl Controller, cfg ServerConfig) *Server {
	s := &Server{
		ctl:  ctl,
		cfg:  cfg.withDefaults(),
		mux:  http.NewServeMux(),
		idem: make(map[string]idemEntry),
		done: make(chan struct{}),
	}
	s.stream = newStreamHub(ctl, s.cfg, s.done)
	s.mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ctl.Nodes())
	})
	s.mux.HandleFunc("GET /links", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ctl.Links())
	})
	s.mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ctl.Stats())
	})
	s.mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		// Always 200: a degraded verdict is a valid answer, not a server
		// failure. Enforcement happens on the mutation paths.
		writeJSON(w, http.StatusOK, s.ctl.Health())
	})
	s.mux.HandleFunc("GET /stats/stream", s.handleStream)
	s.mux.HandleFunc("POST /links/impair", s.mutation(s.postImpair))
	s.mux.HandleFunc("POST /links/partition", s.mutation(s.postPartition))
	s.mux.HandleFunc("POST /nodes/kill", s.mutation(s.postKill))
	s.mux.HandleFunc("POST /nodes/restart", s.mutation(s.postRestart))
	s.mux.HandleFunc("POST /faults/script", s.mutation(s.postScript))
	return s
}

// Handler returns the HTTP handler to serve.
func (s *Server) Handler() http.Handler { return s.mux }

// Close tears down every open /stats/stream connection and stops the
// stream producer. Call it before shutting down the embedding http.Server:
// SSE handlers otherwise never return and Shutdown would hang until its
// deadline. Close is idempotent; the request/response endpoints keep
// working.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		status, body = http.StatusInternalServerError, []byte(`{"error":"encode response"}`)
	}
	writeRaw(w, status, body)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// mutation wraps a mutating handler with the shared policy, in order:
// idempotent replay (a completed mutation's recorded response is always
// served, even while degraded — the work already happened), admission
// control (degraded backends shed new work with 503 + Retry-After, which
// is deliberately NOT recorded so the client's retry gets a fresh
// verdict), body bounding, and response recording.
func (s *Server) mutation(h func(r *http.Request) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := ""
		if tok := r.Header.Get(IdempotencyHeader); tok != "" {
			key = r.Method + " " + r.URL.Path + " " + tok
			if e, ok := s.replay(key); ok {
				w.Header().Set(ReplayHeader, "true")
				writeRaw(w, e.status, e.body)
				return
			}
		}
		if h := s.ctl.Health(); h.Status != HealthOK {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "degraded: " + h.Reason})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		status, v := h(r)
		body, err := json.Marshal(v)
		if err != nil {
			status, body = http.StatusInternalServerError, []byte(`{"error":"encode response"}`)
		}
		if key != "" {
			s.record(key, status, body)
		}
		writeRaw(w, status, body)
	}
}

func (s *Server) replay(key string) (idemEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idem[key]
	return e, ok
}

func (s *Server) record(key string, status int, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idem[key]; ok {
		return
	}
	s.idem[key] = idemEntry{status: status, body: body}
	s.order = append(s.order, key)
	for len(s.order) > s.cfg.IdempotencyCapacity {
		delete(s.idem, s.order[0])
		s.order = s.order[1:]
	}
}

// decodeBody strictly decodes a JSON request body into v: unknown fields,
// trailing garbage, and oversized bodies are all errors.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body over %d bytes", tooBig.Limit)
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data")
	}
	return nil
}

// mapErr converts a controller error to an HTTP response.
func mapErr(err error) (int, any) {
	var reqErr RequestError
	switch {
	case errors.Is(err, ErrUnsupported):
		return http.StatusNotImplemented, apiError{Error: err.Error()}
	case errors.As(err, &reqErr):
		return http.StatusBadRequest, apiError{Error: reqErr.Msg}
	default:
		return http.StatusInternalServerError, apiError{Error: err.Error()}
	}
}

func (s *Server) postImpair(r *http.Request) (int, any) {
	var req ImpairRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	switch {
	case req.DF == nil:
		return http.StatusBadRequest, apiError{Error: "df is required"}
	case *req.DF < 0 || *req.DF > 1:
		return http.StatusBadRequest, apiError{Error: fmt.Sprintf("df %g out of range [0, 1]", *req.DF)}
	case req.DupProb < 0 || req.DupProb > 1:
		return http.StatusBadRequest, apiError{Error: fmt.Sprintf("dupProb %g out of range [0, 1]", req.DupProb)}
	case req.DelayMS < 0 || req.JitterMS < 0:
		return http.StatusBadRequest, apiError{Error: "delayMs and jitterMs must be non-negative"}
	}
	if err := s.ctl.Impair(req); err != nil {
		return mapErr(err)
	}
	return http.StatusOK, s.ctl.Links()
}

func (s *Server) postPartition(r *http.Request) (int, any) {
	var req PartitionRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	if !req.Clear && len(req.SideA) == 0 {
		return http.StatusBadRequest, apiError{Error: "sideA must be non-empty (or set clear)"}
	}
	if req.Clear && len(req.SideA) > 0 {
		return http.StatusBadRequest, apiError{Error: "clear and sideA are mutually exclusive"}
	}
	if err := s.ctl.Partition(req); err != nil {
		return mapErr(err)
	}
	return http.StatusOK, s.ctl.Links()
}

func (s *Server) postKill(r *http.Request) (int, any) {
	var req NodeRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	if err := s.ctl.KillNode(req.Node); err != nil {
		return mapErr(err)
	}
	return http.StatusOK, struct {
		Killed int `json:"killed"`
	}{Killed: req.Node}
}

func (s *Server) postRestart(r *http.Request) (int, any) {
	var req NodeRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	if err := s.ctl.RestartNode(req.Node); err != nil {
		return mapErr(err)
	}
	return http.StatusOK, struct {
		Restarted int `json:"restarted"`
	}{Restarted: req.Node}
}

func (s *Server) postScript(r *http.Request) (int, any) {
	var req ScriptRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, apiError{Error: err.Error()}
	}
	switch {
	case len(req.Script) == 0:
		return http.StatusBadRequest, apiError{Error: "script is required"}
	case req.TimeScale < 0:
		return http.StatusBadRequest, apiError{Error: fmt.Sprintf("timeScale %g must be positive", req.TimeScale)}
	}
	res, err := s.ctl.InjectScript(req)
	if err != nil {
		return mapErr(err)
	}
	return http.StatusOK, res
}
