package ctlplane

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the retrying control-plane consumer: transient failures
// (network errors, 5xx) are retried with capped exponential backoff, a
// Retry-After hint from a shedding server stretches the wait, and every
// mutation carries an auto-generated Idempotency-Key so a retry after a
// lost response cannot double-apply.
type Client struct {
	// Base is the server's base URL ("http://127.0.0.1:8080").
	Base string
	// HTTPClient defaults to a 5 s-timeout client.
	HTTPClient *http.Client
	// Retries is how many times a failed request is re-sent (default 4,
	// i.e. up to 5 attempts).
	Retries int
	// Backoff and BackoffMax bound the capped exponential retry delay
	// (defaults 100 ms and 2 s).
	Backoff    time.Duration
	BackoffMax time.Duration
}

// NewClient builds a client with default timeout/retry/backoff policy.
func NewClient(base string) *Client {
	return &Client{
		Base:       strings.TrimRight(base, "/"),
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retries:    4,
		Backoff:    100 * time.Millisecond,
		BackoffMax: 2 * time.Second,
	}
}

// APIError is a terminal (non-retryable) server response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ctlplane: server returned %d: %s", e.Status, e.Message)
}

// newToken draws a fresh idempotency token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; a time-derived token only
		// weakens replay protection, it does not break requests.
		return strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}

// retryable classifies a status code: 5xx may succeed on retry, everything
// else in the error range is the caller's mistake.
func retryable(status int) bool {
	return status >= 500 && status != http.StatusNotImplemented
}

// do runs one logical request with the retry policy. A non-nil out is
// filled from the success response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("ctlplane: encode request: %w", err)
		}
	}
	token := ""
	if method != http.MethodGet {
		token = newToken()
	}
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > c.BackoffMax {
				backoff = c.BackoffMax
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("ctlplane: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if token != "" {
			// The same token on every attempt is the point: a retry after
			// a lost response replays, it does not re-mutate.
			req.Header.Set(IdempotencyHeader, token)
		}
		resp, err := c.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("ctlplane: decode %s response: %w", path, err)
			}
			return nil
		}
		msg := strings.TrimSpace(string(data))
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		if !retryable(resp.StatusCode) {
			return &APIError{Status: resp.StatusCode, Message: msg}
		}
		lastErr = &APIError{Status: resp.StatusCode, Message: msg}
		// A shedding server says when to come back; never retry sooner,
		// and keep the wait within the client's cap.
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			if hint := time.Duration(ra) * time.Second; hint > backoff {
				backoff = hint
			}
			if backoff > c.BackoffMax {
				backoff = c.BackoffMax
			}
		}
	}
	return fmt.Errorf("ctlplane: %s %s failed after %d attempts: %w", method, path, c.Retries+1, lastErr)
}

// Nodes fetches per-node state.
func (c *Client) Nodes(ctx context.Context) ([]NodeState, error) {
	var out []NodeState
	err := c.do(ctx, http.MethodGet, "/nodes", nil, &out)
	return out, err
}

// Links fetches the link-table state.
func (c *Client) Links(ctx context.Context) (LinksState, error) {
	var out LinksState
	err := c.do(ctx, http.MethodGet, "/links", nil, &out)
	return out, err
}

// Stats fetches the cumulative counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Health fetches the health verdict (a degraded verdict is a successful
// call; only transport or server failures error).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/health", nil, &out)
	return out, err
}

// Impair replaces one link profile.
func (c *Client) Impair(ctx context.Context, req ImpairRequest) (LinksState, error) {
	var out LinksState
	err := c.do(ctx, http.MethodPost, "/links/impair", req, &out)
	return out, err
}

// Partition installs or clears the partition mask.
func (c *Client) Partition(ctx context.Context, req PartitionRequest) (LinksState, error) {
	var out LinksState
	err := c.do(ctx, http.MethodPost, "/links/partition", req, &out)
	return out, err
}

// KillNode stops a managed daemon.
func (c *Client) KillNode(ctx context.Context, node int) error {
	return c.do(ctx, http.MethodPost, "/nodes/kill", NodeRequest{Node: node}, nil)
}

// RestartNode revives a killed daemon.
func (c *Client) RestartNode(ctx context.Context, node int) error {
	return c.do(ctx, http.MethodPost, "/nodes/restart", NodeRequest{Node: node}, nil)
}

// InjectScript injects a fault script into the running backend.
func (c *Client) InjectScript(ctx context.Context, req ScriptRequest) (ScriptResult, error) {
	var out ScriptResult
	err := c.do(ctx, http.MethodPost, "/faults/script", req, &out)
	return out, err
}
