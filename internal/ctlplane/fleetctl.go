package ctlplane

import (
	"fmt"
	"time"

	"meshcast/internal/emu"
	"meshcast/internal/faults"
	"meshcast/internal/packet"
)

// FleetControllerConfig tunes the fleet-backed controller.
type FleetControllerConfig struct {
	// AliveWindow is how recent a daemon's protocol activity must be to
	// report alive (default 2 s, matching the supervisor's default).
	AliveWindow time.Duration
	// DegradedBelow is the alive fraction under which Health reports
	// degraded and mutations are shed (default 0.5).
	DegradedBelow float64
	// ScriptSlack extends an injected script's impairment-hook lifetime
	// past its last event, covering fault windows that outlast their onset
	// (default 1 min).
	ScriptSlack time.Duration
}

func (c FleetControllerConfig) withDefaults() FleetControllerConfig {
	if c.AliveWindow <= 0 {
		c.AliveWindow = 2 * time.Second
	}
	if c.DegradedBelow <= 0 {
		c.DegradedBelow = 0.5
	}
	if c.ScriptSlack <= 0 {
		c.ScriptSlack = time.Minute
	}
	return c
}

// FleetController exposes a supervised live fleet to the control plane:
// reads poll the fleet's lock-free accounting, link mutations go to the
// shared link table (surviving ether restarts), and injected fault scripts
// split into an impairment hook (link faults, partitions) plus supervisor
// schedule events (kills, restarts, ether bounces).
type FleetController struct {
	fleet *emu.Fleet
	sup   *emu.FleetSupervisor
	cfg   FleetControllerConfig
}

// NewFleetController wraps a fleet and its supervisor. sup may be nil, in
// which case injected scripts impair links but cannot kill nodes or bounce
// the ether.
func NewFleetController(fleet *emu.Fleet, sup *emu.FleetSupervisor, cfg FleetControllerConfig) *FleetController {
	return &FleetController{fleet: fleet, sup: sup, cfg: cfg.withDefaults()}
}

// Nodes implements Controller.
func (c *FleetController) Nodes() []NodeState {
	ids := c.fleet.NodeIDs()
	out := make([]NodeState, 0, len(ids))
	for _, id := range ids {
		acc := c.fleet.NodeStats(id)
		out = append(out, NodeState{
			ID:              int(id),
			Alive:           c.fleet.DaemonAlive(id, c.cfg.AliveWindow),
			Protocol:        c.fleet.Protocol(),
			Kills:           acc.Kills,
			Restarts:        acc.Restarts,
			DowntimeSeconds: acc.Downtime.Seconds(),
		})
	}
	return out
}

// Links implements Controller.
func (c *FleetController) Links() LinksState {
	entries, def := c.fleet.Links().Entries()
	out := LinksState{Default: profileState(def), Links: make([]LinkState, 0, len(entries))}
	for _, e := range entries {
		out.Links = append(out.Links, LinkState{
			From: int(e.From), To: int(e.To), LinkProfileState: profileState(e.Profile),
		})
	}
	for _, id := range c.fleet.Links().Partition() {
		out.Partition = append(out.Partition, int(id))
	}
	return out
}

func profileState(p emu.LinkProfile) LinkProfileState {
	return LinkProfileState{
		DF:       p.DF,
		DelayMS:  float64(p.Delay) / float64(time.Millisecond),
		JitterMS: float64(p.Jitter) / float64(time.Millisecond),
		DupProb:  p.DupProb,
	}
}

func (c *FleetController) aliveCount() (alive, total int) {
	ids := c.fleet.NodeIDs()
	for _, id := range ids {
		if c.fleet.DaemonAlive(id, c.cfg.AliveWindow) {
			alive++
		}
	}
	return alive, len(ids)
}

// Stats implements Controller.
func (c *FleetController) Stats() Stats {
	expected, delivered := c.fleet.DeliveryEstimate()
	es := c.fleet.EtherStats()
	alive, total := c.aliveCount()
	s := Stats{
		EtherUp:    c.fleet.EtherUp(),
		NodesAlive: alive,
		NodesTotal: total,
		Expected:   expected,
		Delivered:  delivered,
		Ether: EtherCounters{
			FramesIn:      es.FramesIn,
			FramesOut:     es.FramesOut,
			FramesDropped: es.FramesDropped,
			FramesDup:     es.FramesDup,
			Registrations: es.Registrations,
		},
	}
	if start := c.fleet.StartTime(); !start.IsZero() {
		s.UptimeSeconds = time.Since(start).Seconds()
	}
	return s
}

// Health implements Controller: degraded when the medium is down or too few
// daemons are alive to call the fleet functional.
func (c *FleetController) Health() Health {
	alive, total := c.aliveCount()
	h := Health{Status: HealthOK, EtherUp: c.fleet.EtherUp(), Protocol: c.fleet.Protocol()}
	if total > 0 {
		h.AliveFraction = float64(alive) / float64(total)
	}
	switch {
	case !h.EtherUp:
		h.Status = HealthDegraded
		h.Reason = "ether down"
	case h.AliveFraction < c.cfg.DegradedBelow:
		h.Status = HealthDegraded
		h.Reason = fmt.Sprintf("alive fraction %.2f below %.2f", h.AliveFraction, c.cfg.DegradedBelow)
	}
	return h
}

// node maps a wire node ID to a fleet node, rejecting unknowns.
func (c *FleetController) node(id int) (packet.NodeID, error) {
	for _, n := range c.fleet.NodeIDs() {
		if int(n) == id {
			return n, nil
		}
	}
	return 0, RequestError{Msg: fmt.Sprintf("unknown node %d", id)}
}

// Impair implements Controller.
func (c *FleetController) Impair(req ImpairRequest) error {
	from, err := c.node(req.From)
	if err != nil {
		return err
	}
	to, err := c.node(req.To)
	if err != nil {
		return err
	}
	p := emu.LinkProfile{
		DF:      *req.DF,
		Delay:   time.Duration(req.DelayMS * float64(time.Millisecond)),
		Jitter:  time.Duration(req.JitterMS * float64(time.Millisecond)),
		DupProb: req.DupProb,
	}
	c.fleet.Links().SetProfile(from, to, p)
	if req.Symmetric {
		c.fleet.Links().SetProfile(to, from, p)
	}
	return nil
}

// Partition implements Controller.
func (c *FleetController) Partition(req PartitionRequest) error {
	if req.Clear {
		c.fleet.Links().ClearPartition()
		return nil
	}
	side := make([]packet.NodeID, 0, len(req.SideA))
	for _, id := range req.SideA {
		n, err := c.node(id)
		if err != nil {
			return err
		}
		side = append(side, n)
	}
	c.fleet.Links().SetPartition(side)
	return nil
}

// KillNode implements Controller. The kill is deliberately *unscheduled*:
// the supervisor's watchdog notices the dead daemon and revives it after
// its UnhealthyAfter budget — the recovery path soak runs exercise.
func (c *FleetController) KillNode(node int) error {
	id, err := c.node(node)
	if err != nil {
		return err
	}
	return c.fleet.StopDaemon(id)
}

// RestartNode implements Controller (no-op if the daemon is already up).
func (c *FleetController) RestartNode(node int) error {
	id, err := c.node(node)
	if err != nil {
		return err
	}
	if err := c.fleet.RestartDaemon(id); err != nil {
		return RequestError{Msg: err.Error()}
	}
	return nil
}

// InjectScript implements Controller: the script compiles against the
// fleet's node list (bad scripts fail here with the offending event named),
// its link faults and partitions join the live impairment chain, and its
// node/ether events merge into the supervisor's schedule, all offset from
// the moment of injection.
func (c *FleetController) InjectScript(req ScriptRequest) (ScriptResult, error) {
	start := c.fleet.StartTime()
	if start.IsZero() {
		return ScriptResult{}, RequestError{Msg: "fleet not running"}
	}
	plan, err := faults.ParsePlan(req.Script)
	if err != nil {
		return ScriptResult{}, RequestError{Msg: err.Error()}
	}
	chaos, err := emu.NewChaos(emu.ChaosConfig{
		Plan: plan, Seed: req.Seed, TimeScale: req.TimeScale,
	}, c.fleet.NodeIDs())
	if err != nil {
		return ScriptResult{}, RequestError{Msg: err.Error()}
	}
	now := time.Now()
	chaos.Begin(now)
	events := chaos.Events()
	var span time.Duration
	if len(events) > 0 {
		span = events[len(events)-1].At
	}
	c.fleet.AddImpairment(chaos.DropProb, now.Add(span+c.cfg.ScriptSlack))
	if c.sup != nil {
		offset := now.Sub(start)
		shifted := make([]emu.ChaosEvent, len(events))
		for i, ev := range events {
			ev.At += offset
			shifted[i] = ev
		}
		c.sup.Inject(shifted)
	}
	return ScriptResult{Events: len(events), SpanSeconds: span.Seconds()}, nil
}
