package soak

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/telemetry"
)

// TestSoakShutdownOrder runs a tiny soak and checks the graceful-shutdown
// contract: control listener first, then fleet stop, then ether drain,
// then the final telemetry sample + manifest — in exactly that order —
// and that the teardown leaks no goroutines.
func TestSoakShutdownOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (seconds)")
	}
	baseline := runtime.NumGoroutine()

	var mu sync.Mutex
	var steps []string
	dir := t.TempDir()
	cfg := Config{
		Nodes:          6,
		Seed:           3,
		SendInterval:   20 * time.Millisecond,
		StartStagger:   time.Millisecond,
		Listen:         "127.0.0.1:0",
		TelemetryDir:   dir,
		SampleInterval: 200 * time.Millisecond,
		RotateEvery:    -1,
		trace: func(step string) {
			mu.Lock()
			steps = append(steps, step)
			mu.Unlock()
		},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()

	// The control plane must be live while the fleet runs.
	c := ctlplane.NewClient("http://" + r.Addr())
	reqCtx, reqCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer reqCancel()
	h, err := c.Health(reqCtx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status == "" {
		t.Fatal("empty health verdict")
	}

	time.Sleep(1500 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := append([]string(nil), steps...)
	mu.Unlock()
	want := []string{"control-stop", "fleet-stop", "ether-drain", "telemetry-final"}
	if len(got) != len(want) {
		t.Fatalf("shutdown steps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shutdown step %d = %q, want %q (full order %v)", i, got[i], want[i], got)
		}
	}

	// The control listener must actually be closed.
	if _, err := http.Get("http://" + r.Addr() + "/health"); err == nil {
		t.Fatal("control listener still serving after shutdown")
	}

	// The final flush must have produced a manifest with samples.
	m, err := telemetry.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Samples < 2 {
		t.Fatalf("manifest samples = %d, want >= 2", m.Samples)
	}
	if _, ok := m.Derived["availability"]; !ok {
		t.Fatal("manifest missing availability")
	}
	series, err := telemetry.LoadAllSeries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != m.Samples {
		t.Fatalf("series has %d samples, manifest says %d", len(series), m.Samples)
	}

	waitDrain := time.After(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		select {
		case <-waitDrain:
			t.Fatalf("goroutines: %d, baseline %d", runtime.NumGoroutine(), baseline)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestSoakRotation checks that a short rotation period seals numbered
// segments and LoadAllSeries stitches them back together.
func TestSoakRotation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (seconds)")
	}
	dir := t.TempDir()
	r, err := New(Config{
		Nodes:          6,
		Seed:           4,
		SendInterval:   50 * time.Millisecond,
		StartStagger:   time.Millisecond,
		TelemetryDir:   dir,
		SampleInterval: 100 * time.Millisecond,
		RotateEvery:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	if err := r.Run(ctx); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.SeriesSegments < 2 {
		t.Fatalf("series segments = %d, want >= 2", m.SeriesSegments)
	}
	if seg := filepath.Join(dir, "series-0000.jsonl"); !fileExists(seg) {
		t.Fatalf("missing sealed segment %s", seg)
	}
	series, err := telemetry.LoadAllSeries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != m.Samples {
		t.Fatalf("stitched series = %d samples, manifest says %d", len(series), m.Samples)
	}
	for i := 1; i < len(series); i++ {
		if series[i].T < series[i-1].T {
			t.Fatalf("stitched series out of order at %d: %v after %v", i, series[i].T, series[i-1].T)
		}
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
