// Package soak runs long-lived supervised fleets: hundreds of live odmrpd
// daemons on one generated floor, started staggered, watched by the
// FleetSupervisor, exporting rolling telemetry, and mutable over the
// ctlplane HTTP API while they serve traffic.
//
// Both `etherd -soak` and the CI soak smoke drive this exact runner, so
// the code path exercised in CI is the one operators run.
package soak

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"meshcast/internal/ctlplane"
	"meshcast/internal/emu"
	"meshcast/internal/metric"
	"meshcast/internal/telemetry"
	"meshcast/internal/testbed"
)

// Config describes a soak run.
type Config struct {
	// Nodes is the daemon count (min 4; hundreds are fine).
	Nodes int
	// Groups is the number of multicast sessions laid out on the floor
	// (default max(2, Nodes/12) so traffic scales with the fleet).
	Groups int
	// Metric selects the routing metric (default metric.SPP).
	Metric metric.Kind
	// Protocol selects the multicast routing protocol by registered name;
	// empty means multicast.Default (ODMRP).
	Protocol string
	// Seed drives floor generation, the medium, and protocol randomness.
	Seed uint64
	// SendInterval is each source's CBR gap (default 100 ms — soak runs
	// favor endurance over throughput).
	SendInterval time.Duration
	// StartStagger spaces daemon starts (default 20 ms) so a large fleet
	// ramps instead of thundering.
	StartStagger time.Duration
	// Listen is the control-plane address ("127.0.0.1:0" for an ephemeral
	// port; empty disables the API).
	Listen string
	// TelemetryDir enables rolling telemetry export when non-empty.
	TelemetryDir string
	// SampleInterval is the telemetry sampling period (default 1 s).
	SampleInterval time.Duration
	// RotateEvery seals the series stream into a numbered segment at this
	// period (default 5 min; <0 disables rotation).
	RotateEvery time.Duration
	// Supervisor tunes watchdog and restart backoff behavior.
	Supervisor emu.SupervisorConfig
	// Label names the run in the telemetry manifest.
	Label string

	// trace, when set, observes the graceful-shutdown steps in order —
	// the shutdown-order test's hook.
	trace func(step string)
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = metric.SPP
	}
	if c.Groups == 0 {
		c.Groups = max(2, c.Nodes/12)
	}
	if c.SendInterval <= 0 {
		c.SendInterval = 100 * time.Millisecond
	}
	if c.StartStagger == 0 {
		c.StartStagger = 20 * time.Millisecond
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.RotateEvery == 0 {
		c.RotateEvery = 5 * time.Minute
	}
	if c.Label == "" {
		c.Label = fmt.Sprintf("soak %d nodes %v", c.Nodes, c.Metric)
	}
	return c
}

// Runner owns one soak run's moving parts.
type Runner struct {
	cfg       Config
	fleet     *emu.Fleet
	sup       *emu.FleetSupervisor
	rec       *telemetry.Recorder
	flight    *telemetry.FlightRecorder
	coreWatch *telemetry.CounterWatch
	srv       *ctlplane.Server
	listener  net.Listener
	httpSrv   *http.Server
}

// New builds the fleet, supervisor, control listener, and telemetry
// recorder. Call Run to start everything; Run also tears it all down.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	scenario, err := testbed.GenerateFloor(testbed.FloorConfig{
		Nodes:  cfg.Nodes,
		Seed:   cfg.Seed,
		Groups: cfg.Groups,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	fleet, err := emu.NewFleet(emu.FleetConfig{
		Scenario:     scenario,
		Metric:       cfg.Metric,
		Protocol:     cfg.Protocol,
		SendInterval: cfg.SendInterval,
		StartStagger: cfg.StartStagger,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	r := &Runner{
		cfg:   cfg,
		fleet: fleet,
		sup:   emu.NewFleetSupervisor(fleet, nil, cfg.Supervisor),
	}
	if cfg.Listen != "" {
		ctl := ctlplane.NewFleetController(fleet, r.sup, ctlplane.FleetControllerConfig{})
		r.srv = ctlplane.NewServer(ctl, ctlplane.ServerConfig{})
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			fleet.Close()
			return nil, fmt.Errorf("soak: control listener: %w", err)
		}
		r.listener = ln
		r.httpSrv = &http.Server{Handler: r.srv.Handler()}
	}
	if cfg.TelemetryDir != "" {
		rec, err := telemetry.NewRecorder(cfg.TelemetryDir, cfg.SampleInterval)
		if err != nil {
			r.close()
			return nil, fmt.Errorf("soak: %w", err)
		}
		emu.InstrumentFleet(rec.Registry(), fleet, nil, r.sup)
		r.rec = rec
		// The flight recorder keeps the black box around anomalies: recent
		// stats windows and supervisor events, dumped into the telemetry
		// directory when a trigger fires. Its core-handover watch must
		// touch the registry here, before Run's sampler goroutine starts
		// reading it — instrument creation mutates the registry map.
		r.flight = telemetry.NewFlightRecorder(cfg.TelemetryDir, 0)
		r.coreWatch = telemetry.NewCounterWatch(rec.Registry().Counter("mcst.core_handovers"))
	}
	return r, nil
}

// Addr returns the control-plane listen address (empty when disabled).
func (r *Runner) Addr() string {
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

// Fleet exposes the underlying fleet (result collection, tests).
func (r *Runner) Fleet() *emu.Fleet { return r.fleet }

// FlightDumps reports how many anomaly flight dumps this run has written
// (0 when telemetry is disabled).
func (r *Runner) FlightDumps() int { return r.flight.Dumps() }

// Report summarizes supervision outcomes for the given elapsed run time.
func (r *Runner) Report(elapsed time.Duration) emu.SupervisorReport {
	return r.sup.Report(elapsed)
}

func (r *Runner) traceStep(step string) {
	if r.cfg.trace != nil {
		r.cfg.trace(step)
	}
}

func (r *Runner) close() {
	if r.listener != nil {
		r.listener.Close()
	}
	r.fleet.Close()
}

// Run drives the soak until ctx is canceled, then shuts down gracefully in
// a fixed order: (1) the control listener stops accepting mutations,
// (2) the fleet and supervisor stop, (3) the ether drains so in-flight
// delayed deliveries land, (4) a final telemetry sample is taken and the
// manifest written. Only then are sockets closed. The order matters: the
// final sample must still see the drained deliveries, and no control
// mutation may race the teardown.
func (r *Runner) Run(ctx context.Context) error {
	start := time.Now()

	// The fleet runs on its own context so shutdown order is ours, not
	// the scheduler's.
	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	supDone := make(chan error, 1)
	go func() { supDone <- r.sup.Run(fleetCtx) }()
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		r.fleet.Run(fleetCtx)
	}()

	var serveDone chan error
	if r.httpSrv != nil {
		serveDone = make(chan error, 1)
		go func() { serveDone <- r.httpSrv.Serve(r.listener) }()
	}

	var sampleDone chan struct{}
	var stopSampling context.CancelFunc
	if r.rec != nil {
		var sampleCtx context.Context
		sampleCtx, stopSampling = context.WithCancel(context.Background())
		defer stopSampling()
		sampleDone = make(chan struct{})
		go func() {
			defer close(sampleDone)
			telemetry.RunWall(sampleCtx, r.rec.Sampler(), start)
		}()
	}

	var rotate *time.Ticker
	var rotateC <-chan time.Time
	if r.rec != nil && r.cfg.RotateEvery > 0 {
		rotate = time.NewTicker(r.cfg.RotateEvery)
		defer rotate.Stop()
		rotateC = rotate.C
	}

	// Anomaly watch: each tick records the stats window into the flight
	// recorder's ring and fires a dump on a windowed PDR dip, a core
	// handover, or a supervisor watchdog restart. Dumps are best-effort
	// (cooldown-suppressed, never fail the run).
	var anomalyC <-chan time.Time
	var dip telemetry.PDRDipDetector
	var prevExpected, prevDelivered uint64
	seenEvents := 0
	if r.flight != nil {
		watch := time.NewTicker(r.cfg.SampleInterval)
		defer watch.Stop()
		anomalyC = watch.C
	}

	var firstErr error
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-rotateC:
			if _, err := r.rec.Rotate(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-anomalyC:
			expected, delivered := r.fleet.DeliveryEstimate()
			dExp, dDel := expected-prevExpected, delivered-prevDelivered
			prevExpected, prevDelivered = expected, delivered
			if dExp > 0 {
				pdr := float64(dDel) / float64(dExp)
				r.flight.Record("stats", "window expected=%d delivered=%d pdr=%.3f", dExp, dDel, pdr)
				if dip.Observe(pdr) {
					r.flight.Trigger(fmt.Sprintf("pdr-dip window pdr=%.3f", pdr))
				}
			}
			if d := r.coreWatch.Delta(); d > 0 {
				r.flight.Record("mcst", "core handovers +%d", d)
				r.flight.Trigger(fmt.Sprintf("core-handover +%d", d))
			}
			events := r.sup.Events()
			for _, ev := range events[seenEvents:] {
				r.flight.Record("supervisor", "%s node=%d at=%.1fs", ev.Kind, ev.Node, ev.At.Seconds())
				if ev.Kind == "watchdog-restart" {
					r.flight.Trigger(fmt.Sprintf("watchdog-restart node=%d", ev.Node))
				}
			}
			seenEvents = len(events)
		case err := <-serveDone:
			serveDone = nil
			if err != nil && err != http.ErrServerClosed && firstErr == nil {
				firstErr = fmt.Errorf("soak: control server: %w", err)
			}
		}
	}

	// (1) Stop the control plane: no mutation may race the teardown. Open
	// /stats/stream connections must be torn down first — their handlers
	// never return on their own, so Shutdown would otherwise hang until
	// its deadline.
	r.traceStep("control-stop")
	if r.srv != nil {
		r.srv.Close()
	}
	if r.httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		r.httpSrv.Shutdown(shutCtx)
		cancel()
		if serveDone != nil {
			if err := <-serveDone; err != nil && err != http.ErrServerClosed && firstErr == nil {
				firstErr = fmt.Errorf("soak: control server: %w", err)
			}
		}
	}

	// (2) Stop the fleet: daemons and supervisor exit, sends cease.
	r.traceStep("fleet-stop")
	stopFleet()
	<-fleetDone
	if err := <-supDone; err != nil && err != context.Canceled && firstErr == nil {
		firstErr = err
	}

	// (3) Drain the medium: scheduled delayed deliveries land before the
	// final sample is taken, so the books balance.
	r.traceStep("ether-drain")
	r.fleet.Drain()

	// (4) Final telemetry sample + manifest.
	r.traceStep("telemetry-final")
	if r.rec != nil {
		stopSampling()
		<-sampleDone
		elapsed := time.Since(start)
		res := r.fleet.Result()
		rep := r.sup.Report(elapsed)
		avail := 1.0
		if len(rep.Nodes) > 0 {
			sum := 0.0
			for _, n := range rep.Nodes {
				sum += n.Availability
			}
			avail = sum / float64(len(rep.Nodes))
		}
		err := r.rec.Finalize(telemetry.Manifest{
			Seed:            r.cfg.Seed,
			Label:           r.cfg.Label,
			Metric:          r.cfg.Metric.String(),
			Protocol:        r.fleet.Protocol(),
			DurationSeconds: elapsed.Seconds(),
			Derived: map[string]float64{
				"pdr":          res.PDR,
				"availability": avail,
				"kills":        float64(len(res.Kills)),
			},
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	r.close()
	return firstErr
}
