package trace

import (
	"sort"
	"time"

	"meshcast/internal/packet"
)

// Hop is one realized edge of a journey's forwarding tree: a MAC
// transmission at From that a radio at To decoded.
type Hop struct {
	From, To packet.NodeID
	// TxAt is when From put the packet on the air, ArriveAt when To
	// decoded it; Latency is the difference (queueing + airtime).
	TxAt, ArriveAt time.Duration
	Latency        time.Duration
	// HopCount is the packet's hop counter when transmitted.
	HopCount uint8
}

// Delivery is one member that received the journey's packet.
type Delivery struct {
	Node packet.NodeID
	At   time.Duration
	// Latency is end-to-end from origination.
	Latency time.Duration
}

// Journey is the reconstructed life of one originated packet: the
// forwarding tree it traced through the mesh, who it reached, and where
// copies of it died.
type Journey struct {
	TraceID  uint64
	PktKind  packet.Type
	Group    packet.GroupID
	Seq      uint32
	Origin   packet.NodeID
	OriginAt time.Duration

	// Hops are the realized forwarding-tree edges in arrival order.
	Hops []Hop
	// Deliveries are member receptions in delivery order.
	Deliveries []Delivery

	// TxCount counts MAC transmissions of this packet (origin + relays),
	// LostTx those of them that no radio decoded (the whole copy died in
	// the air), MACDrops copies discarded inside a MAC queue, and
	// DupSuppressed redundant receptions discarded by routing.
	TxCount       int
	LostTx        int
	MACDrops      int
	DupSuppressed int
	// Forwards counts relay re-transmissions handed to the MAC.
	Forwards int

	// MaxHopCount is the deepest hop counter seen on any realized edge.
	MaxHopCount uint8
}

// MaxLatency returns the worst end-to-end delivery latency (0 when
// nothing was delivered).
func (j *Journey) MaxLatency() time.Duration {
	var max time.Duration
	for _, d := range j.Deliveries {
		if d.Latency > max {
			max = d.Latency
		}
	}
	return max
}

// SlowestHop returns the highest per-hop latency edge, or a zero Hop when
// the journey realized no edges.
func (j *Journey) SlowestHop() Hop {
	var out Hop
	for _, h := range j.Hops {
		if h.Latency > out.Latency {
			out = h
		}
	}
	return out
}

// Losses totals the attributable loss events on this journey.
func (j *Journey) Losses() int {
	return j.LostTx + j.MACDrops
}

// Complete reports whether every delivery is reachable from the origin
// through the realized hop edges — i.e. the reconstructed forwarding tree
// explains all receptions.
func (j *Journey) Complete() bool {
	reach := map[packet.NodeID]bool{j.Origin: true}
	for changed := true; changed; {
		changed = false
		for _, h := range j.Hops {
			if reach[h.From] && !reach[h.To] {
				reach[h.To] = true
				changed = true
			}
		}
	}
	for _, d := range j.Deliveries {
		if !reach[d.Node] {
			return false
		}
	}
	return true
}

// txRecord tracks one MAC transmission awaiting arrival matches.
type txRecord struct {
	at    time.Duration
	hop   uint8
	heard bool
}

// Reconstruct stitches spans (any order) into one Journey per trace ID.
// Journeys come back ordered by origination time, ties broken by trace ID.
func Reconstruct(spans []Span) []*Journey {
	byID := make(map[uint64][]Span)
	for _, s := range spans {
		if s.TraceID == 0 {
			continue
		}
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	out := make([]*Journey, 0, len(byID))
	for id, ss := range byID {
		out = append(out, reconstructOne(id, ss))
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].OriginAt != out[k].OriginAt {
			return out[i].OriginAt < out[k].OriginAt
		}
		return out[i].TraceID < out[k].TraceID
	})
	return out
}

func reconstructOne(id uint64, ss []Span) *Journey {
	sort.SliceStable(ss, func(i, k int) bool { return ss[i].At < ss[k].At })
	j := &Journey{TraceID: id}
	// Seed packet identity from the first span; SpanOriginate refines it.
	j.PktKind, j.Group, j.Seq = ss[0].PktKind, ss[0].Group, ss[0].Seq
	j.Origin, j.OriginAt = ss[0].Node, ss[0].At
	txs := make(map[packet.NodeID][]*txRecord)
	for _, s := range ss {
		switch s.Kind {
		case SpanOriginate:
			j.Origin, j.OriginAt = s.Node, s.At
			j.PktKind, j.Group, j.Seq = s.PktKind, s.Group, s.Seq
		case SpanMACTx:
			j.TxCount++
			txs[s.Node] = append(txs[s.Node], &txRecord{at: s.At, hop: s.Hop})
		case SpanMACDrop:
			j.MACDrops++
		case SpanPhyArrive:
			hop := Hop{From: s.Peer, To: s.Node, ArriveAt: s.At, HopCount: s.Hop}
			// Pair with the latest transmission from the peer that is
			// not in the future (broadcasts match many arrivals).
			peerTxs := txs[s.Peer]
			for i := len(peerTxs) - 1; i >= 0; i-- {
				if peerTxs[i].at <= s.At {
					peerTxs[i].heard = true
					hop.TxAt = peerTxs[i].at
					hop.Latency = s.At - peerTxs[i].at
					hop.HopCount = peerTxs[i].hop
					break
				}
			}
			if hop.HopCount > j.MaxHopCount {
				j.MaxHopCount = hop.HopCount
			}
			j.Hops = append(j.Hops, hop)
		case SpanDupSuppress:
			j.DupSuppressed++
		case SpanForward:
			j.Forwards++
		case SpanDeliver:
			j.Deliveries = append(j.Deliveries, Delivery{
				Node: s.Node, At: s.At, Latency: s.At - j.OriginAt,
			})
		}
	}
	for _, recs := range txs {
		for _, r := range recs {
			if !r.heard {
				j.LostTx++
			}
		}
	}
	return j
}
