package trace

import (
	"bytes"
	"testing"
	"time"

	"meshcast/internal/packet"
)

func spanTracer(sink SpanSink) (*Tracer, *time.Duration) {
	now := new(time.Duration)
	t := New(nil, func() time.Duration { return *now })
	t.SetSpanSink(sink)
	return t, now
}

func TestSpanNilSafety(t *testing.T) {
	var nilTracer *Tracer
	p := &packet.Packet{TraceID: 1}
	nilTracer.Span(SpanMACTx, 1, 2, p) // must not panic
	if nilTracer.SpanEnabled() {
		t.Fatal("nil tracer reports spans enabled")
	}
	if id := nilTracer.NewTraceID(3); id != 0 {
		t.Fatalf("nil tracer allocated trace ID %d, want 0", id)
	}

	// A tracer without a span sink behaves the same.
	noSink := New(nil, func() time.Duration { return 0 })
	noSink.Span(SpanMACTx, 1, 2, p)
	if noSink.SpanEnabled() {
		t.Fatal("sink-less tracer reports spans enabled")
	}
	if id := noSink.NewTraceID(3); id != 0 {
		t.Fatalf("sink-less tracer allocated trace ID %d, want 0", id)
	}

	// Nil packets (control frames) and untraced packets are discarded.
	buf := &SpanBuffer{}
	traced, _ := spanTracer(buf)
	traced.Span(SpanPhyArrive, 1, 2, nil)
	traced.Span(SpanMACTx, 1, 2, &packet.Packet{})
	if n := len(buf.Spans()); n != 0 {
		t.Fatalf("untraced packets emitted %d spans, want 0", n)
	}
}

// TestSpanDisabledPathAllocationFree pins the acceptance bar: with span
// tracing off, every instrumentation call is a nil check.
func TestSpanDisabledPathAllocationFree(t *testing.T) {
	var nilTracer *Tracer
	noSink := New(nil, func() time.Duration { return 0 })
	p := &packet.Packet{TraceID: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		nilTracer.Span(SpanForward, 1, 2, p)
		noSink.Span(SpanForward, 1, 2, p)
		nilTracer.NewTraceID(1)
		noSink.NewTraceID(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func TestNewTraceIDUniqueAcrossNodes(t *testing.T) {
	tr, _ := spanTracer(&SpanBuffer{})
	seen := map[uint64]bool{}
	for node := packet.NodeID(0); node < 3; node++ {
		for i := 0; i < 4; i++ {
			id := tr.NewTraceID(node)
			if id == 0 {
				t.Fatal("enabled tracer returned zero trace ID")
			}
			if seen[id] {
				t.Fatalf("trace ID %x repeated", id)
			}
			seen[id] = true
			if got := packet.NodeID(id>>40) - 1; got != node {
				t.Fatalf("trace ID %x encodes node %d, want %d", id, got, node)
			}
		}
	}

	// Two tracers on different daemons must not collide either: the node
	// component differs even when counters align.
	other, _ := spanTracer(&SpanBuffer{})
	if id := other.NewTraceID(7); seen[id] {
		t.Fatalf("cross-tracer trace ID %x collided", id)
	}
}

func TestSpanEmission(t *testing.T) {
	buf := &SpanBuffer{}
	tr, now := spanTracer(buf)
	p := &packet.Packet{Kind: packet.TypeData, Group: 2, Seq: 9, HopCount: 3, TraceID: tr.NewTraceID(5)}
	*now = 42 * time.Millisecond
	tr.Span(SpanForward, 6, 5, p)

	spans := buf.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Kind != SpanForward || s.Node != 6 || s.Peer != 5 || s.TraceID != p.TraceID ||
		s.PktKind != packet.TypeData || s.Group != 2 || s.Seq != 9 || s.Hop != 3 ||
		s.At != 42*time.Millisecond {
		t.Fatalf("span = %+v", s)
	}
}

func TestSpanBufferBounded(t *testing.T) {
	buf := &SpanBuffer{Cap: 3}
	tr, _ := spanTracer(buf)
	p := &packet.Packet{TraceID: tr.NewTraceID(0)}
	for i := 0; i < 10; i++ {
		tr.Span(SpanMACTx, 1, 1, p)
	}
	if n := len(buf.Spans()); n != 3 {
		t.Fatalf("buffer holds %d spans, want cap 3", n)
	}
	if d := buf.Dropped(); d != 7 {
		t.Fatalf("dropped = %d, want 7", d)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	var out bytes.Buffer
	w := NewSpanJSONLWriter(&out)
	want := []Span{
		{At: 1500 * time.Millisecond, Kind: SpanOriginate, TraceID: 0x42, Node: 3, Peer: 3,
			PktKind: packet.TypeData, Group: 2, Seq: 17, Hop: 0},
		{At: 1503 * time.Millisecond, Kind: SpanPhyArrive, TraceID: 0x42, Node: 4, Peer: 3,
			PktKind: packet.TypeData, Group: 2, Seq: 17, Hop: 1},
		{At: 1600 * time.Millisecond, Kind: SpanDeliver, TraceID: 0x42, Node: 4, Peer: 4,
			PktKind: packet.TypeTreeJoin, Group: 2, Seq: 17, Hop: 2},
	}
	for _, s := range want {
		w.EmitSpan(s)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSpans(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// buildJourneySpans fabricates one packet's life: 0 originates, floods to
// 1 and 2, 1 relays to 3 (delivered there), 2 suppresses a duplicate, and
// one transmission from 3 dies in the air.
func buildJourneySpans() []Span {
	id := uint64(0x99)
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	mk := func(kind SpanKind, t time.Duration, node, peer packet.NodeID, hop uint8) Span {
		return Span{At: t, Kind: kind, TraceID: id, Node: node, Peer: peer,
			PktKind: packet.TypeData, Group: 1, Seq: 5, Hop: hop}
	}
	return []Span{
		mk(SpanOriginate, at(10), 0, 0, 0),
		mk(SpanMACTx, at(11), 0, 0, 0),
		mk(SpanPhyArrive, at(13), 1, 0, 0),
		mk(SpanPhyArrive, at(13), 2, 0, 0),
		mk(SpanForward, at(13), 1, 0, 0),
		mk(SpanMACTx, at(14), 1, 1, 1),
		mk(SpanPhyArrive, at(16), 3, 1, 1),
		mk(SpanPhyArrive, at(16), 2, 1, 1),
		mk(SpanDupSuppress, at(16), 2, 1, 1),
		mk(SpanDeliver, at(16), 3, 3, 1),
		mk(SpanMACTx, at(17), 3, 3, 2), // never heard: lost in the air
	}
}

func TestReconstructJourney(t *testing.T) {
	js := Reconstruct(buildJourneySpans())
	if len(js) != 1 {
		t.Fatalf("got %d journeys, want 1", len(js))
	}
	j := js[0]
	if j.Origin != 0 || j.OriginAt != 10*time.Millisecond {
		t.Fatalf("origin %d @ %v", j.Origin, j.OriginAt)
	}
	if j.TxCount != 3 || j.LostTx != 1 || j.Forwards != 1 || j.DupSuppressed != 1 {
		t.Fatalf("tx=%d lost=%d fwd=%d dup=%d", j.TxCount, j.LostTx, j.Forwards, j.DupSuppressed)
	}
	if len(j.Hops) != 4 {
		t.Fatalf("got %d hops, want 4", len(j.Hops))
	}
	// The 1->3 hop pairs the arrival with node 1's transmission at 14 ms.
	var hop13 *Hop
	for i := range j.Hops {
		if j.Hops[i].From == 1 && j.Hops[i].To == 3 {
			hop13 = &j.Hops[i]
		}
	}
	if hop13 == nil {
		t.Fatal("no 1->3 hop reconstructed")
	}
	if hop13.TxAt != 14*time.Millisecond || hop13.Latency != 2*time.Millisecond {
		t.Fatalf("1->3 hop tx %v latency %v, want 14ms / 2ms", hop13.TxAt, hop13.Latency)
	}
	if len(j.Deliveries) != 1 || j.Deliveries[0].Node != 3 ||
		j.Deliveries[0].Latency != 6*time.Millisecond {
		t.Fatalf("deliveries = %+v", j.Deliveries)
	}
	if !j.Complete() {
		t.Fatal("journey with a connected tree reports incomplete")
	}
	if j.Losses() != 1 {
		t.Fatalf("losses = %d, want 1", j.Losses())
	}
}

func TestJourneyIncompleteWhenDeliveryUnexplained(t *testing.T) {
	spans := buildJourneySpans()
	// A delivery at a node no reconstructed edge reaches.
	spans = append(spans, Span{At: 20 * time.Millisecond, Kind: SpanDeliver,
		TraceID: 0x99, Node: 9, Peer: 9, PktKind: packet.TypeData, Group: 1, Seq: 5})
	js := Reconstruct(spans)
	if len(js) != 1 {
		t.Fatalf("got %d journeys, want 1", len(js))
	}
	if js[0].Complete() {
		t.Fatal("journey with an unexplained delivery reports complete")
	}
}

func TestReconstructOrdersByOrigination(t *testing.T) {
	mk := func(id uint64, at time.Duration) Span {
		return Span{At: at, Kind: SpanOriginate, TraceID: id, Node: 1, Peer: 1, PktKind: packet.TypeData}
	}
	js := Reconstruct([]Span{
		mk(7, 30*time.Millisecond),
		mk(5, 10*time.Millisecond),
		mk(6, 20*time.Millisecond),
		{At: 0, Kind: SpanMACTx}, // untraced: skipped
	})
	if len(js) != 3 {
		t.Fatalf("got %d journeys, want 3", len(js))
	}
	for i, want := range []uint64{5, 6, 7} {
		if js[i].TraceID != want {
			t.Fatalf("journey %d has trace ID %d, want %d", i, js[i].TraceID, want)
		}
	}
}
