package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"meshcast/internal/packet"
)

// SpanKind classifies one step in a packet's journey through the stack.
type SpanKind uint8

// Span kinds, in rough lifecycle order.
const (
	// SpanOriginate marks a packet entering the network at its source.
	SpanOriginate SpanKind = iota + 1
	// SpanMACTx marks the MAC putting the packet on the air.
	SpanMACTx
	// SpanMACDrop marks the MAC discarding the packet (queue overflow,
	// retry exhaustion).
	SpanMACDrop
	// SpanPhyArrive marks a radio decoding the packet off the air.
	SpanPhyArrive
	// SpanDupSuppress marks the routing layer discarding a duplicate.
	SpanDupSuppress
	// SpanForward marks a relay re-transmitting the packet.
	SpanForward
	// SpanDeliver marks delivery to a group member.
	SpanDeliver
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanOriginate:
		return "originate"
	case SpanMACTx:
		return "mac-tx"
	case SpanMACDrop:
		return "mac-drop"
	case SpanPhyArrive:
		return "phy-arrive"
	case SpanDupSuppress:
		return "dup-suppress"
	case SpanForward:
		return "forward"
	case SpanDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// Span is one typed step in a packet journey. Spans sharing a TraceID
// belong to the same originated packet; the journey reconstructor stitches
// them back into a forwarding tree.
type Span struct {
	// At is the virtual time of the step.
	At time.Duration
	// Kind classifies the step.
	Kind SpanKind
	// TraceID links the step to the originated packet (never zero).
	TraceID uint64
	// Node is where the step happened.
	Node packet.NodeID
	// Peer is the transmitting node for SpanPhyArrive (who we heard),
	// and equals Node otherwise.
	Peer packet.NodeID
	// PktKind, Group, Seq and Hop snapshot the packet at this step.
	PktKind packet.Type
	Group   packet.GroupID
	Seq     uint32
	Hop     uint8
}

// SpanSink consumes spans. Implementations run on the single simulation
// goroutine (or a single daemon receive loop); the Tracer adds no locking.
type SpanSink interface {
	EmitSpan(s Span)
}

// SetSpanSink enables span tracing through s (nil disables it again).
func (t *Tracer) SetSpanSink(s SpanSink) {
	t.spans = s
}

// SpanEnabled reports whether span tracing is active. The nil receiver is
// valid, so hot paths pay one check.
func (t *Tracer) SpanEnabled() bool {
	return t != nil && t.spans != nil
}

// NewTraceID allocates a trace ID for a packet originated by node, or 0
// when span tracing is disabled (zero means "untraced" on the wire). The
// node occupies the high bits so IDs from independently-counting live
// daemons never collide.
func (t *Tracer) NewTraceID(node packet.NodeID) uint64 {
	if !t.SpanEnabled() {
		return 0
	}
	t.nextTraceID++
	return (uint64(node)+1)<<40 | t.nextTraceID
}

// Span records one journey step for the packet p. It is a no-op on a nil
// tracer, a disabled span sink, or an untraced packet (TraceID zero), and
// allocates nothing in those cases.
func (t *Tracer) Span(kind SpanKind, node, peer packet.NodeID, p *packet.Packet) {
	if t == nil || t.spans == nil || p == nil || p.TraceID == 0 {
		return
	}
	t.spans.EmitSpan(Span{
		At:      t.now(),
		Kind:    kind,
		TraceID: p.TraceID,
		Node:    node,
		Peer:    peer,
		PktKind: p.Kind,
		Group:   p.Group,
		Seq:     p.Seq,
		Hop:     p.HopCount,
	})
}

// SpanBuffer is a SpanSink retaining spans in memory (bounded), for tests,
// benchmarks and in-process journey reconstruction.
type SpanBuffer struct {
	// Cap bounds retained spans; 0 means unbounded.
	Cap int

	spans   []Span
	dropped uint64
}

var _ SpanSink = (*SpanBuffer)(nil)

// EmitSpan implements SpanSink.
func (b *SpanBuffer) EmitSpan(s Span) {
	if b.Cap > 0 && len(b.spans) >= b.Cap {
		b.dropped++
		return
	}
	b.spans = append(b.spans, s)
}

// Spans returns a snapshot of the retained spans.
func (b *SpanBuffer) Spans() []Span {
	out := make([]Span, len(b.spans))
	copy(out, b.spans)
	return out
}

// Dropped returns the number of discarded spans.
func (b *SpanBuffer) Dropped() uint64 { return b.dropped }

// spanRecord is the JSONL persistence schema for a Span. Times are
// seconds of virtual time; kinds are the SpanKind strings.
type spanRecord struct {
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	ID   uint64  `json:"id"`
	Node uint16  `json:"node"`
	Peer uint16  `json:"peer"`
	Pkt  string  `json:"pkt"`
	Grp  uint16  `json:"grp"`
	Seq  uint32  `json:"seq"`
	Hop  uint8   `json:"hop"`
}

var spanKindByName = map[string]SpanKind{
	SpanOriginate.String():   SpanOriginate,
	SpanMACTx.String():       SpanMACTx,
	SpanMACDrop.String():     SpanMACDrop,
	SpanPhyArrive.String():   SpanPhyArrive,
	SpanDupSuppress.String(): SpanDupSuppress,
	SpanForward.String():     SpanForward,
	SpanDeliver.String():     SpanDeliver,
}

// SpanJSONLWriter is a SpanSink streaming spans as JSON lines (one object
// per line) to a buffered writer; call Flush before closing the
// underlying file.
type SpanJSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

var _ SpanSink = (*SpanJSONLWriter)(nil)

// NewSpanJSONLWriter wraps w in a SpanJSONLWriter.
func NewSpanJSONLWriter(w io.Writer) *SpanJSONLWriter {
	bw := bufio.NewWriter(w)
	return &SpanJSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// EmitSpan implements SpanSink. Encoding errors are sticky and reported by
// Flush.
func (w *SpanJSONLWriter) EmitSpan(s Span) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(spanRecord{
		T:    s.At.Seconds(),
		Kind: s.Kind.String(),
		ID:   s.TraceID,
		Node: uint16(s.Node),
		Peer: uint16(s.Peer),
		Pkt:  s.PktKind.String(),
		Grp:  uint16(s.Group),
		Seq:  s.Seq,
		Hop:  s.Hop,
	})
}

// Flush drains the buffer and returns the first error seen.
func (w *SpanJSONLWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ReadSpans decodes a spans JSONL stream written by SpanJSONLWriter.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var rec spanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: bad span record %d: %w", len(out), err)
		}
		kind, ok := spanKindByName[rec.Kind]
		if !ok {
			return out, fmt.Errorf("trace: bad span record %d: unknown kind %q", len(out), rec.Kind)
		}
		out = append(out, Span{
			At:      time.Duration(rec.T * float64(time.Second)),
			Kind:    kind,
			TraceID: rec.ID,
			Node:    packet.NodeID(rec.Node),
			Peer:    packet.NodeID(rec.Peer),
			PktKind: pktTypeByName(rec.Pkt),
			Group:   packet.GroupID(rec.Grp),
			Seq:     rec.Seq,
			Hop:     rec.Hop,
		})
	}
}

// LoadSpans reads a spans.jsonl file from disk.
func LoadSpans(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(bufio.NewReader(f))
}

func pktTypeByName(name string) packet.Type {
	for k := packet.TypeData; k <= packet.TypeTreeJoin; k++ {
		if k.String() == name {
			return k
		}
	}
	return 0
}
