package trace

import (
	"strings"
	"testing"
	"time"
)

func fixedNow(d time.Duration) func() time.Duration {
	return func() time.Duration { return d }
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, CatData, "should not panic %d", 42)
	if tr.Enabled(CatData) {
		t.Fatal("nil tracer reports enabled")
	}
}

func TestTracerAllCategoriesByDefault(t *testing.T) {
	var buf Buffer
	tr := New(&buf, fixedNow(time.Second))
	for _, c := range []Category{CatQuery, CatReply, CatData, CatProbe, CatMAC} {
		if !tr.Enabled(c) {
			t.Fatalf("category %v not enabled by default", c)
		}
		tr.Emit(3, c, "hello")
	}
	if got := len(buf.Events()); got != 5 {
		t.Fatalf("events = %d, want 5", got)
	}
}

func TestTracerCategoryFilter(t *testing.T) {
	var buf Buffer
	tr := New(&buf, fixedNow(0), CatData)
	tr.Emit(1, CatQuery, "filtered")
	tr.Emit(1, CatData, "kept")
	events := buf.Events()
	if len(events) != 1 || events[0].Cat != CatData {
		t.Fatalf("events = %v", events)
	}
	if tr.Enabled(CatQuery) {
		t.Fatal("CatQuery should be filtered")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12345600 * time.Microsecond, Node: 7, Cat: CatQuery, Msg: "forward seq=3"}
	s := e.String()
	for _, want := range []string{"12.3456", "n7", "QUERY", "forward seq=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestWriterSink(t *testing.T) {
	var sb strings.Builder
	tr := New(Writer{W: &sb}, fixedNow(time.Second))
	tr.Emit(2, CatMAC, "sent %d bytes", 512)
	if !strings.Contains(sb.String(), "sent 512 bytes") || !strings.Contains(sb.String(), "MAC") {
		t.Fatalf("writer output = %q", sb.String())
	}
}

func TestBufferCapAndDropped(t *testing.T) {
	buf := Buffer{Cap: 2}
	tr := New(&buf, fixedNow(0))
	for i := 0; i < 5; i++ {
		tr.Emit(1, CatData, "e%d", i)
	}
	if len(buf.Events()) != 2 {
		t.Fatalf("retained = %d, want 2", len(buf.Events()))
	}
	if buf.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", buf.Dropped())
	}
}

func TestBufferCountByCategory(t *testing.T) {
	var buf Buffer
	tr := New(&buf, fixedNow(0))
	tr.Emit(1, CatData, "a")
	tr.Emit(1, CatData, "b")
	tr.Emit(1, CatQuery, "c")
	counts := buf.CountByCategory()
	if counts[CatData] != 2 || counts[CatQuery] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCategoryStrings(t *testing.T) {
	if CatQuery.String() != "QUERY" || Category(99).String() != "CAT(99)" {
		t.Fatal("category strings wrong")
	}
}
