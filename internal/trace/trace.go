// Package trace provides lightweight structured event tracing for
// simulation runs: protocol and MAC components emit typed events, and
// sinks filter, count, or render them. Tracing is pull-wired (components
// take a *Tracer that may be nil) so the hot path pays a single nil check
// when disabled.
package trace

import (
	"fmt"
	"io"
	"time"

	"meshcast/internal/packet"
)

// Category classifies trace events.
type Category uint8

// Event categories.
const (
	// CatQuery covers JOIN QUERY origination and forwarding.
	CatQuery Category = iota + 1
	// CatReply covers JOIN REPLY traffic and FG transitions.
	CatReply
	// CatData covers data origination, forwarding and delivery.
	CatData
	// CatProbe covers link-quality probing.
	CatProbe
	// CatMAC covers MAC transmissions and drops.
	CatMAC
	// CatCore covers MCST CORE ANNOUNCE traffic, core election and
	// failover.
	CatCore
	// CatJoin covers MCST TREE JOIN traffic and tree-set transitions.
	CatJoin
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatQuery:
		return "QUERY"
	case CatReply:
		return "REPLY"
	case CatData:
		return "DATA"
	case CatProbe:
		return "PROBE"
	case CatMAC:
		return "MAC"
	case CatCore:
		return "CORE"
	case CatJoin:
		return "JOIN"
	default:
		return fmt.Sprintf("CAT(%d)", uint8(c))
	}
}

// Event is one traced occurrence.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Node is the node the event occurred on.
	Node packet.NodeID
	// Cat classifies the event.
	Cat Category
	// Msg is a short human-readable description.
	Msg string
}

// String implements fmt.Stringer: "12.3456s n7 QUERY forward seq=3".
func (e Event) String() string {
	return fmt.Sprintf("%10.4fs %-5v %-5v %s", e.At.Seconds(), e.Node, e.Cat, e.Msg)
}

// Sink consumes trace events. Implementations must be safe for use from the
// single simulation goroutine; the Tracer does not add locking around Emit.
type Sink interface {
	Emit(e Event)
}

// Tracer fans events out to a sink with category filtering. A nil *Tracer
// is valid and discards everything, so components can hold one
// unconditionally.
type Tracer struct {
	sink Sink
	mask uint16 // bit per category
	now  func() time.Duration

	// spans receives typed per-packet span records; nil disables span
	// tracing independently of event tracing.
	spans SpanSink
	// nextTraceID backs NewTraceID. Only touched from the single
	// simulation goroutine (or a single daemon's receive loop).
	nextTraceID uint64
}

// New creates a tracer feeding sink, enabled for the given categories (all
// categories when none are listed). A nil sink disables event tracing but
// still allows span tracing via SetSpanSink. now supplies virtual time.
func New(sink Sink, now func() time.Duration, cats ...Category) *Tracer {
	var mask uint16
	if sink != nil {
		if len(cats) == 0 {
			mask = ^uint16(0)
		}
		for _, c := range cats {
			mask |= 1 << c
		}
	}
	return &Tracer{sink: sink, mask: mask, now: now}
}

// Enabled reports whether a category is currently traced.
func (t *Tracer) Enabled(c Category) bool {
	return t != nil && t.mask&(1<<c) != 0
}

// Emit records an event for node in category c. It is a no-op on a nil
// tracer or a filtered category; the format string is only rendered when
// the event is kept.
func (t *Tracer) Emit(node packet.NodeID, c Category, format string, args ...any) {
	if !t.Enabled(c) {
		return
	}
	t.sink.Emit(Event{
		At:   t.now(),
		Node: node,
		Cat:  c,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Writer is a Sink that renders events as lines to an io.Writer.
type Writer struct {
	W io.Writer
}

var _ Sink = Writer{}

// Emit implements Sink.
func (w Writer) Emit(e Event) {
	fmt.Fprintln(w.W, e.String())
}

// Buffer is a Sink that retains events in memory (bounded), for tests and
// post-run analysis. Like every Sink it runs on the single simulation
// goroutine, so it carries no locking; readers (Events, Dropped) are meant
// for after the run, or between events from that same goroutine. The drop
// count is exported through the telemetry registry as the "trace.dropped"
// gauge when a run records telemetry.
type Buffer struct {
	// Cap bounds retained events; 0 means unbounded.
	Cap int

	events []Event
	// dropped counts events discarded because the buffer was full.
	dropped uint64
}

var _ Sink = (*Buffer)(nil)

// Emit implements Sink.
func (b *Buffer) Emit(e Event) {
	if b.Cap > 0 && len(b.events) >= b.Cap {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns a snapshot of the retained events.
func (b *Buffer) Events() []Event {
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped returns the number of discarded events.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// CountByCategory tallies retained events per category.
func (b *Buffer) CountByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, e := range b.events {
		out[e.Cat]++
	}
	return out
}
