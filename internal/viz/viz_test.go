package viz

import (
	"strings"
	"testing"

	"meshcast/internal/geom"
)

func TestMapPlacesLabels(t *testing.T) {
	out := Map([]Node{
		{Label: "A", Pos: geom.Point{X: 0, Y: 0}},
		{Label: "B", Pos: geom.Point{X: 100, Y: 100}},
	}, nil, 40)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("labels missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var aLine, bLine int
	for i, l := range lines {
		if strings.Contains(l, "A") && !strings.Contains(l, "map") {
			aLine = i
		}
		if strings.Contains(l, "B") {
			bLine = i
		}
	}
	// Y grows upward: B (y=100) must be rendered above A (y=0).
	if bLine >= aLine {
		t.Fatalf("B on line %d should be above A on line %d:\n%s", bLine, aLine, out)
	}
}

func TestMapDrawsEdges(t *testing.T) {
	nodes := []Node{
		{Label: "A", Pos: geom.Point{X: 0, Y: 0}},
		{Label: "B", Pos: geom.Point{X: 100, Y: 0}},
		{Label: "C", Pos: geom.Point{X: 50, Y: 80}},
	}
	out := Map(nodes, []Edge{
		{From: "A", To: "B", Style: Solid},
		{From: "A", To: "C", Style: Dashed},
	}, 50)
	if !strings.Contains(out, "·") {
		t.Fatalf("solid edge not drawn:\n%s", out)
	}
	if !strings.Contains(out, "~") {
		t.Fatalf("dashed edge not drawn:\n%s", out)
	}
}

func TestMapUnknownEdgeEndpointsIgnored(t *testing.T) {
	out := Map([]Node{{Label: "A", Pos: geom.Point{}}},
		[]Edge{{From: "A", To: "missing", Style: Solid}}, 30)
	body := out[strings.Index(out, "\n")+1:] // skip the legend line
	if strings.Contains(body, "·") {
		t.Fatal("edge to unknown node drawn")
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(nil, nil, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty map = %q", out)
	}
}

func TestMapDegenerateGeometry(t *testing.T) {
	// All nodes at one point, tiny width: must not panic or divide by zero.
	out := Map([]Node{
		{Label: "A", Pos: geom.Point{X: 5, Y: 5}},
		{Label: "B", Pos: geom.Point{X: 5, Y: 5}},
	}, []Edge{{From: "A", To: "B", Style: Solid}}, 1)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestMapDeterministic(t *testing.T) {
	nodes := []Node{
		{Label: "n1", Pos: geom.Point{X: 0, Y: 0}},
		{Label: "n2", Pos: geom.Point{X: 30, Y: 40}},
	}
	edges := []Edge{{From: "n1", To: "n2", Style: Solid}}
	if Map(nodes, edges, 40) != Map(nodes, edges, 40) {
		t.Fatal("identical inputs rendered differently")
	}
}
