// Package viz renders topologies and multicast trees as ASCII maps for the
// command-line tools — enough to eyeball a deployment, a forwarding group,
// or the Figure 4/5 floor plan without leaving the terminal.
package viz

import (
	"fmt"
	"math"
	"strings"

	"meshcast/internal/geom"
)

// Node is a labeled point on the map.
type Node struct {
	Label string
	Pos   geom.Point
}

// EdgeStyle selects the character used to draw an edge.
type EdgeStyle int

// Edge styles: solid for low-loss/selected links, dashed for lossy links,
// arrow for directed tree edges.
const (
	Solid EdgeStyle = iota + 1
	Dashed
)

// Edge is a link to draw between two node labels.
type Edge struct {
	From, To string
	Style    EdgeStyle
}

// Map renders nodes and edges on a character canvas of the given width (in
// characters). Height follows from the bounding box's aspect ratio, with
// characters assumed twice as tall as wide.
func Map(nodes []Node, edges []Edge, width int) string {
	if len(nodes) == 0 {
		return "(empty map)\n"
	}
	if width < 16 {
		width = 16
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, n := range nodes {
		minX = math.Min(minX, n.Pos.X)
		minY = math.Min(minY, n.Pos.Y)
		maxX = math.Max(maxX, n.Pos.X)
		maxY = math.Max(maxY, n.Pos.Y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	height := int(float64(width) * spanY / spanX / 2)
	if height < 4 {
		height = 4
	}
	if height > 60 {
		height = 60
	}

	cells := make([][]rune, height+1)
	for i := range cells {
		cells[i] = make([]rune, width+1)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	toCell := func(p geom.Point) [2]int {
		cx := int((p.X - minX) / spanX * float64(width))
		cy := int((p.Y - minY) / spanY * float64(height))
		return [2]int{cx, height - cy} // y grows upward on the map
	}
	byLabel := make(map[string]geom.Point, len(nodes))
	for _, n := range nodes {
		byLabel[n.Label] = n.Pos
	}

	for _, e := range edges {
		a, okA := byLabel[e.From]
		b, okB := byLabel[e.To]
		if !okA || !okB {
			continue
		}
		mark := '·'
		if e.Style == Dashed {
			mark = '~'
		}
		drawLine(cells, toCell(a), toCell(b), mark)
	}
	for _, n := range nodes {
		c := toCell(n.Pos)
		placeLabel(cells, c[0], c[1], n.Label)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "map %.0fx%.0f m (· solid, ~ dashed)\n", spanX, spanY)
	for _, row := range cells {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// drawLine draws a Bresenham line between two cells.
func drawLine(cells [][]rune, from, to [2]int, mark rune) {
	x0, y0 := from[0], from[1]
	x1, y1 := to[0], to[1]
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if y0 >= 0 && y0 < len(cells) && x0 >= 0 && x0 < len(cells[y0]) && cells[y0][x0] == ' ' {
			cells[y0][x0] = mark
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// placeLabel writes a label starting at the node cell, clipped to the row.
func placeLabel(cells [][]rune, cx, cy int, label string) {
	if cy < 0 || cy >= len(cells) {
		return
	}
	row := cells[cy]
	for i, r := range label {
		x := cx + i
		if x < 0 || x >= len(row) {
			return
		}
		row[x] = r
	}
}

// toCell helpers.
func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
