package viz

import (
	"math"
	"testing"
)

func TestSparklineEmpty(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Fatalf("empty input rendered %q", s)
	}
}

func TestSparklineRamp(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	want := "▁▂▃▄▅▆▇█"
	if got != want {
		t.Fatalf("ramp = %q, want %q", got, want)
	}
}

func TestSparklineConstant(t *testing.T) {
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("constant = %q", got)
	}
}

func TestSparklineExtremes(t *testing.T) {
	got := Sparkline([]float64{0, 100})
	if got != "▁█" {
		t.Fatalf("extremes = %q", got)
	}
}

func TestSparklineNegative(t *testing.T) {
	got := Sparkline([]float64{-10, 0, 10})
	if [](rune)(got)[0] != '▁' || [](rune)(got)[2] != '█' {
		t.Fatalf("negative range = %q", got)
	}
}

func TestSparklineNaN(t *testing.T) {
	got := Sparkline([]float64{math.NaN(), 1, 2})
	if len([]rune(got)) != 3 {
		t.Fatalf("NaN input = %q", got)
	}
}
