package viz

import "strings"

// sparkLevels are the eight block characters a sparkline is built from.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode bar chart, scaling the full
// value range onto eight block heights. A constant series renders at the
// lowest level; an empty series renders as the empty string. NaN values (and
// anything else that does not compare) render as the lowest level too.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	span := max - min
	for _, v := range values {
		level := 0
		if span > 0 {
			level = int((v - min) / span * float64(len(sparkLevels)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkLevels) {
			level = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}
