package stats

import (
	"testing"
	"time"
)

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(10 * time.Second)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if pts := s.Points(); pts != nil {
		t.Fatalf("Points = %v, want nil", pts)
	}
	if vals := s.Values(); len(vals) != 0 {
		t.Fatalf("Values = %v, want empty", vals)
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last reported a value on an empty series")
	}
}

func TestSeriesDefaultInterval(t *testing.T) {
	if got := NewSeries(0).Interval(); got != 10*time.Second {
		t.Fatalf("default interval = %v", got)
	}
	if got := NewSeries(-time.Second).Interval(); got != 10*time.Second {
		t.Fatalf("negative interval = %v", got)
	}
}

func TestSeriesNonAlignedSamples(t *testing.T) {
	// Samples at arbitrary (non-multiple) times land in the covering bucket.
	s := NewSeries(10 * time.Second)
	s.Record(3*time.Second, 1)  // bucket 0
	s.Record(7*time.Second, 3)  // bucket 0
	s.Record(13*time.Second, 9) // bucket 1
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("buckets = %d, want 2", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Mean != 2 || pts[0].Last != 3 {
		t.Fatalf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Count != 1 || pts[1].Last != 9 {
		t.Fatalf("bucket 1 = %+v", pts[1])
	}
}

func TestSeriesLeftOpenBoundary(t *testing.T) {
	// A sample at exactly k*interval closes bucket k-1 (so an
	// interval-aligned sampler fills buckets 0..n-1), except at t=0.
	s := NewSeries(10 * time.Second)
	s.Record(0, 5)
	s.Record(10*time.Second, 7)
	s.Record(20*time.Second, 11)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("buckets = %d, want 2", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Last != 7 {
		t.Fatalf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Count != 1 || pts[1].Last != 11 {
		t.Fatalf("bucket 1 = %+v", pts[1])
	}
}

func TestSeriesFinalPartialWindow(t *testing.T) {
	// A run ending off the interval leaves a final bucket narrower than the
	// interval; its Width must report the actually covered span.
	s := NewSeries(10 * time.Second)
	s.Record(10*time.Second, 1)
	s.Record(20*time.Second, 2)
	s.Record(23*time.Second, 3)
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("buckets = %d, want 3", len(pts))
	}
	for i := 0; i < 2; i++ {
		if pts[i].Width != 10*time.Second {
			t.Fatalf("bucket %d width = %v", i, pts[i].Width)
		}
	}
	last := pts[2]
	if last.Start != 20*time.Second || last.Width != 3*time.Second {
		t.Fatalf("final bucket = %+v, want start 20s width 3s", last)
	}
	if last.Count != 1 || last.Last != 3 {
		t.Fatalf("final bucket samples = %+v", last)
	}
}

func TestSeriesEmptyInteriorBucketsCarryLast(t *testing.T) {
	s := NewSeries(time.Second)
	s.Record(500*time.Millisecond, 4)
	s.Record(3500*time.Millisecond, 8) // buckets 1 and 2 are empty
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("buckets = %d, want 4", len(pts))
	}
	for _, i := range []int{1, 2} {
		if pts[i].Count != 0 || pts[i].Last != 4 || pts[i].Mean != 4 {
			t.Fatalf("interior bucket %d = %+v, want carried 4", i, pts[i])
		}
	}
	if vals := s.Values(); len(vals) != 4 || vals[1] != 4 || vals[3] != 8 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestSeriesNegativeTimeClamps(t *testing.T) {
	s := NewSeries(time.Second)
	s.Record(-5*time.Second, 2)
	pts := s.Points()
	if len(pts) != 1 || pts[0].Start != 0 || pts[0].Count != 1 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestSeriesLast(t *testing.T) {
	s := NewSeries(time.Second)
	s.Record(time.Second, 1)
	s.Record(2*time.Second, 6)
	if v, ok := s.Last(); !ok || v != 6 {
		t.Fatalf("Last = %v, %v", v, ok)
	}
}
