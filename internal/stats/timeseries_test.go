package stats

import (
	"testing"
	"time"
)

func TestDelayTrackerPercentiles(t *testing.T) {
	var d DelayTracker
	// 1..100 ms, inserted out of order.
	for i := 100; i >= 1; i-- {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	p := d.Percentiles()
	if p.Count != 100 {
		t.Fatalf("count = %d", p.Count)
	}
	if p.P50 < 49*time.Millisecond || p.P50 > 51*time.Millisecond {
		t.Fatalf("p50 = %v", p.P50)
	}
	if p.P90 < 89*time.Millisecond || p.P90 > 91*time.Millisecond {
		t.Fatalf("p90 = %v", p.P90)
	}
	if p.P99 < 98*time.Millisecond || p.P99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p.P99)
	}
	if p.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", p.Max)
	}
}

func TestDelayTrackerEmpty(t *testing.T) {
	var d DelayTracker
	if p := d.Percentiles(); p.Count != 0 || p.Max != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
}

func TestDelayTrackerObserveAfterPercentiles(t *testing.T) {
	var d DelayTracker
	d.Observe(10 * time.Millisecond)
	_ = d.Percentiles()
	d.Observe(time.Millisecond) // must re-sort
	if p := d.Percentiles(); p.P50 != time.Millisecond && p.P50 != 10*time.Millisecond {
		t.Fatalf("p50 = %v", p.P50)
	}
	if p := d.Percentiles(); p.Max != 10*time.Millisecond {
		t.Fatalf("max = %v", p.Max)
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(10 * time.Second)
	// Bucket 0: 4 sent, 2 delivered. Bucket 2: 1 sent, 1 delivered.
	for i := 0; i < 4; i++ {
		ts.RecordSent(time.Duration(i) * time.Second)
	}
	ts.RecordDelivered(2 * time.Second)
	ts.RecordDelivered(9 * time.Second)
	ts.RecordSent(25 * time.Second)
	ts.RecordDelivered(25 * time.Second)

	points := ts.Points()
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if points[0].Sent != 4 || points[0].Delivered != 2 || points[0].Ratio != 0.5 {
		t.Fatalf("bucket 0 = %+v", points[0])
	}
	if points[1].Sent != 0 || points[1].Ratio != 0 {
		t.Fatalf("bucket 1 = %+v", points[1])
	}
	if points[2].Start != 20*time.Second || points[2].Ratio != 1 {
		t.Fatalf("bucket 2 = %+v", points[2])
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.RecordSent(-5 * time.Second)
	if pts := ts.Points(); len(pts) != 1 || pts[0].Sent != 1 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestTimeSeriesDefaultBucket(t *testing.T) {
	ts := NewTimeSeries(0)
	ts.RecordSent(15 * time.Second)
	if pts := ts.Points(); len(pts) != 2 {
		t.Fatalf("default bucket should be 10s, got %d buckets", len(pts))
	}
}
