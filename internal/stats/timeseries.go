package stats

import (
	"sort"
	"time"
)

// DelaySample records one delivery's end-to-end delay for percentile
// analysis.
type delaySample = time.Duration

// Percentiles summarizes a delay distribution.
type Percentiles struct {
	P50, P90, P99, Max time.Duration
	Count              int
}

// DelayTracker retains per-delivery delays and computes percentiles. The
// paper reports only means; percentiles expose the tail behavior that
// distinguishes contention-heavy configurations.
type DelayTracker struct {
	samples []delaySample
	sorted  bool
}

// Observe records one delivery delay.
func (d *DelayTracker) Observe(delay time.Duration) {
	d.samples = append(d.samples, delay)
	d.sorted = false
}

// Percentiles computes the distribution summary; zero-valued when empty.
func (d *DelayTracker) Percentiles() Percentiles {
	if len(d.samples) == 0 {
		return Percentiles{}
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(d.samples)-1))
		return d.samples[idx]
	}
	return Percentiles{
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   d.samples[len(d.samples)-1],
		Count: len(d.samples),
	}
}

// TimeSeries buckets deliveries and sends over fixed intervals, exposing
// how delivery ratio evolves during a run — the estimator-convergence and
// route-flap dynamics §5.3 describes are invisible in run-long means.
type TimeSeries struct {
	bucket    time.Duration
	sent      []uint64
	delivered []uint64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = 10 * time.Second
	}
	return &TimeSeries{bucket: bucket}
}

func (ts *TimeSeries) idx(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / ts.bucket)
}

func (ts *TimeSeries) grow(i int) {
	for len(ts.sent) <= i {
		ts.sent = append(ts.sent, 0)
		ts.delivered = append(ts.delivered, 0)
	}
}

// RecordSent notes a source transmission at virtual time at.
func (ts *TimeSeries) RecordSent(at time.Duration) {
	i := ts.idx(at)
	ts.grow(i)
	ts.sent[i]++
}

// RecordDelivered notes one member delivery of a packet *sent* at sentAt.
// Bucketing by send time keeps sent/delivered aligned per bucket.
func (ts *TimeSeries) RecordDelivered(sentAt time.Duration) {
	i := ts.idx(sentAt)
	ts.grow(i)
	ts.delivered[i]++
}

// Point is one bucket of the series.
type Point struct {
	// Start is the bucket's start time.
	Start time.Duration
	// Sent and Delivered are the bucket totals (delivered counts each
	// member separately).
	Sent, Delivered uint64
	// Ratio is Delivered/Sent/members — callers that know the member count
	// can normalize; Ratio here is the raw delivered-to-sent ratio.
	Ratio float64
}

// Points renders the series.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, 0, len(ts.sent))
	for i := range ts.sent {
		p := Point{
			Start:     time.Duration(i) * ts.bucket,
			Sent:      ts.sent[i],
			Delivered: ts.delivered[i],
		}
		if p.Sent > 0 {
			p.Ratio = float64(p.Delivered) / float64(p.Sent)
		}
		out = append(out, p)
	}
	return out
}

// Series is a fixed-interval sampled time series of float64 values — the
// storage behind the telemetry sampler. Samples land in the bucket covering
// their timestamp (sample times need not align to the interval), and each
// bucket keeps the count, mean, and last value observed in it. The final
// bucket may cover less than a full interval (a run rarely ends on an
// interval boundary); Points reports each bucket's actual width so
// consumers can rate-normalize partial windows correctly.
type Series struct {
	interval time.Duration
	count    []uint64
	sum      []float64
	last     []float64
	// end is the latest sample time seen; it bounds the final partial
	// window.
	end time.Duration
	any bool
}

// NewSeries creates a series with the given sampling interval (<= 0 selects
// 10 s, matching NewTimeSeries).
func NewSeries(interval time.Duration) *Series {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Series{interval: interval}
}

// Interval returns the bucket width.
func (s *Series) Interval() time.Duration { return s.interval }

// Record adds one sample at virtual time at. Negative times clamp to 0.
// Buckets are left-open: a sample at exactly k*interval closes bucket k-1
// rather than opening bucket k, so a sampler ticking on the interval fills
// buckets 0..n-1 instead of leaving bucket 0 empty forever.
func (s *Series) Record(at time.Duration, v float64) {
	if at < 0 {
		at = 0
	}
	i := int(at / s.interval)
	if i > 0 && at%s.interval == 0 {
		i--
	}
	for len(s.count) <= i {
		s.count = append(s.count, 0)
		s.sum = append(s.sum, 0)
		s.last = append(s.last, 0)
	}
	s.count[i]++
	s.sum[i] += v
	s.last[i] = v
	if !s.any || at > s.end {
		s.end = at
		s.any = true
	}
}

// Len returns the number of buckets (0 for an empty series).
func (s *Series) Len() int { return len(s.count) }

// Last returns the most recent sample value (0, false when empty).
func (s *Series) Last() (float64, bool) {
	if !s.any {
		return 0, false
	}
	return s.last[len(s.last)-1], true
}

// SeriesPoint is one bucket of a Series.
type SeriesPoint struct {
	// Start is the bucket's start time; Width is its covered span — the
	// full interval except for the final bucket, whose width ends at the
	// last sample seen (the partial-window case).
	Start, Width time.Duration
	// Count is the number of samples in the bucket; Mean and Last summarize
	// them. Empty interior buckets have Count 0 and carry the previous
	// bucket's Last forward so step-rendered series do not dip to zero.
	Count      uint64
	Mean, Last float64
}

// Points renders the series. An empty series yields nil.
func (s *Series) Points() []SeriesPoint {
	if len(s.count) == 0 {
		return nil
	}
	out := make([]SeriesPoint, len(s.count))
	var carry float64
	for i := range s.count {
		p := SeriesPoint{
			Start: time.Duration(i) * s.interval,
			Width: s.interval,
			Count: s.count[i],
		}
		if s.count[i] > 0 {
			p.Mean = s.sum[i] / float64(s.count[i])
			p.Last = s.last[i]
			carry = s.last[i]
		} else {
			p.Mean = carry
			p.Last = carry
		}
		if i == len(s.count)-1 {
			if w := s.end - p.Start; w < p.Width {
				p.Width = w
			}
		}
		out[i] = p
	}
	return out
}

// Values returns each bucket's Last value in order — the shape sparkline
// renderers want. Empty on an empty series.
func (s *Series) Values() []float64 {
	pts := s.Points()
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Last
	}
	return out
}
