package stats

import (
	"sort"
	"time"
)

// DelaySample records one delivery's end-to-end delay for percentile
// analysis.
type delaySample = time.Duration

// Percentiles summarizes a delay distribution.
type Percentiles struct {
	P50, P90, P99, Max time.Duration
	Count              int
}

// DelayTracker retains per-delivery delays and computes percentiles. The
// paper reports only means; percentiles expose the tail behavior that
// distinguishes contention-heavy configurations.
type DelayTracker struct {
	samples []delaySample
	sorted  bool
}

// Observe records one delivery delay.
func (d *DelayTracker) Observe(delay time.Duration) {
	d.samples = append(d.samples, delay)
	d.sorted = false
}

// Percentiles computes the distribution summary; zero-valued when empty.
func (d *DelayTracker) Percentiles() Percentiles {
	if len(d.samples) == 0 {
		return Percentiles{}
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(d.samples)-1))
		return d.samples[idx]
	}
	return Percentiles{
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   d.samples[len(d.samples)-1],
		Count: len(d.samples),
	}
}

// TimeSeries buckets deliveries and sends over fixed intervals, exposing
// how delivery ratio evolves during a run — the estimator-convergence and
// route-flap dynamics §5.3 describes are invisible in run-long means.
type TimeSeries struct {
	bucket    time.Duration
	sent      []uint64
	delivered []uint64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = 10 * time.Second
	}
	return &TimeSeries{bucket: bucket}
}

func (ts *TimeSeries) idx(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / ts.bucket)
}

func (ts *TimeSeries) grow(i int) {
	for len(ts.sent) <= i {
		ts.sent = append(ts.sent, 0)
		ts.delivered = append(ts.delivered, 0)
	}
}

// RecordSent notes a source transmission at virtual time at.
func (ts *TimeSeries) RecordSent(at time.Duration) {
	i := ts.idx(at)
	ts.grow(i)
	ts.sent[i]++
}

// RecordDelivered notes one member delivery of a packet *sent* at sentAt.
// Bucketing by send time keeps sent/delivered aligned per bucket.
func (ts *TimeSeries) RecordDelivered(sentAt time.Duration) {
	i := ts.idx(sentAt)
	ts.grow(i)
	ts.delivered[i]++
}

// Point is one bucket of the series.
type Point struct {
	// Start is the bucket's start time.
	Start time.Duration
	// Sent and Delivered are the bucket totals (delivered counts each
	// member separately).
	Sent, Delivered uint64
	// Ratio is Delivered/Sent/members — callers that know the member count
	// can normalize; Ratio here is the raw delivered-to-sent ratio.
	Ratio float64
}

// Points renders the series.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, 0, len(ts.sent))
	for i := range ts.sent {
		p := Point{
			Start:     time.Duration(i) * ts.bucket,
			Sent:      ts.sent[i],
			Delivered: ts.delivered[i],
		}
		if p.Sent > 0 {
			p.Ratio = float64(p.Delivered) / float64(p.Sent)
		}
		out = append(out, p)
	}
	return out
}
