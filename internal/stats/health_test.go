package stats

import (
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestHealthSplitsPDRByWindow(t *testing.T) {
	windows := []Window{{Start: sec(10), End: sec(20)}}
	h := NewHealthTracker(nil, windows)

	// 4 sends outside (all delivered), 4 inside (1 delivered).
	for _, s := range []float64{1, 2, 3, 4} {
		h.RecordSent(1, sec(s))
		h.RecordDelivered(1, sec(s)+time.Millisecond)
	}
	for _, s := range []float64{11, 12, 13, 14} {
		h.RecordSent(1, sec(s))
	}
	h.RecordDelivered(1, sec(11)+time.Millisecond)

	got := h.Health()
	if len(got) != 1 {
		t.Fatalf("groups = %d", len(got))
	}
	g := got[0]
	if g.SteadyPDR != 1 {
		t.Fatalf("steady PDR = %v", g.SteadyPDR)
	}
	if g.OutagePDR != 0.25 {
		t.Fatalf("outage PDR = %v", g.OutagePDR)
	}
	if g.SentInWindows != 4 || g.SentOutside != 4 {
		t.Fatalf("denominators = %d/%d", g.SentInWindows, g.SentOutside)
	}
}

func TestHealthRepairLatency(t *testing.T) {
	onsets := []time.Duration{sec(10), sec(30)}
	h := NewHealthTracker(onsets, []Window{
		{Start: sec(10), End: sec(12)},
		{Start: sec(30), End: sec(32)},
	})

	h.RecordDelivered(1, sec(5))
	// First fault at 10s; delivery resumes at 13s → 3s repair.
	h.RecordSent(1, sec(11))
	h.RecordDelivered(1, sec(13))
	// Second fault at 30s; delivery resumes at 30.5s → 0.5s repair.
	h.RecordDelivered(1, sec(30.5))

	g := h.Health()[0]
	if len(g.RepairLatencies) != 2 {
		t.Fatalf("repairs = %v", g.RepairLatencies)
	}
	if g.RepairLatencies[0] != sec(3) || g.RepairLatencies[1] != sec(0.5) {
		t.Fatalf("repairs = %v", g.RepairLatencies)
	}
	if g.MaxRepair != sec(3) {
		t.Fatalf("max repair = %v", g.MaxRepair)
	}
	if want := sec(1.75); g.MeanRepair != want {
		t.Fatalf("mean repair = %v, want %v", g.MeanRepair, want)
	}
}

func TestHealthAvailability(t *testing.T) {
	h := NewHealthTracker(nil, nil)
	// Deliveries at 0..10s every 100ms, then a 5s silence, then 15..20s.
	for ms := 0; ms <= 10_000; ms += 100 {
		h.RecordDelivered(1, time.Duration(ms)*time.Millisecond)
	}
	for ms := 15_000; ms <= 20_000; ms += 100 {
		h.RecordDelivered(1, time.Duration(ms)*time.Millisecond)
	}
	g := h.Health()[0]
	// Span 20s; one 5s gap exceeds the 1s threshold by 4s → 16/20 available.
	if want := 0.8; g.Availability < want-1e-9 || g.Availability > want+1e-9 {
		t.Fatalf("availability = %v, want %v", g.Availability, want)
	}
}

func TestHealthGroupsAreIndependent(t *testing.T) {
	onsets := []time.Duration{sec(10)}
	h := NewHealthTracker(onsets, []Window{{Start: sec(10), End: sec(15)}})
	h.RecordDelivered(1, sec(5))
	h.RecordDelivered(2, sec(5))
	h.RecordDelivered(1, sec(11)) // group 1 repairs after 1s
	h.RecordDelivered(2, sec(14)) // group 2 repairs after 4s

	hs := h.Health()
	if len(hs) != 2 || hs[0].Group != 1 || hs[1].Group != 2 {
		t.Fatalf("health = %+v", hs)
	}
	if hs[0].MeanRepair != sec(1) || hs[1].MeanRepair != sec(4) {
		t.Fatalf("repairs = %v / %v", hs[0].MeanRepair, hs[1].MeanRepair)
	}
}

// TestHealthOverlappingOutages: two faults whose windows overlap arrive as
// two onsets but ONE merged window (faults.Scheduler merges them). Each
// onset gets its own repair latency, PDR bucketing sees one window, and the
// delivery gap they cause is charged to availability exactly once.
func TestHealthOverlappingOutages(t *testing.T) {
	onsets := []time.Duration{sec(10), sec(11)}
	h := NewHealthTracker(onsets, []Window{{Start: sec(10), End: sec(20)}})

	h.RecordDelivered(1, sec(5))
	h.RecordSent(1, sec(12)) // inside the merged window: bucketed once
	h.RecordDelivered(1, sec(15))

	g := h.Health()[0]
	if len(g.RepairLatencies) != 2 {
		t.Fatalf("repairs = %v, want one per onset", g.RepairLatencies)
	}
	if g.RepairLatencies[0] != sec(5) || g.RepairLatencies[1] != sec(4) {
		t.Fatalf("repairs = %v, want [5s 4s]", g.RepairLatencies)
	}
	if g.SentInWindows != 1 || g.SentOutside != 0 {
		t.Fatalf("send buckets = %d/%d, want 1/0", g.SentInWindows, g.SentOutside)
	}
	// Span 5..15s; a single 10s gap exceeds the threshold by 9s. Two
	// overlapping outages must not charge it twice: 1 - 9/10 = 0.1.
	if want := 0.1; g.Availability < want-1e-9 || g.Availability > want+1e-9 {
		t.Fatalf("availability = %v, want %v (gap double-counted?)", g.Availability, want)
	}
}

// TestHealthBackToBackOutageWindows: outages that touch without overlapping
// stay separate windows; a send in each window buckets as in-window, and the
// repair of the second outage is measured from its own onset.
func TestHealthBackToBackOutageWindows(t *testing.T) {
	onsets := []time.Duration{sec(10), sec(12)}
	h := NewHealthTracker(onsets, []Window{
		{Start: sec(10), End: sec(12)},
		{Start: sec(12), End: sec(14)},
	})
	h.RecordDelivered(1, sec(9))
	h.RecordSent(1, sec(11))
	h.RecordSent(1, sec(13))
	h.RecordSent(1, sec(15))
	h.RecordDelivered(1, sec(13.5))

	g := h.Health()[0]
	if g.SentInWindows != 2 || g.SentOutside != 1 {
		t.Fatalf("send buckets = %d/%d, want 2/1", g.SentInWindows, g.SentOutside)
	}
	if len(g.RepairLatencies) != 2 || g.RepairLatencies[0] != sec(3.5) || g.RepairLatencies[1] != sec(1.5) {
		t.Fatalf("repairs = %v, want [3.5s 1.5s]", g.RepairLatencies)
	}
}

func TestHealthNoFaultsNoRepairs(t *testing.T) {
	h := NewHealthTracker(nil, nil)
	h.RecordSent(1, sec(1))
	h.RecordDelivered(1, sec(1))
	g := h.Health()[0]
	if len(g.RepairLatencies) != 0 || g.MeanRepair != 0 {
		t.Fatalf("phantom repairs: %+v", g)
	}
	if g.Availability != 1 {
		t.Fatalf("availability = %v", g.Availability)
	}
	if g.SteadyPDR != 1 || g.OutagePDR != 0 {
		t.Fatalf("PDRs = %v/%v", g.SteadyPDR, g.OutagePDR)
	}
}
