package stats

import (
	"fmt"
	"sort"
	"time"

	"meshcast/internal/packet"
)

// HealthTracker measures mesh self-healing: how quickly delivery to each
// multicast group resumes after a fault hits (repair latency), how much worse
// delivery is inside fault windows than outside (outage vs steady-state PDR),
// and what fraction of the run each group had live delivery (availability).
//
// It consumes the precomputed fault geometry from a faults.Scheduler — the
// onset instants and the merged fault windows — and a per-group stream of
// send/delivery timestamps fed by the scenario runner. All accounting is
// per-group rather than per-flow: the paper's self-healing question is "when
// does the *group* hear from its sources again", not any one receiver.
// Window is a half-open [Start, End) interval of virtual time during which
// some fault is active (the structural twin of faults.Window).
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

type HealthTracker struct {
	// GapThreshold is the delivery silence that counts as an outage for the
	// availability metric: if a group that has started receiving goes longer
	// than this without any delivery, the gap (beyond the threshold) counts
	// as unavailable time. The default is 1s, i.e. a handful of CBR
	// intervals.
	GapThreshold time.Duration

	onsets  []time.Duration
	windows []Window

	groups map[packet.GroupID]*groupHealth
}

// groupHealth is the per-group accumulator.
type groupHealth struct {
	sentIn, sentOut           uint64 // sends inside / outside fault windows
	deliveredIn, deliveredOut uint64

	firstDelivery time.Duration
	lastDelivery  time.Duration
	anyDelivery   bool
	unavailable   time.Duration // accumulated gap time beyond GapThreshold

	// pendingOnsets are fault onsets not yet answered by a delivery; the
	// next delivery closes all of them at once (repair latency = delivery
	// time minus onset).
	pendingOnsets []time.Duration
	nextOnset     int // index into tracker onsets not yet reached
	repairs       []time.Duration
}

// NewHealthTracker builds a tracker for the given fault schedule. Both slices
// come straight from faults.Scheduler: Onsets() and Windows().
//
// Window mirrors faults.Window structurally (stats cannot import faults —
// that would close an import cycle through the telemetry layer); the
// scenario runner converts between them.
func NewHealthTracker(onsets []time.Duration, windows []Window) *HealthTracker {
	return &HealthTracker{
		GapThreshold: time.Second,
		onsets:       onsets,
		windows:      windows,
		groups:       make(map[packet.GroupID]*groupHealth),
	}
}

func (h *HealthTracker) group(g packet.GroupID) *groupHealth {
	gh, ok := h.groups[g]
	if !ok {
		gh = &groupHealth{}
		h.groups[g] = gh
	}
	return gh
}

// inWindow reports whether t falls inside any fault window.
func (h *HealthTracker) inWindow(t time.Duration) bool {
	// Windows are sorted and disjoint; binary-search the candidate.
	i := sort.Search(len(h.windows), func(i int) bool { return h.windows[i].End > t })
	return i < len(h.windows) && h.windows[i].Contains(t)
}

// advanceOnsets moves every onset at or before now into the group's pending
// set, so the next delivery can close them.
func (h *HealthTracker) advanceOnsets(gh *groupHealth, now time.Duration) {
	for gh.nextOnset < len(h.onsets) && h.onsets[gh.nextOnset] <= now {
		gh.pendingOnsets = append(gh.pendingOnsets, h.onsets[gh.nextOnset])
		gh.nextOnset++
	}
}

// RecordSent notes that some source multicast one data packet to group at
// time now. Calls must be in nondecreasing time order per group (the
// simulator guarantees this).
func (h *HealthTracker) RecordSent(group packet.GroupID, now time.Duration) {
	gh := h.group(group)
	h.advanceOnsets(gh, now)
	if h.inWindow(now) {
		gh.sentIn++
	} else {
		gh.sentOut++
	}
}

// RecordDelivered notes that some member of group received a data packet at
// time now. Calls must be in nondecreasing time order per group.
func (h *HealthTracker) RecordDelivered(group packet.GroupID, now time.Duration) {
	gh := h.group(group)
	h.advanceOnsets(gh, now)
	if h.inWindow(now) {
		gh.deliveredIn++
	} else {
		gh.deliveredOut++
	}
	// Close every pending fault onset: the group hears traffic again, so the
	// mesh has repaired whatever those faults broke (or they never broke the
	// delivery tree at all — those show up as near-zero repair latencies,
	// which is itself a useful signal).
	for _, onset := range gh.pendingOnsets {
		if now >= onset {
			gh.repairs = append(gh.repairs, now-onset)
		}
	}
	gh.pendingOnsets = gh.pendingOnsets[:0]

	if !gh.anyDelivery {
		gh.anyDelivery = true
		gh.firstDelivery = now
	} else if gap := now - gh.lastDelivery; gap > h.GapThreshold {
		gh.unavailable += gap - h.GapThreshold
	}
	gh.lastDelivery = now
}

// GroupHealth is one group's self-healing summary.
type GroupHealth struct {
	Group packet.GroupID
	// OutagePDR / SteadyPDR are the delivery ratios for packets sent inside
	// and outside fault windows respectively.
	OutagePDR, SteadyPDR float64
	// SentInWindows / SentOutside are the corresponding denominators.
	SentInWindows, SentOutside uint64
	// RepairLatencies lists, for each fault onset that occurred while the
	// group was active, the time until the group's next delivery.
	RepairLatencies []time.Duration
	// MeanRepair and MaxRepair summarize RepairLatencies (0 when empty).
	MeanRepair, MaxRepair time.Duration
	// Availability is the fraction of the group's active span (first to last
	// delivery) not spent in delivery gaps longer than GapThreshold.
	Availability float64
}

// Health returns per-group summaries sorted by group ID.
func (h *HealthTracker) Health() []GroupHealth {
	ids := make([]packet.GroupID, 0, len(h.groups))
	for g := range h.groups {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]GroupHealth, 0, len(ids))
	for _, g := range ids {
		gh := h.groups[g]
		r := GroupHealth{
			Group:         g,
			SentInWindows: gh.sentIn,
			SentOutside:   gh.sentOut,
			Availability:  1,
		}
		if gh.sentIn > 0 {
			r.OutagePDR = float64(gh.deliveredIn) / float64(gh.sentIn)
		}
		if gh.sentOut > 0 {
			r.SteadyPDR = float64(gh.deliveredOut) / float64(gh.sentOut)
		}
		if n := len(gh.repairs); n > 0 {
			r.RepairLatencies = append([]time.Duration(nil), gh.repairs...)
			var sum time.Duration
			for _, d := range gh.repairs {
				sum += d
				if d > r.MaxRepair {
					r.MaxRepair = d
				}
			}
			r.MeanRepair = sum / time.Duration(n)
		}
		if span := gh.lastDelivery - gh.firstDelivery; gh.anyDelivery && span > 0 {
			r.Availability = 1 - float64(gh.unavailable)/float64(span)
		}
		out = append(out, r)
	}
	return out
}

// String renders one group's health line, fixed-format for deterministic
// scenario output.
func (g GroupHealth) String() string {
	return fmt.Sprintf(
		"group %v: steady PDR %.3f, outage PDR %.3f, repairs %d (mean %.3fs, max %.3fs), availability %.4f",
		g.Group, g.SteadyPDR, g.OutagePDR, len(g.RepairLatencies),
		g.MeanRepair.Seconds(), g.MaxRepair.Seconds(), g.Availability)
}
