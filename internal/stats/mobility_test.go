package stats

import (
	"testing"
	"time"
)

func TestMobilitySplitsPDRByMotionWindow(t *testing.T) {
	m := NewMobilityTracker(Window{Start: sec(10), End: sec(20)})
	for _, s := range []float64{1, 2, 3, 4} {
		m.RecordSent(1, sec(s))
		m.RecordDelivered(1, sec(s)+time.Millisecond)
	}
	for _, s := range []float64{11, 12, 13, 14} {
		m.RecordSent(1, sec(s))
	}
	m.RecordDelivered(1, sec(11)+time.Millisecond)

	got := m.Mobility()
	if len(got) != 1 {
		t.Fatalf("groups = %d", len(got))
	}
	g := got[0]
	if g.StaticPDR != 1 || g.MotionPDR != 0.25 {
		t.Fatalf("PDRs = %v/%v, want 1/0.25", g.StaticPDR, g.MotionPDR)
	}
	if g.SentInMotion != 4 || g.SentStatic != 4 {
		t.Fatalf("denominators = %d/%d", g.SentInMotion, g.SentStatic)
	}
}

func TestMobilityRepairAndReconvergence(t *testing.T) {
	m := NewMobilityTracker(Window{Start: 0, End: sec(60)})
	m.RecordSent(1, sec(1))
	m.RecordDelivered(1, sec(1))

	// Breaks at 10s cause a 3s silence → one repair (3s) and one
	// reconvergence episode (3s: first unanswered break to recovery).
	m.RecordBreaks(4, sec(10))
	m.RecordDelivered(1, sec(13))

	// Breaks at 20s with delivery flowing right before and 100ms after:
	// routes survived — a repair latency of 0.1s, but no reconvergence
	// (gap under the threshold).
	m.RecordDelivered(1, sec(19.9))
	m.RecordBreaks(2, sec(20))
	m.RecordDelivered(1, sec(20.1))

	g := m.Mobility()[0]
	if g.Repairs != 2 {
		t.Fatalf("repairs = %d, want 2", g.Repairs)
	}
	if g.MaxRepair != sec(3) {
		t.Fatalf("max repair = %v, want 3s", g.MaxRepair)
	}
	if want := sec(1.55); g.MeanRepair != want {
		t.Fatalf("mean repair = %v, want %v", g.MeanRepair, want)
	}
	if g.Reconvergences != 1 || g.MeanReconvergence != sec(3) {
		t.Fatalf("reconvergences = %d (mean %v), want 1 (3s)", g.Reconvergences, g.MeanReconvergence)
	}
	if m.LinkBreaks != 6 {
		t.Fatalf("LinkBreaks = %d, want 6", m.LinkBreaks)
	}
	if want := 0.1; m.BreakRatePerSec() != want {
		t.Fatalf("break rate = %v, want %v", m.BreakRatePerSec(), want)
	}
}

// TestMobilityCoalescesBreaksPerTick: a tick that breaks ten links is one
// repair episode, not ten — the repair metric answers "how long until the
// group delivers again", which is per-disruption.
func TestMobilityCoalescesBreaksPerTick(t *testing.T) {
	m := NewMobilityTracker(Window{Start: 0, End: sec(60)})
	m.RecordDelivered(1, sec(1))
	m.RecordBreaks(10, sec(5))
	m.RecordDelivered(1, sec(6))
	g := m.Mobility()[0]
	if g.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1 (breaks within a tick coalesce)", g.Repairs)
	}
	if m.LinkBreaks != 10 {
		t.Fatalf("LinkBreaks = %d, want 10 (raw count preserved)", m.LinkBreaks)
	}
}

// TestMobilityBreaksBeforeGroupSeen: breaks that precede a group's first
// activity don't owe that group a repair.
func TestMobilityBreaksBeforeGroupSeen(t *testing.T) {
	m := NewMobilityTracker(Window{Start: 0, End: sec(60)})
	m.RecordBreaks(3, sec(2))
	m.RecordSent(1, sec(5))
	m.RecordDelivered(1, sec(5.1))
	if g := m.Mobility()[0]; g.Repairs != 0 {
		t.Fatalf("repairs = %d, want 0 (break predates the group)", g.Repairs)
	}
}

// TestMobilityAndHealthSplitAccounting is the no-double-count contract: when
// faults and mobility run together, both trackers see the same send/delivery
// feed, but availability lives only on HealthTracker (GroupMobility has no
// availability field at all), health repairs come only from fault onsets,
// and mobility repairs only from link breaks — the same delivery gap
// surfaces once per axis, never twice on one.
func TestMobilityAndHealthSplitAccounting(t *testing.T) {
	h := NewHealthTracker([]time.Duration{sec(10)}, []Window{{Start: sec(10), End: sec(12)}})
	m := NewMobilityTracker(Window{Start: 0, End: sec(30)})

	feedSent := func(at time.Duration) { h.RecordSent(1, at); m.RecordSent(1, at) }
	feedDeliv := func(at time.Duration) { h.RecordDelivered(1, at); m.RecordDelivered(1, at) }

	feedSent(sec(1))
	for s := 1.0; s <= 5; s++ {
		feedDeliv(sec(s)) // steady 1 Hz delivery: no availability gaps here
	}
	// A mobility link break at 5s, repaired at 5.5s: mobility records the
	// repair; health must not (no fault onset is pending).
	m.RecordBreaks(1, sec(5))
	feedDeliv(sec(5.5))
	// A fault at 10s causing a 4s silence: health records repair latency and
	// the availability hit; mobility sees no pending break, so it records
	// neither a repair nor a reconvergence for the same gap.
	feedSent(sec(11))
	feedDeliv(sec(14))

	gh := h.Health()[0]
	gm := m.Mobility()[0]
	if len(gh.RepairLatencies) != 1 || gh.RepairLatencies[0] != sec(4) {
		t.Fatalf("health repairs = %v, want [4s] (fault onset only)", gh.RepairLatencies)
	}
	if gm.Repairs != 1 || gm.MeanRepair != sec(0.5) {
		t.Fatalf("mobility repairs = %d (mean %v), want 1 (0.5s) (link break only)", gm.Repairs, gm.MeanRepair)
	}
	if gm.Reconvergences != 0 {
		t.Fatalf("mobility reconvergences = %d, want 0 (the 9s gap belongs to the fault axis)", gm.Reconvergences)
	}
	// The 13s span has one 8.5s gap beyond the threshold by 7.5s — charged
	// once, on the health tracker.
	want := 1 - 7.5/13.0
	if gh.Availability < want-1e-9 || gh.Availability > want+1e-9 {
		t.Fatalf("availability = %v, want %v", gh.Availability, want)
	}
}
