package stats

import (
	"fmt"
	"sort"
	"time"

	"meshcast/internal/packet"
)

// MobilityTracker measures delivery robustness while radios move: per-group
// PDR inside the motion window vs the static phases, route-repair latency
// after link breaks (time from a break tick to the group's next delivery),
// and tree-reconvergence time (for delivery-silence episodes that follow
// breaks, the time from the first unanswered break to the delivery that ends
// the silence — the span the forwarding structure needed to re-form).
//
// Availability is deliberately NOT computed here: HealthTracker owns the
// availability metric, and a run with both faults and mobility active must
// not count the same delivery gap twice (see the no-double-count test in
// health_test.go). The two trackers share the send/delivery feed and split
// the robustness axes: faults → availability and outage PDR; mobility →
// break-driven repair and reconvergence and motion PDR.
//
// Like HealthTracker, accounting is per group, and calls must be in
// nondecreasing time order per group.
type MobilityTracker struct {
	// GapThreshold is the delivery silence after a break that counts as a
	// reconvergence episode rather than ordinary inter-packet spacing.
	// Default 1s, matching HealthTracker.
	GapThreshold time.Duration

	motion Window
	groups map[packet.GroupID]*groupMotion

	// LinkBreaks / LinkForms accumulate the mover's neighbor-graph diff;
	// Moves counts applied position changes. Fed by Record* below.
	LinkBreaks, LinkForms, Moves uint64
}

type groupMotion struct {
	sentIn, sentOut           uint64 // sends inside / outside the motion window
	deliveredIn, deliveredOut uint64

	lastDelivery time.Duration
	anyDelivery  bool

	// pendingBreaks are break ticks not yet answered by a delivery; the next
	// delivery closes them all (repair latency = delivery − break time). At
	// most one pending entry is added per tick: a tick that breaks ten links
	// is one repair episode, not ten.
	pendingBreaks []time.Duration
	repairs       []time.Duration
	reconv        []time.Duration
}

// NewMobilityTracker builds a tracker for a motion window (the [Start, End)
// span during which the mover changes positions).
func NewMobilityTracker(motion Window) *MobilityTracker {
	return &MobilityTracker{
		GapThreshold: time.Second,
		motion:       motion,
		groups:       make(map[packet.GroupID]*groupMotion),
	}
}

func (m *MobilityTracker) group(g packet.GroupID) *groupMotion {
	gm, ok := m.groups[g]
	if !ok {
		gm = &groupMotion{}
		m.groups[g] = gm
	}
	return gm
}

// RecordBreaks notes that n link-range edges broke at time now (one mover
// tick). Every known group gains at most one pending repair onset for the
// tick; groups first seen later are unaffected by earlier breaks.
func (m *MobilityTracker) RecordBreaks(n int, now time.Duration) {
	if n <= 0 {
		return
	}
	m.LinkBreaks += uint64(n)
	for _, gm := range m.groups {
		if k := len(gm.pendingBreaks); k == 0 || gm.pendingBreaks[k-1] < now {
			gm.pendingBreaks = append(gm.pendingBreaks, now)
		}
	}
}

// RecordForms notes n new link-range edges at time now.
func (m *MobilityTracker) RecordForms(n int, now time.Duration) {
	if n > 0 {
		m.LinkForms += uint64(n)
	}
}

// RecordSent notes one multicast data send to group at time now.
func (m *MobilityTracker) RecordSent(group packet.GroupID, now time.Duration) {
	gm := m.group(group)
	if m.motion.Contains(now) {
		gm.sentIn++
	} else {
		gm.sentOut++
	}
}

// RecordDelivered notes that some member of group received a data packet at
// time now, closing any pending break onsets (the routes repaired) and —
// when the delivery ends a silence longer than GapThreshold that followed a
// break — recording a reconvergence episode.
func (m *MobilityTracker) RecordDelivered(group packet.GroupID, now time.Duration) {
	gm := m.group(group)
	if m.motion.Contains(now) {
		gm.deliveredIn++
	} else {
		gm.deliveredOut++
	}
	if len(gm.pendingBreaks) > 0 {
		if gm.anyDelivery && now-gm.lastDelivery > m.GapThreshold {
			if span := now - gm.pendingBreaks[0]; span > 0 {
				gm.reconv = append(gm.reconv, span)
			}
		}
		for _, brk := range gm.pendingBreaks {
			if now >= brk {
				gm.repairs = append(gm.repairs, now-brk)
			}
		}
		gm.pendingBreaks = gm.pendingBreaks[:0]
	}
	gm.anyDelivery = true
	gm.lastDelivery = now
}

// GroupMobility is one group's motion-robustness summary.
type GroupMobility struct {
	Group packet.GroupID
	// MotionPDR / StaticPDR are delivery ratios for packets sent inside and
	// outside the motion window.
	MotionPDR, StaticPDR float64
	// SentInMotion / SentStatic are the corresponding denominators.
	SentInMotion, SentStatic uint64
	// Repairs counts break ticks answered by a later delivery; MeanRepair
	// and MaxRepair summarize the latencies (0 when none).
	Repairs               int
	MeanRepair, MaxRepair time.Duration
	// Reconvergences counts delivery-silence episodes (> GapThreshold) that
	// followed link breaks; MeanReconvergence and MaxReconvergence measure
	// first-break-to-recovery spans.
	Reconvergences                      int
	MeanReconvergence, MaxReconvergence time.Duration
}

// Mobility returns per-group summaries sorted by group ID.
func (m *MobilityTracker) Mobility() []GroupMobility {
	ids := make([]packet.GroupID, 0, len(m.groups))
	for g := range m.groups {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]GroupMobility, 0, len(ids))
	for _, g := range ids {
		gm := m.groups[g]
		r := GroupMobility{
			Group:        g,
			SentInMotion: gm.sentIn,
			SentStatic:   gm.sentOut,
		}
		if gm.sentIn > 0 {
			r.MotionPDR = float64(gm.deliveredIn) / float64(gm.sentIn)
		}
		if gm.sentOut > 0 {
			r.StaticPDR = float64(gm.deliveredOut) / float64(gm.sentOut)
		}
		if n := len(gm.repairs); n > 0 {
			r.Repairs = n
			var sum time.Duration
			for _, d := range gm.repairs {
				sum += d
				if d > r.MaxRepair {
					r.MaxRepair = d
				}
			}
			r.MeanRepair = sum / time.Duration(n)
		}
		if n := len(gm.reconv); n > 0 {
			r.Reconvergences = n
			var sum time.Duration
			for _, d := range gm.reconv {
				sum += d
				if d > r.MaxReconvergence {
					r.MaxReconvergence = d
				}
			}
			r.MeanReconvergence = sum / time.Duration(n)
		}
		out = append(out, r)
	}
	return out
}

// BreakRatePerSec returns link breaks per second of motion window (0 when
// the window is empty).
func (m *MobilityTracker) BreakRatePerSec() float64 {
	span := (m.motion.End - m.motion.Start).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(m.LinkBreaks) / span
}

// String renders one group's mobility line, fixed-format for deterministic
// scenario output.
func (g GroupMobility) String() string {
	return fmt.Sprintf(
		"group %v: motion PDR %.3f, static PDR %.3f, repairs %d (mean %.3fs, max %.3fs), reconvergences %d (mean %.3fs)",
		g.Group, g.MotionPDR, g.StaticPDR, g.Repairs,
		g.MeanRepair.Seconds(), g.MaxRepair.Seconds(),
		g.Reconvergences, g.MeanReconvergence.Seconds())
}
