package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummarizeBasicPDR(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
	}
	for i := 0; i < 8; i++ {
		c.RecordDelivered(5, 1, 0, 512, 10*time.Millisecond)
	}
	s := c.Summarize()
	if math.Abs(s.PDR-0.8) > 1e-9 {
		t.Fatalf("PDR = %v, want 0.8", s.PDR)
	}
	if s.PacketsSent != 10 || s.PacketsDelivered != 8 {
		t.Fatalf("counts = (%d, %d)", s.PacketsSent, s.PacketsDelivered)
	}
	if s.DataBytesReceived != 8*512 {
		t.Fatalf("bytes = %d", s.DataBytesReceived)
	}
	if math.Abs(s.MeanDelaySeconds-0.010) > 1e-9 {
		t.Fatalf("delay = %v, want 0.010", s.MeanDelaySeconds)
	}
}

func TestSummarizeAveragesAcrossMembers(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.Subscribe(6, 1, 0)
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
	}
	for i := 0; i < 10; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		c.RecordDelivered(6, 1, 0, 512, time.Millisecond)
	}
	s := c.Summarize()
	if math.Abs(s.PDR-0.75) > 1e-9 {
		t.Fatalf("PDR = %v, want 0.75", s.PDR)
	}
}

func TestSilentMemberDragsPDRDown(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.Subscribe(6, 1, 0) // never receives anything
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
	}
	for i := 0; i < 10; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
	}
	s := c.Summarize()
	if math.Abs(s.PDR-0.5) > 1e-9 {
		t.Fatalf("PDR = %v, want 0.5 (silent member counts as 0)", s.PDR)
	}
}

func TestProbeOverheadPct(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.RecordSent(1, 0)
	c.RecordDelivered(5, 1, 0, 1000, time.Millisecond)
	c.ProbeBytes = 30
	s := c.Summarize()
	if math.Abs(s.ProbeOverheadPct-3.0) > 1e-9 {
		t.Fatalf("overhead = %v%%, want 3%%", s.ProbeOverheadPct)
	}
}

func TestEmptyCollector(t *testing.T) {
	s := NewCollector().Summarize()
	if s.PDR != 0 || s.MeanDelaySeconds != 0 || s.ProbeOverheadPct != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPerMemberPDRSorted(t *testing.T) {
	c := NewCollector()
	c.Subscribe(7, 2, 1)
	c.Subscribe(5, 1, 0)
	c.Subscribe(6, 1, 0)
	for i := 0; i < 4; i++ {
		c.RecordSent(1, 0)
		c.RecordSent(2, 1)
	}
	c.RecordDelivered(6, 1, 0, 512, time.Millisecond)
	got := c.PerMemberPDR()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	if got[0].Member != 5 || got[1].Member != 6 || got[2].Member != 7 {
		t.Fatalf("order = %v", got)
	}
	if got[0].PDR != 0 || math.Abs(got[1].PDR-0.25) > 1e-9 {
		t.Fatalf("PDRs = %v", got)
	}
	if got[1].String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestMultipleFlowsIndependent(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.Subscribe(5, 2, 9)
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
	}
	for i := 0; i < 2; i++ {
		c.RecordSent(2, 9)
	}
	for i := 0; i < 5; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
	}
	c.RecordDelivered(5, 2, 9, 512, time.Millisecond)
	// Flow 1: 0.5; flow 2: 0.5 → mean 0.5.
	s := c.Summarize()
	if math.Abs(s.PDR-0.5) > 1e-9 {
		t.Fatalf("PDR = %v, want 0.5", s.PDR)
	}
}

func TestFairnessIndex(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.Subscribe(6, 1, 0)
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
	}
	// Perfectly equal members: fairness 1.
	for i := 0; i < 6; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
		c.RecordDelivered(6, 1, 0, 512, time.Millisecond)
	}
	if f := c.Summarize().Fairness; math.Abs(f-1) > 1e-9 {
		t.Fatalf("equal members fairness = %v, want 1", f)
	}
	// Skew one member heavily: fairness drops.
	for i := 0; i < 4; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
	}
	if f := c.Summarize().Fairness; f >= 0.999 {
		t.Fatalf("skewed fairness = %v, want < 1", f)
	}
}

func TestGroupSummaryIsolation(t *testing.T) {
	c := NewCollector()
	c.Subscribe(5, 1, 0)
	c.Subscribe(6, 2, 9)
	for i := 0; i < 10; i++ {
		c.RecordSent(1, 0)
		c.RecordSent(2, 9)
	}
	for i := 0; i < 10; i++ {
		c.RecordDelivered(5, 1, 0, 512, time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		c.RecordDelivered(6, 2, 9, 512, time.Millisecond)
	}
	g1 := c.GroupSummary(1)
	g2 := c.GroupSummary(2)
	if math.Abs(g1.PDR-1.0) > 1e-9 {
		t.Fatalf("group 1 PDR = %v", g1.PDR)
	}
	if math.Abs(g2.PDR-0.2) > 1e-9 {
		t.Fatalf("group 2 PDR = %v", g2.PDR)
	}
	if g1.PacketsSent != 10 || g2.PacketsDelivered != 2 {
		t.Fatalf("group isolation broken: %+v %+v", g1, g2)
	}
	empty := c.GroupSummary(99)
	if empty.PDR != 0 || empty.PacketsSent != 0 {
		t.Fatalf("unknown group summary = %+v", empty)
	}
}
