// Package stats collects and aggregates the measurements the paper reports:
// per-receiver throughput (packet delivery ratio), end-to-end delay, and
// probing overhead as a percentage of data bytes received.
package stats

import (
	"fmt"
	"sort"
	"time"

	"meshcast/internal/packet"
)

// flowKey identifies a (group, source) multicast flow.
type flowKey struct {
	group packet.GroupID
	src   packet.NodeID
}

// memberKey identifies one receiver's subscription to a flow.
type memberKey struct {
	flow   flowKey
	member packet.NodeID
}

// Collector accumulates end-to-end delivery measurements for a run.
type Collector struct {
	sent        map[flowKey]uint64
	delivered   map[memberKey]uint64
	bytes       map[memberKey]uint64
	delaySum    map[memberKey]time.Duration
	subscribers map[memberKey]bool

	// ProbeBytes and ControlBytes are network-layer byte totals fed in at
	// the end of a run from the per-node counters.
	ProbeBytes   uint64
	ControlBytes uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		sent:      make(map[flowKey]uint64),
		delivered: make(map[memberKey]uint64),
		bytes:     make(map[memberKey]uint64),
		delaySum:  make(map[memberKey]time.Duration),
	}
}

// RecordSent notes that src multicast one data packet to group.
func (c *Collector) RecordSent(group packet.GroupID, src packet.NodeID) {
	c.sent[flowKey{group, src}]++
}

// SetSent overwrites the sent count for a flow; scenario runners that track
// source counters externally feed them in at the end of a run.
func (c *Collector) SetSent(group packet.GroupID, src packet.NodeID, n uint64) {
	c.sent[flowKey{group, src}] = n
}

// RecordDelivered notes that member received a data packet of the given
// payload size from src on group, with end-to-end delay d.
func (c *Collector) RecordDelivered(member packet.NodeID, group packet.GroupID, src packet.NodeID, payloadBytes int, d time.Duration) {
	k := memberKey{flowKey{group, src}, member}
	c.delivered[k]++
	c.bytes[k] += uint64(payloadBytes)
	c.delaySum[k] += d
}

// Summary aggregates a run's results.
type Summary struct {
	// PDR is the mean packet delivery ratio over all (flow, member) pairs:
	// the paper's throughput measure (CBR sources make the two
	// proportional).
	PDR float64
	// MeanDelaySeconds is the mean end-to-end delay over delivered packets.
	MeanDelaySeconds float64
	// DataBytesReceived is the total payload bytes delivered to members.
	DataBytesReceived uint64
	// PacketsSent / PacketsDelivered are run totals (delivered counts each
	// member separately).
	PacketsSent, PacketsDelivered uint64
	// ProbeOverheadPct is probe bytes as a percentage of data bytes
	// received (paper Table 1).
	ProbeOverheadPct float64
	// Fairness is Jain's fairness index over per-subscription delivery
	// ratios: 1.0 when every member fares equally, approaching 1/n when
	// one member gets everything. Multicast protocols can trade mean
	// throughput against member fairness; the index makes that visible.
	Fairness float64
}

// Summarize computes the run summary.
func (c *Collector) Summarize() Summary {
	var s Summary
	var pdrSum, pdrSqSum float64
	var pdrN int
	// Iterate in sorted key order: floating-point sums must not depend on
	// map iteration order, or same-seed runs would differ in the last bit.
	keys := make([]memberKey, 0, len(c.delivered))
	for mk := range c.delivered {
		keys = append(keys, mk)
	}
	sort.Slice(keys, func(i, j int) bool { return lessMemberKey(keys[i], keys[j]) })
	for _, mk := range keys {
		got := c.delivered[mk]
		sent := c.sent[mk.flow]
		if sent == 0 {
			continue
		}
		pdr := float64(got) / float64(sent)
		pdrSum += pdr
		pdrSqSum += pdr * pdr
		pdrN++
		s.PacketsDelivered += got
		s.DataBytesReceived += c.bytes[mk]
	}
	// Members that received nothing still count as PDR 0: enumerate
	// subscriptions via Subscribe.
	for mk := range c.subscribers {
		if _, ok := c.delivered[mk]; ok {
			continue
		}
		if c.sent[mk.flow] == 0 {
			continue
		}
		pdrN++
	}
	if pdrN > 0 {
		s.PDR = pdrSum / float64(pdrN)
	}
	if pdrSqSum > 0 {
		s.Fairness = pdrSum * pdrSum / (float64(pdrN) * pdrSqSum)
	}
	for _, sent := range c.sent {
		s.PacketsSent += sent
	}
	var delaySum time.Duration
	for _, d := range c.delaySum {
		delaySum += d
	}
	if s.PacketsDelivered > 0 {
		s.MeanDelaySeconds = (delaySum / time.Duration(s.PacketsDelivered)).Seconds()
	}
	if s.DataBytesReceived > 0 {
		s.ProbeOverheadPct = 100 * float64(c.ProbeBytes) / float64(s.DataBytesReceived)
	}
	return s
}

// lessMemberKey orders member keys by (group, source, member).
func lessMemberKey(a, b memberKey) bool {
	if a.flow.group != b.flow.group {
		return a.flow.group < b.flow.group
	}
	if a.flow.src != b.flow.src {
		return a.flow.src < b.flow.src
	}
	return a.member < b.member
}

// subscribers tracks declared (flow, member) pairs so that members that
// never received anything drag the PDR down instead of disappearing.
// Initialized lazily by Subscribe.
func (c *Collector) subscribe(k memberKey) {
	if c.subscribers == nil {
		c.subscribers = make(map[memberKey]bool)
	}
	c.subscribers[k] = true
}

// Subscribe declares that member intends to receive src's flow on group.
func (c *Collector) Subscribe(member packet.NodeID, group packet.GroupID, src packet.NodeID) {
	c.subscribe(memberKey{flowKey{group, src}, member})
}

// GroupSummary computes a Summary restricted to one multicast group.
func (c *Collector) GroupSummary(group packet.GroupID) Summary {
	sub := NewCollector()
	for fk, n := range c.sent {
		if fk.group == group {
			sub.sent[fk] = n
		}
	}
	for mk, n := range c.delivered {
		if mk.flow.group == group {
			sub.delivered[mk] = n
			sub.bytes[mk] = c.bytes[mk]
			sub.delaySum[mk] = c.delaySum[mk]
		}
	}
	for mk := range c.subscribers {
		if mk.flow.group == group {
			sub.subscribe(mk)
		}
	}
	return sub.Summarize()
}

// PerMemberPDR returns each subscription's delivery ratio keyed by
// "group/src->member" strings, sorted for stable output.
func (c *Collector) PerMemberPDR() []MemberPDR {
	keys := make(map[memberKey]bool, len(c.subscribers)+len(c.delivered))
	for k := range c.subscribers {
		keys[k] = true
	}
	for k := range c.delivered {
		keys[k] = true
	}
	out := make([]MemberPDR, 0, len(keys))
	for k := range keys {
		sent := c.sent[k.flow]
		var pdr float64
		if sent > 0 {
			pdr = float64(c.delivered[k]) / float64(sent)
		}
		out = append(out, MemberPDR{
			Group:  k.flow.group,
			Source: k.flow.src,
			Member: k.member,
			PDR:    pdr,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Member < b.Member
	})
	return out
}

// MemberPDR is one receiver's delivery ratio for one flow.
type MemberPDR struct {
	Group  packet.GroupID
	Source packet.NodeID
	Member packet.NodeID
	PDR    float64
}

// String implements fmt.Stringer.
func (m MemberPDR) String() string {
	return fmt.Sprintf("%v/%v->%v: %.3f", m.Group, m.Source, m.Member, m.PDR)
}
