package emu

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"meshcast/internal/faults"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
	"meshcast/internal/stats"
)

// ChaosConfig compiles a fault plan for the live testbed. The same JSON
// fault scripts the simulator consumes (internal/faults) drive the live
// fleet: node indices address the fleet's sorted node-ID list, and the
// script's virtual times are mapped to the wall clock by TimeScale.
type ChaosConfig struct {
	// Plan is the fault plan (e.g. faults.LoadPlan of a JSON script).
	Plan faults.Plan
	// Seed drives the churn draws; same seed, same kill schedule.
	Seed uint64
	// TimeScale converts the plan's virtual seconds to wall-clock seconds:
	// wall = virtual × TimeScale. A script written for a 200 s simulation
	// replays in 10 s of wall time at TimeScale 0.05. Zero means 1.
	TimeScale float64
	// Horizon is the plan's virtual-time horizon (bounds churn sampling).
	// With TimeScale t, the corresponding wall-clock run length is
	// Horizon × t.
	Horizon time.Duration
}

// ChaosEvent is one entry of the wall-clock fault schedule.
type ChaosEvent struct {
	// At is the wall-clock offset from the run start.
	At time.Duration
	// Kind is one of the faults.Event* constants.
	Kind string
	// Node is the plan's node index, or -1 for link/partition/ether events.
	Node int
	// ID is the node ID the index maps to (unset when Node is -1).
	ID packet.NodeID
}

// Chaos adapts a compiled fault plan to the live testbed's wall clock. It
// is the virtual→wall bridge: the schedule (Events, Onsets, Windows) comes
// out pre-scaled, and DropProb evaluates the plan's link faults and
// partitions at the wall-mapped virtual "now" so it can serve as the
// ether's impairment hook.
type Chaos struct {
	compiled *faults.Compiled
	outages  []faults.Outage // cached: NodeDown runs on the ether hot path
	nodes    []packet.NodeID
	scale    float64

	mu    sync.Mutex
	start time.Time
}

// NewChaos compiles cfg.Plan against the given node-ID list (index i of the
// plan addresses nodes[i]; pass the fleet's NodeIDs). The compilation is
// deterministic: one (plan, seed, nodes, horizon) tuple always yields the
// same timeline.
func NewChaos(cfg ChaosConfig, nodes []packet.NodeID) (*Chaos, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("emu: chaos needs at least one node")
	}
	scale := cfg.TimeScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("emu: negative chaos time scale %v", scale)
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 24 * time.Hour // effectively unbounded for live runs
	}
	compiled, err := faults.Compile(cfg.Plan, sim.NewRNG(cfg.Seed^0xc4a05), len(nodes), horizon)
	if err != nil {
		return nil, err
	}
	ids := append([]packet.NodeID(nil), nodes...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &Chaos{compiled: compiled, outages: compiled.Outages(), nodes: ids, scale: scale}, nil
}

// Nodes returns the index→ID mapping (sorted node IDs).
func (c *Chaos) Nodes() []packet.NodeID {
	return append([]packet.NodeID(nil), c.nodes...)
}

// wall converts a virtual duration from the plan to wall-clock time.
func (c *Chaos) wall(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.scale)
}

// virtualNow maps the current wall clock back to plan time (zero before
// Begin). A zero scale cannot occur (NewChaos defaults it to 1).
func (c *Chaos) virtualNow() time.Duration {
	c.mu.Lock()
	start := c.start
	c.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Duration(float64(time.Since(start)) / c.scale)
}

// Begin anchors the schedule to the run's wall-clock start. Call it when
// the fleet starts running; DropProb evaluates to "no impairment" before.
func (c *Chaos) Begin(start time.Time) {
	c.mu.Lock()
	c.start = start
	c.mu.Unlock()
}

// Events returns the full wall-clock fault schedule, sorted by time. It is
// a pure function of the chaos config — two same-seed compilations produce
// identical schedules, which is what makes live chaos runs comparable
// across metrics.
func (c *Chaos) Events() []ChaosEvent {
	timeline := c.compiled.Timeline()
	out := make([]ChaosEvent, 0, len(timeline))
	for _, e := range timeline {
		ce := ChaosEvent{At: c.wall(e.At), Kind: e.Kind, Node: e.Node}
		if e.Node >= 0 && e.Node < len(c.nodes) {
			ce.ID = c.nodes[e.Node]
		}
		out = append(out, ce)
	}
	return out
}

// Onsets returns every fault onset in wall-clock time — the reference
// points for repair-latency measurement.
func (c *Chaos) Onsets() []time.Duration {
	onsets := c.compiled.Onsets()
	out := make([]time.Duration, len(onsets))
	for i, t := range onsets {
		out[i] = c.wall(t)
	}
	return out
}

// Windows returns the merged fault windows in wall-clock time, in the
// stats package's Window form for direct HealthTracker construction.
func (c *Chaos) Windows() []stats.Window {
	ws := c.compiled.Windows()
	out := make([]stats.Window, len(ws))
	for i, w := range ws {
		out[i] = stats.Window{Start: c.wall(w.Start), End: c.wall(w.End)}
	}
	return out
}

// DownCount returns the number of node crash episodes in the schedule.
func (c *Chaos) DownCount() int { return c.compiled.DownCount() }

// ActiveFaults returns how many fault episodes are active at the current
// wall time (0 before Begin) — the live "chaos.active" telemetry gauge.
func (c *Chaos) ActiveFaults() int {
	return c.compiled.ActiveFaults(c.virtualNow())
}

// DropProb is the ether impairment hook: the extra drop probability for a
// directed pair right now, from the plan's link faults and partitions. The
// plan addresses nodes by index, so IDs are mapped back through the sorted
// node list; unknown IDs are never impaired.
func (c *Chaos) DropProb(from, to packet.NodeID) float64 {
	now := c.virtualNow()
	fi := c.index(from)
	ti := c.index(to)
	if fi < 0 || ti < 0 {
		return 0
	}
	// faults.Compiled.Impairment takes node indices in NodeID clothing —
	// the simulator's node IDs are its indices. Translate explicitly here.
	return c.compiled.Impairment(packet.NodeID(fi), packet.NodeID(ti), now).DropProb
}

// NodeDown reports whether the node is inside a scripted or churn outage
// window at the current wall time. The supervised fleet kills the daemon
// process outright; etherd, which cannot kill external daemons, folds this
// into its impairment hook instead — a down node's radio goes dark.
func (c *Chaos) NodeDown(id packet.NodeID) bool {
	i := c.index(id)
	if i < 0 {
		return false
	}
	now := c.virtualNow()
	for _, o := range c.outages {
		if o.Node == i && now >= o.Start && now < o.Start+o.Duration {
			return true
		}
	}
	return false
}

// index maps a node ID back to its plan index (-1 when unknown).
func (c *Chaos) index(id packet.NodeID) int {
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i] >= id })
	if i < len(c.nodes) && c.nodes[i] == id {
		return i
	}
	return -1
}
