package emu

import (
	"context"
	"sync"
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
)

func TestLinkTable(t *testing.T) {
	lt := NewLinkTable(0.5)
	if got := lt.DF(1, 2); got != 0.5 {
		t.Fatalf("default DF = %v", got)
	}
	lt.Set(1, 2, 0.9)
	if got := lt.DF(1, 2); got != 0.9 {
		t.Fatalf("DF(1,2) = %v", got)
	}
	if got := lt.DF(2, 1); got != 0.5 {
		t.Fatalf("reverse not defaulted: %v", got)
	}
	lt.SetSymmetric(3, 4, 0.7)
	if lt.DF(3, 4) != 0.7 || lt.DF(4, 3) != 0.7 {
		t.Fatal("SetSymmetric did not set both directions")
	}
}

func TestEtherBroadcastFanOut(t *testing.T) {
	ether, err := NewEther("127.0.0.1:0", NewLinkTable(1.0), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()

	var mu sync.Mutex
	received := map[packet.NodeID][]packet.NodeID{} // receiver -> senders seen
	var conns []*NodeConn
	for id := packet.NodeID(1); id <= 3; id++ {
		id := id
		c, err := Dial(id, ether.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetOnPacket(func(p *packet.Packet, from packet.NodeID) {
			mu.Lock()
			received[id] = append(received[id], from)
			mu.Unlock()
		})
		conns = append(conns, c)
	}
	// Registration datagrams race with the first frame; give them a moment.
	time.Sleep(100 * time.Millisecond)

	if !conns[0].Send(&packet.Packet{Kind: packet.TypeData, Src: 1, Seq: 7, PayloadBytes: 100}) {
		t.Fatal("send failed")
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		got2, got3 := len(received[2]), len(received[3])
		got1 := len(received[1])
		mu.Unlock()
		if got2 == 1 && got3 == 1 {
			if got1 != 0 {
				t.Fatal("sender received its own frame")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("fan-out incomplete: n2=%d n3=%d", got2, got3)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestEtherAppliesLoss(t *testing.T) {
	links := NewLinkTable(1.0)
	links.Set(1, 2, 0.0) // 1 -> 2 totally dead
	ether, err := NewEther("127.0.0.1:0", links, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()

	var mu sync.Mutex
	var got2, got3 int
	c1, err := Dial(1, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(2, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetOnPacket(func(*packet.Packet, packet.NodeID) { mu.Lock(); got2++; mu.Unlock() })
	c3, err := Dial(3, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.SetOnPacket(func(*packet.Packet, packet.NodeID) { mu.Lock(); got3++; mu.Unlock() })
	time.Sleep(100 * time.Millisecond)

	for i := 0; i < 20; i++ {
		c1.Send(&packet.Packet{Kind: packet.TypeData, Src: 1, Seq: uint32(i)})
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if got2 != 0 {
		t.Fatalf("dead link delivered %d frames", got2)
	}
	if got3 != 20 {
		t.Fatalf("clean link delivered %d of 20", got3)
	}
}

func TestNodeConnCloseIdempotent(t *testing.T) {
	ether, err := NewEther("127.0.0.1:0", NewLinkTable(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()
	c, err := Dial(1, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != ErrClosed {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
	if c.Send(&packet.Packet{Kind: packet.TypeData}) {
		t.Fatal("send on closed conn succeeded")
	}
}

func TestDriverRunsScheduledEvents(t *testing.T) {
	d := NewDriver(1)
	var mu sync.Mutex
	fired := 0
	d.Engine().Schedule(30*time.Millisecond, func() { mu.Lock(); fired++; mu.Unlock() })
	d.Engine().Schedule(60*time.Millisecond, func() { mu.Lock(); fired++; mu.Unlock() })
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	d.Run(ctx)
	mu.Lock()
	defer mu.Unlock()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestDriverInjection(t *testing.T) {
	d := NewDriver(1)
	var mu sync.Mutex
	var order []string
	d.Engine().Schedule(50*time.Millisecond, func() { mu.Lock(); order = append(order, "timer"); mu.Unlock() })
	go func() {
		time.Sleep(10 * time.Millisecond)
		d.Inject(func() { mu.Lock(); order = append(order, "inject"); mu.Unlock() })
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	d.Run(ctx)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "inject" || order[1] != "timer" {
		t.Fatalf("order = %v, want [inject timer]", order)
	}
}

// tightenRegTiming speeds up the registration keepalive for restart tests
// and restores the defaults on cleanup.
func tightenRegTiming(t *testing.T) {
	t.Helper()
	savedMin, savedMax, savedRefresh, savedRead := regRetryMin, regRetryMax, regRefresh, readDeadline
	regRetryMin = 20 * time.Millisecond
	regRetryMax = 200 * time.Millisecond
	regRefresh = 100 * time.Millisecond
	readDeadline = 50 * time.Millisecond
	t.Cleanup(func() {
		regRetryMin, regRetryMax, regRefresh, readDeadline = savedMin, savedMax, savedRefresh, savedRead
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func hasClient(e *Ether, id packet.NodeID) bool {
	for _, c := range e.Clients() {
		if c == id {
			return true
		}
	}
	return false
}

func TestNodeConnReregistersAfterEtherRestart(t *testing.T) {
	tightenRegTiming(t)
	ether, err := NewEther("127.0.0.1:0", NewLinkTable(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := ether.Addr()
	c, err := Dial(5, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, 2*time.Second, "initial registration", func() bool { return hasClient(ether, 5) })
	waitFor(t, 2*time.Second, "registration ack", c.Registered)

	if err := ether.Close(); err != nil {
		t.Fatal(err)
	}
	// A new ether on the same port has an empty client table; the daemon's
	// periodic re-registration must repopulate it without any help.
	ether2, err := NewEther(addr, NewLinkTable(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ether2.Close()
	waitFor(t, 3*time.Second, "re-registration with restarted ether", func() bool { return hasClient(ether2, 5) })
}

// TestDaemonReconnectsAfterEtherRestart kills the ether mid-session and
// brings a fresh one up on the same port: both daemons must re-register and
// delivery must resume.
func TestDaemonReconnectsAfterEtherRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	tightenRegTiming(t)
	ether, err := NewEther("127.0.0.1:0", NewLinkTable(1), 7)
	if err != nil {
		t.Fatal(err)
	}
	addr := ether.Addr()

	mk := func(cfg DaemonConfig) *Daemon {
		cfg.EtherAddr = addr
		cfg.Metric = metric.SPP
		cfg.SendInterval = 20 * time.Millisecond
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	src := mk(DaemonConfig{ID: 1, SourceGroups: []packet.GroupID{9}, Seed: 1})
	sink := mk(DaemonConfig{ID: 2, JoinGroups: []packet.GroupID{9}, Seed: 2})
	defer src.Close()
	defer sink.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, d := range []*Daemon{src, sink} {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Run(ctx)
		}()
	}

	waitFor(t, 5*time.Second, "initial delivery", func() bool { return len(sink.Delivered()) >= 5 })

	if err := ether.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // outage: sends go nowhere
	before := len(sink.Delivered())

	ether2, err := NewEther(addr, NewLinkTable(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ether2.Close()

	waitFor(t, 5*time.Second, "delivery to resume after ether restart", func() bool {
		return len(sink.Delivered()) >= before+5
	})
	cancel()
	wg.Wait()
}

// TestDaemonEndToEnd runs a real three-daemon multicast session over
// loopback UDP: source 1 — relay 2 — receiver 3, with the 1-3 link dead so
// delivery requires the forwarding group at node 2.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	links := NewLinkTable(1.0)
	links.SetSymmetric(1, 3, 0) // force two-hop topology
	ether, err := NewEther("127.0.0.1:0", links, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()

	mk := func(cfg DaemonConfig) *Daemon {
		cfg.EtherAddr = ether.Addr()
		cfg.Metric = metric.SPP
		cfg.SendInterval = 20 * time.Millisecond
		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	src := mk(DaemonConfig{ID: 1, SourceGroups: []packet.GroupID{9}, Seed: 1})
	relay := mk(DaemonConfig{ID: 2, Seed: 2})
	sink := mk(DaemonConfig{ID: 3, JoinGroups: []packet.GroupID{9}, Seed: 3})
	defer src.Close()
	defer relay.Close()
	defer sink.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, d := range []*Daemon{src, relay, sink} {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Run(ctx)
		}()
	}
	wg.Wait()

	sent := src.SentCount()
	got := len(sink.Delivered())
	if sent == 0 {
		t.Fatal("source sent nothing")
	}
	if got == 0 {
		t.Fatalf("receiver got nothing of %d sent (forwarding group never formed?)", sent)
	}
	// The relay must have become a forwarder for delivery to happen at all
	// (the direct link is dead); expect the majority of packets through.
	if float64(got) < 0.5*float64(sent) {
		t.Fatalf("delivered only %d of %d", got, sent)
	}
	for _, p := range sink.Delivered() {
		if p.Src != 1 || p.Group != 9 {
			t.Fatalf("unexpected delivery %+v", p)
		}
	}
}
