package emu

import (
	"context"
	"sort"
	"sync"
	"time"

	"meshcast/internal/faults"
	"meshcast/internal/packet"
)

// SupervisorConfig tunes the fleet supervisor.
type SupervisorConfig struct {
	// CheckInterval is the supervision loop period: scheduled chaos events
	// fire and liveness is polled at this granularity (default 50 ms).
	CheckInterval time.Duration
	// ActivityWindow is how recently a daemon must have shown protocol
	// activity to count as alive (default 2 s — several probe intervals).
	ActivityWindow time.Duration
	// UnhealthyAfter is how long an *unscheduled* dead daemon is tolerated
	// before the supervisor force-restarts it (default 3 s; negative
	// disables the watchdog, leaving only scripted kills/restarts).
	UnhealthyAfter time.Duration
	// RestartBackoff and RestartBackoffMax bound the capped exponential
	// backoff between restart attempts when reviving a daemon fails (the
	// ether may still be down, or the OS may hold the socket): 100 ms
	// doubling up to 2 s by default.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.CheckInterval <= 0 {
		c.CheckInterval = 50 * time.Millisecond
	}
	if c.ActivityWindow <= 0 {
		c.ActivityWindow = 2 * time.Second
	}
	if c.UnhealthyAfter == 0 {
		c.UnhealthyAfter = 3 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 2 * time.Second
	}
	return c
}

// expBackoff returns a stateful step function yielding the capped
// exponential backoff sequence RestartBackoff, 2×, 4×, ... clamped at
// RestartBackoffMax. Every restart invocation gets a fresh sequence, so a
// successful revive resets the next failure's delay to the floor.
func (c SupervisorConfig) expBackoff() func() time.Duration {
	next := c.RestartBackoff
	return func() time.Duration {
		d := next
		if next *= 2; next > c.RestartBackoffMax {
			next = c.RestartBackoffMax
		}
		return d
	}
}

// FleetEvent is one supervision action actually executed (as opposed to
// ChaosEvent, which is the schedule).
type FleetEvent struct {
	// At is the wall-clock offset from the fleet's run start.
	At time.Duration
	// Kind is one of "kill", "restart", "restart-failed", "watchdog-restart",
	// "ether-down", "ether-up".
	Kind string
	// Node is the affected node (0 for ether events).
	Node packet.NodeID
	// Backoff is the delay before the next attempt, set on "restart-failed"
	// events — the observable the backoff tests and control plane read.
	Backoff time.Duration `json:",omitempty"`
}

// NodeReport is one node's supervision outcome.
type NodeReport struct {
	ID       packet.NodeID
	Kills    int
	Restarts int
	Downtime time.Duration
	// Availability is 1 − downtime/elapsed.
	Availability float64
}

// SupervisorReport summarizes a supervised run.
type SupervisorReport struct {
	Elapsed time.Duration
	// Nodes is per-node accounting, sorted by ID — every fleet node
	// appears, including ones the chaos schedule never touched.
	Nodes []NodeReport
	// EtherRestarts counts completed medium down/up cycles.
	EtherRestarts int
	// Events is the executed action log, in order.
	Events []FleetEvent
}

// FleetSupervisor executes a chaos schedule against a live fleet and keeps
// it healthy in between: scripted node crashes become StopDaemon calls,
// scripted recoveries become RestartDaemon with capped-backoff retry,
// scripted medium outages bounce the ether, and a liveness watchdog
// force-restarts daemons that die without being scheduled to. Surviving
// daemons are never touched — degradation is per-node.
type FleetSupervisor struct {
	fleet *Fleet
	chaos *Chaos
	cfg   SupervisorConfig

	mu            sync.Mutex
	pending       []ChaosEvent // due-ordered events not yet executed
	events        []FleetEvent
	etherRestarts int
	scheduledDown map[packet.NodeID]bool
	restarting    map[packet.NodeID]bool
	unhealthy     map[packet.NodeID]time.Time

	wg sync.WaitGroup
}

// NewFleetSupervisor builds a supervisor for fleet. chaos may be nil, in
// which case only the liveness watchdog runs.
func NewFleetSupervisor(fleet *Fleet, chaos *Chaos, cfg SupervisorConfig) *FleetSupervisor {
	return &FleetSupervisor{
		fleet:         fleet,
		chaos:         chaos,
		cfg:           cfg.withDefaults(),
		scheduledDown: make(map[packet.NodeID]bool),
		restarting:    make(map[packet.NodeID]bool),
		unhealthy:     make(map[packet.NodeID]time.Time),
	}
}

// Run supervises until ctx is canceled. It blocks waiting for the fleet to
// start, then loops at CheckInterval firing due schedule events and polling
// liveness. Call it on its own goroutine alongside Fleet.Run.
func (s *FleetSupervisor) Run(ctx context.Context) error {
	select {
	case <-s.fleet.Started():
	case <-ctx.Done():
		return ctx.Err()
	}
	start := s.fleet.StartTime()
	if s.chaos != nil {
		s.Inject(s.chaos.Events())
	}
	ticker := time.NewTicker(s.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			s.wg.Wait()
			return nil
		case <-ticker.C:
		}
		now := time.Since(start)
		for _, ev := range s.takeDue(now) {
			s.execute(ctx, ev, start)
		}
		s.watchdog(ctx, start)
	}
}

// Inject merges extra chaos events into the live schedule — the control
// plane's /faults/script path. Event offsets are relative to the fleet's
// run start; events already in the past fire on the next supervision tick.
// Safe to call before Run and while Run is looping.
func (s *FleetSupervisor) Inject(events []ChaosEvent) {
	if len(events) == 0 {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, events...)
	sort.SliceStable(s.pending, func(i, j int) bool { return s.pending[i].At < s.pending[j].At })
	s.mu.Unlock()
}

// takeDue pops every pending event due at or before now, in order.
func (s *FleetSupervisor) takeDue(now time.Duration) []ChaosEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for n < len(s.pending) && s.pending[n].At <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	due := append([]ChaosEvent(nil), s.pending[:n]...)
	s.pending = s.pending[n:]
	return due
}

// execute dispatches one scheduled chaos event. Kill and ether actions run
// on their own goroutines — StopDaemon waits for the daemon goroutine to
// exit (up to a driver tick) and must not stall the schedule.
func (s *FleetSupervisor) execute(ctx context.Context, ev ChaosEvent, start time.Time) {
	switch ev.Kind {
	case faults.EventNodeDown:
		id := ev.ID
		s.mu.Lock()
		s.scheduledDown[id] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.fleet.StopDaemon(id); err == nil {
				s.log(FleetEvent{At: time.Since(start), Kind: "kill", Node: id})
			}
		}()
	case faults.EventNodeUp:
		id := ev.ID
		s.mu.Lock()
		s.scheduledDown[id] = false
		s.mu.Unlock()
		s.restart(ctx, id, start, "restart")
	case faults.EventEtherDown:
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.fleet.StopEther(); err == nil {
				s.log(FleetEvent{At: time.Since(start), Kind: "ether-down"})
			}
		}()
	case faults.EventEtherUp:
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			step := s.cfg.expBackoff()
			for ctx.Err() == nil {
				if err := s.fleet.StartEther(); err == nil {
					s.log(FleetEvent{At: time.Since(start), Kind: "ether-up"})
					s.mu.Lock()
					s.etherRestarts++
					s.mu.Unlock()
					return
				}
				select {
				case <-ctx.Done():
				case <-time.After(step()):
				}
			}
		}()
	}
	// Link faults, heals, and partitions need no action here: the chaos
	// impairment hook installed on the ether enforces them continuously.
}

// restart revives a daemon with capped exponential backoff. At most one
// restart loop per node runs at a time.
func (s *FleetSupervisor) restart(ctx context.Context, id packet.NodeID, start time.Time, kind string) {
	s.mu.Lock()
	if s.restarting[id] {
		s.mu.Unlock()
		return
	}
	s.restarting[id] = true
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.restarting, id)
			s.mu.Unlock()
		}()
		step := s.cfg.expBackoff()
		for ctx.Err() == nil {
			err := s.fleet.RestartDaemon(id)
			if err == nil {
				s.log(FleetEvent{At: time.Since(start), Kind: kind, Node: id})
				return
			}
			wait := step()
			s.log(FleetEvent{At: time.Since(start), Kind: "restart-failed", Node: id, Backoff: wait})
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
	}()
}

// watchdog force-restarts daemons that are dead without a scheduled reason
// for longer than UnhealthyAfter.
func (s *FleetSupervisor) watchdog(ctx context.Context, start time.Time) {
	if s.cfg.UnhealthyAfter < 0 {
		return
	}
	if !s.fleet.EtherUp() {
		// Liveness is unobservable without the medium: every daemon loses
		// its registration during an ether outage. Forget accumulated
		// suspicions so daemons get a fresh UnhealthyAfter budget to
		// re-register once the medium returns.
		s.mu.Lock()
		clear(s.unhealthy)
		s.mu.Unlock()
		return
	}
	now := time.Now()
	for _, id := range s.fleet.NodeIDs() {
		alive := s.fleet.DaemonAlive(id, s.cfg.ActivityWindow)
		s.mu.Lock()
		if alive || s.scheduledDown[id] || s.restarting[id] {
			delete(s.unhealthy, id)
			s.mu.Unlock()
			continue
		}
		since, seen := s.unhealthy[id]
		if !seen {
			s.unhealthy[id] = now
			s.mu.Unlock()
			continue
		}
		expired := now.Sub(since) >= s.cfg.UnhealthyAfter
		if expired {
			delete(s.unhealthy, id)
		}
		s.mu.Unlock()
		if expired {
			// The daemon may be wedged rather than gone: kill any live
			// generation first, then revive with backoff.
			s.fleet.StopDaemon(id)
			s.restart(ctx, id, start, "watchdog-restart")
		}
	}
}

func (s *FleetSupervisor) log(ev FleetEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns the executed action log so far.
func (s *FleetSupervisor) Events() []FleetEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FleetEvent(nil), s.events...)
}

// Report summarizes supervision outcomes. elapsed is the run length used
// for availability (pass the wall-clock run duration).
func (s *FleetSupervisor) Report(elapsed time.Duration) SupervisorReport {
	ids := s.fleet.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rep := SupervisorReport{Elapsed: elapsed, Events: s.Events()}
	s.mu.Lock()
	rep.EtherRestarts = s.etherRestarts
	s.mu.Unlock()
	for _, id := range ids {
		acc := s.fleet.NodeStats(id)
		nr := NodeReport{ID: id, Kills: acc.Kills, Restarts: acc.Restarts, Downtime: acc.Downtime, Availability: 1}
		if elapsed > 0 {
			nr.Availability = 1 - float64(acc.Downtime)/float64(elapsed)
			if nr.Availability < 0 {
				nr.Availability = 0
			}
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	return rep
}
