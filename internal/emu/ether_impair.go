package emu

import (
	"net"
	"sort"
	"time"

	"meshcast/internal/packet"
)

// LinkProfile describes the emulated medium for one directed node pair:
// delivery probability, one-way latency (fixed delay plus uniform jitter —
// jitter larger than the inter-frame gap produces natural reordering), and
// a duplication probability (UDP broadcast over a real ether duplicates
// frames under multipath; ODMRP's duplicate windows must absorb this).
type LinkProfile struct {
	// DF is the delivery probability in [0, 1].
	DF float64
	// Delay is the fixed one-way latency added to every delivered frame.
	Delay time.Duration
	// Jitter adds a uniform draw in [0, Jitter) on top of Delay.
	Jitter time.Duration
	// DupProb is the probability a delivered frame arrives twice.
	DupProb float64
}

// Shape overlays delay/jitter/duplication onto the profile, keeping DF.
func (p LinkProfile) Shape(delay, jitter time.Duration, dup float64) LinkProfile {
	p.Delay, p.Jitter, p.DupProb = delay, jitter, dup
	return p
}

// SetProfile fixes the full profile for the directed pair from → to.
func (t *LinkTable) SetProfile(from, to packet.NodeID, p LinkProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]packet.NodeID{from, to}] = p
}

// SetDefaultProfile replaces the profile used for pairs without an entry.
func (t *LinkTable) SetDefaultProfile(p LinkProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.def = p
}

// ShapeAll applies delay/jitter/duplication to the default profile and every
// existing entry, preserving per-link delivery probabilities — the etherd
// "make the whole medium slow and noisy" knob.
func (t *LinkTable) ShapeAll(delay, jitter time.Duration, dup float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.def = t.def.Shape(delay, jitter, dup)
	for k, p := range t.links {
		t.links[k] = p.Shape(delay, jitter, dup)
	}
}

// Profile returns the effective profile for from → to.
func (t *LinkTable) Profile(from, to packet.NodeID) LinkProfile {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if p, ok := t.links[[2]packet.NodeID{from, to}]; ok {
		return p
	}
	return t.def
}

// LinkEntry is one directed link's configured profile — the inspection
// shape the control plane serializes for GET /links.
type LinkEntry struct {
	From, To packet.NodeID
	Profile  LinkProfile
}

// Entries returns every explicitly configured directed link plus the
// default profile, sorted by (From, To) for stable output.
func (t *LinkTable) Entries() (entries []LinkEntry, def LinkProfile) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	entries = make([]LinkEntry, 0, len(t.links))
	for k, p := range t.links {
		entries = append(entries, LinkEntry{From: k[0], To: k[1], Profile: p})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].From != entries[j].From {
			return entries[i].From < entries[j].From
		}
		return entries[i].To < entries[j].To
	})
	return entries, t.def
}

// Partition returns the nodes on side A of the active partition mask,
// sorted ascending (nil when no partition is installed).
func (t *LinkTable) Partition() []packet.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.mask == nil {
		return nil
	}
	out := make([]packet.NodeID, 0, len(t.mask))
	for id, in := range t.mask {
		if in {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetPartition installs a partition mask: frames between a node in sideA and
// a node outside it are dropped until ClearPartition. Registration traffic
// is unaffected (the ether server itself is reachable from both sides).
func (t *LinkTable) SetPartition(sideA []packet.NodeID) {
	mask := make(map[packet.NodeID]bool, len(sideA))
	for _, id := range sideA {
		mask[id] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mask = mask
}

// ClearPartition heals the partition.
func (t *LinkTable) ClearPartition() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mask = nil
}

// Partitioned reports whether the active partition mask (if any) separates
// the pair.
func (t *LinkTable) Partitioned(a, b packet.NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mask != nil && t.mask[a] != t.mask[b]
}

// ImpairFunc returns an extra drop probability for a directed pair at
// delivery time, on top of the link table's delivery probability. The live
// chaos controller installs one that evaluates the compiled fault script at
// the wall-clock-mapped virtual time (faults.Compiled.Impairment), which is
// how scripted link faults and partitions reach the real-socket medium.
type ImpairFunc func(from, to packet.NodeID) float64

// SetImpairment installs (or, with nil, removes) the impairment hook. Safe
// to call while the ether is serving.
func (e *Ether) SetImpairment(fn ImpairFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.impair = fn
}

// client pairs a registered node with its UDP return address.
type client struct {
	id   packet.NodeID
	addr *net.UDPAddr
}

// delivery is one decided frame delivery: where, after how long, and
// whether a duplicate copy follows.
type delivery struct {
	addr  *net.UDPAddr
	delay time.Duration
	dup   bool
}

// snapshotTargets returns every registered client except the sender, sorted
// by node ID. Sorting matters for determinism: decide consumes seeded RNG
// draws per target, so iteration order is part of the random stream — map
// order would make two same-seed runs drop different frames.
func (e *Ether) snapshotTargets(sender packet.NodeID) []client {
	targets := make([]client, 0, len(e.clients))
	for id, addr := range e.clients {
		if id != sender {
			targets = append(targets, client{id: id, addr: addr})
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	return targets
}

// decide draws the delivery outcome for one frame against each target, in
// target order. Callers must hold e.mu (the RNG lives under it); RNG draws
// are only consumed where an outcome is actually probabilistic, so the
// random stream — and therefore every later decision — is identical across
// same-seed runs with the same link configuration.
func (e *Ether) decide(sender packet.NodeID, targets []client) (dels []delivery, dropped int) {
	for _, t := range targets {
		if e.links.Partitioned(sender, t.id) {
			dropped++
			continue
		}
		p := e.links.Profile(sender, t.id)
		if p.DF < 1 && e.rng.Float64() >= p.DF {
			dropped++
			continue
		}
		if e.impair != nil {
			if dp := e.impair(sender, t.id); dp >= 1 || (dp > 0 && e.rng.Float64() < dp) {
				dropped++
				continue
			}
		}
		d := delivery{addr: t.addr, delay: p.Delay}
		if p.Jitter > 0 {
			d.delay += time.Duration(e.rng.Int63n(int64(p.Jitter)))
		}
		if p.DupProb > 0 && e.rng.Float64() < p.DupProb {
			d.dup = true
		}
		dels = append(dels, d)
	}
	return dels, dropped
}
