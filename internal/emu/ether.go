// Package emu provides the real-time, real-socket substrate for running the
// ODMRP daemon (cmd/odmrpd) outside the simulator, mirroring the paper's
// testbed software architecture (§5.2): a user-level daemon exchanging UDP
// broadcasts.
//
// Since an open office floor with Atheros radios is not available, the
// wireless broadcast medium is emulated by an "ether" server: every daemon
// registers with the ether over UDP, and each frame a daemon sends is
// forwarded to every other registered daemon subject to a per-link delivery
// probability. This keeps the daemons' code path identical to a broadcast
// radio network — including loss and asymmetric links — while running over
// loopback sockets in real time.
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"meshcast/internal/packet"
)

// Wire message kinds exchanged with the ether.
const (
	msgRegister byte = 'R'
	msgFrame    byte = 'F'
	msgRegAck   byte = 'A'
)

// Registration keepalive tuning. Daemons re-register with the ether on a
// schedule: unacknowledged registrations retry with capped exponential
// backoff, and acknowledged ones refresh periodically so a restarted ether
// (which lost its client table) re-learns every daemon within one refresh
// interval. Variables rather than constants so tests can tighten them.
var (
	regRetryMin  = 100 * time.Millisecond
	regRetryMax  = 2 * time.Second
	regRefresh   = time.Second
	readDeadline = 500 * time.Millisecond
)

// LinkTable holds per-link medium profiles (delivery probability, delay,
// jitter, duplication) for the emulated medium, plus an optional partition
// mask. Missing entries fall back to the default profile. Links are
// directional: use Set twice (or SetSymmetric) for a symmetric link. All
// methods are safe for concurrent use, so profiles can be updated while the
// ether is serving — dynamic delivery-probability changes take effect on the
// next frame.
type LinkTable struct {
	mu    sync.RWMutex
	def   LinkProfile
	links map[[2]packet.NodeID]LinkProfile
	mask  map[packet.NodeID]bool // non-nil while a partition is active
}

// NewLinkTable returns a table whose default profile delivers with
// probability defaultDF and no delay, jitter, or duplication. 1.0 gives a
// perfect shared medium; 0 disconnects unknown pairs.
func NewLinkTable(defaultDF float64) *LinkTable {
	return &LinkTable{
		def:   LinkProfile{DF: defaultDF},
		links: make(map[[2]packet.NodeID]LinkProfile),
	}
}

// Set fixes the delivery probability for the directed pair from → to,
// preserving any shaping (delay/jitter/duplication) already configured for
// the pair.
func (t *LinkTable) Set(from, to packet.NodeID, df float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]packet.NodeID{from, to}
	p, ok := t.links[key]
	if !ok {
		p = t.def
	}
	p.DF = df
	t.links[key] = p
}

// SetSymmetric fixes both directions.
func (t *LinkTable) SetSymmetric(a, b packet.NodeID, df float64) {
	t.Set(a, b, df)
	t.Set(b, a, df)
}

// DF returns the delivery probability for from → to.
func (t *LinkTable) DF(from, to packet.NodeID) float64 {
	return t.Profile(from, to).DF
}

// EtherStats counts ether activity.
type EtherStats struct {
	// FramesIn counts frames received from daemons; FramesOut counts frame
	// copies delivered (duplicated frames count twice); FramesDropped counts
	// per-target losses (Bernoulli, impairment hook, and partition drops);
	// FramesDup counts the extra copies injected by link duplication.
	FramesIn, FramesOut, FramesDropped, FramesDup uint64
	// Registrations counts registration datagrams handled (including
	// periodic refreshes).
	Registrations uint64
}

// Ether is the emulated broadcast medium: a UDP server that fans every
// received frame out to all other registered daemons, applying each link's
// profile (loss, one-way delay + jitter, duplication), the partition mask,
// and any installed impairment hook.
type Ether struct {
	links *LinkTable

	conn *net.UDPConn

	mu        sync.Mutex
	rng       *rand.Rand
	clients   map[packet.NodeID]*net.UDPAddr
	stats     EtherStats
	impair    ImpairFunc
	timers    map[uint64]*time.Timer // pending delayed deliveries
	nextTimer uint64
	closing   bool
	draining  bool

	pending sync.WaitGroup // delayed deliveries in flight
	done    chan struct{}
}

// NewEther starts an ether listening on addr (e.g. "127.0.0.1:0"). The
// returned Ether is already serving; call Close to stop it.
func NewEther(addr string, links *LinkTable, seed int64) (*Ether, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	e := &Ether{
		links:   links,
		conn:    conn,
		rng:     rand.New(rand.NewSource(seed)),
		clients: make(map[packet.NodeID]*net.UDPAddr),
		timers:  make(map[uint64]*time.Timer),
		done:    make(chan struct{}),
	}
	go e.serve()
	return e, nil
}

// Links returns the ether's link table (shared; safe for concurrent
// updates while serving).
func (e *Ether) Links() *LinkTable { return e.links }

// Addr returns the ether's listening address.
func (e *Ether) Addr() string { return e.conn.LocalAddr().String() }

// Stats returns a snapshot of the ether counters.
func (e *Ether) Stats() EtherStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Clients returns the currently registered node IDs.
func (e *Ether) Clients() []packet.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]packet.NodeID, 0, len(e.clients))
	for id := range e.clients {
		out = append(out, id)
	}
	return out
}

// Drain quiesces the medium for a graceful shutdown: new frames stop being
// fanned out, but deliveries already in their delay window are allowed to
// land before Drain returns. The socket stays open (the subsequent Close
// finds nothing pending to cancel) — the opposite of Close's crash
// semantics, where in-flight frames are lost like on a real restarting
// medium.
func (e *Ether) Drain() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.pending.Wait()
}

// Close stops the ether and waits for its serve loop and every pending
// delayed delivery to exit. Deliveries still in their delay window are
// canceled, not flushed — a restarting medium loses in-flight frames, like
// a real one. Call Drain first to flush them instead.
func (e *Ether) Close() error {
	e.mu.Lock()
	e.closing = true
	for id, t := range e.timers {
		if t.Stop() {
			// The timer had not fired: its callback will never run, so
			// release its WaitGroup slot here.
			e.pending.Done()
			delete(e.timers, id)
		}
	}
	e.mu.Unlock()
	err := e.conn.Close()
	<-e.done
	e.pending.Wait()
	return err
}

func (e *Ether) serve() {
	defer close(e.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n < 3 {
			continue
		}
		kind := buf[0]
		id := packet.NodeID(binary.BigEndian.Uint16(buf[1:3]))
		switch kind {
		case msgRegister:
			e.mu.Lock()
			e.clients[id] = from
			e.stats.Registrations++
			e.mu.Unlock()
			// Acknowledge so the daemon knows it is registered and can stop
			// its retry backoff.
			ack := [3]byte{msgRegAck}
			binary.BigEndian.PutUint16(ack[1:], uint16(id))
			e.conn.WriteToUDP(ack[:], from)
		case msgFrame:
			e.fanOut(id, buf[:n])
		}
	}
}

// fanOut forwards a frame to every other client, applying each link's
// profile. All per-frame decisions (and their RNG draws) happen in one
// critical section over ID-sorted targets, so the drop/delay/dup pattern is
// a deterministic function of the seed and frame sequence — and the stats
// counters are batched into that same single lock acquisition instead of
// up to 2N+1 per frame.
func (e *Ether) fanOut(sender packet.NodeID, frame []byte) {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return
	}
	e.stats.FramesIn++
	targets := e.snapshotTargets(sender)
	dels, dropped := e.decide(sender, targets)
	e.stats.FramesDropped += uint64(dropped)
	e.mu.Unlock()

	var delayed []byte // frame copy shared by all delayed deliveries
	var sent, dups uint64
	for _, d := range dels {
		copies := 1
		if d.dup {
			copies = 2
			dups++
		}
		for i := 0; i < copies; i++ {
			if d.delay <= 0 {
				if _, err := e.conn.WriteToUDP(frame, d.addr); err == nil {
					sent++
				}
				continue
			}
			if delayed == nil {
				// The serve loop reuses its read buffer, so delayed
				// deliveries need a stable copy.
				delayed = append([]byte(nil), frame...)
			}
			e.deliverLater(d.delay, delayed, d.addr)
		}
	}
	if sent > 0 || dups > 0 {
		e.mu.Lock()
		e.stats.FramesOut += sent
		e.stats.FramesDup += dups
		e.mu.Unlock()
	}
}

// deliverLater schedules one frame delivery after the link's latency. The
// timer is tracked so Close can cancel pending deliveries without leaking
// goroutines.
func (e *Ether) deliverLater(delay time.Duration, frame []byte, addr *net.UDPAddr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return
	}
	id := e.nextTimer
	e.nextTimer++
	e.pending.Add(1)
	e.timers[id] = time.AfterFunc(delay, func() {
		defer e.pending.Done()
		e.mu.Lock()
		delete(e.timers, id)
		closing := e.closing
		e.mu.Unlock()
		if closing {
			return
		}
		if _, err := e.conn.WriteToUDP(frame, addr); err == nil {
			e.mu.Lock()
			e.stats.FramesOut++
			e.mu.Unlock()
		}
	})
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("emu: connection closed")

// NodeConn is a daemon's connection to the ether.
type NodeConn struct {
	id   packet.NodeID
	conn *net.UDPConn

	// onPacket is read by the receive goroutine for every decoded frame
	// and may be (re)set at any time via SetOnPacket — the receive loop
	// starts inside Dial, before the caller has had a chance to install a
	// handler, so the slot must be safe against that window.
	onPacket atomic.Pointer[func(p *packet.Packet, from packet.NodeID)]

	mu      sync.Mutex
	lastAck time.Time

	// rng drives the reconnect backoff jitter. Seeded per connection (not
	// the global math/rand source) so a daemon's reconnect schedule is
	// reproducible from its seed; rngMu guards it because timer-driven
	// goroutines may consult it concurrently with the maintain loop.
	rngMu sync.Mutex
	rng   *rand.Rand

	closed       chan struct{}
	done         chan struct{}
	maintainDone chan struct{}
}

// Dial connects node id to the ether at addr and registers it. Registration
// is maintained in the background: the first attempt is sent immediately,
// then retried with capped exponential backoff until the ether acknowledges
// it, and refreshed periodically afterwards — so a daemon survives (and
// recovers from) an ether that starts late or restarts mid-run. Backoff
// jitter is seeded from the node ID; use DialSeeded to tie it to a run
// seed.
func Dial(id packet.NodeID, addr string) (*NodeConn, error) {
	return DialSeeded(id, addr, uint64(id))
}

// DialSeeded is Dial with explicit backoff-jitter seeding: two runs with
// the same seed reconnect on identical schedules (the jitter exists to
// decorrelate a *fleet* of daemons, so daemons should seed with distinct
// values, e.g. run-seed ^ node-id).
func DialSeeded(id packet.NodeID, addr string, seed uint64) (*NodeConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: dial: %w", err)
	}
	nc := &NodeConn{
		id:           id,
		conn:         conn,
		rng:          rand.New(rand.NewSource(int64(seed) ^ 0x656d752d6a697474)), // "emu-jitt"
		closed:       make(chan struct{}),
		done:         make(chan struct{}),
		maintainDone: make(chan struct{}),
	}
	go nc.receive()
	go nc.maintain()
	return nc, nil
}

// SetOnPacket installs the frame handler, invoked from the receive
// goroutine for every decoded packet. The callback must be thread-safe
// (daemons inject into their real-time driver). Frames arriving before the
// first SetOnPacket are dropped.
func (c *NodeConn) SetOnPacket(fn func(p *packet.Packet, from packet.NodeID)) {
	c.onPacket.Store(&fn)
}

// jitter draws a uniform duration in [0, max] from the connection's seeded
// source.
func (c *NodeConn) jitter(max time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(max) + 1))
}

// register sends one registration datagram. Errors are ignored: the ether
// may be down, and the maintain loop will retry.
func (c *NodeConn) register() {
	reg := [3]byte{msgRegister}
	binary.BigEndian.PutUint16(reg[1:], uint16(c.id))
	c.conn.Write(reg[:])
}

// Registered reports whether the ether has acknowledged a registration
// recently (within one retry ceiling of the refresh interval).
func (c *NodeConn) Registered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.lastAck.IsZero() && time.Since(c.lastAck) < regRefresh+regRetryMax
}

// maintain keeps the registration alive: exponential backoff (plus jitter,
// so a fleet of daemons does not thunder in lockstep at a restarted ether)
// while unacknowledged, a steady refresh once acknowledged. The periodic
// refresh is what heals an ether restart — the new ether has an empty client
// table until each daemon's next registration arrives.
func (c *NodeConn) maintain() {
	defer close(c.maintainDone)
	backoff := regRetryMin
	for {
		c.register()
		wait := backoff + c.jitter(backoff/4)
		select {
		case <-c.closed:
			return
		case <-time.After(wait):
		}
		if c.Registered() {
			backoff = regRefresh
		} else {
			backoff *= 2
			if backoff > regRetryMax {
				backoff = regRetryMax
			}
		}
	}
}

// Send broadcasts a packet through the ether. Safe for use from one
// goroutine at a time (the daemon's driver goroutine).
func (c *NodeConn) Send(p *packet.Packet) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	wire, err := p.MarshalBinary()
	if err != nil {
		return false
	}
	frame := make([]byte, 3+len(wire))
	frame[0] = msgFrame
	binary.BigEndian.PutUint16(frame[1:], uint16(c.id))
	copy(frame[3:], wire)
	_, err = c.conn.Write(frame)
	return err == nil
}

func (c *NodeConn) receive() {
	defer close(c.done)
	buf := make([]byte, 64*1024)
	for {
		// Bounded reads: the loop must wake up to notice Close, and a
		// transient socket error (ECONNREFUSED from a connected UDP socket
		// whose ether is down) must not kill the receiver for good.
		c.conn.SetReadDeadline(time.Now().Add(readDeadline))
		n, err := c.conn.Read(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Transient (the ether may be restarting); back off briefly so
			// a hard error cannot spin the loop.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if n < 3 {
			continue
		}
		switch buf[0] {
		case msgRegAck:
			c.mu.Lock()
			c.lastAck = time.Now()
			c.mu.Unlock()
		case msgFrame:
			sender := packet.NodeID(binary.BigEndian.Uint16(buf[1:3]))
			var p packet.Packet
			if err := p.UnmarshalBinary(buf[3:n]); err != nil {
				continue
			}
			if fn := c.onPacket.Load(); fn != nil {
				(*fn)(&p, sender)
			}
		}
	}
}

// Close shuts the connection down and waits for the receive and maintain
// goroutines.
func (c *NodeConn) Close() error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
		close(c.closed)
	}
	err := c.conn.Close()
	<-c.done
	<-c.maintainDone
	return err
}
