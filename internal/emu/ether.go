// Package emu provides the real-time, real-socket substrate for running the
// ODMRP daemon (cmd/odmrpd) outside the simulator, mirroring the paper's
// testbed software architecture (§5.2): a user-level daemon exchanging UDP
// broadcasts.
//
// Since an open office floor with Atheros radios is not available, the
// wireless broadcast medium is emulated by an "ether" server: every daemon
// registers with the ether over UDP, and each frame a daemon sends is
// forwarded to every other registered daemon subject to a per-link delivery
// probability. This keeps the daemons' code path identical to a broadcast
// radio network — including loss and asymmetric links — while running over
// loopback sockets in real time.
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"meshcast/internal/packet"
)

// Wire message kinds exchanged with the ether.
const (
	msgRegister byte = 'R'
	msgFrame    byte = 'F'
	msgRegAck   byte = 'A'
)

// Registration keepalive tuning. Daemons re-register with the ether on a
// schedule: unacknowledged registrations retry with capped exponential
// backoff, and acknowledged ones refresh periodically so a restarted ether
// (which lost its client table) re-learns every daemon within one refresh
// interval. Variables rather than constants so tests can tighten them.
var (
	regRetryMin  = 100 * time.Millisecond
	regRetryMax  = 2 * time.Second
	regRefresh   = time.Second
	readDeadline = 500 * time.Millisecond
)

// LinkTable holds per-link delivery probabilities for the emulated medium.
// Missing entries fall back to DefaultDF. Links are directional: use Set
// twice for a symmetric link.
type LinkTable struct {
	// DefaultDF applies to pairs without an explicit entry. 1.0 gives a
	// perfect shared medium; 0 disconnects unknown pairs.
	DefaultDF float64

	mu sync.RWMutex
	df map[[2]packet.NodeID]float64
}

// NewLinkTable returns a table with the given default delivery probability.
func NewLinkTable(defaultDF float64) *LinkTable {
	return &LinkTable{DefaultDF: defaultDF, df: make(map[[2]packet.NodeID]float64)}
}

// Set fixes the delivery probability for the directed pair from → to.
func (t *LinkTable) Set(from, to packet.NodeID, df float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.df[[2]packet.NodeID{from, to}] = df
}

// SetSymmetric fixes both directions.
func (t *LinkTable) SetSymmetric(a, b packet.NodeID, df float64) {
	t.Set(a, b, df)
	t.Set(b, a, df)
}

// DF returns the delivery probability for from → to.
func (t *LinkTable) DF(from, to packet.NodeID) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if v, ok := t.df[[2]packet.NodeID{from, to}]; ok {
		return v
	}
	return t.DefaultDF
}

// EtherStats counts ether activity.
type EtherStats struct {
	FramesIn, FramesOut, FramesDropped uint64
}

// Ether is the emulated broadcast medium: a UDP server that fans every
// received frame out to all other registered daemons, applying per-link
// loss.
type Ether struct {
	links *LinkTable

	conn *net.UDPConn
	rng  *rand.Rand

	mu      sync.Mutex
	clients map[packet.NodeID]*net.UDPAddr
	stats   EtherStats

	done chan struct{}
}

// NewEther starts an ether listening on addr (e.g. "127.0.0.1:0"). The
// returned Ether is already serving; call Close to stop it.
func NewEther(addr string, links *LinkTable, seed int64) (*Ether, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	e := &Ether{
		links:   links,
		conn:    conn,
		rng:     rand.New(rand.NewSource(seed)),
		clients: make(map[packet.NodeID]*net.UDPAddr),
		done:    make(chan struct{}),
	}
	go e.serve()
	return e, nil
}

// Addr returns the ether's listening address.
func (e *Ether) Addr() string { return e.conn.LocalAddr().String() }

// Stats returns a snapshot of the ether counters.
func (e *Ether) Stats() EtherStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Clients returns the currently registered node IDs.
func (e *Ether) Clients() []packet.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]packet.NodeID, 0, len(e.clients))
	for id := range e.clients {
		out = append(out, id)
	}
	return out
}

// Close stops the ether and waits for its serve loop to exit.
func (e *Ether) Close() error {
	err := e.conn.Close()
	<-e.done
	return err
}

func (e *Ether) serve() {
	defer close(e.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n < 3 {
			continue
		}
		kind := buf[0]
		id := packet.NodeID(binary.BigEndian.Uint16(buf[1:3]))
		switch kind {
		case msgRegister:
			e.mu.Lock()
			e.clients[id] = from
			e.mu.Unlock()
			// Acknowledge so the daemon knows it is registered and can stop
			// its retry backoff.
			ack := [3]byte{msgRegAck}
			binary.BigEndian.PutUint16(ack[1:], uint16(id))
			e.conn.WriteToUDP(ack[:], from)
		case msgFrame:
			e.fanOut(id, buf[:n])
		}
	}
}

// fanOut forwards a frame to every other client, applying per-link loss.
func (e *Ether) fanOut(sender packet.NodeID, frame []byte) {
	e.mu.Lock()
	e.stats.FramesIn++
	targets := make(map[packet.NodeID]*net.UDPAddr, len(e.clients))
	for id, addr := range e.clients {
		if id != sender {
			targets[id] = addr
		}
	}
	e.mu.Unlock()

	for id, addr := range targets {
		if e.links.DF(sender, id) < 1 && e.randFloat() >= e.links.DF(sender, id) {
			e.mu.Lock()
			e.stats.FramesDropped++
			e.mu.Unlock()
			continue
		}
		if _, err := e.conn.WriteToUDP(frame, addr); err == nil {
			e.mu.Lock()
			e.stats.FramesOut++
			e.mu.Unlock()
		}
	}
}

func (e *Ether) randFloat() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.Float64()
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("emu: connection closed")

// NodeConn is a daemon's connection to the ether.
type NodeConn struct {
	id   packet.NodeID
	conn *net.UDPConn

	// OnPacket is invoked from the receive goroutine for every decoded
	// packet. Set it before the first Send. The callback must be
	// thread-safe (daemons inject into their real-time driver).
	OnPacket func(p *packet.Packet, from packet.NodeID)

	mu      sync.Mutex
	lastAck time.Time

	// rng drives the reconnect backoff jitter. Seeded per connection (not
	// the global math/rand source) so a daemon's reconnect schedule is
	// reproducible from its seed; rngMu guards it because timer-driven
	// goroutines may consult it concurrently with the maintain loop.
	rngMu sync.Mutex
	rng   *rand.Rand

	closed       chan struct{}
	done         chan struct{}
	maintainDone chan struct{}
}

// Dial connects node id to the ether at addr and registers it. Registration
// is maintained in the background: the first attempt is sent immediately,
// then retried with capped exponential backoff until the ether acknowledges
// it, and refreshed periodically afterwards — so a daemon survives (and
// recovers from) an ether that starts late or restarts mid-run. Backoff
// jitter is seeded from the node ID; use DialSeeded to tie it to a run
// seed.
func Dial(id packet.NodeID, addr string) (*NodeConn, error) {
	return DialSeeded(id, addr, uint64(id))
}

// DialSeeded is Dial with explicit backoff-jitter seeding: two runs with
// the same seed reconnect on identical schedules (the jitter exists to
// decorrelate a *fleet* of daemons, so daemons should seed with distinct
// values, e.g. run-seed ^ node-id).
func DialSeeded(id packet.NodeID, addr string, seed uint64) (*NodeConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("emu: dial: %w", err)
	}
	nc := &NodeConn{
		id:           id,
		conn:         conn,
		rng:          rand.New(rand.NewSource(int64(seed) ^ 0x656d752d6a697474)), // "emu-jitt"
		closed:       make(chan struct{}),
		done:         make(chan struct{}),
		maintainDone: make(chan struct{}),
	}
	go nc.receive()
	go nc.maintain()
	return nc, nil
}

// jitter draws a uniform duration in [0, max] from the connection's seeded
// source.
func (c *NodeConn) jitter(max time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(max) + 1))
}

// register sends one registration datagram. Errors are ignored: the ether
// may be down, and the maintain loop will retry.
func (c *NodeConn) register() {
	reg := [3]byte{msgRegister}
	binary.BigEndian.PutUint16(reg[1:], uint16(c.id))
	c.conn.Write(reg[:])
}

// Registered reports whether the ether has acknowledged a registration
// recently (within one retry ceiling of the refresh interval).
func (c *NodeConn) Registered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.lastAck.IsZero() && time.Since(c.lastAck) < regRefresh+regRetryMax
}

// maintain keeps the registration alive: exponential backoff (plus jitter,
// so a fleet of daemons does not thunder in lockstep at a restarted ether)
// while unacknowledged, a steady refresh once acknowledged. The periodic
// refresh is what heals an ether restart — the new ether has an empty client
// table until each daemon's next registration arrives.
func (c *NodeConn) maintain() {
	defer close(c.maintainDone)
	backoff := regRetryMin
	for {
		c.register()
		wait := backoff + c.jitter(backoff/4)
		select {
		case <-c.closed:
			return
		case <-time.After(wait):
		}
		if c.Registered() {
			backoff = regRefresh
		} else {
			backoff *= 2
			if backoff > regRetryMax {
				backoff = regRetryMax
			}
		}
	}
}

// Send broadcasts a packet through the ether. Safe for use from one
// goroutine at a time (the daemon's driver goroutine).
func (c *NodeConn) Send(p *packet.Packet) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	wire, err := p.MarshalBinary()
	if err != nil {
		return false
	}
	frame := make([]byte, 3+len(wire))
	frame[0] = msgFrame
	binary.BigEndian.PutUint16(frame[1:], uint16(c.id))
	copy(frame[3:], wire)
	_, err = c.conn.Write(frame)
	return err == nil
}

func (c *NodeConn) receive() {
	defer close(c.done)
	buf := make([]byte, 64*1024)
	for {
		// Bounded reads: the loop must wake up to notice Close, and a
		// transient socket error (ECONNREFUSED from a connected UDP socket
		// whose ether is down) must not kill the receiver for good.
		c.conn.SetReadDeadline(time.Now().Add(readDeadline))
		n, err := c.conn.Read(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Transient (the ether may be restarting); back off briefly so
			// a hard error cannot spin the loop.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if n < 3 {
			continue
		}
		switch buf[0] {
		case msgRegAck:
			c.mu.Lock()
			c.lastAck = time.Now()
			c.mu.Unlock()
		case msgFrame:
			sender := packet.NodeID(binary.BigEndian.Uint16(buf[1:3]))
			var p packet.Packet
			if err := p.UnmarshalBinary(buf[3:n]); err != nil {
				continue
			}
			if c.OnPacket != nil {
				c.OnPacket(&p, sender)
			}
		}
	}
}

// Close shuts the connection down and waits for the receive and maintain
// goroutines.
func (c *NodeConn) Close() error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
		close(c.closed)
	}
	err := c.conn.Close()
	<-c.done
	<-c.maintainDone
	return err
}
