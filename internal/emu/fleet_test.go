package emu

import (
	"context"
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

// TestFleetPaperTestbedLive runs the paper's whole 8-node testbed as live
// UDP daemons for a few wall-clock seconds and checks multicast delivery
// through the forwarding groups.
func TestFleetPaperTestbedLive(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (several seconds)")
	}
	fleet, err := NewFleet(FleetConfig{
		Scenario:     testbed.PaperScenario(),
		Metric:       metric.SPP,
		SendInterval: 25 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Long enough for several 3 s ODMRP refresh rounds: with 50%-loss
	// links a branch can take a few rounds to establish, especially on a
	// loaded CI machine.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fleet.Run(ctx)

	res := fleet.Result()
	if len(res.Sent) != 2 {
		t.Fatalf("sources active = %d, want 2 (nodes 2 and 4)", len(res.Sent))
	}
	for src, n := range res.Sent {
		if n < 50 {
			t.Fatalf("source %v sent only %d packets in 10s", src, n)
		}
	}
	// Real-time runs converge unevenly; require every group to deliver to
	// at least one member and most members overall, rather than demanding
	// every branch within the window.
	receiving := 0
	for _, g := range testbed.PaperScenario().Groups {
		groupGot := 0
		for _, m := range g.Members {
			if res.Received[m][g.Source] > 0 {
				groupGot++
				receiving++
			}
		}
		if groupGot == 0 {
			t.Fatalf("no member of group %v received anything from source %v", g.Group, g.Source)
		}
	}
	if receiving < 3 {
		t.Fatalf("only %d of 4 members receiving", receiving)
	}
	if res.PDR < 0.3 {
		t.Fatalf("fleet PDR = %.3f, implausibly low", res.PDR)
	}
}

func TestFleetResultEmpty(t *testing.T) {
	f := &Fleet{slots: map[packet.NodeID]*daemonSlot{}}
	res := f.Result()
	if res.PDR != 0 || len(res.Sent) != 0 {
		t.Fatalf("empty fleet result = %+v", res)
	}
}
