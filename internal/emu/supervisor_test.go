package emu

import (
	"context"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/faults"
	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

// lineScenario is a minimal source → relay → sink topology where delivery
// requires the forwarding group at the relay (the direct link is dead).
func lineScenario() testbed.Scenario {
	return testbed.Scenario{
		Nodes: []packet.NodeID{1, 2, 3},
		Links: []testbed.Link{
			{A: 1, B: 2, Class: testbed.LowLoss},
			{A: 2, B: 3, Class: testbed.LowLoss},
		},
		Groups: []testbed.GroupSpec{{Group: 9, Source: 1, Members: []packet.NodeID{3}}},
	}
}

func deliveredTo(f *Fleet, id packet.NodeID) int {
	d := f.Daemon(id)
	if d == nil {
		return 0
	}
	return d.DeliveredCount()
}

// TestFleetSurvivesEtherRestartUnderTraffic stops and restarts the shared
// medium in the middle of a live run: daemons must re-register within one
// registration refresh interval and delivery must resume, with the medium
// stats accumulated across both ether generations.
func TestFleetSurvivesEtherRestartUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (several seconds)")
	}
	tightenRegTiming(t)
	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		fleet.Run(ctx)
	}()

	waitFor(t, 8*time.Second, "initial delivery", func() bool { return deliveredTo(fleet, 3) >= 5 })

	if err := fleet.StopEther(); err != nil {
		t.Fatal(err)
	}
	if fleet.EtherUp() {
		t.Fatal("EtherUp after StopEther")
	}
	time.Sleep(250 * time.Millisecond) // outage: frames go nowhere
	before := deliveredTo(fleet, 3)
	statsBefore := fleet.EtherStats()
	if statsBefore.FramesIn == 0 {
		t.Fatal("retired ether stats lost on StopEther")
	}

	if err := fleet.StartEther(); err != nil {
		t.Fatal(err)
	}
	// Re-registration must complete within one refresh interval plus one
	// retry backoff (tightened: 100 ms + 200 ms), generously bounded here.
	waitFor(t, 2*time.Second, "all daemons re-registered", func() bool {
		return len(fleet.EtherClients()) == 3
	})
	waitFor(t, 5*time.Second, "delivery to resume", func() bool {
		return deliveredTo(fleet, 3) >= before+5
	})
	if got := fleet.EtherStats().FramesIn; got <= statsBefore.FramesIn {
		t.Fatalf("cross-generation FramesIn = %d, want > %d", got, statsBefore.FramesIn)
	}
	cancel()
	<-runDone
}

// TestSupervisorScriptedKillAndRestart drives the relay of a line topology
// through a scripted crash: the supervisor must kill it on schedule, restart
// it on schedule, account its downtime, and end-to-end delivery must resume
// after the repair.
func TestSupervisorScriptedKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (several seconds)")
	}
	tightenRegTiming(t)
	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Node index 1 of sorted [1 2 3] is the relay, node 2.
	plan := faults.Plan{Outages: []faults.Outage{
		{Node: 1, Start: 2 * time.Second, Duration: 1500 * time.Millisecond},
	}}
	chaos, err := NewChaos(ChaosConfig{Plan: plan, Seed: 5}, fleet.NodeIDs())
	if err != nil {
		t.Fatal(err)
	}
	fleet.UseChaos(chaos)
	sup := NewFleetSupervisor(fleet, chaos, SupervisorConfig{})

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		fleet.Run(ctx)
	}()

	waitFor(t, 8*time.Second, "pre-fault delivery", func() bool { return deliveredTo(fleet, 3) >= 5 })
	waitFor(t, 5*time.Second, "scheduled kill", func() bool { return fleet.Daemon(2) == nil })
	if fleet.DaemonAlive(2, time.Second) {
		t.Fatal("killed relay reported alive")
	}
	waitFor(t, 5*time.Second, "scheduled restart", func() bool { return fleet.Daemon(2) != nil })
	afterRestart := deliveredTo(fleet, 3)
	waitFor(t, 5*time.Second, "delivery to resume through restarted relay", func() bool {
		return deliveredTo(fleet, 3) >= afterRestart+5
	})

	cancel()
	<-runDone
	if err := <-supDone; err != nil {
		t.Fatal(err)
	}

	acc := fleet.NodeStats(2)
	if acc.Kills != 1 || acc.Restarts != 1 {
		t.Fatalf("relay accounting = %+v, want 1 kill / 1 restart", acc)
	}
	if acc.Downtime < time.Second || acc.Downtime > 4*time.Second {
		t.Fatalf("relay downtime = %v, want ≈1.5s", acc.Downtime)
	}
	res := fleet.Result()
	if res.Kills[2] != 1 || res.Restarts[2] != 1 || res.Downtime[2] == 0 {
		t.Fatalf("FleetResult chaos accounting = kills %v restarts %v downtime %v",
			res.Kills, res.Restarts, res.Downtime)
	}
	if len(res.Health) != 1 {
		t.Fatalf("health groups = %d, want 1", len(res.Health))
	}
	rep := sup.Report(8 * time.Second)
	for _, n := range rep.Nodes {
		if n.Availability <= 0 {
			t.Fatalf("node %v availability = %v", n.ID, n.Availability)
		}
		if n.ID != 2 && n.Kills != 0 {
			t.Fatalf("surviving node %v was killed", n.ID)
		}
	}
}

// TestSupervisorConfigExpBackoff checks the capped exponential backoff
// sequence: doubling from RestartBackoff, clamped at RestartBackoffMax, and
// restarting from the floor on a fresh invocation (the state after a
// successful revive).
func TestSupervisorConfigExpBackoff(t *testing.T) {
	cfg := SupervisorConfig{
		RestartBackoff:    100 * time.Millisecond,
		RestartBackoffMax: 2 * time.Second,
	}.withDefaults()
	step := cfg.expBackoff()
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := step(); got != w {
			t.Fatalf("step %d = %v, want %v", i, got, w)
		}
	}
	if got := cfg.expBackoff()(); got != cfg.RestartBackoff {
		t.Fatalf("fresh sequence starts at %v, want floor %v", got, cfg.RestartBackoff)
	}
}

// restartFailures filters the executed-event log down to restart-failed
// events, in order.
func restartFailures(events []FleetEvent) []FleetEvent {
	var out []FleetEvent
	for _, ev := range events {
		if ev.Kind == "restart-failed" {
			out = append(out, ev)
		}
	}
	return out
}

// TestSupervisorRestartBackoffCapAndReset drives the restart loop against a
// fleet whose daemons cannot be revived (Run was never called, so
// RestartDaemon always errors): every attempt logs a restart-failed event
// carrying the delay before the next try. The recorded delays must follow
// the capped exponential — never exceeding RestartBackoffMax — and a second
// invocation (the state after a successful revive) must start back at the
// floor.
func TestSupervisorRestartBackoffCapAndReset(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{
		Scenario: lineScenario(),
		Metric:   metric.SPP,
		Seed:     31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if err := fleet.StopDaemon(2); err != nil {
		t.Fatal(err)
	}

	cfg := SupervisorConfig{
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 20 * time.Millisecond,
	}
	sup := NewFleetSupervisor(fleet, nil, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	sup.restart(ctx, 2, start, "restart")
	waitFor(t, 5*time.Second, "several failed restart attempts", func() bool {
		return len(restartFailures(sup.Events())) >= 6
	})
	cancel()
	sup.wg.Wait()

	fails := restartFailures(sup.Events())
	wantNext := cfg.RestartBackoff
	for i, ev := range fails {
		if ev.Backoff > cfg.RestartBackoffMax {
			t.Fatalf("attempt %d backoff = %v exceeds cap %v", i, ev.Backoff, cfg.RestartBackoffMax)
		}
		if ev.Backoff != wantNext {
			t.Fatalf("attempt %d backoff = %v, want %v", i, ev.Backoff, wantNext)
		}
		if wantNext *= 2; wantNext > cfg.RestartBackoffMax {
			wantNext = cfg.RestartBackoffMax
		}
	}

	// A new restart invocation gets a fresh sequence: back at the floor.
	before := len(fails)
	ctx2, cancel2 := context.WithCancel(context.Background())
	sup.restart(ctx2, 2, start, "restart")
	waitFor(t, 5*time.Second, "second invocation's first failure", func() bool {
		return len(restartFailures(sup.Events())) > before
	})
	cancel2()
	sup.wg.Wait()
	if got := restartFailures(sup.Events())[before].Backoff; got != cfg.RestartBackoff {
		t.Fatalf("backoff after fresh invocation = %v, want floor %v", got, cfg.RestartBackoff)
	}
}

// TestFleetCloseNoGoroutineLeak runs a short supervised fleet and checks
// that teardown returns the process to its goroutine baseline.
func TestFleetCloseNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	tightenRegTiming(t)
	baseline := runtime.NumGoroutine()

	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	sup := NewFleetSupervisor(fleet, nil, SupervisorConfig{})
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	fleet.Run(ctx)
	<-supDone
	fleet.Close()

	waitFor(t, 3*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}
