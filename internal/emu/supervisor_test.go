package emu

import (
	"context"
	"runtime"
	"testing"
	"time"

	"meshcast/internal/faults"
	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

// lineScenario is a minimal source → relay → sink topology where delivery
// requires the forwarding group at the relay (the direct link is dead).
func lineScenario() testbed.Scenario {
	return testbed.Scenario{
		Nodes: []packet.NodeID{1, 2, 3},
		Links: []testbed.Link{
			{A: 1, B: 2, Class: testbed.LowLoss},
			{A: 2, B: 3, Class: testbed.LowLoss},
		},
		Groups: []testbed.GroupSpec{{Group: 9, Source: 1, Members: []packet.NodeID{3}}},
	}
}

func deliveredTo(f *Fleet, id packet.NodeID) int {
	d := f.Daemon(id)
	if d == nil {
		return 0
	}
	return d.DeliveredCount()
}

// TestFleetSurvivesEtherRestartUnderTraffic stops and restarts the shared
// medium in the middle of a live run: daemons must re-register within one
// registration refresh interval and delivery must resume, with the medium
// stats accumulated across both ether generations.
func TestFleetSurvivesEtherRestartUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (several seconds)")
	}
	tightenRegTiming(t)
	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		fleet.Run(ctx)
	}()

	waitFor(t, 8*time.Second, "initial delivery", func() bool { return deliveredTo(fleet, 3) >= 5 })

	if err := fleet.StopEther(); err != nil {
		t.Fatal(err)
	}
	if fleet.EtherUp() {
		t.Fatal("EtherUp after StopEther")
	}
	time.Sleep(250 * time.Millisecond) // outage: frames go nowhere
	before := deliveredTo(fleet, 3)
	statsBefore := fleet.EtherStats()
	if statsBefore.FramesIn == 0 {
		t.Fatal("retired ether stats lost on StopEther")
	}

	if err := fleet.StartEther(); err != nil {
		t.Fatal(err)
	}
	// Re-registration must complete within one refresh interval plus one
	// retry backoff (tightened: 100 ms + 200 ms), generously bounded here.
	waitFor(t, 2*time.Second, "all daemons re-registered", func() bool {
		return len(fleet.EtherClients()) == 3
	})
	waitFor(t, 5*time.Second, "delivery to resume", func() bool {
		return deliveredTo(fleet, 3) >= before+5
	})
	if got := fleet.EtherStats().FramesIn; got <= statsBefore.FramesIn {
		t.Fatalf("cross-generation FramesIn = %d, want > %d", got, statsBefore.FramesIn)
	}
	cancel()
	<-runDone
}

// TestSupervisorScriptedKillAndRestart drives the relay of a line topology
// through a scripted crash: the supervisor must kill it on schedule, restart
// it on schedule, account its downtime, and end-to-end delivery must resume
// after the repair.
func TestSupervisorScriptedKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (several seconds)")
	}
	tightenRegTiming(t)
	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Node index 1 of sorted [1 2 3] is the relay, node 2.
	plan := faults.Plan{Outages: []faults.Outage{
		{Node: 1, Start: 2 * time.Second, Duration: 1500 * time.Millisecond},
	}}
	chaos, err := NewChaos(ChaosConfig{Plan: plan, Seed: 5}, fleet.NodeIDs())
	if err != nil {
		t.Fatal(err)
	}
	fleet.UseChaos(chaos)
	sup := NewFleetSupervisor(fleet, chaos, SupervisorConfig{})

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		fleet.Run(ctx)
	}()

	waitFor(t, 8*time.Second, "pre-fault delivery", func() bool { return deliveredTo(fleet, 3) >= 5 })
	waitFor(t, 5*time.Second, "scheduled kill", func() bool { return fleet.Daemon(2) == nil })
	if fleet.DaemonAlive(2, time.Second) {
		t.Fatal("killed relay reported alive")
	}
	waitFor(t, 5*time.Second, "scheduled restart", func() bool { return fleet.Daemon(2) != nil })
	afterRestart := deliveredTo(fleet, 3)
	waitFor(t, 5*time.Second, "delivery to resume through restarted relay", func() bool {
		return deliveredTo(fleet, 3) >= afterRestart+5
	})

	cancel()
	<-runDone
	if err := <-supDone; err != nil {
		t.Fatal(err)
	}

	acc := fleet.NodeStats(2)
	if acc.Kills != 1 || acc.Restarts != 1 {
		t.Fatalf("relay accounting = %+v, want 1 kill / 1 restart", acc)
	}
	if acc.Downtime < time.Second || acc.Downtime > 4*time.Second {
		t.Fatalf("relay downtime = %v, want ≈1.5s", acc.Downtime)
	}
	res := fleet.Result()
	if res.Kills[2] != 1 || res.Restarts[2] != 1 || res.Downtime[2] == 0 {
		t.Fatalf("FleetResult chaos accounting = kills %v restarts %v downtime %v",
			res.Kills, res.Restarts, res.Downtime)
	}
	if len(res.Health) != 1 {
		t.Fatalf("health groups = %d, want 1", len(res.Health))
	}
	rep := sup.Report(8 * time.Second)
	for _, n := range rep.Nodes {
		if n.Availability <= 0 {
			t.Fatalf("node %v availability = %v", n.ID, n.Availability)
		}
		if n.ID != 2 && n.Kills != 0 {
			t.Fatalf("surviving node %v was killed", n.ID)
		}
	}
}

// TestFleetCloseNoGoroutineLeak runs a short supervised fleet and checks
// that teardown returns the process to its goroutine baseline.
func TestFleetCloseNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	tightenRegTiming(t)
	baseline := runtime.NumGoroutine()

	fleet, err := NewFleet(FleetConfig{
		Scenario:     lineScenario(),
		Metric:       metric.SPP,
		SendInterval: 20 * time.Millisecond,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	sup := NewFleetSupervisor(fleet, nil, SupervisorConfig{})
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	fleet.Run(ctx)
	<-supDone
	fleet.Close()

	waitFor(t, 3*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}
