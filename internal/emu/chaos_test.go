package emu

import (
	"reflect"
	"testing"
	"time"

	"meshcast/internal/faults"
	"meshcast/internal/packet"
)

func chaosPlan() faults.Plan {
	return faults.Plan{
		Churn: &faults.ChurnModel{Fraction: 0.5, MTBF: 20 * time.Second, MTTR: 5 * time.Second},
		Outages: []faults.Outage{
			{Node: 1, Start: 10 * time.Second, Duration: 5 * time.Second},
		},
		LinkFaults: []faults.LinkFault{
			{From: 0, To: 2, Start: 2 * time.Second, Duration: 3 * time.Second, DropProb: 0.8, Symmetric: true},
		},
		EtherRestarts: []faults.EtherRestart{
			{Start: 30 * time.Second, Duration: 2 * time.Second},
		},
	}
}

// TestChaosScheduleDeterministic: one (plan, seed, nodes, horizon) tuple
// must always compile to the identical wall-clock timeline — the property
// that makes live chaos runs comparable across metrics and reproducible in
// CI.
func TestChaosScheduleDeterministic(t *testing.T) {
	nodes := []packet.NodeID{1, 2, 3, 4, 5}
	mk := func() *Chaos {
		c, err := NewChaos(ChaosConfig{Plan: chaosPlan(), Seed: 9, Horizon: 60 * time.Second}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("same-seed schedules diverged:\n%v\n%v", ea, eb)
	}
	if !reflect.DeepEqual(a.Onsets(), b.Onsets()) || !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Fatal("same-seed onsets/windows diverged")
	}
}

// TestChaosTimeScale: the wall schedule is the virtual schedule scaled
// linearly.
func TestChaosTimeScale(t *testing.T) {
	nodes := []packet.NodeID{1, 2, 3, 4, 5}
	full, err := NewChaos(ChaosConfig{Plan: chaosPlan(), Seed: 9, Horizon: 60 * time.Second}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	half, err := NewChaos(ChaosConfig{Plan: chaosPlan(), Seed: 9, Horizon: 60 * time.Second, TimeScale: 0.5}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ef, eh := full.Events(), half.Events()
	if len(ef) != len(eh) {
		t.Fatalf("event counts differ: %d vs %d", len(ef), len(eh))
	}
	for i := range ef {
		if eh[i].Kind != ef[i].Kind || eh[i].ID != ef[i].ID {
			t.Fatalf("event %d identity differs", i)
		}
		if want := ef[i].At / 2; eh[i].At != want {
			t.Fatalf("event %d at %v, want %v (half of %v)", i, eh[i].At, want, ef[i].At)
		}
	}
}

// TestChaosIDMapping: plan indices address the sorted node-ID list, so the
// outage on index 1 must land on the second-smallest ID even when the node
// list arrives unsorted.
func TestChaosIDMapping(t *testing.T) {
	plan := faults.Plan{Outages: []faults.Outage{{Node: 1, Start: time.Second, Duration: time.Second}}}
	c, err := NewChaos(ChaosConfig{Plan: plan, Seed: 1}, []packet.NodeID{10, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	events := c.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want down+up", len(events))
	}
	for _, ev := range events {
		if ev.ID != 7 {
			t.Fatalf("%s landed on node %v, want 7 (index 1 of sorted [3 7 10])", ev.Kind, ev.ID)
		}
	}
}

// TestChaosNodeDownAndDropProb anchors the schedule in the past so the
// current wall time falls inside the fault windows.
func TestChaosNodeDownAndDropProb(t *testing.T) {
	plan := faults.Plan{
		Outages:    []faults.Outage{{Node: 0, Start: time.Second, Duration: 10 * time.Second}},
		LinkFaults: []faults.LinkFault{{From: 1, To: 2, Start: time.Second, Duration: 10 * time.Second, DropProb: 0.7}},
	}
	c, err := NewChaos(ChaosConfig{Plan: plan, Seed: 1}, []packet.NodeID{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeDown(4) {
		t.Fatal("node down before Begin")
	}
	c.Begin(time.Now().Add(-2 * time.Second)) // virtual now ≈ 2s, inside both windows
	if !c.NodeDown(4) {
		t.Fatal("node 4 (index 0) not down inside its outage window")
	}
	if c.NodeDown(5) {
		t.Fatal("node 5 down without an outage")
	}
	if got := c.DropProb(5, 6); got != 0.7 {
		t.Fatalf("DropProb(5,6) = %v, want 0.7", got)
	}
	if got := c.DropProb(6, 5); got != 0 {
		t.Fatalf("DropProb(6,5) = %v, want 0 (fault is directional)", got)
	}
	if got := c.DropProb(99, 5); got != 0 {
		t.Fatalf("DropProb with unknown ID = %v, want 0", got)
	}
}

// TestChaosEtherRestartEvents: scripted ether restarts surface as
// ether-down/ether-up events with Node -1.
func TestChaosEtherRestartEvents(t *testing.T) {
	plan := faults.Plan{EtherRestarts: []faults.EtherRestart{{Start: 3 * time.Second, Duration: time.Second}}}
	c, err := NewChaos(ChaosConfig{Plan: plan, Seed: 1, TimeScale: 0.5}, []packet.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	events := c.Events()
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Kind != faults.EventEtherDown || events[0].At != 1500*time.Millisecond || events[0].Node != -1 {
		t.Fatalf("down event = %+v", events[0])
	}
	if events[1].Kind != faults.EventEtherUp || events[1].At != 2*time.Second {
		t.Fatalf("up event = %+v", events[1])
	}
}
