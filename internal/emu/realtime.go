package emu

import (
	"context"
	"time"

	"meshcast/internal/sim"
)

// Driver runs a sim.Engine against the wall clock so that the simulation
// components (ODMRP router, prober, tickers) can operate unmodified inside a
// live daemon. Virtual time is anchored to the driver's start; scheduled
// events fire when the wall clock passes their virtual time, and externally
// received packets are injected onto the driver goroutine, preserving the
// engine's single-threaded discipline.
type Driver struct {
	engine *sim.Engine
	inject chan func()
}

// maxSleep bounds how long the driver sleeps between polls so late-arriving
// injections never wait long.
const maxSleep = 20 * time.Millisecond

// NewDriver creates a real-time driver around a fresh engine.
func NewDriver(seed uint64) *Driver {
	return &Driver{
		engine: sim.NewEngine(seed),
		inject: make(chan func(), 256),
	}
}

// Engine exposes the underlying engine for component construction. Use it
// only before Run, or from injected callbacks.
func (d *Driver) Engine() *sim.Engine { return d.engine }

// Inject schedules fn to run on the driver goroutine at (approximately) the
// current wall-clock-mapped virtual time. Safe for concurrent use; drops
// nothing (blocks if the queue is full).
func (d *Driver) Inject(fn func()) {
	select {
	case d.inject <- fn:
	default:
		// Queue full: block rather than drop — packet receive rates in the
		// emulation are far below the queue drain rate, so this is rare.
		d.inject <- fn
	}
}

// drainBacklog runs queued injections without sleeping.
func (d *Driver) drainBacklog() {
	for {
		select {
		case fn := <-d.inject:
			fn()
		default:
			return
		}
	}
}

// Run drives the engine in real time until ctx is canceled.
func (d *Driver) Run(ctx context.Context) {
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		// Execute everything due up to the current wall time.
		d.engine.Run(now())

		sleep := maxSleep
		if next, ok := d.engine.PeekNext(); ok {
			if until := next - now(); until < sleep {
				sleep = until
			}
		}
		if sleep < 0 {
			sleep = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)

		select {
		case <-ctx.Done():
			return
		case fn := <-d.inject:
			d.engine.Run(now()) // advance the clock before handling input
			fn()
			d.drainBacklog()
		case <-timer.C:
		}
	}
}
