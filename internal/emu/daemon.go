package emu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	_ "meshcast/internal/multicast/protocols" // populate the protocol registry
	"meshcast/internal/packet"
)

// DaemonConfig configures one odmrpd instance.
type DaemonConfig struct {
	// ID is this daemon's node ID (unique per ether).
	ID packet.NodeID
	// EtherAddr is the ether server's UDP address.
	EtherAddr string
	// Metric selects the routing metric.
	Metric metric.Kind
	// Protocol selects the multicast routing protocol by registered name;
	// empty means multicast.Default (ODMRP).
	Protocol string
	// JoinGroups lists groups to join as a receiver.
	JoinGroups []packet.GroupID
	// SourceGroups lists groups to source CBR traffic into.
	SourceGroups []packet.GroupID
	// PayloadBytes and SendInterval shape the CBR flow (512 B, 50 ms).
	PayloadBytes int
	SendInterval time.Duration
	// Seed drives protocol randomness.
	Seed uint64
	// OnDeliver, when set, observes every application-layer delivery (in
	// addition to the daemon's own log). Called from the daemon's driver
	// goroutine; must be cheap and thread-safe.
	OnDeliver func(g packet.GroupID, src packet.NodeID, at time.Time)
	// OnSend, when set, observes every CBR data packet the daemon
	// originates. Same contract as OnDeliver.
	OnSend func(g packet.GroupID, at time.Time)
}

// DeliveredPacket records one data packet delivered to the daemon's
// application layer.
type DeliveredPacket struct {
	Group packet.GroupID
	Src   packet.NodeID
	Seq   uint32
	// At is the wall-clock arrival time.
	At time.Time
}

// Daemon is a live ODMRP node: the paper's odmrpd (§5.2) over the emulated
// ether. It reuses the simulator's protocol components unchanged, driven in
// real time.
type Daemon struct {
	cfg    DaemonConfig
	conn   *NodeConn
	driver *Driver
	router multicast.Protocol
	prober *linkquality.Prober
	table  *linkquality.Table

	mu           sync.Mutex
	delivered    []DeliveredPacket
	sent         uint64
	lastActivity time.Time
}

// NewDaemon connects to the ether and assembles the protocol stack. Call
// Run to start it.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 512
	}
	if cfg.SendInterval == 0 {
		cfg.SendInterval = 50 * time.Millisecond
	}
	pm, err := metric.New(cfg.Metric)
	if err != nil {
		return nil, err
	}
	// Seed the connection's reconnect jitter from the daemon's own seed so
	// restart/reconnect schedules are reproducible per run (fleet daemons
	// get distinct seeds, keeping their retries decorrelated).
	conn, err := DialSeeded(cfg.ID, cfg.EtherAddr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	driver := NewDriver(cfg.Seed)
	engine := driver.Engine()

	table := linkquality.NewTable(cfg.PayloadBytes, linkquality.DefaultWindowSize, 2*time.Minute)
	prober := linkquality.NewProber(engine, cfg.ID, linkquality.ConfigFor(cfg.Metric))
	router, err := multicast.New(cfg.Protocol, multicast.Env{
		Engine: engine,
		ID:     cfg.ID,
		Metric: pm,
		Table:  table,
	}, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}

	d := &Daemon{cfg: cfg, conn: conn, driver: driver, router: router, prober: prober, table: table}
	// Every frame the daemon puts on the air is a liveness heartbeat: the
	// prober's periodic probes guarantee a send cadence even on idle nodes,
	// so a healthy daemon's LastActivity keeps advancing.
	send := func(p *packet.Packet) bool {
		d.touch()
		return conn.Send(p)
	}
	prober.Send = send
	router.SetSend(send)
	router.SetOnDeliver(func(p *packet.Packet, _ packet.NodeID) {
		at := time.Now()
		d.mu.Lock()
		d.delivered = append(d.delivered, DeliveredPacket{
			Group: p.Group, Src: p.Src, Seq: p.Seq, At: at,
		})
		d.mu.Unlock()
		if cfg.OnDeliver != nil {
			cfg.OnDeliver(p.Group, p.Src, at)
		}
	})
	conn.SetOnPacket(func(p *packet.Packet, from packet.NodeID) {
		driver.Inject(func() { d.dispatch(p, from) })
	})
	return d, nil
}

func (d *Daemon) dispatch(p *packet.Packet, from packet.NodeID) {
	d.touch()
	if linkquality.HandleProbe(d.table, p, from, d.driver.Engine().Now()) {
		return
	}
	d.router.Handle(p, from)
}

// touch stamps protocol activity (any packet sent or received).
func (d *Daemon) touch() {
	d.mu.Lock()
	d.lastActivity = time.Now()
	d.mu.Unlock()
}

// Run starts probing, group membership, and traffic, and drives the daemon
// until ctx is canceled.
func (d *Daemon) Run(ctx context.Context) {
	engine := d.driver.Engine()
	engine.Schedule(0, func() {
		d.prober.Start()
		for _, g := range d.cfg.JoinGroups {
			d.router.JoinGroup(g)
		}
		for _, g := range d.cfg.SourceGroups {
			g := g
			d.router.StartSource(g)
			// CBR flow: plain ticker on the driver's engine.
			scheduleCBR(d, g)
		}
	})
	d.driver.Run(ctx)
}

func scheduleCBR(d *Daemon, g packet.GroupID) {
	var tick func()
	tick = func() {
		d.router.SendData(g, d.cfg.PayloadBytes)
		d.mu.Lock()
		d.sent++
		d.mu.Unlock()
		if d.cfg.OnSend != nil {
			d.cfg.OnSend(g, time.Now())
		}
		d.driver.Engine().Schedule(d.cfg.SendInterval, tick)
	}
	d.driver.Engine().Schedule(d.cfg.SendInterval, tick)
}

// Close tears the daemon's connection down.
func (d *Daemon) Close() error { return d.conn.Close() }

// Registered reports whether the ether has acknowledged this daemon's
// registration recently.
func (d *Daemon) Registered() bool { return d.conn.Registered() }

// LastActivity returns the wall-clock time of the daemon's most recent
// protocol activity (any packet sent or received; zero before the first).
func (d *Daemon) LastActivity() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastActivity
}

// Alive reports daemon liveness for supervision: the ether acknowledges its
// registration and it has shown protocol activity within window. Probing
// guarantees a send cadence, so a healthy daemon is always "active".
func (d *Daemon) Alive(window time.Duration) bool {
	if !d.Registered() {
		return false
	}
	last := d.LastActivity()
	return !last.IsZero() && time.Since(last) < window
}

// Delivered returns a snapshot of the packets delivered so far.
func (d *Daemon) Delivered() []DeliveredPacket {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DeliveredPacket, len(d.delivered))
	copy(out, d.delivered)
	return out
}

// DeliveredCount returns the number of packets delivered so far without
// copying the log (telemetry polls this every sample).
func (d *Daemon) DeliveredCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.delivered)
}

// SentCount returns the number of data packets this daemon originated.
func (d *Daemon) SentCount() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sent
}

// Protocol returns the registered name of the multicast protocol this
// daemon runs.
func (d *Daemon) Protocol() string { return d.router.Name() }

// Summary formats a one-line status.
func (d *Daemon) Summary() string {
	return fmt.Sprintf("%sd id=%v metric=%v sent=%d delivered=%d",
		d.router.Name(), d.cfg.ID, d.cfg.Metric, d.SentCount(), len(d.Delivered()))
}
