package emu

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/stats"
	"meshcast/internal/testbed"
)

// Fleet runs a whole testbed scenario as live daemons over one in-process
// ether: every node is a real odmrpd instance exchanging UDP datagrams in
// real time. This is the closest this repository gets to the paper's
// physical experiment — same protocol code, real sockets, real clocks —
// at the cost of running in wall-clock time.
//
// Daemons have a full lifecycle: StopDaemon / RestartDaemon kill and
// revive individual nodes mid-run (their traffic counters survive across
// generations), and StopEther / StartEther restart the shared medium —
// the primitives the FleetSupervisor drives to execute a chaos schedule.
type Fleet struct {
	cfg     FleetConfig
	links   *LinkTable
	groups  []testbed.GroupSpec
	nodeIDs []packet.NodeID // sorted; chaos plans address nodes by index here

	etherAddr string

	mu           sync.Mutex // guards ether lifecycle
	ether        *Ether     // nil while a scripted ether outage holds it down
	etherGen     int64
	etherRetired EtherStats

	// impairs is the composable impairment chain, read lock-free on the
	// ether's per-frame hot path and copy-on-write updated by the rare
	// SetImpairment/AddImpairment calls (the control plane mutates a running
	// fleet). Keeping it off f.mu also avoids an f.mu↔ether.mu lock-order
	// inversion: the ether evaluates the hook under its own lock.
	impairs atomic.Pointer[impairChain]

	chaos   *Chaos
	health  *liveHealth
	members map[packet.GroupID]int

	// expected and delivered are cumulative delivery accounting cheap enough
	// for per-request control-plane polling: expected grows by the group
	// size on every source send, delivered by one per member delivery.
	expected  atomic.Uint64
	delivered atomic.Uint64

	runCtx    context.Context
	started   chan struct{}
	startTime time.Time
	wg        sync.WaitGroup

	slots map[packet.NodeID]*daemonSlot
}

// daemonSlot is one node's seat in the fleet: its immutable daemon config
// plus the current live generation (nil while down) and the resilience
// accounting that spans generations.
type daemonSlot struct {
	mu     sync.Mutex
	cfg    DaemonConfig
	d      *Daemon
	cancel context.CancelFunc
	done   chan struct{}

	retiredSent uint64
	retiredRecv map[packet.NodeID]int
	downSince   time.Time
	downtime    time.Duration
	kills       int
	restarts    int
}

// FleetConfig configures a live fleet.
type FleetConfig struct {
	// Scenario supplies nodes, links and groups (e.g.
	// testbed.PaperScenario() or a generated floor).
	Scenario testbed.Scenario
	// Metric selects the routing metric for every daemon.
	Metric metric.Kind
	// Protocol selects the multicast routing protocol for every daemon by
	// registered name; empty means multicast.Default (ODMRP).
	Protocol string
	// LossyDF / LowLossDF map link classes to delivery probabilities
	// (defaults 0.5 and 0.95).
	LossyDF, LowLossDF float64
	// LinkDelay, LinkJitter, and LinkDupProb shape every link: fixed
	// one-way latency, uniform extra latency in [0, LinkJitter) (which
	// reorders frames once it exceeds the inter-frame gap), and the
	// probability a delivered frame arrives twice. All default to zero —
	// the pre-impairment perfect-timing medium.
	LinkDelay, LinkJitter time.Duration
	LinkDupProb           float64
	// SendInterval is each source's CBR gap (default 50 ms).
	SendInterval time.Duration
	// StartStagger spaces daemon starts by this much in Run (node i starts
	// i×StartStagger after run start), so a fleet of hundreds of daemons
	// does not thunder at the ether in one burst. Zero starts everyone at
	// once. Keep total stagger below the supervisor's UnhealthyAfter, or
	// the watchdog will race the ramp-up.
	StartStagger time.Duration
	// Seed drives the ether's loss draws and protocol randomness.
	Seed uint64
}

// NewFleet starts the ether and connects one daemon per scenario node.
// Call Run to start the protocol and traffic; Close to tear down.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.LossyDF == 0 {
		cfg.LossyDF = 0.5
	}
	if cfg.LowLossDF == 0 {
		cfg.LowLossDF = 0.95
	}
	links := NewLinkTable(0) // non-adjacent nodes cannot hear each other
	for _, l := range cfg.Scenario.Links {
		df := cfg.LowLossDF
		if l.Class == testbed.Lossy {
			df = cfg.LossyDF
		}
		links.SetSymmetric(l.A, l.B, df)
	}
	if cfg.LinkDelay > 0 || cfg.LinkJitter > 0 || cfg.LinkDupProb > 0 {
		links.ShapeAll(cfg.LinkDelay, cfg.LinkJitter, cfg.LinkDupProb)
	}
	ether, err := NewEther("127.0.0.1:0", links, int64(cfg.Seed)+1)
	if err != nil {
		return nil, err
	}

	nodeIDs := append([]packet.NodeID(nil), cfg.Scenario.Nodes...)
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	f := &Fleet{
		cfg:       cfg,
		links:     links,
		groups:    cfg.Scenario.Groups,
		nodeIDs:   nodeIDs,
		etherAddr: ether.Addr(),
		ether:     ether,
		started:   make(chan struct{}),
		slots:     make(map[packet.NodeID]*daemonSlot, len(nodeIDs)),
	}
	f.impairs.Store(&impairChain{})
	ether.SetImpairment(f.impairHook)
	joins := make(map[packet.NodeID][]packet.GroupID)
	sources := make(map[packet.NodeID][]packet.GroupID)
	f.members = make(map[packet.GroupID]int)
	for _, g := range cfg.Scenario.Groups {
		sources[g.Source] = append(sources[g.Source], g.Group)
		f.members[g.Group] = len(g.Members)
		for _, m := range g.Members {
			joins[m] = append(joins[m], g.Group)
		}
	}
	for _, id := range nodeIDs {
		dcfg := DaemonConfig{
			ID:           id,
			EtherAddr:    f.etherAddr,
			Metric:       cfg.Metric,
			Protocol:     cfg.Protocol,
			JoinGroups:   joins[id],
			SourceGroups: sources[id],
			SendInterval: cfg.SendInterval,
			Seed:         cfg.Seed*1000 + uint64(id),
			OnSend:       func(g packet.GroupID, at time.Time) { f.recordSend(g, at) },
			OnDeliver:    func(g packet.GroupID, _ packet.NodeID, at time.Time) { f.recordDeliver(g, at) },
		}
		d, err := NewDaemon(dcfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet daemon %v: %w", id, err)
		}
		f.slots[id] = &daemonSlot{cfg: dcfg, d: d, retiredRecv: make(map[packet.NodeID]int)}
	}
	return f, nil
}

// NodeIDs returns the fleet's node IDs, sorted ascending — the index
// order chaos plans and fault scripts address.
func (f *Fleet) NodeIDs() []packet.NodeID {
	return append([]packet.NodeID(nil), f.nodeIDs...)
}

// UseChaos attaches a chaos schedule: the plan's link faults and
// partitions become the ether's impairment hook, and a wall-clock
// HealthTracker is armed with the schedule's onsets and windows so Result
// reports repair latency, outage-vs-steady PDR, and availability. Call
// before Run.
func (f *Fleet) UseChaos(c *Chaos) {
	f.chaos = c
	f.SetImpairment(c.DropProb)
	f.health = newLiveHealth(c.Onsets(), c.Windows())
}

// impairChain is the fleet's composed impairment state: a base hook (the
// chaos schedule attached before Run) plus extra hooks added live by the
// control plane. Updates replace the whole value (copy-on-write); the
// ether's per-frame hook only ever Loads it.
type impairChain struct {
	base   ImpairFunc
	extras []timedImpair
}

// timedImpair is one live-injected impairment with an optional expiry: once
// a fault script's span is over its hook evaluates to zero forever, so it
// can be pruned instead of lengthening the chain for the rest of a soak.
type timedImpair struct {
	fn    ImpairFunc
	until time.Time // zero = never expires
}

// impairHook is the single ImpairFunc installed on every ether generation:
// it combines the chain's hooks as independent loss processes
// (drop = 1 − Π(1 − dropᵢ)).
func (f *Fleet) impairHook(from, to packet.NodeID) float64 {
	ch := f.impairs.Load()
	keep := 1.0
	if ch.base != nil {
		keep *= 1 - ch.base(from, to)
	}
	for _, ti := range ch.extras {
		if !ti.until.IsZero() && time.Now().After(ti.until) {
			continue
		}
		keep *= 1 - ti.fn(from, to)
	}
	if keep <= 0 {
		return 1
	}
	return 1 - keep
}

// SetImpairment installs (or, with nil, clears) the base ether impairment
// hook, keeping it across ether restarts. Live additions made through
// AddImpairment survive.
func (f *Fleet) SetImpairment(fn ImpairFunc) {
	for {
		old := f.impairs.Load()
		next := &impairChain{base: fn, extras: old.extras}
		if f.impairs.CompareAndSwap(old, next) {
			return
		}
	}
}

// AddImpairment composes an extra impairment hook into the chain while the
// fleet runs — the control plane's /faults/script injection path. A
// non-zero until lets the fleet prune the hook after the script's span has
// passed (expired hooks evaluate to zero anyway).
func (f *Fleet) AddImpairment(fn ImpairFunc, until time.Time) {
	now := time.Now()
	for {
		old := f.impairs.Load()
		next := &impairChain{base: old.base}
		for _, ti := range old.extras {
			if !ti.until.IsZero() && now.After(ti.until) {
				continue
			}
			next.extras = append(next.extras, ti)
		}
		next.extras = append(next.extras, timedImpair{fn: fn, until: until})
		if f.impairs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Run drives the fleet until ctx is canceled (wall-clock time): every
// daemon runs on its own goroutine, and killed daemons restarted through
// RestartDaemon join the same run. Run returns once ctx is done and every
// daemon goroutine has exited.
func (f *Fleet) Run(ctx context.Context) {
	f.mu.Lock()
	f.runCtx = ctx
	f.startTime = time.Now()
	f.mu.Unlock()
	if f.chaos != nil {
		f.chaos.Begin(f.startTime)
	}
	if f.health != nil {
		f.health.begin(f.startTime)
	}
	close(f.started)
	if f.cfg.StartStagger > 0 {
		// One starter goroutine paces the fleet up; it registers on f.wg
		// before Run can reach Wait, so a canceled context cannot race a
		// late wg.Add.
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for i, id := range f.nodeIDs {
				if i > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(f.cfg.StartStagger):
					}
				}
				s := f.slots[id]
				s.mu.Lock()
				// Start only untouched initial generations: a slot the
				// supervisor already killed (d == nil) or revived
				// (cancel != nil) mid-ramp is left alone.
				if s.d != nil && s.cancel == nil {
					f.startDaemonLocked(s)
				}
				s.mu.Unlock()
			}
		}()
	} else {
		for _, id := range f.nodeIDs {
			s := f.slots[id]
			s.mu.Lock()
			if s.d != nil {
				f.startDaemonLocked(s)
			}
			s.mu.Unlock()
		}
	}
	<-ctx.Done()
	f.wg.Wait()
}

// Started returns a channel closed when Run has begun (the supervisor
// blocks on it before executing its schedule).
func (f *Fleet) Started() <-chan struct{} { return f.started }

// StartTime returns the wall-clock time Run began (zero before Run).
func (f *Fleet) StartTime() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.startTime
}

// startDaemonLocked launches the slot's current daemon generation on the
// run context. Caller holds s.mu; Run must have been called.
func (f *Fleet) startDaemonLocked(s *daemonSlot) {
	ctx, cancel := context.WithCancel(f.runCtx)
	s.cancel = cancel
	done := make(chan struct{})
	s.done = done
	d := s.d
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer close(done)
		d.Run(ctx)
	}()
}

// StopDaemon kills one daemon (a scripted crash): its run goroutine stops,
// its socket closes, and its traffic counters are retired into the slot so
// Result still accounts them. The rest of the fleet keeps running. No-op
// if the daemon is already down.
func (f *Fleet) StopDaemon(id packet.NodeID) error {
	s := f.slots[id]
	if s == nil {
		return fmt.Errorf("emu: unknown fleet node %v", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d == nil {
		return nil
	}
	if s.cancel != nil {
		s.cancel()
		<-s.done
	}
	s.retiredSent += s.d.SentCount()
	for _, p := range s.d.Delivered() {
		s.retiredRecv[p.Src]++
	}
	s.d.Close()
	s.d, s.cancel, s.done = nil, nil, nil
	s.downSince = time.Now()
	s.kills++
	return nil
}

// RestartDaemon revives a killed daemon as a fresh generation: new socket,
// new protocol state (ODMRP soft state and link estimates are gone, as on
// a real reboot), same node identity and traffic role. Returns an error if
// the daemon is already up, the fleet is not running, or the dial fails —
// the supervisor retries with backoff.
func (f *Fleet) RestartDaemon(id packet.NodeID) error {
	s := f.slots[id]
	if s == nil {
		return fmt.Errorf("emu: unknown fleet node %v", id)
	}
	f.mu.Lock()
	ctx := f.runCtx
	f.mu.Unlock()
	if ctx == nil {
		return fmt.Errorf("emu: fleet not running")
	}
	if ctx.Err() != nil {
		return fmt.Errorf("emu: fleet stopped: %w", ctx.Err())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d != nil {
		return nil
	}
	d, err := NewDaemon(s.cfg)
	if err != nil {
		return fmt.Errorf("emu: restart %v: %w", id, err)
	}
	s.d = d
	if !s.downSince.IsZero() {
		s.downtime += time.Since(s.downSince)
		s.downSince = time.Time{}
	}
	s.restarts++
	f.startDaemonLocked(s)
	return nil
}

// DaemonAlive reports whether the node's daemon is up, registered with the
// ether, and showing protocol activity within window.
func (f *Fleet) DaemonAlive(id packet.NodeID, window time.Duration) bool {
	s := f.slots[id]
	if s == nil {
		return false
	}
	s.mu.Lock()
	d := s.d
	s.mu.Unlock()
	return d != nil && d.Alive(window)
}

// StopEther takes the shared medium down (a scripted medium outage): every
// in-flight delayed frame is lost and the client table with it. Daemons
// keep running and re-register when StartEther brings it back.
func (f *Fleet) StopEther() error {
	f.mu.Lock()
	ether := f.ether
	f.ether = nil
	f.mu.Unlock()
	if ether == nil {
		return nil
	}
	stats := ether.Stats()
	err := ether.Close()
	f.mu.Lock()
	f.etherRetired.FramesIn += stats.FramesIn
	f.etherRetired.FramesOut += stats.FramesOut
	f.etherRetired.FramesDropped += stats.FramesDropped
	f.etherRetired.FramesDup += stats.FramesDup
	f.etherRetired.Registrations += stats.Registrations
	f.mu.Unlock()
	return err
}

// StartEther rebinds the medium on the fleet's original address with a
// fresh, deterministic per-generation seed and the saved impairment hook.
// Daemon registration refresh repopulates the client table within one
// refresh interval.
func (f *Fleet) StartEther() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ether != nil {
		return nil
	}
	f.etherGen++
	ether, err := NewEther(f.etherAddr, f.links, int64(f.cfg.Seed)+1+f.etherGen)
	if err != nil {
		return err
	}
	ether.SetImpairment(f.impairHook)
	f.ether = ether
	return nil
}

// EtherStats returns medium counters accumulated across every ether
// generation of the run.
func (f *Fleet) EtherStats() EtherStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.etherRetired
	if f.ether != nil {
		s := f.ether.Stats()
		out.FramesIn += s.FramesIn
		out.FramesOut += s.FramesOut
		out.FramesDropped += s.FramesDropped
		out.FramesDup += s.FramesDup
		out.Registrations += s.Registrations
	}
	return out
}

// EtherUp reports whether the medium is currently serving.
func (f *Fleet) EtherUp() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ether != nil
}

// EtherClients returns the node IDs currently registered with the medium
// (nil while the ether is down).
func (f *Fleet) EtherClients() []packet.NodeID {
	f.mu.Lock()
	ether := f.ether
	f.mu.Unlock()
	if ether == nil {
		return nil
	}
	return ether.Clients()
}

// Totals returns fleet-wide sent/delivered packet counts across all daemon
// generations — cheap enough for per-sample telemetry polling.
func (f *Fleet) Totals() (sent uint64, delivered uint64) {
	for _, s := range f.slots {
		s.mu.Lock()
		sent += s.retiredSent
		for _, n := range s.retiredRecv {
			delivered += uint64(n)
		}
		if s.d != nil {
			sent += s.d.SentCount()
			delivered += uint64(s.d.DeliveredCount())
		}
		s.mu.Unlock()
	}
	return sent, delivered
}

func (f *Fleet) recordSend(g packet.GroupID, at time.Time) {
	f.expected.Add(uint64(f.members[g]))
	if f.health != nil {
		// Same convention as the simulator's health wiring: one expected
		// delivery per group member, so PDR denominators line up.
		for i := 0; i < f.members[g]; i++ {
			f.health.recordSend(g, at)
		}
	}
}

func (f *Fleet) recordDeliver(g packet.GroupID, at time.Time) {
	f.delivered.Add(1)
	if f.health != nil {
		f.health.recordDeliver(g, at)
	}
}

// DeliveryEstimate returns the fleet's cumulative delivery accounting:
// expected deliveries (one per group member per source send) and actual
// member deliveries. Lock-free — the control plane polls it per request,
// and windowed deltas of delivered/expected give a live PDR estimate.
func (f *Fleet) DeliveryEstimate() (expected, delivered uint64) {
	return f.expected.Load(), f.delivered.Load()
}

// Links returns the fleet's shared link table; profile and partition
// mutations on it apply to the live medium (and survive ether restarts,
// since every generation shares the table).
func (f *Fleet) Links() *LinkTable { return f.links }

// Drain quiesces the current ether generation for graceful shutdown:
// new frames stop fanning out while already-scheduled delayed deliveries
// land. No-op while a scripted outage holds the ether down.
func (f *Fleet) Drain() {
	f.mu.Lock()
	ether := f.ether
	f.mu.Unlock()
	if ether != nil {
		ether.Drain()
	}
}

// NodeAccounting is one node's cross-generation resilience ledger.
type NodeAccounting struct {
	// Kills and Restarts count lifecycle transitions this run.
	Kills, Restarts int
	// Downtime is the total wall-clock time spent dead (open intervals
	// count up to now).
	Downtime time.Duration
}

// NodeStats returns a node's lifecycle accounting.
func (f *Fleet) NodeStats(id packet.NodeID) NodeAccounting {
	s := f.slots[id]
	if s == nil {
		return NodeAccounting{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := NodeAccounting{Kills: s.kills, Restarts: s.restarts, Downtime: s.downtime}
	if !s.downSince.IsZero() {
		acc.Downtime += time.Since(s.downSince)
	}
	return acc
}

// FleetResult summarizes a fleet run.
type FleetResult struct {
	// Sent maps sources to packets originated (all daemon generations).
	Sent map[packet.NodeID]uint64
	// Received maps each member to packets delivered per source.
	Received map[packet.NodeID]map[packet.NodeID]int
	// PDR is the mean delivery ratio over all (source, member) pairs.
	PDR float64
	// Downtime, Kills, and Restarts account per-node chaos damage (only
	// nodes that were ever down appear).
	Downtime map[packet.NodeID]time.Duration
	Kills    map[packet.NodeID]int
	Restarts map[packet.NodeID]int
	// Health carries per-group self-healing summaries (repair latency,
	// outage-vs-steady PDR, availability) when chaos was attached.
	Health []stats.GroupHealth
}

// Result collects the per-daemon outcomes across all generations.
func (f *Fleet) Result() FleetResult {
	res := FleetResult{
		Sent:     make(map[packet.NodeID]uint64),
		Received: make(map[packet.NodeID]map[packet.NodeID]int),
	}
	for id, s := range f.slots {
		s.mu.Lock()
		sent := s.retiredSent
		recv := make(map[packet.NodeID]int, len(s.retiredRecv))
		for src, n := range s.retiredRecv {
			recv[src] = n
		}
		if s.d != nil {
			sent += s.d.SentCount()
			for _, p := range s.d.Delivered() {
				recv[p.Src]++
			}
		}
		acc := NodeAccounting{Kills: s.kills, Restarts: s.restarts, Downtime: s.downtime}
		if !s.downSince.IsZero() {
			acc.Downtime += time.Since(s.downSince)
		}
		s.mu.Unlock()

		if sent > 0 {
			res.Sent[id] = sent
		}
		if len(recv) > 0 {
			res.Received[id] = recv
		}
		if acc.Kills > 0 || acc.Restarts > 0 || acc.Downtime > 0 {
			if res.Downtime == nil {
				res.Downtime = make(map[packet.NodeID]time.Duration)
				res.Kills = make(map[packet.NodeID]int)
				res.Restarts = make(map[packet.NodeID]int)
			}
			res.Downtime[id] = acc.Downtime
			res.Kills[id] = acc.Kills
			res.Restarts[id] = acc.Restarts
		}
	}
	var sum float64
	var n int
	for _, g := range f.groups {
		sent := res.Sent[g.Source]
		if sent == 0 {
			continue
		}
		for _, m := range g.Members {
			sum += float64(res.Received[m][g.Source]) / float64(sent)
			n++
		}
	}
	if n > 0 {
		res.PDR = sum / float64(n)
	}
	if f.health != nil {
		res.Health = f.health.health()
	}
	return res
}

// Protocol returns the registered name of the multicast protocol the
// fleet's daemons run (the configured name resolved through the registry).
func (f *Fleet) Protocol() string {
	name, err := multicast.Resolve(f.cfg.Protocol)
	if err != nil {
		return f.cfg.Protocol
	}
	return name
}

// Daemon returns the live daemon for a node (tests and diagnostics; nil
// while the node is down).
func (f *Fleet) Daemon(id packet.NodeID) *Daemon {
	s := f.slots[id]
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// Close shuts every daemon and the ether down. Per-daemon counters are
// retired first, so Result stays accurate after Close.
func (f *Fleet) Close() {
	for _, s := range f.slots {
		s.mu.Lock()
		if s.d != nil {
			if s.cancel != nil {
				s.cancel()
				<-s.done
			}
			s.retiredSent += s.d.SentCount()
			for _, p := range s.d.Delivered() {
				s.retiredRecv[p.Src]++
			}
			s.d.Close()
			s.d, s.cancel, s.done = nil, nil, nil
		}
		s.mu.Unlock()
	}
	f.mu.Lock()
	ether := f.ether
	f.ether = nil
	f.mu.Unlock()
	if ether != nil {
		ether.Close()
	}
}

// liveHealth adapts stats.HealthTracker to wall-clock, multi-goroutine
// feeding: daemon callbacks arrive from many driver goroutines, so calls
// are serialized under a mutex and timestamps are clamped monotone
// per-group (the tracker requires nondecreasing time per group; loopback
// scheduling can interleave two daemons' callbacks a few microseconds out
// of order).
type liveHealth struct {
	mu      sync.Mutex
	start   time.Time
	tracker *stats.HealthTracker
	last    map[packet.GroupID]time.Duration
}

func newLiveHealth(onsets []time.Duration, windows []stats.Window) *liveHealth {
	return &liveHealth{
		tracker: stats.NewHealthTracker(onsets, windows),
		last:    make(map[packet.GroupID]time.Duration),
	}
}

func (h *liveHealth) begin(start time.Time) {
	h.mu.Lock()
	h.start = start
	h.mu.Unlock()
}

// clamp converts a wall timestamp to run-relative time, monotone per group.
// Caller holds h.mu.
func (h *liveHealth) clamp(g packet.GroupID, at time.Time) (time.Duration, bool) {
	if h.start.IsZero() {
		return 0, false
	}
	t := at.Sub(h.start)
	if last := h.last[g]; t < last {
		t = last
	}
	h.last[g] = t
	return t, true
}

func (h *liveHealth) recordSend(g packet.GroupID, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.clamp(g, at); ok {
		h.tracker.RecordSent(g, t)
	}
}

func (h *liveHealth) recordDeliver(g packet.GroupID, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.clamp(g, at); ok {
		h.tracker.RecordDelivered(g, t)
	}
}

func (h *liveHealth) health() []stats.GroupHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tracker.Health()
}
