package emu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/testbed"
)

// Fleet runs a whole testbed scenario as live daemons over one in-process
// ether: every node is a real odmrpd instance exchanging UDP datagrams in
// real time. This is the closest this repository gets to the paper's
// physical experiment — same protocol code, real sockets, real clocks —
// at the cost of running in wall-clock time.
type Fleet struct {
	ether   *Ether
	daemons map[packet.NodeID]*Daemon
	groups  []testbed.GroupSpec
}

// FleetConfig configures a live fleet.
type FleetConfig struct {
	// Scenario supplies nodes, links and groups (e.g.
	// testbed.PaperScenario() or a generated floor).
	Scenario testbed.Scenario
	// Metric selects the routing metric for every daemon.
	Metric metric.Kind
	// LossyDF / LowLossDF map link classes to delivery probabilities
	// (defaults 0.5 and 0.95).
	LossyDF, LowLossDF float64
	// SendInterval is each source's CBR gap (default 50 ms).
	SendInterval time.Duration
	// Seed drives the ether's loss draws and protocol randomness.
	Seed uint64
}

// NewFleet starts the ether and connects one daemon per scenario node.
// Call Run to start the protocol and traffic; Close to tear down.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.LossyDF == 0 {
		cfg.LossyDF = 0.5
	}
	if cfg.LowLossDF == 0 {
		cfg.LowLossDF = 0.95
	}
	links := NewLinkTable(0) // non-adjacent nodes cannot hear each other
	for _, l := range cfg.Scenario.Links {
		df := cfg.LowLossDF
		if l.Class == testbed.Lossy {
			df = cfg.LossyDF
		}
		links.SetSymmetric(l.A, l.B, df)
	}
	ether, err := NewEther("127.0.0.1:0", links, int64(cfg.Seed)+1)
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		ether:   ether,
		daemons: make(map[packet.NodeID]*Daemon, len(cfg.Scenario.Nodes)),
		groups:  cfg.Scenario.Groups,
	}
	joins := make(map[packet.NodeID][]packet.GroupID)
	sources := make(map[packet.NodeID][]packet.GroupID)
	for _, g := range cfg.Scenario.Groups {
		sources[g.Source] = append(sources[g.Source], g.Group)
		for _, m := range g.Members {
			joins[m] = append(joins[m], g.Group)
		}
	}
	for _, id := range cfg.Scenario.Nodes {
		d, err := NewDaemon(DaemonConfig{
			ID:           id,
			EtherAddr:    ether.Addr(),
			Metric:       cfg.Metric,
			JoinGroups:   joins[id],
			SourceGroups: sources[id],
			SendInterval: cfg.SendInterval,
			Seed:         cfg.Seed*1000 + uint64(id),
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet daemon %v: %w", id, err)
		}
		f.daemons[id] = d
	}
	return f, nil
}

// Run drives every daemon until ctx is canceled (wall-clock time).
func (f *Fleet) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, d := range f.daemons {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Run(ctx)
		}()
	}
	wg.Wait()
}

// FleetResult summarizes a fleet run.
type FleetResult struct {
	// Sent maps sources to packets originated.
	Sent map[packet.NodeID]uint64
	// Received maps each member to packets delivered per source.
	Received map[packet.NodeID]map[packet.NodeID]int
	// PDR is the mean delivery ratio over all (source, member) pairs.
	PDR float64
}

// Result collects the per-daemon outcomes.
func (f *Fleet) Result() FleetResult {
	res := FleetResult{
		Sent:     make(map[packet.NodeID]uint64),
		Received: make(map[packet.NodeID]map[packet.NodeID]int),
	}
	for id, d := range f.daemons {
		if n := d.SentCount(); n > 0 {
			res.Sent[id] = n
		}
		for _, p := range d.Delivered() {
			if res.Received[id] == nil {
				res.Received[id] = make(map[packet.NodeID]int)
			}
			res.Received[id][p.Src]++
		}
	}
	var sum float64
	var n int
	for _, g := range f.groups {
		sent := res.Sent[g.Source]
		if sent == 0 {
			continue
		}
		for _, m := range g.Members {
			sum += float64(res.Received[m][g.Source]) / float64(sent)
			n++
		}
	}
	if n > 0 {
		res.PDR = sum / float64(n)
	}
	return res
}

// Daemon returns the live daemon for a node (tests and diagnostics).
func (f *Fleet) Daemon(id packet.NodeID) *Daemon { return f.daemons[id] }

// Close shuts every daemon and the ether down.
func (f *Fleet) Close() {
	for _, d := range f.daemons {
		d.Close()
	}
	f.ether.Close()
}
