package emu

import (
	"fmt"
	"time"

	"meshcast/internal/packet"
	"meshcast/internal/telemetry"
)

// InstrumentFleet wires a live fleet (and optionally its chaos schedule and
// supervisor — either may be nil) into a telemetry registry, entirely via
// GaugeFunc callbacks.
//
// That restriction is deliberate: registry instruments follow the
// single-sim-goroutine contract and are unsynchronized, which a live fleet
// cannot honor from its many daemon goroutines. GaugeFunc sidesteps the
// problem — callbacks registered here only *read* state behind the fleet's
// own locks (Ether.Stats, slot mutexes, the supervisor's event log) and are
// evaluated on the single sampling goroutine (telemetry.RunWall), so the
// registry itself is never written concurrently. Counters that look
// monotonic (frames in/out) are still exported as gauges for the same
// reason; meshstat treats them identically.
//
// Exported names (meshstat groups by the prefix before the first dot):
//
//	emu.ether.frames_in / frames_out / frames_dropped / frames_dup
//	emu.ether.registrations / clients / up
//	emu.fleet.daemons_alive / sent / delivered
//	emu.node.<id>.alive
//	chaos.active / kills / restarts / downtime_s / events_executed /
//	chaos.ether_restarts
func InstrumentFleet(reg *telemetry.Registry, f *Fleet, c *Chaos, sup *FleetSupervisor) {
	if reg == nil || f == nil {
		return
	}
	reg.GaugeFunc("emu.ether.frames_in", func() float64 { return float64(f.EtherStats().FramesIn) })
	reg.GaugeFunc("emu.ether.frames_out", func() float64 { return float64(f.EtherStats().FramesOut) })
	reg.GaugeFunc("emu.ether.frames_dropped", func() float64 { return float64(f.EtherStats().FramesDropped) })
	reg.GaugeFunc("emu.ether.frames_dup", func() float64 { return float64(f.EtherStats().FramesDup) })
	reg.GaugeFunc("emu.ether.registrations", func() float64 { return float64(f.EtherStats().Registrations) })
	reg.GaugeFunc("emu.ether.clients", func() float64 { return float64(len(f.EtherClients())) })
	reg.GaugeFunc("emu.ether.up", func() float64 {
		if f.EtherUp() {
			return 1
		}
		return 0
	})

	const aliveWindow = 2 * time.Second
	ids := f.NodeIDs()
	reg.GaugeFunc("emu.fleet.daemons_alive", func() float64 {
		n := 0
		for _, id := range ids {
			if f.DaemonAlive(id, aliveWindow) {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("emu.fleet.sent", func() float64 { s, _ := f.Totals(); return float64(s) })
	reg.GaugeFunc("emu.fleet.delivered", func() float64 { _, d := f.Totals(); return float64(d) })
	for _, id := range ids {
		id := id
		reg.GaugeFunc(fmt.Sprintf("emu.node.%d.alive", id), func() float64 {
			if f.DaemonAlive(id, aliveWindow) {
				return 1
			}
			return 0
		})
	}

	reg.GaugeFunc("chaos.kills", func() float64 { return float64(sumNodeStats(f, ids).Kills) })
	reg.GaugeFunc("chaos.restarts", func() float64 { return float64(sumNodeStats(f, ids).Restarts) })
	reg.GaugeFunc("chaos.downtime_s", func() float64 { return sumNodeStats(f, ids).Downtime.Seconds() })
	if c != nil {
		reg.GaugeFunc("chaos.active", func() float64 { return float64(c.ActiveFaults()) })
	}
	if sup != nil {
		reg.GaugeFunc("chaos.events_executed", func() float64 { return float64(len(sup.Events())) })
		reg.GaugeFunc("chaos.ether_restarts", func() float64 {
			sup.mu.Lock()
			defer sup.mu.Unlock()
			return float64(sup.etherRestarts)
		})
	}
}

func sumNodeStats(f *Fleet, ids []packet.NodeID) NodeAccounting {
	var acc NodeAccounting
	for _, id := range ids {
		s := f.NodeStats(id)
		acc.Kills += s.Kills
		acc.Restarts += s.Restarts
		acc.Downtime += s.Downtime
	}
	return acc
}
