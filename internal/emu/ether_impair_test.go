package emu

import (
	"net"
	"sync"
	"testing"
	"time"

	"meshcast/internal/packet"
)

// fakeClients registers n fake clients (IDs 1..n) directly in the ether's
// table so decide() can be exercised without sockets.
func fakeClients(e *Ether, n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id := 1; id <= n; id++ {
		e.clients[packet.NodeID(id)] = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 10000 + id}
	}
}

// decision flattens one frame's decide() outcome for comparison.
type decision struct {
	delays  []time.Duration
	dups    []bool
	dropped int
}

func decideFrames(e *Ether, frames int) []decision {
	out := make([]decision, 0, frames)
	for i := 0; i < frames; i++ {
		e.mu.Lock()
		dels, dropped := e.decide(1, e.snapshotTargets(1))
		e.mu.Unlock()
		d := decision{dropped: dropped}
		for _, del := range dels {
			d.delays = append(d.delays, del.delay)
			d.dups = append(d.dups, del.dup)
		}
		out = append(out, d)
	}
	return out
}

// TestEtherDecideDeterministic is the fixed-seed regression for the fan-out
// path: two ethers with the same seed and link configuration must make an
// identical sequence of drop/delay/duplicate decisions. This locks in the
// ID-sorted target iteration — map-order iteration would consume RNG draws
// in a different order every run.
func TestEtherDecideDeterministic(t *testing.T) {
	mk := func() *Ether {
		links := NewLinkTable(0.6)
		links.Set(1, 3, 0.3)
		links.SetProfile(1, 4, LinkProfile{DF: 0.9, Delay: time.Millisecond, Jitter: 4 * time.Millisecond, DupProb: 0.2})
		e, err := NewEther("127.0.0.1:0", links, 42)
		if err != nil {
			t.Fatal(err)
		}
		fakeClients(e, 6)
		return e
	}
	a := mk()
	defer a.Close()
	b := mk()
	defer b.Close()

	da := decideFrames(a, 200)
	db := decideFrames(b, 200)
	for i := range da {
		if da[i].dropped != db[i].dropped || len(da[i].delays) != len(db[i].delays) {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, da[i], db[i])
		}
		for j := range da[i].delays {
			if da[i].delays[j] != db[i].delays[j] || da[i].dups[j] != db[i].dups[j] {
				t.Fatalf("frame %d delivery %d diverged: %+v vs %+v", i, j, da[i], db[i])
			}
		}
	}
}

// TestSnapshotTargetsSorted pins the determinism precondition directly.
func TestSnapshotTargetsSorted(t *testing.T) {
	e, err := NewEther("127.0.0.1:0", NewLinkTable(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fakeClients(e, 9)
	e.mu.Lock()
	targets := e.snapshotTargets(5)
	e.mu.Unlock()
	if len(targets) != 8 {
		t.Fatalf("targets = %d, want 8 (sender excluded)", len(targets))
	}
	for i := 1; i < len(targets); i++ {
		if targets[i-1].id >= targets[i].id {
			t.Fatalf("targets not sorted: %v then %v", targets[i-1].id, targets[i].id)
		}
	}
}

func TestDecideProfiles(t *testing.T) {
	links := NewLinkTable(1)
	links.SetProfile(1, 2, LinkProfile{DF: 1, Delay: 5 * time.Millisecond})
	links.SetProfile(1, 3, LinkProfile{DF: 1, Delay: 5 * time.Millisecond, Jitter: 10 * time.Millisecond})
	links.SetProfile(1, 4, LinkProfile{DF: 1, DupProb: 1})
	links.SetProfile(1, 5, LinkProfile{DF: 0})
	e, err := NewEther("127.0.0.1:0", links, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fakeClients(e, 5)

	for i := 0; i < 50; i++ {
		e.mu.Lock()
		dels, dropped := e.decide(1, e.snapshotTargets(1))
		e.mu.Unlock()
		if dropped != 1 {
			t.Fatalf("dropped = %d, want 1 (the DF-0 link)", dropped)
		}
		if len(dels) != 3 {
			t.Fatalf("deliveries = %d, want 3", len(dels))
		}
		// decide preserves target order: 2 (fixed delay), 3 (jittered), 4 (dup).
		if dels[0].delay != 5*time.Millisecond {
			t.Fatalf("fixed delay = %v", dels[0].delay)
		}
		if dels[1].delay < 5*time.Millisecond || dels[1].delay >= 15*time.Millisecond {
			t.Fatalf("jittered delay = %v, want [5ms, 15ms)", dels[1].delay)
		}
		if !dels[2].dup {
			t.Fatal("DupProb 1 delivery not duplicated")
		}
		if dels[0].dup || dels[1].dup {
			t.Fatal("unexpected duplicate on non-dup links")
		}
	}
}

func TestPartitionMask(t *testing.T) {
	links := NewLinkTable(1)
	links.SetPartition([]packet.NodeID{1, 2})
	if !links.Partitioned(1, 3) || !links.Partitioned(3, 2) {
		t.Fatal("cross-cut pairs not partitioned")
	}
	if links.Partitioned(1, 2) || links.Partitioned(3, 4) {
		t.Fatal("same-side pairs partitioned")
	}
	links.ClearPartition()
	if links.Partitioned(1, 3) {
		t.Fatal("partition survived ClearPartition")
	}
}

func TestShapeAllPreservesDF(t *testing.T) {
	links := NewLinkTable(0.8)
	links.Set(1, 2, 0.5)
	links.ShapeAll(2*time.Millisecond, time.Millisecond, 0.1)
	if p := links.Profile(1, 2); p.DF != 0.5 || p.Delay != 2*time.Millisecond || p.DupProb != 0.1 {
		t.Fatalf("shaped explicit link = %+v", p)
	}
	if p := links.Profile(3, 4); p.DF != 0.8 || p.Jitter != time.Millisecond {
		t.Fatalf("shaped default = %+v", p)
	}
	// Setting a DF later keeps the shaping.
	links.Set(1, 2, 0.9)
	if p := links.Profile(1, 2); p.DF != 0.9 || p.Delay != 2*time.Millisecond {
		t.Fatalf("Set clobbered shaping: %+v", p)
	}
}

// TestEtherDelayAndDuplicationLive exercises the shaped path over real
// sockets: a 40 ms link delays frames by at least that much, and a DupProb-1
// link delivers every frame twice.
func TestEtherDelayAndDuplicationLive(t *testing.T) {
	links := NewLinkTable(1)
	links.SetProfile(1, 2, LinkProfile{DF: 1, Delay: 40 * time.Millisecond})
	links.SetProfile(1, 3, LinkProfile{DF: 1, DupProb: 1})
	ether, err := NewEther("127.0.0.1:0", links, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer ether.Close()

	var mu sync.Mutex
	var arrivals2 []time.Time
	var got3 int
	mkConn := func(id packet.NodeID, on func()) *NodeConn {
		c, err := Dial(id, ether.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if on != nil {
			c.SetOnPacket(func(*packet.Packet, packet.NodeID) { on() })
		}
		return c
	}
	c1 := mkConn(1, nil)
	mkConn(2, func() { mu.Lock(); arrivals2 = append(arrivals2, time.Now()); mu.Unlock() })
	mkConn(3, func() { mu.Lock(); got3++; mu.Unlock() })
	time.Sleep(100 * time.Millisecond)

	sendAt := time.Now()
	if !c1.Send(&packet.Packet{Kind: packet.TypeData, Src: 1, Seq: 1}) {
		t.Fatal("send failed")
	}
	waitFor(t, 2*time.Second, "delayed + duplicated delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(arrivals2) >= 1 && got3 >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if d := arrivals2[0].Sub(sendAt); d < 40*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 40ms", d)
	}
	if got3 != 2 {
		t.Fatalf("dup link delivered %d copies, want 2", got3)
	}
	s := ether.Stats()
	if s.FramesDup != 1 {
		t.Fatalf("FramesDup = %d, want 1", s.FramesDup)
	}
}

// TestEtherCloseCancelsDelayedFrames: Close with deliveries still queued on
// timers must not leak goroutines or write to the closed socket.
func TestEtherCloseCancelsDelayedFrames(t *testing.T) {
	links := NewLinkTable(1)
	links.SetDefaultProfile(LinkProfile{DF: 1, Delay: 5 * time.Second})
	ether, err := NewEther("127.0.0.1:0", links, 5)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Dial(1, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(2, ether.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitFor(t, 2*time.Second, "registrations", func() bool {
		return hasClient(ether, 1) && hasClient(ether, 2)
	})
	for i := 0; i < 10; i++ {
		c1.Send(&packet.Packet{Kind: packet.TypeData, Src: 1, Seq: uint32(i)})
	}
	waitFor(t, 2*time.Second, "frames accepted", func() bool { return ether.Stats().FramesIn >= 10 })
	done := make(chan error, 1)
	go func() { done <- ether.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on pending delayed frames")
	}
}
