package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**, seeded through SplitMix64. Every source of randomness in a
// simulation flows from a single root RNG so that a run is fully reproducible
// from its seed. RNG is not safe for concurrent use; the simulation core is
// single-threaded by design.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded from the given seed. Two RNGs built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state. This is the
	// initialization recommended by the xoshiro authors.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent RNG from this one. Sub-streams let each
// subsystem (fading, MAC backoff, traffic jitter, ...) consume randomness
// without perturbing the others when one subsystem changes how much it draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
// Used by the Rayleigh fading model (received power under Rayleigh fading is
// exponentially distributed around its mean).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Shuffle permutes the n elements using the Fisher-Yates algorithm, calling
// swap to exchange elements i and j.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
