// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of events. All model
// code (PHY, MAC, routing, traffic) runs inside event callbacks on a single
// goroutine, so no locking is needed anywhere in the simulation core.
// Determinism is guaranteed by (a) a strict (time, sequence) ordering of
// events and (b) routing all randomness through seeded sub-streams of one
// root RNG (see RNG).
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule / Engine.At.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// argFn/arg are the ScheduleArg form: a static callback plus its
	// argument, so hot paths can schedule without allocating a closure.
	// Exactly one of fn and argFn is set.
	argFn   func(any)
	arg     any
	engine  *Engine
	index   int // heap index; -1 once popped or canceled
	stopped bool
	// pooled marks events created by ScheduleArgPooled: the engine owns the
	// Event and recycles it after the callback returns. Pooled events are
	// never handed to callers, so they can never be Stopped.
	pooled bool
}

// call invokes the event's callback in whichever form it was scheduled.
func (e *Event) call() {
	if e.argFn != nil {
		e.argFn(e.arg)
		return
	}
	e.fn()
}

// Stop cancels the event if it has not fired yet, removing it from the
// engine's queue immediately (so mass cancellation — churn, crashed nodes —
// cannot accumulate dead entries in the heap). Stopping an already-fired or
// already-stopped event is a no-op. Stop reports whether the event was still
// pending.
func (e *Event) Stop() bool {
	if e == nil || e.stopped || e.index == -1 {
		return false
	}
	e.stopped = true
	heap.Remove(&e.engine.queue, e.index)
	return true
}

// eventQueue implements heap.Interface ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		// Silently dropping a foreign value would corrupt the schedule in a
		// way that only shows up as missing events much later; fail loudly.
		panic("sim: eventQueue.Push called with a non-*Event value")
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. It is not safe for concurrent use.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	halted bool
	rng    *RNG
	// free recycles fired ScheduleArgPooled events. The pool only holds as
	// many events as were ever simultaneously pending, so steady-state
	// scheduling through ScheduleArgPooled allocates nothing.
	free []*Event

	// Processed counts events executed so far; useful for progress reporting
	// and performance benchmarks.
	Processed uint64
}

// NewEngine returns an engine with its clock at zero and a root RNG seeded
// with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// RNG returns the engine's root RNG. Model components should call Split to
// obtain private sub-streams at setup time.
func (e *Engine) RNG() *RNG { return e.rng }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero (the event fires at the current time, after all events
// already scheduled for that time). It returns the event so callers can
// cancel it.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current time.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleArg is Schedule for hot paths: instead of capturing state in a
// fresh closure, the event carries a static callback and the argument to
// pass it at fire time. The PHY fan-out schedules two events per (frame,
// receiver) pair through this form, saving one closure allocation per event.
// fn must be non-nil. A negative delay is treated as zero.
func (e *Engine) ScheduleArg(d time.Duration, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	ev := &Event{at: e.now + d, seq: e.seq, argFn: fn, arg: arg, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleArgPooled is ScheduleArg for fire-and-forget events: the engine
// keeps ownership of the Event and recycles it after the callback returns,
// so steady-state scheduling through this form allocates nothing. Because
// the Event is reused, it is not returned — an event that must be cancelable
// (Stop) has to go through Schedule/ScheduleArg instead, where the caller
// holds the only reference. The PHY fan-out schedules its begin/end arrival
// and transmit-end events through this form.
func (e *Engine) ScheduleArgPooled(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: e.now + d, seq: e.seq, argFn: fn, arg: arg, engine: e, pooled: true}
	} else {
		ev = &Event{at: e.now + d, seq: e.seq, argFn: fn, arg: arg, engine: e, pooled: true}
	}
	e.seq++
	heap.Push(&e.queue, ev)
}

// recycle returns a fired pooled event to the free list. Called by the run
// loops after the callback returns; by then nothing references the event
// (pooled events are never handed out), so it is safe to reuse.
func (e *Engine) recycle(ev *Event) {
	ev.arg, ev.argFn = nil, nil
	e.free = append(e.free, ev)
}

// Run executes events until the queue empties or the clock passes until.
// It returns the virtual time at which it stopped. The clock only advances
// to until when the loop drained: after a Halt it stays at the last executed
// event, so pending earlier events cannot move it backwards on a subsequent
// Run or RunAll.
func (e *Engine) Run(until time.Duration) time.Duration {
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.Processed++
		next.call()
		if next.pooled {
			e.recycle(next)
		}
	}
	if !e.halted && e.now < until {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue is empty.
func (e *Engine) RunAll() time.Duration {
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		heap.Pop(&e.queue)
		e.now = next.at
		e.Processed++
		next.call()
		if next.pooled {
			e.recycle(next)
		}
	}
	return e.now
}

// Halt stops the run loop after the current event returns. Pending events
// remain queued; a subsequent Run continues from where the engine stopped.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a previous Halt.
func (e *Engine) Resume() { e.halted = false }

// Pending returns the exact number of events still queued; canceled events
// are removed from the queue at Stop time and never counted.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekNext returns the scheduled time of the earliest pending event. The
// second result is false when the queue is empty. Real-time drivers use it
// to decide how long to sleep.
func (e *Engine) PeekNext() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}
