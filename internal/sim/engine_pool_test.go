package sim

import (
	"testing"
	"time"
)

// TestScheduleArgPooledOrdering: pooled events obey the same (time, seq)
// ordering as every other form, interleaved with Schedule/ScheduleArg.
func TestScheduleArgPooledOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	add := func(x any) { got = append(got, x.(int)) }
	e.ScheduleArgPooled(2*time.Millisecond, add, 3)
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.ScheduleArgPooled(1*time.Millisecond, add, 2) // same time, later seq
	e.ScheduleArg(3*time.Millisecond, add, 4)
	e.RunAll()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestScheduleArgPooledReuses pins the point of the pool: after warm-up,
// scheduling and firing pooled events allocates nothing.
func TestScheduleArgPooledReuses(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	count := func(any) { fired++ }
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			e.ScheduleArgPooled(time.Duration(i)*time.Microsecond, count, nil)
		}
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("pooled scheduling allocates %.1f per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired; the measurement is vacuous")
	}
}

// TestScheduleArgPooledRecyclesAcrossRunAndRunAll: events fired through
// Run(until) are recycled too, and recycled events carry no stale state.
func TestScheduleArgPooledRecyclesAcrossRunAndRunAll(t *testing.T) {
	e := NewEngine(1)
	var got []int
	add := func(x any) { got = append(got, x.(int)) }
	e.ScheduleArgPooled(1*time.Millisecond, add, 1)
	e.Run(5 * time.Millisecond)
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events after Run, want 1", len(e.free))
	}
	// The recycled event must come back with the new argument, not the old.
	e.ScheduleArgPooled(1*time.Millisecond, add, 2)
	e.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
}
