package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	root := NewRNG(7)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws from split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1.0", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(6)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
