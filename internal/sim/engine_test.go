package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.Schedule(5*time.Second, func() { at = e.Now() })
	e.RunAll()
	if at != 5*time.Second {
		t.Fatalf("Now inside event = %v, want 5s", at)
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(1*time.Second, func() { fired++ })
	e.Schedule(10*time.Second, func() { fired++ })
	end := e.Run(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunResumesAfterUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(10*time.Second, func() { fired++ })
	e.Run(5 * time.Second)
	e.Run(20 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after resumed run", fired)
	}
}

func TestEventStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	if !ev.Stop() {
		t.Fatal("Stop on pending event returned false")
	}
	if ev.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestEventStopRemovesFromHeap(t *testing.T) {
	e := NewEngine(1)
	// Mass-cancel: churn-style workloads stop thousands of timers long
	// before their deadlines; the queue must shrink immediately.
	events := make([]*Event, 1000)
	for i := range events {
		events[i] = e.Schedule(time.Hour, func() {})
	}
	keep := e.Schedule(time.Second, func() {})
	if got := e.Pending(); got != 1001 {
		t.Fatalf("pending = %d, want 1001", got)
	}
	for _, ev := range events {
		if !ev.Stop() {
			t.Fatal("Stop on pending event returned false")
		}
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending after mass cancel = %d, want 1 (exact count)", got)
	}
	e.RunAll()
	if keep.Stop() {
		t.Fatal("surviving event did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
}

func TestEventStopPreservesOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i)*time.Second, func() { got = append(got, i) }))
	}
	// Remove a scattering of events from the middle of the heap.
	for _, i := range []int{3, 4, 11, 17, 0} {
		evs[i].Stop()
	}
	e.RunAll()
	want := []int{1, 2, 5, 6, 7, 8, 9, 10, 12, 13, 14, 15, 16, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestEventQueuePushRejectsForeignValues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Push of a non-*Event did not panic")
		}
	}()
	var q eventQueue
	q.Push("not an event")
}

func TestEventStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Second, func() {})
	e.RunAll()
	if ev.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestScheduleNegativeDelayFiresNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		fired := false
		e.Schedule(-time.Second, func() { fired = true })
		_ = fired
	})
	var at time.Duration = -1
	e.Schedule(2*time.Second, func() {
		e.Schedule(-5*time.Second, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 2*time.Second {
		t.Fatalf("negative-delay event fired at %v, want 2s", at)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(time.Second, func() {
		fired++
		e.Halt()
	})
	e.Schedule(2*time.Second, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Halt", fired)
	}
	e.Resume()
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after Resume", fired)
	}
}

func TestRunAfterHaltKeepsClockMonotonic(t *testing.T) {
	// Regression: Run used to clamp the clock to until even when halted
	// with earlier events still pending; the next Run/RunAll then moved
	// Now() backwards to the pending event's time.
	e := NewEngine(1)
	var fireTimes []time.Duration
	e.Schedule(1*time.Second, func() {
		fireTimes = append(fireTimes, e.Now())
		e.Halt()
	})
	e.Schedule(2*time.Second, func() { fireTimes = append(fireTimes, e.Now()) })
	if end := e.Run(10 * time.Second); end != 1*time.Second {
		t.Fatalf("halted Run returned %v, want 1s (clock must not jump past pending events)", end)
	}
	if e.Now() != 1*time.Second {
		t.Fatalf("Now() after halted Run = %v, want 1s", e.Now())
	}
	e.Resume()
	last := e.Now()
	if end := e.Run(10 * time.Second); end != 10*time.Second {
		t.Fatalf("resumed Run returned %v, want 10s", end)
	}
	if e.Now() < last {
		t.Fatalf("clock moved backwards: %v after %v", e.Now(), last)
	}
	want := []time.Duration{1 * time.Second, 2 * time.Second}
	if len(fireTimes) != len(want) {
		t.Fatalf("fired at %v, want %v", fireTimes, want)
	}
	for i := range want {
		if fireTimes[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fireTimes, want)
		}
	}
}

func TestRunAllAfterHaltKeepsClockMonotonic(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(3*time.Second, func() { e.Halt() })
	e.Schedule(5*time.Second, func() {})
	e.Run(time.Minute)
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() after halt = %v, want 3s", e.Now())
	}
	e.Resume()
	var seen []time.Duration
	prev := e.Now()
	e.Schedule(time.Second, func() { seen = append(seen, e.Now()) })
	e.RunAll()
	for _, at := range seen {
		if at < prev {
			t.Fatalf("event ran at %v, before resume point %v", at, prev)
		}
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("final Now() = %v, want 5s", e.Now())
	}
}

func TestScheduleArg(t *testing.T) {
	e := NewEngine(1)
	var got []int
	record := func(x any) { got = append(got, x.(int)) }
	e.ScheduleArg(2*time.Second, record, 2)
	e.ScheduleArg(time.Second, record, 1)
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.ScheduleArg(-time.Second, record, 0) // negative delay fires first
	e.RunAll()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleArgStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.ScheduleArg(time.Second, func(any) { fired = true }, nil)
	if !ev.Stop() {
		t.Fatal("Stop on pending arg event returned false")
	}
	e.RunAll()
	if fired {
		t.Fatal("stopped arg event fired")
	}
}

func TestEventStopDuringExecution(t *testing.T) {
	// An event stopping itself from its own callback: at that point it is
	// already popped (index -1), so Stop must report false and must not
	// touch the heap.
	e := NewEngine(1)
	var ev *Event
	ran := false
	ev = e.Schedule(time.Second, func() {
		ran = true
		if ev.Stop() {
			t.Error("Stop from inside the event's own callback returned true")
		}
	})
	e.Schedule(2*time.Second, func() {})
	e.RunAll()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after RunAll", e.Pending())
	}
}

func TestEventsScheduledFromEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			e.Schedule(time.Millisecond, chain)
		}
	}
	e.Schedule(0, chain)
	e.RunAll()
	if count != 100 {
		t.Fatalf("chained events = %d, want 100", count)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("final time = %v, want 99ms", e.Now())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine(1)
	var times []time.Duration
	NewTicker(e, time.Second, 0, nil, func() { times = append(times, e.Now()) })
	e.Run(5500 * time.Millisecond)
	if len(times) != 5 {
		t.Fatalf("ticker fired %d times, want 5 (at %v)", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Fatalf("firing %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, 0, nil, func() {
		fired++
		if fired == 3 {
			tk.Stop()
		}
	})
	e.Run(time.Minute)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 after Stop from callback", fired)
	}
}

func TestTickerJitterBounded(t *testing.T) {
	e := NewEngine(42)
	rng := e.RNG().Split()
	var prev time.Duration
	var gaps []time.Duration
	NewTicker(e, time.Second, 500*time.Millisecond, rng, func() {
		if prev != 0 {
			gaps = append(gaps, e.Now()-prev)
		}
		prev = e.Now()
	})
	e.Run(time.Minute)
	if len(gaps) < 10 {
		t.Fatalf("too few firings: %d", len(gaps))
	}
	varied := false
	for _, g := range gaps {
		if g < time.Second || g >= 1500*time.Millisecond {
			t.Fatalf("gap %v outside [1s, 1.5s)", g)
		}
		if g != gaps[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jittered gaps are all identical")
	}
}

func TestEngineOrderingProperty(t *testing.T) {
	// Random schedules always execute in non-decreasing time order, with
	// FIFO tie-breaking by insertion sequence.
	if err := quick.Check(func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 || len(delaysRaw) > 200 {
			return true
		}
		e := NewEngine(1)
		type fired struct {
			at  time.Duration
			seq int
		}
		var got []fired
		for i, d := range delaysRaw {
			i := i
			at := time.Duration(d%50) * time.Millisecond
			e.At(at, func() { got = append(got, fired{e.Now(), i}) })
		}
		e.RunAll()
		if len(got) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false // FIFO violated within a timestamp
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
