package sim

import "time"

// Ticker fires a callback periodically in virtual time. It is the
// simulation-side analogue of time.Ticker, used for probe transmission,
// ODMRP refresh floods, CBR traffic, and bookkeeping timers.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	jitter   time.Duration
	rng      *RNG
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker schedules fn every interval starting interval from now. If
// jitter is non-zero, each firing is offset by a uniform value in
// [0, jitter) drawn from rng — periodic protocol timers in wireless networks
// are jittered to avoid synchronized collisions, and the paper's probing and
// refresh floods rely on that. rng may be nil when jitter is zero.
func NewTicker(engine *Engine, interval, jitter time.Duration, rng *RNG, fn func()) *Ticker {
	t := &Ticker{engine: engine, interval: interval, jitter: jitter, rng: rng, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	d := t.interval
	if t.jitter > 0 {
		d += time.Duration(t.rng.Float64() * float64(t.jitter))
	}
	t.ev = t.engine.Schedule(d, t.fire)
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.schedule()
	}
}

// Stop cancels future firings. It is safe to call multiple times and from
// within the ticker's own callback.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Stop()
	}
}
