// Package analysis computes metric-optimal routes on analytic link-quality
// graphs — the ground truth the distributed protocol approximates. It
// implements a generalized Dijkstra over any metric.PathMetric algebra
// (every metric in this repository is monotone and isotone, so label-setting
// search is exact) and helpers to grade protocol-built trees against the
// optimum.
package analysis

import (
	"container/heap"
	"fmt"

	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/phy"
	"meshcast/internal/topology"
)

// Graph is a directed graph with per-link quality estimates.
type Graph struct {
	n   int
	est map[[2]int]metric.LinkEstimate
}

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, est: make(map[[2]int]metric.LinkEstimate)}
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return g.n }

// SetLink sets the estimate for the directed link from → to.
func (g *Graph) SetLink(from, to int, e metric.LinkEstimate) {
	g.est[[2]int{from, to}] = e
}

// SetLinkSymmetric sets both directions.
func (g *Graph) SetLinkSymmetric(a, b int, e metric.LinkEstimate) {
	g.SetLink(a, b, e)
	g.SetLink(b, a, e)
}

// Link returns the estimate and whether the link exists.
func (g *Graph) Link(from, to int) (metric.LinkEstimate, bool) {
	e, ok := g.est[[2]int{from, to}]
	return e, ok
}

// FromMedium builds the analytic link-quality graph of a topology under a
// medium's propagation and fading models: each directed link's delivery
// probability is the closed-form per-packet reception probability. Pair
// metrics get an idealized packet-pair estimate: the large probe's airtime
// at the channel rate, inflated by the equilibrium loss penalty, and the
// channel bandwidth scaled by df. Links below minDF are omitted.
func FromMedium(topo *topology.Topology, medium *phy.Medium, packetBytes int, minDF float64) *Graph {
	g := NewGraph(topo.NodeCount())
	params := medium.Params()
	pairAirtime := params.AirTime(1000).Seconds() // nominal large-probe size
	for i := 0; i < topo.NodeCount(); i++ {
		for j := 0; j < topo.NodeCount(); j++ {
			if i == j {
				continue
			}
			df := medium.DeliveryProbability(topo.Positions[i], topo.Positions[j])
			if df < minDF {
				continue
			}
			g.SetLink(i, j, metric.LinkEstimate{
				DeliveryProb:     df,
				PairDelaySeconds: pairAirtime / (df * df),
				BandwidthBps:     params.BitrateBps * df,
				PacketBytes:      packetBytes,
			})
		}
	}
	return g
}

// FromPositions is FromMedium for plain point sets.
func FromPositions(positions []geom.Point, medium *phy.Medium, packetBytes int, minDF float64) *Graph {
	return FromMedium(&topology.Topology{Positions: positions}, medium, packetBytes, minDF)
}

// Routes holds single-source optimal routes under one metric.
type Routes struct {
	// Source is the route tree's root.
	Source int
	// Cost[v] is the optimal path cost from Source to v (metric's Worst
	// if unreachable).
	Cost []float64
	// Prev[v] is v's predecessor on the optimal path (-1 for the source
	// and unreachable nodes).
	Prev []int

	pm metric.PathMetric
}

// costItem is a priority-queue entry.
type costItem struct {
	node  int
	cost  float64
	index int
}

// costQueue orders items by the metric's Better relation.
type costQueue struct {
	items []*costItem
	pm    metric.PathMetric
}

func (q *costQueue) Len() int { return len(q.items) }
func (q *costQueue) Less(i, j int) bool {
	return q.pm.Better(q.items[i].cost, q.items[j].cost)
}
func (q *costQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
func (q *costQueue) Push(x any) {
	item, ok := x.(*costItem)
	if !ok {
		return
	}
	item.index = len(q.items)
	q.items = append(q.items, item)
}
func (q *costQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// BestRoutes runs the generalized Dijkstra from source under metric kind.
// It is exact for monotone, isotone path algebras — which all six metrics
// are: extending a path never improves it, and improving a prefix never
// hurts the whole.
func BestRoutes(g *Graph, kind metric.Kind, source int) (*Routes, error) {
	pm, err := metric.New(kind)
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= g.n {
		return nil, fmt.Errorf("analysis: source %d out of range [0,%d)", source, g.n)
	}
	r := &Routes{
		Source: source,
		Cost:   make([]float64, g.n),
		Prev:   make([]int, g.n),
		pm:     pm,
	}
	for i := range r.Cost {
		r.Cost[i] = pm.Worst()
		r.Prev[i] = -1
	}
	r.Cost[source] = pm.Initial()

	q := &costQueue{pm: pm}
	items := make([]*costItem, g.n)
	items[source] = &costItem{node: source, cost: pm.Initial()}
	heap.Push(q, items[source])
	settled := make([]bool, g.n)

	for q.Len() > 0 {
		popped, ok := heap.Pop(q).(*costItem)
		if !ok {
			break
		}
		u := popped.node
		if settled[u] {
			continue
		}
		settled[u] = true
		for v := 0; v < g.n; v++ {
			if settled[v] || v == u {
				continue
			}
			e, ok := g.Link(u, v)
			if !ok {
				continue
			}
			candidate := pm.Accumulate(r.Cost[u], pm.LinkCost(e))
			if !pm.Usable(candidate) {
				continue
			}
			if !pm.Better(candidate, r.Cost[v]) {
				continue
			}
			r.Cost[v] = candidate
			r.Prev[v] = u
			if items[v] == nil {
				items[v] = &costItem{node: v, cost: candidate}
				heap.Push(q, items[v])
			} else {
				items[v].cost = candidate
				heap.Fix(q, items[v].index)
			}
		}
	}
	return r, nil
}

// Reachable reports whether v has a usable optimal path.
func (r *Routes) Reachable(v int) bool {
	return v == r.Source || r.Prev[v] != -1
}

// PathTo reconstructs the optimal path source → v (inclusive); nil if
// unreachable.
func (r *Routes) PathTo(v int) []int {
	if !r.Reachable(v) {
		return nil
	}
	var rev []int
	for at := v; at != -1; at = r.Prev[at] {
		rev = append(rev, at)
		if at == r.Source {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// OptimalSPP returns, for each node, the best achievable end-to-end
// delivery probability from source — the analytic ceiling a multicast
// protocol can reach per packet transmission chain (no retransmissions).
func OptimalSPP(g *Graph, source int) ([]float64, error) {
	r, err := BestRoutes(g, metric.SPP, source)
	if err != nil {
		return nil, err
	}
	out := make([]float64, g.n)
	for v := range out {
		if r.Reachable(v) {
			out[v] = r.Cost[v]
		}
	}
	out[source] = 1
	return out, nil
}
