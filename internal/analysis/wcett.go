package analysis

import (
	"fmt"
	"math"

	"meshcast/internal/metric"
)

// WCETT implements the Weighted Cumulative ETT metric of Draves et al.
// (MobiCom 2004) for multi-radio, multi-channel meshes — the extension the
// paper defers to future work (§6: "extend the high-throughput link-quality
// metrics studied in this paper for multicast routing in
// multi-radio/multi-channel mesh networks").
//
// For a path whose hop i has expected transmission time ETT_i on channel
// c_i:
//
//	WCETT = (1-β)·Σ ETT_i + β·max_j Σ_{i: c_i = j} ETT_i
//
// The second term penalizes paths that reuse one channel heavily
// (intra-flow interference); β trades it off against total transmission
// time. WCETT is not isotone — a prefix that looks worse can yield a better
// full path by diversifying channels — so unlike the six broadcast metrics
// it cannot ride the generalized Dijkstra in this package; BestWCETTPath
// uses bounded exhaustive search, which is exact and fine at testbed scale.

// ChannelHop is one hop of a multi-channel path.
type ChannelHop struct {
	// Est is the link measurement (ETT consumes DeliveryProb, bandwidth
	// and packet size).
	Est metric.LinkEstimate
	// Channel is the radio channel the hop transmits on.
	Channel int
}

// WCETT computes the metric for a full path. beta must lie in [0, 1].
func WCETT(path []ChannelHop, beta float64) (float64, error) {
	if beta < 0 || beta > 1 {
		return 0, fmt.Errorf("analysis: beta %v outside [0,1]", beta)
	}
	ettMetric := metric.MustNew(metric.ETT)
	var total float64
	perChannel := make(map[int]float64)
	for _, hop := range path {
		ett := ettMetric.LinkCost(hop.Est)
		if math.IsInf(ett, 1) {
			return math.Inf(1), nil
		}
		total += ett
		perChannel[hop.Channel] += ett
	}
	var worstChannel float64
	for _, x := range perChannel {
		if x > worstChannel {
			worstChannel = x
		}
	}
	return (1-beta)*total + beta*worstChannel, nil
}

// ChannelGraph is a Graph whose links carry channel assignments.
type ChannelGraph struct {
	*Graph
	channels map[[2]int]int
}

// NewChannelGraph wraps a link-quality graph with channel assignments.
func NewChannelGraph(n int) *ChannelGraph {
	return &ChannelGraph{Graph: NewGraph(n), channels: make(map[[2]int]int)}
}

// SetChannelLink adds a directed link with a channel.
func (g *ChannelGraph) SetChannelLink(from, to int, e metric.LinkEstimate, channel int) {
	g.SetLink(from, to, e)
	g.channels[[2]int{from, to}] = channel
}

// SetChannelLinkSymmetric adds both directions on the same channel.
func (g *ChannelGraph) SetChannelLinkSymmetric(a, b int, e metric.LinkEstimate, channel int) {
	g.SetChannelLink(a, b, e, channel)
	g.SetChannelLink(b, a, e, channel)
}

// Channel returns a link's channel assignment.
func (g *ChannelGraph) Channel(from, to int) (int, bool) {
	c, ok := g.channels[[2]int{from, to}]
	return c, ok
}

// BestWCETTPath finds the minimum-WCETT simple path from src to dst by
// exhaustive search over simple paths up to maxHops long. Exact; intended
// for testbed-scale graphs (tens of nodes).
func BestWCETTPath(g *ChannelGraph, src, dst int, beta float64, maxHops int) ([]int, float64, error) {
	if src < 0 || src >= g.NodeCount() || dst < 0 || dst >= g.NodeCount() {
		return nil, 0, fmt.Errorf("analysis: endpoints (%d, %d) out of range", src, dst)
	}
	if beta < 0 || beta > 1 {
		return nil, 0, fmt.Errorf("analysis: beta %v outside [0,1]", beta)
	}
	if maxHops <= 0 {
		maxHops = g.NodeCount() - 1
	}
	bestCost := math.Inf(1)
	var bestPath []int

	visited := make([]bool, g.NodeCount())
	hops := make([]ChannelHop, 0, maxHops)
	nodes := make([]int, 1, maxHops+1)
	nodes[0] = src

	var dfs func(at int)
	dfs = func(at int) {
		if at == dst {
			cost, err := WCETT(hops, beta)
			if err == nil && cost < bestCost {
				bestCost = cost
				bestPath = append([]int(nil), nodes...)
			}
			return
		}
		if len(hops) >= maxHops {
			return
		}
		visited[at] = true
		for v := 0; v < g.NodeCount(); v++ {
			if visited[v] {
				continue
			}
			e, ok := g.Link(at, v)
			if !ok {
				continue
			}
			ch, _ := g.Channel(at, v)
			hops = append(hops, ChannelHop{Est: e, Channel: ch})
			nodes = append(nodes, v)
			dfs(v)
			hops = hops[:len(hops)-1]
			nodes = nodes[:len(nodes)-1]
		}
		visited[at] = false
	}
	dfs(src)

	if math.IsInf(bestCost, 1) {
		return nil, bestCost, nil
	}
	return bestPath, bestCost, nil
}
