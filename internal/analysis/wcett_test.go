package analysis

import (
	"math"
	"testing"

	"meshcast/internal/metric"
)

// ettOf mirrors the ETT link cost for test arithmetic.
func ettOf(e metric.LinkEstimate) float64 {
	return metric.MustNew(metric.ETT).LinkCost(e)
}

func TestWCETTSingleChannelReducesToSumPlusBetaSum(t *testing.T) {
	// With every hop on one channel, max_j X_j = Σ ETT, so
	// WCETT = (1-β)Σ + βΣ = Σ regardless of β.
	path := []ChannelHop{
		{Est: est(0.9), Channel: 1},
		{Est: est(0.8), Channel: 1},
	}
	sum := ettOf(est(0.9)) + ettOf(est(0.8))
	for _, beta := range []float64{0, 0.3, 0.5, 1} {
		got, err := WCETT(path, beta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-sum) > 1e-12 {
			t.Fatalf("beta=%v: WCETT = %v, want Σ ETT = %v", beta, got, sum)
		}
	}
}

func TestWCETTChannelDiversityWins(t *testing.T) {
	// Two equal-ETT two-hop paths; one alternates channels, one does not.
	// For β > 0 the diverse path must score strictly better.
	same := []ChannelHop{{est(0.9), 1}, {est(0.9), 1}}
	diverse := []ChannelHop{{est(0.9), 1}, {est(0.9), 2}}
	sameCost, err := WCETT(same, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	divCost, err := WCETT(diverse, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if divCost >= sameCost {
		t.Fatalf("diverse %v should beat same-channel %v", divCost, sameCost)
	}
	// β = 0 makes WCETT plain ETT: both equal.
	sameCost0, _ := WCETT(same, 0)
	divCost0, _ := WCETT(diverse, 0)
	if math.Abs(sameCost0-divCost0) > 1e-12 {
		t.Fatal("beta=0 should ignore channels")
	}
}

func TestWCETTDeadLinkInfinite(t *testing.T) {
	cost, err := WCETT([]ChannelHop{{metric.LinkEstimate{}, 1}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cost, 1) {
		t.Fatalf("dead link WCETT = %v", cost)
	}
}

func TestWCETTBetaValidation(t *testing.T) {
	if _, err := WCETT(nil, -0.1); err == nil {
		t.Fatal("negative beta accepted")
	}
	if _, err := WCETT(nil, 1.1); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestBestWCETTPathPrefersChannelDiversity(t *testing.T) {
	// 0 -> 3 via {1} on a single channel, or via {2} alternating channels.
	// Same link qualities; the diverse route must win for β = 0.5.
	g := NewChannelGraph(4)
	g.SetChannelLinkSymmetric(0, 1, est(0.9), 1)
	g.SetChannelLinkSymmetric(1, 3, est(0.9), 1)
	g.SetChannelLinkSymmetric(0, 2, est(0.9), 1)
	g.SetChannelLinkSymmetric(2, 3, est(0.9), 2)
	path, cost, err := BestWCETTPath(g, 0, 3, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("path = %v (cost %v), want via node 2", path, cost)
	}
}

func TestBestWCETTPathUnreachable(t *testing.T) {
	g := NewChannelGraph(3)
	g.SetChannelLinkSymmetric(0, 1, est(0.9), 1)
	path, cost, err := BestWCETTPath(g, 0, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path != nil || !math.IsInf(cost, 1) {
		t.Fatalf("unreachable gave path=%v cost=%v", path, cost)
	}
}

func TestBestWCETTPathValidation(t *testing.T) {
	g := NewChannelGraph(2)
	if _, _, err := BestWCETTPath(g, 0, 5, 0.5, 0); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	if _, _, err := BestWCETTPath(g, 0, 1, 2, 0); err == nil {
		t.Fatal("bad beta accepted")
	}
}

func TestBestWCETTPathRespectsMaxHops(t *testing.T) {
	// Only route is 3 hops; with maxHops 2 it must be unreachable.
	g := NewChannelGraph(4)
	g.SetChannelLinkSymmetric(0, 1, est(0.9), 1)
	g.SetChannelLinkSymmetric(1, 2, est(0.9), 2)
	g.SetChannelLinkSymmetric(2, 3, est(0.9), 1)
	path, _, err := BestWCETTPath(g, 0, 3, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if path != nil {
		t.Fatalf("maxHops=2 found %v", path)
	}
	path, _, err = BestWCETTPath(g, 0, 3, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("maxHops=3 path = %v", path)
	}
}
