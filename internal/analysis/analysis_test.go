package analysis

import (
	"math"
	"testing"

	"meshcast/internal/geom"
	"meshcast/internal/metric"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/topology"
)

func est(df float64) metric.LinkEstimate {
	return metric.LinkEstimate{
		DeliveryProb:     df,
		PairDelaySeconds: 0.004 / (df * df),
		BandwidthBps:     2e6 * df,
		PacketBytes:      512,
	}
}

// figure1Graph builds the paper's Figure 1 example: A(0), B(1), C(2), D(3).
func figure1Graph() *Graph {
	g := NewGraph(4)
	g.SetLinkSymmetric(0, 2, est(1))       // A-C
	g.SetLinkSymmetric(2, 3, est(1.0/3.0)) // C-D
	g.SetLinkSymmetric(0, 1, est(0.25))    // A-B
	g.SetLinkSymmetric(1, 3, est(1))       // B-D
	return g
}

func TestBestRoutesFigure1(t *testing.T) {
	g := figure1Graph()
	spp, err := BestRoutes(g, metric.SPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spp.Cost[3]-1.0/3.0) > 1e-9 {
		t.Fatalf("SPP optimal to D = %v, want 1/3", spp.Cost[3])
	}
	path := spp.PathTo(3)
	if len(path) != 3 || path[0] != 0 || path[1] != 2 || path[2] != 3 {
		t.Fatalf("SPP path = %v, want [0 2 3] (A-C-D)", path)
	}

	metx, err := BestRoutes(g, metric.METX, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(metx.Cost[3]-5) > 1e-9 {
		t.Fatalf("METX optimal to D = %v, want 5", metx.Cost[3])
	}
	mPath := metx.PathTo(3)
	if len(mPath) != 3 || mPath[1] != 1 {
		t.Fatalf("METX path = %v, want via B", mPath)
	}
}

func TestBestRoutesFigure3(t *testing.T) {
	// A(0) B(1) C(2) D(3) E(4).
	g := NewGraph(5)
	g.SetLinkSymmetric(0, 1, est(0.8))
	g.SetLinkSymmetric(1, 2, est(0.8))
	g.SetLinkSymmetric(2, 3, est(0.8))
	g.SetLinkSymmetric(0, 4, est(0.9))
	g.SetLinkSymmetric(4, 3, est(0.4))

	etx, err := BestRoutes(g, metric.ETX, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(etx.Cost[3]-(1/0.9+1/0.4)) > 1e-9 {
		t.Fatalf("ETX optimal = %v", etx.Cost[3])
	}
	if p := etx.PathTo(3); len(p) != 3 || p[1] != 4 {
		t.Fatalf("ETX path = %v, want via E", p)
	}

	spp, err := BestRoutes(g, metric.SPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spp.Cost[3]-0.512) > 1e-9 {
		t.Fatalf("SPP optimal = %v, want 0.512", spp.Cost[3])
	}
	if p := spp.PathTo(3); len(p) != 4 {
		t.Fatalf("SPP path = %v, want the 3-hop chain", p)
	}
}

func TestBestRoutesMinHop(t *testing.T) {
	g := NewGraph(4)
	g.SetLinkSymmetric(0, 1, est(0.1)) // terrible but 1 hop
	g.SetLinkSymmetric(0, 2, est(1))
	g.SetLinkSymmetric(2, 1, est(1))
	g.SetLinkSymmetric(1, 3, est(1))
	r, err := BestRoutes(g, metric.MinHop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost[1] != 1 {
		t.Fatalf("minhop to 1 = %v, want 1 (ignores quality)", r.Cost[1])
	}
	if r.Cost[3] != 2 {
		t.Fatalf("minhop to 3 = %v, want 2", r.Cost[3])
	}
}

func TestBestRoutesUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.SetLinkSymmetric(0, 1, est(0.9))
	// Node 2 is isolated.
	for _, k := range metric.All() {
		r, err := BestRoutes(g, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Reachable(2) {
			t.Fatalf("%v: isolated node reported reachable", k)
		}
		if r.PathTo(2) != nil {
			t.Fatalf("%v: path to isolated node", k)
		}
		if !r.Reachable(0) || !r.Reachable(1) {
			t.Fatalf("%v: connected nodes unreachable", k)
		}
	}
}

func TestBestRoutesSourceOutOfRange(t *testing.T) {
	g := NewGraph(2)
	if _, err := BestRoutes(g, metric.SPP, 5); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
	if _, err := BestRoutes(g, metric.Kind(99), 0); err == nil {
		t.Fatal("expected error for unknown metric")
	}
}

func TestBestRoutesAgainstBruteForce(t *testing.T) {
	// Exhaustive check on random 7-node graphs: Dijkstra's answer must
	// match brute-force enumeration of all simple paths, for every metric.
	rng := sim.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		n := 7
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.SetLinkSymmetric(i, j, est(0.3+0.7*rng.Float64()))
				}
			}
		}
		for _, k := range metric.All() {
			pm := metric.MustNew(k)
			r, err := BestRoutes(g, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			for target := 1; target < n; target++ {
				want := bruteBest(g, pm, 0, target)
				got := r.Cost[target]
				reachableWant := pm.Usable(want)
				if reachableWant != r.Reachable(target) {
					t.Fatalf("trial %d %v target %d: reachable mismatch", trial, k, target)
				}
				if !reachableWant {
					continue
				}
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("trial %d %v target %d: dijkstra %v, brute force %v", trial, k, target, got, want)
				}
			}
		}
	}
}

// bruteBest enumerates all simple paths via DFS.
func bruteBest(g *Graph, pm metric.PathMetric, from, to int) float64 {
	best := pm.Worst()
	visited := make([]bool, g.NodeCount())
	var dfs func(at int, cost float64)
	dfs = func(at int, cost float64) {
		if at == to {
			if pm.Usable(cost) && pm.Better(cost, best) {
				best = cost
			}
			return
		}
		visited[at] = true
		for v := 0; v < g.NodeCount(); v++ {
			if visited[v] {
				continue
			}
			e, ok := g.Link(at, v)
			if !ok {
				continue
			}
			dfs(v, pm.Accumulate(cost, pm.LinkCost(e)))
		}
		visited[at] = false
	}
	dfs(from, pm.Initial())
	return best
}

func TestFromMediumAnalyticGraph(t *testing.T) {
	engine := sim.NewEngine(1)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, phy.DefaultParams())
	topo := topology.Line(3, 150)
	g := FromMedium(topo, medium, 512, 0.01)
	e, ok := g.Link(0, 1)
	if !ok {
		t.Fatal("adjacent link missing")
	}
	if e.DeliveryProb <= 0.5 || e.DeliveryProb > 1 {
		t.Fatalf("df(150m) = %v", e.DeliveryProb)
	}
	far, ok := g.Link(0, 2)
	if ok && far.DeliveryProb >= e.DeliveryProb {
		t.Fatal("300m link should be much worse than 150m link")
	}
	if e.BandwidthBps <= 0 || e.PairDelaySeconds <= 0 || e.PacketBytes != 512 {
		t.Fatalf("pair fields not populated: %+v", e)
	}
}

func TestOptimalSPP(t *testing.T) {
	g := figure1Graph()
	opt, err := OptimalSPP(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt[0] != 1 {
		t.Fatalf("source optimal = %v, want 1", opt[0])
	}
	if math.Abs(opt[3]-1.0/3.0) > 1e-9 {
		t.Fatalf("optimal to D = %v", opt[3])
	}
}

func TestFromPositions(t *testing.T) {
	engine := sim.NewEngine(1)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, phy.DefaultParams())
	g := FromPositions([]geom.Point{{X: 0}, {X: 100}}, medium, 512, 0.5)
	if g.NodeCount() != 2 {
		t.Fatalf("nodes = %d", g.NodeCount())
	}
	if _, ok := g.Link(0, 1); !ok {
		t.Fatal("link missing")
	}
}
