package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary checks that arbitrary datagrams never crash the
// decoder and that anything it accepts re-encodes losslessly (daemons feed
// it raw UDP payloads).
func FuzzUnmarshalBinary(f *testing.F) {
	seed := &Packet{
		Kind: TypeJoinQuery, Src: 3, PrevHop: 2, Group: 1, Seq: 9,
		HopCount: 2, TTL: 30, Cost: 1.5, PayloadBytes: 512,
		Replies: []ReplyEntry{{Source: 1, NextHop: 2}},
	}
	data, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.UnmarshalBinary(data); err != nil {
			return // rejected input is fine
		}
		// Round-trip whatever was accepted.
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted packet failed to marshal: %v", err)
		}
		var q Packet
		if err := q.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.Kind != p.Kind || q.Src != p.Src || q.Seq != p.Seq || len(q.Replies) != len(p.Replies) {
			t.Fatalf("round trip changed packet: %+v vs %+v", q, p)
		}
	})
}
