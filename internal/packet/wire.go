package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Wire encoding used by cmd/odmrpd to carry packets inside UDP datagrams.
// Layout (big endian):
//
//	byte   0     kind
//	bytes  1-2   src
//	bytes  3-4   prevHop
//	bytes  5-6   group
//	bytes  7-10  seq
//	byte   11    hopCount
//	byte   12    ttl
//	bytes 13-20  cost (IEEE 754)
//	bytes 21-28  sentAt (ns)
//	bytes 29-30  payloadBytes
//	bytes 31-38  traceID (0 = untraced)
//	bytes 39-40  number of reply entries, then 4 bytes each (source, nextHop)
const wireFixedLen = 41

// ErrTruncated reports a datagram too short to decode.
var ErrTruncated = errors.New("packet: truncated wire data")

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Packet) MarshalBinary() ([]byte, error) {
	if len(p.Replies) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: %d reply entries exceed wire limit", len(p.Replies))
	}
	if p.PayloadBytes < 0 || p.PayloadBytes > math.MaxUint16 {
		return nil, fmt.Errorf("packet: payload size %d out of wire range", p.PayloadBytes)
	}
	buf := make([]byte, wireFixedLen+4*len(p.Replies))
	buf[0] = byte(p.Kind)
	binary.BigEndian.PutUint16(buf[1:], uint16(p.Src))
	binary.BigEndian.PutUint16(buf[3:], uint16(p.PrevHop))
	binary.BigEndian.PutUint16(buf[5:], uint16(p.Group))
	binary.BigEndian.PutUint32(buf[7:], p.Seq)
	buf[11] = p.HopCount
	buf[12] = p.TTL
	binary.BigEndian.PutUint64(buf[13:], math.Float64bits(p.Cost))
	binary.BigEndian.PutUint64(buf[21:], uint64(p.SentAt))
	binary.BigEndian.PutUint16(buf[29:], uint16(p.PayloadBytes))
	binary.BigEndian.PutUint64(buf[31:], p.TraceID)
	binary.BigEndian.PutUint16(buf[39:], uint16(len(p.Replies)))
	off := wireFixedLen
	for _, e := range p.Replies {
		binary.BigEndian.PutUint16(buf[off:], uint16(e.Source))
		binary.BigEndian.PutUint16(buf[off+2:], uint16(e.NextHop))
		off += 4
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Packet) UnmarshalBinary(data []byte) error {
	if len(data) < wireFixedLen {
		return ErrTruncated
	}
	p.Kind = Type(data[0])
	p.Src = NodeID(binary.BigEndian.Uint16(data[1:]))
	p.PrevHop = NodeID(binary.BigEndian.Uint16(data[3:]))
	p.Group = GroupID(binary.BigEndian.Uint16(data[5:]))
	p.Seq = binary.BigEndian.Uint32(data[7:])
	p.HopCount = data[11]
	p.TTL = data[12]
	p.Cost = math.Float64frombits(binary.BigEndian.Uint64(data[13:]))
	p.SentAt = time.Duration(binary.BigEndian.Uint64(data[21:]))
	p.PayloadBytes = int(binary.BigEndian.Uint16(data[29:]))
	p.TraceID = binary.BigEndian.Uint64(data[31:])
	n := int(binary.BigEndian.Uint16(data[39:]))
	if len(data) < wireFixedLen+4*n {
		return ErrTruncated
	}
	if n == 0 {
		p.Replies = nil
		return nil
	}
	p.Replies = make([]ReplyEntry, n)
	off := wireFixedLen
	for i := range p.Replies {
		p.Replies[i] = ReplyEntry{
			Source:  NodeID(binary.BigEndian.Uint16(data[off:])),
			NextHop: NodeID(binary.BigEndian.Uint16(data[off+2:])),
		}
		off += 4
	}
	return nil
}
