// Package packet defines the frame and packet formats shared by the
// simulator, the ODMRP implementation, and the user-level daemon: MAC frames,
// ODMRP control packets (JOIN QUERY / JOIN REPLY), link-quality probes, and
// multicast data. It also provides a compact binary wire encoding used by
// cmd/odmrpd to exchange packets over real UDP sockets.
package packet

import (
	"fmt"
	"time"
)

// NodeID identifies a node. IDs are assigned densely from 0 by the topology.
type NodeID uint16

// Broadcast is the all-nodes MAC destination. Multicast protocols in mesh
// networks transmit data and control packets to this address at the link
// layer to exploit the wireless multicast advantage (paper §2.1).
const Broadcast NodeID = 0xffff

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", uint16(n))
}

// GroupID identifies a multicast group (the paper's odmrpd uses the IP
// multicast address; we use a small integer).
type GroupID uint16

// String implements fmt.Stringer.
func (g GroupID) String() string { return fmt.Sprintf("g%d", uint16(g)) }

// Type discriminates network-layer packets.
type Type uint8

// Packet types.
const (
	// TypeData is a multicast data packet.
	TypeData Type = iota + 1
	// TypeJoinQuery is an ODMRP JOIN QUERY flooded from a source.
	TypeJoinQuery
	// TypeJoinReply is an ODMRP JOIN REPLY propagated from members toward
	// sources, establishing the forwarding group.
	TypeJoinReply
	// TypeProbe is a single broadcast link-quality probe (ETX-style).
	TypeProbe
	// TypeProbePairSmall is the first (small) packet of a packet-pair probe
	// (PP/ETT-style).
	TypeProbePairSmall
	// TypeProbePairLarge is the second (large) packet of a packet-pair
	// probe.
	TypeProbePairLarge
	// TypeCoreAnnounce is an MCST CORE ANNOUNCE flooded from a group's
	// core, accumulating path cost like a JOIN QUERY.
	TypeCoreAnnounce
	// TypeTreeJoin is an MCST TREE JOIN propagated from members (and
	// non-core senders) hop by hop toward the core, grafting the shared
	// tree.
	TypeTreeJoin
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeJoinQuery:
		return "JOIN_QUERY"
	case TypeJoinReply:
		return "JOIN_REPLY"
	case TypeProbe:
		return "PROBE"
	case TypeProbePairSmall:
		return "PAIR_SMALL"
	case TypeProbePairLarge:
		return "PAIR_LARGE"
	case TypeCoreAnnounce:
		return "CORE_ANNOUNCE"
	case TypeTreeJoin:
		return "TREE_JOIN"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Header byte counts used when computing on-air sizes and overhead
// percentages. The MAC constant approximates an 802.11 data header + FCS;
// the network constant approximates IP+UDP, matching the paper's
// application-level daemon design.
const (
	MACHeaderBytes = 34
	NetHeaderBytes = 28
)

// ReplyEntry is one (source, next hop) pair in a JOIN REPLY. A neighbor that
// finds itself listed as NextHop becomes part of the forwarding group and
// propagates its own reply toward that source.
type ReplyEntry struct {
	Source  NodeID
	NextHop NodeID
}

// Packet is a network-layer packet. A single struct (rather than one type
// per packet kind) keeps the simulator's hot path allocation-light; only the
// fields relevant to Kind are meaningful.
type Packet struct {
	Kind Type
	// Src is the originator (traffic source for data, query source for
	// JOIN QUERY, replying member/forwarder for JOIN REPLY, prober for
	// probes).
	Src NodeID
	// PrevHop is the node that (re)transmitted this copy. Updated at each
	// hop; receivers use it to index the neighbor table.
	PrevHop NodeID
	// Group is the multicast group for data and ODMRP control packets.
	Group GroupID
	// Seq identifies a packet within (Src, Kind) — data sequence numbers,
	// JOIN QUERY round numbers, or probe/pair sequence numbers.
	Seq uint32
	// HopCount is the number of hops traveled so far.
	HopCount uint8
	// TTL bounds further propagation.
	TTL uint8
	// Cost is the accumulated path cost in a JOIN QUERY, in the units of
	// whichever routing metric the protocol instance uses (sum for
	// ETX/ETT/PP, recurrence for METX, product of delivery probabilities
	// for SPP).
	Cost float64
	// Replies lists the (source, next hop) pairs of a JOIN REPLY.
	Replies []ReplyEntry
	// PayloadBytes is the application payload size for data packets and
	// the padding size for probes; headers are added by SizeBytes.
	PayloadBytes int
	// SentAt is the virtual time the packet left its originator
	// (end-to-end delay accounting).
	SentAt time.Duration
	// TraceID links every copy of an originated packet for packet-journey
	// tracing. Zero means untraced; it is stamped only when span tracing
	// is enabled, carried unchanged by forwarders, and excluded from
	// SizeBytes (observability metadata, not protocol state).
	TraceID uint64
}

// SizeBytes returns the on-air network-layer size: payload plus network
// header plus kind-specific fixed fields. MAC framing is added by the MAC
// layer.
func (p *Packet) SizeBytes() int {
	size := NetHeaderBytes + p.PayloadBytes
	switch p.Kind {
	case TypeJoinQuery, TypeCoreAnnounce:
		size += 16 // src, group, seq, hop, ttl, cost
	case TypeJoinReply:
		size += 8 + 4*len(p.Replies)
	case TypeTreeJoin:
		size += 8 + 4*len(p.Replies)
	case TypeData:
		size += 12 // group, src, seq
	case TypeProbe, TypeProbePairSmall, TypeProbePairLarge:
		size += 8 // seq + kind marker
	}
	return size
}

// Clone returns a deep copy of p. Forwarding nodes clone before mutating
// PrevHop/Cost/HopCount so that other receivers of the same broadcast see
// the original values.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Replies != nil {
		q.Replies = make([]ReplyEntry, len(p.Replies))
		copy(q.Replies, p.Replies)
	}
	return &q
}

// String implements fmt.Stringer (used by trace logs).
func (p *Packet) String() string {
	switch p.Kind {
	case TypeJoinQuery:
		return fmt.Sprintf("JOIN_QUERY{src=%v grp=%v seq=%d hops=%d cost=%.4g prev=%v}",
			p.Src, p.Group, p.Seq, p.HopCount, p.Cost, p.PrevHop)
	case TypeCoreAnnounce:
		return fmt.Sprintf("CORE_ANNOUNCE{core=%v grp=%v seq=%d hops=%d cost=%.4g prev=%v}",
			p.Src, p.Group, p.Seq, p.HopCount, p.Cost, p.PrevHop)
	case TypeJoinReply:
		return fmt.Sprintf("JOIN_REPLY{from=%v grp=%v seq=%d entries=%d}", p.Src, p.Group, p.Seq, len(p.Replies))
	case TypeTreeJoin:
		return fmt.Sprintf("TREE_JOIN{from=%v grp=%v seq=%d entries=%d}", p.Src, p.Group, p.Seq, len(p.Replies))
	case TypeData:
		return fmt.Sprintf("DATA{src=%v grp=%v seq=%d}", p.Src, p.Group, p.Seq)
	default:
		return fmt.Sprintf("%v{src=%v seq=%d}", p.Kind, p.Src, p.Seq)
	}
}

// FrameKind discriminates MAC-layer frames.
type FrameKind uint8

// MAC frame kinds. Broadcast data uses FrameData with Dst == Broadcast; the
// RTS/CTS/ACK kinds exist only for the unicast MAC mode.
const (
	FrameData FrameKind = iota + 1
	FrameRTS
	FrameCTS
	FrameACK
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameACK:
		return "ACK"
	default:
		return fmt.Sprintf("FRAME(%d)", uint8(k))
	}
}

// Control frame sizes in bytes (802.11).
const (
	RTSBytes = 20
	CTSBytes = 14
	ACKBytes = 14
)

// Frame is a MAC-layer frame.
type Frame struct {
	Kind FrameKind
	// Src is the transmitting node; Dst is Broadcast for link-layer
	// broadcast.
	Src, Dst NodeID
	// Payload is the network packet for FrameData; nil for control frames.
	Payload *Packet
	// DurationNAV is the network-allocation-vector value carried by
	// RTS/CTS for virtual carrier sense.
	DurationNAV time.Duration
}

// SizeBytes returns the on-air size of the frame including MAC framing.
func (f *Frame) SizeBytes() int {
	switch f.Kind {
	case FrameRTS:
		return RTSBytes
	case FrameCTS:
		return CTSBytes
	case FrameACK:
		return ACKBytes
	default:
		if f.Payload == nil {
			return MACHeaderBytes
		}
		return MACHeaderBytes + f.Payload.SizeBytes()
	}
}
