package packet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeIDString(t *testing.T) {
	if got := NodeID(5).String(); got != "n5" {
		t.Fatalf("NodeID(5) = %q", got)
	}
	if got := Broadcast.String(); got != "*" {
		t.Fatalf("Broadcast = %q", got)
	}
}

func TestPacketSizeBytes(t *testing.T) {
	tests := []struct {
		name string
		p    Packet
		want int
	}{
		{"data 512B", Packet{Kind: TypeData, PayloadBytes: 512}, NetHeaderBytes + 512 + 12},
		{"join query", Packet{Kind: TypeJoinQuery}, NetHeaderBytes + 16},
		{"join reply 3 entries", Packet{Kind: TypeJoinReply, Replies: make([]ReplyEntry, 3)}, NetHeaderBytes + 8 + 12},
		{"probe padded", Packet{Kind: TypeProbe, PayloadBytes: 74}, NetHeaderBytes + 74 + 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.SizeBytes(); got != tt.want {
				t.Fatalf("SizeBytes = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFrameSizeBytes(t *testing.T) {
	data := &Packet{Kind: TypeData, PayloadBytes: 512}
	tests := []struct {
		name string
		f    Frame
		want int
	}{
		{"rts", Frame{Kind: FrameRTS}, RTSBytes},
		{"cts", Frame{Kind: FrameCTS}, CTSBytes},
		{"ack", Frame{Kind: FrameACK}, ACKBytes},
		{"data", Frame{Kind: FrameData, Payload: data}, MACHeaderBytes + data.SizeBytes()},
		{"data nil payload", Frame{Kind: FrameData}, MACHeaderBytes},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.SizeBytes(); got != tt.want {
				t.Fatalf("SizeBytes = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{
		Kind:    TypeJoinReply,
		Src:     3,
		Replies: []ReplyEntry{{Source: 1, NextHop: 2}},
	}
	q := p.Clone()
	q.Replies[0].NextHop = 9
	q.Src = 7
	if p.Replies[0].NextHop != 2 {
		t.Fatal("Clone shares the Replies slice")
	}
	if p.Src != 3 {
		t.Fatal("Clone shares scalar state")
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := &Packet{
		Kind:         TypeJoinQuery,
		Src:          12,
		PrevHop:      7,
		Group:        2,
		Seq:          99,
		HopCount:     4,
		TTL:          28,
		Cost:         3.14159,
		PayloadBytes: 512,
		SentAt:       1234567 * time.Microsecond,
		TraceID:      0xdead00beef01,
		Replies:      []ReplyEntry{{Source: 1, NextHop: 2}, {Source: 3, NextHop: 4}},
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q.Kind != p.Kind || q.Src != p.Src || q.PrevHop != p.PrevHop || q.Group != p.Group ||
		q.Seq != p.Seq || q.HopCount != p.HopCount || q.TTL != p.TTL ||
		q.Cost != p.Cost || q.PayloadBytes != p.PayloadBytes || q.SentAt != p.SentAt ||
		q.TraceID != p.TraceID {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, *p)
	}
	if len(q.Replies) != 2 || q.Replies[0] != p.Replies[0] || q.Replies[1] != p.Replies[1] {
		t.Fatalf("replies mismatch: %v", q.Replies)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(kind uint8, src, prev, grp uint16, seq uint32, hops, ttl uint8, cost float64, payload uint16, nReplies uint8) bool {
		p := &Packet{
			Kind:         Type(kind),
			Src:          NodeID(src),
			PrevHop:      NodeID(prev),
			Group:        GroupID(grp),
			Seq:          seq,
			HopCount:     hops,
			TTL:          ttl,
			Cost:         cost,
			PayloadBytes: int(payload),
		}
		for i := 0; i < int(nReplies%8); i++ {
			p.Replies = append(p.Replies, ReplyEntry{Source: NodeID(i), NextHop: NodeID(i + 1)})
		}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var q Packet
		if err := q.UnmarshalBinary(data); err != nil {
			return false
		}
		if q.Cost != p.Cost && !(q.Cost != q.Cost && p.Cost != p.Cost) { // NaN-safe compare
			return false
		}
		if q.Kind != p.Kind || q.Src != p.Src || q.Seq != p.Seq || len(q.Replies) != len(p.Replies) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	p := &Packet{Kind: TypeData, Replies: []ReplyEntry{{1, 2}}}
	p.Kind = TypeJoinReply
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var q Packet
		if err := q.UnmarshalBinary(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestMarshalRejectsOversizedPayload(t *testing.T) {
	p := &Packet{Kind: TypeData, PayloadBytes: 1 << 20}
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("expected error for oversized payload")
	}
	p = &Packet{Kind: TypeData, PayloadBytes: -1}
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("expected error for negative payload")
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []struct {
		typ  Type
		want string
	}{
		{TypeData, "DATA"},
		{TypeJoinQuery, "JOIN_QUERY"},
		{TypeJoinReply, "JOIN_REPLY"},
		{TypeProbe, "PROBE"},
		{TypeProbePairSmall, "PAIR_SMALL"},
		{TypeProbePairLarge, "PAIR_LARGE"},
		{Type(99), "TYPE(99)"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Fatalf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
	for _, tt := range []struct {
		kind FrameKind
		want string
	}{
		{FrameData, "DATA"}, {FrameRTS, "RTS"}, {FrameCTS, "CTS"}, {FrameACK, "ACK"}, {FrameKind(9), "FRAME(9)"},
	} {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("FrameKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
