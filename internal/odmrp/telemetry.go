package odmrp

import "meshcast/internal/telemetry"

// Telemetry holds the ODMRP layer's run-wide instruments, shared by every
// router on the run. The zero value is fully disabled.
type Telemetry struct {
	// QueriesOriginated, QueriesForwarded, and DupQueriesForwarded count
	// JOIN QUERY activity; RepliesSent and ReplyRetransmits count JOIN
	// REPLY activity.
	QueriesOriginated, QueriesForwarded, DupQueriesForwarded *telemetry.Counter
	RepliesSent, ReplyRetransmits                            *telemetry.Counter
	// DataOriginated, DataForwarded, and DataDelivered count data-plane
	// activity; DupSuppressed counts data copies dropped by the duplicate
	// window.
	DataOriginated, DataForwarded, DataDelivered, DupSuppressed *telemetry.Counter
	// ControlBytes counts ODMRP control bytes handed to the MAC.
	ControlBytes *telemetry.Counter
}

// NewTelemetry returns ODMRP instruments registered under the "odmrp."
// prefix. A nil registry yields the disabled zero value.
func NewTelemetry(reg *telemetry.Registry) Telemetry {
	return Telemetry{
		QueriesOriginated:   reg.Counter("odmrp.queries_originated"),
		QueriesForwarded:    reg.Counter("odmrp.queries_forwarded"),
		DupQueriesForwarded: reg.Counter("odmrp.dup_queries_forwarded"),
		RepliesSent:         reg.Counter("odmrp.replies_sent"),
		ReplyRetransmits:    reg.Counter("odmrp.reply_retransmits"),
		DataOriginated:      reg.Counter("odmrp.data_originated"),
		DataForwarded:       reg.Counter("odmrp.data_forwarded"),
		DataDelivered:       reg.Counter("odmrp.data_delivered"),
		DupSuppressed:       reg.Counter("odmrp.dup_suppressed"),
		ControlBytes:        reg.Counter("odmrp.control_bytes"),
	}
}

// RoundCount returns the number of live query-round entries — the router's
// main soft-state table, exposed for table-size gauges.
func (r *Router) RoundCount() int { return len(r.rounds) }

// DupWindowCount returns the number of per-(group, source) duplicate
// windows held.
func (r *Router) DupWindowCount() int { return len(r.dups) }
