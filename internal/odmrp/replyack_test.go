package odmrp

import (
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
)

// lossyChain builds S(0) — F(1) — M(2) where F's reply broadcasts can be
// suppressed selectively, to exercise the passive-ack machinery.
func lossyChain(t *testing.T, params Params) (*fakeNet, *Router, *Router, *Router, *bool) {
	t.Helper()
	f := newFakeNet(42)
	s := f.addNode(0, metric.SPP, params)
	fw := f.addNode(1, metric.SPP, params)
	m := f.addNode(2, metric.SPP, params)
	f.connect(0, 1, time.Millisecond, 0.9, 0.9)
	f.connect(1, 2, time.Millisecond, 0.9, 0.9)

	// Wrap the forwarder's Send so its JOIN REPLY transmissions can be
	// dropped while a flag is set.
	dropReplies := false
	inner := fw.Send
	fw.Send = func(p *packet.Packet) bool {
		if dropReplies && p.Kind == packet.TypeJoinReply {
			return true // "sent" but lost on the air
		}
		return inner(p)
	}
	return f, s, fw, m, &dropReplies
}

func TestReplyRetransmissionRecoversBranch(t *testing.T) {
	params := DefaultParams()
	params.ReplyRetries = 3
	params.ReplyAckTimeout = 10 * time.Millisecond
	f, s, fw, m, dropReplies := lossyChain(t, params)
	m.JoinGroup(1)

	// Drop the forwarder's first reply transmissions; the member's
	// passive-ack timer must kick in and retransmit its own reply —
	// and once we stop dropping, the forwarder's retransmitted reply
	// establishes the branch.
	*dropReplies = true
	f.engine.Schedule(0, func() { s.StartSource(1) })
	// Member replies at ~δ(30ms)+jitter; first ack timeout ~10ms later.
	f.engine.Run(100 * time.Millisecond)
	// Member sent its reply but never overheard the forwarder's: it should
	// be retransmitting.
	if m.Stats.ReplyRetransmits == 0 {
		t.Fatal("member did not retransmit unacknowledged reply")
	}
	*dropReplies = false
	f.engine.Run(400 * time.Millisecond)
	if !fw.IsForwarder(1) {
		t.Fatal("branch not recovered after reply retransmission")
	}
}

func TestReplyAckConfirmedNoRetransmit(t *testing.T) {
	params := DefaultParams()
	params.ReplyRetries = 3
	params.ReplyAckTimeout = 10 * time.Millisecond
	f, s, fw, m, _ := lossyChain(t, params)
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if !fw.IsForwarder(1) {
		t.Fatal("branch not built")
	}
	if m.Stats.ReplyRetransmits != 0 {
		t.Fatalf("member retransmitted %d times despite overhearing the ack", m.Stats.ReplyRetransmits)
	}
}

func TestReplyRetriesDisabledByDefault(t *testing.T) {
	params := DefaultParams()
	if params.ReplyRetries != 0 {
		t.Fatal("paper behavior must be the default: no reply retransmission")
	}
	f, s, _, m, dropReplies := lossyChain(t, params)
	m.JoinGroup(1)
	*dropReplies = true
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(500 * time.Millisecond)
	if m.Stats.ReplyRetransmits != 0 {
		t.Fatal("retransmissions occurred with ReplyRetries = 0")
	}
}

func TestReplyRetransmitBounded(t *testing.T) {
	params := DefaultParams()
	params.ReplyRetries = 2
	params.ReplyAckTimeout = 5 * time.Millisecond
	f, s, _, m, dropReplies := lossyChain(t, params)
	m.JoinGroup(1)
	*dropReplies = true // forwarder never acks
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(200 * time.Millisecond)
	if m.Stats.ReplyRetransmits > 2 {
		t.Fatalf("retransmits = %d, want <= 2 per round", m.Stats.ReplyRetransmits)
	}
}
