// Package odmrp implements the On-Demand Multicast Routing Protocol and the
// paper's high-throughput extensions (§3).
//
// ODMRP builds a per-group forwarding mesh: each source periodically floods
// a JOIN QUERY; group members answer with a JOIN REPLY that travels hop by
// hop back toward the source, setting the forwarding-group (FG) flag at each
// relay. Data packets are link-layer broadcast and rebroadcast by FG nodes.
//
// The original protocol effectively selects shortest-delay (min-hop) paths:
// members reply to the first query copy they hear. The modified protocol of
// the paper makes three changes:
//
//  1. Every node maintains a NEIGHBOR TABLE of link costs measured by
//     probes (package linkquality) and accumulates the cost of the traveled
//     path in the JOIN QUERY using a pluggable routing metric
//     (package metric).
//  2. A member waits δ before replying, collects duplicate queries, and
//     replies along the best-cost path seen.
//  3. Intermediate nodes re-forward duplicate queries that improve on the
//     best cost seen so far, but only within α < δ of the first copy,
//     bounding overhead while adding path diversity.
package odmrp

import (
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
	"meshcast/internal/trace"
)

// Params configures the protocol.
type Params struct {
	// RefreshInterval is the period between JOIN QUERY floods of an active
	// source.
	RefreshInterval time.Duration
	// FGTimeout is how long a forwarding-group flag stays set after the
	// last JOIN REPLY refreshed it. ODMRP traditionally uses a small
	// multiple of the refresh interval.
	FGTimeout time.Duration
	// MemberDelta (δ) is how long a member accumulates duplicate JOIN
	// QUERY packets before replying along the best path. Zero selects the
	// original first-copy behavior.
	MemberDelta time.Duration
	// DupAlpha (α) is the window after the first copy of a query during
	// which improving duplicates are re-forwarded. Zero disables duplicate
	// forwarding (the original behavior).
	DupAlpha time.Duration
	// TTL bounds query propagation in hops.
	TTL uint8
	// QueryJitter is the maximum random delay added before rebroadcasting
	// a JOIN QUERY, decorrelating the flood.
	QueryJitter time.Duration
	// DataJitter is the maximum random delay added before rebroadcasting a
	// data packet at an FG node.
	DataJitter time.Duration
	// ReplyJitter is the maximum random delay before propagating a JOIN
	// REPLY.
	ReplyJitter time.Duration
	// ReplyRetries enables passive-acknowledgment JOIN REPLY
	// retransmission (an ODMRP robustness mechanism beyond the paper's
	// version): after sending a reply naming an upstream next hop, the
	// node expects to overhear that neighbor's own JOIN REPLY; if it does
	// not within ReplyAckTimeout, the reply is retransmitted up to this
	// many times. Zero (the default, and the paper's behavior) disables
	// retransmission.
	ReplyRetries int
	// ReplyAckTimeout is the passive-acknowledgment wait.
	ReplyAckTimeout time.Duration
}

// DefaultParams returns the configuration used by the paper's simulations:
// δ = 30 ms, α = 20 ms, refresh every 3 s, FG timeout 3 × refresh.
func DefaultParams() Params {
	return Params{
		RefreshInterval: 3 * time.Second,
		FGTimeout:       9 * time.Second,
		MemberDelta:     30 * time.Millisecond,
		DupAlpha:        20 * time.Millisecond,
		TTL:             32,
		QueryJitter:     4 * time.Millisecond,
		DataJitter:      time.Millisecond,
		ReplyJitter:     2 * time.Millisecond,
		ReplyAckTimeout: 60 * time.Millisecond,
	}
}

// OriginalParams returns DefaultParams with the paper's modifications
// switched off: members reply to the first JOIN QUERY immediately and
// duplicates are never re-forwarded. Combined with the MinHop metric this is
// the original ODMRP baseline.
func OriginalParams() Params {
	p := DefaultParams()
	p.MemberDelta = 0
	p.DupAlpha = 0
	return p
}

// Stats counts protocol activity at one node.
type Stats struct {
	QueriesOriginated   uint64
	QueriesForwarded    uint64
	DupQueriesForwarded uint64
	RepliesSent         uint64
	ReplyRetransmits    uint64
	DataOriginated      uint64
	DataForwarded       uint64
	DataDelivered       uint64
	DataDuplicates      uint64
	ControlBytesSent    uint64
}

// Edge is a directed link used by delivered or forwarded data, for tree
// analysis (paper Figure 5). It aliases the protocol-agnostic edge type.
type Edge = multicast.Edge

// groupSource keys per-(group, source) state.
type groupSource struct {
	group packet.GroupID
	src   packet.NodeID
}

// queryRound holds the state of the latest JOIN QUERY flood round seen for
// one (group, source).
type queryRound struct {
	seq       uint32
	firstSeen time.Duration
	// firstUpstream is the previous hop of the first copy received; the
	// fallback path when no copy has a usable (fully measured) cost yet.
	firstUpstream packet.NodeID
	// bestCost / bestUpstream track the best path offered by any copy of
	// this round's query (used by members when replying and by FG nodes
	// when propagating replies).
	bestCost     float64
	bestUpstream packet.NodeID
	bestHops     uint8
	// bestForwarded is the best cost this node has re-broadcast for this
	// round; duplicates must beat it to be forwarded again.
	bestForwarded float64
	forwardedAny  bool
	// replyScheduled marks that a member reply timer is pending.
	replyScheduled bool
	// replied marks that a JOIN REPLY (member or FG propagation) has been
	// sent for this round already.
	replied bool
}

// Router is one node's ODMRP instance.
type Router struct {
	// Send broadcasts a packet via the node's MAC; reports acceptance.
	Send func(p *packet.Packet) bool
	// OnDeliver is called for every data packet delivered to this node as
	// a group member (first copy only).
	OnDeliver func(p *packet.Packet, from packet.NodeID)
	// Tracer, when non-nil, receives protocol events (query/reply/data).
	Tracer *trace.Tracer
	// Stats accumulates protocol counters.
	Stats Stats
	// Telem holds the run-wide telemetry instruments (zero value disabled).
	Telem Telemetry

	id     packet.NodeID
	engine *sim.Engine
	rng    *sim.RNG
	params Params
	pm     metric.PathMetric
	table  *linkquality.Table

	members map[packet.GroupID]bool
	sources map[packet.GroupID]*sim.Ticker
	srcSeq  map[packet.GroupID]uint32
	dataSeq map[packet.GroupID]uint32

	rounds  map[groupSource]*queryRound
	fgUntil map[packet.GroupID]time.Duration
	dups    map[groupSource]*multicast.DupWindow
	pending map[groupSource]*pendingReply

	// edgeUse counts data packets carried per directed link into this node
	// (delivered or forwarded), for tree analysis.
	edgeUse map[Edge]uint64
}

// New creates a router for node id using path metric pm and neighbor table
// table. For the original ODMRP baseline pass metric.MustNew(metric.MinHop)
// and OriginalParams().
func New(engine *sim.Engine, id packet.NodeID, pm metric.PathMetric, table *linkquality.Table, params Params) *Router {
	return &Router{
		id:      id,
		engine:  engine,
		rng:     engine.RNG().Split(),
		params:  params,
		pm:      pm,
		table:   table,
		members: make(map[packet.GroupID]bool),
		sources: make(map[packet.GroupID]*sim.Ticker),
		srcSeq:  make(map[packet.GroupID]uint32),
		dataSeq: make(map[packet.GroupID]uint32),
		rounds:  make(map[groupSource]*queryRound),
		fgUntil: make(map[packet.GroupID]time.Duration),
		dups:    make(map[groupSource]*multicast.DupWindow),
		pending: make(map[groupSource]*pendingReply),
		edgeUse: make(map[Edge]uint64),
	}
}

// ID returns the node ID.
func (r *Router) ID() packet.NodeID { return r.id }

// Reset purges all of the router's soft state, modeling a node crash: query
// rounds, forwarding-group flags, duplicate windows, pending reply-ack
// supervision, and active source floods are all discarded. Group membership
// survives (it is configuration, reloaded on restart), and so do the source
// sequence counters (a restarted source must not reuse sequence numbers its
// receivers' duplicate windows have already seen — real implementations
// derive them from stable storage or a clock). A source stopped here must be
// re-registered via StartSource after restart.
func (r *Router) Reset() {
	for g, t := range r.sources {
		t.Stop()
		delete(r.sources, g)
	}
	for key, p := range r.pending {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(r.pending, key)
	}
	r.rounds = make(map[groupSource]*queryRound)
	r.fgUntil = make(map[packet.GroupID]time.Duration)
	r.dups = make(map[groupSource]*multicast.DupWindow)
}

// Metric returns the router's path metric.
func (r *Router) Metric() metric.PathMetric { return r.pm }

// JoinGroup registers this node as a receiver member of group.
func (r *Router) JoinGroup(group packet.GroupID) { r.members[group] = true }

// LeaveGroup removes receiver membership.
func (r *Router) LeaveGroup(group packet.GroupID) { delete(r.members, group) }

// IsMember reports receiver membership.
func (r *Router) IsMember(group packet.GroupID) bool { return r.members[group] }

// IsForwarder reports whether the FG flag for group is currently set.
func (r *Router) IsForwarder(group packet.GroupID) bool {
	return r.engine.Now() < r.fgUntil[group]
}

// EdgeUse returns a copy of the per-link data usage counters.
func (r *Router) EdgeUse() map[Edge]uint64 {
	out := make(map[Edge]uint64, len(r.edgeUse))
	for e, n := range r.edgeUse {
		out[e] = n
	}
	return out
}

// StartSource begins periodic JOIN QUERY floods for group, making this node
// an active multicast source. The first flood is sent immediately.
func (r *Router) StartSource(group packet.GroupID) {
	if _, ok := r.sources[group]; ok {
		return
	}
	r.floodQuery(group)
	r.sources[group] = sim.NewTicker(r.engine, r.params.RefreshInterval, r.params.RefreshInterval/10, r.rng,
		func() { r.floodQuery(group) })
}

// StopSource halts the query floods for group.
func (r *Router) StopSource(group packet.GroupID) {
	if t, ok := r.sources[group]; ok {
		t.Stop()
		delete(r.sources, group)
	}
}

func (r *Router) floodQuery(group packet.GroupID) {
	seq := r.srcSeq[group]
	r.srcSeq[group] = seq + 1
	q := &packet.Packet{
		Kind:    packet.TypeJoinQuery,
		Src:     r.id,
		PrevHop: r.id,
		Group:   group,
		Seq:     seq,
		TTL:     r.params.TTL,
		Cost:    r.pm.Initial(),
		SentAt:  r.engine.Now(),
		TraceID: r.Tracer.NewTraceID(r.id),
	}
	if r.send(q) {
		r.Stats.QueriesOriginated++
		r.Telem.QueriesOriginated.Inc()
		r.Tracer.Emit(r.id, trace.CatQuery, "originate grp=%v seq=%d", group, seq)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, q)
	}
}

// SendData multicasts one application payload of payloadBytes to group.
// The node must be a registered source (StartSource) for routes to exist,
// but SendData does not enforce that.
func (r *Router) SendData(group packet.GroupID, payloadBytes int) {
	seq := r.dataSeq[group]
	r.dataSeq[group] = seq + 1
	p := &packet.Packet{
		Kind:         packet.TypeData,
		Src:          r.id,
		PrevHop:      r.id,
		Group:        group,
		Seq:          seq,
		TTL:          r.params.TTL,
		PayloadBytes: payloadBytes,
		SentAt:       r.engine.Now(),
		TraceID:      r.Tracer.NewTraceID(r.id),
	}
	// Mark our own packet as seen so an echoed copy is not re-forwarded.
	r.dupFor(groupSource{group, r.id}).Seen(seq)
	if r.Send != nil && r.Send(p) {
		r.Stats.DataOriginated++
		r.Telem.DataOriginated.Inc()
		r.Tracer.Emit(r.id, trace.CatData, "originate grp=%v seq=%d", group, seq)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, p)
	}
}

func (r *Router) dupFor(key groupSource) *multicast.DupWindow {
	w, ok := r.dups[key]
	if !ok {
		w = &multicast.DupWindow{}
		r.dups[key] = w
	}
	return w
}

// send broadcasts control packets and accounts their bytes.
func (r *Router) send(p *packet.Packet) bool {
	if r.Send == nil {
		return false
	}
	if !r.Send(p) {
		return false
	}
	r.Stats.ControlBytesSent += uint64(p.SizeBytes())
	r.Telem.ControlBytes.Add(uint64(p.SizeBytes()))
	return true
}

// Handle processes a received ODMRP packet. It reports whether the packet
// kind belonged to ODMRP.
func (r *Router) Handle(p *packet.Packet, from packet.NodeID) bool {
	switch p.Kind {
	case packet.TypeJoinQuery:
		r.onQuery(p, from)
	case packet.TypeJoinReply:
		r.onReply(p, from)
	case packet.TypeData:
		r.onData(p, from)
	default:
		return false
	}
	return true
}

func (r *Router) onQuery(p *packet.Packet, from packet.NodeID) {
	if p.Src == r.id {
		return // our own flood echoed back
	}
	now := r.engine.Now()
	key := groupSource{p.Group, p.Src}

	// Accumulate the cost of the link we just traversed (from → us), as
	// measured by our NEIGHBOR TABLE.
	linkCost := r.pm.LinkCost(r.table.Estimate(uint16(from), now))
	newCost := r.pm.Accumulate(p.Cost, linkCost)
	hops := p.HopCount + 1

	round, ok := r.rounds[key]
	stale := ok && p.Seq < round.seq
	if stale {
		return
	}
	first := !ok || p.Seq > round.seq
	if first {
		round = &queryRound{
			seq:           p.Seq,
			firstSeen:     now,
			firstUpstream: from,
			bestCost:      r.pm.Worst(),
			bestForwarded: r.pm.Worst(),
		}
		r.rounds[key] = round
	}

	// Track the best candidate path for this round.
	if r.pm.Better(newCost, round.bestCost) {
		round.bestCost = newCost
		round.bestUpstream = from
		round.bestHops = hops
	}

	// Member behavior.
	if r.members[p.Group] {
		if r.params.MemberDelta <= 0 {
			// Original ODMRP: reply immediately to the first copy.
			if first {
				r.sendReply(p.Group, p.Src, p.Seq, from)
				round.replied = true
			}
		} else if !round.replyScheduled {
			round.replyScheduled = true
			r.engine.Schedule(r.params.MemberDelta, func() {
				cur := r.rounds[key]
				if cur == nil || cur.seq != p.Seq || cur.replied {
					return
				}
				cur.replied = true
				r.sendReply(p.Group, p.Src, p.Seq, r.upstreamOf(cur))
			})
		}
	}

	// Forwarding behavior: rebroadcast the first copy; within α, also
	// rebroadcast duplicates that improve on the best cost forwarded so far.
	if p.TTL <= 1 {
		return
	}
	forward := false
	if !round.forwardedAny {
		forward = true
	} else if r.params.DupAlpha > 0 &&
		now <= round.firstSeen+r.params.DupAlpha &&
		r.pm.Better(newCost, round.bestForwarded) {
		forward = true
		r.Stats.DupQueriesForwarded++
		r.Telem.DupQueriesForwarded.Inc()
	}
	if !forward {
		return
	}
	wasFirst := !round.forwardedAny
	round.forwardedAny = true
	round.bestForwarded = newCost

	fwd := p.Clone()
	fwd.PrevHop = r.id
	fwd.Cost = newCost
	fwd.HopCount = hops
	fwd.TTL = p.TTL - 1
	r.jitterSend(fwd, r.params.QueryJitter, func() {
		r.Tracer.Span(trace.SpanForward, r.id, from, fwd)
		if wasFirst {
			r.Stats.QueriesForwarded++
			r.Telem.QueriesForwarded.Inc()
			r.Tracer.Emit(r.id, trace.CatQuery, "forward grp=%v src=%v seq=%d cost=%.4g",
				fwd.Group, fwd.Src, fwd.Seq, fwd.Cost)
		} else {
			r.Tracer.Emit(r.id, trace.CatQuery, "forward-dup grp=%v src=%v seq=%d cost=%.4g",
				fwd.Group, fwd.Src, fwd.Seq, fwd.Cost)
		}
	})
}

// sendReply broadcasts a JOIN REPLY naming nextHop as the upstream relay
// toward src for the given query round.
func (r *Router) sendReply(group packet.GroupID, src packet.NodeID, seq uint32, nextHop packet.NodeID) {
	if nextHop == r.id {
		return
	}
	reply := &packet.Packet{
		Kind:    packet.TypeJoinReply,
		Src:     r.id,
		PrevHop: r.id,
		Group:   group,
		Seq:     seq,
		SentAt:  r.engine.Now(),
		Replies: []packet.ReplyEntry{{Source: src, NextHop: nextHop}},
		TraceID: r.Tracer.NewTraceID(r.id),
	}
	r.jitterSend(reply, r.params.ReplyJitter, func() {
		r.Stats.RepliesSent++
		r.Telem.RepliesSent.Inc()
		r.Tracer.Emit(r.id, trace.CatReply, "reply grp=%v src=%v seq=%d nexthop=%v", group, src, seq, nextHop)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, reply)
		r.armReplyAck(group, src, seq, nextHop, reply)
	})
}

// pendingReply tracks a JOIN REPLY awaiting passive acknowledgment.
type pendingReply struct {
	seq      uint32
	nextHop  packet.NodeID
	attempts int
	timer    *sim.Event
	pkt      *packet.Packet
}

// armReplyAck schedules passive-ack supervision of a sent reply. The
// confirmation is overhearing nextHop's own JOIN REPLY for the same source
// at the same (or newer) round.
func (r *Router) armReplyAck(group packet.GroupID, src packet.NodeID, seq uint32, nextHop packet.NodeID, pkt *packet.Packet) {
	if r.params.ReplyRetries <= 0 || nextHop == src {
		// A reply whose next hop is the source itself has no downstream
		// reply to overhear; the source's data flow is the implicit ack.
		return
	}
	key := groupSource{group, src}
	p := r.pending[key]
	if p == nil || p.seq != seq {
		if p != nil && p.timer != nil {
			p.timer.Stop()
		}
		p = &pendingReply{seq: seq, nextHop: nextHop, pkt: pkt}
		r.pending[key] = p
	}
	p.timer = r.engine.Schedule(r.params.ReplyAckTimeout, func() { r.replyAckTimeout(key, p) })
}

func (r *Router) replyAckTimeout(key groupSource, p *pendingReply) {
	if r.pending[key] != p {
		return // superseded
	}
	if p.attempts >= r.params.ReplyRetries {
		delete(r.pending, key)
		return
	}
	p.attempts++
	if r.Send != nil && r.Send(p.pkt.Clone()) {
		r.Stats.ReplyRetransmits++
		r.Telem.ReplyRetransmits.Inc()
		r.Stats.ControlBytesSent += uint64(p.pkt.SizeBytes())
		r.Telem.ControlBytes.Add(uint64(p.pkt.SizeBytes()))
		r.Tracer.Emit(r.id, trace.CatReply, "reply-retx grp=%v src=%v seq=%d attempt=%d",
			key.group, key.src, p.seq, p.attempts)
	}
	p.timer = r.engine.Schedule(r.params.ReplyAckTimeout, func() { r.replyAckTimeout(key, p) })
}

// confirmReplyAck cancels supervision when the expected upstream reply is
// overheard.
func (r *Router) confirmReplyAck(group packet.GroupID, src packet.NodeID, seq uint32, from packet.NodeID) {
	key := groupSource{group, src}
	p := r.pending[key]
	if p == nil || from != p.nextHop || seq < p.seq {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	delete(r.pending, key)
}

// upstreamOf returns the next hop toward the source for a query round: the
// best-cost upstream when a usable (fully measured) path was seen, otherwise
// the first copy's upstream (original ODMRP behavior), which keeps routes
// bootstrapping while probes warm up.
func (r *Router) upstreamOf(round *queryRound) packet.NodeID {
	if r.pm.Usable(round.bestCost) {
		return round.bestUpstream
	}
	return round.firstUpstream
}

func (r *Router) onReply(p *packet.Packet, from packet.NodeID) {
	for _, entry := range p.Replies {
		// Any overheard reply from our chosen upstream confirms it took
		// over propagation (passive acknowledgment).
		r.confirmReplyAck(p.Group, entry.Source, p.Seq, from)
		if entry.NextHop != r.id {
			continue
		}
		if entry.Source == r.id {
			// The reply reached the source: the branch is complete.
			continue
		}
		// We are on the path: set/refresh the forwarding-group flag.
		until := r.engine.Now() + r.params.FGTimeout
		if until > r.fgUntil[p.Group] {
			if r.engine.Now() >= r.fgUntil[p.Group] {
				r.Tracer.Emit(r.id, trace.CatReply, "fg-set grp=%v (from %v)", p.Group, from)
			}
			r.fgUntil[p.Group] = until
		}
		// Propagate our own JOIN REPLY one hop further toward the source,
		// once per query round.
		key := groupSource{p.Group, entry.Source}
		round := r.rounds[key]
		if round == nil || round.replied {
			continue
		}
		round.replied = true
		r.sendReply(p.Group, entry.Source, round.seq, r.upstreamOf(round))
	}
}

func (r *Router) onData(p *packet.Packet, from packet.NodeID) {
	if p.Src == r.id {
		return
	}
	key := groupSource{p.Group, p.Src}
	if r.dupFor(key).Seen(p.Seq) {
		r.Stats.DataDuplicates++
		r.Telem.DupSuppressed.Inc()
		r.Tracer.Span(trace.SpanDupSuppress, r.id, from, p)
		return
	}
	carried := false
	if r.members[p.Group] {
		r.Stats.DataDelivered++
		r.Telem.DataDelivered.Inc()
		carried = true
		r.Tracer.Emit(r.id, trace.CatData, "deliver grp=%v src=%v seq=%d from=%v", p.Group, p.Src, p.Seq, from)
		r.Tracer.Span(trace.SpanDeliver, r.id, from, p)
		if r.OnDeliver != nil {
			r.OnDeliver(p, from)
		}
	}
	if r.IsForwarder(p.Group) && p.TTL > 1 {
		fwd := p.Clone()
		fwd.PrevHop = r.id
		fwd.TTL = p.TTL - 1
		carried = true
		r.jitterSend(fwd, r.params.DataJitter, func() {
			r.Stats.DataForwarded++
			r.Telem.DataForwarded.Inc()
			r.Tracer.Emit(r.id, trace.CatData, "forward grp=%v src=%v seq=%d", fwd.Group, fwd.Src, fwd.Seq)
			r.Tracer.Span(trace.SpanForward, r.id, from, fwd)
		})
	}
	if carried {
		r.edgeUse[Edge{From: from, To: r.id}]++
	}
}

// jitterSend broadcasts p after a uniform random delay in [0, jitter),
// invoking onSent if the MAC accepted it.
func (r *Router) jitterSend(p *packet.Packet, jitter time.Duration, onSent func()) {
	send := func() {
		ok := r.Send != nil && r.Send(p)
		if !ok {
			return
		}
		if p.Kind != packet.TypeData {
			r.Stats.ControlBytesSent += uint64(p.SizeBytes())
		}
		if onSent != nil {
			onSent()
		}
	}
	if jitter <= 0 {
		send()
		return
	}
	d := time.Duration(r.rng.Float64() * float64(jitter))
	r.engine.Schedule(d, send)
}
