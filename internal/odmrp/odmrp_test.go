package odmrp

import (
	"testing"
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

// fakeNet is a deterministic lossless network with per-link delivery delays,
// letting protocol tests control which JOIN QUERY copy arrives first without
// PHY/MAC noise.
type fakeNet struct {
	engine  *sim.Engine
	routers map[packet.NodeID]*Router
	tables  map[packet.NodeID]*linkquality.Table
	delays  map[Edge]time.Duration
}

func newFakeNet(seed uint64) *fakeNet {
	return &fakeNet{
		engine:  sim.NewEngine(seed),
		routers: make(map[packet.NodeID]*Router),
		tables:  make(map[packet.NodeID]*linkquality.Table),
		delays:  make(map[Edge]time.Duration),
	}
}

// addNode creates a router with the given metric and params.
func (f *fakeNet) addNode(id packet.NodeID, kind metric.Kind, params Params) *Router {
	table := linkquality.NewTable(512, 10, 0)
	r := New(f.engine, id, metric.MustNew(kind), table, params)
	f.routers[id] = r
	f.tables[id] = table
	r.Send = func(p *packet.Packet) bool {
		for edge, delay := range f.delays {
			if edge.From != id {
				continue
			}
			to := f.routers[edge.To]
			if to == nil {
				continue
			}
			c := p.Clone()
			f.engine.Schedule(delay, func() { to.Handle(c, id) })
		}
		return true
	}
	return r
}

// connect links a and b bidirectionally with the given one-way delay and
// forward delivery probabilities recorded in each receiver's neighbor table.
func (f *fakeNet) connect(a, b packet.NodeID, delay time.Duration, dfAB, dfBA float64) {
	f.delays[Edge{From: a, To: b}] = delay
	f.delays[Edge{From: b, To: a}] = delay
	f.tables[b].SetStatic(uint16(a), metric.LinkEstimate{
		DeliveryProb: dfAB, PairDelaySeconds: 0.002 / dfAB, BandwidthBps: 2e6 * dfAB, PacketBytes: 512,
	})
	f.tables[a].SetStatic(uint16(b), metric.LinkEstimate{
		DeliveryProb: dfBA, PairDelaySeconds: 0.002 / dfBA, BandwidthBps: 2e6 * dfBA, PacketBytes: 512,
	})
}

func TestDupWindow(t *testing.T) {
	var w multicast.DupWindow
	if w.Seen(5) {
		t.Fatal("first packet reported as duplicate")
	}
	if !w.Seen(5) {
		t.Fatal("repeat not detected")
	}
	if w.Seen(6) || w.Seen(4) {
		t.Fatal("fresh nearby seqs reported as duplicates")
	}
	if !w.Seen(4) {
		t.Fatal("repeat of reordered seq not detected")
	}
	if w.Seen(100) {
		t.Fatal("big jump forward reported as duplicate")
	}
	if !w.Seen(5) {
		t.Fatal("seq far behind the window must be treated as duplicate")
	}
	if w.Seen(99) {
		t.Fatal("seq just inside the window reported as duplicate")
	}
	if !w.Seen(99) {
		t.Fatal("repeat inside window not detected")
	}
}

func TestDupWindowShiftBeyond64(t *testing.T) {
	var w multicast.DupWindow
	w.Seen(0)
	if w.Seen(64) {
		t.Fatal("seq 64 is new")
	}
	// seq 0 is now exactly 64 behind: outside the window, counts duplicate.
	if !w.Seen(0) {
		t.Fatal("seq aged out of window must count as duplicate")
	}
	if w.Seen(63) {
		t.Fatal("seq 63 is inside the window and unseen")
	}
}

// chain builds S(0) — F(1) — M(2) and runs one query round.
func chain(t *testing.T, kind metric.Kind, params Params) (*fakeNet, *Router, *Router, *Router) {
	t.Helper()
	f := newFakeNet(1)
	s := f.addNode(0, kind, params)
	fw := f.addNode(1, kind, params)
	m := f.addNode(2, kind, params)
	f.connect(0, 1, time.Millisecond, 0.9, 0.9)
	f.connect(1, 2, time.Millisecond, 0.9, 0.9)
	return f, s, fw, m
}

func TestTreeFormationChain(t *testing.T) {
	for _, kind := range metric.All() {
		t.Run(kind.String(), func(t *testing.T) {
			params := DefaultParams()
			if kind == metric.MinHop {
				params = OriginalParams()
			}
			f, s, fw, m := chain(t, kind, params)
			m.JoinGroup(1)
			f.engine.Schedule(0, func() { s.StartSource(1) })
			f.engine.Run(time.Second)
			if !fw.IsForwarder(1) {
				t.Fatal("middle node did not acquire the FG flag")
			}
			if m.IsForwarder(1) {
				t.Fatal("leaf member should not be a forwarder")
			}
			delivered := 0
			m.OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
			f.engine.Schedule(0, func() { s.SendData(1, 512) })
			f.engine.Run(2 * time.Second)
			if delivered != 1 {
				t.Fatalf("delivered = %d, want 1", delivered)
			}
			if fw.Stats.DataForwarded != 1 {
				t.Fatalf("forwarder forwarded %d, want 1", fw.Stats.DataForwarded)
			}
		})
	}
}

func TestDataDuplicateSuppression(t *testing.T) {
	// Diamond S(0) — {A(1), B(2)} — M(3): if both relays hold the FG flag,
	// M receives two copies but delivers once.
	f := newFakeNet(2)
	params := DefaultParams()
	s := f.addNode(0, metric.SPP, params)
	a := f.addNode(1, metric.SPP, params)
	b := f.addNode(2, metric.SPP, params)
	m := f.addNode(3, metric.SPP, params)
	f.connect(0, 1, time.Millisecond, 0.9, 0.9)
	f.connect(0, 2, time.Millisecond, 0.9, 0.9)
	f.connect(1, 3, time.Millisecond, 0.9, 0.9)
	f.connect(2, 3, time.Millisecond, 0.9, 0.9)
	m.JoinGroup(1)
	// Force both relays into the forwarding group.
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	a.fgUntil[1] = f.engine.Now() + time.Hour
	b.fgUntil[1] = f.engine.Now() + time.Hour
	delivered := 0
	m.OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(2 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want exactly 1 (duplicate suppression)", delivered)
	}
	if m.Stats.DataDuplicates == 0 {
		t.Fatal("expected the second copy to be counted as duplicate")
	}
}

func TestBestPathSelectionSPP(t *testing.T) {
	// Diamond where the fast path (via B) is lossy and the slow path
	// (via A) is clean. With δ-wait the member must pick A.
	f := newFakeNet(3)
	params := DefaultParams()
	s := f.addNode(0, metric.SPP, params)
	a := f.addNode(1, metric.SPP, params)
	b := f.addNode(2, metric.SPP, params)
	m := f.addNode(3, metric.SPP, params)
	f.connect(0, 1, 2*time.Millisecond, 0.9, 0.9) // slow, clean
	f.connect(1, 3, 2*time.Millisecond, 0.9, 0.9)
	f.connect(0, 2, time.Millisecond, 0.5, 0.5) // fast, lossy
	f.connect(2, 3, time.Millisecond, 0.5, 0.5)
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if !a.IsForwarder(1) {
		t.Fatal("clean relay A should hold the FG flag under SPP")
	}
	if b.IsForwarder(1) {
		t.Fatal("lossy relay B should not hold the FG flag under SPP")
	}
}

func TestOriginalModePicksFirstCopy(t *testing.T) {
	// Same diamond, original ODMRP: the member replies to the first copy,
	// which travels the fast lossy path via B.
	f := newFakeNet(3)
	params := OriginalParams()
	s := f.addNode(0, metric.MinHop, params)
	a := f.addNode(1, metric.MinHop, params)
	b := f.addNode(2, metric.MinHop, params)
	m := f.addNode(3, metric.MinHop, params)
	f.connect(0, 1, 2*time.Millisecond, 0.9, 0.9)
	f.connect(1, 3, 2*time.Millisecond, 0.9, 0.9)
	f.connect(0, 2, time.Millisecond, 0.5, 0.5)
	f.connect(2, 3, time.Millisecond, 0.5, 0.5)
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if !b.IsForwarder(1) {
		t.Fatal("original ODMRP should route along the first (fast) copy via B")
	}
	if a.IsForwarder(1) {
		t.Fatal("original ODMRP should not select the slower relay A")
	}
}

func TestDuplicateQueryForwardingWithinAlpha(t *testing.T) {
	// F first hears the query along a lossy branch, then within α along a
	// clean branch: the improving duplicate must be re-forwarded.
	f := newFakeNet(4)
	params := DefaultParams()
	params.MemberDelta = 50 * time.Millisecond
	params.DupAlpha = 20 * time.Millisecond
	s := f.addNode(0, metric.SPP, params)
	f.addNode(1, metric.SPP, params)
	y := f.addNode(2, metric.SPP, params)
	fw := f.addNode(3, metric.SPP, params)
	m := f.addNode(4, metric.SPP, params)
	f.connect(0, 1, time.Millisecond, 1, 1)
	f.connect(0, 2, time.Millisecond, 1, 1)
	f.connect(1, 3, time.Millisecond, 0.5, 0.5)    // lossy, fast overall
	f.connect(2, 3, 10*time.Millisecond, 0.9, 0.9) // clean, 9ms later
	f.connect(3, 4, time.Millisecond, 0.9, 0.9)
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if fw.Stats.DupQueriesForwarded == 0 {
		t.Fatal("improving duplicate within α was not re-forwarded")
	}
	// The member should have learned the better cost via the duplicate.
	if !y.IsForwarder(1) {
		t.Fatal("clean relay Y should be on the selected path")
	}
}

func TestDuplicateQueryBeyondAlphaNotForwarded(t *testing.T) {
	f := newFakeNet(4)
	params := DefaultParams()
	params.MemberDelta = 100 * time.Millisecond
	params.DupAlpha = 5 * time.Millisecond
	s := f.addNode(0, metric.SPP, params)
	f.addNode(1, metric.SPP, params)
	f.addNode(2, metric.SPP, params)
	fw := f.addNode(3, metric.SPP, params)
	m := f.addNode(4, metric.SPP, params)
	f.connect(0, 1, time.Millisecond, 1, 1)
	f.connect(0, 2, time.Millisecond, 1, 1)
	f.connect(1, 3, time.Millisecond, 0.5, 0.5)
	f.connect(2, 3, 30*time.Millisecond, 0.9, 0.9) // arrives after α closes
	f.connect(3, 4, time.Millisecond, 0.9, 0.9)
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if fw.Stats.DupQueriesForwarded != 0 {
		t.Fatalf("duplicate beyond α forwarded %d times, want 0", fw.Stats.DupQueriesForwarded)
	}
}

func TestStaleQueryIgnored(t *testing.T) {
	f := newFakeNet(5)
	r := f.addNode(1, metric.SPP, DefaultParams())
	f.tables[1].SetStatic(0, metric.LinkEstimate{DeliveryProb: 0.9})
	sent := 0
	r.Send = func(*packet.Packet) bool { sent++; return true }
	newer := &packet.Packet{Kind: packet.TypeJoinQuery, Src: 0, Group: 1, Seq: 5, TTL: 8, Cost: 1}
	older := &packet.Packet{Kind: packet.TypeJoinQuery, Src: 0, Group: 1, Seq: 4, TTL: 8, Cost: 1}
	r.Handle(newer, 0)
	f.engine.Run(time.Second)
	sentAfterNewer := sent
	r.Handle(older, 0)
	f.engine.Run(2 * time.Second)
	if sent != sentAfterNewer {
		t.Fatal("stale (older seq) query was forwarded")
	}
}

func TestQueryTTLBoundsFlood(t *testing.T) {
	f := newFakeNet(6)
	params := DefaultParams()
	params.TTL = 3
	var routers []*Router
	for i := packet.NodeID(0); i < 5; i++ {
		routers = append(routers, f.addNode(i, metric.SPP, params))
	}
	for i := packet.NodeID(0); i < 4; i++ {
		f.connect(i, i+1, time.Millisecond, 0.9, 0.9)
	}
	routers[4].JoinGroup(1)
	f.engine.Schedule(0, func() { routers[0].StartSource(1) })
	f.engine.Run(time.Second)
	// TTL 3: the query reaches nodes 1, 2, 3; node 3 must not forward.
	if routers[3].Stats.QueriesForwarded != 0 {
		t.Fatal("node at TTL boundary forwarded the query")
	}
	if _, ok := routers[4].rounds[groupSource{1, 0}]; ok {
		t.Fatal("query escaped the TTL bound")
	}
}

func TestFGFlagExpires(t *testing.T) {
	f, s, fw, m := chain(t, metric.SPP, DefaultParams())
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if !fw.IsForwarder(1) {
		t.Fatal("FG flag not set")
	}
	// Stop refreshes; flag must lapse after FGTimeout.
	s.StopSource(1)
	f.engine.Run(f.engine.Now() + DefaultParams().FGTimeout + time.Second)
	if fw.IsForwarder(1) {
		t.Fatal("FG flag did not expire")
	}
	delivered := 0
	m.OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(f.engine.Now() + time.Second)
	if delivered != 0 {
		t.Fatalf("data delivered through an expired forwarding group")
	}
}

func TestWarmupFallsBackToFirstCopy(t *testing.T) {
	// No static estimates: every link is unmeasured, so metric costs are
	// unusable and the protocol must still bootstrap via first-copy paths.
	f := newFakeNet(7)
	params := DefaultParams()
	s := f.addNode(0, metric.SPP, params)
	fw := f.addNode(1, metric.SPP, params)
	m := f.addNode(2, metric.SPP, params)
	f.delays[Edge{From: 0, To: 1}] = time.Millisecond
	f.delays[Edge{From: 1, To: 0}] = time.Millisecond
	f.delays[Edge{From: 1, To: 2}] = time.Millisecond
	f.delays[Edge{From: 2, To: 1}] = time.Millisecond
	m.JoinGroup(1)
	delivered := 0
	m.OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	if !fw.IsForwarder(1) {
		t.Fatal("warmup fallback did not establish the forwarding group")
	}
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(f.engine.Now() + time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestNonForwarderDoesNotForwardData(t *testing.T) {
	f, s, fw, m := chain(t, metric.SPP, DefaultParams())
	// No membership, no query flood: nothing should be forwarded.
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(time.Second)
	if fw.Stats.DataForwarded != 0 {
		t.Fatal("non-FG node forwarded data")
	}
	if m.Stats.DataDelivered != 0 {
		t.Fatal("non-member delivered data")
	}
}

func TestEdgeUseRecordsTree(t *testing.T) {
	f, s, fw, m := chain(t, metric.SPP, DefaultParams())
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	for i := 0; i < 5; i++ {
		f.engine.Schedule(time.Duration(i)*50*time.Millisecond, func() { s.SendData(1, 512) })
	}
	f.engine.Run(f.engine.Now() + time.Second)
	fwUse := fw.EdgeUse()
	if fwUse[Edge{From: 0, To: 1}] != 5 {
		t.Fatalf("edge S->F use = %d, want 5", fwUse[Edge{From: 0, To: 1}])
	}
	mUse := m.EdgeUse()
	if mUse[Edge{From: 1, To: 2}] != 5 {
		t.Fatalf("edge F->M use = %d, want 5", mUse[Edge{From: 1, To: 2}])
	}
}

func TestMultipleSourcesShareForwardingGroup(t *testing.T) {
	// §4.3: forwarding groups are per group, not per source. A node made a
	// forwarder by source A's query also forwards source B's data.
	f := newFakeNet(8)
	params := DefaultParams()
	s1 := f.addNode(0, metric.SPP, params)
	fw := f.addNode(1, metric.SPP, params)
	m := f.addNode(2, metric.SPP, params)
	s2 := f.addNode(3, metric.SPP, params)
	f.connect(0, 1, time.Millisecond, 0.9, 0.9)
	f.connect(1, 2, time.Millisecond, 0.9, 0.9)
	f.connect(3, 1, time.Millisecond, 0.9, 0.9) // s2 also adjacent to fw
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s1.StartSource(1) })
	f.engine.Run(time.Second)
	if !fw.IsForwarder(1) {
		t.Fatal("FG flag not set by source 1's flood")
	}
	// Source 2 never flooded a query, yet its data flows through the FG.
	delivered := 0
	m.OnDeliver = func(p *packet.Packet, _ packet.NodeID) {
		if p.Src == 3 {
			delivered++
		}
	}
	f.engine.Schedule(0, func() { s2.SendData(1, 512) })
	f.engine.Run(f.engine.Now() + time.Second)
	if delivered != 1 {
		t.Fatalf("source-2 data delivered = %d, want 1 via shared FG", delivered)
	}
}

func TestJoinLeaveGroup(t *testing.T) {
	f, s, _, m := chain(t, metric.SPP, DefaultParams())
	m.JoinGroup(1)
	if !m.IsMember(1) {
		t.Fatal("JoinGroup did not register membership")
	}
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	m.LeaveGroup(1)
	delivered := 0
	m.OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(f.engine.Now() + time.Second)
	if delivered != 0 {
		t.Fatal("data delivered after LeaveGroup")
	}
}
