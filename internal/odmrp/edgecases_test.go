package odmrp

import (
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
)

func TestSourceDoesNotDeliverOwnData(t *testing.T) {
	f, s, _, m := chain(t, metric.SPP, DefaultParams())
	s.JoinGroup(1) // source is also a member of its own group
	m.JoinGroup(1)
	own := 0
	s.OnDeliver = func(p *packet.Packet, _ packet.NodeID) {
		if p.Src == s.ID() {
			own++
		}
	}
	f.engine.Schedule(0, func() { s.StartSource(1) })
	f.engine.Run(time.Second)
	f.engine.Schedule(0, func() { s.SendData(1, 512) })
	f.engine.Run(f.engine.Now() + time.Second)
	if own != 0 {
		t.Fatalf("source delivered %d of its own packets", own)
	}
	if s.Stats.DataDuplicates != 0 {
		t.Fatalf("echoed own packet counted as duplicate: %d", s.Stats.DataDuplicates)
	}
}

func TestFGRefreshExtendsExpiry(t *testing.T) {
	f, s, fw, m := chain(t, metric.SPP, DefaultParams())
	m.JoinGroup(1)
	f.engine.Schedule(0, func() { s.StartSource(1) })
	// Run for several refresh periods: the FG flag must stay continuously
	// set even though each individual grant would have expired.
	end := 4 * DefaultParams().FGTimeout
	for at := time.Second; at < end; at += time.Second {
		at := at
		f.engine.Run(at)
		if f.engine.Now() > DefaultParams().FGTimeout && !fw.IsForwarder(1) {
			t.Fatalf("FG flag lapsed at %v despite periodic refreshes", f.engine.Now())
		}
	}
}

func TestDataTTLBoundsForwarding(t *testing.T) {
	// A 6-node chain with data TTL 3: the packet must die mid-chain.
	f := newFakeNet(13)
	params := DefaultParams()
	var routers []*Router
	for i := packet.NodeID(0); i < 6; i++ {
		routers = append(routers, f.addNode(i, metric.SPP, params))
	}
	for i := packet.NodeID(0); i < 5; i++ {
		f.connect(i, i+1, time.Millisecond, 0.9, 0.9)
	}
	routers[5].JoinGroup(1)
	f.engine.Schedule(0, func() { routers[0].StartSource(1) })
	f.engine.Run(time.Second)
	// Force every intermediate node into the forwarding group, then send
	// data with a small TTL by lowering the router's parameter.
	for _, r := range routers[1:5] {
		r.fgUntil[1] = f.engine.Now() + time.Hour
	}
	delivered := 0
	routers[5].OnDeliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	// SendData uses params.TTL; craft a low-TTL packet directly instead.
	low := &packet.Packet{
		Kind: packet.TypeData, Src: 0, PrevHop: 0, Group: 1, Seq: 999,
		TTL: 3, PayloadBytes: 64, SentAt: f.engine.Now(),
	}
	f.engine.Schedule(0, func() {
		for edge, delay := range f.delays {
			if edge.From != 0 {
				continue
			}
			to := f.routers[edge.To]
			c := low.Clone()
			f.engine.Schedule(delay, func() { to.Handle(c, 0) })
		}
	})
	f.engine.Run(f.engine.Now() + time.Second)
	if delivered != 0 {
		t.Fatalf("TTL-3 data crossed a 5-hop chain")
	}
	// Node 3 received it with TTL 1 and must not have forwarded it.
	if routers[4].Stats.DataDuplicates != 0 {
		t.Fatal("unexpected duplicate accounting")
	}
}

func TestReplyForUnknownSourceIgnored(t *testing.T) {
	f := newFakeNet(14)
	r := f.addNode(1, metric.SPP, DefaultParams())
	sent := 0
	r.Send = func(*packet.Packet) bool { sent++; return true }
	reply := &packet.Packet{
		Kind: packet.TypeJoinReply, Src: 2, Group: 1, Seq: 0,
		Replies: []packet.ReplyEntry{{Source: 9, NextHop: 1}},
	}
	r.Handle(reply, 2)
	f.engine.Run(time.Second)
	// No query round for source 9 exists: the node sets its FG flag (it is
	// named next hop) but cannot propagate a reply.
	if sent != 0 {
		t.Fatalf("propagated %d replies without a query round", sent)
	}
	if !r.IsForwarder(1) {
		t.Fatal("FG flag should still be set; data forwarding is safe")
	}
}

func TestHandleRejectsUnknownKinds(t *testing.T) {
	f := newFakeNet(15)
	r := f.addNode(1, metric.SPP, DefaultParams())
	if r.Handle(&packet.Packet{Kind: packet.TypeProbe}, 2) {
		t.Fatal("probe packets are not ODMRP's to handle")
	}
	if !r.Handle(&packet.Packet{Kind: packet.TypeData, Src: 2, Group: 1}, 2) {
		t.Fatal("data packets are ODMRP's to handle")
	}
}

func TestStopSourceIdempotent(t *testing.T) {
	f, s, _, _ := chain(t, metric.SPP, DefaultParams())
	f.engine.Schedule(0, func() {
		s.StartSource(1)
		s.StartSource(1) // duplicate start is a no-op
	})
	f.engine.Run(100 * time.Millisecond)
	if s.Stats.QueriesOriginated != 1 {
		t.Fatalf("duplicate StartSource flooded %d queries, want 1", s.Stats.QueriesOriginated)
	}
	s.StopSource(1)
	s.StopSource(1) // double stop must not panic
	f.engine.Run(10 * time.Second)
	if s.Stats.QueriesOriginated != 1 {
		t.Fatal("queries flooded after StopSource")
	}
}
