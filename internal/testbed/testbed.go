// Package testbed emulates the paper's 8-node indoor mesh testbed (§5):
// eight mesh routers on one office-building floor, with links classified as
// low-loss (solid in Figure 4) or lossy (dashed), the latter exhibiting
// 40–60% loss rates that vary over time.
//
// The physical testbed (Atheros radios, office walls) is unavailable, so
// this package substitutes a trace-driven link model: each link carries a
// slowly wandering delivery probability drawn from its class band, applied
// per packet through the PHY's link oracle. This preserves what the paper's
// testbed section analyses — lossy one-hop shortcuts versus clean two-hop
// detours, and loss rates high enough to trigger PP's exponential cost
// blowup (§5.3).
package testbed

import (
	"fmt"
	"sort"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/multicast"
	"meshcast/internal/node"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/stats"
	"meshcast/internal/traffic"

	"meshcast/internal/metric"
)

// Paper node numbering (Figure 4). The eight routers keep their original
// IDs.
var NodeIDs = []packet.NodeID{1, 2, 3, 4, 5, 7, 9, 10}

// Positions approximates the Figure 4 floor map (metres; display only —
// propagation is trace-driven, not geometric).
var Positions = map[packet.NodeID]geom.Point{
	5:  {X: 5, Y: 20},
	4:  {X: 15, Y: 5},
	9:  {X: 30, Y: 8},
	7:  {X: 50, Y: 12},
	3:  {X: 60, Y: 20},
	2:  {X: 30, Y: 22},
	1:  {X: 62, Y: 6},
	10: {X: 12, Y: 16},
}

// LinkClass classifies a testbed link.
type LinkClass int

// Link classes (Figure 4: solid = low loss, dashed = lossy).
const (
	LowLoss LinkClass = iota + 1
	Lossy
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	if c == Lossy {
		return "lossy"
	}
	return "low-loss"
}

// Link is an undirected testbed link.
type Link struct {
	A, B  packet.NodeID
	Class LinkClass
}

// Links reproduces the Figure 4 connectivity. Lossy links are exactly the
// ones §5.3 names as problem shortcuts: 2–5, 4–7, 1–3 and 3–9.
var Links = []Link{
	{2, 5, Lossy},
	{4, 7, Lossy},
	{1, 3, Lossy},
	{3, 9, Lossy},
	{2, 10, LowLoss},
	{10, 5, LowLoss},
	{4, 9, LowLoss},
	{9, 7, LowLoss},
	{2, 7, LowLoss},
	{3, 7, LowLoss},
	{1, 2, LowLoss},
	{4, 10, LowLoss},
}

// Config configures a testbed run.
type Config struct {
	// Metric selects the routing metric.
	Metric metric.Kind
	// Protocol selects the multicast protocol by registered name; empty
	// means the default (ODMRP).
	Protocol string
	// Seed drives the loss processes and protocol randomness.
	Seed uint64
	// TrafficSeconds is the measured window (paper: 400 s per run).
	TrafficSeconds int
	// WarmupSeconds lets probes warm up before traffic.
	WarmupSeconds int
	// VariationInterval is how often each link redraws its delivery
	// probability ("these values change fairly quickly", §5.3).
	VariationInterval time.Duration
}

// DefaultConfig mirrors the paper's testbed experiments.
func DefaultConfig(k metric.Kind, seed uint64) Config {
	return Config{
		Metric:            k,
		Seed:              seed,
		TrafficSeconds:    400,
		WarmupSeconds:     100,
		VariationInterval: 10 * time.Second,
	}
}

// lossProcess is one link's time-varying delivery probability. Lossy links
// mostly sit in the paper's 40–60% loss band but occasionally excurse to a
// temporarily good state — §5.3's "random temporal variations" that fool
// metrics with a short history window into re-selecting them, while PP's
// long EWMA memory (with its exploded cost) keeps avoiding them.
type lossProcess struct {
	df            float64
	lo, hi        float64
	jitter        float64
	excursionProb float64
	excursionHi   float64
	excursionLeft int
	rng           *sim.RNG
}

func newLossProcess(class LinkClass, rng *sim.RNG) *lossProcess {
	p := &lossProcess{rng: rng}
	switch class {
	case Lossy:
		// Paper §5.3: dashed links run at 40–60% loss with quick changes.
		p.lo, p.hi, p.jitter = 0.40, 0.60, 0.10
		p.excursionProb, p.excursionHi = 0.12, 0.95
	default:
		p.lo, p.hi, p.jitter = 0.94, 1.00, 0.02
	}
	p.df = p.lo + rng.Float64()*(p.hi-p.lo)
	return p
}

// step advances the process one variation interval.
func (p *lossProcess) step() {
	if p.excursionLeft > 0 {
		p.excursionLeft--
		if p.excursionLeft == 0 {
			// Fall back into the lossy band.
			p.df = p.lo + p.rng.Float64()*(p.hi-p.lo)
		}
		return
	}
	if p.excursionProb > 0 && p.rng.Float64() < p.excursionProb {
		// A temporarily good episode, long enough (3-5 intervals) for a
		// short-window estimator to believe it.
		p.excursionLeft = 3 + p.rng.Intn(3)
		p.df = p.hi + p.rng.Float64()*(p.excursionHi-p.hi)
		return
	}
	p.df += (p.rng.Float64()*2 - 1) * p.jitter
	if p.df < p.lo {
		p.df = p.lo
	}
	if p.df > p.hi {
		p.df = p.hi
	}
}

// linkKey canonicalizes an undirected pair.
func linkKey(a, b packet.NodeID) [2]packet.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]packet.NodeID{a, b}
}

// Result is a testbed run's outcome.
type Result struct {
	Summary   stats.Summary
	PerMember []stats.MemberPDR
	// EdgeUse merges data-carrying edge counters across nodes (Figure 5).
	EdgeUse map[multicast.Edge]uint64
	// Sent maps each source to packets sent.
	Sent map[packet.NodeID]uint64
	// Series buckets delivery ratio over time (20 s buckets, by send
	// time), exposing estimator convergence and route flaps.
	Series []stats.Point
	// Delay summarizes the end-to-end delay distribution.
	Delay stats.Percentiles
}

// Run executes one testbed emulation of the paper's §5.3 setup: group 1 is
// source 2 → members {3, 5}, group 2 is source 4 → members {1, 7}, CBR
// 512 B @ 20 pkt/s over the Figure 4 topology.
func Run(cfg Config) (*Result, error) {
	return RunScenario(cfg, PaperScenario())
}

// RunScenario executes a testbed emulation of an arbitrary scenario
// (PaperScenario or a GenerateFloor deployment).
func RunScenario(cfg Config, sc Scenario) (*Result, error) {
	engine := sim.NewEngine(cfg.Seed)
	params := phy.DefaultParams()
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, params)

	// Build the loss processes and install the link oracle.
	lossRNG := engine.RNG().Split()
	processes := make(map[[2]packet.NodeID]*lossProcess, len(sc.Links))
	for _, l := range sc.Links {
		processes[linkKey(l.A, l.B)] = newLossProcess(l.Class, lossRNG.Split())
	}
	drawRNG := engine.RNG().Split()
	medium.SetLinkFunc(func(tx, rx packet.NodeID, _ time.Duration, _ *sim.RNG) float64 {
		proc, ok := processes[linkKey(tx, rx)]
		if !ok {
			return 0 // no link: not even carrier sense (hidden terminals)
		}
		if drawRNG.Float64() < proc.df {
			return params.RxThresholdW * 100 // comfortably decodable
		}
		return params.CSThresholdW * 3 // sensed but not decodable
	})
	sim.NewTicker(engine, cfg.VariationInterval, cfg.VariationInterval/2, engine.RNG().Split(), func() {
		for _, p := range processes {
			p.step()
		}
	})

	nodeCfg := node.DefaultConfig(cfg.Metric)
	nodeCfg.Protocol = cfg.Protocol
	nodes := make(map[packet.NodeID]*node.Node, len(sc.Nodes))
	for _, id := range sc.Nodes {
		n, err := node.New(engine, medium, id, sc.Positions[id], nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("testbed node %v: %w", id, err)
		}
		nodes[id] = n
		n.Start()
	}
	groups := sc.Groups

	collector := stats.NewCollector()
	series := stats.NewTimeSeries(20 * time.Second)
	var delays stats.DelayTracker
	warmup := time.Duration(cfg.WarmupSeconds) * time.Second
	var flows []*traffic.CBR
	for _, g := range groups {
		for _, m := range g.Members {
			nodes[m].Router.JoinGroup(g.Group)
			collector.Subscribe(m, g.Group, g.Source)
			r := nodes[m].Router
			r.SetOnDeliver(func(p *packet.Packet, _ packet.NodeID) {
				collector.RecordDelivered(r.ID(), p.Group, p.Src, p.PayloadBytes, engine.Now()-p.SentAt)
				series.RecordDelivered(p.SentAt - warmup)
				delays.Observe(engine.Now() - p.SentAt)
			})
		}
		cbr := traffic.NewCBR(engine, nodes[g.Source].Router, traffic.CBRConfig{
			Group:        g.Group,
			PayloadBytes: 512,
			Interval:     50 * time.Millisecond,
			Jitter:       5 * time.Millisecond,
			Start:        warmup,
		})
		cbr.OnSend = func(at time.Duration) { series.RecordSent(at - warmup) }
		cbr.Start()
		flows = append(flows, cbr)
	}

	var probeAtStart uint64
	engine.At(warmup, func() {
		for _, n := range nodes {
			probeAtStart += n.Prober.Stats.BytesSent
		}
	})

	engine.Run(warmup + time.Duration(cfg.TrafficSeconds)*time.Second)

	res := &Result{
		EdgeUse: make(map[multicast.Edge]uint64),
		Sent:    make(map[packet.NodeID]uint64),
	}
	for i, g := range groups {
		collector.SetSent(g.Group, g.Source, flows[i].Sent)
		res.Sent[g.Source] = flows[i].Sent
	}
	var probeBytes uint64
	for _, id := range sc.Nodes {
		n := nodes[id]
		probeBytes += n.Prober.Stats.BytesSent
		for e, c := range n.Router.EdgeUse() {
			res.EdgeUse[e] += c
		}
	}
	collector.ProbeBytes = probeBytes - probeAtStart
	res.Summary = collector.Summarize()
	res.PerMember = collector.PerMemberPDR()
	res.Series = series.Points()
	res.Delay = delays.Percentiles()
	return res, nil
}

// TreeEdge is a heavily used data edge with its share of the traffic.
type TreeEdge struct {
	Edge  multicast.Edge
	Count uint64
	Class LinkClass
}

// HeavyEdges extracts the data-plane tree from a run (Figure 5): directed
// edges that carried at least minShare of the total packets a source sent.
func HeavyEdges(res *Result, minShare float64) []TreeEdge {
	var total uint64
	for _, s := range res.Sent {
		total += s
	}
	if total == 0 {
		return nil
	}
	classes := make(map[[2]packet.NodeID]LinkClass, len(Links))
	for _, l := range Links {
		classes[linkKey(l.A, l.B)] = l.Class
	}
	var out []TreeEdge
	for e, c := range res.EdgeUse {
		if float64(c) < minShare*float64(total)/2 {
			// Each source contributes ~total/2 packets; an edge is "heavy"
			// relative to its own source's volume.
			continue
		}
		out = append(out, TreeEdge{Edge: e, Count: c, Class: classes[linkKey(e.From, e.To)]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}
