package testbed

import (
	"testing"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

func shortConfig(k metric.Kind, seed uint64) Config {
	cfg := DefaultConfig(k, seed)
	cfg.WarmupSeconds = 60
	cfg.TrafficSeconds = 120
	return cfg
}

func TestTopologyShape(t *testing.T) {
	if len(NodeIDs) != 8 {
		t.Fatalf("testbed has %d nodes, want 8", len(NodeIDs))
	}
	seen := map[packet.NodeID]bool{}
	for _, id := range NodeIDs {
		if seen[id] {
			t.Fatalf("duplicate node %v", id)
		}
		seen[id] = true
		if _, ok := Positions[id]; !ok {
			t.Fatalf("node %v has no position", id)
		}
	}
	lossy := 0
	for _, l := range Links {
		if !seen[l.A] || !seen[l.B] {
			t.Fatalf("link %v-%v references unknown node", l.A, l.B)
		}
		if l.Class == Lossy {
			lossy++
		}
	}
	if lossy != 4 {
		t.Fatalf("lossy links = %d, want 4 (2-5, 4-7, 1-3, 3-9)", lossy)
	}
	// §5.3's specific problem links must be present and lossy.
	want := map[[2]packet.NodeID]bool{
		linkKey(2, 5): true, linkKey(4, 7): true, linkKey(1, 3): true, linkKey(3, 9): true,
	}
	for _, l := range Links {
		if l.Class == Lossy && !want[linkKey(l.A, l.B)] {
			t.Fatalf("unexpected lossy link %v-%v", l.A, l.B)
		}
	}
}

func TestTopologyConnected(t *testing.T) {
	adj := map[packet.NodeID][]packet.NodeID{}
	for _, l := range Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := map[packet.NodeID]bool{NodeIDs[0]: true}
	stack := []packet.NodeID{NodeIDs[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if len(seen) != len(NodeIDs) {
		t.Fatalf("testbed graph disconnected: reached %d of %d", len(seen), len(NodeIDs))
	}
}

func TestLossProcessStaysInClassBands(t *testing.T) {
	for _, class := range []LinkClass{LowLoss, Lossy} {
		p := newLossProcess(class, sim.NewRNG(7))
		for i := 0; i < 1000; i++ {
			p.step()
			switch class {
			case LowLoss:
				if p.df < 0.94 || p.df > 1.0 {
					t.Fatalf("low-loss df = %v out of band", p.df)
				}
			case Lossy:
				if p.df < 0.40 || p.df > 0.95 {
					t.Fatalf("lossy df = %v out of [0.40, 0.95]", p.df)
				}
			}
		}
	}
}

func TestLossyProcessHasExcursions(t *testing.T) {
	p := newLossProcess(Lossy, sim.NewRNG(9))
	excursions, inBand := 0, 0
	for i := 0; i < 1000; i++ {
		p.step()
		if p.df > 0.6 {
			excursions++
		} else {
			inBand++
		}
	}
	if excursions == 0 {
		t.Fatal("lossy link never excursed to a good state")
	}
	if inBand < excursions {
		t.Fatalf("lossy link spends more time good (%d) than lossy (%d)", excursions, inBand)
	}
}

func TestRunDeliversToAllMembers(t *testing.T) {
	res, err := Run(shortConfig(metric.SPP, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMember) != 4 {
		t.Fatalf("per-member entries = %d, want 4", len(res.PerMember))
	}
	for _, m := range res.PerMember {
		if m.PDR < 0.3 {
			t.Fatalf("member %v starved: PDR %.3f", m.Member, m.PDR)
		}
	}
	if res.Summary.PDR <= 0.5 || res.Summary.PDR > 1.0001 {
		t.Fatalf("overall PDR = %v", res.Summary.PDR)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(shortConfig(metric.PP, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig(metric.PP, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("same seed differs:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestMetricsBeatOriginalODMRP(t *testing.T) {
	// The testbed's headline: link-quality metrics outperform min-hop
	// ODMRP, which keeps using the lossy one-hop shortcuts. Averaged over
	// a few seeds to damp run noise.
	seeds := []uint64{1, 2, 3}
	mean := func(k metric.Kind) float64 {
		var sum float64
		for _, s := range seeds {
			res, err := Run(shortConfig(k, s))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Summary.PDR
		}
		return sum / float64(len(seeds))
	}
	base := mean(metric.MinHop)
	for _, k := range []metric.Kind{metric.PP, metric.SPP} {
		if got := mean(k); got <= base {
			t.Fatalf("%v PDR %.3f did not beat original ODMRP %.3f", k, got, base)
		}
	}
}

func TestHeavyEdgesAvoidLossyLinksUnderPP(t *testing.T) {
	// Figure 5: ODMRP_PP routes around the lossy shortcuts. The heavy
	// edges of a PP run should be dominated by low-loss links.
	res, err := Run(shortConfig(metric.PP, 2))
	if err != nil {
		t.Fatal(err)
	}
	edges := HeavyEdges(res, 0.3)
	if len(edges) == 0 {
		t.Fatal("no heavy edges found")
	}
	lossyCount := 0
	for _, e := range edges {
		if e.Class == Lossy {
			lossyCount++
		}
	}
	if lossyCount > len(edges)/2 {
		t.Fatalf("PP tree uses %d lossy of %d heavy edges", lossyCount, len(edges))
	}
}

func TestHeavyEdgesEmptyWithoutTraffic(t *testing.T) {
	if got := HeavyEdges(&Result{}, 0.5); got != nil {
		t.Fatalf("HeavyEdges on empty result = %v", got)
	}
}

func TestEdgeUseOnlyOnRealLinks(t *testing.T) {
	res, err := Run(shortConfig(metric.SPP, 4))
	if err != nil {
		t.Fatal(err)
	}
	real := map[[2]packet.NodeID]bool{}
	for _, l := range Links {
		real[linkKey(l.A, l.B)] = true
	}
	for e := range res.EdgeUse {
		if !real[linkKey(e.From, e.To)] {
			t.Fatalf("data crossed nonexistent link %v->%v", e.From, e.To)
		}
	}
}

func TestRunProducesTimeSeriesAndDelays(t *testing.T) {
	res, err := Run(shortConfig(metric.SPP, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 3 {
		t.Fatalf("series buckets = %d, want several over a 120 s run", len(res.Series))
	}
	nonzero := 0
	for _, p := range res.Series {
		// Two sources, two members each: the raw ratio tops out near 2.
		if p.Ratio < 0 || p.Ratio > 2.01 {
			t.Fatalf("bucket ratio = %v out of range", p.Ratio)
		}
		if p.Sent > 0 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Fatalf("only %d buckets carry traffic", nonzero)
	}
	if res.Delay.Count == 0 || res.Delay.P50 <= 0 {
		t.Fatalf("delay percentiles = %+v", res.Delay)
	}
	if res.Delay.P50 > res.Delay.P90 || res.Delay.P90 > res.Delay.P99 || res.Delay.P99 > res.Delay.Max {
		t.Fatalf("percentiles not ordered: %+v", res.Delay)
	}
}
