package testbed

import (
	"testing"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
)

func TestPaperScenarioMatchesConstants(t *testing.T) {
	sc := PaperScenario()
	if len(sc.Nodes) != 8 || len(sc.Links) != len(Links) {
		t.Fatalf("paper scenario shape: %d nodes, %d links", len(sc.Nodes), len(sc.Links))
	}
	if len(sc.Groups) != 2 || sc.Groups[0].Source != 2 || sc.Groups[1].Source != 4 {
		t.Fatalf("paper groups = %+v", sc.Groups)
	}
	// Mutating the copy must not corrupt the package constants.
	sc.Links[0].Class = LowLoss
	if Links[0].Class != Lossy {
		t.Fatal("PaperScenario shares the Links slice")
	}
}

func TestGenerateFloorShape(t *testing.T) {
	sc, err := GenerateFloor(FloorConfig{Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Nodes) != 16 {
		t.Fatalf("nodes = %d", len(sc.Nodes))
	}
	if !scenarioConnected(sc) {
		t.Fatal("generated floor disconnected")
	}
	lossy := 0
	for _, l := range sc.Links {
		if l.Class == Lossy {
			lossy++
		}
		if _, ok := sc.Positions[l.A]; !ok {
			t.Fatalf("link endpoint %v missing position", l.A)
		}
	}
	if lossy == 0 || lossy == len(sc.Links) {
		t.Fatalf("lossy links = %d of %d, want a mix", lossy, len(sc.Links))
	}
	// Lossy links must be (on average) longer than low-loss ones — they
	// model wall-heavy long links.
	var lossySum, cleanSum float64
	var lossyN, cleanN int
	for _, l := range sc.Links {
		d := sc.Positions[l.A].Distance(sc.Positions[l.B])
		if l.Class == Lossy {
			lossySum += d
			lossyN++
		} else {
			cleanSum += d
			cleanN++
		}
	}
	if lossySum/float64(lossyN) <= cleanSum/float64(cleanN) {
		t.Fatal("lossy links are not longer than clean links on average")
	}
	if len(sc.Groups) != 2 {
		t.Fatalf("groups = %d", len(sc.Groups))
	}
	seen := map[packet.NodeID]bool{}
	for _, g := range sc.Groups {
		for _, id := range append([]packet.NodeID{g.Source}, g.Members...) {
			if seen[id] {
				t.Fatalf("node %v reused across sessions", id)
			}
			seen[id] = true
		}
	}
}

func TestGenerateFloorDeterministic(t *testing.T) {
	a, err := GenerateFloor(FloorConfig{Nodes: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFloor(FloorConfig{Nodes: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed, different link count")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("same seed, different links")
		}
	}
	c, err := GenerateFloor(FloorConfig{Nodes: 12, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Links) == len(c.Links)
	if same {
		for i := range a.Links {
			if a.Links[i] != c.Links[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical floors")
	}
}

func TestGenerateFloorRejectsTiny(t *testing.T) {
	if _, err := GenerateFloor(FloorConfig{Nodes: 2, Seed: 1}); err == nil {
		t.Fatal("expected error for 2-node floor")
	}
}

func TestRunScenarioOnGeneratedFloor(t *testing.T) {
	sc, err := GenerateFloor(FloorConfig{Nodes: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(metric.SPP, 5)
	cfg.WarmupSeconds = 40
	cfg.TrafficSeconds = 60
	res, err := RunScenario(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PDR <= 0.3 {
		t.Fatalf("floor run PDR = %v", res.Summary.PDR)
	}
	if len(res.PerMember) != 4 {
		t.Fatalf("per-member = %d, want 4 (2 groups x 2 members)", len(res.PerMember))
	}
}

func TestLargerFloorMetricsStillBeatBaseline(t *testing.T) {
	// The future-work claim: on a larger, more diverse testbed the
	// link-quality gain persists.
	sc, err := GenerateFloor(FloorConfig{Nodes: 14, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(k metric.Kind) float64 {
		var sum float64
		for _, seed := range []uint64{1, 2, 3} {
			cfg := DefaultConfig(k, seed)
			cfg.WarmupSeconds = 40
			cfg.TrafficSeconds = 60
			res, err := RunScenario(cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Summary.PDR
		}
		return sum / 3
	}
	base := run(metric.MinHop)
	spp := run(metric.SPP)
	if spp <= base {
		t.Fatalf("SPP %.3f did not beat baseline %.3f on the generated floor", spp, base)
	}
}
