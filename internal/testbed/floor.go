package testbed

import (
	"fmt"
	"sort"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

// Scenario generalizes the paper's fixed 8-node testbed to arbitrary
// emulated deployments — the paper's stated future work ("we plan to
// significantly expand our testbed which will give more diversity in the
// network topologies", §6).
type Scenario struct {
	// Nodes lists the router IDs.
	Nodes []packet.NodeID
	// Positions places each node (display + diagnostics only; propagation
	// is trace-driven).
	Positions map[packet.NodeID]geom.Point
	// Links is the classified connectivity.
	Links []Link
	// Groups declares the multicast sessions.
	Groups []GroupSpec
}

// GroupSpec is one multicast session on a testbed scenario.
type GroupSpec struct {
	Group   packet.GroupID
	Source  packet.NodeID
	Members []packet.NodeID
}

// PaperScenario returns the paper's §5 deployment: the Figure 4 topology
// with source 2 → {3, 5} and source 4 → {1, 7}.
func PaperScenario() Scenario {
	links := make([]Link, len(Links))
	copy(links, Links)
	positions := make(map[packet.NodeID]geom.Point, len(Positions))
	for id, p := range Positions {
		positions[id] = p
	}
	return Scenario{
		Nodes:     append([]packet.NodeID(nil), NodeIDs...),
		Positions: positions,
		Links:     links,
		Groups: []GroupSpec{
			{Group: 1, Source: 2, Members: []packet.NodeID{3, 5}},
			{Group: 2, Source: 4, Members: []packet.NodeID{1, 7}},
		},
	}
}

// FloorConfig shapes a generated office-floor testbed.
type FloorConfig struct {
	// Nodes is the router count (≥ 4).
	Nodes int
	// Seed drives placement and link classification.
	Seed uint64
	// LengthM and WidthM are the floor dimensions. The paper's floor is
	// roughly 73 m × 26 m (240 × 86 feet); zero values default to a floor
	// scaled to hold Nodes offices at that density.
	LengthM, WidthM float64
	// LinkRangeM bounds office-to-office connectivity (default 30 m).
	LinkRangeM float64
	// LossyFraction is the target share of lossy links (default ≈ 1/3,
	// matching Figure 4's 4 of 12).
	LossyFraction float64
	// Groups is the number of multicast sessions to lay out (default 2),
	// each with one source and two members, like the paper's experiments.
	Groups int
}

// GenerateFloor builds a connected office-floor testbed scenario: nodes
// placed in a corridor-like rectangle, links between offices within range,
// and the longest links classified lossy (long indoor links cross more
// walls). Generation is deterministic per seed.
func GenerateFloor(cfg FloorConfig) (Scenario, error) {
	if cfg.Nodes < 4 {
		return Scenario{}, fmt.Errorf("testbed: floor needs at least 4 nodes, got %d", cfg.Nodes)
	}
	if cfg.LengthM == 0 {
		// Keep the paper's office density: 8 nodes per 73 m of corridor.
		cfg.LengthM = 73 * float64(cfg.Nodes) / 8
	}
	if cfg.WidthM == 0 {
		cfg.WidthM = 26
	}
	if cfg.LinkRangeM == 0 {
		cfg.LinkRangeM = 30
	}
	if cfg.LossyFraction == 0 {
		cfg.LossyFraction = 1.0 / 3.0
	}
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}

	rng := sim.NewRNG(cfg.Seed ^ 0xa5a5a5a55a5a5a5a)
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sc, ok := generateFloorOnce(cfg, rng)
		if ok {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("testbed: no connected floor found for %d nodes in %.0fx%.0f m (range %.0f m)",
		cfg.Nodes, cfg.LengthM, cfg.WidthM, cfg.LinkRangeM)
}

func generateFloorOnce(cfg FloorConfig, rng *sim.RNG) (Scenario, bool) {
	sc := Scenario{Positions: make(map[packet.NodeID]geom.Point, cfg.Nodes)}
	// Offices along the corridor: jittered lattice keeps spacing realistic.
	for i := 0; i < cfg.Nodes; i++ {
		id := packet.NodeID(i + 1)
		sc.Nodes = append(sc.Nodes, id)
		sc.Positions[id] = geom.Point{
			X: (float64(i) + rng.Float64()) / float64(cfg.Nodes) * cfg.LengthM,
			Y: rng.Float64() * cfg.WidthM,
		}
	}
	// Candidate links: all pairs within range, sorted by distance.
	type candidate struct {
		a, b packet.NodeID
		d    float64
	}
	var cands []candidate
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			a, b := sc.Nodes[i], sc.Nodes[j]
			d := sc.Positions[a].Distance(sc.Positions[b])
			if d <= cfg.LinkRangeM {
				cands = append(cands, candidate{a, b, d})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	// The longest LossyFraction of links cross the most walls: lossy.
	lossyFrom := len(cands) - int(float64(len(cands))*cfg.LossyFraction)
	for i, c := range cands {
		class := LowLoss
		if i >= lossyFrom {
			class = Lossy
		}
		sc.Links = append(sc.Links, Link{A: c.a, B: c.b, Class: class})
	}
	if !scenarioConnected(sc) {
		return Scenario{}, false
	}
	// Sessions: distinct sources, two members each, all distinct per group.
	perm := rng.Perm(cfg.Nodes)
	if cfg.Nodes < cfg.Groups*3 {
		return Scenario{}, false
	}
	for g := 0; g < cfg.Groups; g++ {
		base := g * 3
		sc.Groups = append(sc.Groups, GroupSpec{
			Group:  packet.GroupID(g + 1),
			Source: sc.Nodes[perm[base]],
			Members: []packet.NodeID{
				sc.Nodes[perm[base+1]], sc.Nodes[perm[base+2]],
			},
		})
	}
	return sc, true
}

// scenarioConnected checks graph connectivity over all links.
func scenarioConnected(sc Scenario) bool {
	if len(sc.Nodes) == 0 {
		return true
	}
	adj := make(map[packet.NodeID][]packet.NodeID, len(sc.Nodes))
	for _, l := range sc.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := map[packet.NodeID]bool{sc.Nodes[0]: true}
	stack := []packet.NodeID{sc.Nodes[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(sc.Nodes)
}
