// Package metric implements the multicast routing metrics studied in the
// paper: minimum hop count (original ODMRP) and the five link-quality
// metrics adapted for link-layer broadcast — ETX, ETT, PP, METX and SPP
// (paper §2.2).
//
// Because multicast data is broadcast at the link layer, all metrics here
// use only the *forward* link quality (no ACKs flow backward) and must
// account for the absence of retransmissions: a packet has one chance per
// hop. That is why SPP — the product of per-link delivery probabilities — is
// the natural fidelity measure of a path, and why METX uses a recurrence
// over the remaining-path success probability rather than a simple sum.
//
// Each metric is a path-cost algebra: an initial cost at the source, an
// accumulation step applied link by link as a JOIN QUERY travels, and a
// comparison that orders candidate paths. Keeping the algebra abstract lets
// the ODMRP implementation stay metric-agnostic.
package metric

import (
	"fmt"
	"math"
)

// Kind names a routing metric.
type Kind int

// Available metrics.
const (
	// MinHop is the hop-count metric used by the original ODMRP.
	MinHop Kind = iota + 1
	// ETX is the expected transmission count adapted for broadcast:
	// 1/df per link using only the forward delivery ratio, summed.
	ETX
	// ETT is the expected transmission time: ETX × packet-size/bandwidth
	// per link, summed, with bandwidth estimated by packet pairs.
	ETT
	// PP is the packet-pair delay metric: a loss-penalized EWMA of the
	// inter-arrival delay of a small/large probe pair, summed.
	PP
	// METX is the multicast ETX: total expected transmissions by all nodes
	// on the path so that at least one packet survives to the receiver.
	METX
	// SPP is the success probability product: the probability that a
	// packet crosses the whole path, to be maximized.
	SPP
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MinHop:
		return "minhop"
	case ETX:
		return "etx"
	case ETT:
		return "ett"
	case PP:
		return "pp"
	case METX:
		return "metx"
	case SPP:
		return "spp"
	default:
		return fmt.Sprintf("metric(%d)", int(k))
	}
}

// ParseKind converts a metric name (as printed by Kind.String) back to a
// Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range All() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("metric: unknown metric %q", s)
}

// All returns every metric kind in presentation order (the order used by
// the paper's figures).
func All() []Kind {
	return []Kind{MinHop, ETT, ETX, METX, PP, SPP}
}

// LinkQuality() is the in-protocol metrics suite; kinds other than MinHop.
func LinkQuality() []Kind {
	return []Kind{ETT, ETX, METX, PP, SPP}
}

// LinkEstimate is the per-link measurement state a routing metric consumes.
// The linkquality package maintains these from received probes; static
// scenario graphs can also fill them directly.
type LinkEstimate struct {
	// DeliveryProb is the forward delivery probability df of the link as
	// measured by the probe loss window.
	DeliveryProb float64
	// PairDelaySeconds is the loss-penalized EWMA of the packet-pair
	// inter-arrival delay (PP's raw value).
	PairDelaySeconds float64
	// BandwidthBps is the link bandwidth estimated from the packet pair
	// (large-probe size over inter-arrival time), used by ETT.
	BandwidthBps float64
	// PacketBytes is the nominal data packet size ETT converts to time.
	PacketBytes int
}

// PathMetric is the path-cost algebra of one routing metric.
type PathMetric interface {
	// Kind identifies the metric.
	Kind() Kind
	// Initial returns the cost of the empty path at the source.
	Initial() float64
	// LinkCost converts a link measurement into this metric's per-link
	// cost, the value a node adds when forwarding a JOIN QUERY.
	LinkCost(e LinkEstimate) float64
	// Accumulate extends pathCost by one link of cost linkCost. The link
	// order is source → destination (METX's recurrence depends on it).
	Accumulate(pathCost, linkCost float64) float64
	// Better reports whether path cost a is strictly preferable to b.
	Better(a, b float64) bool
	// Worst returns a sentinel cost that any real path beats.
	Worst() float64
	// Usable reports whether a path cost corresponds to a usable path —
	// one with no unmeasured or dead link. During warmup, before probes
	// have populated the neighbor tables, accumulated costs are unusable
	// and the protocol falls back to first-copy routing.
	Usable(cost float64) bool
}

// New returns the PathMetric implementation for kind k.
func New(k Kind) (PathMetric, error) {
	switch k {
	case MinHop:
		return minHop{}, nil
	case ETX:
		return etx{}, nil
	case ETT:
		return ett{}, nil
	case PP:
		return pp{}, nil
	case METX:
		return metx{}, nil
	case SPP:
		return spp{}, nil
	default:
		return nil, fmt.Errorf("metric: unknown kind %d", int(k))
	}
}

// MustNew is New for statically known kinds; it panics on an invalid kind.
func MustNew(k Kind) PathMetric {
	m, err := New(k)
	if err != nil {
		panic(err)
	}
	return m
}

// PathCost folds a full path's link costs through m, source first.
func PathCost(m PathMetric, linkCosts []float64) float64 {
	c := m.Initial()
	for _, lc := range linkCosts {
		c = m.Accumulate(c, lc)
	}
	return c
}

// PathCostFromEstimates computes a path cost directly from per-link
// measurements, source first.
func PathCostFromEstimates(m PathMetric, links []LinkEstimate) float64 {
	c := m.Initial()
	for _, e := range links {
		c = m.Accumulate(c, m.LinkCost(e))
	}
	return c
}

// ---- MinHop ----

type minHop struct{}

var _ PathMetric = minHop{}

func (minHop) Kind() Kind                    { return MinHop }
func (minHop) Initial() float64              { return 0 }
func (minHop) LinkCost(LinkEstimate) float64 { return 1 }
func (minHop) Accumulate(p, l float64) float64 {
	return p + l
}
func (minHop) Better(a, b float64) bool { return a < b }
func (minHop) Worst() float64           { return math.Inf(1) }
func (minHop) Usable(c float64) bool    { return !math.IsInf(c, 1) }

// ---- ETX ----

type etx struct{}

var _ PathMetric = etx{}

func (etx) Kind() Kind       { return ETX }
func (etx) Initial() float64 { return 0 }

// LinkCost is 1/df. Unlike unicast ETX (1/(df·dr)), the reverse delivery
// ratio dr is deliberately ignored: broadcast transfers have no link-layer
// acknowledgment, so reverse quality would only distort the metric (§2.1).
func (etx) LinkCost(e LinkEstimate) float64 {
	if e.DeliveryProb <= 0 {
		return math.Inf(1)
	}
	return 1 / e.DeliveryProb
}
func (etx) Accumulate(p, l float64) float64 { return p + l }
func (etx) Better(a, b float64) bool        { return a < b }
func (etx) Worst() float64                  { return math.Inf(1) }
func (etx) Usable(c float64) bool           { return !math.IsInf(c, 1) }

// ---- ETT ----

type ett struct{}

var _ PathMetric = ett{}

func (ett) Kind() Kind       { return ETT }
func (ett) Initial() float64 { return 0 }

// LinkCost is ETX × S/B seconds: the expected time to push one data packet
// of S bytes across the link at the pair-estimated bandwidth B.
func (ett) LinkCost(e LinkEstimate) float64 {
	if e.DeliveryProb <= 0 || e.BandwidthBps <= 0 {
		return math.Inf(1)
	}
	bits := float64(e.PacketBytes * 8)
	return (1 / e.DeliveryProb) * bits / e.BandwidthBps
}
func (ett) Accumulate(p, l float64) float64 { return p + l }
func (ett) Better(a, b float64) bool        { return a < b }
func (ett) Worst() float64                  { return math.Inf(1) }
func (ett) Usable(c float64) bool           { return !math.IsInf(c, 1) }

// ---- PP ----

type pp struct{}

var _ PathMetric = pp{}

func (pp) Kind() Kind       { return PP }
func (pp) Initial() float64 { return 0 }

// LinkCost is the loss-penalized packet-pair delay EWMA maintained by the
// prober. On a persistently lossy link the repeated 20% penalties compound
// and the cost grows exponentially — the property that makes PP aggressive
// at avoiding bad links (§4.2.1).
func (pp) LinkCost(e LinkEstimate) float64 {
	if e.PairDelaySeconds <= 0 {
		return math.Inf(1)
	}
	return e.PairDelaySeconds
}
func (pp) Accumulate(p, l float64) float64 { return p + l }
func (pp) Better(a, b float64) bool        { return a < b }
func (pp) Worst() float64                  { return math.Inf(1) }
func (pp) Usable(c float64) bool           { return !math.IsInf(c, 1) }

// ---- METX ----

type metx struct{}

var _ PathMetric = metx{}

func (metx) Kind() Kind       { return METX }
func (metx) Initial() float64 { return 0 }

// LinkCost is the forward delivery probability df itself; the cost algebra
// lives in Accumulate.
func (metx) LinkCost(e LinkEstimate) float64 { return e.DeliveryProb }

// Accumulate implements the recurrence C(s,d) = (C(s,u) + 1) / df(u,d)
// (paper Eq. 1 with unit transmission energy): the expected total number of
// transmissions by all path nodes for one packet to survive to the end.
func (metx) Accumulate(p, l float64) float64 {
	if l <= 0 {
		return math.Inf(1)
	}
	return (p + 1) / l
}
func (metx) Better(a, b float64) bool { return a < b }
func (metx) Worst() float64           { return math.Inf(1) }
func (metx) Usable(c float64) bool    { return !math.IsInf(c, 1) }

// ---- SPP ----

type spp struct{}

var _ PathMetric = spp{}

func (spp) Kind() Kind       { return SPP }
func (spp) Initial() float64 { return 1 }

// LinkCost is the forward delivery probability df.
func (spp) LinkCost(e LinkEstimate) float64 { return e.DeliveryProb }

// Accumulate multiplies probabilities: the resulting path cost is the
// probability that a broadcast packet traverses every link of the path.
func (spp) Accumulate(p, l float64) float64 {
	if l < 0 {
		l = 0
	}
	return p * l
}

// Better prefers the higher success probability — SPP is the only metric
// here that is maximized (§2.2).
func (spp) Better(a, b float64) bool { return a > b }
func (spp) Worst() float64           { return math.Inf(-1) }

// Usable requires a strictly positive success probability: a zero product
// means some link was dead or unmeasured.
func (spp) Usable(c float64) bool { return c > 0 }
