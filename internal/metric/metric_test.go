package metric

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func est(df float64) LinkEstimate { return LinkEstimate{DeliveryProb: df} }

func TestFigure1METXVsSPP(t *testing.T) {
	// Paper Figure 1: A−C−D has links (1, 1/3); A−B−D has links (0.25, 1).
	// METX scores A−C−D = 6 and A−B−D = 5, so METX picks A−B−D.
	// 1/SPP scores them 3 and 4, so SPP picks A−C−D — the higher-throughput
	// path, because it minimizes expected transmissions at the source.
	me := MustNew(METX)
	sp := MustNew(SPP)

	acd := []float64{1, 1.0 / 3.0}
	abd := []float64{0.25, 1}

	metxACD := PathCost(me, acd)
	metxABD := PathCost(me, abd)
	if !almost(metxACD, 6) || !almost(metxABD, 5) {
		t.Fatalf("METX costs = (%v, %v), want (6, 5)", metxACD, metxABD)
	}
	if !me.Better(metxABD, metxACD) {
		t.Fatal("METX should prefer A-B-D")
	}

	sppACD := PathCost(sp, acd)
	sppABD := PathCost(sp, abd)
	if !almost(1/sppACD, 3) || !almost(1/sppABD, 4) {
		t.Fatalf("1/SPP costs = (%v, %v), want (3, 4)", 1/sppACD, 1/sppABD)
	}
	if !sp.Better(sppACD, sppABD) {
		t.Fatal("SPP should prefer A-C-D")
	}
}

func TestFigure3ETXVsSPP(t *testing.T) {
	// Paper Figure 3: A−B−C−D has three 0.8 links; A−E−D has links
	// (0.9, 0.4). ETX slightly prefers the short path with the terrible
	// 0.4 link; SPP avoids it.
	ex := MustNew(ETX)
	sp := MustNew(SPP)

	long := []float64{1 / 0.8, 1 / 0.8, 1 / 0.8}
	short := []float64{1 / 0.9, 1 / 0.4}
	etxLong := PathCost(ex, long)
	etxShort := PathCost(ex, short)
	if !almost(etxLong, 3.75) {
		t.Fatalf("ETX(A-B-C-D) = %v, want 3.75", etxLong)
	}
	if math.Abs(etxShort-3.61) > 0.01 {
		t.Fatalf("ETX(A-E-D) = %v, want ~3.61", etxShort)
	}
	if !ex.Better(etxShort, etxLong) {
		t.Fatal("ETX should prefer the lossy short path (that is its flaw)")
	}

	sppLong := PathCost(sp, []float64{0.8, 0.8, 0.8})
	sppShort := PathCost(sp, []float64{0.9, 0.4})
	if !almost(sppLong, 0.512) || !almost(sppShort, 0.36) {
		t.Fatalf("SPP = (%v, %v), want (0.512, 0.36)", sppLong, sppShort)
	}
	if !sp.Better(sppLong, sppShort) {
		t.Fatal("SPP should prefer the long clean path")
	}
}

func TestLinkCosts(t *testing.T) {
	tests := []struct {
		name string
		kind Kind
		e    LinkEstimate
		want float64
	}{
		{"minhop", MinHop, est(0.5), 1},
		{"etx perfect", ETX, est(1), 1},
		{"etx half", ETX, est(0.5), 2},
		{"metx is df", METX, est(0.7), 0.7},
		{"spp is df", SPP, est(0.7), 0.7},
		{"pp is delay", PP, LinkEstimate{PairDelaySeconds: 0.004}, 0.004},
		{
			"ett",
			ETT,
			LinkEstimate{DeliveryProb: 0.5, BandwidthBps: 2e6, PacketBytes: 500},
			2 * 500 * 8 / 2e6,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MustNew(tt.kind).LinkCost(tt.e); !almost(got, tt.want) {
				t.Fatalf("LinkCost = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDeadLinkCosts(t *testing.T) {
	dead := est(0)
	if c := MustNew(ETX).LinkCost(dead); !math.IsInf(c, 1) {
		t.Fatalf("ETX dead link = %v, want +Inf", c)
	}
	if c := MustNew(ETT).LinkCost(LinkEstimate{}); !math.IsInf(c, 1) {
		t.Fatalf("ETT dead link = %v, want +Inf", c)
	}
	if c := MustNew(PP).LinkCost(LinkEstimate{}); !math.IsInf(c, 1) {
		t.Fatalf("PP unmeasured link = %v, want +Inf", c)
	}
	// A dead link drives METX to infinity and SPP to zero.
	me := MustNew(METX)
	if c := me.Accumulate(me.Initial(), me.LinkCost(dead)); !math.IsInf(c, 1) {
		t.Fatalf("METX across dead link = %v", c)
	}
	sp := MustNew(SPP)
	if c := sp.Accumulate(sp.Initial(), sp.LinkCost(dead)); c != 0 {
		t.Fatalf("SPP across dead link = %v, want 0", c)
	}
}

func TestWorstIsBeatenByAnyRealPath(t *testing.T) {
	for _, k := range All() {
		m := MustNew(k)
		// A modest three-link path with decent quality.
		cost := PathCostFromEstimates(m, []LinkEstimate{
			{DeliveryProb: 0.9, PairDelaySeconds: 0.002, BandwidthBps: 2e6, PacketBytes: 512},
			{DeliveryProb: 0.8, PairDelaySeconds: 0.003, BandwidthBps: 2e6, PacketBytes: 512},
			{DeliveryProb: 0.95, PairDelaySeconds: 0.002, BandwidthBps: 2e6, PacketBytes: 512},
		})
		if !m.Better(cost, m.Worst()) {
			t.Fatalf("%v: real path cost %v does not beat Worst %v", k, cost, m.Worst())
		}
		if m.Better(m.Worst(), cost) {
			t.Fatalf("%v: Worst beats a real path", k)
		}
	}
}

func TestMinHopCountsHops(t *testing.T) {
	m := MustNew(MinHop)
	cost := PathCostFromEstimates(m, make([]LinkEstimate, 5))
	if cost != 5 {
		t.Fatalf("MinHop 5-link path = %v, want 5", cost)
	}
	if !m.Better(3, 4) || m.Better(4, 3) || m.Better(3, 3) {
		t.Fatal("MinHop ordering wrong")
	}
}

func TestMETXAtLeastETXPlusHopsMinusOne(t *testing.T) {
	// METX counts retransmissions needed upstream of losses, so it always
	// dominates per-path ETX on the same links.
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		me, ex := MustNew(METX), MustNew(ETX)
		var metxC, etxC float64 = me.Initial(), ex.Initial()
		for _, r := range raw {
			df := 0.05 + 0.95*float64(r)/255 // df in [0.05, 1]
			metxC = me.Accumulate(metxC, df)
			etxC = ex.Accumulate(etxC, 1/df)
		}
		return metxC >= etxC-1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPPIsOrderIndependentMETXIsNot(t *testing.T) {
	sp, me := MustNew(SPP), MustNew(METX)
	ab := []float64{0.5, 0.9}
	ba := []float64{0.9, 0.5}
	if !almost(PathCost(sp, ab), PathCost(sp, ba)) {
		t.Fatal("SPP should be order independent (product)")
	}
	if almost(PathCost(me, ab), PathCost(me, ba)) {
		t.Fatal("METX should depend on link order: losses late in the path waste more upstream transmissions")
	}
	// A lossy link late in the path wastes every upstream transmission, so
	// it must cost more than the same lossy link early in the path.
	lossyEarly := PathCost(me, ab) // 0.5 first
	lossyLate := PathCost(me, ba)  // 0.5 last
	if lossyLate <= lossyEarly {
		t.Fatalf("METX: lossy-late = %v should exceed lossy-early = %v", lossyLate, lossyEarly)
	}
}

func TestSPPBoundedZeroOne(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		sp := MustNew(SPP)
		c := sp.Initial()
		for _, r := range raw {
			c = sp.Accumulate(c, float64(r)/255)
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Adding a link never improves a path, for every metric.
	if err := quick.Check(func(raw []uint8, extra uint8) bool {
		if len(raw) > 8 {
			return true
		}
		for _, k := range All() {
			m := MustNew(k)
			c := m.Initial()
			for _, r := range raw {
				df := 0.05 + 0.95*float64(r)/255
				c = m.Accumulate(c, m.LinkCost(LinkEstimate{
					DeliveryProb: df, PairDelaySeconds: 0.001 + 0.01*(1-df),
					BandwidthBps: 2e6 * df, PacketBytes: 512,
				}))
			}
			df := 0.05 + 0.95*float64(extra)/255
			c2 := m.Accumulate(c, m.LinkCost(LinkEstimate{
				DeliveryProb: df, PairDelaySeconds: 0.001 + 0.01*(1-df),
				BandwidthBps: 2e6 * df, PacketBytes: 512,
			}))
			if m.Better(c2, c) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range All() {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if parsed != k {
			t.Fatalf("round trip %v -> %q -> %v", k, k.String(), parsed)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind should fail for unknown name")
	}
	if got := Kind(99).String(); got != "metric(99)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind(0)); err == nil {
		t.Fatal("New(0) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) should panic")
		}
	}()
	MustNew(Kind(0))
}

func TestAllContainsEveryMetricOnce(t *testing.T) {
	seen := map[Kind]bool{}
	for _, k := range All() {
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
	}
	if len(seen) != 6 {
		t.Fatalf("All() has %d kinds, want 6", len(seen))
	}
	for _, k := range LinkQuality() {
		if k == MinHop {
			t.Fatal("LinkQuality() must not contain MinHop")
		}
		if !seen[k] {
			t.Fatalf("LinkQuality() kind %v missing from All()", k)
		}
	}
	if len(LinkQuality()) != 5 {
		t.Fatalf("LinkQuality() has %d kinds, want 5", len(LinkQuality()))
	}
}
