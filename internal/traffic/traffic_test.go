package traffic

import (
	"testing"
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/odmrp"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

// newRouter returns a router whose sends are captured in the returned slice.
func newRouter(engine *sim.Engine) (*odmrp.Router, *[]*packet.Packet) {
	table := linkquality.NewTable(512, 10, 0)
	r := odmrp.New(engine, 0, metric.MustNew(metric.SPP), table, odmrp.DefaultParams())
	var sent []*packet.Packet
	r.Send = func(p *packet.Packet) bool {
		sent = append(sent, p)
		return true
	}
	return r, &sent
}

func TestCBRSendsAtConfiguredRate(t *testing.T) {
	engine := sim.NewEngine(1)
	r, sent := newRouter(engine)
	cbr := NewCBR(engine, r, CBRConfig{
		Group:        1,
		PayloadBytes: 512,
		Interval:     50 * time.Millisecond,
	})
	cbr.Start()
	engine.Run(10 * time.Second)
	// 20 pkt/s for ~10 s ≈ 200 data packets (plus control floods).
	data := 0
	for _, p := range *sent {
		if p.Kind == packet.TypeData {
			data++
			if p.PayloadBytes != 512 {
				t.Fatalf("payload = %d", p.PayloadBytes)
			}
		}
	}
	if data < 190 || data > 210 {
		t.Fatalf("data packets = %d, want ~200", data)
	}
	if cbr.Sent != uint64(data) {
		t.Fatalf("Sent = %d, data = %d", cbr.Sent, data)
	}
}

func TestCBRStartDelay(t *testing.T) {
	engine := sim.NewEngine(1)
	r, sent := newRouter(engine)
	cbr := NewCBR(engine, r, CBRConfig{
		Group:        1,
		PayloadBytes: 100,
		Interval:     50 * time.Millisecond,
		Start:        5 * time.Second,
	})
	cbr.Start()
	engine.Run(4 * time.Second)
	for _, p := range *sent {
		if p.Kind == packet.TypeData {
			t.Fatal("data sent before the configured start")
		}
	}
	engine.Run(10 * time.Second)
	if cbr.Sent == 0 {
		t.Fatal("no data sent after start")
	}
}

func TestCBRStartRegistersSource(t *testing.T) {
	engine := sim.NewEngine(1)
	r, sent := newRouter(engine)
	NewCBR(engine, r, CBRConfig{Group: 3, PayloadBytes: 100, Interval: time.Second}).Start()
	engine.Run(100 * time.Millisecond)
	// StartSource floods a JOIN QUERY immediately.
	query := false
	for _, p := range *sent {
		if p.Kind == packet.TypeJoinQuery && p.Group == 3 {
			query = true
		}
	}
	if !query {
		t.Fatal("CBR did not register the router as an ODMRP source")
	}
}

func TestCBRStopAt(t *testing.T) {
	engine := sim.NewEngine(1)
	r, _ := newRouter(engine)
	cbr := NewCBR(engine, r, CBRConfig{
		Group:        1,
		PayloadBytes: 100,
		Interval:     50 * time.Millisecond,
		Stop:         2 * time.Second,
	})
	cbr.Start()
	engine.Run(10 * time.Second)
	// ~40 packets in 2 s, then nothing.
	if cbr.Sent < 35 || cbr.Sent > 45 {
		t.Fatalf("Sent = %d, want ~40", cbr.Sent)
	}
}

func TestCBRStopNow(t *testing.T) {
	engine := sim.NewEngine(1)
	r, _ := newRouter(engine)
	cbr := NewCBR(engine, r, CBRConfig{Group: 1, PayloadBytes: 100, Interval: 50 * time.Millisecond})
	cbr.Start()
	engine.Run(time.Second)
	atStop := cbr.Sent
	cbr.StopNow()
	engine.Run(5 * time.Second)
	if cbr.Sent != atStop {
		t.Fatalf("Sent grew after StopNow: %d -> %d", atStop, cbr.Sent)
	}
}

func TestCBRJitterVariesGaps(t *testing.T) {
	engine := sim.NewEngine(7)
	r, sent := newRouter(engine)
	NewCBR(engine, r, CBRConfig{
		Group:        1,
		PayloadBytes: 100,
		Interval:     50 * time.Millisecond,
		Jitter:       5 * time.Millisecond,
	}).Start()
	engine.Run(3 * time.Second)
	var times []time.Duration
	for _, p := range *sent {
		if p.Kind == packet.TypeData {
			times = append(times, p.SentAt)
		}
	}
	if len(times) < 10 {
		t.Fatalf("too few packets: %d", len(times))
	}
	varied := false
	for i := 2; i < len(times); i++ {
		if times[i]-times[i-1] != times[i-1]-times[i-2] {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("jitter produced perfectly regular gaps")
	}
}
