// Package traffic provides application-layer workload generators for the
// simulation: constant-bit-rate multicast sources matching the paper's
// workload (512-byte packets at 20 packets/second).
package traffic

import (
	"time"

	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

// CBRConfig describes a constant-bit-rate multicast flow.
type CBRConfig struct {
	// Group is the destination multicast group.
	Group packet.GroupID
	// PayloadBytes is the application payload per packet (paper: 512).
	PayloadBytes int
	// Interval is the inter-packet gap (paper: 50 ms = 20 pkt/s).
	Interval time.Duration
	// Jitter adds a uniform [0, Jitter) offset per packet to avoid phase
	// lock between flows.
	Jitter time.Duration
	// Start delays the first packet.
	Start time.Duration
	// Stop ends the flow (zero = never).
	Stop time.Duration
}

// DefaultCBR returns the paper's CBR workload for a group: 512-byte packets
// at 20 packets/second.
func DefaultCBR(group packet.GroupID) CBRConfig {
	return CBRConfig{
		Group:        group,
		PayloadBytes: 512,
		Interval:     50 * time.Millisecond,
		Jitter:       5 * time.Millisecond,
	}
}

// Source is the slice of the multicast protocol a traffic generator
// drives: source registration and data emission.
type Source interface {
	StartSource(group packet.GroupID)
	StopSource(group packet.GroupID)
	SendData(group packet.GroupID, payloadBytes int)
}

// CBR drives a router as a multicast source.
type CBR struct {
	// Sent counts packets handed to the router.
	Sent uint64
	// OnSend, when non-nil, observes each data packet's send time.
	OnSend func(at time.Duration)

	router  Source
	engine  *sim.Engine
	rng     *sim.RNG
	cfg     CBRConfig
	ticker  *sim.Ticker
	paused  bool
	started bool
}

// NewCBR creates a CBR source on router; call Start to begin.
func NewCBR(engine *sim.Engine, router Source, cfg CBRConfig) *CBR {
	return &CBR{
		router: router,
		engine: engine,
		rng:    engine.RNG().Split(),
		cfg:    cfg,
	}
}

// Start registers the router as a multicast source and schedules the flow.
func (c *CBR) Start() {
	c.engine.Schedule(c.cfg.Start, func() {
		c.started = true
		if c.paused {
			// The source crashed before its start time; Resume will begin
			// the flow once the node comes back.
			return
		}
		c.begin()
	})
}

// begin registers the source flood and the emission ticker. StartSource is
// idempotent, so resuming a flow whose router kept its source state (a pause
// without a crash) does not double-register.
func (c *CBR) begin() {
	c.router.StartSource(c.cfg.Group)
	c.ticker = sim.NewTicker(c.engine, c.cfg.Interval, c.cfg.Jitter, c.rng, c.emit)
}

// Pause suspends emission, as when the source node crashes: no packets are
// sent (and Sent does not grow) until Resume. Safe to call repeatedly.
func (c *CBR) Pause() {
	if c.paused {
		return
	}
	c.paused = true
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// Resume restarts a paused flow. It re-registers the source with the router —
// a crash wipes the router's source state (Protocol.Reset), so the protocol's
// route-refresh activity must be rebuilt, not just the emission ticker.
func (c *CBR) Resume() {
	if !c.paused {
		return
	}
	c.paused = false
	if c.started {
		c.begin()
	}
}

func (c *CBR) emit() {
	if c.cfg.Stop > 0 && c.engine.Now() >= c.cfg.Stop {
		c.StopNow()
		return
	}
	c.router.SendData(c.cfg.Group, c.cfg.PayloadBytes)
	c.Sent++
	if c.OnSend != nil {
		c.OnSend(c.engine.Now())
	}
}

// StopNow halts the flow and the source's route-refresh activity.
func (c *CBR) StopNow() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	c.router.StopSource(c.cfg.Group)
}
