package phy

import (
	"time"

	"meshcast/internal/packet"
	"meshcast/internal/propagation"
)

// The static link cache.
//
// Radio positions change only at discrete MoveRadio calls, so the per-(tx,
// rx) geometry — distance, mean received power under the path-loss model,
// and propagation delay — is invariant between moves. The seed
// implementation recomputed all of it for every receiver of every frame,
// which dominated the transmit fan-out on the paper's 50-node topologies.
// Instead, the medium lazily precomputes one candidate-receiver list per
// transmitter the first time that transmitter is heard, and reuses it for
// every subsequent frame until an attach or a move invalidates it.
//
// Determinism contract: the cached fan-out must draw from the medium's RNG
// in exactly the order the uncached loop does, so that fixed-seed runs are
// byte-identical with the cache on or off (the golden regression test in
// internal/experiments asserts this). The list therefore keeps radios in
// attach order and bakes in the same skip set: under the physics models,
// pairs whose mean power is below ignoreBelowW are dropped up front — the
// uncached loop skips them before any fading draw — and under a LinkFunc
// every other radio is a candidate, because the oracle is consulted per
// frame. Radio power state (SetDown) is deliberately not part of the cache;
// a down radio still receives arrivals and discards them at delivery, same
// as the uncached path.
//
// The cache is invalidated by SetLinkFunc (the skip set changes shape) and,
// incrementally, by AttachRadio and MoveRadio: only transmitters within the
// interference radius of the new radio (for a move: of either endpoint) can
// see their candidate set change, so only their lists are discarded (see
// invalidateLinksAround and invalidateLinksMoved in grid.go).

// link is one precomputed (tx, rx) entry: the receiver, its mean (pre-fading)
// received power — zero and unused when a LinkFunc is active — and the
// propagation delay to it.
type link struct {
	rx        *Radio
	meanPower float64
	propDelay time.Duration
}

// linksFrom returns src's candidate-receiver list, building it on first use.
func (m *Medium) linksFrom(src *Radio) []link {
	if m.links == nil {
		m.links = make([][]link, len(m.radios))
	}
	ls := m.links[src.index]
	if ls == nil {
		ls = m.buildLinks(src)
		m.links[src.index] = ls
	}
	return ls
}

// buildLinks computes src's candidate list in radio-attach order. Under the
// physics models it probes the spatial cell index when one is available
// (grid.go); under a LinkFunc oracle every other radio is a candidate, so
// the index cannot narrow anything and the brute-force scan runs.
func (m *Medium) buildLinks(src *Radio) []link {
	if m.linkFunc == nil && m.grid != nil && !m.gridOff {
		return m.buildLinksIndexed(src)
	}
	return m.buildLinksBrute(src)
}

// buildLinksBrute is the reference all-radios scan the cell index replaced;
// it stays as the fallback (LinkFunc, no computable interference radius,
// MESHCAST_NO_CELL_INDEX) and as the oracle the index is tested against.
func (m *Medium) buildLinksBrute(src *Radio) []link {
	ls := make([]link, 0, len(m.radios)-1)
	for _, rx := range m.radios {
		if rx == src {
			continue
		}
		d := src.Pos.Distance(rx.Pos)
		var mean float64
		if m.linkFunc == nil {
			mean = m.pathLoss.ReceivedPower(m.params.TxPowerW, d)
			if mean < m.ignoreBelowW {
				continue
			}
		}
		ls = append(ls, link{rx: rx, meanPower: mean, propDelay: propagation.Delay(d)})
	}
	return ls
}

// invalidateLinks discards every cached candidate list.
func (m *Medium) invalidateLinks() { m.links = nil }

// LinksConsistent reports whether src's cached candidate list (built on
// demand) matches a brute-force recomputation entry for entry. It exists so
// integration tests outside this package — the mobility subsystem moves
// radios mid-run — can assert the incremental invalidation never leaves a
// stale list behind.
func (m *Medium) LinksConsistent(src *Radio) bool {
	got, want := m.linksFrom(src), m.buildLinksBrute(src)
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// SetLinkCache enables or disables the static link cache (enabled by
// default; setting the MESHCAST_NO_LINK_CACHE environment variable disables
// it at construction). Both paths produce byte-identical simulations; the
// uncached path exists so benchmarks and the determinism regression tests
// can compare against the recompute-everything fan-out.
func (m *Medium) SetLinkCache(enabled bool) {
	m.cacheOff = !enabled
	m.invalidateLinks()
}

// newArrival takes an arrival from the pool (or allocates one) and
// initializes it for one (frame, receiver) delivery.
func (m *Medium) newArrival(rx *Radio, f *packet.Frame, power float64) *arrival {
	var a *arrival
	if n := len(m.arrivalPool); n > 0 {
		a = m.arrivalPool[n-1]
		m.arrivalPool[n-1] = nil
		m.arrivalPool = m.arrivalPool[:n-1]
	} else {
		a = new(arrival)
	}
	a.rx, a.frame, a.power = rx, f, power
	return a
}

// freeArrival returns a finished arrival to the pool. Arrivals allocated by
// the uncached path are not pooled (the pool would only ever grow); they are
// left to the garbage collector, matching the seed implementation.
func (m *Medium) freeArrival(a *arrival) {
	if m.cacheOff {
		return
	}
	a.rx, a.frame, a.power, a.corrupted = nil, nil, 0, false
	m.arrivalPool = append(m.arrivalPool, a)
}

// Static event callbacks for sim.Engine.ScheduleArg: scheduling through
// these instead of fresh closures removes two allocations per (frame,
// receiver) pair from the transmit fan-out.
func beginArrivalThunk(x any) { a := x.(*arrival); a.rx.beginArrival(a) }
func endArrivalThunk(x any)   { a := x.(*arrival); a.rx.endArrival(a) }
func txEndThunk(x any)        { r := x.(*Radio); r.notifyBusy(r.CarrierBusy()) }
