// Package phy models the physical layer: a shared wireless medium that
// distributes frames to radios according to a propagation model, per-packet
// Rayleigh fading, half-duplex radios, carrier sensing, and a capture-based
// collision model.
//
// Every simulated transmission fans out to all radios whose mean received
// power is non-negligible. Each (packet, receiver) pair gets an independent
// fading draw; a receiver locks onto the first decodable arrival and loses it
// if a sufficiently strong overlapping arrival appears (no capture) or if the
// receiver itself transmits (half duplex).
//
// Node positions change only through Medium.MoveRadio (mobility models), so
// the fan-out runs off a precomputed per-transmitter link cache (distance,
// mean power, propagation delay — see cache.go and docs/PERFORMANCE.md) that
// a move invalidates incrementally; the cached and uncached paths are
// byte-identical by construction.
package phy

import (
	"os"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/trace"
)

// Params configures all radios on a medium.
type Params struct {
	// TxPowerW is the transmit power in watts.
	TxPowerW float64
	// RxThresholdW is the minimum instantaneous power to decode a frame.
	RxThresholdW float64
	// CSThresholdW is the minimum instantaneous power to sense the channel
	// busy (and to count as interference).
	CSThresholdW float64
	// CaptureRatio is the linear power ratio by which a locked frame must
	// exceed an interferer to survive the overlap (10 ≈ 10 dB).
	CaptureRatio float64
	// BitrateBps is the channel bitrate. The paper uses 2 Mbps, the 802.11
	// broadcast basic rate.
	BitrateBps float64
	// PreambleDelay is the fixed PHY preamble+PLCP header time prepended
	// to every frame (192 µs for 802.11 long preamble at 1 Mbps PLCP).
	PreambleDelay time.Duration
}

// DefaultParams returns the parameters used throughout the paper's
// simulations: 2 Mbps channel, WaveLAN thresholds giving 250 m range and
// 550 m carrier sense, 10 dB capture.
func DefaultParams() Params {
	return Params{
		TxPowerW:      propagation.DefaultTxPowerW,
		RxThresholdW:  propagation.DefaultRxThresholdW,
		CSThresholdW:  propagation.DefaultCSThresholdW,
		CaptureRatio:  10,
		BitrateBps:    2e6,
		PreambleDelay: 192 * time.Microsecond,
	}
}

// AirTime returns the on-air duration of size bytes at the configured rate,
// including the PHY preamble.
func (p Params) AirTime(sizeBytes int) time.Duration {
	bits := float64(sizeBytes * 8)
	return p.PreambleDelay + time.Duration(bits/p.BitrateBps*float64(time.Second))
}

// Medium is the shared wireless channel. It owns all radios and delivers
// transmissions between them. Medium is driven entirely by the simulation
// engine's event loop and must not be used concurrently.
type Medium struct {
	engine   *sim.Engine
	pathLoss propagation.PathLoss
	fading   propagation.Fading
	rng      *sim.RNG
	params   Params
	radios   []*Radio

	// ignoreBelowW: arrivals with mean power under this are not modeled at
	// all. Set well below the CS threshold so that fading can never lift
	// an ignored arrival above it.
	ignoreBelowW float64

	// linkFunc, when set, replaces path loss + fading entirely: it returns
	// the instantaneous received power for a (tx, rx) pair. Trace-driven
	// emulations (the paper's 8-node testbed) use it to impose measured
	// per-link loss classes while keeping the MAC and collision machinery.
	linkFunc LinkFunc

	// impair, when set, injects per-(tx, rx) faults on top of the power
	// model (see ImpairFunc).
	impair ImpairFunc

	// links is the static link cache (see cache.go): per transmitter index,
	// the precomputed candidate receivers in attach order. nil means not
	// built; cacheOff forces the recompute-everything fan-out.
	links    [][]link
	cacheOff bool

	// grid is the spatial cell index (see grid.go): radios bucketed into
	// cells sized to the interference radius implied by ignoreBelowW, so
	// candidate-list construction probes ~9 cells instead of every radio.
	// nil when no interference radius exists for the path-loss model;
	// gridOff forces the brute-force builder while keeping the cache.
	grid    *cellIndex
	gridOff bool
	// scratch is a reusable buffer for cell-neighborhood probes.
	scratch []*Radio

	// arrivalPool recycles arrival objects between frames (cached path
	// only); arrivals live from transmit until their endArrival event.
	arrivalPool []*arrival

	// OnTransmit, when set, observes every frame as it is put on the air
	// (packet capture, statistics).
	OnTransmit func(at time.Duration, f *packet.Frame)

	// Telem holds the medium-wide telemetry instruments, shared by every
	// attached radio. The zero value is disabled.
	Telem Telemetry

	// Tracer emits packet-journey spans for decoded arrivals (nil
	// disables). Shared by every attached radio, like Telem.
	Tracer *trace.Tracer
}

// LinkFunc computes the instantaneous received power in watts for one
// transmission from tx to rx at virtual time now. Returning 0 removes the
// pair from the simulation entirely (not even carrier sense).
type LinkFunc func(tx, rx packet.NodeID, now time.Duration, rng *sim.RNG) float64

// SetLinkFunc installs a link oracle; pass nil to restore the physics
// models. Switching models invalidates the static link cache (the physics
// candidate lists skip sub-ignoreBelowW pairs; an oracle is consulted for
// every pair).
func (m *Medium) SetLinkFunc(f LinkFunc) {
	m.linkFunc = f
	m.invalidateLinks()
}

// Impairment is an externally injected degradation of one (tx, rx) pair at
// one instant: an extra drop probability (burst loss, jamming) and a linear
// attenuation factor applied to the received power (asymmetric degradation,
// shadowing episodes). The zero value means "unimpaired".
type Impairment struct {
	// DropProb is an extra independent loss probability in [0, 1]; 1 removes
	// the arrival entirely (not even carrier sense).
	DropProb float64
	// Attenuation scales the received power; 0 is treated as 1 (none).
	Attenuation float64
}

// ImpairFunc reports the current impairment for a transmission from tx to
// rx at virtual time now. It is consulted on top of whichever power model is
// active (physics or LinkFunc), which lets fault injection compose with both
// simulated and trace-driven media.
type ImpairFunc func(tx, rx packet.NodeID, now time.Duration) Impairment

// SetImpairment installs a fault-injection hook; pass nil to remove it.
func (m *Medium) SetImpairment(f ImpairFunc) { m.impair = f }

// NewMedium creates a medium using the engine's clock, the given propagation
// and fading models, and radio parameters.
func NewMedium(engine *sim.Engine, pathLoss propagation.PathLoss, fading propagation.Fading, params Params) *Medium {
	m := &Medium{
		engine:       engine,
		pathLoss:     pathLoss,
		fading:       fading,
		rng:          engine.RNG().Split(),
		params:       params,
		ignoreBelowW: params.CSThresholdW / 200,
		cacheOff:     os.Getenv("MESHCAST_NO_LINK_CACHE") != "",
		gridOff:      os.Getenv("MESHCAST_NO_CELL_INDEX") != "",
	}
	if radius := interferenceRadius(pathLoss, params.TxPowerW, m.ignoreBelowW); radius > 0 {
		m.grid = newCellIndex(radius)
	}
	return m
}

// Params returns the radio parameters shared by all radios on the medium.
func (m *Medium) Params() Params { return m.params }

// AttachRadio creates a radio for node id at position pos and registers it.
// Positions change only through MoveRadio (never by writing Radio.Pos
// directly); the link cache and cell index depend on it.
func (m *Medium) AttachRadio(id packet.NodeID, pos geom.Point) *Radio {
	r := &Radio{
		ID:     id,
		Pos:    pos,
		medium: m,
		index:  len(m.radios),
	}
	m.radios = append(m.radios, r)
	if m.grid != nil {
		m.grid.add(r)
	}
	m.invalidateLinksAround(r)
	return r
}

// Radios returns the attached radios (shared slice; callers must not
// modify).
func (m *Medium) Radios() []*Radio { return m.radios }

// MoveRadio relocates r to pos, rebucketing it in the spatial cell index and
// invalidating exactly the candidate lists the move can change: r's own list
// plus every transmitter in the 3×3 cell neighborhoods of both the old and
// the new position (anyone farther away could not hear r before the move and
// cannot after it). The incremental invalidation is byte-identical to
// discarding the whole cache — the property test in grid_test.go pins it —
// but leaves distant transmitters' lists warm, which is what keeps
// city-scale runs fast while nodes move.
//
// A move affects future transmissions only: frames already in flight carry
// the power and propagation delay computed when they were put on the air
// (no Doppler, no mid-flight re-routing), matching how the uncached fan-out
// behaves.
func (m *Medium) MoveRadio(r *Radio, pos geom.Point) {
	if r.Pos == pos {
		return
	}
	old := r.Pos
	if m.grid != nil {
		m.grid.move(r, pos)
	}
	r.Pos = pos
	m.Telem.RadioMoves.Inc()
	m.invalidateLinksMoved(r, old)
}

// MeanPower returns the mean (pre-fading) received power at distance d.
func (m *Medium) MeanPower(d float64) float64 {
	return m.pathLoss.ReceivedPower(m.params.TxPowerW, d)
}

// DeliveryProbability returns the analytic per-packet delivery probability
// between two positions under the medium's path-loss and fading models.
// Used by topology tools and optimal-route analysis.
//
// Contract: the answer covers the *unimpaired physics* only — interference
// and any SetImpairment hook are deliberately ignored (impairments are
// per-(node, node, time) faults; a position pair has no well-defined answer
// under them). When a LinkFunc oracle replaces the physics models there is
// no analytic answer at all — the medium no longer delivers according to
// position-based path loss — so rather than silently reporting connectivity
// the medium won't deliver, the call panics; query the oracle itself, or
// restore the physics models with SetLinkFunc(nil) first.
func (m *Medium) DeliveryProbability(a, b geom.Point) float64 {
	if m.linkFunc != nil {
		panic("phy: DeliveryProbability is undefined while a LinkFunc oracle is active; query the oracle or SetLinkFunc(nil) first")
	}
	mean := m.MeanPower(a.Distance(b))
	if _, ok := m.fading.(propagation.NoFading); ok {
		if mean >= m.params.RxThresholdW {
			return 1
		}
		return 0
	}
	return propagation.ReceptionProbability(mean, m.params.RxThresholdW)
}

// transmit distributes a frame from radio src across the medium. The cached
// fan-out iterates src's precomputed candidate list; per candidate it only
// draws the fading (or oracle) power, consults the impairment hook, and
// schedules the pooled arrival's begin/end events through static callbacks.
// The RNG draw order is identical to transmitUncached's by construction —
// see the determinism contract in cache.go.
func (m *Medium) transmit(src *Radio, frame *packet.Frame, airtime time.Duration) {
	if m.OnTransmit != nil {
		m.OnTransmit(m.engine.Now(), frame)
	}
	if m.cacheOff {
		m.transmitUncached(src, frame, airtime)
		return
	}
	now := m.engine.Now()
	links := m.linksFrom(src)
	for i := range links {
		l := &links[i]
		var power float64
		if m.linkFunc != nil {
			power = m.linkFunc(src.ID, l.rx.ID, now, m.rng)
		} else {
			power = m.fading.Apply(l.meanPower, m.rng)
		}
		if m.impair != nil {
			imp := m.impair(src.ID, l.rx.ID, now)
			if imp.DropProb >= 1 || (imp.DropProb > 0 && m.rng.Float64() < imp.DropProb) {
				continue
			}
			if imp.Attenuation > 0 {
				power *= imp.Attenuation
			}
		}
		if power < m.ignoreBelowW {
			continue
		}
		a := m.newArrival(l.rx, frame, power)
		m.engine.ScheduleArgPooled(l.propDelay, beginArrivalThunk, a)
		m.engine.ScheduleArgPooled(l.propDelay+airtime, endArrivalThunk, a)
	}
}

// transmitUncached is the recompute-everything fan-out the link cache
// replaced, kept as the reference path for determinism tests and benchmarks
// (SetLinkCache(false), MESHCAST_NO_LINK_CACHE).
func (m *Medium) transmitUncached(src *Radio, frame *packet.Frame, airtime time.Duration) {
	// One clock read for the whole fan-out, like the cached path: the two
	// loops must hand LinkFunc/ImpairFunc the same timestamps so they cannot
	// diverge if a hook ever advances the clock, and the reference path
	// should not pay N redundant Now() calls either.
	now := m.engine.Now()
	for _, rx := range m.radios {
		if rx == src {
			continue
		}
		var power float64
		if m.linkFunc != nil {
			power = m.linkFunc(src.ID, rx.ID, now, m.rng)
		} else {
			mean := m.pathLoss.ReceivedPower(m.params.TxPowerW, src.Pos.Distance(rx.Pos))
			if mean < m.ignoreBelowW {
				continue
			}
			power = m.fading.Apply(mean, m.rng)
		}
		if m.impair != nil {
			imp := m.impair(src.ID, rx.ID, now)
			if imp.DropProb >= 1 || (imp.DropProb > 0 && m.rng.Float64() < imp.DropProb) {
				continue
			}
			if imp.Attenuation > 0 {
				power *= imp.Attenuation
			}
		}
		if power < m.ignoreBelowW {
			continue
		}
		propDelay := propagation.Delay(src.Pos.Distance(rx.Pos))
		// The arrival itself is deliberately not pooled here (see freeArrival),
		// but the two events per receiver go through the engine's event pool —
		// the same static thunks as the cached path, so event times and
		// ordering are identical by construction.
		a := &arrival{rx: rx, frame: frame, power: power}
		m.engine.ScheduleArgPooled(propDelay, beginArrivalThunk, a)
		m.engine.ScheduleArgPooled(propDelay+airtime, endArrivalThunk, a)
	}
}

// arrival is one frame's signal as seen by one receiver.
type arrival struct {
	rx        *Radio
	frame     *packet.Frame
	power     float64
	corrupted bool
	index     int // position in rx.arrivals while in flight
}

// RadioStats counts PHY-level outcomes at one radio.
type RadioStats struct {
	// FramesSent counts transmissions started.
	FramesSent uint64
	// FramesDelivered counts frames decoded and handed to the MAC.
	FramesDelivered uint64
	// Collisions counts locked frames lost to interference.
	Collisions uint64
	// BelowThreshold counts arrivals too weak to decode (fading/path loss).
	BelowThreshold uint64
	// HalfDuplexLoss counts frames that arrived while transmitting.
	HalfDuplexLoss uint64
}

// Radio is one node's half-duplex transceiver.
type Radio struct {
	// ID is the owning node.
	ID packet.NodeID
	// Pos is the radio's current position. Read-only for callers: moves must
	// go through Medium.MoveRadio so the cell index and link cache track the
	// change.
	Pos geom.Point

	// ReceiveFrame is invoked for every successfully decoded frame. Set by
	// the MAC layer.
	ReceiveFrame func(f *packet.Frame)
	// BusyChanged is invoked when physical carrier sense changes state.
	// Set by the MAC layer.
	BusyChanged func(busy bool)

	// Stats accumulates PHY outcome counters.
	Stats RadioStats

	medium *Medium
	index  int // position in medium.radios (cache key)
	down   bool
	// txUntil is the virtual time the radio's last transmission leaves the
	// air. Tracking the end time instead of a boolean keeps the radio deaf
	// for the union of overlapping transmissions: a second Transmit before
	// the first ends extends the window rather than being cut short by the
	// first frame's end event.
	txUntil     time.Duration
	locked      *arrival
	arrivals    []*arrival
	sensedPower float64 // sum of in-flight arrival powers
	lastBusy    bool    // last state reported through BusyChanged
}

// transmitting reports whether the radio still has a frame on the air.
func (r *Radio) transmitting() bool { return r.medium.engine.Now() < r.txUntil }

// AirTime returns the on-air duration of a frame of the given size under
// the medium's parameters.
func (r *Radio) AirTime(sizeBytes int) time.Duration {
	return r.medium.params.AirTime(sizeBytes)
}

// SetDown powers the radio off (down=true) or on. A powered-off radio
// neither transmits nor decodes: in-flight arrivals are abandoned and later
// ones pass through as if the antenna were disconnected. Fault injection
// uses this to model node crashes.
//
// Both transitions re-derive physical carrier sense immediately: powering
// down while the channel is busy must release a MAC deferring on a stale
// busy report, and powering up amid in-flight arrivals must report the busy
// channel at once — not at the next arrival edge, which could be a whole
// frame away.
func (r *Radio) SetDown(down bool) {
	r.down = down
	if down && r.locked != nil {
		r.locked.corrupted = true
		r.locked = nil
	}
	r.notifyBusy(r.CarrierBusy())
}

// Down reports whether the radio is powered off.
func (r *Radio) Down() bool { return r.down }

// Transmit puts a frame on the air and returns its airtime. The caller (MAC)
// is responsible for deferring until the channel is idle; the radio itself
// will transmit regardless (that is what makes collisions possible). A
// powered-off radio silently discards the frame (zero airtime).
func (r *Radio) Transmit(f *packet.Frame) time.Duration {
	if r.down {
		r.medium.Telem.RadioDownDrops.Inc()
		return 0
	}
	airtime := r.medium.params.AirTime(f.SizeBytes())
	r.Stats.FramesSent++
	r.medium.Telem.FramesSent.Inc()
	if end := r.medium.engine.Now() + airtime; end > r.txUntil {
		r.txUntil = end
	}
	// Half duplex: anything currently being received is lost.
	if r.locked != nil {
		r.locked.corrupted = true
		r.Stats.HalfDuplexLoss++
		r.medium.Telem.HalfDuplexLoss.Inc()
		r.locked = nil
	}
	r.medium.transmit(r, f, airtime)
	// Re-derive carrier sense when this frame leaves the air; with an
	// earlier overlapping transmission still out, CarrierBusy stays true
	// (txUntil covers it) and the notification is a no-op.
	r.medium.engine.ScheduleArgPooled(airtime, txEndThunk, r)
	r.notifyBusy(true)
	return airtime
}

// CarrierBusy reports physical carrier sense: the radio is transmitting or
// the total in-flight power exceeds the carrier-sense threshold.
func (r *Radio) CarrierBusy() bool {
	if r.down {
		return false
	}
	return r.transmitting() || r.sensedPower >= r.medium.params.CSThresholdW
}

func (r *Radio) notifyBusy(busy bool) {
	if busy == r.lastBusy {
		return
	}
	r.lastBusy = busy
	if r.BusyChanged != nil {
		r.BusyChanged(busy)
	}
}

func (r *Radio) beginArrival(a *arrival) {
	a.index = len(r.arrivals)
	r.arrivals = append(r.arrivals, a)
	r.sensedPower += a.power

	switch {
	case r.down:
		// Powered off: the signal passes through undetected. It still sits
		// in arrivals/sensedPower so endArrival stays symmetric, but a dead
		// radio reports no carrier and decodes nothing. Only decodable
		// arrivals count as drops: a sub-threshold signal would have been
		// lost with the radio up too (see docs/OBSERVABILITY.md).
		a.corrupted = true
		if a.power >= r.medium.params.RxThresholdW {
			r.medium.Telem.RadioDownDrops.Inc()
		}
	case r.transmitting():
		// Receiver deaf while transmitting.
		a.corrupted = true
		r.Stats.HalfDuplexLoss++
		r.medium.Telem.HalfDuplexLoss.Inc()
	case a.power < r.medium.params.RxThresholdW:
		// Too weak to decode; still contributes interference and carrier
		// sense.
		a.corrupted = true
		r.Stats.BelowThreshold++
		r.medium.Telem.BelowThreshold.Inc()
	case r.locked == nil:
		// Try to lock. Existing interference may already drown the frame.
		interference := r.sensedPower - a.power
		if interference > 0 && a.power < r.medium.params.CaptureRatio*interference {
			a.corrupted = true
			r.Stats.Collisions++
			r.medium.Telem.Collisions.Inc()
		} else {
			if interference > 0 {
				r.medium.Telem.CaptureWins.Inc()
			}
			r.locked = a
		}
	default:
		// Already locked onto another frame: this arrival cannot be
		// decoded, and it may also destroy the locked frame unless the
		// locked frame captures it.
		a.corrupted = true
		if r.locked.power < r.medium.params.CaptureRatio*a.power {
			r.locked.corrupted = true
			r.locked = nil
			r.Stats.Collisions++
			r.medium.Telem.Collisions.Inc()
		} else {
			r.medium.Telem.CaptureWins.Inc()
		}
	}

	r.notifyBusy(r.CarrierBusy())
}

func (r *Radio) endArrival(a *arrival) {
	// Swap-remove by the index recorded in beginArrival; arrival order in
	// the slice carries no meaning (sensedPower is a sum, locking is
	// tracked separately), so O(1) bookkeeping replaces the linear scan.
	i, last := a.index, len(r.arrivals)-1
	r.arrivals[i] = r.arrivals[last]
	r.arrivals[i].index = i
	r.arrivals[last] = nil
	r.arrivals = r.arrivals[:last]
	r.sensedPower -= a.power
	if r.sensedPower < 0 {
		r.sensedPower = 0 // guard against float drift
	}
	if r.locked == a {
		r.locked = nil
		if !a.corrupted {
			r.Stats.FramesDelivered++
			r.medium.Telem.FramesDelivered.Inc()
			r.medium.Tracer.Span(trace.SpanPhyArrive, r.ID, a.frame.Src, a.frame.Payload)
			if r.ReceiveFrame != nil {
				r.ReceiveFrame(a.frame)
			}
		}
	}
	r.notifyBusy(r.CarrierBusy())
	r.medium.freeArrival(a)
}
