package phy

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/telemetry"
)

func newTestMedium(t *testing.T, fading propagation.Fading) (*sim.Engine, *Medium) {
	t.Helper()
	engine := sim.NewEngine(42)
	medium := NewMedium(engine, propagation.NewTwoRay(), fading, DefaultParams())
	return engine, medium
}

func dataFrame(src packet.NodeID, bytes int) *packet.Frame {
	return &packet.Frame{
		Kind:    packet.FrameData,
		Src:     src,
		Dst:     packet.Broadcast,
		Payload: &packet.Packet{Kind: packet.TypeData, Src: src, PayloadBytes: bytes},
	}
}

func TestAirTime(t *testing.T) {
	p := DefaultParams()
	// 1000 bytes = 8000 bits at 2 Mbps = 4 ms, plus 192 µs preamble.
	got := p.AirTime(1000)
	want := 4*time.Millisecond + 192*time.Microsecond
	if got != want {
		t.Fatalf("AirTime(1000) = %v, want %v", got, want)
	}
}

func TestDeliveryWithinRangeNoFading(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	var got *packet.Frame
	rx.ReceiveFrame = func(f *packet.Frame) { got = f }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.RunAll()
	if got == nil {
		t.Fatal("frame not delivered at 200m without fading")
	}
	if got.Payload.Src != 0 {
		t.Fatalf("delivered frame has src %v", got.Payload.Src)
	}
	if rx.Stats.FramesDelivered != 1 {
		t.Fatalf("FramesDelivered = %d", rx.Stats.FramesDelivered)
	}
}

func TestNoDeliveryBeyondRangeNoFading(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 300, Y: 0})
	delivered := false
	rx.ReceiveFrame = func(*packet.Frame) { delivered = true }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.RunAll()
	if delivered {
		t.Fatal("frame delivered at 300m, beyond 250m range")
	}
	if rx.Stats.BelowThreshold != 1 {
		t.Fatalf("BelowThreshold = %d, want 1", rx.Stats.BelowThreshold)
	}
}

func TestCollisionEqualPower(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	// Two transmitters equidistant from the receiver, out of carrier-sense
	// range of each other is not needed — they transmit at the same instant.
	a := medium.AttachRadio(0, geom.Point{X: -200, Y: 0})
	b := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	rx := medium.AttachRadio(2, geom.Point{X: 0, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	engine.Schedule(0, func() { a.Transmit(dataFrame(0, 512)) })
	engine.Schedule(0, func() { b.Transmit(dataFrame(1, 512)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d frames from an equal-power collision, want 0", delivered)
	}
	if rx.Stats.Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestCaptureStrongFrameSurvives(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	near := medium.AttachRadio(0, geom.Point{X: 100, Y: 0}) // strong at rx
	far := medium.AttachRadio(1, geom.Point{X: -245, Y: 0}) // weak at rx
	rx := medium.AttachRadio(2, geom.Point{X: 0, Y: 0})
	// Power ratio (245/100)^4 ≈ 36 > 10 dB capture ratio.
	delivered := 0
	var deliveredSrc packet.NodeID
	rx.ReceiveFrame = func(f *packet.Frame) { delivered++; deliveredSrc = f.Src }
	engine.Schedule(0, func() {
		near.Transmit(&packet.Frame{Kind: packet.FrameData, Src: 0, Dst: packet.Broadcast, Payload: &packet.Packet{Kind: packet.TypeData, PayloadBytes: 512}})
	})
	engine.Schedule(time.Microsecond, func() {
		far.Transmit(&packet.Frame{Kind: packet.FrameData, Src: 1, Dst: packet.Broadcast, Payload: &packet.Packet{Kind: packet.TypeData, PayloadBytes: 512}})
	})
	engine.RunAll()
	if delivered != 1 || deliveredSrc != 0 {
		t.Fatalf("delivered=%d src=%v; want exactly the strong frame", delivered, deliveredSrc)
	}
}

func TestWeakLateArrivalDoesNotCorruptLocked(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	near := medium.AttachRadio(0, geom.Point{X: 100, Y: 0})
	far := medium.AttachRadio(1, geom.Point{X: -245, Y: 0})
	rx := medium.AttachRadio(2, geom.Point{X: 0, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// Strong frame first (locks), weak frame overlaps mid-way.
	engine.Schedule(0, func() { near.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { far.Transmit(dataFrame(1, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (strong frame should capture)", delivered)
	}
	if rx.Stats.Collisions != 0 {
		t.Fatalf("Collisions = %d, want 0", rx.Stats.Collisions)
	}
}

func TestStrongLateArrivalCorruptsLocked(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	far := medium.AttachRadio(0, geom.Point{X: -245, Y: 0})
	near := medium.AttachRadio(1, geom.Point{X: 100, Y: 0})
	rx := medium.AttachRadio(2, geom.Point{X: 0, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// Weak frame locks first; strong frame arrives mid-way and destroys it.
	// The strong frame itself is also lost (receiver was locked).
	engine.Schedule(0, func() { far.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { near.Transmit(dataFrame(1, 512)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
	if rx.Stats.Collisions == 0 {
		t.Fatal("expected a collision to be counted")
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	a := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	b := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	b.ReceiveFrame = func(*packet.Frame) { delivered++ }
	engine.Schedule(0, func() { b.Transmit(dataFrame(1, 512)) }) // b is busy transmitting
	engine.Schedule(time.Millisecond, func() { a.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d while transmitting, want 0", delivered)
	}
	if b.Stats.HalfDuplexLoss == 0 {
		t.Fatal("half-duplex loss not counted")
	}
}

func TestCarrierSenseDuringTransmission(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	// Node at 400m: beyond receive range (250m) but within CS range (550m).
	sensor := medium.AttachRadio(1, geom.Point{X: 400, Y: 0})
	var busyDuring, busyAfter bool
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { busyDuring = sensor.CarrierBusy() })
	engine.Schedule(time.Second, func() { busyAfter = sensor.CarrierBusy() })
	engine.RunAll()
	if !busyDuring {
		t.Fatal("sensor at 400m should sense carrier during transmission")
	}
	if busyAfter {
		t.Fatal("sensor should be idle after transmission ends")
	}
}

func TestBusyChangedFiresOnTransitionOnly(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	a := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	b := medium.AttachRadio(1, geom.Point{X: 10, Y: 0})
	rx := medium.AttachRadio(2, geom.Point{X: 100, Y: 0})
	var transitions []bool
	rx.BusyChanged = func(busy bool) { transitions = append(transitions, busy) }
	// Two overlapping transmissions: rx should see busy=true once at the
	// start and busy=false once after both end.
	engine.Schedule(0, func() { a.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { b.Transmit(dataFrame(1, 512)) })
	engine.RunAll()
	if len(transitions) != 2 || transitions[0] != true || transitions[1] != false {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
}

func TestRayleighEmpiricalDeliveryMatchesAnalytic(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.Rayleigh{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 180, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	const n = 20000
	for i := 0; i < n; i++ {
		i := i
		engine.At(time.Duration(i)*10*time.Millisecond, func() { tx.Transmit(dataFrame(0, 64)) })
	}
	engine.RunAll()
	want := medium.DeliveryProbability(tx.Pos, rx.Pos)
	got := float64(delivered) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical delivery %v, analytic %v", got, want)
	}
}

func TestDeliveryProbabilityNoFadingIsStep(t *testing.T) {
	_, medium := newTestMedium(t, propagation.NoFading{})
	in := medium.DeliveryProbability(geom.Point{}, geom.Point{X: 249})
	out := medium.DeliveryProbability(geom.Point{}, geom.Point{X: 251})
	if in != 1 || out != 0 {
		t.Fatalf("step delivery = (%v, %v), want (1, 0)", in, out)
	}
}

func TestIgnoredArrivalsBeyondInterferenceRange(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	far := medium.AttachRadio(1, geom.Point{X: 5000, Y: 0})
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.RunAll()
	if far.Stats.BelowThreshold != 0 {
		t.Fatal("arrival at 5km should be ignored entirely, not modeled")
	}
	if far.CarrierBusy() {
		t.Fatal("radio at 5km should never sense carrier")
	}
}

func TestSumInterferenceBlocksLock(t *testing.T) {
	// Several individually weak interferers can still drown a new arrival:
	// locking uses the interference *sum*. Three transmitters near the
	// receiver start first; a fourth, slightly farther, then cannot lock.
	engine, medium := newTestMedium(t, propagation.NoFading{})
	var interferers []*Radio
	for i := 0; i < 3; i++ {
		interferers = append(interferers,
			medium.AttachRadio(packet.NodeID(i), geom.Point{X: 120, Y: float64(i * 5)}))
	}
	wanted := medium.AttachRadio(9, geom.Point{X: -160, Y: 0})
	rx := medium.AttachRadio(10, geom.Point{X: 0, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// Interferers transmit together: equal power → none locks cleanly at
	// rx, but their energy is on the air.
	for _, r := range interferers {
		r := r
		engine.Schedule(0, func() { r.Transmit(dataFrame(r.ID, 512)) })
	}
	// The wanted frame arrives while the channel carries 3x interference;
	// power(160m) < 10 x [3 x power(120m)] so it must not lock.
	engine.Schedule(100*time.Microsecond, func() { wanted.Transmit(dataFrame(9, 512)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d; sum interference should block the lock", delivered)
	}
}

func TestPropagationDelayOrdersArrivals(t *testing.T) {
	// A frame reaches a 50m receiver before a 200m receiver.
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	near := medium.AttachRadio(1, geom.Point{X: 50, Y: 0})
	far := medium.AttachRadio(2, geom.Point{X: 200, Y: 0})
	var nearAt, farAt time.Duration
	near.ReceiveFrame = func(*packet.Frame) { nearAt = engine.Now() }
	far.ReceiveFrame = func(*packet.Frame) { farAt = engine.Now() }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.RunAll()
	if nearAt == 0 || farAt == 0 {
		t.Fatal("frames not delivered")
	}
	if farAt <= nearAt {
		t.Fatalf("far receiver finished at %v, near at %v; propagation delay missing", farAt, nearAt)
	}
}

func TestOnTransmitHookSeesEveryFrame(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	medium.AttachRadio(1, geom.Point{X: 100, Y: 0})
	var seen []packet.NodeID
	medium.OnTransmit = func(_ time.Duration, f *packet.Frame) { seen = append(seen, f.Src) }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.Schedule(time.Second, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if len(seen) != 2 || seen[0] != 0 {
		t.Fatalf("OnTransmit saw %v", seen)
	}
}

func TestImpairmentDropAndAttenuation(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }

	// Total blackout: nothing arrives, not even carrier sense.
	medium.SetImpairment(func(_, _ packet.NodeID, _ time.Duration) Impairment {
		return Impairment{DropProb: 1}
	})
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 0 || rx.Stats.BelowThreshold != 0 {
		t.Fatalf("blackout delivered=%d belowThreshold=%d", delivered, rx.Stats.BelowThreshold)
	}

	// Heavy attenuation: the arrival exists but is too weak to decode.
	medium.SetImpairment(func(_, _ packet.NodeID, _ time.Duration) Impairment {
		return Impairment{Attenuation: 1e-3}
	})
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatal("attenuated frame decoded")
	}

	// Hook removed: back to clean delivery.
	medium.SetImpairment(nil)
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d after impairment removed, want 1", delivered)
	}
}

func TestImpairmentIsDirectional(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	a := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	b := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	var aGot, bGot int
	a.ReceiveFrame = func(*packet.Frame) { aGot++ }
	b.ReceiveFrame = func(*packet.Frame) { bGot++ }
	// Impair only the 0 -> 1 direction (asymmetric degradation).
	medium.SetImpairment(func(tx, rx packet.NodeID, _ time.Duration) Impairment {
		if tx == 0 && rx == 1 {
			return Impairment{DropProb: 1}
		}
		return Impairment{}
	})
	engine.Schedule(0, func() { a.Transmit(dataFrame(0, 64)) })
	engine.Schedule(time.Second, func() { b.Transmit(dataFrame(1, 64)) })
	engine.RunAll()
	if bGot != 0 {
		t.Fatalf("impaired direction delivered %d frames", bGot)
	}
	if aGot != 1 {
		t.Fatalf("reverse direction delivered %d frames, want 1", aGot)
	}
}

func TestRadioDown(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }

	rx.SetDown(true)
	if rx.CarrierBusy() {
		t.Fatal("dead radio senses carrier")
	}
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatal("dead radio decoded a frame")
	}

	// A dead radio does not transmit either.
	sentBefore := tx.Stats.FramesSent
	tx.SetDown(true)
	if d := tx.Transmit(dataFrame(0, 64)); d != 0 {
		t.Fatalf("dead radio reported airtime %v", d)
	}
	if tx.Stats.FramesSent != sentBefore {
		t.Fatal("dead radio counted a transmission")
	}

	// Power both back on: delivery resumes.
	tx.SetDown(false)
	rx.SetDown(false)
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d after power-on, want 1", delivered)
	}
}

// registryMedium is newTestMedium with telemetry instruments attached, so
// branch tests can assert counter semantics.
func registryMedium(t *testing.T, fading propagation.Fading) (*sim.Engine, *Medium) {
	t.Helper()
	engine, medium := newTestMedium(t, fading)
	medium.Telem = NewTelemetry(telemetry.NewRegistry())
	return engine, medium
}

func TestBeginArrivalBranches(t *testing.T) {
	p := DefaultParams()
	strong := p.RxThresholdW * 100
	weak := p.RxThresholdW / 2
	cases := []struct {
		name string
		// setup prepares the radio's state (down, transmitting, prior
		// arrivals) and returns the power of the arrival under test.
		setup func(engine *sim.Engine, r *Radio) float64
		check func(t *testing.T, r *Radio, a *arrival)
	}{
		{
			name:  "down radio counts decodable arrival as drop",
			setup: func(_ *sim.Engine, r *Radio) float64 { r.SetDown(true); return strong },
			check: func(t *testing.T, r *Radio, a *arrival) {
				if got := r.medium.Telem.RadioDownDrops.Value(); got != 1 {
					t.Fatalf("RadioDownDrops = %d, want 1", got)
				}
				if !a.corrupted || r.locked != nil {
					t.Fatal("down radio must corrupt without locking")
				}
			},
		},
		{
			name:  "down radio ignores sub-threshold arrival",
			setup: func(_ *sim.Engine, r *Radio) float64 { r.SetDown(true); return weak },
			check: func(t *testing.T, r *Radio, a *arrival) {
				// Regression: sub-threshold signals could never have been
				// decoded, so they must not inflate RadioDownDrops — and a
				// dead radio does not observe them as BelowThreshold either.
				if got := r.medium.Telem.RadioDownDrops.Value(); got != 0 {
					t.Fatalf("RadioDownDrops = %d, want 0 for sub-threshold arrival", got)
				}
				if r.Stats.BelowThreshold != 0 {
					t.Fatalf("BelowThreshold = %d, want 0 on a down radio", r.Stats.BelowThreshold)
				}
			},
		},
		{
			name: "transmitting radio is deaf",
			setup: func(engine *sim.Engine, r *Radio) float64 {
				r.txUntil = engine.Now() + time.Second
				return strong
			},
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.Stats.HalfDuplexLoss != 1 {
					t.Fatalf("HalfDuplexLoss = %d, want 1", r.Stats.HalfDuplexLoss)
				}
				if !a.corrupted {
					t.Fatal("arrival during transmit must be corrupted")
				}
			},
		},
		{
			name:  "sub-threshold arrival counts BelowThreshold",
			setup: func(*sim.Engine, *Radio) float64 { return weak },
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.Stats.BelowThreshold != 1 {
					t.Fatalf("BelowThreshold = %d, want 1", r.Stats.BelowThreshold)
				}
			},
		},
		{
			name:  "clean arrival locks",
			setup: func(*sim.Engine, *Radio) float64 { return strong },
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.locked != a {
					t.Fatal("idle radio must lock onto a decodable arrival")
				}
			},
		},
		{
			name: "existing interference blocks the lock",
			setup: func(_ *sim.Engine, r *Radio) float64 {
				// A sub-threshold interferer already on the air; the new
				// arrival is decodable but fails the capture test against
				// the interference sum.
				r.beginArrival(&arrival{rx: r, power: p.RxThresholdW / 1.5})
				return p.RxThresholdW * 1.01
			},
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.locked != nil {
					t.Fatal("lock must fail against interference")
				}
				if r.Stats.Collisions != 1 {
					t.Fatalf("Collisions = %d, want 1", r.Stats.Collisions)
				}
			},
		},
		{
			name: "locked frame captures weak newcomer",
			setup: func(_ *sim.Engine, r *Radio) float64 {
				r.beginArrival(&arrival{rx: r, power: strong})
				return strong / 100 // below capture ratio of the locked frame
			},
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.locked == nil || r.locked == a {
					t.Fatal("locked frame must survive a weak newcomer")
				}
				if got := r.medium.Telem.CaptureWins.Value(); got != 1 {
					t.Fatalf("CaptureWins = %d, want 1", got)
				}
			},
		},
		{
			name: "strong newcomer destroys the lock",
			setup: func(_ *sim.Engine, r *Radio) float64 {
				r.beginArrival(&arrival{rx: r, power: strong})
				return strong // equal power: locked cannot capture it
			},
			check: func(t *testing.T, r *Radio, a *arrival) {
				if r.locked != nil {
					t.Fatal("lock must be destroyed by an equal-power newcomer")
				}
				if r.Stats.Collisions != 1 {
					t.Fatalf("Collisions = %d, want 1", r.Stats.Collisions)
				}
				if !a.corrupted {
					t.Fatal("the destroying newcomer is itself lost")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engine, medium := registryMedium(t, propagation.NoFading{})
			r := medium.AttachRadio(0, geom.Point{})
			power := tc.setup(engine, r)
			a := &arrival{rx: r, frame: dataFrame(1, 64), power: power}
			r.beginArrival(a)
			tc.check(t, r, a)
		})
	}
}

func TestHalfDuplexOverlappingTransmissions(t *testing.T) {
	// Regression: the radio used to clear a transmitting *flag* when its
	// first frame ended, going receive-capable while a second, overlapping
	// frame was still on the air.
	engine, medium := newTestMedium(t, propagation.NoFading{})
	a := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	b := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	b.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// 512 B frames are on air 2.24 ms each: b covers [0, 2.24] and
	// [1, 3.24] ms. a's short frame falls entirely inside (2.24, 3.24] —
	// after the first frame ended but while the second is still out.
	engine.Schedule(0, func() { b.Transmit(dataFrame(1, 512)) })
	engine.Schedule(time.Millisecond, func() { b.Transmit(dataFrame(1, 512)) })
	engine.Schedule(2500*time.Microsecond, func() { a.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatalf("delivered = %d during b's second transmission, want 0", delivered)
	}
	if b.Stats.HalfDuplexLoss == 0 {
		t.Fatal("overlapping-transmit loss not counted as half duplex")
	}
	// Once both frames are off the air the radio hears again.
	engine.Schedule(0, func() { a.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d after transmissions ended, want 1", delivered)
	}
}

func TestLinkCacheInvalidatedOnAttachRadio(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	first := medium.AttachRadio(1, geom.Point{X: 100, Y: 0})
	var firstGot, lateGot int
	first.ReceiveFrame = func(*packet.Frame) { firstGot++ }
	// First transmission builds tx's candidate list.
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	// A radio attached afterwards must appear in the rebuilt list.
	late := medium.AttachRadio(2, geom.Point{X: 150, Y: 0})
	late.ReceiveFrame = func(*packet.Frame) { lateGot++ }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if firstGot != 2 || lateGot != 1 {
		t.Fatalf("got %d/%d deliveries, want 2/1 (cache must pick up the late radio)", firstGot, lateGot)
	}
}

func TestLinkCacheInvalidatedOnSetLinkFunc(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 100, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("physics delivery = %d, want 1", delivered)
	}
	// An oracle that silences the link entirely must take effect on the
	// next frame even though a physics candidate list was already cached.
	medium.SetLinkFunc(func(_, _ packet.NodeID, _ time.Duration, _ *sim.RNG) float64 { return 0 })
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivery under zero oracle = %d, want still 1", delivered)
	}
	// And restoring physics must rebuild the physics list.
	medium.SetLinkFunc(nil)
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 2 {
		t.Fatalf("delivery after restoring physics = %d, want 2", delivered)
	}
}

// miniScenarioTrace runs a dense 12-radio broadcast storm with Rayleigh
// fading and a probabilistic impairment — every RNG consumer on the transmit
// path — and returns a full trace of deliveries plus final counters.
func miniScenarioTrace(t *testing.T, cached bool) string {
	t.Helper()
	engine := sim.NewEngine(99)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, DefaultParams())
	medium.SetLinkCache(cached)
	medium.SetImpairment(func(tx, rx packet.NodeID, _ time.Duration) Impairment {
		if (tx+rx)%3 == 0 {
			return Impairment{DropProb: 0.3}
		}
		return Impairment{Attenuation: 0.9}
	})
	var radios []*Radio
	var log strings.Builder
	for i := 0; i < 12; i++ {
		r := medium.AttachRadio(packet.NodeID(i), geom.Point{X: float64(i%4) * 150, Y: float64(i/4) * 150})
		r.ReceiveFrame = func(f *packet.Frame) {
			fmt.Fprintf(&log, "%d<-%d@%v\n", r.ID, f.Src, engine.Now())
		}
		radios = append(radios, r)
	}
	// 256 B frames are on air ~1.2 ms; a 1.1 ms pitch keeps most frames
	// clean while the tail of each still overlaps the next transmitter's
	// start, so collision, capture, and half-duplex branches all run.
	for i := 0; i < 300; i++ {
		r := radios[i%len(radios)]
		engine.At(time.Duration(i)*1100*time.Microsecond, func() { r.Transmit(dataFrame(r.ID, 256)) })
	}
	engine.RunAll()
	for _, r := range radios {
		fmt.Fprintf(&log, "radio %d: %+v\n", r.ID, r.Stats)
	}
	fmt.Fprintf(&log, "events=%d now=%v\n", engine.Processed, engine.Now())
	return log.String()
}

// TestSetDownRederivesCarrierSense is the regression test for the power-state
// carrier-sense bug: SetDown used to flip only the `down` flag, so a radio
// powered down while sensing carrier kept lastBusy=true (the MAC believed the
// channel busy until the next unrelated arrival edge), and a radio powered up
// amid in-flight arrivals reported idle until the same. Both transitions must
// notify immediately. This test fails on the pre-fix code: the busy=false and
// busy=true edges below only appear at the frame-end event (~2.43 ms).
func TestSetDownRederivesCarrierSense(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	// Sensor at 400m: beyond receive range (250m) but within CS range (550m),
	// so the frame is pure carrier with no decode path involved.
	sensor := medium.AttachRadio(1, geom.Point{X: 400, Y: 0})
	type edge struct {
		busy bool
		at   time.Duration
	}
	var edges []edge
	sensor.BusyChanged = func(busy bool) { edges = append(edges, edge{busy, engine.Now()}) }
	// 512 B frame: on air 2.24 ms, occupying the sensor's channel for
	// (prop, prop+2.24ms] — comfortably past both SetDown calls below.
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { sensor.SetDown(true) })
	engine.Schedule(1500*time.Microsecond, func() { sensor.SetDown(false) })
	engine.RunAll()
	want := []edge{
		{true, 0},                        // frame reaches the sensor (after prop delay)
		{false, time.Millisecond},        // power-down mid-frame: idle NOW, not at frame end
		{true, 1500 * time.Microsecond},  // power-up mid-frame: busy NOW, not at next edge
		{false, 2440 * time.Microsecond}, // frame leaves the air
	}
	if len(edges) != len(want) {
		t.Fatalf("busy edges = %+v, want %d edges", edges, len(want))
	}
	for i := 1; i < 3; i++ { // the two SetDown-driven edges must be instant
		if edges[i].busy != want[i].busy || edges[i].at != want[i].at {
			t.Fatalf("edge %d = %+v, want %+v (SetDown must re-derive carrier sense immediately)",
				i, edges[i], want[i])
		}
	}
	if edges[0].busy != true || edges[3].busy != false {
		t.Fatalf("busy edges = %+v, want busy/idle bracket around the frame", edges)
	}
	if edges[3].at < 2240*time.Microsecond {
		t.Fatalf("final idle edge at %v, before the frame left the air", edges[3].at)
	}
}

func TestDeliveryProbabilityPanicsUnderLinkFunc(t *testing.T) {
	_, medium := newTestMedium(t, propagation.NoFading{})
	medium.SetLinkFunc(func(_, _ packet.NodeID, _ time.Duration, _ *sim.RNG) float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("DeliveryProbability answered from physics while a LinkFunc oracle was active")
		}
	}()
	medium.DeliveryProbability(geom.Point{}, geom.Point{X: 100})
}

// assertPoolClean verifies every pooled arrival had its fields reset by
// freeArrival — a stale rx/frame/power/corrupted here would leak into the
// next frame that draws the object from the pool.
func assertPoolClean(t *testing.T, m *Medium) {
	t.Helper()
	for i, a := range m.arrivalPool {
		if a.rx != nil || a.frame != nil || a.power != 0 || a.corrupted {
			t.Fatalf("pooled arrival %d not reset: %+v", i, *a)
		}
	}
}

// TestArrivalPoolReuseAcrossSetDownMidFlight powers the receiver down while
// an arrival is locked (corrupting it), lets the arrival return to the pool,
// and reuses the pool for a clean delivery: the corrupted flag from the
// aborted frame must not leak into the recycled arrival.
func TestArrivalPoolReuseAcrossSetDownMidFlight(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// Frame 1: rx powers down mid-flight. SetDown corrupts the locked
	// arrival; endArrival still runs and returns it to the pool.
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { rx.SetDown(true) })
	engine.RunAll()
	if delivered != 0 {
		t.Fatal("frame delivered despite mid-flight power-down")
	}
	if len(medium.arrivalPool) == 0 {
		t.Fatal("aborted arrival not returned to the pool")
	}
	assertPoolClean(t, medium)
	// Frame 2: the recycled arrival must deliver cleanly.
	rx.SetDown(false)
	poolBefore := len(medium.arrivalPool)
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d reusing the pooled arrival, want 1", delivered)
	}
	if len(medium.arrivalPool) != poolBefore {
		t.Fatalf("pool size %d after reuse cycle, want %d", len(medium.arrivalPool), poolBefore)
	}
	assertPoolClean(t, medium)
}

// TestArrivalPoolAcrossSetLinkCacheToggle toggles the cache off and back on
// while frames are in flight. Arrivals allocated by the cached path but ending
// with the cache off are simply not pooled; arrivals allocated uncached but
// ending with the cache back on do get pooled — either way no stale fields
// may survive into later frames.
func TestArrivalPoolAcrossSetLinkCacheToggle(t *testing.T) {
	engine, medium := newTestMedium(t, propagation.NoFading{})
	tx := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	rx := medium.AttachRadio(1, geom.Point{X: 200, Y: 0})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	// Cached frame in flight; cache switched off mid-flight.
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { medium.SetLinkCache(false) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d with cache disabled mid-flight, want 1", delivered)
	}
	if n := len(medium.arrivalPool); n != 0 {
		t.Fatalf("pool grew to %d while the cache was off at frame end", n)
	}
	// Uncached frame in flight; cache switched back on mid-flight. Its
	// arrival lands in the pool at frame end.
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
	engine.Schedule(time.Millisecond, func() { medium.SetLinkCache(true) })
	engine.RunAll()
	if delivered != 2 {
		t.Fatalf("delivered = %d with cache re-enabled mid-flight, want 2", delivered)
	}
	assertPoolClean(t, medium)
	// Steady state after the churn: pooled arrivals recycle cleanly.
	for i := 0; i < 3; i++ {
		engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 512)) })
		engine.RunAll()
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d after cache toggles settled, want 5", delivered)
	}
	assertPoolClean(t, medium)
}

func TestLinkCacheByteIdenticalToUncached(t *testing.T) {
	// The determinism contract: same seed, same delivery trace, same
	// counters, same event count — with the cache on or off.
	cachedTrace := miniScenarioTrace(t, true)
	uncachedTrace := miniScenarioTrace(t, false)
	if cachedTrace != uncachedTrace {
		t.Fatalf("cached and uncached runs diverged:\ncached:\n%s\nuncached:\n%s", cachedTrace, uncachedTrace)
	}
	if !strings.Contains(cachedTrace, "<-") {
		t.Fatal("mini scenario delivered nothing; the comparison is vacuous")
	}
}
