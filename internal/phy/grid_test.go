package phy

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
)

func TestInterferenceRadiusMatchesFloor(t *testing.T) {
	p := DefaultParams()
	pl := propagation.NewTwoRay()
	floor := p.CSThresholdW / 200
	radius := interferenceRadius(pl, p.TxPowerW, floor)
	if radius <= 0 {
		t.Fatal("no interference radius for the default two-ray model")
	}
	// The default WaveLAN constants put the floor crossing around 2 km —
	// well beyond the 550 m carrier-sense range, as it must be (fading can
	// never lift a sub-floor arrival above the CS threshold).
	if radius < 550 || radius > 10000 {
		t.Fatalf("interference radius = %.0f m, expected between 550 m and 10 km", radius)
	}
	if got := pl.ReceivedPower(p.TxPowerW, radius); got >= floor {
		t.Fatalf("power at radius = %g, want < floor %g", got, floor)
	}
	if got := pl.ReceivedPower(p.TxPowerW, radius*0.999); got < floor {
		t.Fatalf("power just inside radius = %g, want >= floor %g", got, floor)
	}
}

func TestInterferenceRadiusDisabledCases(t *testing.T) {
	pl := propagation.NewTwoRay()
	if r := interferenceRadius(pl, DefaultParams().TxPowerW, 0); r != 0 {
		t.Fatalf("radius with zero floor = %v, want 0 (index disabled)", r)
	}
	// A floor so low it is never crossed within the search bound.
	if r := interferenceRadius(pl, DefaultParams().TxPowerW, 1e-40); r != 0 {
		t.Fatalf("radius with unreachable floor = %v, want 0 (index disabled)", r)
	}
}

// sameLinks requires two candidate lists to be identical entry for entry:
// same receivers in the same (attach) order, same mean power, same delay.
func sameLinks(t *testing.T, got, want []link, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, brute force has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].rx != want[i].rx {
			t.Fatalf("%s: candidate %d is radio %d, brute force has %d (order or membership drift)",
				label, i, got[i].rx.ID, want[i].rx.ID)
		}
		if got[i].meanPower != want[i].meanPower || got[i].propDelay != want[i].propDelay {
			t.Fatalf("%s: candidate %d precomputed values diverge", label, i)
		}
	}
}

// TestCellIndexMatchesBruteForce is the determinism property test: for
// random topologies spanning sub-cell to many-cell extents, the indexed
// candidate builder must reproduce the brute-force scan bit for bit.
func TestCellIndexMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(1234)
	for trial := 0; trial < 25; trial++ {
		side := 400 + rng.Float64()*12000 // ~0.2 to ~6 cells per axis
		n := 10 + rng.Intn(120)
		engine := sim.NewEngine(uint64(trial))
		medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
		if medium.grid == nil {
			t.Fatal("cell index not built for the default models")
		}
		for i := 0; i < n; i++ {
			medium.AttachRadio(packet.NodeID(i), geom.Point{
				X: rng.Float64()*side - side/2, // negative coords exercise floor
				Y: rng.Float64() * side,
			})
		}
		for _, src := range medium.radios {
			got := medium.buildLinksIndexed(src)
			want := medium.buildLinksBrute(src)
			sameLinks(t, got, want, "indexed")
		}
	}
}

func TestBuildLinksFallsBackWithoutIndex(t *testing.T) {
	engine := sim.NewEngine(7)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	for i := 0; i < 30; i++ {
		medium.AttachRadio(packet.NodeID(i), geom.Point{X: float64(i) * 137, Y: float64(i%5) * 211})
	}
	medium.SetCellIndex(false)
	for _, src := range medium.radios {
		sameLinks(t, medium.buildLinks(src), medium.buildLinksBrute(src), "index disabled")
	}
	medium.SetCellIndex(true)
	for _, src := range medium.radios {
		sameLinks(t, medium.buildLinks(src), medium.buildLinksBrute(src), "index re-enabled")
	}
}

func TestNoCellIndexEnv(t *testing.T) {
	t.Setenv("MESHCAST_NO_CELL_INDEX", "1")
	engine := sim.NewEngine(7)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	if !medium.gridOff {
		t.Fatal("MESHCAST_NO_CELL_INDEX did not disable the cell index")
	}
	tx := medium.AttachRadio(0, geom.Point{})
	rx := medium.AttachRadio(1, geom.Point{X: 150})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d with the index disabled, want 1", delivered)
	}
}

// TestAttachRadioIncrementalInvalidation pins the incremental-invalidation
// behavior: attaching a radio discards only the candidate lists of
// transmitters within its cell neighborhood; far transmitters keep their
// built lists (previously every attach threw the whole cache away).
func TestAttachRadioIncrementalInvalidation(t *testing.T) {
	engine := sim.NewEngine(3)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	cell := medium.grid.size
	// Two transmitters far apart: more than two cells, so neither is ever
	// in the other's 3×3 neighborhood.
	near := medium.AttachRadio(0, geom.Point{X: 0, Y: 0})
	far := medium.AttachRadio(1, geom.Point{X: 3 * cell, Y: 0})
	// Build both candidate lists.
	nearList := medium.linksFrom(near)
	farList := medium.linksFrom(far)
	if nearList == nil || farList == nil {
		t.Fatal("candidate lists not built")
	}

	// Attaching next to `near` must invalidate near's list, grow the cache,
	// and leave far's list untouched.
	medium.AttachRadio(2, geom.Point{X: 100, Y: 0})
	if len(medium.links) != 3 {
		t.Fatalf("cache has %d slots after attach, want 3", len(medium.links))
	}
	if medium.links[near.index] != nil {
		t.Fatal("near transmitter's list not invalidated by a neighboring attach")
	}
	if medium.links[far.index] == nil {
		t.Fatal("far transmitter's list discarded by an attach outside its neighborhood")
	}

	// And the rebuilt list must now include the newcomer.
	rebuilt := medium.linksFrom(near)
	found := false
	for _, l := range rebuilt {
		if l.rx.ID == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("rebuilt list does not include the newly attached radio")
	}
	sameLinks(t, rebuilt, medium.buildLinksBrute(near), "rebuilt after attach")
}

// TestAttachRadioDeliveryAcrossCells is the end-to-end version: a busy
// multi-cell medium keeps delivering correctly as radios attach mid-run.
func TestAttachRadioDeliveryAcrossCells(t *testing.T) {
	engine := sim.NewEngine(11)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	cell := medium.grid.size
	tx := medium.AttachRadio(0, geom.Point{})
	counts := make(map[packet.NodeID]int)
	attach := func(id packet.NodeID, p geom.Point) {
		r := medium.AttachRadio(id, p)
		r.ReceiveFrame = func(*packet.Frame) { counts[r.ID]++ }
	}
	attach(1, geom.Point{X: 200})
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	// A later attach in range of tx but in a *different* cell than tx must
	// still be picked up (the 3×3 probe spans cell borders).
	attach(2, geom.Point{X: cell + 10, Y: 0})
	txNearBorder := medium.AttachRadio(3, geom.Point{X: cell - 40, Y: 0})
	engine.Schedule(0, func() { txNearBorder.Transmit(dataFrame(3, 64)) })
	engine.RunAll()
	if counts[2] != 1 {
		t.Fatalf("cross-cell delivery = %d, want 1", counts[2])
	}
	engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) })
	engine.RunAll()
	if counts[1] != 2 {
		t.Fatalf("existing receiver saw %d frames, want 2", counts[1])
	}
}

// TestCellIndexedRunByteIdenticalToBrute replays the dense mini scenario of
// TestLinkCacheByteIdenticalToUncached with the cell index on vs off (cache
// on in both): the indexed fan-out must not change a single RNG draw. The
// scenario spans 450 m — a single cell here — so the wide topology below
// additionally exercises the multi-cell case.
func TestCellIndexedRunByteIdenticalToBrute(t *testing.T) {
	run := func(indexOn bool) string {
		return denseStormTrace(t, func(m *Medium) { m.SetCellIndex(indexOn) }, 150)
	}
	indexed := run(true)
	brute := run(false)
	if indexed != brute {
		t.Fatalf("indexed and brute-force builders diverged:\nindexed:\n%s\nbrute:\n%s", indexed, brute)
	}
	if !strings.Contains(indexed, "<-") {
		t.Fatal("storm delivered nothing; the comparison is vacuous")
	}
}

func TestCellIndexedRunByteIdenticalToBruteMultiCell(t *testing.T) {
	// 900 m pitch spreads the 4×3 lattice across ~2700 m — multiple cells,
	// with some pairs beyond the interference radius entirely, so the probe
	// actually skips cells and the skip set is non-trivial.
	run := func(indexOn bool) string {
		return denseStormTrace(t, func(m *Medium) { m.SetCellIndex(indexOn) }, 900)
	}
	if indexed, brute := run(true), run(false); indexed != brute {
		t.Fatalf("multi-cell indexed and brute runs diverged:\nindexed:\n%s\nbrute:\n%s", indexed, brute)
	}
}

// denseStormTrace is miniScenarioTrace (phy_test.go) parameterized over
// medium setup and node pitch, shared by the cell-index determinism tests.
func denseStormTrace(t *testing.T, setup func(*Medium), pitch float64) string {
	t.Helper()
	engine := sim.NewEngine(99)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, DefaultParams())
	setup(medium)
	medium.SetImpairment(func(tx, rx packet.NodeID, _ time.Duration) Impairment {
		if (tx+rx)%3 == 0 {
			return Impairment{DropProb: 0.3}
		}
		return Impairment{Attenuation: 0.9}
	})
	var radios []*Radio
	var log strings.Builder
	for i := 0; i < 12; i++ {
		r := medium.AttachRadio(packet.NodeID(i), geom.Point{X: float64(i%4) * pitch, Y: float64(i/4) * pitch})
		r.ReceiveFrame = func(f *packet.Frame) {
			fmt.Fprintf(&log, "%d<-%d@%v\n", r.ID, f.Src, engine.Now())
		}
		radios = append(radios, r)
	}
	for i := 0; i < 300; i++ {
		r := radios[i%len(radios)]
		engine.At(time.Duration(i)*1100*time.Microsecond, func() { r.Transmit(dataFrame(r.ID, 256)) })
	}
	engine.RunAll()
	for _, r := range radios {
		fmt.Fprintf(&log, "radio %d: %+v\n", r.ID, r.Stats)
	}
	fmt.Fprintf(&log, "events=%d now=%v\n", engine.Processed, engine.Now())
	return log.String()
}
