package phy

import (
	"math"
	"sort"

	"meshcast/internal/geom"
	"meshcast/internal/propagation"
)

// The spatial cell index.
//
// buildLinks (cache.go) originally scanned every attached radio to assemble
// one transmitter's candidate-receiver list, making list construction O(N)
// per transmitter — O(N²) across a whole topology — and full-cache
// invalidation on AttachRadio O(N·k) to recover from. Both are invisible at
// the paper's 50 nodes and dominant at metro scale (ROADMAP: 10k–100k
// nodes).
//
// The index buckets radios into square cells whose side is the medium's
// *interference radius*: the largest distance at which the path-loss model
// still yields mean power ≥ ignoreBelowW. Any radio farther away than that
// is exactly the pair the candidate list drops up front (too weak even for
// carrier sense), so every candidate of a transmitter lives in the 3×3 cell
// block around it, and buildLinks probes ~9 cells instead of N radios.
//
// Determinism contract addendum (see cache.go): the merged cell probe must
// reproduce the brute-force scan bit for bit. Per-cell member lists are kept
// sorted by attach index (appends preserve it, moves reinsert in order), so
// the 3×3 probe is a 9-way merge by attach index — no per-probe sort — and
// the resulting list has the same members in the same attach order as the
// brute scan before applying the *same* mean-power filter: same RNG draw
// sequence per frame, byte-identical output. The property test
// TestCellIndexMatchesBruteForce compares the two builders link by link on
// random topologies; the golden scenario is additionally pinned with the
// index on, off, and with the whole cache off.
//
// The index assumes mean received power is nonincreasing in distance beyond
// the interference radius — true for Friis and two-ray, the models this
// repository ships. A custom PathLoss for which no such radius can be found
// (the floor is never crossed within 10^7 m, or ignoreBelowW is zero)
// disables the index and buildLinks falls back to the brute-force scan.
//
// The index also bounds AttachRadio invalidation: a new radio can only
// appear in the candidate lists of transmitters inside its own 3×3
// neighborhood, so only those lists are discarded instead of every list —
// attach-as-you-go setups (live testbeds, incremental fleets) stay linear
// instead of quadratic.

// cellKey addresses one grid cell; cells are cellSize × cellSize squares
// anchored at the origin (negative coordinates are fine).
type cellKey struct{ x, y int32 }

// cellIndex is the spatial bucket structure. Radios never detach, but
// MoveRadio rebuckets them; within every cell the member list stays sorted
// by attach index (buildLinksIndexed merges cells on that invariant).
type cellIndex struct {
	size  float64 // cell side in metres, ≥ the interference radius
	cells map[cellKey][]*Radio
}

func newCellIndex(size float64) *cellIndex {
	return &cellIndex{size: size, cells: make(map[cellKey][]*Radio)}
}

func (ci *cellIndex) keyFor(p geom.Point) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / ci.size)),
		y: int32(math.Floor(p.Y / ci.size)),
	}
}

// add buckets r into its cell. Radios are attached with increasing indexes,
// so appending preserves the sorted-by-attach-index invariant.
func (ci *cellIndex) add(r *Radio) {
	k := ci.keyFor(r.Pos)
	ci.cells[k] = append(ci.cells[k], r)
}

// move rebuckets r from the cell of its current position to the cell of
// `to`, preserving attach-index order in both cells: removal shifts the old
// cell down, insertion binary-searches the new cell for r's slot. Must be
// called before r.Pos is updated (the old cell is derived from it).
func (ci *cellIndex) move(r *Radio, to geom.Point) {
	from, dst := ci.keyFor(r.Pos), ci.keyFor(to)
	if from == dst {
		return
	}
	cell := ci.cells[from]
	i := sort.Search(len(cell), func(i int) bool { return cell[i].index >= r.index })
	copy(cell[i:], cell[i+1:])
	cell[len(cell)-1] = nil
	if len(cell) == 1 {
		delete(ci.cells, from) // keep the map from accumulating empty cells
	} else {
		ci.cells[from] = cell[:len(cell)-1]
	}
	nc := ci.cells[dst]
	j := sort.Search(len(nc), func(i int) bool { return nc[i].index >= r.index })
	nc = append(nc, nil)
	copy(nc[j+1:], nc[j:])
	nc[j] = r
	ci.cells[dst] = nc
}

// neighborhood appends every radio in the 3×3 cell block around p to dst and
// returns it. Cell iteration order is fixed but the result is not globally
// sorted; callers needing attach order sort by Radio.index.
func (ci *cellIndex) neighborhood(p geom.Point, dst []*Radio) []*Radio {
	k := ci.keyFor(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			dst = append(dst, ci.cells[cellKey{x: k.x + dx, y: k.y + dy}]...)
		}
	}
	return dst
}

// interferenceRadius returns the smallest distance beyond which the
// path-loss model keeps mean received power below floor — the range outside
// which buildLinks' skip set drops a pair unconditionally. It assumes power
// is nonincreasing in distance (true for Friis and two-ray) and reports 0
// when no such radius exists within 10^7 m (or floor is not positive),
// which disables the cell index.
func interferenceRadius(pl propagation.PathLoss, txPowerW, floor float64) float64 {
	if floor <= 0 {
		return 0
	}
	hi := 1.0
	for pl.ReceivedPower(txPowerW, hi) >= floor {
		hi *= 2
		if hi > 1e7 {
			return 0
		}
	}
	lo := 0.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if pl.ReceivedPower(txPowerW, mid) >= floor {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// gather appends the 3×3 cell block around p to dst in attach-index order by
// merging the per-cell lists (each already sorted by attach index — see
// cellIndex). A 9-way merge costs O(9·k) comparisons for k candidates,
// replacing the O(k log k) per-probe sort the first version of the index
// paid on every invalidated transmitter.
func (ci *cellIndex) gather(p geom.Point, dst []*Radio) []*Radio {
	k := ci.keyFor(p)
	var heads [9][]*Radio
	n := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			if cell := ci.cells[cellKey{x: k.x + dx, y: k.y + dy}]; len(cell) > 0 {
				heads[n] = cell
				n++
			}
		}
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if len(heads[i]) > 0 && (best < 0 || heads[i][0].index < heads[best][0].index) {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, heads[best][0])
		heads[best] = heads[best][1:]
	}
}

// buildLinksIndexed assembles src's candidate list from the 3×3 cell probe.
// It must produce exactly buildLinksBrute's output (see the determinism
// contract above); callers guarantee the physics models are active and the
// index is enabled.
func (m *Medium) buildLinksIndexed(src *Radio) []link {
	cand := m.grid.gather(src.Pos, m.scratch[:0])
	ls := make([]link, 0, len(cand))
	for _, rx := range cand {
		if rx == src {
			continue
		}
		d := src.Pos.Distance(rx.Pos)
		mean := m.pathLoss.ReceivedPower(m.params.TxPowerW, d)
		if mean < m.ignoreBelowW {
			continue
		}
		ls = append(ls, link{rx: rx, meanPower: mean, propDelay: propagation.Delay(d)})
	}
	m.scratch = cand[:0]
	return ls
}

// invalidateLinksAround discards only the candidate lists the newly attached
// radio r can appear in: transmitters within the interference radius of r,
// all of which live in r's 3×3 cell neighborhood. The cache also grows a
// (nil, lazily built) slot for r itself. Falls back to full invalidation
// when the affected set cannot be bounded (no index, index disabled, or a
// LinkFunc oracle, under which every list contains every radio).
func (m *Medium) invalidateLinksAround(r *Radio) {
	if m.links == nil {
		return
	}
	if m.grid == nil || m.gridOff || m.linkFunc != nil {
		m.invalidateLinks()
		return
	}
	m.links = append(m.links, nil)
	near := m.grid.neighborhood(r.Pos, m.scratch[:0])
	for _, other := range near {
		if other != r {
			m.links[other.index] = nil
		}
	}
	m.scratch = near[:0]
}

// invalidateLinksMoved discards the candidate lists a completed move of r
// (from old to r.Pos) can have changed: r's own list (every distance in it
// shifted) and the lists of all transmitters in the 3×3 neighborhoods of
// both endpoints — anyone outside both blocks was beyond the interference
// radius of r before the move and still is, so their lists are untouched.
// Falls back to full invalidation when the affected set cannot be bounded
// (no index, index disabled, or a LinkFunc oracle: oracle lists contain
// every radio but bake in distance-derived propagation delays, so membership
// bounds don't help).
func (m *Medium) invalidateLinksMoved(r *Radio, old geom.Point) {
	if m.links == nil {
		return
	}
	if m.grid == nil || m.gridOff || m.linkFunc != nil {
		m.invalidateLinks()
		return
	}
	m.links[r.index] = nil
	near := m.grid.neighborhood(old, m.scratch[:0])
	near = m.grid.neighborhood(r.Pos, near)
	for _, other := range near {
		m.links[other.index] = nil
	}
	m.scratch = near[:0]
}

// SetCellIndex enables or disables the spatial cell index inside the cached
// fan-out (enabled by default when an interference radius exists; the
// MESHCAST_NO_CELL_INDEX environment variable disables it at construction).
// Both builders produce byte-identical candidate lists; the brute-force
// builder exists as the reference for the determinism regression tests and
// the scale benchmark.
func (m *Medium) SetCellIndex(enabled bool) {
	m.gridOff = !enabled
	m.invalidateLinks()
}
