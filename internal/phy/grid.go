package phy

import (
	"math"
	"sort"

	"meshcast/internal/geom"
	"meshcast/internal/propagation"
)

// The spatial cell index.
//
// buildLinks (cache.go) originally scanned every attached radio to assemble
// one transmitter's candidate-receiver list, making list construction O(N)
// per transmitter — O(N²) across a whole topology — and full-cache
// invalidation on AttachRadio O(N·k) to recover from. Both are invisible at
// the paper's 50 nodes and dominant at metro scale (ROADMAP: 10k–100k
// nodes).
//
// The index buckets radios into square cells whose side is the medium's
// *interference radius*: the largest distance at which the path-loss model
// still yields mean power ≥ ignoreBelowW. Any radio farther away than that
// is exactly the pair the candidate list drops up front (too weak even for
// carrier sense), so every candidate of a transmitter lives in the 3×3 cell
// block around it, and buildLinks probes ~9 cells instead of N radios.
//
// Determinism contract addendum (see cache.go): the merged cell probe must
// reproduce the brute-force scan bit for bit. The probe therefore sorts the
// gathered radios by attach index before applying the *same* mean-power
// filter, so the resulting list has the same members in the same attach
// order — same RNG draw sequence per frame, byte-identical output. The
// property test TestCellIndexMatchesBruteForce compares the two builders
// link by link on random topologies; the golden scenario is additionally
// pinned with the index on, off, and with the whole cache off.
//
// The index assumes mean received power is nonincreasing in distance beyond
// the interference radius — true for Friis and two-ray, the models this
// repository ships. A custom PathLoss for which no such radius can be found
// (the floor is never crossed within 10^7 m, or ignoreBelowW is zero)
// disables the index and buildLinks falls back to the brute-force scan.
//
// The index also bounds AttachRadio invalidation: a new radio can only
// appear in the candidate lists of transmitters inside its own 3×3
// neighborhood, so only those lists are discarded instead of every list —
// attach-as-you-go setups (live testbeds, incremental fleets) stay linear
// instead of quadratic.

// cellKey addresses one grid cell; cells are cellSize × cellSize squares
// anchored at the origin (negative coordinates are fine).
type cellKey struct{ x, y int32 }

// cellIndex is the spatial bucket structure. Radios are appended in attach
// order and never removed (positions are fixed and radios only power down,
// never detach).
type cellIndex struct {
	size  float64 // cell side in metres, ≥ the interference radius
	cells map[cellKey][]*Radio
}

func newCellIndex(size float64) *cellIndex {
	return &cellIndex{size: size, cells: make(map[cellKey][]*Radio)}
}

func (ci *cellIndex) keyFor(p geom.Point) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / ci.size)),
		y: int32(math.Floor(p.Y / ci.size)),
	}
}

// add buckets r into its cell. Within a cell, radios stay in attach order.
func (ci *cellIndex) add(r *Radio) {
	k := ci.keyFor(r.Pos)
	ci.cells[k] = append(ci.cells[k], r)
}

// neighborhood appends every radio in the 3×3 cell block around p to dst and
// returns it. Cell iteration order is fixed but the result is not globally
// sorted; callers needing attach order sort by Radio.index.
func (ci *cellIndex) neighborhood(p geom.Point, dst []*Radio) []*Radio {
	k := ci.keyFor(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			dst = append(dst, ci.cells[cellKey{x: k.x + dx, y: k.y + dy}]...)
		}
	}
	return dst
}

// interferenceRadius returns the smallest distance beyond which the
// path-loss model keeps mean received power below floor — the range outside
// which buildLinks' skip set drops a pair unconditionally. It assumes power
// is nonincreasing in distance (true for Friis and two-ray) and reports 0
// when no such radius exists within 10^7 m (or floor is not positive),
// which disables the cell index.
func interferenceRadius(pl propagation.PathLoss, txPowerW, floor float64) float64 {
	if floor <= 0 {
		return 0
	}
	hi := 1.0
	for pl.ReceivedPower(txPowerW, hi) >= floor {
		hi *= 2
		if hi > 1e7 {
			return 0
		}
	}
	lo := 0.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if pl.ReceivedPower(txPowerW, mid) >= floor {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// buildLinksIndexed assembles src's candidate list from the 3×3 cell probe.
// It must produce exactly buildLinksBrute's output (see the determinism
// contract above); callers guarantee the physics models are active and the
// index is enabled.
func (m *Medium) buildLinksIndexed(src *Radio) []link {
	cand := m.grid.neighborhood(src.Pos, m.scratch[:0])
	sort.Slice(cand, func(i, j int) bool { return cand[i].index < cand[j].index })
	ls := make([]link, 0, len(cand))
	for _, rx := range cand {
		if rx == src {
			continue
		}
		d := src.Pos.Distance(rx.Pos)
		mean := m.pathLoss.ReceivedPower(m.params.TxPowerW, d)
		if mean < m.ignoreBelowW {
			continue
		}
		ls = append(ls, link{rx: rx, meanPower: mean, propDelay: propagation.Delay(d)})
	}
	m.scratch = cand[:0]
	return ls
}

// invalidateLinksAround discards only the candidate lists the newly attached
// radio r can appear in: transmitters within the interference radius of r,
// all of which live in r's 3×3 cell neighborhood. The cache also grows a
// (nil, lazily built) slot for r itself. Falls back to full invalidation
// when the affected set cannot be bounded (no index, index disabled, or a
// LinkFunc oracle, under which every list contains every radio).
func (m *Medium) invalidateLinksAround(r *Radio) {
	if m.links == nil {
		return
	}
	if m.grid == nil || m.gridOff || m.linkFunc != nil {
		m.invalidateLinks()
		return
	}
	m.links = append(m.links, nil)
	near := m.grid.neighborhood(r.Pos, m.scratch[:0])
	for _, other := range near {
		if other != r {
			m.links[other.index] = nil
		}
	}
	m.scratch = near[:0]
}

// SetCellIndex enables or disables the spatial cell index inside the cached
// fan-out (enabled by default when an interference radius exists; the
// MESHCAST_NO_CELL_INDEX environment variable disables it at construction).
// Both builders produce byte-identical candidate lists; the brute-force
// builder exists as the reference for the determinism regression tests and
// the scale benchmark.
func (m *Medium) SetCellIndex(enabled bool) {
	m.gridOff = !enabled
	m.invalidateLinks()
}
