package phy

import "meshcast/internal/telemetry"

// Telemetry holds the PHY layer's run-wide instruments. The zero value is
// fully disabled (every instrument nil); NewTelemetry wires the instruments
// to a registry. All radios on a medium share the same counters.
type Telemetry struct {
	// FramesSent counts transmissions started; FramesDelivered counts frames
	// decoded and handed up.
	FramesSent, FramesDelivered *telemetry.Counter
	// Collisions counts locked frames lost to interference; CaptureWins
	// counts decodes that survived overlapping interference via capture.
	Collisions, CaptureWins *telemetry.Counter
	// BelowThreshold counts arrivals too weak to decode; HalfDuplexLoss
	// counts frames lost because the receiver was transmitting.
	BelowThreshold, HalfDuplexLoss *telemetry.Counter
	// RadioDownDrops counts frames a powered-off radio would otherwise have
	// handled: transmissions it discarded, plus arrivals at or above the
	// receive threshold that passed through undecoded. Sub-threshold
	// arrivals at a down radio are not counted — they would have been lost
	// regardless of power state (those count as BelowThreshold when the
	// radio is up).
	RadioDownDrops *telemetry.Counter
	// RadioMoves counts MoveRadio calls (mobility models driving positions).
	RadioMoves *telemetry.Counter
}

// NewTelemetry returns PHY instruments registered under the "phy." prefix.
// A nil registry yields the disabled zero value.
func NewTelemetry(reg *telemetry.Registry) Telemetry {
	return Telemetry{
		FramesSent:      reg.Counter("phy.frames_sent"),
		FramesDelivered: reg.Counter("phy.frames_delivered"),
		Collisions:      reg.Counter("phy.collisions"),
		CaptureWins:     reg.Counter("phy.capture_wins"),
		BelowThreshold:  reg.Counter("phy.below_threshold"),
		HalfDuplexLoss:  reg.Counter("phy.half_duplex_loss"),
		RadioDownDrops:  reg.Counter("phy.radio_down_drops"),
		RadioMoves:      reg.Counter("phy.radio_moves"),
	}
}
