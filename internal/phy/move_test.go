package phy

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
)

// TestMoveRadioIncrementalMatchesFullInvalidation is the MoveRadio property
// test: after every move, every transmitter's cached candidate list — built
// lazily under incremental invalidation — must equal the brute-force rebuild
// a full invalidation would produce, entry for entry.
func TestMoveRadioIncrementalMatchesFullInvalidation(t *testing.T) {
	rng := sim.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		side := 600 + rng.Float64()*9000
		n := 15 + rng.Intn(60)
		engine := sim.NewEngine(uint64(trial))
		medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
		for i := 0; i < n; i++ {
			medium.AttachRadio(packet.NodeID(i), geom.Point{
				X: rng.Float64()*side - side/2,
				Y: rng.Float64() * side,
			})
		}
		// Build every list so stale survivors would be caught.
		for _, src := range medium.radios {
			medium.linksFrom(src)
		}
		for move := 0; move < 30; move++ {
			r := medium.radios[rng.Intn(n)]
			medium.MoveRadio(r, geom.Point{
				X: rng.Float64()*side - side/2,
				Y: rng.Float64() * side,
			})
			for _, src := range medium.radios {
				sameLinks(t, medium.linksFrom(src), medium.buildLinksBrute(src), "after move")
			}
		}
	}
}

// TestMoveRadioLeavesFarListsWarm pins the incremental part: a move between
// two spots far from an established transmitter must not discard that
// transmitter's list, while lists around either endpoint are dropped.
func TestMoveRadioLeavesFarListsWarm(t *testing.T) {
	engine := sim.NewEngine(5)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	cell := medium.grid.size
	nearOld := medium.AttachRadio(0, geom.Point{X: 0})
	nearNew := medium.AttachRadio(1, geom.Point{X: 6 * cell})
	far := medium.AttachRadio(2, geom.Point{X: 12 * cell})
	mover := medium.AttachRadio(3, geom.Point{X: 100})
	for _, r := range medium.radios {
		medium.linksFrom(r)
	}
	medium.MoveRadio(mover, geom.Point{X: 6*cell + 100})
	if medium.links[nearOld.index] != nil {
		t.Fatal("list near the old position survived the move")
	}
	if medium.links[nearNew.index] != nil {
		t.Fatal("list near the new position survived the move")
	}
	if medium.links[mover.index] != nil {
		t.Fatal("the moved radio's own list survived the move")
	}
	if medium.links[far.index] == nil {
		t.Fatal("a list far from both endpoints was discarded (invalidation not incremental)")
	}
}

// TestMoveRadioCellInvariants: after arbitrary moves every per-cell member
// list must still be sorted by attach index (the merge in gather depends on
// it) and hold each radio exactly once, in the cell of its current position.
func TestMoveRadioCellInvariants(t *testing.T) {
	rng := sim.NewRNG(42)
	engine := sim.NewEngine(9)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	for i := 0; i < 50; i++ {
		medium.AttachRadio(packet.NodeID(i), geom.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000})
	}
	for move := 0; move < 400; move++ {
		r := medium.radios[rng.Intn(50)]
		medium.MoveRadio(r, geom.Point{X: rng.Float64()*8000 - 2000, Y: rng.Float64()*8000 - 2000})
	}
	seen := make(map[*Radio]cellKey)
	for key, cell := range medium.grid.cells {
		if len(cell) == 0 {
			t.Fatalf("cell %v left empty but not deleted", key)
		}
		for i, r := range cell {
			if i > 0 && cell[i-1].index >= r.index {
				t.Fatalf("cell %v not sorted by attach index", key)
			}
			if prev, dup := seen[r]; dup {
				t.Fatalf("radio %d bucketed in both %v and %v", r.ID, prev, key)
			}
			seen[r] = key
			if got := medium.grid.keyFor(r.Pos); got != key {
				t.Fatalf("radio %d at %v bucketed in %v, want %v", r.ID, r.Pos, key, got)
			}
		}
	}
	if len(seen) != len(medium.radios) {
		t.Fatalf("%d radios bucketed, want %d", len(seen), len(medium.radios))
	}
}

// TestMoveRadioDeliveryFollowsPosition is the end-to-end check: a receiver
// that walks out of range stops hearing the transmitter, and hears it again
// after walking back.
func TestMoveRadioDeliveryFollowsPosition(t *testing.T) {
	engine := sim.NewEngine(13)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	tx := medium.AttachRadio(0, geom.Point{})
	rx := medium.AttachRadio(1, geom.Point{X: 150})
	delivered := 0
	rx.ReceiveFrame = func(*packet.Frame) { delivered++ }
	send := func() { engine.Schedule(0, func() { tx.Transmit(dataFrame(0, 64)) }); engine.RunAll() }
	send()
	if delivered != 1 {
		t.Fatalf("in range: delivered = %d, want 1", delivered)
	}
	medium.MoveRadio(rx, geom.Point{X: 5000})
	send()
	if delivered != 1 {
		t.Fatalf("out of range: delivered = %d, want still 1", delivered)
	}
	medium.MoveRadio(rx, geom.Point{X: 120})
	send()
	if delivered != 2 {
		t.Fatalf("back in range: delivered = %d, want 2", delivered)
	}
}

// TestMoveRadioStormByteIdentical replays a dense storm with deterministic
// mid-run moves three ways — incremental invalidation, full invalidation
// after every move, and the cache off entirely — and requires the same
// delivery trace from all three.
func TestMoveRadioStormByteIdentical(t *testing.T) {
	run := func(mode string) string {
		engine := sim.NewEngine(99)
		medium := NewMedium(engine, propagation.NewTwoRay(), propagation.Rayleigh{}, DefaultParams())
		if mode == "uncached" {
			medium.SetLinkCache(false)
		}
		var radios []*Radio
		var log strings.Builder
		for i := 0; i < 12; i++ {
			r := medium.AttachRadio(packet.NodeID(i), geom.Point{X: float64(i%4) * 700, Y: float64(i/4) * 700})
			r.ReceiveFrame = func(f *packet.Frame) {
				fmt.Fprintf(&log, "%d<-%d@%v\n", r.ID, f.Src, engine.Now())
			}
			radios = append(radios, r)
		}
		for i := 0; i < 300; i++ {
			r := radios[i%len(radios)]
			engine.At(time.Duration(i)*1100*time.Microsecond, func() { r.Transmit(dataFrame(r.ID, 256)) })
			if i%7 == 0 {
				// Deterministic walk: positions derived from the step index
				// only, identical across all three modes.
				m := radios[(i/7)%len(radios)]
				pos := geom.Point{X: float64((i*37)%2800) - 400, Y: float64((i * 53) % 2800)}
				engine.At(time.Duration(i)*1100*time.Microsecond+50*time.Microsecond, func() {
					medium.MoveRadio(m, pos)
					if mode == "full" {
						medium.invalidateLinks()
					}
				})
			}
		}
		engine.RunAll()
		for _, r := range radios {
			fmt.Fprintf(&log, "radio %d: %+v\n", r.ID, r.Stats)
		}
		fmt.Fprintf(&log, "events=%d now=%v\n", engine.Processed, engine.Now())
		return log.String()
	}
	incremental := run("incremental")
	if full := run("full"); incremental != full {
		t.Fatalf("incremental and full invalidation diverged:\nincremental:\n%s\nfull:\n%s", incremental, full)
	}
	if uncached := run("uncached"); incremental != uncached {
		t.Fatalf("incremental and uncached diverged:\nincremental:\n%s\nuncached:\n%s", incremental, uncached)
	}
	if !strings.Contains(incremental, "<-") {
		t.Fatal("storm delivered nothing; the comparison is vacuous")
	}
}

// TestMoveRadioUnderLinkFunc: with an oracle active the affected set cannot
// be bounded, so a move must fall back to full invalidation (propagation
// delays baked into the lists are distance-derived even under an oracle).
func TestMoveRadioUnderLinkFunc(t *testing.T) {
	engine := sim.NewEngine(21)
	medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
	a := medium.AttachRadio(0, geom.Point{})
	b := medium.AttachRadio(1, geom.Point{X: 100})
	medium.SetLinkFunc(func(tx, rx packet.NodeID, _ time.Duration, _ *sim.RNG) float64 {
		return medium.params.TxPowerW // everything decodes
	})
	medium.linksFrom(a)
	medium.linksFrom(b)
	medium.MoveRadio(b, geom.Point{X: 90000})
	if medium.links != nil {
		t.Fatal("move under a LinkFunc oracle must invalidate the whole cache")
	}
	ls := medium.linksFrom(a)
	if len(ls) != 1 || ls[0].propDelay != propagation.Delay(a.Pos.Distance(b.Pos)) {
		t.Fatal("rebuilt oracle list does not reflect the new distance")
	}
}

// TestTransmitAllocs pins the allocation budget of the fan-out hot path:
// zero allocations per transmit on the cached path (pooled arrivals, pooled
// events), and at most one per receiver — the deliberately unpooled arrival —
// on the uncached reference path.
func TestTransmitAllocs(t *testing.T) {
	build := func(cached bool) (*sim.Engine, *Radio, int) {
		engine := sim.NewEngine(31)
		medium := NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, DefaultParams())
		medium.SetLinkCache(cached)
		for i := 0; i < 6; i++ {
			medium.AttachRadio(packet.NodeID(i), geom.Point{X: float64(i) * 120})
		}
		return engine, medium.radios[0], len(medium.radios)
	}

	engine, tx, _ := build(true)
	frame := dataFrame(0, 256)
	cached := testing.AllocsPerRun(50, func() {
		tx.Transmit(frame)
		engine.RunAll()
	})
	if cached != 0 {
		t.Fatalf("cached fan-out allocates %.1f per transmit, want 0", cached)
	}

	engine, tx, n := build(false)
	uncached := testing.AllocsPerRun(50, func() {
		tx.Transmit(frame)
		engine.RunAll()
	})
	if max := float64(n - 1); uncached > max {
		t.Fatalf("uncached fan-out allocates %.1f per transmit, want <= %.0f (one unpooled arrival per receiver)", uncached, max)
	}
}
