// Package mac implements an IEEE 802.11-style DCF MAC layer on top of the
// phy package.
//
// Two transmission services are provided, mirroring the distinction the paper
// builds on (§2.1):
//
//   - Broadcast: carrier sense + DIFS + random backoff, then a single
//     transmission. No RTS/CTS, no acknowledgment, no retransmission — a
//     packet has exactly one chance per hop. Multicast data and all ODMRP
//     control packets use this service.
//   - Unicast: optional RTS/CTS exchange (above a size threshold), data,
//     and an ACK, with binary-exponential-backoff retransmissions up to a
//     retry limit. Provided for completeness and for the unicast-vs-broadcast
//     comparison examples.
//
// The MAC always draws a backoff from the contention window before
// transmitting (GloMoSim-style), which is important for flooding protocols
// where many nodes become ready to rebroadcast at the same instant.
package mac

import (
	"time"

	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/sim"
	"meshcast/internal/trace"
)

// Params holds 802.11 DCF timing and behavior constants.
type Params struct {
	// SlotTime is the backoff slot duration.
	SlotTime time.Duration
	// SIFS separates a frame from its control response (CTS/ACK).
	SIFS time.Duration
	// DIFS is the idle time required before contention resumes.
	DIFS time.Duration
	// CWMin and CWMax bound the contention window (slots-1).
	CWMin, CWMax int
	// RetryLimit is the number of unicast (re)transmissions before a frame
	// is dropped.
	RetryLimit int
	// RTSThresholdBytes: unicast frames at least this large are preceded by
	// RTS/CTS. Broadcast never uses RTS/CTS.
	RTSThresholdBytes int
	// QueueCap bounds the interface queue; excess enqueues are dropped.
	QueueCap int
}

// DefaultParams returns 802.11 (DSSS) DCF defaults.
func DefaultParams() Params {
	return Params{
		SlotTime:          20 * time.Microsecond,
		SIFS:              10 * time.Microsecond,
		DIFS:              50 * time.Microsecond,
		CWMin:             31,
		CWMax:             1023,
		RetryLimit:        7,
		RTSThresholdBytes: 256,
		QueueCap:          64,
	}
}

// Stats counts MAC-level outcomes.
type Stats struct {
	// Enqueued counts packets accepted into the interface queue.
	Enqueued uint64
	// QueueDrops counts packets rejected because the queue was full.
	QueueDrops uint64
	// BroadcastsSent counts broadcast data transmissions.
	BroadcastsSent uint64
	// UnicastsSent counts unicast data transmissions (including retries).
	UnicastsSent uint64
	// UnicastsDelivered counts unicast frames positively acknowledged.
	UnicastsDelivered uint64
	// RetryDrops counts unicast frames dropped after exhausting retries.
	RetryDrops uint64
	// AckTimeouts counts missing ACKs; CTSTimeouts counts missing CTSs.
	AckTimeouts, CTSTimeouts uint64
	// BytesSent counts all bytes put on the air, including MAC framing and
	// control frames.
	BytesSent uint64
}

type macState int

const (
	stateIdle macState = iota + 1
	stateDeferring
	stateBackoff
	stateTx
	stateWaitCTS
	stateWaitACK
)

type outgoing struct {
	pkt *packet.Packet
	dst packet.NodeID
}

// MAC is one node's 802.11 DCF instance.
type MAC struct {
	// Deliver is the upcall for received network packets. transmitter is
	// the MAC-level previous hop.
	Deliver func(p *packet.Packet, transmitter packet.NodeID)
	// Stats accumulates counters.
	Stats Stats
	// Telem holds the run-wide telemetry instruments (zero value disabled).
	Telem Telemetry
	// Tracer emits packet-journey spans for MAC transmissions and drops
	// (nil disables).
	Tracer *trace.Tracer

	engine *sim.Engine
	radio  *phy.Radio
	rng    *sim.RNG
	params Params

	state        macState
	queue        []outgoing
	cw           int
	retries      int
	backoffSlots int
	navUntil     time.Duration

	slotEvent  *sim.Event // pending backoff slot tick
	difsEvent  *sim.Event // pending end-of-DIFS check
	timerEvent *sim.Event // pending CTS/ACK timeout
	navEvent   *sim.Event // pending NAV expiry re-check
}

// New creates a MAC bound to radio, drawing randomness from a sub-stream of
// the engine's RNG.
func New(engine *sim.Engine, radio *phy.Radio, params Params) *MAC {
	m := &MAC{
		engine: engine,
		radio:  radio,
		rng:    engine.RNG().Split(),
		params: params,
		state:  stateIdle,
		cw:     params.CWMin,
	}
	radio.ReceiveFrame = m.onFrame
	radio.BusyChanged = m.onBusyChanged
	return m
}

// ID returns the node ID of the underlying radio.
func (m *MAC) ID() packet.NodeID { return m.radio.ID }

// Reset returns the MAC to idle, dropping every queued frame and canceling
// all pending contention/timeout timers — the volatile-state loss of a node
// crash or power cycle. Counters in Stats are preserved (they model an
// external observer, not on-node state).
func (m *MAC) Reset() {
	for _, ev := range []*sim.Event{m.slotEvent, m.difsEvent, m.timerEvent, m.navEvent} {
		ev.Stop()
	}
	m.slotEvent, m.difsEvent, m.timerEvent, m.navEvent = nil, nil, nil, nil
	m.queue = nil
	m.state = stateIdle
	m.cw = m.params.CWMin
	m.retries = 0
	m.backoffSlots = 0
	m.navUntil = 0
}

// QueueLen returns the current interface queue length.
func (m *MAC) QueueLen() int { return len(m.queue) }

// SendBroadcast queues p for link-layer broadcast. It reports whether the
// packet was accepted (false means the interface queue was full).
func (m *MAC) SendBroadcast(p *packet.Packet) bool {
	return m.enqueue(outgoing{pkt: p, dst: packet.Broadcast})
}

// SendUnicast queues p for acknowledged unicast delivery to dst.
func (m *MAC) SendUnicast(p *packet.Packet, dst packet.NodeID) bool {
	return m.enqueue(outgoing{pkt: p, dst: dst})
}

func (m *MAC) enqueue(o outgoing) bool {
	if len(m.queue) >= m.params.QueueCap {
		m.Stats.QueueDrops++
		m.Telem.QueueDrops.Inc()
		m.Tracer.Span(trace.SpanMACDrop, m.radio.ID, m.radio.ID, o.pkt)
		return false
	}
	m.Stats.Enqueued++
	m.Telem.Enqueued.Inc()
	m.queue = append(m.queue, o)
	m.Telem.QueueDepth.Observe(float64(len(m.queue)))
	if m.state == stateIdle {
		m.startContention()
	}
	return true
}

// channelBusy combines physical carrier sense with the NAV (virtual carrier
// sense).
func (m *MAC) channelBusy() bool {
	return m.radio.CarrierBusy() || m.engine.Now() < m.navUntil
}

// startContention begins the DIFS + backoff procedure for the head-of-queue
// frame. A fresh backoff is drawn only when none is pending (a paused
// countdown resumes where it left off, per 802.11).
func (m *MAC) startContention() {
	if len(m.queue) == 0 {
		m.state = stateIdle
		return
	}
	if m.backoffSlots == 0 {
		m.backoffSlots = 1 + m.rng.Intn(m.cw)
		m.Telem.Backoffs.Inc()
	}
	if m.channelBusy() {
		m.state = stateDeferring
		m.armNAVCheck()
		return
	}
	m.state = stateDeferring
	m.difsEvent = m.engine.Schedule(m.params.DIFS, m.afterDIFS)
}

func (m *MAC) afterDIFS() {
	m.difsEvent = nil
	if m.state != stateDeferring {
		return
	}
	if m.channelBusy() {
		m.armNAVCheck()
		return
	}
	m.state = stateBackoff
	m.scheduleSlot()
}

func (m *MAC) scheduleSlot() {
	m.slotEvent = m.engine.Schedule(m.params.SlotTime, m.slotTick)
}

func (m *MAC) slotTick() {
	m.slotEvent = nil
	if m.state != stateBackoff {
		return
	}
	if m.channelBusy() {
		// Pause countdown; it resumes after the channel is idle for DIFS.
		m.state = stateDeferring
		m.armNAVCheck()
		return
	}
	m.backoffSlots--
	if m.backoffSlots > 0 {
		m.scheduleSlot()
		return
	}
	m.transmitHead()
}

// armNAVCheck ensures progress when the channel is busy only due to the NAV:
// the radio will not emit a BusyChanged transition for NAV expiry, so
// schedule a re-check.
func (m *MAC) armNAVCheck() {
	if m.navEvent != nil || m.engine.Now() >= m.navUntil {
		return
	}
	until := m.navUntil - m.engine.Now()
	m.navEvent = m.engine.Schedule(until, func() {
		m.navEvent = nil
		if m.state == stateDeferring && !m.channelBusy() {
			m.difsEvent = m.engine.Schedule(m.params.DIFS, m.afterDIFS)
		}
	})
}

func (m *MAC) onBusyChanged(busy bool) {
	if busy {
		// Cancel any DIFS wait or slot tick in flight; countdown state is
		// preserved in backoffSlots.
		if m.difsEvent != nil {
			m.difsEvent.Stop()
			m.difsEvent = nil
		}
		if m.slotEvent != nil {
			m.slotEvent.Stop()
			m.slotEvent = nil
		}
		if m.state == stateBackoff {
			m.state = stateDeferring
		}
		return
	}
	// Channel became idle: resume contention after DIFS.
	if m.state == stateDeferring && m.difsEvent == nil && !m.channelBusy() {
		m.difsEvent = m.engine.Schedule(m.params.DIFS, m.afterDIFS)
	}
}

func (m *MAC) transmitHead() {
	if len(m.queue) == 0 {
		m.state = stateIdle
		return
	}
	head := m.queue[0]
	if head.dst == packet.Broadcast {
		m.transmitBroadcast(head)
		return
	}
	m.transmitUnicast(head)
}

func (m *MAC) transmitBroadcast(o outgoing) {
	m.state = stateTx
	f := &packet.Frame{Kind: packet.FrameData, Src: m.radio.ID, Dst: packet.Broadcast, Payload: o.pkt}
	airtime := m.radio.Transmit(f)
	m.Tracer.Span(trace.SpanMACTx, m.radio.ID, m.radio.ID, o.pkt)
	m.Stats.BroadcastsSent++
	m.Telem.BroadcastsSent.Inc()
	m.Stats.BytesSent += uint64(f.SizeBytes())
	m.Telem.BytesSent.Add(uint64(f.SizeBytes()))
	m.engine.Schedule(airtime, func() {
		// One shot: done regardless of reception anywhere.
		m.dequeueHead()
	})
}

func (m *MAC) dequeueHead() {
	if len(m.queue) > 0 {
		m.queue = m.queue[1:]
	}
	m.retries = 0
	m.cw = m.params.CWMin
	m.backoffSlots = 0
	m.startContention()
}

func (m *MAC) transmitUnicast(o outgoing) {
	dataFrame := &packet.Frame{Kind: packet.FrameData, Src: m.radio.ID, Dst: o.dst, Payload: o.pkt}
	if dataFrame.SizeBytes() >= m.params.RTSThresholdBytes {
		m.state = stateWaitCTS
		// NAV covers CTS + DATA + ACK + 3×SIFS.
		nav := 3*m.params.SIFS +
			m.airtime(packet.CTSBytes) + m.airtime(dataFrame.SizeBytes()) + m.airtime(packet.ACKBytes)
		rts := &packet.Frame{Kind: packet.FrameRTS, Src: m.radio.ID, Dst: o.dst, DurationNAV: nav}
		at := m.radio.Transmit(rts)
		m.Stats.BytesSent += uint64(rts.SizeBytes())
		m.Telem.BytesSent.Add(uint64(rts.SizeBytes()))
		timeout := at + m.params.SIFS + m.airtime(packet.CTSBytes) + 2*m.params.SlotTime
		m.timerEvent = m.engine.Schedule(timeout, func() {
			m.timerEvent = nil
			if m.state == stateWaitCTS {
				m.Stats.CTSTimeouts++
				m.Telem.CTSTimeouts.Inc()
				m.retryHead()
			}
		})
		return
	}
	m.sendUnicastData(o)
}

func (m *MAC) sendUnicastData(o outgoing) {
	m.state = stateWaitACK
	f := &packet.Frame{Kind: packet.FrameData, Src: m.radio.ID, Dst: o.dst, Payload: o.pkt}
	at := m.radio.Transmit(f)
	m.Tracer.Span(trace.SpanMACTx, m.radio.ID, m.radio.ID, o.pkt)
	m.Stats.UnicastsSent++
	m.Telem.UnicastsSent.Inc()
	m.Stats.BytesSent += uint64(f.SizeBytes())
	m.Telem.BytesSent.Add(uint64(f.SizeBytes()))
	timeout := at + m.params.SIFS + m.airtime(packet.ACKBytes) + 2*m.params.SlotTime
	m.timerEvent = m.engine.Schedule(timeout, func() {
		m.timerEvent = nil
		if m.state == stateWaitACK {
			m.Stats.AckTimeouts++
			m.Telem.AckTimeouts.Inc()
			m.retryHead()
		}
	})
}

// retryHead doubles the contention window and re-contends for the head
// frame, dropping it once the retry limit is reached.
func (m *MAC) retryHead() {
	m.retries++
	m.Telem.Retries.Inc()
	if m.retries > m.params.RetryLimit {
		m.Stats.RetryDrops++
		m.Telem.RetryDrops.Inc()
		if len(m.queue) > 0 {
			m.Tracer.Span(trace.SpanMACDrop, m.radio.ID, m.radio.ID, m.queue[0].pkt)
		}
		m.dequeueHead()
		return
	}
	if m.cw < m.params.CWMax {
		m.cw = min(2*(m.cw+1)-1, m.params.CWMax)
	}
	m.backoffSlots = 0 // draw a fresh, larger backoff
	m.startContention()
}

func (m *MAC) airtime(bytes int) time.Duration {
	return m.radio.AirTime(bytes)
}

// onFrame handles every frame the radio decodes.
func (m *MAC) onFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.FrameData:
		m.onData(f)
	case packet.FrameRTS:
		m.onRTS(f)
	case packet.FrameCTS:
		m.onCTS(f)
	case packet.FrameACK:
		m.onACK(f)
	}
}

func (m *MAC) onData(f *packet.Frame) {
	if f.Dst != packet.Broadcast && f.Dst != m.radio.ID {
		// Overheard unicast for somebody else; nothing to do (the NAV was
		// set by the RTS/CTS if there was one).
		return
	}
	if f.Dst == m.radio.ID {
		// Acknowledge after SIFS. Control responses do not contend.
		m.engine.Schedule(m.params.SIFS, func() {
			ack := &packet.Frame{Kind: packet.FrameACK, Src: m.radio.ID, Dst: f.Src}
			m.radio.Transmit(ack)
			m.Stats.BytesSent += uint64(ack.SizeBytes())
			m.Telem.BytesSent.Add(uint64(ack.SizeBytes()))
		})
	}
	if m.Deliver != nil && f.Payload != nil {
		m.Deliver(f.Payload, f.Src)
	}
}

func (m *MAC) onRTS(f *packet.Frame) {
	if f.Dst != m.radio.ID {
		m.setNAV(f.DurationNAV)
		return
	}
	if m.engine.Now() < m.navUntil {
		return // our own NAV forbids responding
	}
	m.engine.Schedule(m.params.SIFS, func() {
		nav := f.DurationNAV - m.params.SIFS - m.airtime(packet.CTSBytes)
		cts := &packet.Frame{Kind: packet.FrameCTS, Src: m.radio.ID, Dst: f.Src, DurationNAV: nav}
		m.radio.Transmit(cts)
		m.Stats.BytesSent += uint64(cts.SizeBytes())
		m.Telem.BytesSent.Add(uint64(cts.SizeBytes()))
	})
}

func (m *MAC) onCTS(f *packet.Frame) {
	if f.Dst != m.radio.ID {
		m.setNAV(f.DurationNAV)
		return
	}
	if m.state != stateWaitCTS || len(m.queue) == 0 {
		return
	}
	if m.timerEvent != nil {
		m.timerEvent.Stop()
		m.timerEvent = nil
	}
	head := m.queue[0]
	m.engine.Schedule(m.params.SIFS, func() {
		if m.state == stateWaitCTS {
			m.sendUnicastData(head)
		}
	})
}

func (m *MAC) onACK(f *packet.Frame) {
	if f.Dst != m.radio.ID || m.state != stateWaitACK {
		return
	}
	if m.timerEvent != nil {
		m.timerEvent.Stop()
		m.timerEvent = nil
	}
	m.Stats.UnicastsDelivered++
	m.dequeueHead()
}

// setNAV extends the virtual carrier sense until now+d if that is later than
// the current NAV.
func (m *MAC) setNAV(d time.Duration) {
	until := m.engine.Now() + d
	if until > m.navUntil {
		m.navUntil = until
	}
}
