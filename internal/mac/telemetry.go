package mac

import "meshcast/internal/telemetry"

// Telemetry holds the MAC layer's run-wide instruments, shared by every MAC
// on the run. The zero value is fully disabled.
type Telemetry struct {
	// Backoffs counts fresh backoff draws; Retries counts unicast
	// retransmission attempts.
	Backoffs, Retries *telemetry.Counter
	// CTSTimeouts and AckTimeouts count missing control responses;
	// RetryDrops counts frames abandoned at the retry limit.
	CTSTimeouts, AckTimeouts, RetryDrops *telemetry.Counter
	// Enqueued and QueueDrops count interface-queue admissions and
	// rejections.
	Enqueued, QueueDrops *telemetry.Counter
	// BroadcastsSent and UnicastsSent count data transmissions; BytesSent
	// counts all bytes put on the air including control frames.
	BroadcastsSent, UnicastsSent, BytesSent *telemetry.Counter
	// QueueDepth observes the queue length after every successful enqueue.
	QueueDepth *telemetry.Histogram
}

// NewTelemetry returns MAC instruments registered under the "mac." prefix.
// A nil registry yields the disabled zero value.
func NewTelemetry(reg *telemetry.Registry) Telemetry {
	return Telemetry{
		Backoffs:       reg.Counter("mac.backoffs"),
		Retries:        reg.Counter("mac.retries"),
		CTSTimeouts:    reg.Counter("mac.cts_timeouts"),
		AckTimeouts:    reg.Counter("mac.ack_timeouts"),
		RetryDrops:     reg.Counter("mac.retry_drops"),
		Enqueued:       reg.Counter("mac.enqueued"),
		QueueDrops:     reg.Counter("mac.queue_drops"),
		BroadcastsSent: reg.Counter("mac.broadcasts_sent"),
		UnicastsSent:   reg.Counter("mac.unicasts_sent"),
		BytesSent:      reg.Counter("mac.bytes_sent"),
		QueueDepth:     reg.Histogram("mac.queue_depth", telemetry.DepthBuckets),
	}
}
