package mac

import (
	"testing"
	"time"

	"meshcast/internal/geom"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
)

// testNet builds n nodes at the given positions over a non-fading two-ray
// medium and returns their MACs.
func testNet(t *testing.T, seed uint64, positions ...geom.Point) (*sim.Engine, []*MAC) {
	t.Helper()
	engine := sim.NewEngine(seed)
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, phy.DefaultParams())
	macs := make([]*MAC, len(positions))
	for i, pos := range positions {
		radio := medium.AttachRadio(packet.NodeID(i), pos)
		macs[i] = New(engine, radio, DefaultParams())
	}
	return engine, macs
}

func dataPkt(src packet.NodeID, seq uint32, bytes int) *packet.Packet {
	return &packet.Packet{Kind: packet.TypeData, Src: src, Seq: seq, PayloadBytes: bytes}
}

func TestBroadcastDeliveredToNeighbors(t *testing.T) {
	engine, macs := testNet(t, 1,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 150, Y: 0}, geom.Point{X: 0, Y: 150})
	var got1, got2 []*packet.Packet
	var from1 packet.NodeID
	macs[1].Deliver = func(p *packet.Packet, tx packet.NodeID) { got1 = append(got1, p); from1 = tx }
	macs[2].Deliver = func(p *packet.Packet, tx packet.NodeID) { got2 = append(got2, p) }
	engine.Schedule(0, func() { macs[0].SendBroadcast(dataPkt(0, 1, 512)) })
	engine.Run(time.Second)
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("deliveries = (%d, %d), want (1, 1)", len(got1), len(got2))
	}
	if from1 != 0 {
		t.Fatalf("transmitter = %v, want n0", from1)
	}
	if macs[0].Stats.BroadcastsSent != 1 {
		t.Fatalf("BroadcastsSent = %d", macs[0].Stats.BroadcastsSent)
	}
}

func TestBroadcastNotRetransmitted(t *testing.T) {
	// Broadcast has exactly one transmission even when nobody receives it.
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 1200, Y: 0})
	engine.Schedule(0, func() { macs[0].SendBroadcast(dataPkt(0, 1, 512)) })
	engine.Run(time.Second)
	if macs[0].Stats.BroadcastsSent != 1 {
		t.Fatalf("BroadcastsSent = %d, want 1 (no retries for broadcast)", macs[0].Stats.BroadcastsSent)
	}
	if macs[0].QueueLen() != 0 {
		t.Fatal("queue should drain after the single transmission")
	}
}

func TestCarrierSensePreventsCollision(t *testing.T) {
	// Both senders are within carrier-sense range of each other; the second
	// defers and both frames arrive at the receiver.
	engine, macs := testNet(t, 7,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0}, geom.Point{X: 50, Y: 100})
	delivered := 0
	macs[2].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	engine.Schedule(0, func() { macs[0].SendBroadcast(dataPkt(0, 1, 512)) })
	// Enqueue on node 1 while node 0's frame is (likely) on the air.
	engine.Schedule(time.Millisecond, func() { macs[1].SendBroadcast(dataPkt(1, 1, 512)) })
	engine.Run(time.Second)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (carrier sense should serialize)", delivered)
	}
}

func TestBackoffSeparatesSimultaneousSenders(t *testing.T) {
	// Two senders become ready at the same instant. Random backoff should
	// usually separate them; across 20 rounds the receiver must see most
	// frames (a MAC without backoff would lose nearly all of them).
	engine, macs := testNet(t, 99,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0}, geom.Point{X: 50, Y: 100})
	delivered := 0
	macs[2].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	const rounds = 20
	for i := 0; i < rounds; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		engine.At(at, func() { macs[0].SendBroadcast(dataPkt(0, uint32(i), 512)) })
		engine.At(at, func() { macs[1].SendBroadcast(dataPkt(1, uint32(i), 512)) })
	}
	engine.Run(10 * time.Second)
	if delivered < 2*rounds*8/10 {
		t.Fatalf("delivered = %d of %d frames; backoff is not separating senders", delivered, 2*rounds)
	}
}

func TestHiddenTerminalCausesLoss(t *testing.T) {
	// With the default thresholds the carrier-sense range (550 m) is more
	// than twice the receive range (250 m), so two senders that can both
	// reach a middle node always hear each other. To create a true hidden
	// pair, shrink carrier sense to the receive threshold: A and C are
	// 480 m apart (mutually deaf) and both 240 m from B.
	engine := sim.NewEngine(5)
	params := phy.DefaultParams()
	params.CSThresholdW = params.RxThresholdW
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), propagation.NoFading{}, params)
	positions := []geom.Point{{X: 0, Y: 0}, {X: 240, Y: 0}, {X: 480, Y: 0}}
	macs := make([]*MAC, len(positions))
	for i, pos := range positions {
		macs[i] = New(engine, medium.AttachRadio(packet.NodeID(i), pos), DefaultParams())
	}
	delivered := 0
	macs[1].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	const rounds = 50
	for i := 0; i < rounds; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		engine.At(at, func() { macs[0].SendBroadcast(dataPkt(0, uint32(i), 512)) })
		engine.At(at, func() { macs[2].SendBroadcast(dataPkt(2, uint32(i), 512)) })
	}
	engine.Run(time.Minute)
	// Equal power, same slot-ish start: essentially everything should
	// collide (no capture at equal power).
	if delivered > rounds {
		t.Fatalf("delivered = %d of %d; hidden terminals should collide heavily", delivered, 2*rounds)
	}
	if medium.Radios()[1].Stats.Collisions == 0 {
		t.Fatal("no collisions recorded at the middle node")
	}
}

func TestQueueCapDrops(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	engine.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			macs[0].SendBroadcast(dataPkt(0, uint32(i), 512))
		}
	})
	engine.Run(10 * time.Second)
	if macs[0].Stats.QueueDrops == 0 {
		t.Fatal("expected queue drops when enqueueing 100 packets at once")
	}
	if macs[0].Stats.Enqueued != uint64(DefaultParams().QueueCap) {
		t.Fatalf("Enqueued = %d, want %d", macs[0].Stats.Enqueued, DefaultParams().QueueCap)
	}
	// Everything accepted must eventually be transmitted.
	if macs[0].Stats.BroadcastsSent != macs[0].Stats.Enqueued {
		t.Fatalf("BroadcastsSent = %d, want %d", macs[0].Stats.BroadcastsSent, macs[0].Stats.Enqueued)
	}
}

func TestQueueDrainsInFIFOOrder(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	var seqs []uint32
	macs[1].Deliver = func(p *packet.Packet, _ packet.NodeID) { seqs = append(seqs, p.Seq) }
	engine.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			macs[0].SendBroadcast(dataPkt(0, uint32(i), 64))
		}
	})
	engine.Run(time.Second)
	if len(seqs) != 10 {
		t.Fatalf("delivered %d of 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("out-of-order delivery: %v", seqs)
		}
	}
}

func TestUnicastAcknowledged(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	delivered := 0
	macs[1].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 100), 1) })
	engine.Run(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if macs[0].Stats.UnicastsDelivered != 1 {
		t.Fatalf("UnicastsDelivered = %d, want 1", macs[0].Stats.UnicastsDelivered)
	}
	if macs[0].Stats.AckTimeouts != 0 {
		t.Fatalf("AckTimeouts = %d, want 0", macs[0].Stats.AckTimeouts)
	}
}

func TestUnicastRetriesThenDrops(t *testing.T) {
	// Receiver out of range: no ACK ever comes back. Small payload keeps
	// the exchange below the RTS threshold so we exercise the ACK path.
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 600, Y: 0})
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 10), 1) })
	engine.Run(10 * time.Second)
	wantTx := uint64(DefaultParams().RetryLimit + 1)
	if macs[0].Stats.UnicastsSent != wantTx {
		t.Fatalf("UnicastsSent = %d, want %d", macs[0].Stats.UnicastsSent, wantTx)
	}
	if macs[0].Stats.RetryDrops != 1 {
		t.Fatalf("RetryDrops = %d, want 1", macs[0].Stats.RetryDrops)
	}
	if macs[0].QueueLen() != 0 {
		t.Fatal("queue should drain after retry drop")
	}
}

func TestUnicastRTSCTSForLargeFrames(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	delivered := 0
	macs[1].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 512), 1) })
	engine.Run(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// RTS (20) + DATA + our ACK share of bytes must all be counted at the
	// sender; the receiver sends CTS + ACK.
	if macs[1].Stats.BytesSent == 0 {
		t.Fatal("receiver sent no control frames; RTS/CTS path not exercised")
	}
	if macs[0].Stats.CTSTimeouts != 0 {
		t.Fatalf("CTSTimeouts = %d, want 0", macs[0].Stats.CTSTimeouts)
	}
}

func TestUnicastCTSTimeoutOutOfRange(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 600, Y: 0})
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 512), 1) })
	engine.Run(10 * time.Second)
	if macs[0].Stats.CTSTimeouts == 0 {
		t.Fatal("expected CTS timeouts for out-of-range RTS")
	}
	if macs[0].Stats.RetryDrops != 1 {
		t.Fatalf("RetryDrops = %d, want 1", macs[0].Stats.RetryDrops)
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// Node 2 overhears node 0's RTS (NAV) and must defer its own broadcast
	// until the unicast exchange finishes; everything still gets through.
	engine, macs := testNet(t, 3,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 150, Y: 0}, geom.Point{X: 75, Y: 100})
	delivered := 0
	macs[1].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 512), 1) })
	engine.Schedule(500*time.Microsecond, func() { macs[2].SendBroadcast(dataPkt(2, 1, 512)) })
	engine.Run(time.Second)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (unicast + overheard broadcast)", delivered)
	}
	if macs[0].Stats.UnicastsDelivered != 1 {
		t.Fatal("unicast was not acknowledged under contention")
	}
}

func TestBytesSentAccounted(t *testing.T) {
	engine, macs := testNet(t, 1, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	engine.Schedule(0, func() { macs[0].SendBroadcast(dataPkt(0, 1, 512)) })
	engine.Run(time.Second)
	p := dataPkt(0, 1, 512)
	f := packet.Frame{Kind: packet.FrameData, Payload: p}
	if macs[0].Stats.BytesSent != uint64(f.SizeBytes()) {
		t.Fatalf("BytesSent = %d, want %d", macs[0].Stats.BytesSent, f.SizeBytes())
	}
}

func TestNAVExpiryResumesContention(t *testing.T) {
	// A node that overhears an RTS sets its NAV; once the NAV expires it
	// must resume and transmit without any further channel activity.
	engine, macs := testNet(t, 11,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 150, Y: 0}, geom.Point{X: 75, Y: 100})
	delivered := 0
	macs[1].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	// Node 0 starts an RTS/CTS unicast to a nonexistent... no — to node 1,
	// but node 1 is real so the exchange completes; node 2's broadcast
	// queued mid-exchange must still get out afterwards.
	engine.Schedule(0, func() { macs[0].SendUnicast(dataPkt(0, 1, 512), 1) })
	engine.Schedule(200*time.Microsecond, func() { macs[2].SendBroadcast(dataPkt(2, 9, 256)) })
	engine.Run(2 * time.Second)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want unicast + post-NAV broadcast", delivered)
	}
	if macs[2].Stats.BroadcastsSent != 1 {
		t.Fatal("broadcast never left after NAV")
	}
}

func TestEnqueueWhileBusyDefers(t *testing.T) {
	// Enqueueing while another node's frame is on the air must defer, not
	// collide: the receiver gets both frames.
	engine, macs := testNet(t, 12,
		geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0}, geom.Point{X: 50, Y: 80})
	delivered := 0
	macs[2].Deliver = func(*packet.Packet, packet.NodeID) { delivered++ }
	engine.Schedule(0, func() { macs[0].SendBroadcast(dataPkt(0, 1, 1400)) })
	// 1400B takes ~5.9ms; enqueue at 2ms, mid-flight.
	engine.Schedule(2*time.Millisecond, func() { macs[1].SendBroadcast(dataPkt(1, 1, 256)) })
	engine.Run(time.Second)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
}

func TestPowerDownUnblocksDeferringMAC(t *testing.T) {
	// Regression for the SetDown carrier-sense bug: a MAC deferring on a
	// neighbor's frame whose radio is powered down mid-frame must learn the
	// (now unsensed) channel is idle immediately. Pre-fix, SetDown flipped
	// only the down flag, so the MAC kept lastBusy=true and stayed deferring
	// until the neighbor's frame-end event — this test fails there because
	// the broadcast has not left by the 5 ms horizon.
	engine, macs := testNet(t, 21,
		geom.Point{X: 0, Y: 0},   // blocker
		geom.Point{X: 400, Y: 0}) // sender: CS range of blocker, beyond decode
	sender := macs[1]
	// The blocker's frame goes straight onto the air (no MAC contention, so
	// its start time is exact): 2000 B payload is on air ~8.3 ms.
	blockFrame := &packet.Frame{
		Kind: packet.FrameData, Src: 0, Dst: packet.Broadcast, Payload: dataPkt(0, 1, 2000),
	}
	engine.Schedule(0, func() { macs[0].radio.Transmit(blockFrame) })
	// Sender enqueues mid-frame and defers on carrier sense.
	engine.Schedule(time.Millisecond, func() { sender.SendBroadcast(dataPkt(1, 1, 64)) })
	// Sender's radio dies at 2 ms: carrier sense must re-derive to idle and
	// release the MAC. (The radio then drops the frame on the floor, but the
	// MAC-level send completes — that is the unblock under test.)
	engine.Schedule(2*time.Millisecond, func() { sender.radio.SetDown(true) })
	// 5 ms is well past DIFS + max backoff (~0.7 ms after the unblock) and
	// well before the blocker's frame ends (~8.3 ms).
	engine.Run(5 * time.Millisecond)
	if sender.Stats.BroadcastsSent != 1 {
		t.Fatalf("BroadcastsSent = %d at 5 ms; MAC still deferring on a powered-down radio's stale carrier sense",
			sender.Stats.BroadcastsSent)
	}
}
