// Package mcst implements MCST, a core-based shared-tree multicast protocol
// — the tree-based counterpart to the mesh-based ODMRP — behind the same
// multicast.Protocol interface, reusing the paper's link-quality path
// metrics for parent selection.
//
// Where ODMRP builds one forwarding mesh per (group, source), MCST maintains
// a single bidirectional shared tree per group rooted at a core:
//
//  1. The lowest-ID active source elects itself core and periodically floods
//     a CORE ANNOUNCE. Like ODMRP's JOIN QUERY, the announce accumulates the
//     cost of the traveled path using the node's NEIGHBOR TABLE and the
//     configured routing metric; within α of the first copy, improving
//     duplicates are re-flooded, giving receivers path diversity to choose
//     from.
//  2. Any other source that hears an announce from a lower-ID core stops
//     announcing and behaves as a sender: it grafts itself onto the tree
//     exactly like a member. Announce suppression makes core election
//     deterministic and message-free.
//  3. Group members (and non-core senders) wait δ collecting announce
//     copies, then send a TREE JOIN to the best-cost upstream neighbor
//     (link-quality-weighted parent selection). A node named as parent sets
//     its on-tree flag and propagates its own join toward the core, once per
//     announce round; tree state expires after TreeTimeout unless refreshed.
//  4. Data is link-layer broadcast; on-tree nodes (and the core) rebroadcast
//     it, suppressing duplicates with the shared sliding window. Because
//     every on-tree node relays regardless of which direction the packet
//     travels, the tree is bidirectional: sender→core traffic is picked up
//     by the member branches it crosses.
//
// Compared to ODMRP the shared tree trades per-source path optimality and
// mesh redundancy for less control traffic and soft state: one flood and one
// round-trip of joins per group instead of per source.
package mcst

import (
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
	"meshcast/internal/trace"
)

// Params configures the protocol.
type Params struct {
	// AnnounceInterval is the period between CORE ANNOUNCE floods of an
	// acting core.
	AnnounceInterval time.Duration
	// TreeTimeout is how long the on-tree flag stays set after the last
	// TREE JOIN refreshed it.
	TreeTimeout time.Duration
	// CoreTimeout is how long a suppressed source waits without hearing its
	// adopted core before reclaiming the core role (core failover).
	CoreTimeout time.Duration
	// JoinDelta (δ) is how long a member or sender accumulates duplicate
	// announces before joining along the best path. Zero selects
	// first-copy behavior.
	JoinDelta time.Duration
	// DupAlpha (α) is the window after the first copy of an announce during
	// which improving duplicates are re-flooded. Zero disables duplicate
	// forwarding.
	DupAlpha time.Duration
	// TTL bounds announce propagation in hops.
	TTL uint8
	// AnnounceJitter decorrelates the announce flood; DataJitter and
	// JoinJitter do the same for data rebroadcast and join propagation.
	AnnounceJitter time.Duration
	DataJitter     time.Duration
	JoinJitter     time.Duration
}

// DefaultParams returns the link-quality configuration, aligned with the
// paper's ODMRP timing so protocol comparisons differ in mechanism, not
// tuning: δ = 30 ms, α = 20 ms, announce every 3 s, tree timeout 3 ×
// announce.
func DefaultParams() Params {
	return Params{
		AnnounceInterval: 3 * time.Second,
		TreeTimeout:      9 * time.Second,
		CoreTimeout:      7 * time.Second,
		JoinDelta:        30 * time.Millisecond,
		DupAlpha:         20 * time.Millisecond,
		TTL:              32,
		AnnounceJitter:   4 * time.Millisecond,
		DataJitter:       time.Millisecond,
		JoinJitter:       2 * time.Millisecond,
	}
}

// OriginalParams returns DefaultParams with the link-quality modifications
// switched off: first-copy joins, no duplicate re-flooding. Combined with
// the MinHop metric this is the shortest-delay shared-tree baseline.
func OriginalParams() Params {
	p := DefaultParams()
	p.JoinDelta = 0
	p.DupAlpha = 0
	return p
}

// ParamsFor returns the configuration for a metric: OriginalParams for
// MinHop, DefaultParams for every link-quality metric.
func ParamsFor(k metric.Kind) Params {
	if k == metric.MinHop {
		return OriginalParams()
	}
	return DefaultParams()
}

// Stats counts protocol activity at one node.
type Stats struct {
	AnnouncesOriginated   uint64
	AnnouncesForwarded    uint64
	DupAnnouncesForwarded uint64
	JoinsSent             uint64
	CoreHandovers         uint64
	DataOriginated        uint64
	DataForwarded         uint64
	DataDelivered         uint64
	DataDuplicates        uint64
	ControlBytesSent      uint64
}

// groupCore keys per-(group, core) announce-round state.
type groupCore struct {
	group packet.GroupID
	core  packet.NodeID
}

// groupSource keys per-(group, source) data duplicate windows.
type groupSource struct {
	group packet.GroupID
	src   packet.NodeID
}

// announceRound holds the state of the latest CORE ANNOUNCE flood round
// seen for one (group, core). It mirrors ODMRP's query round: the same
// best-cost tracking drives both duplicate re-flooding and parent selection.
type announceRound struct {
	seq       uint32
	firstSeen time.Duration
	// firstUpstream is the previous hop of the first copy received; the
	// fallback parent when no copy has a usable (fully measured) cost yet.
	firstUpstream packet.NodeID
	bestCost      float64
	bestUpstream  packet.NodeID
	bestHops      uint8
	// bestForwarded is the best cost this node has re-flooded for this
	// round; duplicates must beat it to be forwarded again.
	bestForwarded float64
	forwardedAny  bool
	// joinScheduled marks that a δ join timer is pending; joined marks that
	// a TREE JOIN (member, sender, or on-tree propagation) has been sent
	// for this round already.
	joinScheduled bool
	joined        bool
}

// coreBinding tracks the core a node has adopted for a group.
type coreBinding struct {
	core      packet.NodeID
	lastHeard time.Duration
}

// Router is one node's MCST instance.
type Router struct {
	// Send broadcasts a packet via the node's MAC; reports acceptance.
	Send func(p *packet.Packet) bool
	// OnDeliver is called for every data packet delivered to this node as
	// a group member (first copy only).
	OnDeliver func(p *packet.Packet, from packet.NodeID)
	// Tracer, when non-nil, receives protocol events.
	Tracer *trace.Tracer
	// Stats accumulates protocol counters.
	Stats Stats
	// Telem holds the run-wide telemetry instruments (zero value disabled).
	Telem Telemetry

	id     packet.NodeID
	engine *sim.Engine
	rng    *sim.RNG
	params Params
	pm     metric.PathMetric
	table  *linkquality.Table

	members map[packet.GroupID]bool
	// sources marks groups this node actively sends to; announcers holds
	// the announce tickers of groups where it currently acts as core.
	sources     map[packet.GroupID]bool
	announcers  map[packet.GroupID]*sim.Ticker
	announceSeq map[packet.GroupID]uint32
	dataSeq     map[packet.GroupID]uint32

	cores     map[packet.GroupID]*coreBinding
	rounds    map[groupCore]*announceRound
	treeUntil map[packet.GroupID]time.Duration
	dups      map[groupSource]*multicast.DupWindow
	// failover marks groups with a pending core-liveness watchdog (armed
	// while this node is a suppressed source).
	failover map[packet.GroupID]bool

	// edgeUse counts data packets carried per directed link into this node
	// (delivered or forwarded), for tree analysis.
	edgeUse map[multicast.Edge]uint64
}

// New creates a router for node id using path metric pm and neighbor table
// table.
func New(engine *sim.Engine, id packet.NodeID, pm metric.PathMetric, table *linkquality.Table, params Params) *Router {
	return &Router{
		id:          id,
		engine:      engine,
		rng:         engine.RNG().Split(),
		params:      params,
		pm:          pm,
		table:       table,
		members:     make(map[packet.GroupID]bool),
		sources:     make(map[packet.GroupID]bool),
		announcers:  make(map[packet.GroupID]*sim.Ticker),
		announceSeq: make(map[packet.GroupID]uint32),
		dataSeq:     make(map[packet.GroupID]uint32),
		cores:       make(map[packet.GroupID]*coreBinding),
		rounds:      make(map[groupCore]*announceRound),
		treeUntil:   make(map[packet.GroupID]time.Duration),
		dups:        make(map[groupSource]*multicast.DupWindow),
		failover:    make(map[packet.GroupID]bool),
		edgeUse:     make(map[multicast.Edge]uint64),
	}
}

// ID returns the node ID.
func (r *Router) ID() packet.NodeID { return r.id }

// Metric returns the router's path metric.
func (r *Router) Metric() metric.PathMetric { return r.pm }

// Reset purges all soft state, modeling a node crash: announce rounds, core
// bindings, on-tree flags, duplicate windows, and the active source/core
// roles are discarded. Group membership survives (configuration), and so do
// the announce/data sequence counters (a restarted core must not reuse round
// numbers its neighbors' round state has already seen). A source stopped
// here must be re-registered via StartSource after restart.
func (r *Router) Reset() {
	for g, t := range r.announcers {
		t.Stop()
		delete(r.announcers, g)
	}
	r.sources = make(map[packet.GroupID]bool)
	r.failover = make(map[packet.GroupID]bool)
	r.cores = make(map[packet.GroupID]*coreBinding)
	r.rounds = make(map[groupCore]*announceRound)
	r.treeUntil = make(map[packet.GroupID]time.Duration)
	r.dups = make(map[groupSource]*multicast.DupWindow)
}

// JoinGroup registers this node as a receiver member of group.
func (r *Router) JoinGroup(group packet.GroupID) { r.members[group] = true }

// LeaveGroup removes receiver membership.
func (r *Router) LeaveGroup(group packet.GroupID) { delete(r.members, group) }

// IsMember reports receiver membership.
func (r *Router) IsMember(group packet.GroupID) bool { return r.members[group] }

// IsForwarder reports whether this node currently relays data for group: it
// is on the shared tree, or it is the acting core.
func (r *Router) IsForwarder(group packet.GroupID) bool {
	if _, core := r.announcers[group]; core {
		return true
	}
	return r.engine.Now() < r.treeUntil[group]
}

// EdgeUse returns a copy of the per-link data usage counters.
func (r *Router) EdgeUse() map[multicast.Edge]uint64 {
	out := make(map[multicast.Edge]uint64, len(r.edgeUse))
	for e, n := range r.edgeUse {
		out[e] = n
	}
	return out
}

// StartSource registers this node as an active source for group. Unless a
// lower-ID core is already known, the node assumes the core role and begins
// announcing immediately; it steps down on hearing a better core.
func (r *Router) StartSource(group packet.GroupID) {
	if r.sources[group] {
		return
	}
	r.sources[group] = true
	if b := r.cores[group]; b != nil && b.core < r.id && r.coreFresh(b) {
		// A better core is alive: graft as a sender on its next announce,
		// and watch its liveness in case it dies (core failover).
		r.armFailover(group)
		return
	}
	r.becomeCore(group)
}

// StopSource stops sending to group, relinquishing the core role if held.
func (r *Router) StopSource(group packet.GroupID) {
	delete(r.sources, group)
	if t, ok := r.announcers[group]; ok {
		t.Stop()
		delete(r.announcers, group)
	}
}

func (r *Router) coreFresh(b *coreBinding) bool {
	return r.engine.Now() < b.lastHeard+r.params.CoreTimeout
}

func (r *Router) becomeCore(group packet.GroupID) {
	if _, ok := r.announcers[group]; ok {
		return
	}
	r.floodAnnounce(group)
	r.announcers[group] = sim.NewTicker(r.engine, r.params.AnnounceInterval, r.params.AnnounceInterval/10, r.rng,
		func() { r.announceTick(group) })
}

// announceTick fires once per announce interval while holding the core
// role. If the adopted core expired (we were suppressed but kept sources),
// this is also where failover would re-elect us — the ticker only runs for
// acting cores, so just flood.
func (r *Router) announceTick(group packet.GroupID) {
	r.floodAnnounce(group)
}

func (r *Router) floodAnnounce(group packet.GroupID) {
	seq := r.announceSeq[group]
	r.announceSeq[group] = seq + 1
	a := &packet.Packet{
		Kind:    packet.TypeCoreAnnounce,
		Src:     r.id,
		PrevHop: r.id,
		Group:   group,
		Seq:     seq,
		TTL:     r.params.TTL,
		Cost:    r.pm.Initial(),
		SentAt:  r.engine.Now(),
		TraceID: r.Tracer.NewTraceID(r.id),
	}
	if r.send(a) {
		r.Stats.AnnouncesOriginated++
		r.Telem.AnnouncesOriginated.Inc()
		r.Tracer.Emit(r.id, trace.CatCore, "announce grp=%v seq=%d", group, seq)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, a)
	}
}

// SendData multicasts one application payload of payloadBytes to group.
// The node must be a registered source (StartSource) for the tree to carry
// its traffic, but SendData does not enforce that.
func (r *Router) SendData(group packet.GroupID, payloadBytes int) {
	seq := r.dataSeq[group]
	r.dataSeq[group] = seq + 1
	p := &packet.Packet{
		Kind:         packet.TypeData,
		Src:          r.id,
		PrevHop:      r.id,
		Group:        group,
		Seq:          seq,
		TTL:          r.params.TTL,
		PayloadBytes: payloadBytes,
		SentAt:       r.engine.Now(),
		TraceID:      r.Tracer.NewTraceID(r.id),
	}
	// Mark our own packet as seen so an echoed copy is not re-forwarded.
	r.dupFor(groupSource{group, r.id}).Seen(seq)
	if r.Send != nil && r.Send(p) {
		r.Stats.DataOriginated++
		r.Telem.DataOriginated.Inc()
		r.Tracer.Emit(r.id, trace.CatData, "originate grp=%v seq=%d", group, seq)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, p)
	}
}

func (r *Router) dupFor(key groupSource) *multicast.DupWindow {
	w, ok := r.dups[key]
	if !ok {
		w = &multicast.DupWindow{}
		r.dups[key] = w
	}
	return w
}

// send broadcasts control packets and accounts their bytes.
func (r *Router) send(p *packet.Packet) bool {
	if r.Send == nil || !r.Send(p) {
		return false
	}
	r.Stats.ControlBytesSent += uint64(p.SizeBytes())
	r.Telem.ControlBytes.Add(uint64(p.SizeBytes()))
	return true
}

// Handle processes a received MCST packet. It reports whether the packet
// kind belonged to MCST.
func (r *Router) Handle(p *packet.Packet, from packet.NodeID) bool {
	switch p.Kind {
	case packet.TypeCoreAnnounce:
		r.onAnnounce(p, from)
	case packet.TypeTreeJoin:
		r.onJoin(p, from)
	case packet.TypeData:
		r.onData(p, from)
	default:
		return false
	}
	return true
}

// adoptCore updates the group's core binding for an announce heard from
// core. It reports false when the announce is from a worse (higher-ID) core
// than a live adopted one and must be suppressed.
func (r *Router) adoptCore(group packet.GroupID, core packet.NodeID) bool {
	now := r.engine.Now()
	// While we act as core ourselves, only a strictly lower ID displaces us.
	if _, acting := r.announcers[group]; acting && core > r.id {
		return false
	}
	b := r.cores[group]
	switch {
	case b == nil || !r.coreFresh(b):
		if b != nil && b.core != core {
			r.Stats.CoreHandovers++
			r.Telem.CoreHandovers.Inc()
		}
		r.cores[group] = &coreBinding{core: core, lastHeard: now}
	case core == b.core:
		b.lastHeard = now
	case core < b.core:
		r.Stats.CoreHandovers++
		r.Telem.CoreHandovers.Inc()
		r.cores[group] = &coreBinding{core: core, lastHeard: now}
	default:
		return false // live better core already adopted
	}
	// A suppressed source steps down from the core role but keeps watching
	// the winner: if it goes silent, the source reclaims the role.
	if t, acting := r.announcers[group]; acting && core < r.id {
		t.Stop()
		delete(r.announcers, group)
		r.Tracer.Emit(r.id, trace.CatCore, "core-stepdown grp=%v core=%v", group, core)
		if r.sources[group] {
			r.armFailover(group)
		}
	}
	return true
}

// armFailover schedules the core-liveness watchdog for a suppressed source:
// if the adopted core stays silent past CoreTimeout, the source reclaims the
// core role and resumes announcing. At most one watchdog is pending per
// group; it re-arms itself while the core stays alive and disarms when this
// node stops sourcing or becomes core through another path.
func (r *Router) armFailover(group packet.GroupID) {
	if r.failover[group] {
		return
	}
	r.failover[group] = true
	r.engine.Schedule(r.params.CoreTimeout, func() {
		delete(r.failover, group)
		if !r.sources[group] {
			return
		}
		if _, acting := r.announcers[group]; acting {
			return
		}
		if b := r.cores[group]; b != nil && r.coreFresh(b) {
			r.armFailover(group)
			return
		}
		r.Stats.CoreHandovers++
		r.Telem.CoreHandovers.Inc()
		r.Tracer.Emit(r.id, trace.CatCore, "core-failover grp=%v", group)
		r.becomeCore(group)
	})
}

func (r *Router) onAnnounce(p *packet.Packet, from packet.NodeID) {
	if p.Src == r.id {
		return // our own flood echoed back
	}
	if !r.adoptCore(p.Group, p.Src) {
		return
	}
	now := r.engine.Now()
	key := groupCore{p.Group, p.Src}

	// Accumulate the cost of the link we just traversed (from → us), as
	// measured by our NEIGHBOR TABLE.
	linkCost := r.pm.LinkCost(r.table.Estimate(uint16(from), now))
	newCost := r.pm.Accumulate(p.Cost, linkCost)
	hops := p.HopCount + 1

	round, ok := r.rounds[key]
	if ok && p.Seq < round.seq {
		return // stale round
	}
	first := !ok || p.Seq > round.seq
	if first {
		round = &announceRound{
			seq:           p.Seq,
			firstSeen:     now,
			firstUpstream: from,
			bestCost:      r.pm.Worst(),
			bestForwarded: r.pm.Worst(),
		}
		r.rounds[key] = round
	}

	// Track the best parent candidate for this round.
	if r.pm.Better(newCost, round.bestCost) {
		round.bestCost = newCost
		round.bestUpstream = from
		round.bestHops = hops
	}

	// Members and suppressed senders graft onto the tree.
	if r.members[p.Group] || r.sources[p.Group] {
		if r.params.JoinDelta <= 0 {
			// First-copy behavior: join via the first announce heard.
			if first {
				r.sendJoin(p.Group, p.Src, p.Seq, from)
				round.joined = true
			}
		} else if !round.joinScheduled {
			round.joinScheduled = true
			r.engine.Schedule(r.params.JoinDelta, func() {
				cur := r.rounds[key]
				if cur == nil || cur.seq != p.Seq || cur.joined {
					return
				}
				cur.joined = true
				r.sendJoin(p.Group, p.Src, p.Seq, r.parentOf(cur))
			})
		}
	}

	// Flooding behavior: rebroadcast the first copy; within α, also
	// rebroadcast duplicates that improve on the best cost forwarded so far.
	if p.TTL <= 1 {
		return
	}
	forward := false
	if !round.forwardedAny {
		forward = true
	} else if r.params.DupAlpha > 0 &&
		now <= round.firstSeen+r.params.DupAlpha &&
		r.pm.Better(newCost, round.bestForwarded) {
		forward = true
		r.Stats.DupAnnouncesForwarded++
		r.Telem.DupAnnouncesForwarded.Inc()
	}
	if !forward {
		return
	}
	wasFirst := !round.forwardedAny
	round.forwardedAny = true
	round.bestForwarded = newCost

	fwd := p.Clone()
	fwd.PrevHop = r.id
	fwd.Cost = newCost
	fwd.HopCount = hops
	fwd.TTL = p.TTL - 1
	r.jitterSend(fwd, r.params.AnnounceJitter, func() {
		r.Tracer.Span(trace.SpanForward, r.id, from, fwd)
		if wasFirst {
			r.Stats.AnnouncesForwarded++
			r.Telem.AnnouncesForwarded.Inc()
			r.Tracer.Emit(r.id, trace.CatCore, "announce-fwd grp=%v core=%v seq=%d cost=%.4g",
				fwd.Group, fwd.Src, fwd.Seq, fwd.Cost)
		} else {
			r.Tracer.Emit(r.id, trace.CatCore, "announce-fwd-dup grp=%v core=%v seq=%d cost=%.4g",
				fwd.Group, fwd.Src, fwd.Seq, fwd.Cost)
		}
	})
}

// parentOf returns the upstream parent toward the core for an announce
// round: the best-cost upstream when a usable (fully measured) path was
// seen, otherwise the first copy's upstream, which keeps the tree
// bootstrapping while probes warm up.
func (r *Router) parentOf(round *announceRound) packet.NodeID {
	if r.pm.Usable(round.bestCost) {
		return round.bestUpstream
	}
	return round.firstUpstream
}

// sendJoin broadcasts a TREE JOIN naming parent as the upstream relay
// toward core for the given announce round.
func (r *Router) sendJoin(group packet.GroupID, core packet.NodeID, seq uint32, parent packet.NodeID) {
	if parent == r.id {
		return
	}
	join := &packet.Packet{
		Kind:    packet.TypeTreeJoin,
		Src:     r.id,
		PrevHop: r.id,
		Group:   group,
		Seq:     seq,
		SentAt:  r.engine.Now(),
		Replies: []packet.ReplyEntry{{Source: core, NextHop: parent}},
		TraceID: r.Tracer.NewTraceID(r.id),
	}
	r.jitterSend(join, r.params.JoinJitter, func() {
		r.Stats.JoinsSent++
		r.Telem.JoinsSent.Inc()
		r.Tracer.Emit(r.id, trace.CatJoin, "join grp=%v core=%v seq=%d parent=%v", group, core, seq, parent)
		r.Tracer.Span(trace.SpanOriginate, r.id, r.id, join)
	})
}

func (r *Router) onJoin(p *packet.Packet, from packet.NodeID) {
	for _, entry := range p.Replies {
		if entry.NextHop != r.id {
			continue
		}
		// We are the named parent: set/refresh the on-tree flag.
		until := r.engine.Now() + r.params.TreeTimeout
		if until > r.treeUntil[p.Group] {
			if r.engine.Now() >= r.treeUntil[p.Group] {
				r.Tracer.Emit(r.id, trace.CatJoin, "tree-set grp=%v (from %v)", p.Group, from)
			}
			r.treeUntil[p.Group] = until
		}
		if entry.Source == r.id {
			// The join reached the core: the branch is complete.
			continue
		}
		// Propagate our own TREE JOIN one hop further toward the core,
		// once per announce round.
		key := groupCore{p.Group, entry.Source}
		round := r.rounds[key]
		if round == nil || round.joined {
			continue
		}
		round.joined = true
		r.sendJoin(p.Group, entry.Source, round.seq, r.parentOf(round))
	}
}

func (r *Router) onData(p *packet.Packet, from packet.NodeID) {
	if p.Src == r.id {
		return
	}
	key := groupSource{p.Group, p.Src}
	if r.dupFor(key).Seen(p.Seq) {
		r.Stats.DataDuplicates++
		r.Telem.DupSuppressed.Inc()
		r.Tracer.Span(trace.SpanDupSuppress, r.id, from, p)
		return
	}
	carried := false
	if r.members[p.Group] {
		r.Stats.DataDelivered++
		r.Telem.DataDelivered.Inc()
		carried = true
		r.Tracer.Emit(r.id, trace.CatData, "deliver grp=%v src=%v seq=%d from=%v", p.Group, p.Src, p.Seq, from)
		r.Tracer.Span(trace.SpanDeliver, r.id, from, p)
		if r.OnDeliver != nil {
			r.OnDeliver(p, from)
		}
	}
	if r.IsForwarder(p.Group) && p.TTL > 1 {
		fwd := p.Clone()
		fwd.PrevHop = r.id
		fwd.TTL = p.TTL - 1
		carried = true
		r.jitterSend(fwd, r.params.DataJitter, func() {
			r.Stats.DataForwarded++
			r.Telem.DataForwarded.Inc()
			r.Tracer.Emit(r.id, trace.CatData, "forward grp=%v src=%v seq=%d", fwd.Group, fwd.Src, fwd.Seq)
			r.Tracer.Span(trace.SpanForward, r.id, from, fwd)
		})
	}
	if carried {
		r.edgeUse[multicast.Edge{From: from, To: r.id}]++
	}
}

// jitterSend broadcasts p after a uniform random delay in [0, jitter),
// invoking onSent if the MAC accepted it.
func (r *Router) jitterSend(p *packet.Packet, jitter time.Duration, onSent func()) {
	send := func() {
		ok := r.Send != nil && r.Send(p)
		if !ok {
			return
		}
		if p.Kind != packet.TypeData {
			r.Stats.ControlBytesSent += uint64(p.SizeBytes())
		}
		if onSent != nil {
			onSent()
		}
	}
	if jitter <= 0 {
		send()
		return
	}
	d := time.Duration(r.rng.Float64() * float64(jitter))
	r.engine.Schedule(d, send)
}
