package mcst

import (
	"fmt"

	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/telemetry"
	"meshcast/internal/trace"
)

// Name is the registered protocol name.
const Name = "mcst"

func init() {
	multicast.Register(Name, func(env multicast.Env, tuning any) (multicast.Protocol, error) {
		params := ParamsFor(env.Metric.Kind())
		switch t := tuning.(type) {
		case nil:
		case Params:
			params = t
		case *Params:
			if t != nil {
				params = *t
			}
		default:
			return nil, fmt.Errorf("mcst: unsupported tuning type %T", tuning)
		}
		return New(env.Engine, env.ID, env.Metric, env.Table, params), nil
	})
}

// Name implements multicast.Protocol.
func (r *Router) Name() string { return Name }

// SetSend implements multicast.Protocol.
func (r *Router) SetSend(send func(p *packet.Packet) bool) { r.Send = send }

// SetOnDeliver implements multicast.Protocol.
func (r *Router) SetOnDeliver(fn func(p *packet.Packet, from packet.NodeID)) { r.OnDeliver = fn }

// SetTracer implements multicast.Protocol.
func (r *Router) SetTracer(t *trace.Tracer) { r.Tracer = t }

// AttachTelemetry implements multicast.Protocol, registering the "mcst."
// instruments on reg.
func (r *Router) AttachTelemetry(reg *telemetry.Registry) { r.Telem = NewTelemetry(reg) }

// Counters implements multicast.Protocol.
func (r *Router) Counters() multicast.Stats {
	return multicast.Stats{
		ControlBytesSent: r.Stats.ControlBytesSent,
		DataOriginated:   r.Stats.DataOriginated,
		DataForwarded:    r.Stats.DataForwarded,
		DataDelivered:    r.Stats.DataDelivered,
		DataDuplicates:   r.Stats.DataDuplicates,
	}
}

var _ multicast.Protocol = (*Router)(nil)
