package mcst

import (
	"testing"
	"time"

	"meshcast/internal/linkquality"
	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/packet"
	"meshcast/internal/sim"
)

// fakeNet is a deterministic lossless network with per-link delivery delays,
// mirroring the ODMRP test harness: protocol behavior is exercised without
// PHY/MAC noise, and link qualities are pinned via static table estimates.
type fakeNet struct {
	engine  *sim.Engine
	routers map[packet.NodeID]*Router
	tables  map[packet.NodeID]*linkquality.Table
	delays  map[multicast.Edge]time.Duration
}

func newFakeNet(seed uint64) *fakeNet {
	return &fakeNet{
		engine:  sim.NewEngine(seed),
		routers: make(map[packet.NodeID]*Router),
		tables:  make(map[packet.NodeID]*linkquality.Table),
		delays:  make(map[multicast.Edge]time.Duration),
	}
}

func (f *fakeNet) addNode(id packet.NodeID, kind metric.Kind, params Params) *Router {
	table := linkquality.NewTable(512, 10, 0)
	r := New(f.engine, id, metric.MustNew(kind), table, params)
	f.routers[id] = r
	f.tables[id] = table
	r.Send = func(p *packet.Packet) bool {
		for edge, delay := range f.delays {
			if edge.From != id {
				continue
			}
			to := f.routers[edge.To]
			if to == nil {
				continue
			}
			c := p.Clone()
			f.engine.Schedule(delay, func() { to.Handle(c, id) })
		}
		return true
	}
	return r
}

func (f *fakeNet) connect(a, b packet.NodeID, delay time.Duration, dfAB, dfBA float64) {
	f.delays[multicast.Edge{From: a, To: b}] = delay
	f.delays[multicast.Edge{From: b, To: a}] = delay
	f.tables[b].SetStatic(uint16(a), metric.LinkEstimate{
		DeliveryProb: dfAB, PairDelaySeconds: 0.002 / dfAB, BandwidthBps: 2e6 * dfAB, PacketBytes: 512,
	})
	f.tables[a].SetStatic(uint16(b), metric.LinkEstimate{
		DeliveryProb: dfBA, PairDelaySeconds: 0.002 / dfBA, BandwidthBps: 2e6 * dfBA, PacketBytes: 512,
	})
}

// chain builds 1 — 2 — 3 with uniform good links.
func chain(t *testing.T, params Params) (*fakeNet, *Router, *Router, *Router) {
	t.Helper()
	f := newFakeNet(7)
	r1 := f.addNode(1, metric.SPP, params)
	r2 := f.addNode(2, metric.SPP, params)
	r3 := f.addNode(3, metric.SPP, params)
	f.connect(1, 2, time.Millisecond, 0.9, 0.9)
	f.connect(2, 3, time.Millisecond, 0.9, 0.9)
	return f, r1, r2, r3
}

func TestCoreElectionLowestID(t *testing.T) {
	f, r1, _, r3 := chain(t, DefaultParams())

	// The higher-ID source starts first and assumes the core role.
	r3.StartSource(1)
	if _, acting := r3.announcers[1]; !acting {
		t.Fatal("first source did not assume the core role")
	}
	f.engine.Run(time.Second)

	// A lower-ID source then elects itself; on hearing its announce the
	// higher-ID core steps down, suppressed.
	r1.StartSource(1)
	f.engine.Run(2 * time.Second)
	if _, acting := r1.announcers[1]; !acting {
		t.Fatal("lower-ID source did not take the core role")
	}
	if _, acting := r3.announcers[1]; acting {
		t.Fatal("higher-ID core did not step down on hearing the lower ID")
	}
	if b := r3.cores[1]; b == nil || b.core != 1 {
		t.Fatalf("suppressed source adopted core %+v, want 1", b)
	}
}

func TestTreeFormationAndDelivery(t *testing.T) {
	f, r1, r2, r3 := chain(t, DefaultParams())
	r3.JoinGroup(1)
	r1.StartSource(1)
	f.engine.Run(2 * time.Second)

	// The member's join named node 2 as parent; 2 is on-tree, and the core
	// itself forwards by role.
	if !r2.IsForwarder(1) {
		t.Fatal("middle node not on the shared tree")
	}
	if !r1.IsForwarder(1) {
		t.Fatal("acting core must report IsForwarder")
	}
	if r3.IsForwarder(1) {
		t.Fatal("leaf member should not be on-tree (nobody named it parent)")
	}

	var got int
	r3.OnDeliver = func(*packet.Packet, packet.NodeID) { got++ }
	for i := 0; i < 10; i++ {
		r1.SendData(1, 256)
		f.engine.Run(f.engine.Now() + 50*time.Millisecond)
	}
	if got != 10 {
		t.Fatalf("member delivered %d/10 packets over the tree", got)
	}
	if r2.Stats.DataForwarded == 0 {
		t.Fatal("tree relay forwarded nothing")
	}
}

// TestBidirectionalTree grafts a suppressed sender at one end of the chain
// and a member at the other: the sender's data travels toward the core and
// the shared tree carries it down the member branch.
func TestBidirectionalTree(t *testing.T) {
	f, r1, _, r3 := chain(t, DefaultParams())
	r1.JoinGroup(1)
	r1.StartSource(1) // core at node 1, also a member for this test
	r3.StartSource(1) // suppressed sender at the far end
	f.engine.Run(4 * time.Second)
	if _, acting := r3.announcers[1]; acting {
		t.Fatal("far sender was not suppressed by the lower-ID core")
	}

	var got int
	r1.OnDeliver = func(*packet.Packet, packet.NodeID) { got++ }
	for i := 0; i < 5; i++ {
		r3.SendData(1, 256)
		f.engine.Run(f.engine.Now() + 50*time.Millisecond)
	}
	if got != 5 {
		t.Fatalf("core-side member delivered %d/5 packets from the grafted sender", got)
	}
}

func TestTreeStateExpires(t *testing.T) {
	p := DefaultParams()
	f, r1, r2, r3 := chain(t, p)
	r3.JoinGroup(1)
	r1.StartSource(1)
	f.engine.Run(2 * time.Second)
	if !r2.IsForwarder(1) {
		t.Fatal("middle node never joined the tree")
	}

	// Stop the core: no more announces, so no more join refreshes; the
	// on-tree flag must lapse after TreeTimeout.
	r1.StopSource(1)
	f.engine.Run(f.engine.Now() + p.TreeTimeout + time.Second)
	if r2.IsForwarder(1) {
		t.Fatal("on-tree flag survived past TreeTimeout without refresh")
	}
}

func TestCoreFailover(t *testing.T) {
	p := DefaultParams()
	f, r1, _, r3 := chain(t, p)
	r3.StartSource(1)
	f.engine.Run(time.Second)
	r1.StartSource(1)
	f.engine.Run(f.engine.Now() + 2*time.Second)
	if _, acting := r3.announcers[1]; acting {
		t.Fatal("precondition: node 3 should be suppressed")
	}

	// The core crashes. The suppressed source's watchdog must reclaim the
	// role within CoreTimeout of the last announce heard.
	r1.Reset()
	f.engine.Run(f.engine.Now() + p.CoreTimeout + 2*p.AnnounceInterval)
	if _, acting := r3.announcers[1]; !acting {
		t.Fatal("suppressed source never reclaimed the core role after the core died")
	}
	if r3.Stats.CoreHandovers == 0 {
		t.Fatal("failover did not count a core handover")
	}
}

func TestResetPurgesSoftState(t *testing.T) {
	f, r1, r2, r3 := chain(t, DefaultParams())
	r3.JoinGroup(1)
	r1.StartSource(1)
	f.engine.Run(2 * time.Second)
	r1.SendData(1, 256)
	f.engine.Run(f.engine.Now() + 100*time.Millisecond)

	seqBefore := r1.announceSeq[1]
	if seqBefore == 0 {
		t.Fatal("precondition: core announced at least once")
	}
	for _, r := range []*Router{r1, r2, r3} {
		r.Reset()
		if len(r.rounds) != 0 || len(r.dups) != 0 || len(r.treeUntil) != 0 ||
			len(r.cores) != 0 || len(r.sources) != 0 || len(r.announcers) != 0 {
			t.Fatalf("node %v retains soft state after Reset", r.ID())
		}
	}
	// Sequence counters survive the crash so a restarted core cannot reuse
	// round numbers its neighbors may remember.
	if r1.announceSeq[1] != seqBefore {
		t.Fatal("announce sequence counter reset — stale-round detection would break")
	}
	if !r3.IsMember(1) {
		t.Fatal("membership is configuration and must survive Reset")
	}
}

func TestStaleAnnounceIgnored(t *testing.T) {
	f := newFakeNet(3)
	r := f.addNode(2, metric.SPP, DefaultParams())
	f.addNode(1, metric.SPP, DefaultParams())
	f.connect(1, 2, time.Millisecond, 0.9, 0.9)

	mk := func(seq uint32) *packet.Packet {
		return &packet.Packet{
			Kind: packet.TypeCoreAnnounce, Src: 1, PrevHop: 1, Group: 1,
			Seq: seq, TTL: 8, Cost: r.pm.Initial(),
		}
	}
	r.Handle(mk(5), 1)
	if got := r.rounds[groupCore{1, 1}].seq; got != 5 {
		t.Fatalf("round seq = %d, want 5", got)
	}
	r.Handle(mk(3), 1)
	if got := r.rounds[groupCore{1, 1}].seq; got != 5 {
		t.Fatalf("stale announce regressed round to %d", got)
	}
}

func TestParamsForMetric(t *testing.T) {
	if p := ParamsFor(metric.MinHop); p.JoinDelta != 0 || p.DupAlpha != 0 {
		t.Fatalf("MinHop params = %+v, want first-copy (δ=0, α=0)", p)
	}
	if p := ParamsFor(metric.SPP); p.JoinDelta == 0 || p.DupAlpha == 0 {
		t.Fatalf("link-quality params = %+v, want δ/α enabled", p)
	}
}
