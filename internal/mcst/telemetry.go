package mcst

import "meshcast/internal/telemetry"

// Telemetry holds the MCST layer's run-wide instruments, shared by every
// router on the run. The zero value is fully disabled.
type Telemetry struct {
	// AnnouncesOriginated, AnnouncesForwarded, and DupAnnouncesForwarded
	// count CORE ANNOUNCE activity; JoinsSent counts TREE JOIN activity;
	// CoreHandovers counts core-binding changes.
	AnnouncesOriginated, AnnouncesForwarded, DupAnnouncesForwarded *telemetry.Counter
	JoinsSent, CoreHandovers                                       *telemetry.Counter
	// DataOriginated, DataForwarded, and DataDelivered count data-plane
	// activity; DupSuppressed counts data copies dropped by the duplicate
	// window.
	DataOriginated, DataForwarded, DataDelivered, DupSuppressed *telemetry.Counter
	// ControlBytes counts MCST control bytes handed to the MAC.
	ControlBytes *telemetry.Counter
}

// NewTelemetry returns MCST instruments registered under the "mcst."
// prefix. A nil registry yields the disabled zero value.
func NewTelemetry(reg *telemetry.Registry) Telemetry {
	return Telemetry{
		AnnouncesOriginated:   reg.Counter("mcst.announces_originated"),
		AnnouncesForwarded:    reg.Counter("mcst.announces_forwarded"),
		DupAnnouncesForwarded: reg.Counter("mcst.dup_announces_forwarded"),
		JoinsSent:             reg.Counter("mcst.joins_sent"),
		CoreHandovers:         reg.Counter("mcst.core_handovers"),
		DataOriginated:        reg.Counter("mcst.data_originated"),
		DataForwarded:         reg.Counter("mcst.data_forwarded"),
		DataDelivered:         reg.Counter("mcst.data_delivered"),
		DupSuppressed:         reg.Counter("mcst.dup_suppressed"),
		ControlBytes:          reg.Counter("mcst.control_bytes"),
	}
}

// RoundCount returns the number of live announce-round entries — the
// router's main soft-state table, exposed for table-size gauges.
func (r *Router) RoundCount() int { return len(r.rounds) }

// DupWindowCount returns the number of per-(group, source) duplicate
// windows held.
func (r *Router) DupWindowCount() int { return len(r.dups) }
