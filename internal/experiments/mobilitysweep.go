package experiments

import (
	"fmt"

	"meshcast/internal/metric"
	"meshcast/internal/mobility"
	"meshcast/internal/multicast"
)

// MobilityCell is one (protocol, max speed) point of a mobility sweep,
// averaged over the sweep's seeds. Speed 0 is the static control: the same
// scenario with the mover disabled, so motion metrics are zero and PDR is
// the reference the moving tiers degrade from.
type MobilityCell struct {
	Protocol string
	SpeedMps float64
	// PDR is the whole-run mean delivery ratio; PDRStderr its standard
	// error over seeds.
	PDR, PDRStderr float64
	// MotionPDR is the delivery ratio for packets sent while radios move
	// (send-weighted across groups and seeds; 0 for the static tier).
	MotionPDR float64
	// RepairMeanMS / RepairMaxMS summarize route-repair latency: the time
	// from a link-break tick to the affected group's next delivery.
	RepairMeanMS, RepairMaxMS float64
	// Reconvergences is the mean count of delivery-silence episodes (>1 s)
	// following breaks per run; ReconvMeanMS their mean span.
	Reconvergences float64
	ReconvMeanMS   float64
	// BreaksPerSec is the mean link-break rate over the motion window.
	BreaksPerSec float64
}

// MobilitySweep is a protocols × speeds mobility-robustness comparison.
type MobilitySweep struct {
	Protocols []string
	Speeds    []float64
	Seeds     []uint64
	Model     string
	Metric    metric.Kind
	// SourcesPerGroup records the effective senders per group (≥2: the
	// single-source regime makes the protocols identical).
	SourcesPerGroup int
	// Cells is protocol-major, speed-minor: Cells[p*len(Speeds)+s].
	Cells []MobilityCell
}

// Cell returns the (protocol, speed) aggregate, or nil.
func (s *MobilitySweep) Cell(proto string, speed float64) *MobilityCell {
	for i := range s.Cells {
		if s.Cells[i].Protocol == proto && s.Cells[i].SpeedMps == speed {
			return &s.Cells[i]
		}
	}
	return nil
}

// RunMobilitySweep sweeps every requested protocol over increasing maximum
// node speeds (waypoint model, motion starting with traffic) and aggregates
// the robustness axes: overall and in-motion PDR, route-repair latency,
// reconvergence episodes, and link-break rate. Speed 0 runs without a mover
// as the static control. The sweep forces the multi-source regime
// (§4.3) when the caller leaves SourcesPerGroup at 1: with a single source
// ODMRP's reply mesh is provably the exact tree MCST builds from that
// source as core, so a single-source protocol comparison would produce
// identical rows even under motion. The (protocol, speed, seed) matrix
// executes through the job harness configured by o; aggregation folds
// results in job order, so the sweep is deterministic for any worker count.
func RunMobilitySweep(o Options, protocols []string, speeds []float64) (*MobilitySweep, error) {
	if o.SourcesPerGroup < 2 {
		o.SourcesPerGroup = 3
	}
	if len(protocols) == 0 {
		protocols = multicast.Names()
	}
	resolved := make([]string, 0, len(protocols))
	seen := make(map[string]bool, len(protocols))
	for _, p := range protocols {
		name, err := multicast.Resolve(p)
		if err != nil {
			return nil, err
		}
		if !seen[name] {
			seen[name] = true
			resolved = append(resolved, name)
		}
	}
	if len(speeds) == 0 {
		speeds = []float64{0, 1, 5, 10, 20}
	}
	k := metric.SPP

	var jobs []ScenarioJob
	for _, proto := range resolved {
		for _, speed := range speeds {
			for _, seed := range o.Seeds {
				cfg, err := o.scenarioFor(k, seed)
				if err != nil {
					return nil, err
				}
				cfg.Protocol = proto
				if proto != multicast.Default {
					cfg.ODMRP = nil
				}
				if speed > 0 {
					cfg.Mobility = &mobility.Config{
						Model:       mobility.ModelWaypoint,
						MaxSpeedMps: speed,
						Start:       cfg.TrafficStart,
					}
				}
				jobs = append(jobs, ScenarioJob{
					Label:  fmt.Sprintf("%s %.0f m/s seed %d", proto, speed, seed),
					Config: cfg,
				})
			}
		}
	}
	results, err := o.runScenarioJobs(jobs)
	if err != nil {
		return nil, err
	}

	sweep := &MobilitySweep{
		Protocols: resolved, Speeds: speeds, Seeds: o.Seeds,
		Model: mobility.ModelWaypoint, Metric: k,
		SourcesPerGroup: o.SourcesPerGroup,
	}
	idx := 0
	for _, proto := range resolved {
		for _, speed := range speeds {
			var pdrs []float64
			var sentMotion, deliveredMotion float64
			var repairSum, repairN, reconvSum float64
			var reconvN, breakRateSum, maxRepair float64
			for _, seed := range o.Seeds {
				r := results[idx]
				idx++
				if r.Err != nil {
					return nil, fmt.Errorf("%s %.0f m/s seed %d: %w", proto, speed, seed, r.Err)
				}
				res := r.Value
				pdrs = append(pdrs, res.Summary.PDR)
				if res.Mobility == nil {
					continue
				}
				breakRateSum += res.Mobility.BreakRatePerSec
				for _, g := range res.Mobility.Groups {
					sentMotion += float64(g.SentInMotion)
					deliveredMotion += g.MotionPDR * float64(g.SentInMotion)
					repairSum += g.MeanRepair.Seconds() * float64(g.Repairs)
					repairN += float64(g.Repairs)
					if ms := g.MaxRepair.Seconds(); ms > maxRepair {
						maxRepair = ms
					}
					reconvSum += g.MeanReconvergence.Seconds() * float64(g.Reconvergences)
					reconvN += float64(g.Reconvergences)
				}
			}
			n := float64(len(o.Seeds))
			mean, stderr := meanStderr(pdrs)
			cell := MobilityCell{
				Protocol:       proto,
				SpeedMps:       speed,
				PDR:            mean,
				PDRStderr:      stderr,
				RepairMaxMS:    1000 * maxRepair,
				Reconvergences: reconvN / n,
				BreaksPerSec:   breakRateSum / n,
			}
			if sentMotion > 0 {
				cell.MotionPDR = deliveredMotion / sentMotion
			}
			if repairN > 0 {
				cell.RepairMeanMS = 1000 * repairSum / repairN
			}
			if reconvN > 0 {
				cell.ReconvMeanMS = 1000 * reconvSum / reconvN
			}
			sweep.Cells = append(sweep.Cells, cell)
		}
	}
	return sweep, nil
}
