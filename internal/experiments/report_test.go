package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/propagation"
)

func syntheticSims() *PaperSims {
	sims := &PaperSims{BaselinePDR: 0.5, BaselineDelaySeconds: 0.010}
	for _, k := range metric.LinkQuality() {
		sims.Rows = append(sims.Rows, Aggregate{
			Metric:              k,
			RelThroughput:       1.1,
			RelThroughputStderr: 0.01,
			RelDelay:            1.2,
			AbsPDR:              0.55,
			AbsDelaySeconds:     0.012,
			OverheadPct:         1.5,
		})
	}
	return sims
}

func TestReportContainsAllSections(t *testing.T) {
	r := NewReport(QuickOptions(), 5, 150)
	sims := syntheticSims()
	r.Fig2SimTable("Figure 2 — test", sims, PaperFig2Simulation, "note")
	r.DelayTable(sims)
	r.Table1(sims)
	r.TestbedTable(&TestbedColumn{
		BaselinePDR: 0.7,
		Rows: []TestbedAggregate{
			{Metric: metric.PP, RelThroughput: 1.13, OverheadPct: 2.6, AbsPDR: 0.79},
		},
	})
	r.MultiSourceSection(&MultiSourceComparison{
		SingleSource:    syntheticSims(),
		MultiSource:     syntheticSims(),
		SourcesPerGroup: 3,
	})
	r.FadingSection(&FadingAblation{WithFading: syntheticSims(), WithoutFading: syntheticSims()})
	r.DeltaAlphaSection([]DeltaAlphaPoint{{Delta: 30 * time.Millisecond, Alpha: 20 * time.Millisecond, RelThroughput: 1.1}})
	r.HistorySection([]HistoryPoint{
		{Metric: metric.SPP, WindowSize: 10, RelThroughput: 1.1},
		{Metric: metric.PP, HistoryWeight: 0.9, RelThroughput: 1.12},
	})
	r.Elapsed(42 * time.Second)
	out := r.String()

	for _, want := range []string{
		"# EXPERIMENTS",
		"Figure 2 — test",
		"column \"Delay\"",
		"Table 1",
		"Throughput-testbed",
		"multiple sources",
		"fading on/off",
		"δ/α",
		"estimator history",
		"ODMRP_SPP",
		"ODMRP_PP",
		"1.135", // paper value for ETT in the fig2 table
		"Generated in 42s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:min(2000, len(out))])
		}
	}
}

func TestPaperConstantsCoverAllMetrics(t *testing.T) {
	for _, k := range metric.LinkQuality() {
		if _, ok := PaperFig2Simulation[k]; !ok {
			t.Fatalf("PaperFig2Simulation missing %v", k)
		}
		if _, ok := PaperFig2Testbed[k]; !ok {
			t.Fatalf("PaperFig2Testbed missing %v", k)
		}
		if _, ok := PaperTable1[k]; !ok {
			t.Fatalf("PaperTable1 missing %v", k)
		}
	}
	// Spot-check the transcribed values against the paper's text.
	if PaperTable1[metric.ETT] != 3.03 || PaperTable1[metric.SPP] != 0.53 {
		t.Fatal("Table 1 constants do not match the paper")
	}
	if PaperFig2Testbed[metric.PP] != 1.175 {
		t.Fatal("testbed PP constant does not match the paper (17.5% gain)")
	}
}

func TestMeanStderr(t *testing.T) {
	mean, stderr := meanStderr([]float64{1, 2, 3, 4})
	if mean != 2.5 {
		t.Fatalf("mean = %v", mean)
	}
	// Sample stdev of {1,2,3,4} is ~1.29; stderr = 1.29/2 ≈ 0.645.
	if math.Abs(stderr-0.6455) > 0.001 {
		t.Fatalf("stderr = %v", stderr)
	}
	if m, s := meanStderr(nil); m != 0 || s != 0 {
		t.Fatal("empty input should give zeros")
	}
	if m, s := meanStderr([]float64{7}); m != 7 || s != 0 {
		t.Fatalf("single sample = (%v, %v)", m, s)
	}
}

func TestScenarioForAppliesOptions(t *testing.T) {
	o := Options{
		Seeds:           []uint64{1},
		TrafficSeconds:  60,
		WarmupSeconds:   30,
		ProbeRateFactor: 5,
		SourcesPerGroup: 3,
		Fading:          propagation.NoFading{},
		WindowSize:      20,
	}
	cfg, err := o.scenarioFor(metric.SPP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TrafficStart != 30*time.Second || cfg.Duration != 90*time.Second {
		t.Fatalf("timing = (%v, %v)", cfg.TrafficStart, cfg.Duration)
	}
	if cfg.ProbeRateFactor != 5 {
		t.Fatalf("probe rate = %v", cfg.ProbeRateFactor)
	}
	if cfg.WindowSize != 20 {
		t.Fatalf("window = %d", cfg.WindowSize)
	}
	if _, ok := cfg.Fading.(propagation.NoFading); !ok {
		t.Fatal("fading override not applied")
	}
	for _, g := range cfg.Groups {
		if len(g.Sources) != 3 {
			t.Fatalf("sources per group = %d, want 3", len(g.Sources))
		}
	}
	// The baseline must not receive metric-only overrides.
	base, err := o.scenarioFor(metric.MinHop, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.WindowSize != 0 {
		t.Fatal("baseline got the window override")
	}
	// Same seed, same topology regardless of group shape.
	if base.Topology.Positions[0] != cfg.Topology.Positions[0] {
		t.Fatal("topology differs between baseline and metric run")
	}
}

func TestRunPaperSimsTiny(t *testing.T) {
	o := Options{
		Seeds:           []uint64{1},
		TrafficSeconds:  20,
		WarmupSeconds:   10,
		ProbeRateFactor: 1,
		SourcesPerGroup: 1,
		Metrics:         []metric.Kind{metric.SPP},
	}
	sims, err := RunPaperSims(o)
	if err != nil {
		t.Fatal(err)
	}
	if sims.BaselinePDR <= 0 || sims.BaselinePDR > 1 {
		t.Fatalf("baseline PDR = %v", sims.BaselinePDR)
	}
	if len(sims.Rows) != 1 || sims.Rows[0].Metric != metric.SPP {
		t.Fatalf("rows = %+v", sims.Rows)
	}
	if sims.Rows[0].RelThroughput <= 0 {
		t.Fatal("no relative throughput computed")
	}
}

func TestRunTestbedColumnTiny(t *testing.T) {
	col, err := RunTestbedColumn(Options{}, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if col.BaselinePDR <= 0 {
		t.Fatal("baseline delivered nothing")
	}
	if len(col.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(col.Rows))
	}
}
