// Package experiments builds and runs the paper's evaluation scenarios:
// the 50-node random-topology simulations behind Figure 2 and Table 1, the
// probing-rate variations, the multi-source runs of §4.3, and the ablations
// called out in DESIGN.md. Each table/figure has a runner that the root
// bench_test.go and cmd/experiments invoke.
package experiments

import (
	"fmt"
	"os"
	"time"

	"meshcast/internal/capture"

	"meshcast/internal/faults"
	"meshcast/internal/geom"
	"meshcast/internal/linkquality"
	"meshcast/internal/mac"
	"meshcast/internal/metric"
	"meshcast/internal/mobility"
	"meshcast/internal/multicast"
	"meshcast/internal/node"
	"meshcast/internal/odmrp"
	"meshcast/internal/packet"
	"meshcast/internal/phy"
	"meshcast/internal/propagation"
	"meshcast/internal/sim"
	"meshcast/internal/stats"
	"meshcast/internal/telemetry"
	"meshcast/internal/topology"
	"meshcast/internal/trace"
	"meshcast/internal/traffic"
)

// GroupSpec declares one multicast group's sources and receiver members by
// node index.
type GroupSpec struct {
	Group   packet.GroupID
	Sources []int
	Members []int
}

// ScenarioConfig fully describes one simulation run.
type ScenarioConfig struct {
	// Seed drives all randomness (placement is part of Topology, so two
	// runs with the same Topology and Seed are identical).
	Seed uint64
	// Metric selects the routing metric (MinHop = original ODMRP).
	Metric metric.Kind
	// Protocol selects the multicast routing protocol by registered name
	// ("odmrp", "mcst"); empty means the default (ODMRP).
	Protocol string
	// Topology is the node placement.
	Topology *topology.Topology
	// Fading selects the fading model; nil means Rayleigh (the paper's).
	Fading propagation.Fading
	// Duration is the simulated time (paper: 400 s).
	Duration time.Duration
	// Groups declares the multicast groups.
	Groups []GroupSpec
	// PayloadBytes and SendInterval shape the CBR flows (512 B, 50 ms).
	PayloadBytes int
	SendInterval time.Duration
	// ProbeRateFactor scales the probing rate (1 = paper default, 5 = the
	// "high overhead" column, 0.1 = the low-rate variant).
	ProbeRateFactor float64
	// TrafficStart delays the CBR flows, giving probes a head start.
	TrafficStart time.Duration
	// ODMRP optionally overrides ODMRP protocol parameters; nil = defaults
	// for the metric. Setting it with a non-ODMRP Protocol is an error.
	ODMRP *odmrp.Params
	// WindowSize optionally overrides the probe loss-window length.
	WindowSize int
	// PairHistoryWeight optionally overrides PP's EWMA history weight
	// (history-length ablation); zero keeps the paper's 0.9.
	PairHistoryWeight float64
	// TraceSink, when non-nil, receives protocol trace events from every
	// node, filtered to TraceCats (all categories when empty).
	TraceSink trace.Sink
	// TraceCats filters traced categories.
	TraceCats []trace.Category
	// SpanSink, when non-nil, enables packet-journey span tracing: every
	// originated packet is stamped with a trace ID and phy/mac/routing
	// emit typed span records to this sink (see trace.Reconstruct). Span
	// tracing is independent of TraceSink and changes no protocol or RNG
	// behavior, so results stay byte-identical either way.
	SpanSink trace.SpanSink
	// CapturePath, when non-empty, records every transmitted frame to this
	// file in the capture format (see internal/capture, cmd/meshdump).
	CapturePath string
	// Faults, when non-nil and non-empty, injects node churn, scripted
	// outages, link impairments, and partitions into the run (see
	// internal/faults). The fault schedule is drawn from the scenario Seed
	// only, so every metric evaluated on the same seed faces the same
	// failures.
	Faults *faults.Plan
	// Mobility, when non-nil, moves radios during the run under the given
	// mobility model (see internal/mobility). The motion is drawn from the
	// scenario Seed only, so every metric and protocol evaluated on the same
	// seed faces the same trajectories. An End of zero is resolved to the
	// scenario Duration.
	Mobility *mobility.Config
	// Telemetry, when non-nil, instruments the run with this recorder:
	// every layer's counters register in the recorder's registry, the
	// sampler streams snapshots to series.jsonl on the recorder's interval,
	// and RunScenario finalizes manifest.json before returning. A run with
	// telemetry attached is never served from the result cache (the
	// artifacts are a side effect the cache cannot reproduce).
	Telemetry *telemetry.Recorder
}

// DefaultScenario returns the paper's §4.1 setup for the given metric and
// seed: 50 nodes in 1000×1000 m, two groups of ten members with one source
// each, CBR 512 B @ 20 pkt/s, Rayleigh fading, and a 400 s traffic window.
// Probing gets a 100 s head start so that every metric routes on warmed-up
// estimates for the whole measurement window (the packet-pair EWMA needs on
// the order of ten 10 s intervals to converge).
func DefaultScenario(k metric.Kind, seed uint64) (ScenarioConfig, error) {
	return DefaultScenarioWith(k, seed, 1, 10)
}

// DefaultScenarioWith is DefaultScenario with configurable group shape
// (sources and members per group); §4.3's multi-source experiment uses
// sourcesPer > 1. The topology drawn for a seed is identical regardless of
// the group shape.
func DefaultScenarioWith(k metric.Kind, seed uint64, sourcesPer, membersPer int) (ScenarioConfig, error) {
	topoRNG := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	topo, err := topology.RandomConnected(topoRNG, 50, geom.Square(1000), 250, 500)
	if err != nil {
		return ScenarioConfig{}, fmt.Errorf("default scenario: %w", err)
	}
	groups := DefaultGroups(topoRNG.Split(), topo.NodeCount(), 2, sourcesPer, membersPer)
	return ScenarioConfig{
		Seed:            seed,
		Metric:          k,
		Topology:        topo,
		Duration:        500 * time.Second,
		Groups:          groups,
		PayloadBytes:    512,
		SendInterval:    50 * time.Millisecond,
		ProbeRateFactor: 1,
		TrafficStart:    100 * time.Second,
	}, nil
}

// DefaultGroups picks sources and members for nGroups groups uniformly at
// random without overlap inside a group (a source is not its own member).
func DefaultGroups(rng *sim.RNG, nodeCount, nGroups, sourcesPer, membersPer int) []GroupSpec {
	groups := make([]GroupSpec, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		perm := rng.Perm(nodeCount)
		spec := GroupSpec{Group: packet.GroupID(g + 1)}
		spec.Sources = append(spec.Sources, perm[:sourcesPer]...)
		spec.Members = append(spec.Members, perm[sourcesPer:sourcesPer+membersPer]...)
		groups = append(groups, spec)
	}
	return groups
}

// RunResult aggregates a run's outcome.
type RunResult struct {
	Summary   stats.Summary
	PerMember []stats.MemberPDR
	// ControlBytes is the protocol control traffic (queries/announces +
	// replies/joins).
	ControlBytes uint64
	// ProbeBytes is the probing traffic.
	ProbeBytes uint64
	// MACCollisions totals PHY collisions across radios.
	MACCollisions uint64
	// DataForwards totals forwarder rebroadcasts.
	DataForwards uint64
	// ForwarderState sums the nodes' live route soft state at the end of
	// the run (query/announce rounds + duplicate windows), the mesh-vs-tree
	// state-size comparison axis.
	ForwarderState int
	// EdgeUse merges per-node data-edge usage (Figure 5 tree analysis).
	EdgeUse map[multicast.Edge]uint64
	// Delay summarizes the end-to-end delay distribution (p50/p90/p99/max).
	Delay stats.Percentiles
	// Events is the number of simulation events processed (performance
	// reporting).
	Events uint64
	// Health holds per-group self-healing metrics (repair latency, PDR
	// during outages, availability); nil unless the scenario injects faults.
	Health []stats.GroupHealth
	// Faulted reports how many distinct outage episodes the run injected.
	Faulted int
	// Mobility holds motion-robustness metrics; nil unless the scenario
	// moves radios.
	Mobility *MobilityResult
}

// MobilityResult aggregates a mobile run's robustness measurements: the
// per-group trackers plus the mover's own counters.
type MobilityResult struct {
	// Groups holds per-group motion PDR, repair latency, and reconvergence
	// summaries, sorted by group ID.
	Groups []stats.GroupMobility
	// Moves counts applied position changes; LinkBreaks and LinkForms count
	// link-range neighbor-graph edges lost and gained across mover ticks.
	Moves, LinkBreaks, LinkForms uint64
	// BreakRatePerSec is LinkBreaks over the motion-window span.
	BreakRatePerSec float64
	// Model and MaxSpeedMps echo the effective mobility configuration.
	Model       string
	MaxSpeedMps float64
}

// faultTarget couples a node's crash lifecycle with its application flows:
// a crashed source must stop generating packets (they would inflate the PDR
// denominator with sends that never reached the air) and must re-register
// itself as a multicast source when it comes back.
type faultTarget struct {
	node  *node.Node
	flows []*traffic.CBR
}

func (t *faultTarget) Fail() {
	t.node.Fail()
	for _, f := range t.flows {
		f.Pause()
	}
}

func (t *faultTarget) Restore() {
	t.node.Restore()
	for _, f := range t.flows {
		f.Resume()
	}
}

// RunScenario executes one simulation and returns its measurements.
func RunScenario(cfg ScenarioConfig) (*RunResult, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("experiments: scenario has no topology")
	}
	proto, err := multicast.Resolve(cfg.Protocol)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	engine := sim.NewEngine(cfg.Seed)
	fading := cfg.Fading
	if fading == nil {
		fading = propagation.Rayleigh{}
	}
	medium := phy.NewMedium(engine, propagation.NewTwoRay(), fading, phy.DefaultParams())
	if cfg.CapturePath != "" {
		f, err := os.Create(cfg.CapturePath)
		if err != nil {
			return nil, fmt.Errorf("open capture: %w", err)
		}
		defer f.Close()
		cw, err := capture.NewWriter(f)
		if err != nil {
			return nil, err
		}
		defer func() {
			if err := cw.Flush(); err != nil {
				// The run itself succeeded; losing the capture is worth a
				// note but not a failure.
				fmt.Fprintf(os.Stderr, "capture flush: %v\n", err)
			}
		}()
		medium.OnTransmit = cw.Capture
	}

	nodeCfg := node.DefaultConfig(cfg.Metric)
	if cfg.ProbeRateFactor > 0 && cfg.ProbeRateFactor != 1 {
		nodeCfg.Probe = linkquality.ConfigFor(cfg.Metric).ScaleRate(cfg.ProbeRateFactor)
	}
	nodeCfg.Protocol = proto
	if cfg.ODMRP != nil {
		nodeCfg.Tuning = cfg.ODMRP
	}
	if cfg.WindowSize > 0 {
		nodeCfg.WindowSize = cfg.WindowSize
	}
	nodeCfg.MAC = mac.DefaultParams()
	if cfg.PayloadBytes > 0 {
		nodeCfg.DataPacketBytes = cfg.PayloadBytes
	}
	if cfg.TraceSink != nil || cfg.SpanSink != nil {
		nodeCfg.Tracer = trace.New(cfg.TraceSink, engine.Now, cfg.TraceCats...)
		nodeCfg.Tracer.SetSpanSink(cfg.SpanSink)
	}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Registry()
		nodeCfg.Telemetry = reg
	}

	nodes := make([]*node.Node, cfg.Topology.NodeCount())
	for i := range nodes {
		n, err := node.New(engine, medium, packet.NodeID(i), cfg.Topology.Positions[i], nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("build node %d: %w", i, err)
		}
		if cfg.PairHistoryWeight > 0 {
			n.Table.PairHistoryWeight = cfg.PairHistoryWeight
		}
		nodes[i] = n
		n.Start()
	}

	// Scenario-level instruments. All of these are nil-safe no-ops when no
	// recorder is attached (reg == nil hands out nil instruments).
	dataBytesReceived := reg.Counter("stats.data_bytes_received")
	probeWarmupGauge := reg.Gauge("linkquality.probe_bytes_warmup")
	if reg != nil {
		reg.GaugeFunc(proto+".fg_size", func() float64 {
			n := 0
			for _, spec := range cfg.Groups {
				for _, nd := range nodes {
					if nd.Router.IsForwarder(spec.Group) {
						n++
					}
				}
			}
			return float64(n)
		})
		reg.GaugeFunc(proto+".rounds", func() float64 {
			n := 0
			for _, nd := range nodes {
				n += nd.Router.RoundCount()
			}
			return float64(n)
		})
		reg.GaugeFunc(proto+".dup_windows", func() float64 {
			n := 0
			for _, nd := range nodes {
				n += nd.Router.DupWindowCount()
			}
			return float64(n)
		})
		reg.GaugeFunc("linkquality.table_entries", func() float64 {
			n := 0
			for _, nd := range nodes {
				n += nd.Table.Len()
			}
			return float64(n)
		})
		if buf, ok := cfg.TraceSink.(*trace.Buffer); ok {
			reg.GaugeFunc("trace.dropped", func() float64 { return float64(buf.Dropped()) })
		}
	}

	collector := stats.NewCollector()
	var delays stats.DelayTracker
	var flows []*traffic.CBR
	var health *stats.HealthTracker   // set below iff faults are injected
	var motion *stats.MobilityTracker // set below iff radios move
	flowsByNode := make(map[int][]*traffic.CBR)

	for _, spec := range cfg.Groups {
		spec := spec
		for _, m := range spec.Members {
			nodes[m].Router.JoinGroup(spec.Group)
			member := packet.NodeID(m)
			for _, s := range spec.Sources {
				collector.Subscribe(member, spec.Group, packet.NodeID(s))
			}
			r := nodes[m].Router
			r.SetOnDeliver(func(p *packet.Packet, _ packet.NodeID) {
				delay := engine.Now() - p.SentAt
				collector.RecordDelivered(r.ID(), p.Group, p.Src, p.PayloadBytes, delay)
				dataBytesReceived.Add(uint64(p.PayloadBytes))
				delays.Observe(delay)
				if health != nil {
					health.RecordDelivered(p.Group, engine.Now())
				}
				if motion != nil {
					motion.RecordDelivered(p.Group, engine.Now())
				}
			})
		}
		nMembers := len(spec.Members)
		for _, s := range spec.Sources {
			cbr := traffic.NewCBR(engine, nodes[s].Router, traffic.CBRConfig{
				Group:        spec.Group,
				PayloadBytes: cfg.PayloadBytes,
				Interval:     cfg.SendInterval,
				Jitter:       cfg.SendInterval / 10,
				Start:        cfg.TrafficStart,
			})
			// Health and motion trackers account delivery opportunities: one
			// per (packet, member), matching the collector's PDR denominator.
			cbr.OnSend = func(at time.Duration) {
				for i := 0; i < nMembers; i++ {
					if health != nil {
						health.RecordSent(spec.Group, at)
					}
					if motion != nil {
						motion.RecordSent(spec.Group, at)
					}
				}
			}
			cbr.Start()
			flows = append(flows, cbr)
			flowsByNode[s] = append(flowsByNode[s], cbr)
		}
	}

	var sched *faults.Scheduler
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		targets := make([]faults.Target, len(nodes))
		for i, n := range nodes {
			targets[i] = &faultTarget{node: n, flows: flowsByNode[i]}
		}
		// The fault RNG is derived from the seed alone (not the engine's
		// stream) so the injected failures are identical for every metric
		// evaluated on the same seed — the comparison the churn experiment
		// needs.
		var err error
		sched, err = faults.NewScheduler(engine, sim.NewRNG(cfg.Seed^0xfa0175eed), *cfg.Faults, targets, cfg.Duration)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault plan: %w", err)
		}
		medium.SetImpairment(sched.Impairment)
		fw := sched.Windows()
		windows := make([]stats.Window, len(fw))
		for i, w := range fw {
			windows[i] = stats.Window{Start: w.Start, End: w.End}
		}
		health = stats.NewHealthTracker(sched.Onsets(), windows)
		sched.Start()
		if reg != nil {
			s := sched
			reg.GaugeFunc("faults.active", func() float64 {
				return float64(s.ActiveFaults(engine.Now()))
			})
		}
	}

	var mover *mobility.Mover
	if cfg.Mobility != nil {
		mcfg := *cfg.Mobility
		if mcfg.End == 0 {
			mcfg.End = cfg.Duration
		}
		radios := make([]*phy.Radio, len(nodes))
		for i, n := range nodes {
			radios[i] = n.Radio
		}
		// The mobility RNG is derived from the seed alone, like the fault
		// RNG: trajectories are identical for every metric and protocol
		// evaluated on the same seed — the comparison the speed sweep needs.
		var merr error
		mover, merr = mobility.NewMover(engine, medium, radios, cfg.Topology.Area, sim.NewRNG(cfg.Seed^0x6d6f62696c697479), mcfg)
		if merr != nil {
			return nil, fmt.Errorf("experiments: %w", merr)
		}
		motion = stats.NewMobilityTracker(stats.Window{Start: mcfg.Start, End: mcfg.End})
		mover.OnLinkEvent = func(breaks, forms int, now time.Duration) {
			motion.RecordBreaks(breaks, now)
			motion.RecordForms(forms, now)
		}
		if reg != nil {
			mover.Telem = mobility.NewTelemetry(reg)
		}
		mover.Start()
	}

	// Snapshot probe bytes when traffic starts so that the reported probing
	// overhead covers the measurement window, not the warmup.
	var probeBytesAtStart uint64
	if cfg.TrafficStart > 0 {
		engine.At(cfg.TrafficStart, func() {
			for _, n := range nodes {
				probeBytesAtStart += n.Prober.Stats.BytesSent
			}
			// Recorded so the manifest alone can reproduce the paper-table
			// probe-overhead figure: 100 * (probe_bytes_sent - warmup) /
			// data_bytes_received.
			probeWarmupGauge.Set(float64(probeBytesAtStart))
		})
	}

	if cfg.Telemetry != nil {
		cfg.Telemetry.Sampler().Attach(engine, cfg.Duration)
	}

	engine.Run(cfg.Duration)

	// Feed per-flow sent counts into the collector.
	idx := 0
	for _, spec := range cfg.Groups {
		for _, s := range spec.Sources {
			collector.SetSent(spec.Group, packet.NodeID(s), flows[idx].Sent)
			idx++
		}
	}

	res := &RunResult{
		EdgeUse: make(map[multicast.Edge]uint64),
		Events:  engine.Processed,
	}
	for _, n := range nodes {
		counters := n.Router.Counters()
		res.ProbeBytes += n.Prober.Stats.BytesSent
		res.ControlBytes += counters.ControlBytesSent
		res.MACCollisions += n.Radio.Stats.Collisions
		res.DataForwards += counters.DataForwarded
		res.ForwarderState += n.Router.RoundCount() + n.Router.DupWindowCount()
		for e, c := range n.Router.EdgeUse() {
			res.EdgeUse[e] += c
		}
	}
	res.ProbeBytes -= probeBytesAtStart
	collector.ProbeBytes = res.ProbeBytes
	collector.ControlBytes = res.ControlBytes
	res.Summary = collector.Summarize()
	res.PerMember = collector.PerMemberPDR()
	res.Delay = delays.Percentiles()
	if health != nil {
		res.Health = health.Health()
		res.Faulted = sched.DownCount()
	}
	if mover != nil {
		res.Mobility = &MobilityResult{
			Groups:          motion.Mobility(),
			Moves:           mover.Moves,
			LinkBreaks:      mover.Breaks,
			LinkForms:       mover.Forms,
			BreakRatePerSec: motion.BreakRatePerSec(),
			Model:           mover.Config().Model,
			MaxSpeedMps:     mover.Config().MaxSpeedMps,
		}
	}
	if cfg.Telemetry != nil {
		// Hash the config as the cache would see it without sinks attached,
		// so a manifest's ConfigHash matches the runner cache key of the same
		// scenario run uninstrumented.
		hashCfg := cfg
		hashCfg.Telemetry = nil
		hashCfg.TraceSink = nil
		hashCfg.TraceCats = nil
		hashCfg.SpanSink = nil
		hashCfg.CapturePath = ""
		hash, _ := ScenarioKey(hashCfg)
		if err := cfg.Telemetry.Finalize(telemetry.Manifest{
			ConfigHash:      hash,
			Seed:            cfg.Seed,
			Label:           fmt.Sprintf("%s seed %d", cfg.Metric, cfg.Seed),
			Metric:          cfg.Metric.String(),
			Protocol:        proto,
			DurationSeconds: cfg.Duration.Seconds(),
			Derived: map[string]float64{
				"pdr":                res.Summary.PDR,
				"probe_overhead_pct": res.Summary.ProbeOverheadPct,
				"mean_delay_seconds": res.Summary.MeanDelaySeconds,
				"fairness":           res.Summary.Fairness,
			},
		}); err != nil {
			return nil, fmt.Errorf("experiments: finalize telemetry: %w", err)
		}
	}
	return res, nil
}
