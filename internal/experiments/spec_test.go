package experiments

import (
	"path/filepath"
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/multicast"
	"meshcast/internal/propagation"
)

func validSpec() Spec {
	return Spec{
		Seed:           7,
		Metric:         "spp",
		TrafficSeconds: 30,
		WarmupSeconds:  10,
		Nodes: []NodeSpec{
			{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0},
		},
		Groups: []GroupSpecJSON{{Group: 1, Sources: []int{0}, Members: []int{2}}},
	}
}

func TestSpecRoundTripThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	orig := validSpec()
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != orig.Seed || loaded.Metric != orig.Metric ||
		len(loaded.Nodes) != 3 || len(loaded.Groups) != 1 {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}
}

func TestSpecScenarioExplicitNodes(t *testing.T) {
	cfg, err := validSpec().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metric != metric.SPP {
		t.Fatalf("metric = %v", cfg.Metric)
	}
	if cfg.Topology.NodeCount() != 3 {
		t.Fatalf("nodes = %d", cfg.Topology.NodeCount())
	}
	if cfg.Duration != 40*time.Second || cfg.TrafficStart != 10*time.Second {
		t.Fatalf("timing = %v/%v", cfg.Duration, cfg.TrafficStart)
	}
	if cfg.PayloadBytes != 512 || cfg.SendInterval != 50*time.Millisecond || cfg.ProbeRateFactor != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Protocol != multicast.Default {
		t.Fatalf("protocol = %q, want default %q", cfg.Protocol, multicast.Default)
	}
}

func TestSpecScenarioProtocol(t *testing.T) {
	s := validSpec()
	s.Protocol = "mcst"
	cfg, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol != "mcst" {
		t.Fatalf("protocol = %q, want mcst", cfg.Protocol)
	}
}

func TestSpecScenarioRandomNodes(t *testing.T) {
	s := validSpec()
	s.Nodes = nil
	s.RandomNodes = &RandomNodesSpec{Count: 10, SideM: 500}
	cfg, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.NodeCount() != 10 {
		t.Fatalf("nodes = %d", cfg.Topology.NodeCount())
	}
	if !cfg.Topology.IsConnected(250) {
		t.Fatal("random spec topology disconnected")
	}
}

func TestSpecScenarioMobility(t *testing.T) {
	s := validSpec()
	s.Nodes = nil
	s.RandomNodes = &RandomNodesSpec{Count: 10, SideM: 500}
	s.Mobility = "waypoint"
	s.MaxSpeedMps = 10
	cfg, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mobility == nil || cfg.Mobility.Model != "waypoint" || cfg.Mobility.MaxSpeedMps != 10 {
		t.Fatalf("mobility config = %+v", cfg.Mobility)
	}
	if cfg.Mobility.Start != cfg.TrafficStart {
		t.Fatalf("motion starts at %v, want traffic start %v", cfg.Mobility.Start, cfg.TrafficStart)
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mobility == nil || res.Mobility.Moves == 0 {
		t.Fatal("spec-built mobility scenario did not move radios")
	}
}

func TestSpecScenarioFadingNone(t *testing.T) {
	s := validSpec()
	s.Fading = "none"
	cfg, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Fading.(propagation.NoFading); !ok {
		t.Fatal("fading none not applied")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*Spec){
		"bad metric":       func(s *Spec) { s.Metric = "bogus" },
		"bad protocol":     func(s *Spec) { s.Protocol = "bogus" },
		"no traffic":       func(s *Spec) { s.TrafficSeconds = 0 },
		"no groups":        func(s *Spec) { s.Groups = nil },
		"no nodes":         func(s *Spec) { s.Nodes = nil },
		"both node kinds":  func(s *Spec) { s.RandomNodes = &RandomNodesSpec{Count: 5, SideM: 300} },
		"bad fading":       func(s *Spec) { s.Fading = "shadowing" },
		"group id zero":    func(s *Spec) { s.Groups[0].Group = 0 },
		"source oob":       func(s *Spec) { s.Groups[0].Sources = []int{9} },
		"member oob":       func(s *Spec) { s.Groups[0].Members = []int{-1} },
		"sourceless group": func(s *Spec) { s.Groups[0].Sources = nil },
		"memberless group": func(s *Spec) { s.Groups[0].Members = nil },
	}
	for name, mutate := range cases {
		s := validSpec()
		mutate(&s)
		if _, err := s.Scenario(); err == nil {
			t.Fatalf("%s: validation passed", name)
		}
	}
}

func TestLoadSpecErrors(t *testing.T) {
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecRunsEndToEnd(t *testing.T) {
	cfg, err := validSpec().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PacketsSent == 0 {
		t.Fatal("spec scenario sent nothing")
	}
}

func TestSpecScenarioShadowedFading(t *testing.T) {
	s := validSpec()
	s.Fading = "shadowed-rayleigh"
	s.ShadowSigmaDB = 8
	cfg, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := cfg.Fading.(propagation.Composite)
	if !ok || len(comp) != 2 {
		t.Fatalf("fading = %#v", cfg.Fading)
	}
	ln, ok := comp[0].(propagation.LogNormal)
	if !ok || ln.SigmaDB != 8 {
		t.Fatalf("shadowing component = %#v", comp[0])
	}
}
