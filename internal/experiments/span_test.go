package experiments

import (
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/packet"
	"meshcast/internal/trace"
)

// TestSpanSinkDoesNotChangeResults pins the zero-cost contract from the
// consumer side: attaching a span sink must not perturb the simulation —
// trace IDs are observability metadata, excluded from wire size and RNG.
func TestSpanSinkDoesNotChangeResults(t *testing.T) {
	bare, err := RunScenario(smallScenario(t, metric.SPP, 11, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallScenario(t, metric.SPP, 11, 20*time.Second)
	cfg.SpanSink = &trace.SpanBuffer{}
	traced, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Summary != traced.Summary {
		t.Fatalf("span sink changed the summary:\n%+v\n%+v", bare.Summary, traced.Summary)
	}
	if bare.Events != traced.Events {
		t.Fatalf("span sink changed the event count: %d vs %d", bare.Events, traced.Events)
	}
}

// TestSpanSinkScenarioNotCached: runs with a span sink have side effects
// beyond their RunResult and must never come from the result cache.
func TestSpanSinkScenarioNotCached(t *testing.T) {
	cfg := smallScenario(t, metric.SPP, 11, 20*time.Second)
	if _, ok := ScenarioKey(cfg); !ok {
		t.Fatal("bare scenario not cachable")
	}
	cfg.SpanSink = &trace.SpanBuffer{}
	if _, ok := ScenarioKey(cfg); ok {
		t.Fatal("span-sink scenario reported cachable")
	}
}

// TestScenarioJourneysReconstruct runs a fixed-seed scenario with span
// tracing on and verifies the captured spans rebuild complete forwarding
// trees: every data delivery is explained by a chain of reconstructed
// MAC-tx -> phy-arrive edges back to the source.
func TestScenarioJourneysReconstruct(t *testing.T) {
	cfg := smallScenario(t, metric.SPP, 7, 30*time.Second)
	buf := &trace.SpanBuffer{}
	cfg.SpanSink = buf
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PacketsDelivered == 0 {
		t.Fatal("scenario delivered nothing; spans prove nothing")
	}
	if buf.Dropped() != 0 {
		t.Fatalf("span buffer dropped %d spans", buf.Dropped())
	}

	journeys := trace.Reconstruct(buf.Spans())
	if len(journeys) == 0 {
		t.Fatal("no journeys reconstructed")
	}
	var data, complete, delivered int
	for _, j := range journeys {
		if j.PktKind != packet.TypeData {
			continue
		}
		data++
		delivered += len(j.Deliveries)
		if j.Complete() {
			complete++
		}
	}
	if data == 0 {
		t.Fatal("no data journeys reconstructed")
	}
	// Every data journey's forwarding tree must explain its deliveries.
	if complete != data {
		t.Fatalf("%d of %d data journeys have complete forwarding trees", complete, data)
	}
	// The journeys' deliveries are the scenario's deliveries: each traced
	// delivery span corresponds to one counted member reception.
	if uint64(delivered) != res.Summary.PacketsDelivered {
		t.Fatalf("journeys explain %d deliveries, scenario counted %d",
			delivered, res.Summary.PacketsDelivered)
	}
}
