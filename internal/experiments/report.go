package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/testbed"
)

// PaperFig2Simulation holds the paper's reported values for Figure 2's
// "Throughput-simulations" column (normalized against original ODMRP).
var PaperFig2Simulation = map[metric.Kind]float64{
	metric.ETT: 1.135, metric.ETX: 1.145, metric.METX: 1.16, metric.PP: 1.18, metric.SPP: 1.18,
}

// PaperFig2Testbed holds the paper's Figure 2 "Throughput-testbed" column.
var PaperFig2Testbed = map[metric.Kind]float64{
	metric.ETT: 1.07, metric.ETX: 1.08, metric.METX: 1.075, metric.PP: 1.175, metric.SPP: 1.14,
}

// PaperTable1 holds the paper's Table 1 probing overheads (percent).
var PaperTable1 = map[metric.Kind]float64{
	metric.ETT: 3.03, metric.ETX: 0.66, metric.METX: 0.61, metric.PP: 2.54, metric.SPP: 0.53,
}

// TestbedAggregate is one metric's averaged testbed outcome.
type TestbedAggregate struct {
	Metric        metric.Kind
	RelThroughput float64
	OverheadPct   float64
	AbsPDR        float64
}

// TestbedColumn holds the testbed sweep results.
type TestbedColumn struct {
	BaselinePDR float64
	Rows        []TestbedAggregate
}

// RunTestbedColumn reproduces Figure 2's "Throughput-testbed" column: the
// 8-node emulation run `runs` times per metric (the paper uses 5 runs of
// 400 s each). The (metric, run) matrix executes through the job harness
// configured by o (Workers, CacheDir, Progress); aggregation folds results
// in job order, so the column is identical for any worker count.
func RunTestbedColumn(o Options, runs, trafficSeconds int) (*TestbedColumn, error) {
	kinds := append([]metric.Kind{metric.MinHop}, metric.LinkQuality()...)
	var jobs []TestbedJob
	for _, k := range kinds {
		for r := 0; r < runs; r++ {
			cfg := testbed.DefaultConfig(k, uint64(r+1))
			cfg.TrafficSeconds = trafficSeconds
			jobs = append(jobs, TestbedJob{
				Label:  fmt.Sprintf("testbed %v run %d", k, r+1),
				Config: cfg,
			})
		}
	}
	results, err := o.runTestbedJobs(jobs)
	if err != nil {
		return nil, err
	}
	mean := func(block int) (pdr, ovh float64, err error) {
		for r := 0; r < runs; r++ {
			res := results[block*runs+r]
			if res.Err != nil {
				return 0, 0, res.Err
			}
			pdr += res.Value.Summary.PDR
			ovh += res.Value.Summary.ProbeOverheadPct
		}
		return pdr / float64(runs), ovh / float64(runs), nil
	}
	base, _, err := mean(0)
	if err != nil {
		return nil, err
	}
	out := &TestbedColumn{BaselinePDR: base}
	for i, k := range metric.LinkQuality() {
		pdr, ovh, err := mean(i + 1)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TestbedAggregate{
			Metric:        k,
			RelThroughput: pdr / base,
			OverheadPct:   ovh,
			AbsPDR:        pdr,
		})
	}
	return out, nil
}

// Report accumulates a markdown reproduction report (EXPERIMENTS.md).
type Report struct {
	b strings.Builder
}

// NewReport starts a report with the standard preamble.
func NewReport(o Options, testbedRuns, testbedSeconds int) *Report {
	r := &Report{}
	fmt.Fprintf(&r.b, `# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in "High-Throughput Multicast Routing
Metrics in Wireless Mesh Networks" (Roy, Koutsonikolas, Das, Hu — ICDCS
2006). Absolute numbers are not expected to match (the substrate is this
repository's own simulator, not GloMoSim or the Purdue testbed); the claims
under reproduction are the *orderings and ratios* the paper reports.

Configuration: %d seeds × %d s traffic (+%d s probe warmup) for the
simulation columns; %d × %d s runs for the testbed column. Regenerate with
`+"`go run ./cmd/experiments -full`"+` or per-figure via
`+"`go test -bench . -benchmem`"+`. Runs execute through the parallel job
harness (`+"`-j N`"+` workers, `+"`-cache-dir`"+` result cache); the report
is byte-identical for any worker count.

`, len(o.Seeds), o.TrafficSeconds, o.WarmupSeconds, testbedRuns, testbedSeconds)
	return r
}

// Section appends a markdown heading and body.
func (r *Report) Section(title, body string) {
	fmt.Fprintf(&r.b, "## %s\n\n%s\n", title, body)
}

// Fig2SimTable renders the simulation throughput column against the paper.
func (r *Report) Fig2SimTable(title string, sims *PaperSims, paper map[metric.Kind]float64, note string) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | paper | measured | ± stderr |\n|---|---|---|---|\n")
	fmt.Fprintf(&b, "| ODMRP (baseline) | 1.000 | 1.000 | abs PDR %.3f |\n", sims.BaselinePDR)
	for _, row := range sims.Rows {
		paperVal := "—"
		if v, ok := paper[row.Metric]; ok {
			paperVal = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "| ODMRP_%s | %s | %.3f | %.3f |\n",
			strings.ToUpper(row.Metric.String()), paperVal, row.RelThroughput, row.RelThroughputStderr)
	}
	if note != "" {
		fmt.Fprintf(&b, "\n%s\n", note)
	}
	r.Section(title, b.String())
}

// DelayTable renders the normalized-delay column.
func (r *Report) DelayTable(sims *PaperSims) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | measured rel. delay | abs delay (ms) |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| ODMRP (baseline) | 1.000 | %.1f |\n", 1000*sims.BaselineDelaySeconds)
	for _, row := range sims.Rows {
		fmt.Fprintf(&b, "| ODMRP_%s | %.3f | %.1f |\n",
			strings.ToUpper(row.Metric.String()), row.RelDelay, 1000*row.AbsDelaySeconds)
	}
	b.WriteString(`
The paper reports (figure only, no numbers) that ODMRP_SPP and ODMRP_ETX see
the lowest delays among the five metrics because their probing overhead is
smallest. We reproduce ETX's low delay; SPP's delay is *higher* here because
under smooth Rayleigh loss-vs-distance SPP trades hops for reliability very
aggressively, and our delay average is composition-biased (the metrics
deliver to distant members that the baseline starves entirely). See the
deviations section.
`)
	r.Section("Figure 2 — column \"Delay\"", b.String())
}

// Table1 renders probing overhead vs the paper.
func (r *Report) Table1(sims *PaperSims) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | paper %% | measured %% |\n|---|---|---|\n")
	rows := append([]Aggregate(nil), sims.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Metric < rows[j].Metric })
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f |\n",
			strings.ToUpper(row.Metric.String()), PaperTable1[row.Metric], row.OverheadPct)
	}
	b.WriteString("\nShape reproduced: pair-probing metrics (ETT, PP) sit an order of\n" +
		"magnitude above the single-probe metrics, PP below ETT, and within the\n" +
		"single-probe group overhead orders inversely with throughput.\n")
	r.Section("Table 1 — probing overhead", b.String())
}

// TestbedTable renders the testbed column vs the paper.
func (r *Report) TestbedTable(col *TestbedColumn) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| ODMRP (baseline) | 1.000 | 1.000 (abs PDR %.3f) |\n", col.BaselinePDR)
	for _, row := range col.Rows {
		paperVal := "—"
		if v, ok := PaperFig2Testbed[row.Metric]; ok {
			paperVal = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "| ODMRP_%s | %s | %.3f |\n",
			strings.ToUpper(row.Metric.String()), paperVal, row.RelThroughput)
	}
	b.WriteString("\nKey inversion reproduced: on the testbed PP overtakes SPP (long EWMA\n" +
		"memory keeps avoiding 40-60%-loss links through their temporarily good\n" +
		"episodes, while short-window metrics re-select them — §5.3).\n")
	r.Section("Figure 2 — column \"Throughput-testbed\"", b.String())
}

// MultiSourceSection renders the §4.3 comparison.
func (r *Report) MultiSourceSection(cmp *MultiSourceComparison) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | gain, 1 source/group | gain, %d sources/group |\n|---|---|---|\n", cmp.SourcesPerGroup)
	for i, row := range cmp.SingleSource.Rows {
		multi := cmp.MultiSource.Rows[i]
		fmt.Fprintf(&b, "| ODMRP_%s | %+.1f%% | %+.1f%% |\n",
			strings.ToUpper(row.Metric.String()),
			100*(row.RelThroughput-1), 100*(multi.RelThroughput-1))
	}
	b.WriteString("\nPaper §4.3: with multiple sources per group ODMRP's forwarding mesh\n" +
		"becomes redundant and the relative gains shrink by ~10-15 percentage\n" +
		"points of the single-source gain.\n")
	r.Section("§4.3 — multiple sources per group", b.String())
}

// DeltaAlphaSection renders the δ/α ablation.
func (r *Report) DeltaAlphaSection(points []DeltaAlphaPoint) {
	var b strings.Builder
	fmt.Fprintf(&b, "| δ | α | rel. throughput (SPP) |\n|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %v | %v | %.3f |\n", p.Delta, p.Alpha, p.RelThroughput)
	}
	b.WriteString("\nδ = 0 disables the best-path wait (first-copy routing with metric\n" +
		"accumulation only through reply propagation); the paper's 30 ms / 20 ms\n" +
		"recovers the gain, and larger windows buy a little more at higher query\n" +
		"overhead (§4.1 reports 3-4% for much larger values).\n")
	r.Section("Ablation — δ/α path-diversity windows", b.String())
}

// HistorySection renders the estimator-history ablation.
func (r *Report) HistorySection(points []HistoryPoint) {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | window | EWMA weight | rel. throughput |\n|---|---|---|---|\n")
	for _, p := range points {
		win, wt := "—", "—"
		if p.WindowSize > 0 {
			win = fmt.Sprintf("%d probes", p.WindowSize)
		}
		if p.HistoryWeight > 0 {
			wt = fmt.Sprintf("%.2f", p.HistoryWeight)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %.3f |\n", strings.ToUpper(p.Metric.String()), win, wt, p.RelThroughput)
	}
	r.Section("Ablation — estimator history length", b.String())
}

// ProtocolSection renders a protocols × metrics comparison: PDR, delay,
// forwarding cost, control bytes, and route-state size per cell.
func (r *Report) ProtocolSection(cmp *ProtocolComparison) {
	var b strings.Builder
	fmt.Fprintf(&b, "| protocol | metric | PDR | ± stderr | delay (ms) | fwd/delivered | control bytes | route state |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|\n")
	for _, k := range cmp.Metrics {
		for _, proto := range cmp.Protocols {
			c := cmp.Cell(proto, k)
			if c == nil {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %.3f | %.3f | %.1f | %.2f | %.0f | %.0f |\n",
				proto, strings.ToUpper(k.String()), c.PDR, c.PDRStderr, c.DelayMS,
				c.ForwardCost, c.ControlBytes, c.StateSize)
		}
	}
	fmt.Fprintf(&b, "\nSources per group: %d. With a single source the two protocols are\n"+
		"provably packet-for-packet identical — ODMRP's δ-wait reply mesh for one\n"+
		"source *is* the best-parent tree MCST builds from that source as core\n"+
		"(`TestGoldenSimcoreOutputMCSTSingleSource` pins the byte-identity) — so\n"+
		"the comparison runs the multi-source regime of §4.3, where the\n"+
		"structures diverge: ODMRP floods one mesh per source and unions them,\n"+
		"while MCST elects one core per group and grafts the other senders onto\n"+
		"a single bidirectional shared tree. \"Control bytes\" and \"route state\"\n"+
		"(each node's live route-establishment rounds + duplicate windows at the\n"+
		"end of the run) therefore scale with sources for ODMRP but not for\n"+
		"MCST, the shared tree's forwarding cost (data rebroadcasts per packet\n"+
		"delivered) sits lower, and PDR pays for funneling every sender's\n"+
		"traffic through the core's single-path tree under fading.\n", cmp.SourcesPerGroup)
	r.Section("Protocol comparison — ODMRP mesh vs MCST shared tree", b.String())
}

// MobilitySection renders a protocols × speeds mobility sweep: delivery
// under increasing node speed, route-repair latency, and reconvergence.
func (r *Report) MobilitySection(sweep *MobilitySweep) {
	var b strings.Builder
	fmt.Fprintf(&b, "| protocol | max speed (m/s) | PDR | ± stderr | motion PDR | repair mean (ms) | repair max (ms) | reconv/run | breaks/s |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, proto := range sweep.Protocols {
		for _, speed := range sweep.Speeds {
			c := sweep.Cell(proto, speed)
			if c == nil {
				continue
			}
			motion, repairMean, repairMax := "—", "—", "—"
			if speed > 0 {
				motion = fmt.Sprintf("%.3f", c.MotionPDR)
				repairMean = fmt.Sprintf("%.1f", c.RepairMeanMS)
				repairMax = fmt.Sprintf("%.1f", c.RepairMaxMS)
			}
			fmt.Fprintf(&b, "| %s | %.0f | %.3f | %.3f | %s | %s | %s | %.1f | %.2f |\n",
				proto, speed, c.PDR, c.PDRStderr, motion, repairMean, repairMax,
				c.Reconvergences, c.BreaksPerSec)
		}
	}
	fmt.Fprintf(&b, "\nModel: %s (motion starts with traffic; metric %s; %d sources per\n"+
		"group — single-source ODMRP and MCST are provably identical, motion or\n"+
		"not; speed 0 is the static control). Repair latency is break-tick to\n"+
		"the group's next delivery; a reconvergence is a >1 s delivery silence\n"+
		"following breaks — the span the forwarding structure needed to\n"+
		"re-form. Both protocols rebuild soft state every query round, so\n"+
		"sub-second repairs dominate and neither collapses even at vehicular\n"+
		"speeds; per-round rebuilds also let them exploit the densification\n"+
		"waypoint motion causes (random waypoints concentrate nodes toward the\n"+
		"area centre, shortening links), which can lift PDR above the static\n"+
		"control. The repair-max column is where speed shows its teeth.\n",
		sweep.Model, strings.ToUpper(sweep.Metric.String()), sweep.SourcesPerGroup)
	r.Section("Mobility — delivery under motion (speed sweep)", b.String())
}

// FadingSection renders the fading ablation.
func (r *Report) FadingSection(ab *FadingAblation) {
	var b strings.Builder
	fmt.Fprintf(&b, "| fading | ODMRP abs PDR | ODMRP_SPP rel. throughput |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| Rayleigh | %.3f | %.3f |\n", ab.WithFading.BaselinePDR, ab.WithFading.Rows[0].RelThroughput)
	fmt.Fprintf(&b, "| none | %.3f | %.3f |\n", ab.WithoutFading.BaselinePDR, ab.WithoutFading.Rows[0].RelThroughput)
	b.WriteString("\nWithout fading the baseline's min-hop paths stop being lossy and the\n" +
		"link-quality gain largely evaporates — fading is the mechanism behind\n" +
		"the paper's headline result (§4.2.1).\n")
	r.Section("Ablation — fading on/off", b.String())
}

// DeviationsText is the honest account of where this reproduction's
// numbers depart from the paper's, and why. It is appended to every
// generated report.
const DeviationsText = `The orderings and mechanisms above reproduce; the following do not, and
are reported as findings rather than hidden:

1. **Absolute gains are ~2-3x the paper's** (≈+35-46% vs +13.5-18% in
   simulation). Our Rayleigh regime leaves the nominal-range link at only
   e⁻¹ ≈ 37% delivery, harsher than GloMoSim's; min-hop ODMRP suffers
   correspondingly more. Orderings are unaffected.
2. **PP places mid-pack in simulation instead of tying SPP for first.**
   Under a smooth df-vs-distance curve, PP's loss penalty only
   distinguishes links below df ≈ 0.8 (where the 20% penalties compound
   faster than the EWMA decays), so mid-quality links all cost near the
   baseline pair delay. On the testbed, whose links are bimodal
   (0.4-0.6 vs 0.94-1.0), PP's filter is exactly right and it takes first
   place as in the paper.
3. **SPP's delay rank inverts.** The paper shows SPP among the lowest
   delays; here it is highest. Two causes: SPP trades hops for reliability
   aggressively under a smooth loss-distance curve (a product metric never
   pays for extra hops), and the delay average is composition-biased —
   the metrics deliver to distant members the baseline starves entirely,
   so their delivered-packet population is longer-path. ETX's low relative
   delay does reproduce.
4. **The probing-rate throughput deltas are within noise and trend
   opposite at the low end.** The paper reports 5x probing costs ~2% and
   10x-lower probing gains ~3%. Our probe traffic at these loads is too
   small for its interference to beat run-to-run variance (stderr ≈ 5%),
   while 10x-lower probing visibly hurts because a 10-probe ETX window
   then spans 500 s — estimator staleness dominates interference in our
   regime. The overhead side of the tradeoff (Table 1 bytes scaling
   linearly with rate) reproduces exactly.
5. **Multi-source gains collapse to ≈0 rather than shrinking by 10-15
   points.** Direction matches §4.3 — per-group (not per-source)
   forwarding meshes get redundant — but with 3 sources per 10-member
   group our mesh covers most of the 50-node network, erasing the gap
   entirely.
`

// Deviations appends the standing deviations section.
func (r *Report) Deviations() {
	r.Section("Deviations and notes", DeviationsText)
}

// Elapsed appends a footer with the wall-clock cost.
func (r *Report) Elapsed(d time.Duration) {
	fmt.Fprintf(&r.b, "---\nGenerated in %s.\n", d.Round(time.Second))
}

// String returns the accumulated markdown.
func (r *Report) String() string { return r.b.String() }
