package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"meshcast/internal/metric"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// goldenScenario is a shortened fixed-seed instance of the paper's 50-node
// §4.1 scenario: full topology and group structure, reduced traffic window
// so the regression test stays fast.
func goldenScenario(t *testing.T) ScenarioConfig {
	t.Helper()
	cfg, err := DefaultScenario(metric.SPP, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TrafficStart = 10 * time.Second
	cfg.Duration = 25 * time.Second
	return cfg
}

// formatRunResult renders every deterministic quantity of a run, in a fixed
// order, so any behavioral drift in the simulation core shows up as a diff.
func formatRunResult(res *RunResult) string {
	var b strings.Builder
	s := res.Summary
	fmt.Fprintf(&b, "pdr=%.9f\n", s.PDR)
	fmt.Fprintf(&b, "mean_delay_seconds=%.9f\n", s.MeanDelaySeconds)
	fmt.Fprintf(&b, "packets_sent=%d\n", s.PacketsSent)
	fmt.Fprintf(&b, "packets_delivered=%d\n", s.PacketsDelivered)
	fmt.Fprintf(&b, "data_bytes_received=%d\n", s.DataBytesReceived)
	fmt.Fprintf(&b, "probe_overhead_pct=%.9f\n", s.ProbeOverheadPct)
	fmt.Fprintf(&b, "fairness=%.9f\n", s.Fairness)
	fmt.Fprintf(&b, "probe_bytes=%d\n", res.ProbeBytes)
	fmt.Fprintf(&b, "control_bytes=%d\n", res.ControlBytes)
	fmt.Fprintf(&b, "mac_collisions=%d\n", res.MACCollisions)
	fmt.Fprintf(&b, "data_forwards=%d\n", res.DataForwards)
	fmt.Fprintf(&b, "delay_p50=%v delay_p90=%v delay_p99=%v delay_max=%v count=%d\n",
		res.Delay.P50, res.Delay.P90, res.Delay.P99, res.Delay.Max, res.Delay.Count)
	fmt.Fprintf(&b, "events=%d\n", res.Events)
	for _, m := range res.PerMember {
		fmt.Fprintf(&b, "member %v\n", m)
	}
	return b.String()
}

// TestGoldenSimcoreOutput pins the fixed-seed 50-node paper scenario's
// complete stats output against testdata/golden_simcore.txt. Any change to
// the event engine, PHY, MAC, routing, or RNG draw order shows up here.
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenSimcoreOutput -update
func TestGoldenSimcoreOutput(t *testing.T) {
	res, err := RunScenario(goldenScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	got := formatRunResult(res)
	path := filepath.Join("testdata", "golden_simcore.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("stats output drifted from golden file (rerun with -update if intentional):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenSimcoreOutputExplicitProtocol runs the golden scenario with the
// ODMRP protocol named explicitly instead of defaulted, and requires the
// byte-identical golden output: the protocol-registry indirection must be
// invisible to ODMRP's behavior (same construction order, same RNG draws).
func TestGoldenSimcoreOutputExplicitProtocol(t *testing.T) {
	cfg := goldenScenario(t)
	cfg.Protocol = "odmrp"
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := formatRunResult(res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_simcore.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("explicit -protocol odmrp diverged from the default-protocol golden output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenSimcoreOutputMCSTSingleSource pins a structural theorem of the
// two protocols: with one source per group, ODMRP's δ-wait reply mesh *is*
// the best-parent shared tree MCST builds from that source as core — same
// flood (CORE_ANNOUNCE mirrors JOIN_QUERY in size, interval, and α re-flood
// rule), same δ-selected parents (TREE_JOIN mirrors JOIN_REPLY), hence the
// same forwarder set, the same RNG draw sequence, and byte-identical
// output. The protocols only diverge with multiple sources per group
// (ODMRP unions per-source meshes; MCST keeps one core) — which is why the
// protocol-comparison sweep runs the §4.3 multi-source regime.
func TestGoldenSimcoreOutputMCSTSingleSource(t *testing.T) {
	cfg := goldenScenario(t)
	cfg.Protocol = "mcst"
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := formatRunResult(res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_simcore.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("single-source MCST diverged from the ODMRP golden output — the shared tree no longer mirrors the one-source mesh:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenSimcoreOutputUncached runs the same scenario with the static
// link cache disabled and requires the identical golden output — the cache's
// determinism contract (see docs/PERFORMANCE.md): same candidate order, same
// skip set, same RNG draw sequence, byte-identical results.
func TestGoldenSimcoreOutputUncached(t *testing.T) {
	t.Setenv("MESHCAST_NO_LINK_CACHE", "1")
	res, err := RunScenario(goldenScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	got := formatRunResult(res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_simcore.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("uncached run diverged from the cached golden output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenSimcoreOutputNoCellIndex runs the scenario with the spatial cell
// index disabled (brute-force candidate scan) and requires the identical
// golden output — the index's determinism contract addendum (see grid.go):
// the merged cell probe reproduces the brute-force candidate list bit for
// bit, so the indexed fan-out cannot perturb a single RNG draw.
func TestGoldenSimcoreOutputNoCellIndex(t *testing.T) {
	t.Setenv("MESHCAST_NO_CELL_INDEX", "1")
	res, err := RunScenario(goldenScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	got := formatRunResult(res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_simcore.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("brute-force fan-out diverged from the indexed golden output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
