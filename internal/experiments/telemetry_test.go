package experiments

import (
	"math"
	"testing"
	"time"

	"meshcast/internal/metric"
	"meshcast/internal/telemetry"
)

// TestRunScenarioTelemetryArtifacts runs a small instrumented scenario and
// checks the run's manifest and series artifacts: instrument coverage, the
// identity fields, and — the acceptance bar — that the paper-table probing
// overhead is reproducible from the manifest alone.
func TestRunScenarioTelemetryArtifacts(t *testing.T) {
	dir := t.TempDir()
	rec, err := telemetry.NewRecorder(dir, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallScenario(t, metric.SPP, 5, 30*time.Second)
	cfg.TrafficStart = 10 * time.Second
	cfg.Telemetry = rec
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := telemetry.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != telemetry.ManifestSchema {
		t.Fatalf("schema = %q", m.Schema)
	}
	if m.Seed != cfg.Seed || m.Metric != "spp" {
		t.Fatalf("identity = seed %d metric %q", m.Seed, m.Metric)
	}
	if m.Protocol != "odmrp" {
		t.Fatalf("protocol = %q, want odmrp (the scenario default)", m.Protocol)
	}
	clean := cfg
	clean.Telemetry = nil
	wantHash, ok := ScenarioKey(clean)
	if !ok {
		t.Fatal("clean config should be cachable")
	}
	if m.ConfigHash != wantHash {
		t.Fatalf("manifest hash %q != scenario key %q", m.ConfigHash, wantHash)
	}

	// Every instrumented layer must have left a mark on a run that delivered
	// traffic.
	for _, name := range []string{
		"phy.frames_sent", "phy.frames_delivered",
		"mac.broadcasts_sent", "mac.bytes_sent",
		"odmrp.queries_originated", "odmrp.data_delivered",
		"linkquality.probes_sent", "linkquality.probe_bytes_sent",
		"stats.data_bytes_received",
	} {
		if m.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	for _, name := range []string{"linkquality.table_entries", "linkquality.probe_bytes_warmup"} {
		if m.Gauges[name] == 0 {
			t.Errorf("gauge %s = 0, want > 0", name)
		}
	}
	if _, ok := m.Histograms["mac.queue_depth"]; !ok {
		t.Error("mac.queue_depth histogram missing")
	}

	// The paper-table probing overhead, recomputed from the manifest alone,
	// must match RunScenario's own figure.
	probe := float64(m.Counters["linkquality.probe_bytes_sent"]) - m.Gauges["linkquality.probe_bytes_warmup"]
	data := float64(m.Counters["stats.data_bytes_received"])
	got := 100 * probe / data
	if want := res.Summary.ProbeOverheadPct; math.Abs(got-want) > 1e-9 {
		t.Fatalf("manifest probe overhead = %v, RunScenario = %v", got, want)
	}
	if d := m.Derived["probe_overhead_pct"]; d != res.Summary.ProbeOverheadPct {
		t.Fatalf("derived probe_overhead_pct = %v, want %v", d, res.Summary.ProbeOverheadPct)
	}
	if d := m.Derived["pdr"]; d != res.Summary.PDR {
		t.Fatalf("derived pdr = %v, want %v", d, res.Summary.PDR)
	}

	series, err := telemetry.LoadSeries(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 30 s at a 5 s interval: samples at 5..25 plus the final one at 30.
	if len(series) != 6 {
		t.Fatalf("series samples = %d, want 6", len(series))
	}
	if m.Samples != len(series) {
		t.Fatalf("manifest samples = %d, series has %d", m.Samples, len(series))
	}
	last := series[len(series)-1]
	if last.T != 30 {
		t.Fatalf("final sample at t=%v, want 30", last.T)
	}
	if last.Counters["phy.frames_sent"] != m.Counters["phy.frames_sent"] {
		t.Fatalf("final sample frames_sent %d != manifest %d",
			last.Counters["phy.frames_sent"], m.Counters["phy.frames_sent"])
	}
	for i := 1; i < len(series); i++ {
		if series[i].Counters["phy.frames_sent"] < series[i-1].Counters["phy.frames_sent"] {
			t.Fatal("cumulative counter decreased between samples")
		}
	}
}

// TestRunScenarioTelemetryDoesNotPerturb checks that attaching a recorder
// leaves the simulation's behavior bit-identical: same summary, same event
// count as an uninstrumented run of the same config.
func TestRunScenarioTelemetryDoesNotPerturb(t *testing.T) {
	bare, err := RunScenario(smallScenario(t, metric.SPP, 11, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := telemetry.NewRecorder(t.TempDir(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallScenario(t, metric.SPP, 11, 20*time.Second)
	cfg.Telemetry = rec
	instrumented, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Summary != instrumented.Summary {
		t.Fatalf("telemetry perturbed the run:\n%+v\n%+v", bare.Summary, instrumented.Summary)
	}
}

func TestScenarioKeyTelemetryUncachable(t *testing.T) {
	rec, err := telemetry.NewRecorder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallScenario(t, metric.SPP, 3, time.Second)
	cfg.Telemetry = rec
	if _, ok := ScenarioKey(cfg); ok {
		t.Fatal("telemetry-attached scenario must be uncachable")
	}
}
